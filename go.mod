module mavfi

go 1.24
