# Make targets mirror .github/workflows/ci.yml exactly, so local runs and CI
# cannot drift: CI jobs invoke these same targets.

GO ?= go

.PHONY: build vet fmt fmt-check test test-full test-race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check (used by CI) only verifies.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# test is the CI test job: reduced campaign scales via testing.Short().
test:
	$(GO) test -short ./...

# test-full runs the full-fidelity campaigns (what the seed suite ran).
test-full:
	$(GO) test ./...

# test-race doubles as the proof that the parallel campaign engine is
# data-race-free.
test-race:
	$(GO) test -race -short ./...

# bench regenerates every paper table/figure headline metric plus the
# campaign-engine scaling curve. Scale campaigns with MAVFI_BENCH_RUNS.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
