# Make targets mirror .github/workflows/ci.yml exactly, so local runs and CI
# cannot drift: CI jobs invoke these same targets.

GO ?= go

.PHONY: build vet fmt fmt-check test test-full test-race bench bench-smoke bench-plan bench-probes docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check (used by CI) only verifies.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# test is the CI test job: reduced campaign scales via testing.Short().
test:
	$(GO) test -short ./...

# test-full runs the full-fidelity campaigns (what the seed suite ran).
test-full:
	$(GO) test ./...

# test-race doubles as the proof that the parallel campaign engine is
# data-race-free.
test-race:
	$(GO) test -race -short ./...

# bench regenerates every paper table/figure headline metric, the campaign-
# engine scaling curve, and the perception micro-benchmarks, and records the
# machine-readable perf trajectory in $(BENCH_JSON) (benchmark → ns/op,
# allocs/op, custom metrics). Scale campaigns with MAVFI_BENCH_RUNS.
BENCH_JSON ?= BENCH_PR5.json
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./... > $(BENCH_JSON).raw
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < $(BENCH_JSON).raw
	@rm -f $(BENCH_JSON).raw

# bench-smoke proves every benchmark still compiles and runs (one iteration
# each); CI runs this so benchmarks cannot rot.
bench-smoke:
	MAVFI_BENCH_RUNS=2 $(GO) test -bench . -benchtime=1x -run '^$$' ./...

# bench-plan is the planner-regression smoke: one iteration of BenchmarkPlan
# (the RRT* + spatial-index + map-query hot path PR 4 optimised), cheap
# enough for every PR.
bench-plan:
	$(GO) test -bench 'BenchmarkPlan$$' -benchtime=1x -run '^$$' ./internal/pipeline

# bench-probes is the collision-probe regression smoke: one iteration each of
# the octomap segment queries the PR 5 fused walker + occupancy summary
# optimised, so a probe-path regression fails as its own CI step.
bench-probes:
	$(GO) test -bench 'Benchmark(SegmentFree|FirstBlocked)$$' -benchtime=1x -run '^$$' ./internal/octomap

# docs-check is the CI documentation gate: every internal/ package must have
# a godoc package comment, and relative Markdown links in *.md and docs/
# must resolve.
docs-check:
	$(GO) run ./cmd/docscheck
