# Make targets mirror .github/workflows/ci.yml exactly, so local runs and CI
# cannot drift: CI jobs invoke these same targets.

GO ?= go

.PHONY: build vet fmt fmt-check test test-full test-race bench bench-smoke bench-plan bench-probes bench-seed docs-check record replay replay-verify matrix-smoke server-smoke dispatch-smoke approx-smoke fuzz-smoke cover staticcheck vulncheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt rewrites; fmt-check (used by CI) only verifies.
fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# test is the CI test job: reduced campaign scales via testing.Short().
test:
	$(GO) test -short ./...

# test-full runs the full-fidelity campaigns (what the seed suite ran).
test-full:
	$(GO) test ./...

# test-race doubles as the proof that the parallel campaign engine is
# data-race-free.
test-race:
	$(GO) test -race -short ./...

# bench regenerates every paper table/figure headline metric, the campaign-
# engine scaling curve, and the perception micro-benchmarks, and records the
# machine-readable perf trajectory in $(BENCH_JSON) (benchmark → ns/op,
# allocs/op, custom metrics). Scale campaigns with MAVFI_BENCH_RUNS.
BENCH_JSON ?= BENCH_PR9.json
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./... > $(BENCH_JSON).raw
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < $(BENCH_JSON).raw
	@rm -f $(BENCH_JSON).raw

# bench-smoke proves every benchmark still compiles and runs (one iteration
# each); CI runs this so benchmarks cannot rot.
bench-smoke:
	MAVFI_BENCH_RUNS=2 $(GO) test -bench . -benchtime=1x -run '^$$' ./...

# bench-plan is the planner-regression smoke: one iteration of BenchmarkPlan
# (the RRT* + spatial-index + map-query hot path PR 4 optimised), cheap
# enough for every PR.
bench-plan:
	$(GO) test -bench 'BenchmarkPlan$$' -benchtime=1x -run '^$$' ./internal/pipeline

# bench-seed is the PR 9 golden-map headline: one campaign cell flown cold /
# seeded / seeded+stride / memo / memo+stride (BenchmarkCampaignCell), the
# wall-clock comparison BENCH_PR9.json records. The memo rows are the ones
# that must beat cold by >= 25%.
bench-seed:
	$(GO) test -bench 'BenchmarkCampaignCell' -benchmem -benchtime=6x -run '^$$' ./internal/pipeline

# bench-probes is the collision-probe regression smoke: one iteration each of
# the octomap segment queries the PR 5 fused walker + occupancy summary
# optimised, so a probe-path regression fails as its own CI step.
bench-probes:
	$(GO) test -bench 'Benchmark(SegmentFree|FirstBlocked)$$' -benchtime=1x -run '^$$' ./internal/octomap

# docs-check is the CI documentation gate: every internal/ package must have
# a godoc package comment, and relative Markdown links in *.md and docs/
# must resolve.
docs-check:
	$(GO) run ./cmd/docscheck

# record captures a small demo campaign cell (nominal + planner-fault) as
# replayable mission logs under data/demo; replay byte-verifies them.
RECORD_DIR ?= data/demo
record:
	$(GO) run ./cmd/mavfi-replay -record -o $(RECORD_DIR)/nominal -runs 4 -seed 1
	$(GO) run ./cmd/mavfi-replay -record -o $(RECORD_DIR)/kfault -kernel planner -runs 4 -seed 1

replay:
	$(GO) run ./cmd/mavfi-replay -verify $(RECORD_DIR)/nominal $(RECORD_DIR)/kfault

# replay-verify is the CI determinism gate. It records a nominal and a
# fault-injected cell twice — once with 1 campaign worker, once with 4 —
# then (a) requires the recordings to be byte-identical across worker widths
# (cmp) and (b) re-simulates every recording from its header, failing on the
# first byte of divergence between the recomputed and recorded tick streams.
replay-verify:
	rm -rf data/ci
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w1/nominal -runs 3 -seed 1 -workers 1
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w1/kfault -kernel planner -runs 3 -seed 1 -workers 1
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w1/sfault -state wp_x -runs 3 -seed 1 -workers 1
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w1/senfault -fault sensor -runs 3 -seed 1 -workers 1
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w1/actfault -fault actuator -runs 3 -seed 1 -workers 1
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w4/nominal -runs 3 -seed 1 -workers 4
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w4/kfault -kernel planner -runs 3 -seed 1 -workers 4
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w4/sfault -state wp_x -runs 3 -seed 1 -workers 4
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w4/senfault -fault sensor -runs 3 -seed 1 -workers 4
	$(GO) run ./cmd/mavfi-replay -record -o data/ci/w4/actfault -fault actuator -runs 3 -seed 1 -workers 4
	@for cell in nominal kfault sfault senfault actfault; do \
		for f in data/ci/w1/$$cell/*.rec; do \
			cmp "$$f" "data/ci/w4/$$cell/$$(basename $$f)" || exit 1; \
		done; \
	done; echo "worker-width byte-identity: ok"
	$(GO) run ./cmd/mavfi-replay -verify data/ci/w1/nominal data/ci/w1/kfault data/ci/w1/sfault data/ci/w1/senfault data/ci/w1/actfault

# matrix-smoke is the CI campaign-matrix determinism gate: a tiny matrix
# (2 worlds x 3 zoo families x 2 severities, 2 missions per cell) run at 1
# and 4 workers, requiring every per-cell CSV and the summary to be
# byte-identical across widths. No -deadline: wall-clock deadlines are the
# one knob that trades the byte-identity invariant for runaway protection.
matrix-smoke:
	rm -rf data/matrix
	$(GO) run ./cmd/mavfi matrix -worlds sparse,factory -families sensor,actuator,wind \
		-severities low,high -runs 2 -seed 1 -workers 1 -csv-dir data/matrix/w1
	$(GO) run ./cmd/mavfi matrix -worlds sparse,factory -families sensor,actuator,wind \
		-severities low,high -runs 2 -seed 1 -workers 4 -csv-dir data/matrix/w4
	diff -r data/matrix/w1 data/matrix/w4
	@echo "matrix worker-width byte-identity: ok"

# server-smoke is the CI campaign-service gate: boot mavfi-server, submit one
# job over HTTP (blocking on ?wait=1), probe /healthz and /metrics, download
# the job's CSV artifacts, then byte-compare them against the same cell run
# through the `mavfi matrix` CLI at a different worker width. Proves the
# served-equals-CLI determinism contract end to end through a real TCP
# socket, not just httptest.
SERVER_ADDR ?= 127.0.0.1:18080
server-smoke:
	rm -rf data/server && mkdir -p data/server
	$(GO) build -o data/server/mavfi-server ./cmd/mavfi-server
	@set -e; \
	data/server/mavfi-server -addr $(SERVER_ADDR) -workers 4 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(SERVER_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -sf http://$(SERVER_ADDR)/healthz | grep -q ok; \
	curl -sf -X POST 'http://$(SERVER_ADDR)/jobs?wait=1' \
		-d '{"world":"sparse","fault":"sensor","severity":"high","runs":3,"seed":1}' \
		> data/server/job.json; \
	grep -q '"state": "done"' data/server/job.json; \
	curl -sf http://$(SERVER_ADDR)/metrics | grep -q 'mavfi_jobs_done_total 1'; \
	curl -sf http://$(SERVER_ADDR)/metrics | grep -q 'mavfi_missions_total 3'; \
	curl -sf http://$(SERVER_ADDR)/jobs/job-0001/cell.csv > data/server/cell.csv; \
	curl -sf http://$(SERVER_ADDR)/jobs/job-0001/summary.csv > data/server/summary.csv
	$(GO) run ./cmd/mavfi matrix -worlds sparse -families sensor -severities high \
		-runs 3 -seed 1 -workers 1 -csv-dir data/server/cli
	cmp data/server/cell.csv data/server/cli/cell-000-sparse-sensor-high-none-norec.csv
	cmp data/server/summary.csv data/server/cli/summary.csv
	@echo "served-campaign byte-identity: ok"

# dispatch-smoke is the CI sharded-dispatch gate: a dispatcher fans a small
# campaign matrix out to two worker shards over real TCP sockets, one worker
# is SIGKILLed as soon as the first cell result lands, and the campaign must
# still complete — the surviving shard absorbs the retries — with CSVs
# byte-identical to a single-process `mavfi matrix` run of the same spec.
# Proves the lease/retry/fencing contract end to end through real process
# death, not just the in-package chaos test.
DISPATCH_ADDR ?= 127.0.0.1:18090
DISPATCH_W1 ?= 127.0.0.1:18091
DISPATCH_W2 ?= 127.0.0.1:18092
dispatch-smoke:
	rm -rf data/dispatch && mkdir -p data/dispatch
	$(GO) build -o data/dispatch/mavfi-server ./cmd/mavfi-server
	@set -e; \
	data/dispatch/mavfi-server -worker -addr $(DISPATCH_W1) & w1=$$!; \
	data/dispatch/mavfi-server -worker -addr $(DISPATCH_W2) & w2=$$!; \
	trap 'kill $$w1 $$w2 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(DISPATCH_W1)/healthz >/dev/null 2>&1 && \
		curl -sf http://$(DISPATCH_W2)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -sf http://$(DISPATCH_W1)/healthz | grep -q ok; \
	curl -sf http://$(DISPATCH_W2)/healthz | grep -q ok; \
	data/dispatch/mavfi-server -dispatch -addr $(DISPATCH_ADDR) \
		-shards $(DISPATCH_W1),$(DISPATCH_W2) \
		-state-dir data/dispatch/state -csv-dir data/dispatch/out \
		-worlds sparse -families sensor,wind,actuator -severities low,high \
		-runs 2 -seed 1 & d=$$!; \
	trap 'kill $$w1 $$w2 $$d 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 600); do \
		ls data/dispatch/state/cells/cell-*.json >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	kill -9 $$w1 2>/dev/null || true; \
	echo "SIGKILLed worker 1 mid-campaign"; \
	wait $$d; \
	kill $$w2 2>/dev/null || true
	$(GO) run ./cmd/mavfi matrix -worlds sparse -families sensor,wind,actuator \
		-severities low,high -runs 2 -seed 1 -workers 4 -csv-dir data/dispatch/cli
	diff -r data/dispatch/out data/dispatch/cli
	@echo "sharded-dispatch byte-identity under worker death: ok"

# approx-smoke is the CI approximate-mode gate: (a) a seeded+strided matrix
# cell run at 1 and 4 workers must be byte-identical (golden maps are built
# before the fan-out, so worker width stays unobservable even in approximate
# mode), and (b) the equivalence/fidelity suites that pin the exact-mode
# digests and the approximate-mode deltas must pass.
approx-smoke:
	rm -rf data/approx
	$(GO) run ./cmd/mavfi matrix -worlds sparse -families sensor,wind -severities high \
		-runs 2 -seed 1 -workers 1 -map-seed memo -near-stride 2 -csv-dir data/approx/w1
	$(GO) run ./cmd/mavfi matrix -worlds sparse -families sensor,wind -severities high \
		-runs 2 -seed 1 -workers 4 -map-seed memo -near-stride 2 -csv-dir data/approx/w4
	diff -r data/approx/w1 data/approx/w4
	@echo "approximate-mode worker-width byte-identity: ok"
	$(GO) test -run 'TestEmptySeedReproducesGoldenDigests|TestZeroStrideBitIdentical' -count=1 ./internal/pipeline
	$(GO) test -run 'TestFidelity|TestSeededMatrix' -count=1 ./internal/campaign/matrix

# fuzz-smoke gives each fuzz target a short budget on every PR, so the
# corpus-regression entries always replay and the targets cannot rot. Real
# crash-hunting runs use longer -fuzztime locally.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzRecordRead$$' -fuzztime=10s ./internal/record
	$(GO) test -run=NONE -fuzz='^FuzzParseTarget$$' -fuzztime=10s ./internal/campaign/matrix
	$(GO) test -run=NONE -fuzz='^FuzzParseSeverities$$' -fuzztime=5s ./internal/campaign/matrix
	$(GO) test -run=NONE -fuzz='^FuzzSnapshotRead$$' -fuzztime=10s ./internal/octomap

# cover is the CI coverage gate: short-mode statement coverage over every
# internal/ and cmd/ package, failing below the floor measured when the gate
# was introduced (71.5% at the time; floor leaves slack for timing-dependent
# skips, never for deleted tests).
COVER_FLOOR ?= 71.0
cover:
	$(GO) test -short -coverprofile=coverage.out -coverpkg=./internal/...,./cmd/... ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, ""); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t + 0 >= f + 0) }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# staticcheck / vulncheck run pinned analyzer versions via `go run`, so CI
# and local runs use identical tools with nothing to install.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...
