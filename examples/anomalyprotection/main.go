// Anomalyprotection: trains both of the paper's anomaly detectors on
// error-free flights, then replays the same fault-injection schedule
// unprotected, with Gaussian-based detection & recovery, and with
// autoencoder-based detection & recovery — the core claim of the paper in
// one example.
//
//	go run ./examples/anomalyprotection
package main

import (
	"fmt"
	"math/rand"

	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
)

func main() {
	world := env.Sparse(rand.New(rand.NewSource(1)))
	const runs = 25

	fmt.Println("training detectors on error-free flights (a minute or so)...")
	data := pipeline.CollectTrainingData(60, 1000, platform.I9())
	gad := pipeline.TrainGAD(data, 4)
	aad := pipeline.TrainAAD(data, detect.DefaultAADConfig(), 2000)
	fmt.Printf("  %d training samples; AAD threshold %.2f, %d parameters\n\n",
		len(data), aad.Threshold, aad.Params())

	// One shared injection schedule, replayed under each protection
	// setting for a paired comparison.
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{World: world, Seed: 999, Counter: ctr})
	rng := rand.New(rand.NewSource(5))
	kernels := []faultinject.Kernel{
		faultinject.KernelOctoMap, faultinject.KernelColCheck,
		faultinject.KernelPlanner, faultinject.KernelPID,
	}
	plans := make([]faultinject.Plan, runs)
	for i := range plans {
		k := kernels[i%len(kernels)]
		plans[i] = faultinject.NewPlan(k, ctr.Count(k), rng)
	}

	run := func(name string, det func() detect.Detector) *qof.Campaign {
		c := &qof.Campaign{Name: name}
		for i, plan := range plans {
			p := plan
			cfg := pipeline.Config{World: world, Seed: int64(i), KernelFault: &p}
			if det != nil {
				cfg.Detector = det()
			}
			c.Add(pipeline.RunMission(cfg).Metrics)
		}
		return c
	}

	unprotected := run("unprotected", nil)
	withGAD := run("GAD", func() detect.Detector { g := *gad; return &g })
	withAAD := run("AAD", func() detect.Detector { return aad })

	fmt.Println("fault-injection results (Sparse environment):")
	for _, c := range []*qof.Campaign{unprotected, withGAD, withAAD} {
		s := c.FlightTimeSummary()
		fmt.Printf("  %-12s success=%5.1f%%  worst flight time=%6.1fs  mean overhead=%.4f%%\n",
			c.Name, c.SuccessRate()*100, s.Max, c.MeanOverheadFrac()*100)
	}
}
