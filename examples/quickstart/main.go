// Quickstart: fly one error-free package-delivery mission through the
// Sparse environment and print its quality-of-flight metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"mavfi/internal/env"
	"mavfi/internal/pipeline"
)

func main() {
	// Generate the paper's Sparse environment: obstacle density 0.05,
	// 6 m cuboids.
	world := env.Sparse(rand.New(rand.NewSource(7)))

	// Fly the full perception-planning-control pipeline closed-loop.
	res := pipeline.RunMission(pipeline.Config{
		World: world,
		Seed:  42,
	})

	fmt.Println("MAVFI quickstart — one golden mission in Sparse")
	fmt.Printf("  outcome:     %v\n", res.Outcome)
	fmt.Printf("  flight time: %.1f s\n", res.FlightTimeS)
	fmt.Printf("  distance:    %.1f m\n", res.DistanceM)
	fmt.Printf("  energy:      %.1f kJ\n", res.EnergyJ/1000)
	fmt.Printf("  plans:       %d\n", res.Plans)
}
