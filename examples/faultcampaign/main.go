// Faultcampaign: a miniature version of the paper's Fig. 3 study. Injects
// one-time single-bit faults into the PID control kernel across 30 missions
// and compares the flight-time distribution and success rate against the
// golden baseline.
//
//	go run ./examples/faultcampaign
package main

import (
	"context"
	"fmt"
	"math/rand"

	"mavfi/internal/campaign"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

func main() {
	world := env.Sparse(rand.New(rand.NewSource(7)))
	const runs = 30
	runner := campaign.New() // GOMAXPROCS workers, or MAVFI_WORKERS
	ctx := context.Background()

	// Golden baseline, sharded across the worker pool. Results are
	// bit-identical for any worker count: each mission depends only on its
	// index, and the campaign is assembled in mission order.
	goldenOut, _ := runner.Run(ctx, "golden", runs, func(i int) qof.Metrics {
		return pipeline.RunMission(pipeline.Config{World: world, Seed: int64(i)}).Metrics
	})
	golden := goldenOut.Campaign

	// Calibrate the PID kernel's dynamic value count on one golden run so
	// injections target a uniformly random live value.
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{World: world, Seed: 999, Counter: ctr})

	// Injection campaign: one single-bit flip inside the PID kernel per
	// mission. The plans are drawn up front (sequential RNG consumption),
	// then the missions fan out.
	rng := rand.New(rand.NewSource(13))
	plans := make([]faultinject.Plan, runs)
	for i := range plans {
		plans[i] = faultinject.NewPlan(faultinject.KernelPID, ctr.Count(faultinject.KernelPID), rng)
	}
	injOut, _ := runner.Run(ctx, "PID faults", runs, func(i int) qof.Metrics {
		return pipeline.RunMission(pipeline.Config{
			World:       world,
			Seed:        int64(i),
			KernelFault: &plans[i],
		}).Metrics
	})
	injected := injOut.Campaign
	worstBit := uint(0)
	worstTime := 0.0
	for i, m := range injected.Results {
		if m.FlightTimeS > worstTime {
			worstTime, worstBit = m.FlightTimeS, plans[i].Bit
		}
	}

	fmt.Println("MAVFI fault campaign — PID kernel, Sparse environment")
	show := func(c *qof.Campaign) {
		s := c.FlightTimeSummary()
		fmt.Printf("  %-12s success=%5.1f%%  flight time med=%.1fs p95=%.1fs max=%.1fs\n",
			c.Name, c.SuccessRate()*100, s.Median, s.P95, s.Max)
	}
	show(golden)
	show(injected)
	fmt.Printf("  worst injected run: %.1f s (bit %d, %s field)\n",
		worstTime, worstBit, faultinject.ClassifyBit(worstBit))
}
