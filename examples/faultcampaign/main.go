// Faultcampaign: a miniature version of the paper's Fig. 3 study. Injects
// one-time single-bit faults into the PID control kernel across 30 missions
// and compares the flight-time distribution and success rate against the
// golden baseline.
//
//	go run ./examples/faultcampaign
package main

import (
	"fmt"
	"math/rand"

	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

func main() {
	world := env.Sparse(rand.New(rand.NewSource(7)))
	const runs = 30

	// Golden baseline.
	golden := &qof.Campaign{Name: "golden"}
	for i := 0; i < runs; i++ {
		res := pipeline.RunMission(pipeline.Config{World: world, Seed: int64(i)})
		golden.Add(res.Metrics)
	}

	// Calibrate the PID kernel's dynamic value count on one golden run so
	// injections target a uniformly random live value.
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{World: world, Seed: 999, Counter: ctr})

	// Injection campaign: one single-bit flip inside the PID kernel per
	// mission.
	rng := rand.New(rand.NewSource(13))
	injected := &qof.Campaign{Name: "PID faults"}
	worstBit := uint(0)
	worstTime := 0.0
	for i := 0; i < runs; i++ {
		plan := faultinject.NewPlan(faultinject.KernelPID, ctr.Count(faultinject.KernelPID), rng)
		res := pipeline.RunMission(pipeline.Config{
			World:       world,
			Seed:        int64(i),
			KernelFault: &plan,
		})
		injected.Add(res.Metrics)
		if res.FlightTimeS > worstTime {
			worstTime, worstBit = res.FlightTimeS, plan.Bit
		}
	}

	fmt.Println("MAVFI fault campaign — PID kernel, Sparse environment")
	show := func(c *qof.Campaign) {
		s := c.FlightTimeSummary()
		fmt.Printf("  %-12s success=%5.1f%%  flight time med=%.1fs p95=%.1fs max=%.1fs\n",
			c.Name, c.SuccessRate()*100, s.Median, s.P95, s.Max)
	}
	show(golden)
	show(injected)
	fmt.Printf("  worst injected run: %.1f s (bit %d, %s field)\n",
		worstTime, worstBit, faultinject.ClassifyBit(worstBit))
}
