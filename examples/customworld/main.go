// Customworld: builds a bespoke warehouse-inspection environment with the
// env API, flies it on both compute platforms, and dumps the i9 trajectory
// as CSV — showing how a downstream user targets their own scenario.
//
//	go run ./examples/customworld
package main

import (
	"fmt"
	"os"

	"mavfi/internal/env"
	"mavfi/internal/geom"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
)

func buildWarehouse() *env.World {
	w := &env.World{
		Name:          "Warehouse",
		Bounds:        geom.Box(geom.V(0, 0, 0), geom.V(50, 30, 12)),
		Start:         geom.V(4, 15, 0),
		Goal:          geom.V(46, 15, 2.5),
		GoalTolerance: 1.5,
	}
	// Two rows of storage racks with an aisle between them.
	for x := 10.0; x <= 38; x += 8 {
		w.Obstacles = append(w.Obstacles,
			geom.Box(geom.V(x, 2, 0), geom.V(x+3, 12, 8)),  // south rack
			geom.Box(geom.V(x, 18, 0), geom.V(x+3, 28, 8)), // north rack
		)
	}
	return w
}

func main() {
	world := buildWarehouse()
	if err := world.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid world:", err)
		os.Exit(1)
	}
	fmt.Printf("Warehouse: %d obstacles, density %.3f\n",
		len(world.Obstacles), world.ObstacleDensity())

	for _, p := range []platform.Platform{platform.I9(), platform.TX2()} {
		res := pipeline.RunMission(pipeline.Config{
			World:    world,
			Platform: p,
			Seed:     11,
			Record:   p.Name == "i9-9940X",
		})
		fmt.Printf("  %-10s outcome=%-8v flight time=%5.1fs energy=%5.1fkJ plans=%d\n",
			p.Name, res.Outcome, res.FlightTimeS, res.EnergyJ/1000, res.Plans)

		if res.Trace != nil {
			res.Trace.Label = "warehouse-i9"
			f, err := os.Create("warehouse_trace.csv")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := res.Trace.WriteCSV(f, true); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
			fmt.Printf("  wrote warehouse_trace.csv (%d samples)\n", len(res.Trace.Samples))
		}
	}
}
