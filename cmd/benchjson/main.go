// Command benchjson converts `go test -bench` output on stdin into a JSON
// map of benchmark name → metrics and writes it to -o (default stdout),
// echoing the raw stream to stderr so progress stays visible:
//
//	go test -bench=. -benchmem -run '^$' ./... | benchjson -o BENCH_PR2.json
//
// Standard metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric units
// are both captured. The GOMAXPROCS suffix (-8) is stripped so files diff
// cleanly across machines; sub-benchmark paths are kept. Benchmark names are
// only unique per package, so keys are qualified with the package path from
// the `pkg:` header lines (module-root benchmarks stay bare).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var pkg, rootPkg string
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			// The first pkg seen with no path separator is the module root;
			// its benchmarks keep unqualified names.
			if rootPkg == "" && !strings.Contains(pkg, "/") {
				rootPkg = pkg
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if pkg != "" && pkg != rootPkg {
			// Strip the module prefix for stable, readable keys.
			short := pkg
			if i := strings.Index(short, "/"); i >= 0 {
				short = short[i+1:]
			}
			name = short + "." + name
		}
		// Strip the GOMAXPROCS suffix from the leaf segment only, so
		// sub-benchmark names like workers=8 survive.
		if i := strings.LastIndex(name, "/"); i < 0 {
			name = procSuffix.ReplaceAllString(name, "")
		} else {
			name = name[:i+1] + procSuffix.ReplaceAllString(name[i+1:], "")
		}
		metrics := results[name]
		if metrics == nil {
			metrics = map[string]float64{}
			results[name] = metrics
		}
		metrics["iterations"], _ = strconv.ParseFloat(m[2], 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	// Stable key order so the JSON file diffs cleanly between runs.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, " %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(b.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
