// Command mavfi-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	mavfi-experiments [-exp all|fig3|fig4|table1|fig6|fig7|table2|fig8|fig9|ablations]
//	                  [-runs N] [-train N] [-seed S] [-fig7csv PATH]
//
// With -runs 100 -train 100 the campaigns match the paper's scale (about a
// thousand simulated missions per environment study); smaller values scale
// everything down proportionally.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"mavfi/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: all, fig3, fig4, table1, fig6, fig7, table2, fig8, fig9, ablations")
		runs    = flag.Int("runs", 100, "missions per campaign cell (paper: 100)")
		train   = flag.Int("train", 100, "error-free training environments (paper: ~100)")
		seed    = flag.Int64("seed", 1, "campaign seed")
		workers = flag.Int("workers", 0, "campaign worker goroutines (0 = MAVFI_WORKERS, else GOMAXPROCS)")
		fig7csv = flag.String("fig7csv", "", "write Fig. 7 trajectories as CSV to this path prefix")
	)
	flag.Parse()

	opts := experiments.PaperOpts()
	opts.Runs = *runs
	opts.TrainEnvs = *train
	opts.Seed = *seed
	opts.Workers = *workers
	ctx := experiments.NewContext(opts)

	// Campaigns are interruptible: Ctrl-C stops scheduling new missions and
	// the partial results are flagged below.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx.SetContext(sigCtx)

	want := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()

	if want("fig3") {
		fmt.Print(ctx.Fig3())
	}
	if want("fig4") {
		fmt.Print(ctx.Fig4())
	}
	if want("table1") {
		fmt.Print(ctx.TableI())
	}
	if want("fig6") {
		fmt.Print(ctx.Fig6())
	}
	if want("table2") {
		fmt.Print(ctx.TableII())
	}
	if want("fig7") {
		f7 := ctx.Fig7()
		fmt.Print(f7)
		if *fig7csv != "" {
			for i := range f7.Cases {
				path := fmt.Sprintf("%s_case%d.csv", strings.TrimSuffix(*fig7csv, ".csv"), i)
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "fig7 csv:", err)
					os.Exit(1)
				}
				if err := f7.WriteCSV(f, i); err != nil {
					fmt.Fprintln(os.Stderr, "fig7 csv:", err)
				}
				f.Close()
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	if want("fig8") {
		fmt.Print(ctx.Fig8())
	}
	if want("fig9") {
		fmt.Print(ctx.Fig9())
	}
	if want("ablations") {
		fmt.Print(ctx.AblationSigma())
		fmt.Print(ctx.AblationPreprocess())
		fmt.Print(ctx.AblationBottleneck())
		fmt.Print(ctx.AblationRecovery())
	}

	if ctx.Interrupted() {
		fmt.Fprintln(os.Stderr, "interrupted: campaigns above are partial")
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}
