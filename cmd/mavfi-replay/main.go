// Command mavfi-replay records, verifies, and renders mission recordings.
//
// A recording captures everything a mission needs to be re-flown — seed,
// world geometry, platform, fault plans, pre-mission detector state — plus
// the full tick log. Because the simulator is deterministic, re-simulating
// from the header must reproduce the tick log byte-for-byte; -verify is that
// determinism gate, and CI runs it on every push (make replay-verify).
//
// Usage:
//
//	mavfi-replay -record -o DIR [-env sparse] [-kernel planner | -state wp_x]
//	             [-runs 4] [-seed 1] [-workers 0]
//	    record a campaign cell, one .rec file per mission under DIR
//
//	mavfi-replay -verify PATH...
//	    re-simulate each recording (file or directory of *.rec) and fail
//	    unless the recomputed tick stream byte-matches the log
//
//	mavfi-replay -csv PATH [> out.csv]
//	    render a recording to the standard trace CSV without re-simulation
//
//	mavfi-replay -info PATH...
//	    print header/footer metadata (files or directories)
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"mavfi/internal/campaign"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/record"
)

var kernelNames = map[string]faultinject.Kernel{
	"pcgen":    faultinject.KernelPCGen,
	"octomap":  faultinject.KernelOctoMap,
	"colcheck": faultinject.KernelColCheck,
	"planner":  faultinject.KernelPlanner,
	"pid":      faultinject.KernelPID,
}

func stateByName(name string) (faultinject.StateID, bool) {
	for s := faultinject.StateID(0); s < faultinject.NumInjectableStates; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

func main() {
	var (
		doRecord = flag.Bool("record", false, "record a campaign cell to -o")
		doVerify = flag.Bool("verify", false, "byte-verify recordings by re-simulation")
		doCSV    = flag.Bool("csv", false, "render one recording to CSV on stdout")
		doInfo   = flag.Bool("info", false, "print recording metadata")

		out     = flag.String("o", "", "output directory for -record")
		envName = flag.String("env", "sparse", "environment: factory, farm, sparse, dense")
		kernel  = flag.String("kernel", "", "kernel to inject (instruction-level mode)")
		state   = flag.String("state", "", "inter-kernel state to corrupt (message-level mode)")
		runs    = flag.Int("runs", 4, "missions to record")
		seed    = flag.Int64("seed", 1, "campaign seed")
		workers = flag.Int("workers", 0, "campaign worker goroutines (0 = MAVFI_WORKERS, else GOMAXPROCS)")
	)
	flag.Parse()

	modes := 0
	for _, m := range []bool{*doRecord, *doVerify, *doCSV, *doInfo} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "specify exactly one of -record, -verify, -csv, -info")
		os.Exit(2)
	}

	switch {
	case *doRecord:
		if *out == "" {
			fmt.Fprintln(os.Stderr, "-record requires -o DIR")
			os.Exit(2)
		}
		if *kernel != "" && *state != "" {
			fmt.Fprintln(os.Stderr, "specify at most one of -kernel or -state")
			os.Exit(2)
		}
		if err := recordCell(*out, *envName, *kernel, *state, *runs, *seed, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *doVerify:
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "-verify requires recording paths")
			os.Exit(2)
		}
		if !verifyAll(expand(flag.Args())) {
			os.Exit(1)
		}
	case *doCSV:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "-csv requires exactly one recording")
			os.Exit(2)
		}
		m, err := record.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := m.Trace().WriteCSV(os.Stdout, true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *doInfo:
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "-info requires recording paths")
			os.Exit(2)
		}
		for _, path := range expand(flag.Args()) {
			printInfo(path)
		}
	}
}

// makeWorld builds the named environment with the same fixed generator seed
// cmd/mavfi uses, so recordings are comparable across tools.
func makeWorld(name string) (*env.World, error) {
	rng := rand.New(rand.NewSource(1))
	switch name {
	case "factory":
		return env.Factory(), nil
	case "farm":
		return env.Farm(), nil
	case "sparse":
		return env.Sparse(rng), nil
	case "dense":
		return env.Dense(rng), nil
	default:
		return nil, fmt.Errorf("unknown env %q", name)
	}
}

// recordCell records one campaign cell — nominal, or with a kernel/state
// fault drawn per mission exactly as cmd/mavfi draws them (calibration count,
// then a sequential plan RNG), so a recorded cell is a faithful slice of the
// full fault-injection campaign.
func recordCell(dir, envName, kernel, state string, runs int, seed int64, workers int) error {
	world, err := makeWorld(envName)
	if err != nil {
		return err
	}

	var cfgs []pipeline.Config
	switch {
	case kernel != "":
		k, ok := kernelNames[kernel]
		if !ok {
			return fmt.Errorf("unknown kernel %q", kernel)
		}
		ctr := faultinject.NewCounter()
		pipeline.RunMission(pipeline.Config{World: world, Seed: seed + 555, Counter: ctr})
		planRNG := rand.New(rand.NewSource(seed + 42))
		for i := 0; i < runs; i++ {
			plan := faultinject.NewPlan(k, ctr.Count(k), planRNG)
			cfgs = append(cfgs, pipeline.Config{World: world, Seed: seed + int64(i), KernelFault: &plan})
		}
	case state != "":
		s, ok := stateByName(state)
		if !ok {
			return fmt.Errorf("unknown state %q", state)
		}
		nominal := pipeline.NominalDuration(pipeline.Config{World: world})
		planRNG := rand.New(rand.NewSource(seed + 42))
		for i := 0; i < runs; i++ {
			plan := faultinject.NewStatePlan(s, nominal*0.15, nominal*0.85, planRNG)
			cfgs = append(cfgs, pipeline.Config{World: world, Seed: seed + int64(i), StateFault: &plan})
		}
	default:
		for i := 0; i < runs; i++ {
			cfgs = append(cfgs, pipeline.Config{World: world, Seed: seed + int64(i)})
		}
	}

	runner := campaign.New(campaign.WithWorkers(workers))
	out, err := record.RunCampaign(context.Background(), runner, dir, "record", runs,
		func(i int) pipeline.Config { return cfgs[i] })
	if err != nil {
		return err
	}
	c := out.Campaign
	fmt.Printf("recorded %d missions to %s (success %.1f%%)\n", c.N(), dir, c.SuccessRate()*100)
	return nil
}

// expand replaces directory arguments with the *.rec files inside them.
func expand(args []string) []string {
	var paths []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err == nil && st.IsDir() {
			matches, _ := filepath.Glob(filepath.Join(a, "*.rec"))
			if len(matches) == 0 {
				fmt.Fprintf(os.Stderr, "warning: no *.rec files in %s\n", a)
			}
			paths = append(paths, matches...)
			continue
		}
		paths = append(paths, a)
	}
	return paths
}

// verifyAll re-simulates every recording and reports per-file pass/fail.
func verifyAll(paths []string) bool {
	ok := true
	for _, path := range paths {
		m, err := record.Open(path)
		if err != nil {
			fmt.Printf("FAIL  %s: %v\n", path, err)
			ok = false
			continue
		}
		if err := m.Verify(); err != nil {
			fmt.Printf("FAIL  %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Printf("ok    %s (%d ticks byte-identical)\n", path, m.Footer.Samples)
	}
	return ok
}

// printInfo dumps one recording's metadata.
func printInfo(path string) {
	m, err := record.Open(path)
	if err != nil && !m.Complete && m.Header.Version == 0 {
		fmt.Printf("%s: %v\n", path, err)
		return
	}
	h := m.Header
	fault := "none"
	if h.KernelFault != nil {
		fault = fmt.Sprintf("kernel %s idx=%d bit=%d", h.KernelFault.Kernel, h.KernelFault.Index, h.KernelFault.Bit)
	} else if h.StateFault != nil {
		fault = fmt.Sprintf("state %s t=%.2f bit=%d", h.StateFault.State, h.StateFault.Time, h.StateFault.Bit)
	}
	det := "none"
	if h.Detector != nil {
		det = h.Detector.Kind
	}
	status := "complete"
	if !m.Complete {
		status = "INCOMPLETE (no footer)"
	}
	fmt.Printf("%s: %s\n", path, status)
	fmt.Printf("  world=%s seed=%d planner=%s tick=%.3fs platform=%s\n",
		h.World.Name, h.Seed, h.PlannerName, h.TickS, h.Platform.Name)
	fmt.Printf("  fault=%s detector=%s\n", fault, det)
	if m.Complete {
		f := m.Footer
		fmt.Printf("  ticks=%d payload=%dB digest=%s\n", f.Samples, f.PayloadBytes, f.Digest)
		fmt.Printf("  result: outcome=%s flight=%.1fs injected=%v alarms=%d events=%d\n",
			f.Result.OutcomeName, f.Result.FlightTimeS, f.Result.Injected, f.Result.Alarms, len(m.Events))
	} else if n := len(m.Snapshots); n > 0 {
		s := m.Snapshots[n-1]
		fmt.Printf("  last snapshot: %d ticks, t=%.1fs pos=%v\n", s.Samples, s.T, s.Pos)
	}
	for _, e := range m.Events {
		fmt.Printf("  event t=%7.2fs tick=%5d %s\n", e.T, e.Tick, strings.ReplaceAll(e.Tags, ";", " "))
	}
}
