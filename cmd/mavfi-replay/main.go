// Command mavfi-replay records, verifies, and renders mission recordings.
//
// A recording captures everything a mission needs to be re-flown — seed,
// world geometry, platform, fault plans, pre-mission detector state — plus
// the full tick log. Because the simulator is deterministic, re-simulating
// from the header must reproduce the tick log byte-for-byte; -verify is that
// determinism gate, and CI runs it on every push (make replay-verify).
//
// Usage:
//
//	mavfi-replay -record -o DIR [-env sparse]
//	             [-kernel planner | -state wp_x | -fault sensor[:kind]]
//	             [-severity 1.0] [-runs 4] [-seed 1] [-workers 0]
//	    record a campaign cell, one .rec file per mission under DIR
//
//	mavfi-replay -verify PATH...
//	    re-simulate each recording (file or directory of *.rec) and fail
//	    unless the recomputed tick stream byte-matches the log; corrupt or
//	    incomplete files are reported and skipped, the aggregate summary
//	    decides the exit status
//
//	mavfi-replay -csv PATH [> out.csv]
//	    render a recording to the standard trace CSV without re-simulation
//
//	mavfi-replay -info PATH...
//	    print header/footer metadata (files or directories)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"mavfi/internal/campaign"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/record"
)

var kernelNames = map[string]faultinject.Kernel{
	"pcgen":    faultinject.KernelPCGen,
	"octomap":  faultinject.KernelOctoMap,
	"colcheck": faultinject.KernelColCheck,
	"planner":  faultinject.KernelPlanner,
	"pid":      faultinject.KernelPID,
}

func stateByName(name string) (faultinject.StateID, bool) {
	for s := faultinject.StateID(0); s < faultinject.NumInjectableStates; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

func main() {
	var (
		doRecord = flag.Bool("record", false, "record a campaign cell to -o")
		doVerify = flag.Bool("verify", false, "byte-verify recordings by re-simulation")
		doCSV    = flag.Bool("csv", false, "render one recording to CSV on stdout")
		doInfo   = flag.Bool("info", false, "print recording metadata")

		out      = flag.String("o", "", "output directory for -record")
		envName  = flag.String("env", "sparse", "environment: factory, farm, sparse, dense")
		kernel   = flag.String("kernel", "", "kernel to inject (instruction-level mode)")
		state    = flag.String("state", "", "inter-kernel state to corrupt (message-level mode)")
		fault    = flag.String("fault", "", "zoo fault family[:kind], e.g. sensor, actuator:thrust_loss, wind")
		severity = flag.Float64("severity", 1.0, "fault severity scale for -fault families")
		runs     = flag.Int("runs", 4, "missions to record")
		seed     = flag.Int64("seed", 1, "campaign seed")
		workers  = flag.Int("workers", 0, "campaign worker goroutines (0 = MAVFI_WORKERS, else GOMAXPROCS)")
	)
	flag.Parse()

	modes := 0
	for _, m := range []bool{*doRecord, *doVerify, *doCSV, *doInfo} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "specify exactly one of -record, -verify, -csv, -info")
		os.Exit(2)
	}

	switch {
	case *doRecord:
		if *out == "" {
			fmt.Fprintln(os.Stderr, "-record requires -o DIR")
			os.Exit(2)
		}
		faults := 0
		for _, set := range []bool{*kernel != "", *state != "", *fault != ""} {
			if set {
				faults++
			}
		}
		if faults > 1 {
			fmt.Fprintln(os.Stderr, "specify at most one of -kernel, -state, or -fault")
			os.Exit(2)
		}
		if err := recordCell(*out, *envName, *kernel, *state, *fault, *severity, *runs, *seed, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *doVerify:
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "-verify requires recording paths")
			os.Exit(2)
		}
		if !verifyAll(expand(flag.Args())) {
			os.Exit(1)
		}
	case *doCSV:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "-csv requires exactly one recording")
			os.Exit(2)
		}
		m, err := record.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := m.Trace().WriteCSV(os.Stdout, true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *doInfo:
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "-info requires recording paths")
			os.Exit(2)
		}
		for _, path := range expand(flag.Args()) {
			printInfo(path)
		}
	}
}

// recordCell records one campaign cell — nominal, or with a fault drawn per
// mission exactly as cmd/mavfi draws them (calibration count where the family
// needs one, then a sequential plan RNG), so a recorded cell is a faithful
// slice of the full fault-injection campaign.
func recordCell(dir, envName, kernel, state, fault string, severity float64, runs int, seed int64, workers int) error {
	world, err := matrix.World(envName)
	if err != nil {
		return err
	}

	var cfgs []pipeline.Config
	switch {
	case kernel != "":
		k, ok := kernelNames[kernel]
		if !ok {
			return fmt.Errorf("unknown kernel %q", kernel)
		}
		ctr := faultinject.NewCounter()
		pipeline.RunMission(pipeline.Config{World: world, Seed: seed + 555, Counter: ctr})
		planRNG := rand.New(rand.NewSource(seed + 42))
		for i := 0; i < runs; i++ {
			plan := faultinject.NewPlan(k, ctr.Count(k), planRNG)
			cfgs = append(cfgs, pipeline.Config{World: world, Seed: seed + int64(i), KernelFault: &plan})
		}
	case state != "":
		s, ok := stateByName(state)
		if !ok {
			return fmt.Errorf("unknown state %q", state)
		}
		nominal := pipeline.NominalDuration(pipeline.Config{World: world})
		planRNG := rand.New(rand.NewSource(seed + 42))
		for i := 0; i < runs; i++ {
			plan := faultinject.NewStatePlan(s, nominal*0.15, nominal*0.85, planRNG)
			cfgs = append(cfgs, pipeline.Config{World: world, Seed: seed + int64(i), StateFault: &plan})
		}
	case fault != "":
		fam, spec, err := faultinject.ParseTarget(fault)
		if err != nil {
			return err
		}
		spec.NominalS = pipeline.NominalDuration(pipeline.Config{World: world})
		spec.Severity = severity
		var ctr *faultinject.Counter
		if fam == faultinject.FamilyKernel {
			ctr = faultinject.NewCounter()
			pipeline.RunMission(pipeline.Config{World: world, Seed: seed + 555, Counter: ctr})
		}
		planRNG := rand.New(rand.NewSource(seed + 42))
		for i := 0; i < runs; i++ {
			cfg := pipeline.Config{World: world, Seed: seed + int64(i)}
			cfg.SetFault(faultinject.DrawFault(fam, spec, ctr, planRNG))
			cfgs = append(cfgs, cfg)
		}
	default:
		for i := 0; i < runs; i++ {
			cfgs = append(cfgs, pipeline.Config{World: world, Seed: seed + int64(i)})
		}
	}

	runner := campaign.New(campaign.WithWorkers(workers))
	out, err := record.RunCampaign(context.Background(), runner, dir, "record", runs,
		func(i int) pipeline.Config { return cfgs[i] })
	if err != nil {
		return err
	}
	c := out.Campaign
	fmt.Printf("recorded %d missions to %s (success %.1f%%)\n", c.N(), dir, c.SuccessRate()*100)
	return nil
}

// expand replaces directory arguments with the *.rec files inside them.
func expand(args []string) []string {
	var paths []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err == nil && st.IsDir() {
			matches, _ := filepath.Glob(filepath.Join(a, "*.rec"))
			if len(matches) == 0 {
				fmt.Fprintf(os.Stderr, "warning: no *.rec files in %s\n", a)
			}
			paths = append(paths, matches...)
			continue
		}
		paths = append(paths, a)
	}
	return paths
}

// verifyAll re-simulates every recording and reports per-file pass/fail.
// A corrupt, incomplete, or diverging file never stops the sweep — every
// remaining path is still checked — and the aggregate summary decides the
// overall result, so one bad recording in a campaign directory surfaces
// without masking the state of the rest.
func verifyAll(paths []string) bool {
	var passed, incomplete, failed int
	for _, path := range paths {
		m, err := record.Open(path)
		if err != nil {
			if errors.Is(err, record.ErrIncomplete) {
				fmt.Printf("INCOMPLETE  %s: %v\n", path, err)
				incomplete++
			} else {
				fmt.Printf("FAIL  %s: %v\n", path, err)
				failed++
			}
			continue
		}
		if err := m.Verify(); err != nil {
			fmt.Printf("FAIL  %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("ok    %s (%d ticks byte-identical)\n", path, m.Footer.Samples)
		passed++
	}
	fmt.Printf("verified %d recordings: %d ok, %d incomplete, %d failed\n",
		len(paths), passed, incomplete, failed)
	return incomplete == 0 && failed == 0
}

// printInfo dumps one recording's metadata.
func printInfo(path string) {
	m, err := record.Open(path)
	if err != nil && !m.Complete && m.Header.Version == 0 {
		fmt.Printf("%s: %v\n", path, err)
		return
	}
	h := m.Header
	fault := "none"
	if h.KernelFault != nil {
		fault = fmt.Sprintf("kernel %s idx=%d bit=%d", h.KernelFault.Kernel, h.KernelFault.Index, h.KernelFault.Bit)
	} else if h.StateFault != nil {
		fault = fmt.Sprintf("state %s t=%.2f bit=%d", h.StateFault.State, h.StateFault.Time, h.StateFault.Bit)
	} else if h.SensorFault != nil {
		fault = fmt.Sprintf("sensor %s onset=%.2fs dur=%.2fs sev=%.2f",
			h.SensorFault.Kind, h.SensorFault.OnsetS, h.SensorFault.DurationS, h.SensorFault.Severity)
	} else if h.ActuatorFault != nil {
		fault = fmt.Sprintf("actuator %s onset=%.2fs dur=%.2fs sev=%.2f",
			h.ActuatorFault.Kind, h.ActuatorFault.OnsetS, h.ActuatorFault.DurationS, h.ActuatorFault.Severity)
	} else if h.WindFault != nil {
		fault = fmt.Sprintf("wind onset=%.2fs dur=%.2fs sev=%.2f",
			h.WindFault.OnsetS, h.WindFault.DurationS, h.WindFault.Severity)
	}
	det := "none"
	if h.Detector != nil {
		det = h.Detector.Kind
	}
	status := "complete"
	if !m.Complete {
		status = "INCOMPLETE (no footer)"
	}
	fmt.Printf("%s: %s\n", path, status)
	fmt.Printf("  world=%s seed=%d planner=%s tick=%.3fs platform=%s\n",
		h.World.Name, h.Seed, h.PlannerName, h.TickS, h.Platform.Name)
	fmt.Printf("  fault=%s detector=%s\n", fault, det)
	if m.Complete {
		f := m.Footer
		fmt.Printf("  ticks=%d payload=%dB digest=%s\n", f.Samples, f.PayloadBytes, f.Digest)
		fmt.Printf("  result: outcome=%s flight=%.1fs injected=%v alarms=%d events=%d\n",
			f.Result.OutcomeName, f.Result.FlightTimeS, f.Result.Injected, f.Result.Alarms, len(m.Events))
	} else if n := len(m.Snapshots); n > 0 {
		s := m.Snapshots[n-1]
		fmt.Printf("  last snapshot: %d ticks, t=%.1fs pos=%v\n", s.Samples, s.T, s.Pos)
	}
	for _, e := range m.Events {
		fmt.Printf("  event t=%7.2fs tick=%5d %s\n", e.T, e.Tick, strings.ReplaceAll(e.Tags, ";", " "))
	}
}
