// Command docscheck is the CI documentation gate. It fails (exit 1) when
//
//   - any package under internal/ lacks a godoc package comment (every
//     package must say which MAVFI paper stage it reproduces — the
//     convention docs/ARCHITECTURE.md builds on),
//   - any exported top-level symbol (type, function, method on an exported
//     type, const, var) in the packages listed in exportedDocDirs lacks a
//     doc comment — currently internal/planning, the package the PR 4
//     spatial-index refactor rewrote, or
//   - any relative Markdown link in the repo's *.md files (root and docs/)
//     points at a file that does not exist.
//
// External links (http/https/mailto), pure anchors, and links that resolve
// outside the repository root (GitHub-web paths like the CI badge's
// ../../actions/...) are not validated — there is no network in CI and no
// local file to check.
//
// Usage: go run ./cmd/docscheck [-root dir]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	problems = append(problems, checkPackageComments(*root)...)
	problems = append(problems, checkExportedDocs(*root)...)
	problems = append(problems, checkMarkdownLinks(*root)...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkPackageComments requires every package under internal/ (at any
// nesting depth) to carry a package comment on at least one of its non-test
// files.
func checkPackageComments(root string) []string {
	var problems []string
	internalDir := filepath.Join(root, "internal")
	var dirs []string
	err := filepath.WalkDir(internalDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return []string{fmt.Sprintf("docscheck: walking %s: %v", internalDir, err)}
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(files) == 0 {
			continue
		}
		documented := false
		checked := 0
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			checked++
			// PackageClauseOnly keeps the parse cheap; it still attaches the
			// package doc comment.
			af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: parse error: %v", f, err))
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if checked > 0 && !documented {
			rel, relErr := filepath.Rel(root, dir)
			if relErr != nil {
				rel = dir
			}
			problems = append(problems,
				fmt.Sprintf("%s: missing a godoc package comment (add `// Package %s ...` to one file)",
					filepath.ToSlash(rel), filepath.Base(dir)))
		}
	}
	return problems
}

// exportedDocDirs lists the packages (relative to the repository root) whose
// exported top-level symbols must all carry doc comments. Grow this list as
// packages reach documentation-complete status.
var exportedDocDirs = []string{
	"internal/planning",
}

// checkExportedDocs requires a doc comment on every exported top-level
// declaration of the exportedDocDirs packages: types, functions, methods
// whose receiver type is itself exported, and exported const/var names
// (a comment on the enclosing declaration group counts).
func checkExportedDocs(root string) []string {
	var problems []string
	fset := token.NewFileSet()
	for _, dir := range exportedDocDirs {
		files, err := filepath.Glob(filepath.Join(root, filepath.FromSlash(dir), "*.go"))
		if err != nil {
			problems = append(problems, fmt.Sprintf("docscheck: globbing %s: %v", dir, err))
			continue
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: parse error: %v", f, err))
				continue
			}
			rel, relErr := filepath.Rel(root, f)
			if relErr != nil {
				rel = f
			}
			rel = filepath.ToSlash(rel)
			report := func(pos token.Pos, what string) {
				problems = append(problems, fmt.Sprintf("%s:%d: exported %s lacks a doc comment",
					rel, fset.Position(pos).Line, what))
			}
			for _, decl := range af.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "function "+d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
								report(s.Pos(), "type "+s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), "name "+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether fn is a plain function or a method on an
// exported receiver type; methods on unexported types are not reachable API
// and need no doc.
func receiverExported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true // generic or unusual receivers: require the doc
}

// mdLink matches inline Markdown links/images: [text](target). Reference
// definitions and autolinks are rare in this repo and intentionally out of
// scope.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks validates relative link targets in root-level *.md
// files and everything under docs/.
func checkMarkdownLinks(root string) []string {
	var files []string
	rootMD, _ := filepath.Glob(filepath.Join(root, "*.md"))
	files = append(files, rootMD...)
	_ = filepath.WalkDir(filepath.Join(root, "docs"), func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(p, ".md") {
			files = append(files, p)
		}
		return nil
	})

	absRoot, err := filepath.Abs(root)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: resolving root: %v", err)}
	}
	var problems []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if target == "" ||
				strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, absRoot+string(filepath.Separator)) {
				continue // escapes the repo (e.g. GitHub-web badge paths)
			}
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", f, m[1]))
			}
		}
	}
	return problems
}
