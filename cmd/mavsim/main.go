// Command mavsim flies a single mission and reports its quality-of-flight
// metrics, optionally dumping the trajectory as CSV. It is the quickest way
// to watch the closed-loop PPC pipeline work.
//
// Usage:
//
//	mavsim [-env factory|farm|sparse|dense] [-planner rrt|rrtstar|rrtconnect]
//	       [-platform i9|tx2] [-seed N] [-trace out.csv]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mavfi/internal/env"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
)

func main() {
	var (
		envName  = flag.String("env", "sparse", "environment: factory, farm, sparse, dense")
		planner  = flag.String("planner", "rrtstar", "motion planner: rrt, rrtstar, rrtconnect")
		plat     = flag.String("platform", "i9", "compute platform: i9, tx2")
		seed     = flag.Int64("seed", 1, "mission seed")
		traceOut = flag.String("trace", "", "write trajectory CSV to this path")
	)
	flag.Parse()

	cfg := pipeline.Config{Seed: *seed, Record: *traceOut != ""}

	rng := rand.New(rand.NewSource(1))
	switch *envName {
	case "factory":
		cfg.World = env.Factory()
	case "farm":
		cfg.World = env.Farm()
	case "sparse":
		cfg.World = env.Sparse(rng)
	case "dense":
		cfg.World = env.Dense(rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown env %q\n", *envName)
		os.Exit(2)
	}

	switch *planner {
	case "rrt":
		cfg.Planner = pipeline.PlannerRRT
	case "rrtstar":
		cfg.Planner = pipeline.PlannerRRTStar
	case "rrtconnect":
		cfg.Planner = pipeline.PlannerRRTConnect
	default:
		fmt.Fprintf(os.Stderr, "unknown planner %q\n", *planner)
		os.Exit(2)
	}

	switch *plat {
	case "i9":
		cfg.Platform = platform.I9()
	case "tx2":
		cfg.Platform = platform.TX2()
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *plat)
		os.Exit(2)
	}

	res := pipeline.RunMission(cfg)
	fmt.Printf("environment: %s   planner: %s   platform: %s   seed: %d\n",
		cfg.World.Name, cfg.Planner, cfg.Platform.Name, *seed)
	fmt.Printf("outcome:      %v\n", res.Outcome)
	fmt.Printf("flight time:  %.1f s\n", res.FlightTimeS)
	fmt.Printf("distance:     %.1f m\n", res.DistanceM)
	fmt.Printf("energy:       %.1f kJ\n", res.EnergyJ/1000)
	fmt.Printf("plans:        %d (%d failed)\n", res.Plans, res.PlanFails)
	fmt.Printf("compute time: %.2f s (simulated, %s)\n", res.ComputeS, cfg.Platform.Name)

	if *traceOut != "" && res.Trace != nil {
		res.Trace.Label = cfg.World.Name
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Trace.WriteCSV(f, true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trajectory:   %s (%d samples)\n", *traceOut, len(res.Trace.Samples))
	}
}
