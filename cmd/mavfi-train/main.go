// Command mavfi-train fits the anomaly detectors on error-free flights
// through randomised training environments and writes the models as JSON,
// ready to deploy on a vehicle (or load into a later campaign).
//
// Usage:
//
//	mavfi-train [-envs 100] [-seed 1] [-sigma 4] [-epochs 30]
//	            [-gad gad.json] [-aad aad.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mavfi/internal/campaign"
	"mavfi/internal/detect"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
)

func main() {
	var (
		envs    = flag.Int("envs", 100, "error-free training environments")
		seed    = flag.Int64("seed", 1, "training seed")
		sigma   = flag.Float64("sigma", 4, "GAD n-sigma threshold")
		epochs  = flag.Int("epochs", 30, "AAD training epochs")
		gadPath = flag.String("gad", "gad.json", "output path for the Gaussian model")
		aadPath = flag.String("aad", "aad.json", "output path for the autoencoder model")
		workers = flag.Int("workers", 0, "collection worker goroutines (0 = MAVFI_WORKERS, else GOMAXPROCS)")
	)
	flag.Parse()

	fmt.Printf("collecting training data from %d environments...\n", *envs)
	runner := campaign.New(campaign.WithWorkers(*workers))
	data, err := pipeline.CollectTrainingDataOn(context.Background(), runner, *envs, *seed, platform.I9())
	if err != nil {
		fmt.Fprintln(os.Stderr, "collection interrupted:", err)
		os.Exit(1)
	}
	fmt.Printf("  %d samples\n", len(data))

	gad := pipeline.TrainGAD(data, *sigma)
	cfg := detect.DefaultAADConfig()
	cfg.Epochs = *epochs
	aad := pipeline.TrainAAD(data, cfg, *seed+2000)
	fmt.Printf("trained GAD (n=%.1f) and AAD (threshold %.3f, %d params)\n",
		*sigma, aad.Threshold, aad.Params())

	write := func(path string, save func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write(*gadPath, func(f *os.File) error { return detect.SaveGAD(f, gad) })
	write(*aadPath, func(f *os.File) error { return detect.SaveAAD(f, aad) })
}
