// Command mavfi-server runs the mavfi campaign service: a long-running HTTP
// server that accepts campaign jobs, executes them on the campaign worker
// pool behind a bounded FIFO queue, streams per-mission results over SSE,
// and serves finished cells in the exact CSV schema `mavfi matrix` emits.
//
//	mavfi-server -addr :8080 -workers 4 -record-dir runs/ -warm sparse,dense
//
// With -record-dir, jobs submitted with "record": true persist their mission
// recordings there and survive restarts: on startup the server rebuilds
// finished jobs from the recordings without re-simulating anything.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mavfi/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 16, "job queue capacity (submissions beyond it get 429)")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS-derived default)")
	recordDir := flag.String("record-dir", "", "directory for recorded jobs (enables restart recovery)")
	deadline := flag.Duration("deadline", 0, "per-mission wall-clock budget (0 = none; breaks byte-identity when it fires)")
	warm := flag.String("warm", "", "comma-separated worlds to build at startup (e.g. sparse,dense)")
	flag.Parse()

	var warmWorlds []string
	if *warm != "" {
		warmWorlds = strings.Split(*warm, ",")
	}
	srv, err := server.New(server.Config{
		Queue:      *queue,
		Workers:    *workers,
		RecordDir:  *recordDir,
		Deadline:   *deadline,
		WarmWorlds: warmWorlds,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("mavfi-server listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case sig := <-sigc:
		log.Printf("mavfi-server: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
}
