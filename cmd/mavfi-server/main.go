// Command mavfi-server runs the mavfi campaign machinery as a network
// service, in one of three modes:
//
// The default mode is the campaign service of docs/ARCHITECTURE.md: a
// long-running HTTP server that accepts campaign jobs, executes them on the
// campaign worker pool behind a bounded FIFO queue, streams per-mission
// results over SSE, and serves finished cells in the exact CSV schema
// `mavfi matrix` emits.
//
//	mavfi-server -addr :8080 -workers 4 -record-dir runs/ -warm sparse,dense
//
// With -record-dir, jobs submitted with "record": true persist their mission
// recordings there and survive restarts: on startup the server rebuilds
// finished jobs from the recordings without re-simulating anything. On
// SIGTERM the server drains gracefully: the running job finishes, queued
// jobs are marked interrupted, and the process exits 0.
//
// -worker turns the process into a dispatch worker shard: it executes
// single-cell work units POSTed to /exec by a dispatcher and answers
// heartbeat probes on /healthz.
//
//	mavfi-server -worker -addr :9001 -register http://dispatcher:8080
//
// -dispatch turns the process into a campaign dispatcher: it fans a whole
// campaign matrix out to worker shards (with leases, retries, and local
// fallback), serves golden-map seeds to its workers, and writes final CSVs
// byte-identical to a single-process `mavfi matrix` run.
//
//	mavfi-server -dispatch -shards w1:9001,w2:9001 -worlds sparse \
//	    -families sensor,wind -runs 16 -csv-dir out/ -state-dir state/
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mavfi/internal/campaign/matrix"
	"mavfi/internal/dispatch"
	"mavfi/internal/server"
)

func main() {
	var (
		workerMode   = flag.Bool("worker", false, "run as a dispatch worker shard instead of the campaign service")
		dispatchMode = flag.Bool("dispatch", false, "run as a campaign dispatcher instead of the campaign service")

		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS-derived default)")

		// Campaign-service flags.
		queue       = flag.Int("queue", 16, "job queue capacity (submissions beyond it get 429)")
		recordDir   = flag.String("record-dir", "", "directory for recorded jobs (enables restart recovery)")
		deadline    = flag.Duration("deadline", 0, "per-mission wall-clock budget (0 = none; breaks byte-identity when it fires)")
		warm        = flag.String("warm", "", "comma-separated worlds to build at startup (e.g. sparse,dense)")
		drainBudget = flag.Duration("drain-timeout", 5*time.Minute, "how long a SIGTERM drain waits for the running job")

		// Worker-mode flags.
		register  = flag.String("register", "", "(worker) dispatcher base URL to register with at startup")
		advertise = flag.String("advertise", "", "(worker/dispatch) address other processes reach this one at (default: the bound address, with unspecified hosts rewritten to 127.0.0.1)")

		// Dispatch-mode flags: the matrix axes mirror `mavfi matrix`.
		shards     = flag.String("shards", "", "(dispatch) comma-separated worker addresses")
		stateDir   = flag.String("state-dir", "", "(dispatch) campaign state directory (enables crash-safe resume)")
		csvDir     = flag.String("csv-dir", "", "(dispatch) write per-cell and summary CSVs under DIR")
		lease      = flag.Duration("lease", 2*time.Minute, "(dispatch) per-cell lease TTL")
		noLocal    = flag.Bool("no-local", false, "(dispatch) never fall back to local execution; wait for healthy shards instead")
		worlds     = flag.String("worlds", "sparse", "(dispatch) comma-separated environments")
		families   = flag.String("families", "all", "(dispatch) comma-separated fault targets (family[:kind]) or all")
		severities = flag.String("severities", "low,high", "(dispatch) comma-separated severity levels (low, med, high, or name=scale)")
		detectors  = flag.String("detectors", "none", "(dispatch) comma-separated detectors: none, gad, aad")
		recovery   = flag.String("recoveries", "on", "(dispatch) recovery axis for detector cells: on, off, or on,off")
		runs       = flag.Int("runs", 4, "(dispatch) missions per cell")
		seed       = flag.Int64("seed", 1, "(dispatch) matrix seed")
		train      = flag.Int("train", 12, "(dispatch) training environments when gad/aad is on the detector axis")
		maxMission = flag.Float64("max-mission", 0, "(dispatch) mission time budget in sim seconds (0 = pipeline default)")
		mapSeed    = flag.String("map-seed", "off", "(dispatch) golden-map mode: off, seed, or memo")
		nearStride = flag.Int("near-stride", 0, "(dispatch) near-field ray subsampling stride (0 or 1 = off)")
	)
	flag.Parse()

	switch {
	case *workerMode && *dispatchMode:
		fmt.Fprintln(os.Stderr, "mavfi-server: -worker and -dispatch are mutually exclusive")
		os.Exit(2)
	case *workerMode:
		runWorker(*addr, *advertise, *register, *workers)
	case *dispatchMode:
		runDispatch(dispatchFlags{
			addr: *addr, advertise: *advertise, shards: *shards, stateDir: *stateDir,
			csvDir: *csvDir, lease: *lease, noLocal: *noLocal, workers: *workers,
			worlds: *worlds, families: *families, severities: *severities,
			detectors: *detectors, recovery: *recovery, runs: *runs, seed: *seed,
			train: *train, maxMission: *maxMission, mapSeed: *mapSeed, nearStride: *nearStride,
		})
	default:
		runService(*addr, *queue, *workers, *recordDir, *deadline, *warm, *drainBudget)
	}
}

// hardenedServer wraps a handler in an http.Server with the slow-client
// protections every mode wants: a header-read deadline so a stalled client
// cannot pin an accept slot, and an idle timeout to reap dead keep-alive
// connections. No Read/WriteTimeout — SSE streams and long /exec units are
// legitimately open for minutes, and both have their own liveness story
// (keepalive frames, lease deadlines).
func hardenedServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// advertiseAddr resolves the address peers should dial: the -advertise
// override, or the actual bound address with an unspecified host ("" or
// "::") rewritten to loopback — a dialable default for single-machine and
// test topologies.
func advertiseAddr(override string, bound net.Addr) string {
	if override != "" {
		return override
	}
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return bound.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// runService is the default campaign-service mode.
func runService(addr string, queue, workers int, recordDir string, deadline time.Duration, warm string, drainBudget time.Duration) {
	var warmWorlds []string
	if warm != "" {
		warmWorlds = strings.Split(warm, ",")
	}
	srv, err := server.New(server.Config{
		Queue:      queue,
		Workers:    workers,
		RecordDir:  recordDir,
		Deadline:   deadline,
		WarmWorlds: warmWorlds,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()

	hs := hardenedServer(addr, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("mavfi-server listening on %s", addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case sig := <-sigc:
		log.Printf("mavfi-server: %v, draining", sig)
		dctx, cancel := context.WithTimeout(context.Background(), drainBudget)
		if err := srv.Drain(dctx); err != nil {
			log.Printf("mavfi-server: drain: %v", err)
		}
		cancel()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		log.Printf("mavfi-server: drained, exiting")
	}
}

// runWorker is the dispatch worker-shard mode: serve /exec and /healthz
// until told to stop, optionally registering with a dispatcher first.
func runWorker(addr, advertise, register string, workers int) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	self := advertiseAddr(advertise, ln.Addr())
	w := dispatch.NewWorker(dispatch.WorkerConfig{Workers: workers, Logf: log.Printf})
	hs := hardenedServer(addr, w.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("mavfi-server worker listening on %s (advertised as %s)", ln.Addr(), self)

	if register != "" {
		go registerWithDispatcher(register, self)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case sig := <-sigc:
		// Finish the in-flight unit if it is quick; the dispatcher's lease
		// machinery makes an abandoned unit harmless either way.
		log.Printf("mavfi-server worker: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
}

// registerWithDispatcher announces this worker's address to the dispatcher,
// retrying briefly: at startup the dispatcher may not be up yet, and a
// failure is survivable anyway (the operator can list the worker in
// -shards).
func registerWithDispatcher(base, self string) {
	body, _ := json.Marshal(map[string]string{"addr": self})
	url := strings.TrimSuffix(base, "/") + "/workers"
	// Not the default client: a dispatcher that accepts the connection but
	// never answers must cost one attempt, not hang the retry loop forever.
	client := &http.Client{Timeout: 5 * time.Second}
	for attempt := 1; attempt <= 10; attempt++ {
		resp, err := client.Post(url, "application/json", strings.NewReader(string(body)))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode < 300 {
				log.Printf("mavfi-server worker: registered with %s", base)
				return
			}
			err = fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		log.Printf("mavfi-server worker: registering with %s (attempt %d): %v", base, attempt, err)
		time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
	}
	log.Printf("mavfi-server worker: giving up on registration; list this worker in -shards instead")
}

// dispatchFlags carries the dispatch-mode flag values.
type dispatchFlags struct {
	addr, advertise, shards, stateDir, csvDir         string
	lease                                             time.Duration
	noLocal                                           bool
	workers                                           int
	worlds, families, severities, detectors, recovery string
	runs                                              int
	seed                                              int64
	train                                             int
	maxMission                                        float64
	mapSeed                                           string
	nearStride                                        int
}

// runDispatch is the campaign-dispatcher mode: shard the matrix, reassemble
// the result, write the CSVs, exit 0.
func runDispatch(f dispatchFlags) {
	targets, err := matrix.ParseTargets(f.families)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sevs, err := matrix.ParseSeverities(f.severities)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var recs []bool
	for _, part := range strings.Split(f.recovery, ",") {
		switch strings.TrimSpace(part) {
		case "on":
			recs = append(recs, true)
		case "off":
			recs = append(recs, false)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown recovery mode %q (want on, off)\n", part)
			os.Exit(2)
		}
	}
	spec := matrix.Spec{
		Worlds:          splitList(f.worlds),
		Targets:         targets,
		Severities:      sevs,
		Detectors:       splitList(f.detectors),
		Recoveries:      recs,
		Runs:            f.runs,
		Seed:            f.seed,
		MaxMissionS:     f.maxMission,
		TrainEnvs:       f.train,
		MapSeed:         f.mapSeed,
		NearFieldStride: f.nearStride,
	}

	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	self := advertiseAddr(f.advertise, ln.Addr())
	cfg := dispatch.Config{
		Shards:       splitList(f.shards),
		LeaseTTL:     f.lease,
		DisableLocal: f.noLocal,
		StateDir:     f.stateDir,
		Workers:      f.workers,
		Logf:         log.Printf,
		OnCellDone: func(done, total int) {
			log.Printf("mavfi-server dispatch: cells %d/%d", done, total)
		},
	}
	if f.mapSeed != "off" && f.mapSeed != "" {
		cfg.SeedURL = "http://" + self + "/seeds"
	}
	d := dispatch.New(cfg)
	hs := hardenedServer(f.addr, d.Handler())
	go hs.Serve(ln)
	defer hs.Close()
	log.Printf("mavfi-server dispatch listening on %s (advertised as %s)", ln.Addr(), self)

	// SIGTERM/SIGINT cancel the campaign; with -state-dir, completed cells
	// are already persisted and a re-run resumes where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := d.Run(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := d.Stat()
	log.Printf("mavfi-server dispatch: campaign %s complete (%d cells, %d retries, %d expired leases, %d stale drops, %d local runs)",
		st.Campaign, st.Done, st.Retries, st.Expired, st.StaleDrops, st.LocalRuns)
	if f.csvDir != "" {
		if err := res.WriteCSV(f.csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "writing CSV:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d cell CSVs and summary.csv under %s\n", len(res.Cells), f.csvDir)
		return
	}
	fmt.Print(res.Table())
}

// splitList splits a comma-separated flag into trimmed non-empty parts.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
