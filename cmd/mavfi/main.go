// Command mavfi runs fault-injection campaigns: single-cell campaigns with
// one fault model against the golden baseline, and full campaign-matrix
// sweeps over (world × fault family × severity × detector × recovery).
//
// Usage:
//
//	mavfi [-env sparse] [-kernel pcgen|octomap|colcheck|planner|pid]
//	      [-state time_to_collision|...|vz]
//	      [-fault kernel|state|sensor|actuator|wind[:kind]] [-severity 1.0]
//	      [-detector none|gad|aad] [-runs 100] [-train 50] [-seed 1]
//	      [-record-dir data/campaigns/cell]
//
//	mavfi matrix [-worlds sparse,factory] [-families all]
//	      [-severities low,high] [-detectors none,gad] [-recoveries on]
//	      [-runs 4] [-seed 1] [-workers 0] [-csv-dir DIR]
//	      [-deadline 0] [-max-mission 0] [-train 12]
//
// The single-cell mode injects exactly one fault model: -kernel/-state are
// the paper's compute faults, -fault draws from any zoo family (optionally
// restricted to one mechanism, e.g. -fault sensor:ray_dropout). With
// -record-dir, every mission (golden and injection) is persisted as a
// replayable recording under DIR/golden and DIR/injection; inspect or
// byte-verify them with mavfi-replay.
//
// The matrix mode runs the deterministic campaign matrix: cells and
// missions are seed-stable and the per-cell CSVs (-csv-dir) are
// byte-identical at any -workers width.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"mavfi/internal/campaign"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/detect"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
	"mavfi/internal/record"
)

var kernelNames = map[string]faultinject.Kernel{
	"pcgen":    faultinject.KernelPCGen,
	"octomap":  faultinject.KernelOctoMap,
	"colcheck": faultinject.KernelColCheck,
	"planner":  faultinject.KernelPlanner,
	"pid":      faultinject.KernelPID,
}

func stateByName(name string) (faultinject.StateID, bool) {
	for s := faultinject.StateID(0); s < faultinject.NumInjectableStates; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "matrix" {
		runMatrix(os.Args[2:])
		return
	}

	var (
		envName  = flag.String("env", "sparse", "environment: factory, farm, sparse, dense")
		kernel   = flag.String("kernel", "", "kernel to inject (instruction-level mode)")
		state    = flag.String("state", "", "inter-kernel state to corrupt (message-level mode)")
		fault    = flag.String("fault", "", "zoo fault family[:kind], e.g. sensor, actuator:thrust_loss, wind")
		severity = flag.Float64("severity", 1.0, "fault severity scale for -fault families")
		detector = flag.String("detector", "none", "protection: none, gad, aad")
		runs     = flag.Int("runs", 100, "fault-injection missions")
		train    = flag.Int("train", 50, "training environments when a detector is enabled")
		seed     = flag.Int64("seed", 1, "campaign seed")
		workers  = flag.Int("workers", 0, "campaign worker goroutines (0 = MAVFI_WORKERS, else GOMAXPROCS)")
		recDir   = flag.String("record-dir", "", "record every mission under DIR/{golden,injection} (replayable with mavfi-replay)")
	)
	flag.Parse()

	world, err := matrix.World(*envName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	modes := 0
	for _, set := range []bool{*kernel != "", *state != "", *fault != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "specify exactly one of -kernel, -state, or -fault")
		os.Exit(2)
	}

	runner := campaign.New(campaign.WithWorkers(*workers))
	ctx := context.Background()

	var det func() detect.Detector
	switch *detector {
	case "none":
	case "gad", "aad":
		fmt.Printf("training detectors on %d environments...\n", *train)
		data, err := pipeline.CollectTrainingDataOn(ctx, runner, *train, *seed+1000, platform.I9())
		if err != nil {
			fmt.Fprintln(os.Stderr, "collection interrupted:", err)
			os.Exit(1)
		}
		if *detector == "gad" {
			gad := pipeline.TrainGAD(data, 4)
			det = func() detect.Detector { return gad.Clone() }
		} else {
			aad := pipeline.TrainAAD(data, detect.DefaultAADConfig(), *seed+2000)
			det = func() detect.Detector { return aad.Clone() }
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown detector %q\n", *detector)
		os.Exit(2)
	}

	// Golden baseline.
	var golden *qof.Campaign
	goldenCfg := func(i int) pipeline.Config {
		return pipeline.Config{World: world, Seed: *seed + int64(i)}
	}
	if *recDir != "" {
		goldenOut, err := record.RunCampaign(ctx, runner, filepath.Join(*recDir, "golden"), "golden", *runs, goldenCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recording golden campaign:", err)
			os.Exit(1)
		}
		golden = goldenOut.Campaign
	} else {
		goldenOut, _ := runner.Run(ctx, "golden", *runs, func(i int) qof.Metrics {
			return pipeline.RunMission(goldenCfg(i)).Metrics
		})
		golden = goldenOut.Campaign
	}

	// Injection campaign: draw the whole plan schedule up front (the plan
	// RNG is consumed sequentially), then shard the missions.
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{World: world, Seed: *seed + 555, Counter: ctr})
	planRNG := rand.New(rand.NewSource(*seed + 42))
	nominal := pipeline.NominalDuration(pipeline.Config{World: world})

	cfgs := make([]pipeline.Config, *runs)
	for i := range cfgs {
		cfg := pipeline.Config{World: world, Seed: *seed + int64(i)}
		switch {
		case *kernel != "":
			k, ok := kernelNames[*kernel]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
				os.Exit(2)
			}
			plan := faultinject.NewPlan(k, ctr.Count(k), planRNG)
			cfg.KernelFault = &plan
		case *state != "":
			s, ok := stateByName(*state)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown state %q\n", *state)
				os.Exit(2)
			}
			plan := faultinject.NewStatePlan(s, nominal*0.15, nominal*0.85, planRNG)
			cfg.StateFault = &plan
		default:
			fam, spec, err := faultinject.ParseTarget(*fault)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			spec.NominalS = nominal
			spec.Severity = *severity
			cfg.SetFault(faultinject.DrawFault(fam, spec, ctr, planRNG))
		}
		cfgs[i] = cfg
	}

	camp := &qof.Campaign{Name: "injection"}
	fired := make([]bool, *runs)
	results := make([]qof.Metrics, *runs)
	injDir := ""
	if *recDir != "" {
		injDir = filepath.Join(*recDir, "injection")
		if err := os.MkdirAll(injDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "recording injection campaign:", err)
			os.Exit(1)
		}
	}
	runner.ForEach(ctx, *runs, func(i int) {
		cfg := cfgs[i]
		if det != nil {
			cfg.Detector = det()
		}
		var res pipeline.Result
		if injDir != "" {
			// Recording failures are reported but never fail the mission: the
			// campaign aggregate survives a filling disk.
			f, err := os.Create(record.MissionPath(injDir, i))
			if err == nil {
				res, err = record.RunRecorded(cfg, f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			} else {
				res = pipeline.RunMission(cfg)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "recording mission %d: %v\n", i, err)
			}
		} else {
			res = pipeline.RunMission(cfg)
		}
		results[i], fired[i] = res.Metrics, res.Injected
	})
	injected := 0
	for i := range results {
		camp.Add(results[i])
		if fired[i] {
			injected++
		}
	}

	report("golden    ", golden)
	report("injection ", camp)
	fmt.Printf("injections fired: %d/%d\n", injected, *runs)
	g, c := golden.SuccessRate(), camp.SuccessRate()
	if g > c {
		fmt.Printf("success-rate drop: %.1f%%\n", (g-c)*100)
	}
}

func report(name string, c *qof.Campaign) {
	s := c.FlightTimeSummary()
	fmt.Printf("%s n=%d success=%.1f%% flight time %s\n", name, c.N(), c.SuccessRate()*100, s)
}

// runMatrix is the `mavfi matrix` subcommand: a deterministic campaign
// matrix over (world × family × severity × detector × recovery).
func runMatrix(argv []string) {
	fs := flag.NewFlagSet("mavfi matrix", flag.ExitOnError)
	var (
		worlds     = fs.String("worlds", "sparse", "comma-separated environments: factory, farm, sparse, dense")
		families   = fs.String("families", "all", "comma-separated fault targets (family[:kind], e.g. sensor,actuator:thrust_loss) or all")
		severities = fs.String("severities", "low,high", "comma-separated severity levels (low, med, high, or name=scale)")
		detectors  = fs.String("detectors", "none", "comma-separated detectors: none, gad, aad")
		recovery   = fs.String("recoveries", "on", "recovery axis for detector cells: on, off, or on,off")
		runs       = fs.Int("runs", 4, "missions per cell")
		seed       = fs.Int64("seed", 1, "matrix seed (every cell and mission seed derives from it)")
		workers    = fs.Int("workers", 0, "campaign worker goroutines (0 = MAVFI_WORKERS, else GOMAXPROCS)")
		train      = fs.Int("train", 12, "training environments when gad/aad is on the detector axis")
		maxMission = fs.Float64("max-mission", 0, "mission time budget in sim seconds (0 = pipeline default)")
		deadline   = fs.Duration("deadline", 0, "per-mission wall-clock deadline (0 = none; breaks byte-identity)")
		csvDir     = fs.String("csv-dir", "", "write per-cell and summary CSVs under DIR")
		mapSeed    = fs.String("map-seed", "off", "golden-map mode: off (exact), seed (fork a precomputed map per mission), or memo (seed plus saturated-evidence ray skipping)")
		nearStride = fs.Int("near-stride", 0, "near-field ray subsampling stride (0 or 1 = off; >1 is approximate mode)")
		fidelity   = fs.Bool("fidelity", false, "run the fidelity study: the whole matrix at each approximate-mode ladder setting, emitting per-cell paper-figure deltas (ignores -map-seed/-near-stride)")
	)
	fs.Parse(argv)

	targets, err := matrix.ParseTargets(*families)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sevs, err := matrix.ParseSeverities(*severities)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var recs []bool
	for _, part := range strings.Split(*recovery, ",") {
		switch strings.TrimSpace(part) {
		case "on":
			recs = append(recs, true)
		case "off":
			recs = append(recs, false)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown recovery mode %q (want on, off)\n", part)
			os.Exit(2)
		}
	}

	spec := matrix.Spec{
		Worlds:          splitList(*worlds),
		Targets:         targets,
		Severities:      sevs,
		Detectors:       splitList(*detectors),
		Recoveries:      recs,
		Runs:            *runs,
		Seed:            *seed,
		MaxMissionS:     *maxMission,
		TrainEnvs:       *train,
		Workers:         *workers,
		Deadline:        *deadline,
		MapSeed:         *mapSeed,
		NearFieldStride: *nearStride,
		Progress: func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Printf("missions %d/%d\n", done, total)
			}
		},
	}
	if *fidelity {
		study, err := matrix.FidelityStudy(context.Background(), spec, matrix.DefaultFidelityLadder(), nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := study.WriteCSV(*csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "writing fidelity CSV:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote fidelity.csv under %s\n", *csvDir)
			return
		}
		fmt.Print(study.CSV())
		return
	}
	res, err := matrix.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res.Table())
	if *csvDir != "" {
		if err := res.WriteCSV(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "writing CSVs:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d cell CSVs + summary.csv under %s\n", len(res.Cells), *csvDir)
	}
	for _, p := range res.Panics {
		fmt.Fprintf(os.Stderr, "mission %d panicked: %s\n", p.Index, p.Value)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
