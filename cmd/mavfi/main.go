// Command mavfi runs a fault-injection campaign: N missions with one-time
// single-bit injections into a chosen kernel or inter-kernel state, with
// optional anomaly detection & recovery, reporting success rate and
// flight-time statistics against the golden baseline.
//
// Usage:
//
//	mavfi [-env sparse] [-kernel pcgen|octomap|colcheck|planner|pid]
//	      [-state time_to_collision|...|vz]
//	      [-detector none|gad|aad] [-runs 100] [-train 50] [-seed 1]
//	      [-record-dir data/campaigns/cell]
//
// With -record-dir, every mission (golden and injection) is persisted as a
// replayable recording under DIR/golden and DIR/injection; inspect or
// byte-verify them with mavfi-replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"mavfi/internal/campaign"
	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
	"mavfi/internal/record"
)

var kernelNames = map[string]faultinject.Kernel{
	"pcgen":    faultinject.KernelPCGen,
	"octomap":  faultinject.KernelOctoMap,
	"colcheck": faultinject.KernelColCheck,
	"planner":  faultinject.KernelPlanner,
	"pid":      faultinject.KernelPID,
}

func stateByName(name string) (faultinject.StateID, bool) {
	for s := faultinject.StateID(0); s < faultinject.NumInjectableStates; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

func main() {
	var (
		envName  = flag.String("env", "sparse", "environment: factory, farm, sparse, dense")
		kernel   = flag.String("kernel", "", "kernel to inject (instruction-level mode)")
		state    = flag.String("state", "", "inter-kernel state to corrupt (message-level mode)")
		detector = flag.String("detector", "none", "protection: none, gad, aad")
		runs     = flag.Int("runs", 100, "fault-injection missions")
		train    = flag.Int("train", 50, "training environments when a detector is enabled")
		seed     = flag.Int64("seed", 1, "campaign seed")
		workers  = flag.Int("workers", 0, "campaign worker goroutines (0 = MAVFI_WORKERS, else GOMAXPROCS)")
		recDir   = flag.String("record-dir", "", "record every mission under DIR/{golden,injection} (replayable with mavfi-replay)")
	)
	flag.Parse()

	var world *env.World
	rng := rand.New(rand.NewSource(1))
	switch *envName {
	case "factory":
		world = env.Factory()
	case "farm":
		world = env.Farm()
	case "sparse":
		world = env.Sparse(rng)
	case "dense":
		world = env.Dense(rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown env %q\n", *envName)
		os.Exit(2)
	}

	if (*kernel == "") == (*state == "") {
		fmt.Fprintln(os.Stderr, "specify exactly one of -kernel or -state")
		os.Exit(2)
	}

	runner := campaign.New(campaign.WithWorkers(*workers))
	ctx := context.Background()

	var det func() detect.Detector
	switch *detector {
	case "none":
	case "gad", "aad":
		fmt.Printf("training detectors on %d environments...\n", *train)
		data, err := pipeline.CollectTrainingDataOn(ctx, runner, *train, *seed+1000, platform.I9())
		if err != nil {
			fmt.Fprintln(os.Stderr, "collection interrupted:", err)
			os.Exit(1)
		}
		if *detector == "gad" {
			gad := pipeline.TrainGAD(data, 4)
			det = func() detect.Detector { return gad.Clone() }
		} else {
			aad := pipeline.TrainAAD(data, detect.DefaultAADConfig(), *seed+2000)
			det = func() detect.Detector { return aad.Clone() }
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown detector %q\n", *detector)
		os.Exit(2)
	}

	// Golden baseline.
	var golden *qof.Campaign
	goldenCfg := func(i int) pipeline.Config {
		return pipeline.Config{World: world, Seed: *seed + int64(i)}
	}
	if *recDir != "" {
		goldenOut, err := record.RunCampaign(ctx, runner, filepath.Join(*recDir, "golden"), "golden", *runs, goldenCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recording golden campaign:", err)
			os.Exit(1)
		}
		golden = goldenOut.Campaign
	} else {
		goldenOut, _ := runner.Run(ctx, "golden", *runs, func(i int) qof.Metrics {
			return pipeline.RunMission(goldenCfg(i)).Metrics
		})
		golden = goldenOut.Campaign
	}

	// Injection campaign: draw the whole plan schedule up front (the plan
	// RNG is consumed sequentially), then shard the missions.
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{World: world, Seed: *seed + 555, Counter: ctr})
	planRNG := rand.New(rand.NewSource(*seed + 42))
	nominal := pipeline.NominalDuration(pipeline.Config{World: world})

	cfgs := make([]pipeline.Config, *runs)
	for i := range cfgs {
		cfg := pipeline.Config{World: world, Seed: *seed + int64(i)}
		if *kernel != "" {
			k, ok := kernelNames[*kernel]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
				os.Exit(2)
			}
			plan := faultinject.NewPlan(k, ctr.Count(k), planRNG)
			cfg.KernelFault = &plan
		} else {
			s, ok := stateByName(*state)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown state %q\n", *state)
				os.Exit(2)
			}
			plan := faultinject.NewStatePlan(s, nominal*0.15, nominal*0.85, planRNG)
			cfg.StateFault = &plan
		}
		cfgs[i] = cfg
	}

	camp := &qof.Campaign{Name: "injection"}
	fired := make([]bool, *runs)
	results := make([]qof.Metrics, *runs)
	injDir := ""
	if *recDir != "" {
		injDir = filepath.Join(*recDir, "injection")
		if err := os.MkdirAll(injDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "recording injection campaign:", err)
			os.Exit(1)
		}
	}
	runner.ForEach(ctx, *runs, func(i int) {
		cfg := cfgs[i]
		if det != nil {
			cfg.Detector = det()
		}
		var res pipeline.Result
		if injDir != "" {
			// Recording failures are reported but never fail the mission: the
			// campaign aggregate survives a filling disk.
			f, err := os.Create(record.MissionPath(injDir, i))
			if err == nil {
				res, err = record.RunRecorded(cfg, f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			} else {
				res = pipeline.RunMission(cfg)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "recording mission %d: %v\n", i, err)
			}
		} else {
			res = pipeline.RunMission(cfg)
		}
		results[i], fired[i] = res.Metrics, res.Injected
	})
	injected := 0
	for i := range results {
		camp.Add(results[i])
		if fired[i] {
			injected++
		}
	}

	report("golden    ", golden)
	report("injection ", camp)
	fmt.Printf("injections fired: %d/%d\n", injected, *runs)
	g, c := golden.SuccessRate(), camp.SuccessRate()
	if g > c {
		fmt.Printf("success-rate drop: %.1f%%\n", (g-c)*100)
	}
}

func report(name string, c *qof.Campaign) {
	s := c.FlightTimeSummary()
	fmt.Printf("%s n=%d success=%.1f%% flight time %s\n", name, c.N(), c.SuccessRate()*100, s)
}
