package sim

import (
	"math/rand"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/geom"
	"mavfi/internal/testutil"
)

// TestCaptureIntoSteadyStateAllocFree pins the PR2 buffer-reuse contract:
// once a mission's scratch DepthImage has been captured into once, every
// further capture must allocate nothing.
func TestCaptureIntoSteadyStateAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are meaningless under -race instrumentation")
	}
	w := wallWorld()
	cam := DefaultDepthCamera()
	rng := rand.New(rand.NewSource(1))
	img := &DepthImage{}
	cam.CaptureInto(img, w, geom.V(10, 50, 5), 0, rng) // warm: buffers + tables
	pos := geom.V(10, 50, 5)
	if allocs := testing.AllocsPerRun(50, func() {
		cam.CaptureInto(img, w, pos, 0.1, rng)
	}); allocs != 0 {
		t.Fatalf("steady-state CaptureInto allocates %v objects per frame, want 0", allocs)
	}
}

// TestCaptureIntoMatchesCapture checks the buffer-reusing path renders the
// same frame as the allocating one, including cached ray directions.
func TestCaptureIntoMatchesCapture(t *testing.T) {
	w := wallWorld()
	cam := DefaultDepthCamera()
	fresh := cam.Capture(w, geom.V(10, 50, 5), 0.3, nil)
	reused := &DepthImage{}
	// Dirty the scratch with a different pose first.
	cam.CaptureInto(reused, w, geom.V(20, 20, 2), 1.1, nil)
	cam.CaptureInto(reused, w, geom.V(10, 50, 5), 0.3, nil)
	if len(fresh.Depth) != len(reused.Depth) {
		t.Fatalf("depth length mismatch: %d vs %d", len(fresh.Depth), len(reused.Depth))
	}
	for i := range fresh.Depth {
		if fresh.Depth[i] != reused.Depth[i] {
			t.Fatalf("pixel %d: fresh %v, reused %v", i, fresh.Depth[i], reused.Depth[i])
		}
	}
	for r := 0; r < cam.Rows; r++ {
		for col := 0; col < cam.Cols; col++ {
			if fresh.Ray(r, col) != reused.Ray(r, col) {
				t.Fatalf("ray (%d,%d) mismatch", r, col)
			}
		}
	}
}

// TestRayFallbackMatchesCachedDirs: a manually constructed DepthImage (no
// cached directions) must compute the same rays Capture caches.
func TestRayFallbackMatchesCachedDirs(t *testing.T) {
	cam := DefaultDepthCamera()
	img := cam.Capture(wallWorld(), geom.V(10, 50, 5), 0.7, nil)
	bare := &DepthImage{
		Rows: img.Rows, Cols: img.Cols,
		HFOV: img.HFOV, VFOV: img.VFOV,
		MaxRange: img.MaxRange,
		Pos:      img.Pos, Yaw: img.Yaw,
		Depth: img.Depth,
	}
	for r := 0; r < img.Rows; r++ {
		for col := 0; col < img.Cols; col++ {
			if img.Ray(r, col) != bare.Ray(r, col) {
				t.Fatalf("cached ray (%d,%d) %v != computed %v", r, col, img.Ray(r, col), bare.Ray(r, col))
			}
		}
	}
}

func wallWorld() *env.World {
	return &env.World{
		Name:   "wall",
		Bounds: geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 20)),
		Obstacles: []geom.AABB{
			geom.Box(geom.V(30, 0, 0), geom.V(32, 100, 20)),
		},
		Start: geom.V(10, 50, 0), Goal: geom.V(90, 50, 2), GoalTolerance: 1,
	}
}
