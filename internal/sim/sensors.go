package sim

import (
	"math"
	"math/rand"

	"mavfi/internal/env"
	"mavfi/internal/geom"
)

// DepthImage is one RGB-D depth frame: a Rows×Cols grid of range readings
// taken from Pos at heading Yaw. Depth[r*Cols+c] is the distance to the
// first surface along the (r, c) ray, or MaxRange for a clear ray.
type DepthImage struct {
	Rows, Cols int
	HFOV, VFOV float64 // radians
	MaxRange   float64
	Pos        geom.Vec3
	Yaw        float64
	Depth      []float64

	// dirs caches the per-pixel world-frame ray directions Capture computed,
	// so downstream kernels (point-cloud generation) reuse them instead of
	// redoing the trigonometry.
	dirs []geom.Vec3
}

// Ray returns the unit direction of the (row, col) pixel's ray in the world
// frame.
func (d *DepthImage) Ray(row, col int) geom.Vec3 {
	if d.dirs != nil {
		return d.dirs[row*d.Cols+col]
	}
	az := d.Yaw + (float64(col)/float64(d.Cols-1)-0.5)*d.HFOV
	el := (0.5 - float64(row)/float64(d.Rows-1)) * d.VFOV
	ce := math.Cos(el)
	return geom.V(ce*math.Cos(az), ce*math.Sin(az), math.Sin(el))
}

// At returns the depth reading of the (row, col) pixel.
func (d *DepthImage) At(row, col int) float64 { return d.Depth[row*d.Cols+col] }

// DepthCamera models the forward-facing RGB-D sensor.
type DepthCamera struct {
	Rows, Cols int
	HFOV, VFOV float64 // radians
	MaxRange   float64
	NoiseStd   float64 // multiplicative range noise σ (fraction of range)

	// tab caches the per-row elevation and per-column azimuth-offset tables;
	// built lazily on first capture for the current geometry.
	tab *camTables
}

// camTables holds the capture-loop constants that depend only on the camera
// geometry, not the pose: the elevation trigonometry of each pixel row and
// the azimuth offset of each pixel column. The entries are computed with the
// exact float expressions the per-pixel path uses, so cached captures are
// bit-identical to uncached ones.
type camTables struct {
	rows, cols   int
	hfov, vfov   float64
	sinEl, cosEl []float64 // per row
	azOff        []float64 // per column, added to the pose yaw
}

// tables returns the geometry tables, (re)building them when the camera
// configuration changed.
func (c *DepthCamera) tables() *camTables {
	t := c.tab
	if t != nil && t.rows == c.Rows && t.cols == c.Cols && t.hfov == c.HFOV && t.vfov == c.VFOV {
		return t
	}
	t = &camTables{
		rows: c.Rows, cols: c.Cols, hfov: c.HFOV, vfov: c.VFOV,
		sinEl: make([]float64, c.Rows),
		cosEl: make([]float64, c.Rows),
		azOff: make([]float64, c.Cols),
	}
	for r := 0; r < c.Rows; r++ {
		el := (0.5 - float64(r)/float64(c.Rows-1)) * c.VFOV
		t.sinEl[r] = math.Sin(el)
		t.cosEl[r] = math.Cos(el)
	}
	for col := 0; col < c.Cols; col++ {
		t.azOff[col] = (float64(col)/float64(c.Cols-1) - 0.5) * c.HFOV
	}
	c.tab = t
	return t
}

// DefaultDepthCamera returns a low-resolution depth camera sized for the
// closed-loop simulation: 90°×60° FOV, 24×16 rays, 20 m range — the
// information content that drives OctoMap updates, at a resolution the
// single-core simulator sustains at 10 Hz.
func DefaultDepthCamera() DepthCamera {
	return DepthCamera{
		Rows: 16, Cols: 24,
		HFOV: 90 * math.Pi / 180, VFOV: 60 * math.Pi / 180,
		MaxRange: 20,
		NoiseStd: 0.005,
	}
}

// Capture renders a depth frame of world w from position pos at heading yaw.
// rng supplies the range noise; a nil rng captures noise-free frames.
func (c *DepthCamera) Capture(w *env.World, pos geom.Vec3, yaw float64, rng *rand.Rand) *DepthImage {
	img := &DepthImage{}
	c.CaptureInto(img, w, pos, yaw, rng)
	return img
}

// CaptureInto renders a depth frame into img, reusing its depth and
// ray-direction buffers when their capacity suffices. The steady-state
// mission loop holds one scratch DepthImage per mission and captures every
// frame into it allocation-free; results are bit-identical to Capture.
func (c *DepthCamera) CaptureInto(img *DepthImage, w *env.World, pos geom.Vec3, yaw float64, rng *rand.Rand) {
	img.Rows, img.Cols = c.Rows, c.Cols
	img.HFOV, img.VFOV = c.HFOV, c.VFOV
	img.MaxRange = c.MaxRange
	img.Pos, img.Yaw = pos, yaw
	n := c.Rows * c.Cols
	if cap(img.Depth) < n {
		img.Depth = make([]float64, n)
	} else {
		img.Depth = img.Depth[:n]
	}
	if cap(img.dirs) < n {
		img.dirs = make([]geom.Vec3, n)
	} else {
		img.dirs = img.dirs[:n]
	}
	tab := c.tables()
	for r := 0; r < c.Rows; r++ {
		se, ce := tab.sinEl[r], tab.cosEl[r]
		for col := 0; col < c.Cols; col++ {
			az := yaw + tab.azOff[col]
			dir := geom.V(ce*math.Cos(az), ce*math.Sin(az), se)
			img.dirs[r*c.Cols+col] = dir
			dist := w.Raycast(pos, dir, c.MaxRange)
			if rng != nil && c.NoiseStd > 0 && dist < c.MaxRange {
				dist *= 1 + rng.NormFloat64()*c.NoiseStd
				if dist < 0 {
					dist = 0
				}
				if dist > c.MaxRange {
					dist = c.MaxRange
				}
			}
			img.Depth[r*c.Cols+col] = dist
		}
	}
}

// IMUReading is one inertial sample.
type IMUReading struct {
	T     float64
	Accel geom.Vec3 // m/s², world frame (gravity-compensated)
	Gyro  float64   // yaw rate, rad/s
	Pos   geom.Vec3 // fused position estimate (visual-inertial odometry)
	Vel   geom.Vec3 // fused velocity estimate
	Yaw   float64
}

// IMU models the inertial sensor plus the sensor-fusion (VIO) estimate the
// pipeline consumes. Noise is additive Gaussian.
type IMU struct {
	AccelNoiseStd float64 // m/s²
	GyroNoiseStd  float64 // rad/s
	PosNoiseStd   float64 // metres, on the fused estimate
	prevYaw       float64
	prevT         float64
	hasPrev       bool
}

// DefaultIMU returns the noise configuration used in the experiments.
func DefaultIMU() *IMU {
	return &IMU{AccelNoiseStd: 0.02, GyroNoiseStd: 0.002, PosNoiseStd: 0.01}
}

// Read samples the IMU and fused state estimate for the given true state.
// rng supplies noise; nil reads are noise-free.
func (u *IMU) Read(st State, rng *rand.Rand) IMUReading {
	r := IMUReading{
		T:     st.T,
		Accel: st.Acc,
		Pos:   st.Pos,
		Vel:   st.Vel,
		Yaw:   st.Yaw,
	}
	if u.hasPrev && st.T > u.prevT {
		r.Gyro = geom.AngleDiff(st.Yaw, u.prevYaw) / (st.T - u.prevT)
	}
	u.prevYaw, u.prevT, u.hasPrev = st.Yaw, st.T, true
	if rng != nil {
		n := func(std float64) float64 { return rng.NormFloat64() * std }
		r.Accel = r.Accel.Add(geom.V(n(u.AccelNoiseStd), n(u.AccelNoiseStd), n(u.AccelNoiseStd)))
		r.Gyro += n(u.GyroNoiseStd)
		r.Pos = r.Pos.Add(geom.V(n(u.PosNoiseStd), n(u.PosNoiseStd), n(u.PosNoiseStd)))
	}
	return r
}
