package sim

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/geom"
)

func openWorld() *env.World {
	return &env.World{
		Name:          "open",
		Bounds:        geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 50)),
		Start:         geom.V(10, 10, 0),
		Goal:          geom.V(90, 90, 2),
		GoalTolerance: 1.5,
	}
}

func TestMAVTakeoffAndSpeedLimit(t *testing.T) {
	m := NewMAV(openWorld(), DefaultParams())
	for i := 0; i < 30; i++ {
		m.Step(VelocityCmd{Vel: geom.V(0, 0, 99)}, 0.1)
	}
	if m.Crashed() {
		t.Fatalf("crashed during climb at %v", m.CrashPos())
	}
	st := m.State()
	if st.Pos.Z <= 0 {
		t.Error("did not climb")
	}
	if st.Vel.Len() > m.Params.MaxSpeed+1e-9 {
		t.Errorf("speed %v exceeds limit %v", st.Vel.Len(), m.Params.MaxSpeed)
	}
}

func TestMAVAccelLimit(t *testing.T) {
	p := DefaultParams()
	m := NewMAV(openWorld(), p)
	m.Step(VelocityCmd{Vel: geom.V(8, 0, 0)}, 0.1)
	v := m.State().Vel.Len()
	if v > p.MaxAccel*0.1+1e-9 {
		t.Errorf("after one tick speed %v exceeds a*dt=%v", v, p.MaxAccel*0.1)
	}
}

func TestMAVNaNCommandRejected(t *testing.T) {
	m := NewMAV(openWorld(), DefaultParams())
	m.Step(VelocityCmd{Vel: geom.V(math.NaN(), 1, 1), Yaw: math.NaN()}, 0.1)
	st := m.State()
	if !st.Pos.IsFinite() || math.IsNaN(st.Yaw) {
		t.Errorf("NaN leaked into state: %+v", st)
	}
	if m.Crashed() {
		t.Error("NaN command crashed the vehicle")
	}
}

func TestMAVCrashOnObstacle(t *testing.T) {
	w := openWorld()
	w.Obstacles = []geom.AABB{geom.Box(geom.V(15, 5, 0), geom.V(17, 15, 30))}
	m := NewMAV(w, DefaultParams())
	// Climb, then fly straight into the wall.
	for i := 0; i < 30; i++ {
		m.Step(VelocityCmd{Vel: geom.V(0, 0, 2)}, 0.1)
	}
	for i := 0; i < 200 && !m.Crashed(); i++ {
		m.Step(VelocityCmd{Vel: geom.V(5, 0, 0)}, 0.1)
	}
	if !m.Crashed() {
		t.Fatal("flew through a wall")
	}
	if m.CrashPos().X < 14 {
		t.Errorf("crash position %v implausible", m.CrashPos())
	}
	// After a crash the vehicle stays put.
	pos := m.State().Pos
	m.Step(VelocityCmd{Vel: geom.V(1, 0, 0)}, 0.1)
	if m.State().Pos != pos {
		t.Error("crashed vehicle moved")
	}
}

func TestMAVYawSlew(t *testing.T) {
	p := DefaultParams()
	m := NewMAV(openWorld(), p)
	start := m.State().Yaw
	m.Step(VelocityCmd{Vel: geom.Vec3{}, Yaw: start + 3}, 0.1)
	dy := math.Abs(geom.AngleDiff(m.State().Yaw, start))
	if dy > p.MaxYawRate*0.1+1e-9 {
		t.Errorf("yaw slewed %v in one tick, limit %v", dy, p.MaxYawRate*0.1)
	}
}

func TestMAVWindDrift(t *testing.T) {
	m := NewMAV(openWorld(), DefaultParams())
	// Hover command with a steady wind: the vehicle drifts.
	m.SetWind(geom.V(1, 0, 0))
	for i := 0; i < 30; i++ {
		m.Step(VelocityCmd{Vel: geom.V(0, 0, 1)}, 0.1)
	}
	if m.State().Pos.X <= m.World.Start.X {
		t.Error("no wind drift observed")
	}
}

func TestMAVDistanceAndGoal(t *testing.T) {
	w := openWorld()
	m := NewMAV(w, DefaultParams())
	if m.AtGoal() {
		t.Error("at goal at start")
	}
	for i := 0; i < 50; i++ {
		m.Step(VelocityCmd{Vel: geom.V(2, 0, 1)}, 0.1)
	}
	if m.DistanceFlown() <= 0 {
		t.Error("no distance accumulated")
	}
}

func TestDepthCameraGeometry(t *testing.T) {
	w := openWorld()
	w.Obstacles = []geom.AABB{geom.Box(geom.V(20, 0, 0), geom.V(22, 100, 30))}
	cam := DefaultDepthCamera()
	cam.NoiseStd = 0
	img := cam.Capture(w, geom.V(10, 50, 5), 0, nil) // facing +x
	// The centre-ish pixel looks straight at the wall 10 m away.
	centre := img.At(img.Rows/2, img.Cols/2)
	if centre > 11.5 || centre < 9.5 {
		t.Errorf("centre depth = %v, want ≈10", centre)
	}
	// Rays pointing up-range (top rows, elevated) either clear max range
	// or exceed the straight-line distance.
	top := img.At(0, img.Cols/2)
	if top < centre {
		t.Errorf("elevated ray shorter than level ray: %v < %v", top, centre)
	}
	// Ray directions are unit length.
	for r := 0; r < img.Rows; r += 5 {
		for c := 0; c < img.Cols; c += 7 {
			if l := img.Ray(r, c).Len(); math.Abs(l-1) > 1e-9 {
				t.Fatalf("ray (%d,%d) length %v", r, c, l)
			}
		}
	}
}

func TestDepthCameraNoiseBounded(t *testing.T) {
	w := openWorld()
	w.Obstacles = []geom.AABB{geom.Box(geom.V(20, 0, 0), geom.V(22, 100, 30))}
	cam := DefaultDepthCamera()
	rng := rand.New(rand.NewSource(1))
	img := cam.Capture(w, geom.V(10, 50, 5), 0, rng)
	for i, d := range img.Depth {
		if d < 0 || d > cam.MaxRange {
			t.Fatalf("depth[%d] = %v out of [0, %v]", i, d, cam.MaxRange)
		}
	}
}

func TestIMURead(t *testing.T) {
	u := DefaultIMU()
	st := State{T: 1, Pos: geom.V(1, 2, 3), Vel: geom.V(0.5, 0, 0), Yaw: 0.2}
	r := u.Read(st, nil) // noise-free
	if r.Pos != st.Pos || r.Vel != st.Vel || r.Yaw != st.Yaw {
		t.Errorf("noise-free read differs: %+v", r)
	}
	// Gyro from successive yaw readings.
	st2 := State{T: 1.1, Yaw: 0.3}
	r2 := u.Read(st2, nil)
	if math.Abs(r2.Gyro-1.0) > 1e-6 {
		t.Errorf("gyro = %v, want 1.0 rad/s", r2.Gyro)
	}
}

func TestBattery(t *testing.T) {
	b := NewBattery(100)
	if !b.Drain(50, 1) { // 50 J used
		t.Error("drain with charge left reported empty")
	}
	if b.Remaining() != 50 {
		t.Errorf("Remaining = %v", b.Remaining())
	}
	if b.Drain(100, 1) { // 150 J total > 100
		t.Error("over-drained battery reported charged")
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining after exhaustion = %v", b.Remaining())
	}
	// Unlimited battery.
	u := NewBattery(0)
	if !u.Drain(1e9, 1e9) {
		t.Error("unlimited battery exhausted")
	}
}

func TestPowerModel(t *testing.T) {
	p := DefaultPowerModel()
	hover := p.Power(geom.Vec3{})
	cruise := p.Power(geom.V(8, 0, 0))
	if hover <= 0 || cruise <= hover {
		t.Errorf("hover=%v cruise=%v", hover, cruise)
	}
	if got := p.Power(geom.V(3, 4, 0)); math.Abs(got-(p.HoverW+p.DragK*25+p.ComputeW)) > 1e-9 {
		t.Errorf("power = %v", got)
	}
}
