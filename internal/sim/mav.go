// Package sim provides the closed-loop micro-aerial-vehicle simulator that
// substitutes for AirSim in the MAVFI reproduction: point-mass flight
// dynamics with velocity/acceleration limits, a low-level flight-controller
// model, IMU and RGB-D depth-camera sensor models, and a battery/energy
// model. The PPC pipeline consumes sensor output and produces velocity
// flight commands, exactly like the companion computer in the paper's
// hardware-in-the-loop setup.
//
// Buffer ownership (the PR 2 zero-alloc contract): DepthCamera.CaptureInto
// renders into a caller-owned DepthImage, reusing its Depth slice across
// frames. The caller must not retain the previous frame's contents past the
// next CaptureInto on the same image; the pipeline gets away with one image
// per mission because topic delivery is synchronous and no subscriber holds
// a frame after Publish returns. Buffers are per mission, never shared
// between parallel campaign workers.
package sim

import (
	"math"

	"mavfi/internal/env"
	"mavfi/internal/geom"
)

// State is the MAV's kinematic state at simulated time T.
type State struct {
	T   float64   // mission time, seconds
	Pos geom.Vec3 // metres, world frame
	Vel geom.Vec3 // metres/second
	Acc geom.Vec3 // metres/second², as applied during the last step
	Yaw float64   // radians
}

// VelocityCmd is the flight command the control stage issues: a desired
// world-frame velocity plus a yaw setpoint. This matches the command
// interface MAVBench's path tracker uses toward the flight controller.
type VelocityCmd struct {
	Vel geom.Vec3
	Yaw float64
}

// Params bound the vehicle's physical capability.
type Params struct {
	MaxSpeed   float64 // m/s, per-axis-combined speed limit
	MaxAccel   float64 // m/s², acceleration limit the flight controller enforces
	MaxYawRate float64 // rad/s
	Radius     float64 // collision radius of the airframe, metres
}

// DefaultParams returns the AirSim-like quadrotor defaults used throughout
// the experiments.
func DefaultParams() Params {
	return Params{MaxSpeed: 8, MaxAccel: 4, MaxYawRate: 1.5, Radius: 0.4}
}

// MAV is the simulated vehicle: dynamics plus crash bookkeeping.
type MAV struct {
	World  *env.World
	Params Params

	st      State
	wind    geom.Vec3
	crashed bool
	crashAt geom.Vec3
	dist    float64 // path length flown, metres
}

// NewMAV places a vehicle at the world's start position on the ground,
// facing the goal.
func NewMAV(w *env.World, p Params) *MAV {
	m := &MAV{World: w, Params: p}
	m.st.Pos = w.Start
	m.st.Yaw = w.Goal.Sub(w.Start).Yaw()
	return m
}

// State returns the current kinematic state.
func (m *MAV) State() State { return m.st }

// SetWind sets the ambient wind velocity the vehicle drifts with. The
// controller sees the drift only through position feedback, like a real
// quadrotor.
func (m *MAV) SetWind(w geom.Vec3) { m.wind = w }

// Crashed reports whether the vehicle has collided with an obstacle, the
// ground, or the volume boundary.
func (m *MAV) Crashed() bool { return m.crashed }

// CrashPos returns where the crash happened; zero if not crashed.
func (m *MAV) CrashPos() geom.Vec3 { return m.crashAt }

// DistanceFlown returns the accumulated path length in metres.
func (m *MAV) DistanceFlown() float64 { return m.dist }

// Step advances the dynamics by dt seconds under cmd. The flight controller
// accelerates toward the commanded velocity within MaxAccel, limits speed to
// MaxSpeed, and slews yaw at MaxYawRate. Non-finite commands (possible under
// fault injection) are treated as zero velocity: the low-level controller
// rejects NaN setpoints, as real autopilots do.
func (m *MAV) Step(cmd VelocityCmd, dt float64) {
	if m.crashed || dt <= 0 {
		return
	}
	want := cmd.Vel
	if !want.IsFinite() {
		want = geom.Vec3{}
	}
	want = want.ClampLen(m.Params.MaxSpeed)

	// Acceleration toward the commanded velocity, saturated.
	acc := want.Sub(m.st.Vel).Scale(1 / dt).ClampLen(m.Params.MaxAccel)
	newVel := m.st.Vel.Add(acc.Scale(dt)).ClampLen(m.Params.MaxSpeed)
	newPos := m.st.Pos.Add(m.st.Vel.Add(newVel).Scale(0.5 * dt)) // trapezoidal
	newPos = newPos.Add(m.wind.Scale(dt))                        // ambient drift

	// Keep take-off simple: never integrate below the ground plane while
	// commanded upward.
	if newPos.Z < 0 {
		newPos.Z = 0
		if newVel.Z < 0 {
			newVel.Z = 0
		}
	}

	yawTarget := cmd.Yaw
	if math.IsNaN(yawTarget) || math.IsInf(yawTarget, 0) {
		yawTarget = m.st.Yaw
	}
	dyaw := geom.AngleDiff(yawTarget, m.st.Yaw)
	maxD := m.Params.MaxYawRate * dt
	dyaw = geom.Clampf(dyaw, -maxD, maxD)

	m.dist += m.st.Pos.Dist(newPos)
	m.st = State{
		T:   m.st.T + dt,
		Pos: newPos,
		Vel: newVel,
		Acc: acc,
		Yaw: geom.WrapAngle(m.st.Yaw + dyaw),
	}

	// Collision check: body contact with obstacles, the ground, or the
	// volume boundary is a crash.
	if m.World.Collides(m.st.Pos, m.Params.Radius) {
		m.crashed = true
		m.crashAt = m.st.Pos
	}
}

// AtGoal reports whether the vehicle is within the mission goal tolerance.
func (m *MAV) AtGoal() bool {
	return m.st.Pos.Dist(m.World.Goal) <= m.World.GoalTolerance
}
