package sim

import "mavfi/internal/geom"

// PowerModel converts flight state into electrical power draw, the basis of
// the paper's "mission energy" QoF metric. Total power is the sum of a hover
// term, a translation term that grows with speed (induced + parasite drag),
// and the compute platform's draw.
type PowerModel struct {
	HoverW   float64 // power to hover, watts
	DragK    float64 // watts per (m/s)², translation penalty
	ComputeW float64 // companion-computer power, watts
}

// DefaultPowerModel returns the AirSim-UAV-class power model calibrated so a
// ~115 s Sparse mission on the i9 platform lands near the paper's reported
// 61.7 kJ (Fig. 9 table): roughly 500 W hover plus compute.
func DefaultPowerModel() PowerModel {
	return PowerModel{HoverW: 480, DragK: 1.2, ComputeW: 45}
}

// Power returns the instantaneous draw in watts for the given velocity.
func (p PowerModel) Power(vel geom.Vec3) float64 {
	v2 := vel.LenSq()
	return p.HoverW + p.DragK*v2 + p.ComputeW
}

// Battery integrates energy use over a mission.
type Battery struct {
	CapacityJ float64
	UsedJ     float64
}

// NewBattery returns a battery with the given capacity in joules.
func NewBattery(capacityJ float64) *Battery {
	return &Battery{CapacityJ: capacityJ}
}

// Drain consumes watts × dt joules and reports whether charge remains.
func (b *Battery) Drain(watts, dt float64) bool {
	b.UsedJ += watts * dt
	return b.CapacityJ <= 0 || b.UsedJ < b.CapacityJ
}

// Remaining returns remaining charge in joules (capacity 0 means unlimited).
func (b *Battery) Remaining() float64 {
	if b.CapacityJ <= 0 {
		return 0
	}
	r := b.CapacityJ - b.UsedJ
	if r < 0 {
		return 0
	}
	return r
}
