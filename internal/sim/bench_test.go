package sim

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// BenchmarkCaptureInto measures the steady-state depth-frame render: table-
// driven ray setup plus world raycasts into reused buffers.
func BenchmarkCaptureInto(b *testing.B) {
	w := wallWorld()
	cam := DefaultDepthCamera()
	rng := rand.New(rand.NewSource(2))
	img := &DepthImage{}
	pos := geom.V(10, 50, 5)
	cam.CaptureInto(img, w, pos, 0, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam.CaptureInto(img, w, pos, 0.1, rng)
	}
}
