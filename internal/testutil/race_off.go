//go:build !race

// Package testutil holds small helpers shared by test files, currently the
// race-detector sentinel that lets allocation-regression tests skip under
// -race (instrumentation inserts its own allocations, so AllocsPerRun
// numbers are only meaningful in uninstrumented builds).
package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
