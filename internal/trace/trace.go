// Package trace records flight trajectories for the paper's Fig. 7
// trajectory-analysis visualisations and exports them as CSV.
package trace

import (
	"fmt"
	"io"
	"strings"

	"mavfi/internal/geom"
)

// Sample is one trajectory point.
type Sample struct {
	T   float64
	Pos geom.Vec3
	Vel geom.Vec3
	Yaw float64
	// Event tags notable ticks: "inject", "alarm", "replan", "crash".
	Event string
}

// Trace is one mission's recorded trajectory.
type Trace struct {
	Label   string
	Samples []Sample
}

// Sink receives a mission's trajectory samples as the flight progresses —
// the streaming counterpart to reading Result.Trace after the mission ends,
// used by the mission recorder (internal/record) to persist ticks while the
// mission is still flying.
//
// Contract: Append is called once per sample, in tick order, and only with
// finalized samples — samples whose Event tag can no longer change. Event
// tags attach retroactively (MarkEvent tags the most recent sample, and a
// tick's replan/alarm tags land before the *next* sample is added), so the
// pipeline streams sample i only once sample i+1 is about to be recorded,
// and flushes the remainder at mission end. Append must not retain s's
// Event string beyond the call if it wants to stay allocation-free; it is
// invoked from the mission tick loop, so implementations must keep the call
// cheap and must not block on unbounded work (the record.Writer compresses
// on a background goroutine behind a bounded queue for exactly this reason).
// Errors are reported out of band (e.g. record.Writer.Close): Append does
// not return one, keeping the tick path free of error-wrapping allocations.
type Sink interface {
	Append(s Sample)
}

// Add appends a sample. Within a Reserve'd capacity Add never allocates,
// which is how recorded missions keep the steady-state tick loop
// allocation-free.
func (t *Trace) Add(s Sample) { t.Samples = append(t.Samples, s) }

// Reserve grows the sample storage to hold at least n samples without
// reallocation, so a recorder that knows its tick budget (the mission loop
// reserves MaxMissionS/TickS up front) pays one allocation instead of a
// log₂(n) growth chain of per-tick reallocations mid-flight.
func (t *Trace) Reserve(n int) {
	if cap(t.Samples) < n {
		s := make([]Sample, len(t.Samples), n)
		copy(s, t.Samples)
		t.Samples = s
	}
}

// Reset empties the trace for reuse, keeping the reserved storage: together
// with Reserve this makes a Trace a reusable ring-style buffer — a caller
// recording many missions in turn can recycle one Trace (and its one
// allocation) across all of them.
func (t *Trace) Reset() {
	t.Samples = t.Samples[:0]
	t.Label = ""
}

// MarkEvent tags the most recent sample with an event (appending when the
// sample already carries one).
func (t *Trace) MarkEvent(ev string) {
	if len(t.Samples) == 0 {
		return
	}
	s := &t.Samples[len(t.Samples)-1]
	if s.Event == "" {
		s.Event = ev
	} else if !strings.Contains(s.Event, ev) {
		s.Event += "+" + ev
	}
}

// PathLength returns the flown path length in metres.
func (t *Trace) PathLength() float64 {
	total := 0.0
	for i := 1; i < len(t.Samples); i++ {
		total += t.Samples[i].Pos.Dist(t.Samples[i-1].Pos)
	}
	return total
}

// Detour compares this trace's path length against a reference trace and
// returns the excess fraction (0.25 = 25% longer).
func (t *Trace) Detour(ref *Trace) float64 {
	rl := ref.PathLength()
	if rl <= 0 {
		return 0
	}
	return t.PathLength()/rl - 1
}

// Events returns the tagged samples in order.
func (t *Trace) Events() []Sample {
	var out []Sample
	for _, s := range t.Samples {
		if s.Event != "" {
			out = append(out, s)
		}
	}
	return out
}

// WriteCSV emits the trace as CSV with a label column so multiple traces
// (golden / FI / FI+D&R) can share one file for plotting.
func (t *Trace) WriteCSV(w io.Writer, header bool) error {
	if header {
		if _, err := fmt.Fprintln(w, "label,t,x,y,z,vx,vy,vz,yaw,event"); err != nil {
			return err
		}
	}
	for _, s := range t.Samples {
		_, err := fmt.Fprintf(w, "%s,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%s\n",
			t.Label, s.T, s.Pos.X, s.Pos.Y, s.Pos.Z, s.Vel.X, s.Vel.Y, s.Vel.Z, s.Yaw, s.Event)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteAllCSV writes several traces into one CSV stream.
func WriteAllCSV(w io.Writer, traces ...*Trace) error {
	for i, tr := range traces {
		if err := tr.WriteCSV(w, i == 0); err != nil {
			return err
		}
	}
	return nil
}
