package trace

import (
	"errors"
	"strings"
	"testing"

	"mavfi/internal/geom"
	"mavfi/internal/testutil"
)

func lineTrace() *Trace {
	tr := &Trace{Label: "test"}
	for i := 0; i <= 10; i++ {
		tr.Add(Sample{T: float64(i) * 0.1, Pos: geom.V(float64(i), 0, 2)})
	}
	return tr
}

func TestPathLength(t *testing.T) {
	tr := lineTrace()
	if got := tr.PathLength(); got != 10 {
		t.Errorf("PathLength = %v", got)
	}
	if (&Trace{}).PathLength() != 0 {
		t.Error("empty trace length")
	}
}

func TestDetour(t *testing.T) {
	ref := lineTrace()
	longer := &Trace{}
	for i := 0; i <= 10; i++ {
		longer.Add(Sample{Pos: geom.V(float64(i), float64(i%2), 2)}) // zigzag
	}
	d := longer.Detour(ref)
	if d <= 0 {
		t.Errorf("zigzag detour = %v, want > 0", d)
	}
	if ref.Detour(ref) != 0 {
		t.Error("self detour not 0")
	}
	if ref.Detour(&Trace{}) != 0 {
		t.Error("detour vs empty reference not 0")
	}
}

func TestEvents(t *testing.T) {
	tr := lineTrace()
	tr.MarkEvent("inject")
	tr.MarkEvent("alarm") // second tag on the same sample appends
	tr.MarkEvent("alarm") // duplicate tag ignored
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Event != "inject+alarm" {
		t.Errorf("event tag = %q", evs[0].Event)
	}
	// MarkEvent on an empty trace is a no-op.
	(&Trace{}).MarkEvent("x")
}

func TestWriteCSV(t *testing.T) {
	tr := lineTrace()
	tr.MarkEvent("crash")
	var b strings.Builder
	if err := tr.WriteCSV(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 12 { // header + 11 samples
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "label,t,x,y,z") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "test,0.00,0.000") {
		t.Errorf("first row = %q", lines[1])
	}
	if !strings.Contains(lines[11], "crash") {
		t.Errorf("last row missing event: %q", lines[11])
	}
}

func TestWriteAllCSV(t *testing.T) {
	a, b := lineTrace(), lineTrace()
	a.Label, b.Label = "golden", "fault"
	var sb strings.Builder
	if err := WriteAllCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "label,t,") != 1 {
		t.Error("header repeated")
	}
	if !strings.Contains(out, "golden,") || !strings.Contains(out, "fault,") {
		t.Error("labels missing")
	}
}

func TestEventsOrderingAndFiltering(t *testing.T) {
	tr := &Trace{}
	tags := map[int]string{2: "inject", 5: "alarm", 9: "crash"}
	for i := 0; i < 10; i++ {
		tr.Add(Sample{T: float64(i)})
		if tag, ok := tags[i]; ok {
			tr.MarkEvent(tag)
		}
	}
	evs := tr.Events()
	if len(evs) != len(tags) {
		t.Fatalf("Events returned %d samples, want %d", len(evs), len(tags))
	}
	for i, want := range []string{"inject", "alarm", "crash"} {
		if evs[i].Event != want {
			t.Errorf("event %d = %q, want %q (tick order must be preserved)", i, evs[i].Event, want)
		}
	}
	if evs[0].T != 2 || evs[1].T != 5 || evs[2].T != 9 {
		t.Errorf("event times = %v,%v,%v", evs[0].T, evs[1].T, evs[2].T)
	}
	if got := (&Trace{}).Events(); len(got) != 0 {
		t.Errorf("empty trace has %d events", len(got))
	}
}

// failWriter fails every write after the first n.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	f.n--
	return len(p), nil
}

var errFail = errors.New("sink failed")

func TestWriteCSVErrorPropagation(t *testing.T) {
	tr := lineTrace()
	if err := tr.WriteCSV(&failWriter{}, true); !errors.Is(err, errFail) {
		t.Errorf("header write error not propagated: %v", err)
	}
	if err := tr.WriteCSV(&failWriter{n: 3}, true); !errors.Is(err, errFail) {
		t.Errorf("row write error not propagated: %v", err)
	}
	if err := WriteAllCSV(&failWriter{n: 1}, tr, tr); !errors.Is(err, errFail) {
		t.Errorf("WriteAllCSV error not propagated: %v", err)
	}
	if err := WriteAllCSV(&strings.Builder{}); err != nil {
		t.Errorf("WriteAllCSV with no traces: %v", err)
	}
}

func TestTraceReserveAddAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are meaningless under -race instrumentation")
	}
	tr := &Trace{}
	const n = 1800 // a full mission at the default tick budget
	tr.Reserve(n)
	if allocs := testing.AllocsPerRun(20, func() {
		tr.Reset()
		for i := 0; i < n; i++ {
			tr.Add(Sample{T: float64(i), Pos: geom.V(float64(i), 0, 2)})
		}
		tr.MarkEvent("replan")
	}); allocs != 0 {
		t.Fatalf("recording %d samples into a reserved trace allocates %v objects per mission, want 0", n, allocs)
	}
}

func TestTraceResetKeepsStorage(t *testing.T) {
	tr := lineTrace()
	tr.Reserve(64)
	c := cap(tr.Samples)
	tr.Reset()
	if len(tr.Samples) != 0 || tr.Label != "" {
		t.Fatalf("Reset left len=%d label=%q", len(tr.Samples), tr.Label)
	}
	if cap(tr.Samples) != c {
		t.Fatalf("Reset dropped storage: cap %d → %d", c, cap(tr.Samples))
	}
}

func TestTraceReservePreservesSamples(t *testing.T) {
	tr := lineTrace()
	want := append([]Sample(nil), tr.Samples...)
	tr.Reserve(4096)
	if cap(tr.Samples) < 4096 {
		t.Fatalf("cap = %d after Reserve(4096)", cap(tr.Samples))
	}
	if len(tr.Samples) != len(want) {
		t.Fatalf("Reserve changed len: %d → %d", len(want), len(tr.Samples))
	}
	for i := range want {
		if tr.Samples[i] != want[i] {
			t.Fatalf("Reserve corrupted sample %d", i)
		}
	}
}
