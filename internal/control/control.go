// Package control implements the control stage of the PPC pipeline: the
// path-tracking kernel that follows the planned multi-DOF trajectory with a
// PID position loop, and the command-issue step that emits velocity flight
// commands toward the flight controller. Its outputs (vx, vy, vz) are the
// control-stage inter-kernel states the paper corrupts and monitors.
package control

import (
	"math"

	"mavfi/internal/geom"
	"mavfi/internal/planning"
)

// PID is a scalar proportional-integral-derivative regulator with output
// clamping and integral anti-windup.
type PID struct {
	Kp, Ki, Kd float64
	OutMin     float64
	OutMax     float64

	integral float64
	prevErr  float64
	hasPrev  bool
}

// Reset clears the regulator's internal state.
func (p *PID) Reset() {
	p.integral = 0
	p.prevErr = 0
	p.hasPrev = false
}

// Step advances the regulator by dt with the given error and returns the
// control output.
func (p *PID) Step(err, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	deriv := 0.0
	if p.hasPrev {
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.hasPrev = true
	p.integral += err * dt
	out := p.Kp*err + p.Ki*p.integral + p.Kd*deriv
	if p.OutMax > p.OutMin {
		if out > p.OutMax {
			out = p.OutMax
			p.integral -= err * dt // anti-windup: don't accumulate while saturated
		} else if out < p.OutMin {
			out = p.OutMin
			p.integral -= err * dt
		}
	}
	return out
}

// Tracker is the path-tracking/command-issue kernel.
type Tracker struct {
	// Lookahead is the along-trajectory pursuit distance in metres.
	Lookahead float64
	// MaxSpeed clamps commanded velocity.
	MaxSpeed float64

	// Degrade, when non-nil, transforms the finished velocity command just
	// before it is issued — the actuator-degradation injection point
	// (faultinject.ActuatorInjector.Degrade). It models the actuator, not
	// the kernel: it runs after the clamp, outside the PID loop, and its
	// output is what actually flies. nil leaves command issue untouched.
	Degrade func(geom.Vec3) geom.Vec3

	pidX, pidY, pidZ PID

	traj    *planning.Trajectory
	nearest int // index of last matched way-point, monotone per trajectory
}

// NewTracker returns the kernel with the experiment gains.
func NewTracker(maxSpeed float64) *Tracker {
	mk := func() PID {
		return PID{Kp: 1.2, Ki: 0.02, Kd: 0.15, OutMin: -maxSpeed, OutMax: maxSpeed}
	}
	return &Tracker{
		Lookahead: 2.0,
		MaxSpeed:  maxSpeed,
		pidX:      mk(), pidY: mk(), pidZ: mk(),
	}
}

// SetTrajectory installs a new trajectory to follow and resets tracking
// state (the recomputation path after planning-stage recovery also lands
// here).
func (t *Tracker) SetTrajectory(tr *planning.Trajectory) {
	t.traj = tr
	t.nearest = 0
	t.pidX.Reset()
	t.pidY.Reset()
	t.pidZ.Reset()
}

// Trajectory returns the trajectory currently tracked (nil before the first
// plan).
func (t *Tracker) Trajectory() *planning.Trajectory { return t.traj }

// Progress returns the fraction of trajectory way-points already passed.
func (t *Tracker) Progress() float64 {
	if t.traj == nil || len(t.traj.Points) < 2 {
		return 0
	}
	return float64(t.nearest) / float64(len(t.traj.Points)-1)
}

// NearestIndex returns the index of the last matched way-point.
func (t *Tracker) NearestIndex() int { return t.nearest }

// SelectTarget advances the matched way-point to the vehicle position and
// returns the look-ahead way-point the control loop will pursue, plus its
// trajectory index. This is the "Multidoftraj" inter-kernel state the
// detectors monitor and MAVFI corrupts; ok is false when no trajectory is
// installed.
func (t *Tracker) SelectTarget(pos geom.Vec3) (target planning.Waypoint, index int, ok bool) {
	if t.traj == nil || len(t.traj.Points) == 0 {
		return planning.Waypoint{}, 0, false
	}
	pts := t.traj.Points

	// Advance the matched way-point monotonically to the closest point.
	for t.nearest+1 < len(pts) &&
		pts[t.nearest+1].Pos.DistSq(pos) <= pts[t.nearest].Pos.DistSq(pos) {
		t.nearest++
	}

	// Pursue a look-ahead point.
	li := t.nearest
	for li+1 < len(pts) && pts[li].Pos.Dist(pos) < t.Lookahead {
		li++
	}
	return pts[li], li, true
}

// SetWaypoint overwrites trajectory way-point index i, the write-back path
// used when a corrupted or recovered way-point must persist in the
// trajectory (inter-kernel states live in the trajectory message until the
// way-point is passed or a replan replaces it).
func (t *Tracker) SetWaypoint(i int, wp planning.Waypoint) {
	if t.traj != nil && i >= 0 && i < len(t.traj.Points) {
		t.traj.Points[i] = wp
	}
}

// TrackTo computes the velocity flight command pursuing target from pos
// with dt since the last call.
//
// corrupt, when non-nil, is applied to the target position computation — an
// auxiliary injection hook kept for unit-level fault studies (the pipeline
// injects the control kernel through its persistent setpoint instead; see
// internal/pipeline). The anti-windup clamp bounds how much a one-shot
// corrupted target can pollute the PID integral state.
func (t *Tracker) TrackTo(target planning.Waypoint, pos geom.Vec3, dt float64, corrupt func(float64) float64) (cmd geom.Vec3, yaw float64, done bool) {
	tx, ty, tz := target.Pos.X, target.Pos.Y, target.Pos.Z
	if corrupt != nil {
		tx = corrupt(tx)
		ty = corrupt(ty)
		tz = corrupt(tz)
	}

	vx := t.pidX.Step(tx-pos.X, dt) + target.Vel.X
	vy := t.pidY.Step(ty-pos.Y, dt) + target.Vel.Y
	vz := t.pidZ.Step(tz-pos.Z, dt) + target.Vel.Z

	cmd = geom.V(vx, vy, vz)
	if !cmd.IsFinite() {
		cmd = geom.Vec3{}
	}
	cmd = cmd.ClampLen(t.MaxSpeed)
	if t.Degrade != nil {
		cmd = t.Degrade(cmd)
	}
	yaw = target.Yaw
	if math.IsNaN(yaw) || math.IsInf(yaw, 0) {
		yaw = 0
	}

	if t.traj != nil && len(t.traj.Points) > 0 {
		pts := t.traj.Points
		done = t.nearest >= len(pts)-1 && pos.Dist(pts[len(pts)-1].Pos) < 0.75
	}
	return cmd, yaw, done
}

// Command is SelectTarget followed by TrackTo, the single-call form used by
// tests and simple clients.
func (t *Tracker) Command(pos geom.Vec3, dt float64, corrupt func(float64) float64) (cmd geom.Vec3, yaw float64, done bool) {
	target, _, ok := t.SelectTarget(pos)
	if !ok {
		return geom.Vec3{}, 0, false
	}
	return t.TrackTo(target, pos, dt, corrupt)
}
