package control

import (
	"math"
	"testing"

	"mavfi/internal/geom"
	"mavfi/internal/planning"
)

func TestPIDConvergesToSetpoint(t *testing.T) {
	pid := PID{Kp: 1.5, Ki: 0.1, Kd: 0.05, OutMin: -5, OutMax: 5}
	// Simulated first-order plant: x' = u.
	x := 0.0
	for i := 0; i < 300; i++ {
		u := pid.Step(10-x, 0.05)
		x += u * 0.05
	}
	if math.Abs(x-10) > 0.2 {
		t.Errorf("plant settled at %v, want 10", x)
	}
}

func TestPIDOutputClamp(t *testing.T) {
	pid := PID{Kp: 100, OutMin: -2, OutMax: 2}
	if out := pid.Step(1000, 0.1); out != 2 {
		t.Errorf("clamped output = %v", out)
	}
	if out := pid.Step(-1000, 0.1); out != -2 {
		t.Errorf("clamped output = %v", out)
	}
}

func TestPIDAntiWindup(t *testing.T) {
	pid := PID{Kp: 0.1, Ki: 1, OutMin: -1, OutMax: 1}
	// Saturate hard for a long time.
	for i := 0; i < 100; i++ {
		pid.Step(100, 0.1)
	}
	// After the error flips, a wound-up integrator would stay pinned at
	// +1 for many steps; anti-windup recovers quickly.
	recovered := false
	for i := 0; i < 5; i++ {
		if pid.Step(-100, 0.1) < 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("integral windup not prevented")
	}
}

func TestPIDResetAndZeroDt(t *testing.T) {
	pid := PID{Kp: 1, Ki: 1, Kd: 1}
	pid.Step(5, 0.1)
	pid.Reset()
	if out := pid.Step(0, 0.1); out != 0 {
		t.Errorf("after reset, zero error output = %v", out)
	}
	if out := pid.Step(99, 0); out != 0 {
		t.Errorf("zero-dt output = %v", out)
	}
}

func straightTrajectory() *planning.Trajectory {
	tr := &planning.Trajectory{}
	for i := 0; i <= 30; i++ {
		tr.Points = append(tr.Points, planning.Waypoint{
			Pos: geom.V(float64(i), 0, 2),
			Vel: geom.V(3, 0, 0),
			Yaw: 0,
			T:   float64(i) / 3,
		})
	}
	tr.Points[len(tr.Points)-1].Vel = geom.Vec3{}
	return tr
}

func TestTrackerFollowsTrajectory(t *testing.T) {
	tk := NewTracker(5)
	tk.SetTrajectory(straightTrajectory())
	pos := geom.V(0, 0.5, 2) // offset from the path
	dt := 0.1
	var done bool
	for i := 0; i < 400 && !done; i++ {
		var cmd geom.Vec3
		cmd, _, done = tk.Command(pos, dt, nil)
		pos = pos.Add(cmd.Scale(dt))
	}
	if !done {
		t.Fatalf("never finished; stuck at %v (progress %.2f)", pos, tk.Progress())
	}
	if pos.Dist(geom.V(30, 0, 2)) > 1.5 {
		t.Errorf("finished far from goal: %v", pos)
	}
	if math.Abs(pos.Y) > 0.6 {
		t.Errorf("cross-track error %v not regulated", pos.Y)
	}
}

func TestTrackerNoTrajectory(t *testing.T) {
	tk := NewTracker(5)
	cmd, yaw, done := tk.Command(geom.V(0, 0, 0), 0.1, nil)
	if cmd != (geom.Vec3{}) || yaw != 0 || done {
		t.Errorf("no-trajectory command: %v %v %v", cmd, yaw, done)
	}
	if _, _, ok := tk.SelectTarget(geom.V(0, 0, 0)); ok {
		t.Error("target selected with no trajectory")
	}
}

func TestTrackerSelectTargetLookahead(t *testing.T) {
	tk := NewTracker(5)
	tk.SetTrajectory(straightTrajectory())
	target, idx, ok := tk.SelectTarget(geom.V(5, 0, 2))
	if !ok {
		t.Fatal("no target")
	}
	// Look-ahead of 2 m from x=5 → target around x=7.
	if target.Pos.X < 6 || target.Pos.X > 9 {
		t.Errorf("target at %v", target.Pos)
	}
	if idx < 6 || idx > 9 {
		t.Errorf("index %d", idx)
	}
	// Monotone matched index.
	_, idx2, _ := tk.SelectTarget(geom.V(10, 0, 2))
	if idx2 < idx {
		t.Errorf("index went backwards: %d then %d", idx, idx2)
	}
	if tk.NearestIndex() < 5 {
		t.Errorf("nearest = %d", tk.NearestIndex())
	}
}

func TestTrackerSetWaypoint(t *testing.T) {
	tk := NewTracker(5)
	tk.SetTrajectory(straightTrajectory())
	wp := planning.Waypoint{Pos: geom.V(99, 99, 99)}
	tk.SetWaypoint(5, wp)
	if tk.Trajectory().Points[5].Pos != wp.Pos {
		t.Error("SetWaypoint did not write through")
	}
	// Out-of-range writes are ignored, not panics.
	tk.SetWaypoint(-1, wp)
	tk.SetWaypoint(999, wp)
	tk.SetTrajectory(nil)
	tk.SetWaypoint(0, wp) // nil trajectory: no-op
}

func TestTrackerCorruptTargetNaNGuard(t *testing.T) {
	tk := NewTracker(5)
	tk.SetTrajectory(straightTrajectory())
	cmd, yaw, _ := tk.Command(geom.V(0, 0, 2), 0.1, func(x float64) float64 {
		return math.NaN()
	})
	if !cmd.IsFinite() {
		t.Errorf("NaN target produced non-finite command %v", cmd)
	}
	if math.IsNaN(yaw) {
		t.Error("NaN yaw leaked")
	}
}

func TestTrackerCorruptedTargetChangesCommand(t *testing.T) {
	// A corrupted cross-track target coordinate must visibly skew the
	// command direction, while the anti-windup clamp keeps the corruption
	// from winding up the integrator indefinitely.
	clean := NewTracker(5)
	dirty := NewTracker(5)
	clean.SetTrajectory(straightTrajectory())
	dirty.SetTrajectory(straightTrajectory())
	pos := geom.V(5, 0, 2)

	calls := 0
	hook := func(x float64) float64 {
		calls++
		if calls == 2 { // corrupt ty, the cross-track coordinate
			return x + 1e6
		}
		return x
	}
	c1, _, _ := clean.Command(pos, 0.1, nil)
	d1, _, _ := dirty.Command(pos, 0.1, hook)
	if c1.Dist(d1) < 0.5 {
		t.Errorf("corrupted command %v too close to clean %v", d1, c1)
	}
	// The anti-windup clamp bounds the aftermath: a few clean ticks later
	// the two controllers agree again.
	var c2, d2 geom.Vec3
	for i := 0; i < 10; i++ {
		c2, _, _ = clean.Command(pos, 0.1, nil)
		d2, _, _ = dirty.Command(pos, 0.1, nil)
	}
	if c2.Dist(d2) > 0.5 {
		t.Errorf("commands still diverged after recovery window: %v vs %v", c2, d2)
	}
}

func TestTrackerCorruptedFeedForwardPersists(t *testing.T) {
	// The pipeline's control-kernel injection path: a corrupted
	// feed-forward velocity written back into the pursued way-point keeps
	// skewing commands until the way-point is replaced.
	tk := NewTracker(5)
	tk.SetTrajectory(straightTrajectory())
	pos := geom.V(5, 0, 2)
	target, idx, _ := tk.SelectTarget(pos)
	target.Vel.Y = 4 // corrupted feed-forward
	tk.SetWaypoint(idx, target)

	cmd, _, _ := tk.TrackTo(tk.Trajectory().Points[idx], pos, 0.1, nil)
	if cmd.Y < 1 {
		t.Errorf("corrupted feed-forward not reflected: %v", cmd)
	}
	// Restoring the way-point clears the effect.
	target.Vel.Y = 0
	tk.SetWaypoint(idx, target)
	cmd2, _, _ := tk.TrackTo(tk.Trajectory().Points[idx], pos, 0.1, nil)
	if cmd2.Y > 1 {
		t.Errorf("restored way-point still skewed: %v", cmd2)
	}
}

func TestTrackerProgressAndDone(t *testing.T) {
	tk := NewTracker(5)
	tk.SetTrajectory(straightTrajectory())
	if tk.Progress() != 0 {
		t.Errorf("initial progress = %v", tk.Progress())
	}
	// Jump to the end.
	target, _, _ := tk.SelectTarget(geom.V(30, 0, 2))
	_, _, done := tk.TrackTo(target, geom.V(30, 0, 2), 0.1, nil)
	if !done {
		t.Error("not done at the terminal way-point")
	}
	if tk.Progress() < 0.99 {
		t.Errorf("progress = %v", tk.Progress())
	}
}
