package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"mavfi/internal/qof"
)

func TestPanicIsolation(t *testing.T) {
	// Missions 3 and 7 panic; the campaign must complete with every other
	// mission's result intact and the panics reported with stacks.
	base := synthMission(11)
	mission := func(i int) qof.Metrics {
		if i == 3 || i == 7 {
			panic("mission blew up")
		}
		return base(i)
	}
	out, err := New(WithWorkers(4)).Run(context.Background(), "panicky", 16, mission)
	if err != nil {
		t.Fatal(err)
	}
	if out.Campaign.N() != 16 {
		t.Fatalf("campaign recorded %d missions, want all 16", out.Campaign.N())
	}
	if n := out.Campaign.CountOutcome(qof.Panicked); n != 2 {
		t.Fatalf("%d panicked outcomes, want 2", n)
	}
	if len(out.Panics) != 2 || out.Panics[0].Index != 3 || out.Panics[1].Index != 7 {
		t.Fatalf("panic reports %+v, want indices 3 and 7 in order", out.Panics)
	}
	for _, p := range out.Panics {
		if p.Value != "mission blew up" {
			t.Errorf("panic value %q", p.Value)
		}
		if !strings.Contains(p.Stack, "hardening_test.go") {
			t.Errorf("panic stack does not point at the panicking mission:\n%s", p.Stack)
		}
	}
	// The healthy missions' metrics must match an undisturbed run.
	ref, _ := New(WithWorkers(1)).Run(context.Background(), "ref", 16, base)
	for i := range out.Campaign.Results {
		if i == 3 || i == 7 {
			continue
		}
		if out.Campaign.Results[i] != ref.Campaign.Results[i] {
			t.Fatalf("mission %d result perturbed by sibling panics", i)
		}
	}
}

func TestMissionDeadline(t *testing.T) {
	base := synthMission(13)
	block := make(chan struct{})
	defer close(block)
	mission := func(i int) qof.Metrics {
		if i == 2 {
			<-block // hangs far past the deadline
		}
		return base(i)
	}
	out, err := New(WithWorkers(4), WithMissionDeadline(50*time.Millisecond)).
		Run(context.Background(), "deadlined", 8, mission)
	if err != nil {
		t.Fatal(err)
	}
	if out.Campaign.N() != 8 {
		t.Fatalf("campaign recorded %d missions, want all 8", out.Campaign.N())
	}
	if got := out.Campaign.Results[2].Outcome; got != qof.DeadlineExceeded {
		t.Fatalf("hung mission outcome %v, want deadline-exceeded", got)
	}
	for i, m := range out.Campaign.Results {
		if i != 2 && m.Outcome == qof.DeadlineExceeded {
			t.Errorf("fast mission %d hit the deadline", i)
		}
	}
}

func TestDeadlinePanicStillIsolated(t *testing.T) {
	// A panic inside a deadline-guarded goroutine must surface as a Panicked
	// outcome, not kill the process.
	mission := func(i int) qof.Metrics {
		if i == 1 {
			panic("guarded panic")
		}
		return synthMission(17)(i)
	}
	out, err := New(WithWorkers(2), WithMissionDeadline(5*time.Second)).
		Run(context.Background(), "guarded", 4, mission)
	if err != nil {
		t.Fatal(err)
	}
	if n := out.Campaign.CountOutcome(qof.Panicked); n != 1 {
		t.Fatalf("%d panicked outcomes, want 1", n)
	}
	if len(out.Panics) != 1 || out.Panics[0].Index != 1 {
		t.Fatalf("panic reports %+v", out.Panics)
	}
}

func TestNoDeadlineMatchesDirectCall(t *testing.T) {
	// Without a deadline the runner must call missions inline — bit-identical
	// aggregates to the pre-hardening engine.
	base := synthMission(19)
	a, _ := New(WithWorkers(3)).Run(context.Background(), "a", 32, base)
	b, _ := New(WithWorkers(3), WithMissionDeadline(0)).Run(context.Background(), "b", 32, base)
	for i := range a.Campaign.Results {
		if a.Campaign.Results[i] != b.Campaign.Results[i] {
			t.Fatalf("mission %d differs with a zero deadline", i)
		}
	}
}
