package campaign

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mavfi/internal/qof"
)

// synthMission is a deterministic pure function of the mission index: it
// derives every field from MissionSeed(seed, i), standing in for a real
// pipeline.RunMission in engine-level tests.
func synthMission(seed int64) Mission {
	return func(i int) qof.Metrics {
		rng := rand.New(rand.NewSource(MissionSeed(seed, i)))
		m := qof.Metrics{
			FlightTimeS: 60 + rng.Float64()*120,
			EnergyJ:     1e4 + rng.Float64()*1e4,
			DistanceM:   100 + rng.Float64()*50,
			ComputeS:    1 + rng.Float64(),
			DetectS:     rng.Float64() * 0.01,
		}
		if rng.Float64() < 0.2 {
			m.Outcome = qof.Crash
		}
		return m
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	const n = 64
	var ref *qof.Campaign
	for _, workers := range []int{1, 2, 8} {
		r := New(WithWorkers(workers))
		out, err := r.Run(context.Background(), "det", n, synthMission(7))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if out.Campaign.N() != n {
			t.Fatalf("workers=%d: %d results", workers, out.Campaign.N())
		}
		if ref == nil {
			ref = out.Campaign
			continue
		}
		if !reflect.DeepEqual(ref.Results, out.Campaign.Results) {
			t.Errorf("workers=%d: results differ from 1-worker run", workers)
		}
		if ref.SuccessRate() != out.Campaign.SuccessRate() {
			t.Errorf("workers=%d: success rate %v != %v", workers,
				out.Campaign.SuccessRate(), ref.SuccessRate())
		}
		if !reflect.DeepEqual(ref.FlightTimeSummary(), out.Campaign.FlightTimeSummary()) {
			t.Errorf("workers=%d: flight-time summary differs", workers)
		}
	}
}

func TestOutcomeWelfordMatchesCampaign(t *testing.T) {
	r := New(WithWorkers(4))
	out, err := r.Run(context.Background(), "wf", 50, synthMission(3))
	if err != nil {
		t.Fatal(err)
	}
	times := out.Campaign.FlightTimes()
	if out.FlightTime.N() != len(times) {
		t.Fatalf("welford n=%d, campaign successes=%d", out.FlightTime.N(), len(times))
	}
	sum := 0.0
	for _, x := range times {
		sum += x
	}
	mean := sum / float64(len(times))
	if math.Abs(out.FlightTime.Mean()-mean) > 1e-9 {
		t.Errorf("merged welford mean %v, campaign mean %v", out.FlightTime.Mean(), mean)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := New(WithWorkers(2))
	var mu sync.Mutex
	started := 0
	out, err := r.Run(ctx, "cancel", 10_000, func(i int) qof.Metrics {
		mu.Lock()
		started++
		if started == 8 {
			cancel()
		}
		mu.Unlock()
		return qof.Metrics{FlightTimeS: float64(i)}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := out.Campaign.N(); n == 0 || n >= 10_000 {
		t.Fatalf("partial campaign has %d results", n)
	}
	// The contiguous-prefix invariant: Results[i] is mission i.
	for i, m := range out.Campaign.Results {
		if m.FlightTimeS != float64(i) {
			t.Fatalf("result %d holds mission %v", i, m.FlightTimeS)
		}
	}
	// The online statistics agree with the truncated campaign, not with
	// whatever the shards completed past the prefix.
	if out.FlightTime.N() != len(out.Campaign.FlightTimes()) {
		t.Errorf("welford n=%d, campaign successes=%d",
			out.FlightTime.N(), len(out.Campaign.FlightTimes()))
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 137
	hits := make([]int, n)
	r := New(WithWorkers(8))
	if err := r.ForEach(context.Background(), n, func(i int) { hits[i]++ }); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestProgressHook(t *testing.T) {
	var mu sync.Mutex
	calls, last := 0, 0
	r := New(WithWorkers(3), WithProgress(func(done, total int) {
		mu.Lock()
		calls++
		if done > last {
			last = done
		}
		if total != 20 {
			t.Errorf("total = %d", total)
		}
		mu.Unlock()
	}))
	if _, err := r.Run(context.Background(), "p", 20, synthMission(1)); err != nil {
		t.Fatal(err)
	}
	if calls != 20 || last != 20 {
		t.Errorf("progress calls=%d last=%d", calls, last)
	}
}

func TestWorkerResolution(t *testing.T) {
	if w := New(WithWorkers(5)).Workers(); w != 5 {
		t.Errorf("explicit workers = %d", w)
	}
	t.Setenv(EnvWorkers, "3")
	if w := New().Workers(); w != 3 {
		t.Errorf("env workers = %d", w)
	}
	// Zero/negative options and garbage env values fall back to defaults.
	if w := New(WithWorkers(0)).Workers(); w != 3 {
		t.Errorf("zero option workers = %d", w)
	}
	t.Setenv(EnvWorkers, "banana")
	if w := New().Workers(); w < 1 {
		t.Errorf("garbage env workers = %d", w)
	}
}

func TestMissionSeed(t *testing.T) {
	seen := map[int64]bool{}
	for _, campaign := range []int64{0, 1, -5, 1 << 40} {
		for i := 0; i < 1000; i++ {
			s := MissionSeed(campaign, i)
			if seen[s] {
				t.Fatalf("seed collision at campaign=%d i=%d", campaign, i)
			}
			seen[s] = true
			if s != MissionSeed(campaign, i) {
				t.Fatal("MissionSeed not stable")
			}
		}
	}
}
