// Package matrix is the deterministic campaign-matrix runner: it sweeps the
// full cross product of (world × fault family × severity × detector ×
// recovery) cells through one hardened campaign.Runner pool and aggregates
// per-cell campaigns, a Table-I-style summary, and per-cell CSV exports.
//
// Determinism is the package's contract. Every cell derives its own seed
// from the matrix seed and the cell's identity — campaign.MissionSeed over
// an FNV-64a hash of the canonical cell name — so a cell's seed is stable
// under re-ordering or pruning of the axes (dropping a family never
// reshuffles the remaining cells' schedules). Every mission derives its
// seed from the cell seed the same way, and every cell's fault schedule is
// drawn up front
// from a cell-seeded plan RNG (one faultinject.DrawFault per mission, in
// mission order — the faultinject RNG contract). Mission results are then
// pure functions of the flat mission index, so the whole matrix — and the
// CSV files rendered from it — is byte-identical at any worker width (the
// `make matrix-smoke` CI gate). Wall-clock deadlines (Spec.Deadline) are the
// one escape hatch: they trade that invariant for runaway protection, so
// the smoke gate runs without one.
//
// The package lives under internal/campaign (not inside it) because
// internal/pipeline imports the campaign engine for training collection;
// the matrix layer sits above both.
package matrix

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mavfi/internal/campaign"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
	"mavfi/internal/record"
)

// Severity is one named magnitude level of the sweep's severity axis; Scale
// feeds faultinject.DrawSpec.Severity.
type Severity struct {
	Name  string
	Scale float64
}

// severityLevels are the named levels ParseSeverities accepts.
var severityLevels = map[string]float64{
	"low":  0.35,
	"med":  0.6,
	"high": 1.0,
}

// DefaultSeverities is the default severity axis.
func DefaultSeverities() []Severity {
	return []Severity{{Name: "low", Scale: 0.35}, {Name: "high", Scale: 1.0}}
}

// ParseSeverities parses a comma-separated severity axis: named levels
// ("low", "med", "high") or explicit "name=scale" pairs.
func ParseSeverities(s string) ([]Severity, error) {
	var out []Severity
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, val, ok := strings.Cut(part, "="); ok {
			scale, err := strconv.ParseFloat(val, 64)
			// !(scale > 0) also rejects NaN; infinities parse cleanly but
			// poison every downstream magnitude, so they are refused too.
			if err != nil || name == "" || !(scale > 0) || math.IsInf(scale, 0) {
				return nil, fmt.Errorf("matrix: bad severity %q (want name=positive-finite-scale)", part)
			}
			out = append(out, Severity{Name: name, Scale: scale})
			continue
		}
		scale, ok := severityLevels[part]
		if !ok {
			return nil, fmt.Errorf("matrix: unknown severity level %q (have low, med, high, or name=scale)", part)
		}
		out = append(out, Severity{Name: part, Scale: scale})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("matrix: empty severity list")
	}
	return out, nil
}

// Target is one coordinate of the fault axis: a family plus an optional
// mechanism ("kind") restriction — the matrix form of the
// faultinject.ParseTarget "family[:kind]" syntax. A kindless target sweeps
// the whole family, which is the classic Families axis; a kinded target
// ("sensor:ray_dropout") pins every drawn plan to that one mechanism without
// changing the RNG schedule (the faultinject draw-count contract).
type Target struct {
	// Family is the fault family.
	Family faultinject.Family
	// Kind restricts the family to one mechanism ("" = unrestricted). The
	// accepted names are the family's canonical kind names (and the kernel
	// flag names for FamilyKernel), as in faultinject.ParseTarget.
	Kind string
}

// String renders the canonical "family[:kind]" form.
func (t Target) String() string {
	if t.Kind == "" {
		return t.Family.String()
	}
	return t.Family.String() + ":" + t.Kind
}

// ParseTargets parses a comma-separated fault axis where every entry is a
// "family[:kind]" target ("sensor,actuator:thrust_loss"), or "all" for every
// family unrestricted — the superset of ParseFamilies the CLIs and the
// campaign server accept.
func ParseTargets(s string) ([]Target, error) {
	if strings.TrimSpace(s) == "all" {
		var out []Target
		for _, f := range faultinject.Families() {
			out = append(out, Target{Family: f})
		}
		return out, nil
	}
	var out []Target
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fam, _, err := faultinject.ParseTarget(part)
		if err != nil {
			return nil, fmt.Errorf("matrix: %w", err)
		}
		_, kind, _ := strings.Cut(part, ":")
		out = append(out, Target{Family: fam, Kind: kind})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("matrix: empty fault-target list")
	}
	return out, nil
}

// ParseFamilies parses a comma-separated fault-family axis ("kernel,state,
// sensor,actuator,wind", or "all").
func ParseFamilies(s string) ([]faultinject.Family, error) {
	if strings.TrimSpace(s) == "all" {
		return faultinject.Families(), nil
	}
	var out []faultinject.Family
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, ok := faultinject.ParseFamily(part)
		if !ok || f == faultinject.FamilyNone {
			return nil, fmt.Errorf("matrix: unknown fault family %q", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("matrix: empty family list")
	}
	return out, nil
}

// World builds one of the named standard environments with the same fixed
// generator seed every CLI uses, so matrix cells, single campaigns, and
// recordings are all comparable.
func World(name string) (*env.World, error) {
	rng := rand.New(rand.NewSource(1))
	switch name {
	case "factory":
		return env.Factory(), nil
	case "farm":
		return env.Farm(), nil
	case "sparse":
		return env.Sparse(rng), nil
	case "dense":
		return env.Dense(rng), nil
	default:
		return nil, fmt.Errorf("matrix: unknown env %q", name)
	}
}

// Spec describes one campaign matrix. Zero-valued axes fall back to the
// defaults documented per field.
type Spec struct {
	// Worlds are environment names for World (default ["sparse"]).
	Worlds []string
	// Families is the fault-family axis (default all five). Targets, when
	// non-empty, supersedes it.
	Families []faultinject.Family
	// Targets is the fault axis with optional per-mechanism restrictions;
	// when empty it derives from Families (kindless targets).
	Targets []Target
	// Severities is the severity axis (default DefaultSeverities).
	Severities []Severity
	// Detectors are detector names: "none", "gad", "aad" (default ["none"]).
	Detectors []string
	// Recoveries is the recovery axis for detector-bearing cells (default
	// [true]); "none" cells always collapse to a single recovery-less entry.
	Recoveries []bool
	// MapSeed selects the golden-map mode: "off" (default; every mission
	// builds its octree from scratch, bit-identical to all prior PRs),
	// "seed" (approximate mode: one deterministic golden map per world,
	// built before the fan-out and forked at each mission start), or
	// "memo" ("seed" plus saturated-evidence memoization: rays whose
	// endpoint evidence is already clamped skip integration entirely —
	// the headline approximate mode). The mode is deliberately NOT part
	// of Cell.Name: flipping it never reshuffles cell seeds or fault
	// schedules, so exact and seeded runs of one spec are the same
	// missions on different starting maps — which is what the fidelity
	// study compares.
	MapSeed string
	// NearFieldStride, when > 1, forwards pipeline.Config.NearFieldStride
	// to every mission (approximate mode: near-field ray subsampling).
	NearFieldStride int
	// Runs is the number of missions per cell (default 4).
	Runs int
	// Seed is the matrix seed every cell and mission seed derives from.
	Seed int64
	// MaxMissionS overrides the mission time budget (0 = pipeline default).
	MaxMissionS float64
	// TrainEnvs is the training-environment count when a detector axis
	// includes gad/aad (default 12).
	TrainEnvs int
	// Workers sizes the worker pool (0 = campaign.DefaultWorkers).
	Workers int
	// Deadline, when positive, bounds each mission's wall-clock time
	// (campaign.WithMissionDeadline) — robustness at the cost of the
	// byte-identity invariant.
	Deadline time.Duration
	// Progress, when non-nil, receives mission completion counts.
	Progress func(done, total int)
	// OnMission, when non-nil, receives every mission result the moment it
	// is final (campaign.WithResultHook semantics: completion order, not
	// mission order, possibly concurrently from several workers; i is the
	// flat mission index, cell i/Runs mission i%Runs). This is the streaming
	// surface the campaign server pushes per-mission results through.
	OnMission func(i int, m qof.Metrics)
	// RecordDir, when set, persists every mission as a replayable recording
	// under it (record.MissionPath over the flat mission index, the layout
	// record.ScanDir recovers). Recording failures never fail missions; the
	// first one is reported in Result.RecordErr.
	RecordDir string
}

// Normalized returns the spec with every zero-valued axis replaced by its
// documented default — the exact spec Run executes and stores in Result.Spec.
// The sharded dispatcher normalizes once up front so the dispatcher, its
// workers, and the sequential reference all enumerate identical cells.
func (s Spec) Normalized() Spec { return s.normalized() }

func (s Spec) normalized() Spec {
	if len(s.Worlds) == 0 {
		s.Worlds = []string{"sparse"}
	}
	if len(s.Families) == 0 {
		s.Families = faultinject.Families()
	}
	if len(s.Targets) == 0 {
		for _, f := range s.Families {
			s.Targets = append(s.Targets, Target{Family: f})
		}
	}
	if len(s.Severities) == 0 {
		s.Severities = DefaultSeverities()
	}
	if len(s.Detectors) == 0 {
		s.Detectors = []string{"none"}
	}
	if len(s.Recoveries) == 0 {
		s.Recoveries = []bool{true}
	}
	if s.MapSeed == "" {
		s.MapSeed = "off"
	}
	if s.Runs <= 0 {
		s.Runs = 4
	}
	if s.TrainEnvs <= 0 {
		s.TrainEnvs = 12
	}
	return s
}

// Cell identifies one matrix cell: the coordinates on every axis plus the
// derived cell seed.
type Cell struct {
	// Index is the cell's position in the fixed enumeration order.
	Index int
	// World, Family, Severity, Detector, Recovery are the axis coordinates.
	World    string
	Family   faultinject.Family
	Severity Severity
	Detector string
	Recovery bool
	// Kind is the optional mechanism restriction of the cell's fault target
	// ("" = whole family). Kinded cells render "family:kind" in Name, so
	// their seeds are distinct from (and never perturb) kindless cells.
	Kind string
	// Seed is campaign.MissionSeed(matrixSeed, fnv64a(Name())): the root of
	// the cell's plan RNG and its per-mission seeds, a function of the
	// cell's identity rather than its position in the enumeration.
	Seed int64
}

// Target returns the cell's fault-axis coordinate.
func (c Cell) Target() Target { return Target{Family: c.Family, Kind: c.Kind} }

// Name renders the cell's canonical identifier, also used in CSV filenames.
// The cell seed is an FNV-64a hash of this name, so the rendering is part of
// the seed-stability contract: kindless cells render exactly as they did
// before targets existed.
func (c Cell) Name() string {
	rec := "norec"
	if c.Recovery {
		rec = "rec"
	}
	return fmt.Sprintf("%s-%s-%s-%s-%s", c.World, c.Target(), c.Severity.Name, c.Detector, rec)
}

// drawSpec builds the cell's DrawFault parameterization: the open family
// spec at the cell's severity over the world's nominal duration, restricted
// to the cell's kind when one is set.
func (c Cell) drawSpec(nominalS float64) (faultinject.DrawSpec, error) {
	spec := faultinject.NewDrawSpec(nominalS, c.Severity.Scale)
	if c.Kind == "" {
		return spec, nil
	}
	_, restricted, err := faultinject.ParseTarget(c.Target().String())
	if err != nil {
		return spec, fmt.Errorf("matrix: cell %s: %w", c.Name(), err)
	}
	spec.Kernel = restricted.Kernel
	spec.State = restricted.State
	spec.SensorKind = restricted.SensorKind
	spec.ActuatorKind = restricted.ActuatorKind
	return spec, nil
}

// CellResult is one cell's aggregate: its campaign plus the fault plans its
// missions flew (plan j belongs to mission j).
type CellResult struct {
	Cell     Cell
	Campaign *qof.Campaign
	Plans    []faultinject.FaultPlan
}

// Result is one completed (or cancelled) matrix run.
type Result struct {
	// Spec is the normalized specification the matrix ran under.
	Spec Spec
	// Cells holds one entry per cell in enumeration order; on cancellation
	// trailing cells may hold partial or empty campaigns.
	Cells []CellResult
	// Panics lists isolated mission panics (flat mission index i maps to
	// cell i/Runs, mission i%Runs). Empty on a healthy run.
	Panics []campaign.MissionPanic
	// RecordErr is the first recording failure when Spec.RecordDir was set
	// (nil otherwise, and nil on a fully recorded run). Recording failures
	// never abort missions, so the Result is complete even when set.
	RecordErr error
}

// enumerate builds the fixed cell grid: world-major, then fault target,
// severity, detector, and recovery — the enumeration order cell seeds are
// defined over. Changing this order is a breaking change to every matrix
// seed.
func enumerate(spec Spec) []Cell {
	var cells []Cell
	for _, w := range spec.Worlds {
		for _, tg := range spec.Targets {
			for _, sev := range spec.Severities {
				for _, det := range spec.Detectors {
					recs := spec.Recoveries
					if det == "none" {
						// No detector means no recovery axis: one cell.
						recs = []bool{false}
					}
					for _, rec := range recs {
						c := Cell{
							Index:    len(cells),
							World:    w,
							Family:   tg.Family,
							Kind:     tg.Kind,
							Severity: sev,
							Detector: det,
							Recovery: rec,
						}
						h := fnv.New64a()
						h.Write([]byte(c.Name()))
						c.Seed = campaign.MissionSeed(spec.Seed, int(h.Sum64()>>1))
						cells = append(cells, c)
					}
				}
			}
		}
	}
	return cells
}

// Cells returns the spec's cell grid in enumeration order without running
// anything — how the campaign server derives a job's cell identity (name,
// seed, CSV filename) at submission time and during restart recovery.
func Cells(spec Spec) []Cell {
	return enumerate(spec.normalized())
}

// Run executes the matrix. Cells share one flat hardened worker pool (the
// pool never idles at cell boundaries), detectors are trained once and
// cloned per mission, and kernel-family cells calibrate dynamic-value counts
// with one golden run per world before the sweep starts.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	return RunOn(ctx, spec, NewAssets())
}

// RunOn is Run against a caller-owned warm-asset cache: a long-running
// campaign server passes one Assets so worlds, calibration counters, and
// trained detectors are built once and shared across jobs. Results are
// bit-identical to a cold Run because every cached asset is a deterministic
// pure function of its key and is either immutable (worlds, counters) or
// cloned per mission (detectors) — this is the code path both the `mavfi
// matrix` CLI and the campaign server execute, which is what makes the
// served-equals-CLI byte-identity invariant testable.
func RunOn(ctx context.Context, spec Spec, assets *Assets) (*Result, error) {
	spec = spec.normalized()
	cells := enumerate(spec)
	if assets == nil {
		assets = NewAssets()
	}
	switch spec.MapSeed {
	case "off", "seed", "memo":
	default:
		return nil, fmt.Errorf("matrix: unknown map-seed mode %q (have off, seed, memo)", spec.MapSeed)
	}
	if spec.NearFieldStride < 0 {
		return nil, fmt.Errorf("matrix: negative near-field stride %d", spec.NearFieldStride)
	}

	worlds := make(map[string]*env.World, len(spec.Worlds))
	seeds := make(map[string]*pipeline.MapSeed, len(spec.Worlds))
	for _, name := range spec.Worlds {
		if _, ok := worlds[name]; ok {
			continue
		}
		w, err := assets.World(name)
		if err != nil {
			return nil, err
		}
		worlds[name] = w
		if spec.MapSeed != "off" {
			// Golden maps are built (or loaded from the asset cache)
			// sequentially before the fan-out: every worker forks the same
			// immutable snapshot, so worker width stays unobservable.
			s, err := assets.MapSeed(name)
			if err != nil {
				return nil, err
			}
			seeds[name] = s
		}
	}

	needKernel := false
	for _, tg := range spec.Targets {
		needKernel = needKernel || tg.Family == faultinject.FamilyKernel
	}
	// Per-world calibration (kernel family only) and nominal durations, both
	// sequential and mission-independent.
	counters := make(map[string]*faultinject.Counter, len(worlds))
	nominal := make(map[string]float64, len(worlds))
	for name, w := range worlds {
		nominal[name] = pipeline.NominalDuration(pipeline.Config{World: w, MaxMissionS: spec.MaxMissionS})
		if needKernel {
			ctr, err := assets.Counter(name, spec.Seed, spec.MaxMissionS)
			if err != nil {
				return nil, err
			}
			counters[name] = ctr
		}
	}

	opts := []campaign.Option{
		campaign.WithWorkers(spec.Workers),
		campaign.WithMissionDeadline(spec.Deadline),
		campaign.WithProgress(spec.Progress),
	}
	if spec.OnMission != nil {
		opts = append(opts, campaign.WithResultHook(spec.OnMission))
	}
	runner := campaign.New(opts...)
	factories, err := assets.detectorFactories(ctx, runner, spec)
	if err != nil {
		return nil, err
	}

	// Draw every cell's fault schedule up front: one plan RNG per cell
	// (seeded by the cell seed), one DrawFault per mission in mission order.
	plans := make([][]faultinject.FaultPlan, len(cells))
	for ci, cell := range cells {
		planRNG := rand.New(rand.NewSource(cell.Seed))
		drawSpec, err := cell.drawSpec(nominal[cell.World])
		if err != nil {
			return nil, err
		}
		cellPlans := make([]faultinject.FaultPlan, spec.Runs)
		for j := range cellPlans {
			cellPlans[j] = faultinject.DrawFault(cell.Family, drawSpec, counters[cell.World], planRNG)
		}
		plans[ci] = cellPlans
	}

	if spec.RecordDir != "" {
		if err := os.MkdirAll(spec.RecordDir, 0o755); err != nil {
			return nil, err
		}
	}
	var recMu sync.Mutex
	var recErr error

	total := len(cells) * spec.Runs
	out, runErr := runner.Run(ctx, "matrix", total, func(i int) qof.Metrics {
		ci, j := i/spec.Runs, i%spec.Runs
		cell := cells[ci]
		cfg := pipeline.Config{
			World:           worlds[cell.World],
			Seed:            campaign.MissionSeed(cell.Seed, j),
			MaxMissionS:     spec.MaxMissionS,
			MapSeed:         seeds[cell.World], // nil in "off" mode
			NearFieldStride: spec.NearFieldStride,
			MemoSkip:        spec.MapSeed == "memo",
		}
		cfg.SetFault(plans[ci][j])
		if mk := factories[cell.Detector]; mk != nil {
			cfg.Detector = mk()
			cfg.DetectOnly = !cell.Recovery
		}
		if spec.RecordDir == "" {
			return pipeline.RunMission(cfg).Metrics
		}
		res, rerr := record.RecordedMission(spec.RecordDir, i, cfg)
		if rerr != nil {
			recMu.Lock()
			if recErr == nil {
				recErr = fmt.Errorf("matrix: recording mission %d: %w", i, rerr)
			}
			recMu.Unlock()
		}
		return res.Metrics
	})

	res := &Result{Spec: spec, Panics: out.Panics, RecordErr: recErr}
	for ci, cell := range cells {
		camp := &qof.Campaign{Name: cell.Name()}
		lo, hi := ci*spec.Runs, (ci+1)*spec.Runs
		if lo > len(out.Campaign.Results) {
			lo = len(out.Campaign.Results)
		}
		if hi > len(out.Campaign.Results) {
			hi = len(out.Campaign.Results)
		}
		camp.Results = append(camp.Results, out.Campaign.Results[lo:hi]...)
		res.Cells = append(res.Cells, CellResult{Cell: cell, Campaign: camp, Plans: plans[ci]})
	}
	return res, runErr
}
