// Package matrix is the deterministic campaign-matrix runner: it sweeps the
// full cross product of (world × fault family × severity × detector ×
// recovery) cells through one hardened campaign.Runner pool and aggregates
// per-cell campaigns, a Table-I-style summary, and per-cell CSV exports.
//
// Determinism is the package's contract. Every cell derives its own seed
// from the matrix seed and the cell's identity — campaign.MissionSeed over
// an FNV-64a hash of the canonical cell name — so a cell's seed is stable
// under re-ordering or pruning of the axes (dropping a family never
// reshuffles the remaining cells' schedules). Every mission derives its
// seed from the cell seed the same way, and every cell's fault schedule is
// drawn up front
// from a cell-seeded plan RNG (one faultinject.DrawFault per mission, in
// mission order — the faultinject RNG contract). Mission results are then
// pure functions of the flat mission index, so the whole matrix — and the
// CSV files rendered from it — is byte-identical at any worker width (the
// `make matrix-smoke` CI gate). Wall-clock deadlines (Spec.Deadline) are the
// one escape hatch: they trade that invariant for runaway protection, so
// the smoke gate runs without one.
//
// The package lives under internal/campaign (not inside it) because
// internal/pipeline imports the campaign engine for training collection;
// the matrix layer sits above both.
package matrix

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"mavfi/internal/campaign"
	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
)

// Severity is one named magnitude level of the sweep's severity axis; Scale
// feeds faultinject.DrawSpec.Severity.
type Severity struct {
	Name  string
	Scale float64
}

// severityLevels are the named levels ParseSeverities accepts.
var severityLevels = map[string]float64{
	"low":  0.35,
	"med":  0.6,
	"high": 1.0,
}

// DefaultSeverities is the default severity axis.
func DefaultSeverities() []Severity {
	return []Severity{{Name: "low", Scale: 0.35}, {Name: "high", Scale: 1.0}}
}

// ParseSeverities parses a comma-separated severity axis: named levels
// ("low", "med", "high") or explicit "name=scale" pairs.
func ParseSeverities(s string) ([]Severity, error) {
	var out []Severity
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, val, ok := strings.Cut(part, "="); ok {
			scale, err := strconv.ParseFloat(val, 64)
			if err != nil || scale <= 0 {
				return nil, fmt.Errorf("matrix: bad severity %q (want name=positive-scale)", part)
			}
			out = append(out, Severity{Name: name, Scale: scale})
			continue
		}
		scale, ok := severityLevels[part]
		if !ok {
			return nil, fmt.Errorf("matrix: unknown severity level %q (have low, med, high, or name=scale)", part)
		}
		out = append(out, Severity{Name: part, Scale: scale})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("matrix: empty severity list")
	}
	return out, nil
}

// ParseFamilies parses a comma-separated fault-family axis ("kernel,state,
// sensor,actuator,wind", or "all").
func ParseFamilies(s string) ([]faultinject.Family, error) {
	if strings.TrimSpace(s) == "all" {
		return faultinject.Families(), nil
	}
	var out []faultinject.Family
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, ok := faultinject.ParseFamily(part)
		if !ok || f == faultinject.FamilyNone {
			return nil, fmt.Errorf("matrix: unknown fault family %q", part)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("matrix: empty family list")
	}
	return out, nil
}

// World builds one of the named standard environments with the same fixed
// generator seed every CLI uses, so matrix cells, single campaigns, and
// recordings are all comparable.
func World(name string) (*env.World, error) {
	rng := rand.New(rand.NewSource(1))
	switch name {
	case "factory":
		return env.Factory(), nil
	case "farm":
		return env.Farm(), nil
	case "sparse":
		return env.Sparse(rng), nil
	case "dense":
		return env.Dense(rng), nil
	default:
		return nil, fmt.Errorf("matrix: unknown env %q", name)
	}
}

// Spec describes one campaign matrix. Zero-valued axes fall back to the
// defaults documented per field.
type Spec struct {
	// Worlds are environment names for World (default ["sparse"]).
	Worlds []string
	// Families is the fault-family axis (default all five).
	Families []faultinject.Family
	// Severities is the severity axis (default DefaultSeverities).
	Severities []Severity
	// Detectors are detector names: "none", "gad", "aad" (default ["none"]).
	Detectors []string
	// Recoveries is the recovery axis for detector-bearing cells (default
	// [true]); "none" cells always collapse to a single recovery-less entry.
	Recoveries []bool
	// Runs is the number of missions per cell (default 4).
	Runs int
	// Seed is the matrix seed every cell and mission seed derives from.
	Seed int64
	// MaxMissionS overrides the mission time budget (0 = pipeline default).
	MaxMissionS float64
	// TrainEnvs is the training-environment count when a detector axis
	// includes gad/aad (default 12).
	TrainEnvs int
	// Workers sizes the worker pool (0 = campaign.DefaultWorkers).
	Workers int
	// Deadline, when positive, bounds each mission's wall-clock time
	// (campaign.WithMissionDeadline) — robustness at the cost of the
	// byte-identity invariant.
	Deadline time.Duration
	// Progress, when non-nil, receives mission completion counts.
	Progress func(done, total int)
}

func (s Spec) normalized() Spec {
	if len(s.Worlds) == 0 {
		s.Worlds = []string{"sparse"}
	}
	if len(s.Families) == 0 {
		s.Families = faultinject.Families()
	}
	if len(s.Severities) == 0 {
		s.Severities = DefaultSeverities()
	}
	if len(s.Detectors) == 0 {
		s.Detectors = []string{"none"}
	}
	if len(s.Recoveries) == 0 {
		s.Recoveries = []bool{true}
	}
	if s.Runs <= 0 {
		s.Runs = 4
	}
	if s.TrainEnvs <= 0 {
		s.TrainEnvs = 12
	}
	return s
}

// Cell identifies one matrix cell: the coordinates on every axis plus the
// derived cell seed.
type Cell struct {
	// Index is the cell's position in the fixed enumeration order.
	Index int
	// World, Family, Severity, Detector, Recovery are the axis coordinates.
	World    string
	Family   faultinject.Family
	Severity Severity
	Detector string
	Recovery bool
	// Seed is campaign.MissionSeed(matrixSeed, fnv64a(Name())): the root of
	// the cell's plan RNG and its per-mission seeds, a function of the
	// cell's identity rather than its position in the enumeration.
	Seed int64
}

// Name renders the cell's canonical identifier, also used in CSV filenames.
func (c Cell) Name() string {
	rec := "norec"
	if c.Recovery {
		rec = "rec"
	}
	return fmt.Sprintf("%s-%s-%s-%s-%s", c.World, c.Family, c.Severity.Name, c.Detector, rec)
}

// CellResult is one cell's aggregate: its campaign plus the fault plans its
// missions flew (plan j belongs to mission j).
type CellResult struct {
	Cell     Cell
	Campaign *qof.Campaign
	Plans    []faultinject.FaultPlan
}

// Result is one completed (or cancelled) matrix run.
type Result struct {
	// Spec is the normalized specification the matrix ran under.
	Spec Spec
	// Cells holds one entry per cell in enumeration order; on cancellation
	// trailing cells may hold partial or empty campaigns.
	Cells []CellResult
	// Panics lists isolated mission panics (flat mission index i maps to
	// cell i/Runs, mission i%Runs). Empty on a healthy run.
	Panics []campaign.MissionPanic
}

// enumerate builds the fixed cell grid: world-major, then family, severity,
// detector, and recovery — the enumeration order cell seeds are defined
// over. Changing this order is a breaking change to every matrix seed.
func enumerate(spec Spec) []Cell {
	var cells []Cell
	for _, w := range spec.Worlds {
		for _, f := range spec.Families {
			for _, sev := range spec.Severities {
				for _, det := range spec.Detectors {
					recs := spec.Recoveries
					if det == "none" {
						// No detector means no recovery axis: one cell.
						recs = []bool{false}
					}
					for _, rec := range recs {
						c := Cell{
							Index:    len(cells),
							World:    w,
							Family:   f,
							Severity: sev,
							Detector: det,
							Recovery: rec,
						}
						h := fnv.New64a()
						h.Write([]byte(c.Name()))
						c.Seed = campaign.MissionSeed(spec.Seed, int(h.Sum64()>>1))
						cells = append(cells, c)
					}
				}
			}
		}
	}
	return cells
}

// Run executes the matrix. Cells share one flat hardened worker pool (the
// pool never idles at cell boundaries), detectors are trained once and
// cloned per mission, and kernel-family cells calibrate dynamic-value counts
// with one golden run per world before the sweep starts.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec = spec.normalized()
	cells := enumerate(spec)

	worlds := make(map[string]*env.World, len(spec.Worlds))
	for _, name := range spec.Worlds {
		if _, ok := worlds[name]; ok {
			continue
		}
		w, err := World(name)
		if err != nil {
			return nil, err
		}
		worlds[name] = w
	}

	needKernel := false
	for _, f := range spec.Families {
		needKernel = needKernel || f == faultinject.FamilyKernel
	}
	// Per-world calibration (kernel family only) and nominal durations, both
	// sequential and mission-independent.
	counters := make(map[string]*faultinject.Counter, len(worlds))
	nominal := make(map[string]float64, len(worlds))
	for name, w := range worlds {
		nominal[name] = pipeline.NominalDuration(pipeline.Config{World: w, MaxMissionS: spec.MaxMissionS})
		if needKernel {
			ctr := faultinject.NewCounter()
			pipeline.RunMission(pipeline.Config{World: w, Seed: spec.Seed + 555, MaxMissionS: spec.MaxMissionS, Counter: ctr})
			counters[name] = ctr
		}
	}

	runner := campaign.New(
		campaign.WithWorkers(spec.Workers),
		campaign.WithMissionDeadline(spec.Deadline),
		campaign.WithProgress(spec.Progress),
	)
	factories, err := trainDetectors(ctx, runner, spec)
	if err != nil {
		return nil, err
	}

	// Draw every cell's fault schedule up front: one plan RNG per cell
	// (seeded by the cell seed), one DrawFault per mission in mission order.
	plans := make([][]faultinject.FaultPlan, len(cells))
	for ci, cell := range cells {
		planRNG := rand.New(rand.NewSource(cell.Seed))
		drawSpec := faultinject.NewDrawSpec(nominal[cell.World], cell.Severity.Scale)
		cellPlans := make([]faultinject.FaultPlan, spec.Runs)
		for j := range cellPlans {
			cellPlans[j] = faultinject.DrawFault(cell.Family, drawSpec, counters[cell.World], planRNG)
		}
		plans[ci] = cellPlans
	}

	total := len(cells) * spec.Runs
	out, runErr := runner.Run(ctx, "matrix", total, func(i int) qof.Metrics {
		ci, j := i/spec.Runs, i%spec.Runs
		cell := cells[ci]
		cfg := pipeline.Config{
			World:       worlds[cell.World],
			Seed:        campaign.MissionSeed(cell.Seed, j),
			MaxMissionS: spec.MaxMissionS,
		}
		cfg.SetFault(plans[ci][j])
		if mk := factories[cell.Detector]; mk != nil {
			cfg.Detector = mk()
			cfg.DetectOnly = !cell.Recovery
		}
		return pipeline.RunMission(cfg).Metrics
	})

	res := &Result{Spec: spec, Panics: out.Panics}
	for ci, cell := range cells {
		camp := &qof.Campaign{Name: cell.Name()}
		lo, hi := ci*spec.Runs, (ci+1)*spec.Runs
		if lo > len(out.Campaign.Results) {
			lo = len(out.Campaign.Results)
		}
		if hi > len(out.Campaign.Results) {
			hi = len(out.Campaign.Results)
		}
		camp.Results = append(camp.Results, out.Campaign.Results[lo:hi]...)
		res.Cells = append(res.Cells, CellResult{Cell: cell, Campaign: camp, Plans: plans[ci]})
	}
	return res, runErr
}

// trainDetectors builds the detector factories the spec's detector axis
// needs: nil for "none", clone-per-mission factories for gad/aad trained on
// one shared corpus (collected deterministically on the matrix pool, with
// the same seed offsets cmd/mavfi uses).
func trainDetectors(ctx context.Context, r *campaign.Runner, spec Spec) (map[string]func() detect.Detector, error) {
	factories := make(map[string]func() detect.Detector, len(spec.Detectors))
	var data [][detect.NumStates]float64
	for _, name := range spec.Detectors {
		if _, ok := factories[name]; ok {
			continue
		}
		switch name {
		case "none":
			factories[name] = nil
		case "gad", "aad":
			if data == nil {
				var err error
				data, err = pipeline.CollectTrainingDataOn(ctx, r, spec.TrainEnvs, spec.Seed+1000, platform.I9())
				if err != nil {
					return nil, fmt.Errorf("matrix: collecting training data: %w", err)
				}
			}
			if name == "gad" {
				gad := pipeline.TrainGAD(data, 4)
				factories[name] = func() detect.Detector { return gad.Clone() }
			} else {
				aad := pipeline.TrainAAD(data, detect.DefaultAADConfig(), spec.Seed+2000)
				factories[name] = func() detect.Detector { return aad.Clone() }
			}
		default:
			return nil, fmt.Errorf("matrix: unknown detector %q (have none, gad, aad)", name)
		}
	}
	return factories, nil
}
