package matrix

import (
	"math"
	"strings"
	"testing"

	"mavfi/internal/faultinject"
)

// FuzzParseTarget throws arbitrary strings at the fault-target grammar
// ("family[:kind]", comma-separated). The contract: no input panics, "all"
// always expands to the five kindless families, and every accepted entry
// round-trips — rendering the parsed Target and reparsing it yields the same
// Target, which is what keeps cell names (and therefore cell seeds) stable
// across the CLI and the campaign server.
//
// The corpus seeds every family bare plus one real kind per kinded family
// (the fixture combinations the kernels and sensors define), the "all"
// alias, and the malformed shapes the parser rejects.
func FuzzParseTarget(f *testing.F) {
	seeds := []string{
		"all", "kernel", "state", "sensor", "actuator", "wind",
		"kernel:planner", "kernel:pcgen", "kernel:octomap", "kernel:colcheck", "kernel:pid",
		"sensor,wind", "sensor:bogus", "wind:gust", "", ",", "sensor:", ":kind",
		"kernel:planner,state,wind",
	}
	// Real kind names straight from the fault zoo's enumerations.
	for st := faultinject.StateID(0); st < faultinject.NumInjectableStates; st++ {
		seeds = append(seeds, "state:"+st.String())
	}
	for k := faultinject.SensorFaultKind(0); k < faultinject.NumSensorFaultKinds; k++ {
		seeds = append(seeds, "sensor:"+k.String())
	}
	for k := faultinject.ActuatorFaultKind(0); k < faultinject.NumActuatorFaultKinds; k++ {
		seeds = append(seeds, "actuator:"+k.String())
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 4096 {
			t.Skip("oversized input")
		}
		targets, err := ParseTargets(s)
		if err != nil {
			return
		}
		if len(targets) == 0 {
			t.Fatalf("ParseTargets(%q) accepted with zero targets", s)
		}
		if s == "all" && len(targets) != 5 {
			t.Fatalf("all expanded to %d targets", len(targets))
		}
		for _, tg := range targets {
			if tg.Family == faultinject.FamilyNone {
				t.Fatalf("ParseTargets(%q) accepted FamilyNone", s)
			}
			// The canonical rendering must reparse to the same target: the
			// seed-stability contract for cell names.
			again, err := ParseTargets(tg.String())
			if err != nil {
				t.Fatalf("round-trip of %q failed: %v", tg, err)
			}
			if len(again) != 1 || again[0] != tg {
				t.Fatalf("round-trip of %q = %v", tg, again)
			}
			// The underlying grammar agrees with the matrix-level parse.
			fam, _, err := faultinject.ParseTarget(tg.String())
			if err != nil || fam != tg.Family {
				t.Fatalf("faultinject.ParseTarget(%q) = %v, %v; want family %v", tg, fam, err, tg.Family)
			}
		}
	})
}

// FuzzParseSeverities rides along on the severity grammar: no panic, and
// accepted severities carry finite non-negative scales and reparseable
// names.
func FuzzParseSeverities(f *testing.F) {
	for _, s := range []string{"low", "med", "high", "low,med,high", "extreme=1.5", "x=0.1", "", "bogus", "x=-1", "x=nope", "=", "a=1,b"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 4096 {
			t.Skip("oversized input")
		}
		sevs, err := ParseSeverities(s)
		if err != nil {
			return
		}
		if len(sevs) == 0 {
			t.Fatalf("ParseSeverities(%q) accepted with zero severities", s)
		}
		for _, sev := range sevs {
			if sev.Name == "" {
				t.Fatalf("ParseSeverities(%q) accepted an unnamed severity", s)
			}
			// !(x > 0) catches NaN as well as non-positive scales.
			if !(sev.Scale > 0) || math.IsInf(sev.Scale, 0) {
				t.Fatalf("ParseSeverities(%q) accepted scale %v", s, sev.Scale)
			}
			if strings.ContainsAny(sev.Name, ",=") {
				t.Fatalf("ParseSeverities(%q) kept separator in name %q", s, sev.Name)
			}
		}
	})
}
