package matrix

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mavfi/internal/faultinject"
	"mavfi/internal/qof"
)

func smallSpec(workers int) Spec {
	return Spec{
		Worlds:     []string{"sparse"},
		Families:   []faultinject.Family{faultinject.FamilySensor, faultinject.FamilyWind},
		Severities: []Severity{{Name: "high", Scale: 1.0}},
		Runs:       2,
		Seed:       1,
		Workers:    workers,
	}
}

func TestMatrixByteIdenticalAcrossWorkerWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	var refCells map[string]string
	var refSummary string
	for _, workers := range []int{1, 4} {
		res, err := Run(context.Background(), smallSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		cells := make(map[string]string, len(res.Cells))
		for i := range res.Cells {
			cr := &res.Cells[i]
			cells[cr.Cell.Name()] = cr.csv()
		}
		summary := res.summaryCSV()
		if refCells == nil {
			refCells, refSummary = cells, summary
			continue
		}
		if !reflect.DeepEqual(cells, refCells) {
			t.Errorf("per-cell CSVs differ between 1 and %d workers", workers)
		}
		if summary != refSummary {
			t.Errorf("summary CSV differs between 1 and %d workers", workers)
		}
	}
}

func TestMatrixCellsSeedStable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	// Dropping a family must not change the plans or results of the cells
	// that remain: every cell derives its RNG from its own (world, family,
	// severity, detector, recovery) identity, not from its position.
	full, err := Run(context.Background(), smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	windOnly := smallSpec(2)
	windOnly.Families = []faultinject.Family{faultinject.FamilyWind}
	sub, err := Run(context.Background(), windOnly)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*CellResult)
	for i := range full.Cells {
		byName[full.Cells[i].Cell.Name()] = &full.Cells[i]
	}
	for i := range sub.Cells {
		cr := &sub.Cells[i]
		want, ok := byName[cr.Cell.Name()]
		if !ok {
			t.Fatalf("cell %s missing from the full matrix", cr.Cell.Name())
		}
		if cr.Cell.Seed != want.Cell.Seed {
			t.Errorf("cell %s: seed %d in the sub-matrix, %d in the full matrix",
				cr.Cell.Name(), cr.Cell.Seed, want.Cell.Seed)
		}
		if !reflect.DeepEqual(cr.Plans, want.Plans) {
			t.Errorf("cell %s: plans differ between sub- and full matrix", cr.Cell.Name())
		}
		if !reflect.DeepEqual(cr.Campaign.Results, want.Campaign.Results) {
			t.Errorf("cell %s: results differ between sub- and full matrix", cr.Cell.Name())
		}
	}
}

func TestEnumerateAxesAndCollapse(t *testing.T) {
	spec := Spec{
		Worlds:     []string{"sparse", "factory"},
		Families:   []faultinject.Family{faultinject.FamilySensor},
		Severities: []Severity{{Name: "low", Scale: 0.35}},
		Detectors:  []string{"none", "gad"},
		Recoveries: []bool{true, false},
		Runs:       1,
		Seed:       7,
	}.normalized()
	cells := enumerate(spec)
	// none collapses its recovery axis: 2 worlds × (1 + 2) = 6 cells.
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6", len(cells))
	}
	names := make(map[string]bool)
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if names[c.Name()] {
			t.Errorf("duplicate cell name %s", c.Name())
		}
		names[c.Name()] = true
		if c.Detector == "none" && c.Recovery {
			t.Errorf("unprotected cell %s claims recovery", c.Name())
		}
	}
}

func TestParseSeverities(t *testing.T) {
	got, err := ParseSeverities("low,high")
	if err != nil || len(got) != 2 || got[0].Name != "low" || got[1].Scale != 1.0 {
		t.Errorf("ParseSeverities(low,high) = %+v, %v", got, err)
	}
	got, err = ParseSeverities("extreme=1.5")
	if err != nil || got[0].Name != "extreme" || got[0].Scale != 1.5 {
		t.Errorf("ParseSeverities(extreme=1.5) = %+v, %v", got, err)
	}
	for _, bad := range []string{"", "bogus", "x=-1", "x=nope"} {
		if _, err := ParseSeverities(bad); err == nil {
			t.Errorf("ParseSeverities(%q) accepted", bad)
		}
	}
}

func TestParseFamilies(t *testing.T) {
	all, err := ParseFamilies("all")
	if err != nil || len(all) != 5 {
		t.Errorf("ParseFamilies(all) = %v, %v", all, err)
	}
	two, err := ParseFamilies("sensor,wind")
	if err != nil || len(two) != 2 || two[0] != faultinject.FamilySensor {
		t.Errorf("ParseFamilies(sensor,wind) = %v, %v", two, err)
	}
	for _, bad := range []string{"", "none", "bogus"} {
		if _, err := ParseFamilies(bad); err == nil {
			t.Errorf("ParseFamilies(%q) accepted", bad)
		}
	}
}

func TestSummaryCSVCountsDegradedOutcomes(t *testing.T) {
	cell := Cell{Index: 0, World: "sparse", Family: faultinject.FamilyWind,
		Severity: Severity{Name: "high", Scale: 1}, Detector: "none"}
	camp := &qof.Campaign{Name: cell.Name()}
	camp.Add(qof.Metrics{Outcome: qof.Success, FlightTimeS: 10})
	camp.Add(qof.Metrics{Outcome: qof.Panicked})
	camp.Add(qof.Metrics{Outcome: qof.DeadlineExceeded})
	res := &Result{
		Spec:  Spec{Worlds: []string{"sparse"}}.normalized(),
		Cells: []CellResult{{Cell: cell, Campaign: camp}},
	}
	sum := res.summaryCSV()
	if !strings.Contains(sum, ",1,1,") { // panic=1, deadline=1 columns
		t.Errorf("summary missing panic/deadline counts:\n%s", sum)
	}
	if camp.CountOutcome(qof.Panicked) != 1 || camp.CountOutcome(qof.DeadlineExceeded) != 1 {
		t.Error("CountOutcome miscounts degraded outcomes")
	}
}
