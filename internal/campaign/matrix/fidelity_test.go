package matrix

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mavfi/internal/faultinject"
	"mavfi/internal/octomap"
	"mavfi/internal/pipeline"
)

// fidelitySpec is the study-sized spec the determinism and tolerance tests
// share: one CI world, two physical families, two missions per cell.
func fidelitySpec(workers int) Spec {
	return Spec{
		Worlds:     []string{"sparse"},
		Families:   []faultinject.Family{faultinject.FamilySensor, faultinject.FamilyWind},
		Severities: []Severity{{Name: "high", Scale: 1.0}},
		Runs:       2,
		Seed:       1,
		Workers:    workers,
	}
}

// TestSeededMatrixByteIdenticalAcrossWorkerWidths extends the matrix
// byte-identity gate to approximate mode: with golden-map seeding (and a
// near-field stride) on, per-cell and summary CSVs must still be identical
// at any worker width — which worker forks which pooled arena is
// unobservable.
func TestSeededMatrixByteIdenticalAcrossWorkerWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	var refCells map[string]string
	var refSummary string
	for _, workers := range []int{1, 4} {
		spec := fidelitySpec(workers)
		spec.MapSeed = "seed"
		spec.NearFieldStride = 2
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		cells := make(map[string]string, len(res.Cells))
		for i := range res.Cells {
			cells[res.Cells[i].Cell.Name()] = res.Cells[i].csv()
		}
		if refCells == nil {
			refCells, refSummary = cells, res.summaryCSV()
			continue
		}
		for name, csv := range cells {
			if csv != refCells[name] {
				t.Errorf("seeded cell %s CSV differs between 1 and %d workers", name, workers)
			}
		}
		if res.summaryCSV() != refSummary {
			t.Errorf("seeded summary CSV differs between 1 and %d workers", workers)
		}
	}
}

// TestFidelityCSVByteIdenticalAcrossWorkerWidths is the study-level
// determinism gate: the full ladder's fidelity.csv must be byte-identical at
// 1 and 4 workers.
func TestFidelityCSVByteIdenticalAcrossWorkerWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the matrix once per ladder setting")
	}
	ref := ""
	for _, workers := range []int{1, 4} {
		study, err := FidelityStudy(context.Background(), fidelitySpec(workers), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		csv := study.CSV()
		if ref == "" {
			ref = csv
			continue
		}
		if csv != ref {
			t.Error("fidelity.csv differs between 1 and 4 workers")
		}
	}
}

// TestFidelityDeltasWithinPinnedTolerance bounds approximate-mode drift on
// the CI world: across the default ladder, every cell's success-rate,
// flight-time, and energy delta against the exact baseline must stay inside
// the documented envelope (docs/EXPERIMENTS.md "Fidelity study"). The
// bounds are deliberately loose — they are a tripwire for approximate mode
// suddenly changing mission character (e.g. a fork leaking state), not a
// precision claim. The exact-baseline row of the study is additionally
// pinned to zero drift, which re-proves seeding is off by default.
func TestFidelityDeltasWithinPinnedTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the matrix once per ladder setting")
	}
	study, err := FidelityStudy(context.Background(), fidelitySpec(4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const (
		maxSuccessDelta = 0.51 // one mission of two flipping is 0.5
		maxFlightDeltaS = 30.0
		maxEnergyDeltaJ = 12000.0
	)
	base := study.Runs[0]
	for si, set := range study.Settings {
		run := study.Runs[si]
		for ci := range run.Cells {
			sr, ft, en, _, _ := fidelityMetrics(&run.Cells[ci])
			bsr, bft, ben, _, _ := fidelityMetrics(&base.Cells[ci])
			name := run.Cells[ci].Cell.Name()
			if si == 0 {
				if sr != bsr || ft != bft || en != ben {
					t.Fatalf("setting %q is its own baseline but drifted on cell %s", set.Name, name)
				}
				continue
			}
			if d := math.Abs(sr - bsr); d > maxSuccessDelta {
				t.Errorf("setting %q cell %s: success-rate delta %.2f exceeds pinned %.2f", set.Name, name, d, maxSuccessDelta)
			}
			if d := math.Abs(ft - bft); d > maxFlightDeltaS {
				t.Errorf("setting %q cell %s: flight-time delta %.1fs exceeds pinned %.1fs", set.Name, name, d, maxFlightDeltaS)
			}
			if d := math.Abs(en - ben); d > maxEnergyDeltaJ {
				t.Errorf("setting %q cell %s: energy delta %.0fJ exceeds pinned %.0fJ", set.Name, name, d, maxEnergyDeltaJ)
			}
		}
	}
	// The CSV must carry one row per (setting, cell).
	csv := study.CSV()
	wantRows := 1 + len(study.Settings)*len(base.Cells)
	if got := strings.Count(csv, "\n"); got != wantRows {
		t.Errorf("fidelity.csv has %d lines, want %d", got, wantRows)
	}
}

// TestFidelityStudyRejectsBadMode pins spec validation through the study.
func TestFidelityStudyRejectsBadMode(t *testing.T) {
	_, err := FidelityStudy(context.Background(), fidelitySpec(1),
		[]FidelitySetting{{Name: "bogus", MapSeed: "warp"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "map-seed") {
		t.Fatalf("bad map-seed mode not rejected: %v", err)
	}
	bad := fidelitySpec(1)
	bad.MapSeed = "warp"
	if _, err := Run(context.Background(), bad); err == nil {
		t.Fatal("Run accepted an unknown map-seed mode")
	}
	neg := fidelitySpec(1)
	neg.NearFieldStride = -2
	if _, err := Run(context.Background(), neg); err == nil {
		t.Fatal("Run accepted a negative near-field stride")
	}
}

// TestAssetsMapSeedPersistence pins the server-restart path: a seed built
// with a seed directory set is written to disk, a fresh Assets loads the
// identical golden map from that file, and a stale file for different world
// geometry is rebuilt rather than trusted.
func TestAssetsMapSeedPersistence(t *testing.T) {
	dir := t.TempDir()

	a := NewAssets()
	a.SetSeedDir(dir)
	built, err := a.MapSeed("sparse")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sparse.mapseed")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("seed file not persisted: %v", err)
	}

	b := NewAssets()
	b.SetSeedDir(dir)
	loaded, err := b.MapSeed("sparse")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest() != built.Digest() {
		t.Fatal("loaded seed digest differs from the built seed")
	}

	// Cache hit: same Assets returns the same value without touching disk.
	again, err := b.MapSeed("sparse")
	if err != nil || again != loaded {
		t.Fatalf("warm MapSeed did not return the cached seed (err %v)", err)
	}

	// A stale file holding another world's geometry must be rebuilt over.
	w, err := World("factory")
	if err != nil {
		t.Fatal(err)
	}
	if err := octomap.WriteSnapshotFile(path, pipeline.BuildMapSeed(w).Snapshot()); err != nil {
		t.Fatal(err)
	}
	c := NewAssets()
	c.SetSeedDir(dir)
	rebuilt, err := c.MapSeed("sparse")
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Digest() != built.Digest() {
		t.Fatal("stale geometry file was not rebuilt into the correct seed")
	}
	if reread, err := octomap.ReadSnapshotFile(path); err != nil || reread.Digest() != built.Digest() {
		t.Fatalf("rebuild did not rewrite the seed file (err %v)", err)
	}

	// No seed dir: building still works, nothing is written.
	d := NewAssets()
	nodirSeed, err := d.MapSeed("sparse")
	if err != nil {
		t.Fatal(err)
	}
	if nodirSeed.Digest() != built.Digest() {
		t.Fatal("dirless build differs from persisted build")
	}
}

// TestFidelityCSVSchema pins the study CSV header and the numeric form of a
// delta cell (shortest round-trip floats, empty latency for latency-less
// cells) so downstream figure scripts can rely on the bytes.
func TestFidelityCSVSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	spec := fidelitySpec(2)
	spec.Families = []faultinject.Family{faultinject.FamilyWind}
	study, err := FidelityStudy(context.Background(), spec,
		[]FidelitySetting{{Name: "exact", MapSeed: "off"}, {Name: "seed", MapSeed: "seed"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(study.CSV(), "\n"), "\n")
	wantHeader := "setting,map_seed,near_stride,cell,world,fault,severity,detector,recovery," +
		"runs,success_rate,mean_flight_s,mean_energy_j,mean_detect_latency_s," +
		"d_success_rate,d_mean_flight_s,d_mean_energy_j,d_detect_latency_s"
	if lines[0] != wantHeader {
		t.Fatalf("header drifted:\n got %s\nwant %s", lines[0], wantHeader)
	}
	if len(lines) != 3 {
		t.Fatalf("want 2 data rows, got %d", len(lines)-1)
	}
	for i, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 18 {
			t.Fatalf("row %d has %d fields, want 18", i, len(f))
		}
		for _, col := range []int{14, 15, 16} { // delta columns
			v, err := strconv.ParseFloat(f[col], 64)
			if err != nil {
				t.Fatalf("row %d col %d not a float: %q", i, col, f[col])
			}
			if i == 0 && v != 0 {
				t.Errorf("baseline row has nonzero delta in col %d: %q", col, f[col])
			}
		}
	}
}
