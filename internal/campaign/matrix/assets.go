package matrix

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mavfi/internal/campaign"
	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/octomap"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
)

// Assets is the warm cache of everything campaign execution builds before
// the first mission flies: environments, kernel-calibration counters, shared
// training corpora, and trained detector factories. A long-running campaign
// server owns one Assets across its whole lifetime so consecutive jobs skip
// the (world build, calibration flight, detector training) setup; a one-shot
// CLI run uses a fresh one and behaves exactly as before.
//
// Sharing is safe because every cached asset is immutable or cloned at the
// point of use: a *env.World is read-only once its obstacle index is built
// (the campaign concurrency invariant of docs/ARCHITECTURE.md), counters are
// only read after calibration, and detector factories return a fresh Clone
// per mission. And it cannot change results: each asset is a deterministic
// pure function of its cache key, so a warm hit returns bit-identical state
// to a cold build — the served-equals-CLI invariant rests on this.
//
// All methods are safe for concurrent use. Builds happen under the Assets
// lock, so two concurrent jobs needing the same cold asset serialize on it
// (the second waits and gets the cache hit).
type Assets struct {
	mu        sync.Mutex
	worlds    map[string]*env.World
	counters  map[counterKey]*faultinject.Counter
	training  map[trainKey][][detect.NumStates]float64
	detectors map[detectorKey]func() detect.Detector
	seeds     map[string]*pipeline.MapSeed
	seedDir   string
}

// counterKey identifies one kernel-calibration run: the calibration mission
// flies world `world` with seed `seed`+555 under the given mission budget.
type counterKey struct {
	world       string
	seed        int64
	maxMissionS float64
}

// trainKey identifies one training corpus: trainEnvs collection environments
// rooted at seed+1000 (the offset every CLI uses).
type trainKey struct {
	seed      int64
	trainEnvs int
}

// detectorKey identifies one trained detector model.
type detectorKey struct {
	name string
	trainKey
}

// NewAssets returns an empty warm cache.
func NewAssets() *Assets {
	return &Assets{
		worlds:    make(map[string]*env.World),
		counters:  make(map[counterKey]*faultinject.Counter),
		training:  make(map[trainKey][][detect.NumStates]float64),
		detectors: make(map[detectorKey]func() detect.Detector),
		seeds:     make(map[string]*pipeline.MapSeed),
	}
}

// SetSeedDir enables golden-map persistence under dir: MapSeed loads cached
// snapshot files from it before building, and writes freshly built seeds
// back (best-effort — a write failure just means the next restart rebuilds).
// The campaign server points this at <record-dir>/mapseeds so restart
// recovery skips seed construction along with everything else.
func (a *Assets) SetSeedDir(dir string) {
	a.mu.Lock()
	a.seedDir = dir
	a.mu.Unlock()
}

// MapSeed returns the golden map for the named world, building it with
// pipeline.BuildMapSeed on first use (or loading it from the seed directory
// when one is set and holds a valid snapshot for the world's geometry). A
// cache or disk hit is bit-identical to a fresh build: BuildMapSeed is a
// deterministic pure function of the world, and loaded snapshots are
// digest-checked by the reader and geometry-checked against the world here.
func (a *Assets) MapSeed(world string) (*pipeline.MapSeed, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.seeds[world]; ok {
		return s, nil
	}
	w, err := a.worldLocked(world)
	if err != nil {
		return nil, err
	}
	path := ""
	if a.seedDir != "" {
		path = filepath.Join(a.seedDir, world+".mapseed")
		if snap, err := octomap.ReadSnapshotFile(path); err == nil {
			if s, err := pipeline.NewMapSeed(w, snap); err == nil {
				a.seeds[world] = s
				return s, nil
			}
			// Geometry mismatch: a stale file from an older world layout.
			// Fall through and rebuild over it.
		}
	}
	s := pipeline.BuildMapSeed(w)
	if path != "" {
		if err := os.MkdirAll(a.seedDir, 0o755); err == nil {
			_ = octomap.WriteSnapshotFile(path, s.Snapshot())
		}
	}
	a.seeds[world] = s
	return s, nil
}

// HasSeed reports whether the golden map for the named world is already in
// the cache (loaded, built, or installed) without triggering a build.
func (a *Assets) HasSeed(world string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.seeds[world]
	return ok
}

// InstallSeedSnapshot installs a golden-map snapshot obtained out of band —
// a worker shard fetching the serialized seed from its dispatcher instead of
// rebuilding it — after geometry-checking it against the named world. A
// snapshot that fails the check (stale geometry, wrong world) is rejected
// and the caller falls back to a local build, which is bit-identical anyway:
// seed sharing only saves the build time, never changes bytes. An already-
// cached world is left untouched.
func (a *Assets) InstallSeedSnapshot(world string, snap *octomap.Snapshot) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.seeds[world]; ok {
		return nil
	}
	w, err := a.worldLocked(world)
	if err != nil {
		return err
	}
	s, err := pipeline.NewMapSeed(w, snap)
	if err != nil {
		return err
	}
	a.seeds[world] = s
	return nil
}

// World returns the named standard environment, building it on first use.
// The returned world is shared: its obstacle index is built once and is
// strictly read-only afterwards, so any number of concurrent missions (and
// jobs) may raycast against it.
func (a *Assets) World(name string) (*env.World, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w, ok := a.worlds[name]; ok {
		return w, nil
	}
	w, err := World(name)
	if err != nil {
		return nil, err
	}
	a.worlds[name] = w
	return w, nil
}

// Counter returns the kernel dynamic-value calibration counter for the
// (world, matrix seed, mission budget) triple, flying the one calibration
// mission on first use. The calibration flight is deterministic, so a cache
// hit is bit-identical to a fresh calibration.
func (a *Assets) Counter(world string, seed int64, maxMissionS float64) (*faultinject.Counter, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := counterKey{world, seed, maxMissionS}
	if ctr, ok := a.counters[key]; ok {
		return ctr, nil
	}
	w, err := a.worldLocked(world)
	if err != nil {
		return nil, err
	}
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{World: w, Seed: seed + 555, MaxMissionS: maxMissionS, Counter: ctr})
	a.counters[key] = ctr
	return ctr, nil
}

// worldLocked is World for callers already holding a.mu.
func (a *Assets) worldLocked(name string) (*env.World, error) {
	if w, ok := a.worlds[name]; ok {
		return w, nil
	}
	w, err := World(name)
	if err != nil {
		return nil, err
	}
	a.worlds[name] = w
	return w, nil
}

// Detector returns the clone-per-mission factory for the named detector
// ("none" returns a nil factory), training the underlying model on first use
// with the same seed offsets every CLI uses (corpus at seed+1000 on
// trainEnvs environments, AAD initialization at seed+2000). The training
// corpus is cached independently, so "gad" and "aad" for one (seed,
// trainEnvs) pair share a single collection pass exactly as the one-shot
// matrix runner's trainDetectors did.
func (a *Assets) Detector(ctx context.Context, r *campaign.Runner, name string, seed int64, trainEnvs int) (func() detect.Detector, error) {
	switch name {
	case "none":
		return nil, nil
	case "gad", "aad":
	default:
		return nil, fmt.Errorf("matrix: unknown detector %q (have none, gad, aad)", name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	key := detectorKey{name, trainKey{seed, trainEnvs}}
	if mk, ok := a.detectors[key]; ok {
		return mk, nil
	}
	data, ok := a.training[key.trainKey]
	if !ok {
		var err error
		data, err = pipeline.CollectTrainingDataOn(ctx, r, trainEnvs, seed+1000, platform.I9())
		if err != nil {
			return nil, fmt.Errorf("matrix: collecting training data: %w", err)
		}
		a.training[key.trainKey] = data
	}
	var mk func() detect.Detector
	if name == "gad" {
		gad := pipeline.TrainGAD(data, 4)
		mk = func() detect.Detector { return gad.Clone() }
	} else {
		aad := pipeline.TrainAAD(data, detect.DefaultAADConfig(), seed+2000)
		mk = func() detect.Detector { return aad.Clone() }
	}
	a.detectors[key] = mk
	return mk, nil
}

// detectorFactories resolves the spec's whole detector axis through the
// cache, preserving the legacy trainDetectors contract: nil factory for
// "none", an error for unknown names.
func (a *Assets) detectorFactories(ctx context.Context, r *campaign.Runner, spec Spec) (map[string]func() detect.Detector, error) {
	factories := make(map[string]func() detect.Detector, len(spec.Detectors))
	for _, name := range spec.Detectors {
		if _, ok := factories[name]; ok {
			continue
		}
		mk, err := a.Detector(ctx, r, name, spec.Seed, spec.TrainEnvs)
		if err != nil {
			return nil, err
		}
		factories[name] = mk
	}
	return factories, nil
}
