package matrix

import (
	"os"
	"path/filepath"
	"testing"

	"mavfi/internal/octomap"
	"mavfi/internal/pipeline"
)

// TestMapSeedRebuildsOverCorruptFile pins the crash-recovery path of the seed
// cache: a .mapseed file truncated mid-write (a crash before atomic rename
// existed would leave exactly this) or overwritten with garbage must not
// poison MapSeed. The snapshot reader's digest check rejects the bytes, the
// seed is rebuilt from scratch — bit-identical by construction — and the good
// bytes are written back over the bad file.
func TestMapSeedRebuildsOverCorruptFile(t *testing.T) {
	dir := t.TempDir()
	a := NewAssets()
	a.SetSeedDir(dir)
	built, err := a.MapSeed("sparse")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sparse.mapseed")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, bad := range map[string][]byte{
		"truncated": good[: len(good)/2 : len(good)/2],
		"garbage":   []byte("\x00not a snapshot\x00"),
		"empty":     {},
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			b := NewAssets()
			b.SetSeedDir(dir)
			s, err := b.MapSeed("sparse")
			if err != nil {
				t.Fatalf("MapSeed over a %s seed file: %v", name, err)
			}
			if s.Digest() != built.Digest() {
				t.Fatalf("%s seed file rebuilt into a different seed", name)
			}
			if reread, err := octomap.ReadSnapshotFile(path); err != nil || reread.Digest() != built.Digest() {
				t.Fatalf("rebuild did not repair the %s seed file (err %v)", name, err)
			}
		})
	}
}

// TestInstallSeedSnapshotRejectsWrongWorld pins the worker-shard seed-sharing
// guard: a snapshot whose geometry belongs to a different world is rejected
// (the worker then degrades to a local build) and leaves no cache entry,
// while installing the right snapshot succeeds and later installs no-op.
func TestInstallSeedSnapshotRejectsWrongWorld(t *testing.T) {
	factory, err := World("factory")
	if err != nil {
		t.Fatal(err)
	}
	wrong := pipeline.BuildMapSeed(factory).Snapshot()

	a := NewAssets()
	if err := a.InstallSeedSnapshot("sparse", wrong); err == nil {
		t.Fatal("installed a factory snapshot as the sparse golden map")
	}
	if a.HasSeed("sparse") {
		t.Fatal("rejected snapshot left a cache entry behind")
	}

	sparse, err := World("sparse")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InstallSeedSnapshot("sparse", pipeline.BuildMapSeed(sparse).Snapshot()); err != nil {
		t.Fatalf("installing the matching snapshot: %v", err)
	}
	if !a.HasSeed("sparse") {
		t.Fatal("installed seed not cached")
	}
	// An already-cached world ignores further installs, even wrong ones.
	if err := a.InstallSeedSnapshot("sparse", wrong); err != nil {
		t.Fatalf("install on a cached world must no-op, got: %v", err)
	}
}
