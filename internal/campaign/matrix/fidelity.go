package matrix

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mavfi/internal/stats"
)

// FidelitySetting is one rung of the approximate-mode ladder: a named
// (map-seed mode, near-field stride) combination the fidelity study flies
// the whole matrix under.
type FidelitySetting struct {
	Name            string
	MapSeed         string
	NearFieldStride int
}

// DefaultFidelityLadder is the study's standard ladder: the exact baseline,
// then each approximate lever composed in ascending aggressiveness.
func DefaultFidelityLadder() []FidelitySetting {
	return []FidelitySetting{
		{Name: "exact", MapSeed: "off"},
		{Name: "seed", MapSeed: "seed"},
		{Name: "seed-near2", MapSeed: "seed", NearFieldStride: 2},
		{Name: "memo", MapSeed: "memo"},
		{Name: "memo-near2", MapSeed: "memo", NearFieldStride: 2},
	}
}

// FidelityResult is one completed fidelity study: the same matrix spec run
// once per ladder setting, with setting 0 as the delta baseline.
type FidelityResult struct {
	Spec     Spec
	Settings []FidelitySetting
	Runs     []*Result
}

// FidelityStudy flies spec once per setting (setting 0 is the baseline all
// deltas are reported against) and collects the per-cell paper-figure
// metrics. Every run goes through RunOn with the same assets, so worlds,
// counters, detectors, and golden maps are built once; determinism is
// inherited from the matrix contract — the study CSV is byte-identical at
// any worker width.
func FidelityStudy(ctx context.Context, spec Spec, settings []FidelitySetting, assets *Assets) (*FidelityResult, error) {
	if len(settings) == 0 {
		settings = DefaultFidelityLadder()
	}
	if assets == nil {
		assets = NewAssets()
	}
	fr := &FidelityResult{Spec: spec.normalized(), Settings: settings}
	for _, set := range settings {
		s := spec
		s.MapSeed = set.MapSeed
		s.NearFieldStride = set.NearFieldStride
		res, err := RunOn(ctx, s, assets)
		if err != nil {
			return nil, fmt.Errorf("matrix: fidelity setting %q: %w", set.Name, err)
		}
		fr.Runs = append(fr.Runs, res)
	}
	return fr, nil
}

// CSV renders the study as one deterministic table: a row per (setting,
// cell) holding the paper-figure metrics — success rate, mean detection
// latency, and the QoF aggregates (mean flight time, mean mission energy) —
// plus each metric's delta against the exact baseline's same cell. Setting
// rows appear in ladder order, cells in enumeration order, floats in the
// shortest round-trip form, so the bytes are a pure function of the results.
func (fr *FidelityResult) CSV() string {
	var b strings.Builder
	b.WriteString("setting,map_seed,near_stride,cell,world,fault,severity,detector,recovery," +
		"runs,success_rate,mean_flight_s,mean_energy_j,mean_detect_latency_s," +
		"d_success_rate,d_mean_flight_s,d_mean_energy_j,d_detect_latency_s\n")
	for si, set := range fr.Settings {
		run := fr.Runs[si]
		base := fr.Runs[0]
		for ci := range run.Cells {
			cr := &run.Cells[ci]
			c := cr.Cell
			sr, ft, en, lat, hasLat := fidelityMetrics(cr)
			bsr, bft, ben, blat, bHasLat := fidelityMetrics(&base.Cells[ci])
			latS, dLatS := "", ""
			if hasLat {
				latS = fm(lat)
			}
			if hasLat && bHasLat {
				dLatS = fm(lat - blat)
			}
			fmt.Fprintf(&b, "%s,%s,%d,%d,%s,%s,%s,%s,%v,%d,%s,%s,%s,%s,%s,%s,%s,%s\n",
				set.Name, set.MapSeed, set.NearFieldStride,
				c.Index, c.World, c.Target(), c.Severity.Name, c.Detector, c.Recovery,
				cr.Campaign.N(), fm(sr), fm(ft), fm(en), latS,
				fm(sr-bsr), fm(ft-bft), fm(en-ben), dLatS)
		}
	}
	return b.String()
}

// fidelityMetrics extracts one cell's paper-figure numbers.
func fidelityMetrics(cr *CellResult) (successRate, meanFlightS, meanEnergyJ, detectLatencyS float64, hasLatency bool) {
	camp := cr.Campaign
	successRate = camp.SuccessRate()
	meanFlightS = camp.FlightTimeSummary().Mean
	meanEnergyJ = stats.Summarize(camp.Energies()).Mean
	detectLatencyS, hasLatency = camp.MeanDetectionLatencyS()
	return
}

// WriteCSV writes the study table as fidelity.csv under dir.
func (fr *FidelityResult) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "fidelity.csv"), []byte(fr.CSV()), 0o644)
}
