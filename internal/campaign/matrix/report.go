package matrix

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mavfi/internal/campaign"
	"mavfi/internal/qof"
)

// fm renders a float in the shortest round-trip form — a deterministic,
// locale-free encoding, so CSV bytes are a pure function of the results.
func fm(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV renders the matrix under dir (created if missing): one
// per-mission CSV per cell, named after Cell.Name with the cell index as a
// stable prefix, plus an aggregate summary.csv. All files are deterministic
// byte-for-byte for a given Result — the artifact `make matrix-smoke` diffs
// across worker widths.
func (r *Result) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cr := range r.Cells {
		path := filepath.Join(dir, cr.Cell.CSVName())
		if err := os.WriteFile(path, []byte(cr.csv()), 0o644); err != nil {
			return err
		}
	}
	return os.WriteFile(filepath.Join(dir, "summary.csv"), []byte(r.summaryCSV()), 0o644)
}

// CSVName is the cell's canonical CSV filename (index-prefixed so lexical
// order is enumeration order) — shared by WriteCSV and the campaign server's
// persisted artifacts.
func (c Cell) CSVName() string {
	return fmt.Sprintf("cell-%03d-%s.csv", c.Index, c.Name())
}

// CSV renders the cell's per-mission rows — the exact bytes WriteCSV puts in
// the cell's file, exported so the campaign server serves the same artifact
// from the same renderer.
func (cr *CellResult) CSV() string { return cr.csv() }

// SummaryCSV renders the per-cell aggregate table — the exact bytes WriteCSV
// puts in summary.csv.
func (r *Result) SummaryCSV() string { return r.summaryCSV() }

// csv renders the cell's per-mission rows.
func (cr *CellResult) csv() string {
	var b strings.Builder
	b.WriteString("mission,seed,outcome,flight_s,energy_j,distance_m,compute_s,detect_s,alarms,recomputes,injected_at_s,first_alarm_s,fault\n")
	for j, m := range cr.Campaign.Results {
		var plan string
		if j < len(cr.Plans) {
			plan = cr.Plans[j].String()
		}
		fmt.Fprintf(&b, "%d,%d,%s,%s,%s,%s,%s,%s,%d,%d,%s,%s,%s\n",
			j, missionSeed(cr.Cell, j), m.Outcome,
			fm(m.FlightTimeS), fm(m.EnergyJ), fm(m.DistanceM),
			fm(m.ComputeS), fm(m.DetectS),
			m.Alarms, m.Recomputes,
			fm(m.InjectedAtS), fm(m.FirstAlarmS), plan)
	}
	return b.String()
}

// summaryCSV renders the per-cell aggregate table.
func (r *Result) summaryCSV() string {
	var b strings.Builder
	b.WriteString("cell,world,family,severity,detector,recovery,runs,success_rate,crash,timeout,battery,panic,deadline,fired,mean_flight_s,mean_alarms,mean_detect_latency_s\n")
	for _, cr := range r.Cells {
		c, camp := cr.Cell, cr.Campaign
		fired, alarms := 0, 0
		for _, m := range camp.Results {
			if m.InjectedAtS > 0 {
				fired++
			}
			alarms += m.Alarms
		}
		meanAlarms := 0.0
		if camp.N() > 0 {
			meanAlarms = float64(alarms) / float64(camp.N())
		}
		lat, hasLat := camp.MeanDetectionLatencyS()
		latS := ""
		if hasLat {
			latS = fm(lat)
		}
		fmt.Fprintf(&b, "%d,%s,%s,%s,%s,%v,%d,%s,%d,%d,%d,%d,%d,%d,%s,%s,%s\n",
			c.Index, c.World, c.Target(), c.Severity.Name, c.Detector, c.Recovery,
			camp.N(), fm(camp.SuccessRate()),
			camp.CountOutcome(qof.Crash), camp.CountOutcome(qof.Timeout),
			camp.CountOutcome(qof.BatteryOut), camp.CountOutcome(qof.Panicked),
			camp.CountOutcome(qof.DeadlineExceeded), fired,
			fm(camp.FlightTimeSummary().Mean), fm(meanAlarms), latS)
	}
	return b.String()
}

// MissionSeed recomputes mission j's pipeline seed (also derived in Run);
// exposed in the CSV (and in the campaign server's streamed events) so any
// mission can be re-flown standalone.
func (c Cell) MissionSeed(j int) int64 {
	return campaign.MissionSeed(c.Seed, j)
}

// missionSeed keeps the CSV renderer on the same derivation.
func missionSeed(c Cell, j int) int64 {
	return c.MissionSeed(j)
}

// Table renders the Table-I-style aggregate: one success-rate grid
// (world × family) per (severity, detector, recovery) combination, plus
// detection-latency and degraded-outcome footnotes where applicable.
func (r *Result) Table() string {
	byKey := make(map[string]*CellResult, len(r.Cells))
	for i := range r.Cells {
		cr := &r.Cells[i]
		byKey[cr.Cell.Name()] = cr
	}

	var b strings.Builder
	spec := r.Spec
	for _, sev := range spec.Severities {
		for _, det := range spec.Detectors {
			recs := spec.Recoveries
			if det == "none" {
				recs = []bool{false}
			}
			for _, rec := range recs {
				mode := "recovery on"
				if !rec {
					mode = "detect only"
				}
				if det == "none" {
					mode = "unprotected"
				}
				fmt.Fprintf(&b, "severity=%s detector=%s (%s) — success rate\n", sev.Name, det, mode)
				fmt.Fprintf(&b, "%-10s", "world")
				for _, tg := range spec.Targets {
					fmt.Fprintf(&b, "%10s", tg)
				}
				b.WriteString("\n")
				for _, w := range spec.Worlds {
					fmt.Fprintf(&b, "%-10s", w)
					for _, tg := range spec.Targets {
						key := Cell{World: w, Family: tg.Family, Kind: tg.Kind, Severity: sev, Detector: det, Recovery: rec}.Name()
						if cr, ok := byKey[key]; ok && cr.Campaign.N() > 0 {
							fmt.Fprintf(&b, "%9.1f%%", cr.Campaign.SuccessRate()*100)
						} else {
							fmt.Fprintf(&b, "%10s", "-")
						}
					}
					b.WriteString("\n")
				}
				b.WriteString("\n")
			}
		}
	}

	// Footnotes: detection latency (detector cells) and degraded outcomes.
	panics, deadlines := 0, 0
	for _, cr := range r.Cells {
		panics += cr.Campaign.CountOutcome(qof.Panicked)
		deadlines += cr.Campaign.CountOutcome(qof.DeadlineExceeded)
		if cr.Cell.Detector == "none" {
			continue
		}
		if lat, ok := cr.Campaign.MeanDetectionLatencyS(); ok {
			fmt.Fprintf(&b, "detection latency %-40s %.2fs\n", cr.Cell.Name(), lat)
		}
	}
	if panics > 0 || deadlines > 0 {
		fmt.Fprintf(&b, "degraded: %d panicked, %d deadline-exceeded missions (see CSV)\n", panics, deadlines)
	}
	return b.String()
}
