// Package campaign is the parallel fault-injection campaign engine: it
// shards the N independent missions of a campaign across a worker pool and
// aggregates their quality-of-flight metrics.
//
// Missions are embarrassingly parallel — each is a pure function of its
// mission index — so the engine guarantees bit-identical campaign results
// regardless of worker count: every mission's inputs derive only from
// (campaign seed, mission index), each worker writes its result to the
// mission's own slot, and the final qof.Campaign is assembled in mission
// order. Per-worker statistics accumulate lock-free into worker-local
// stats.Welford states that are combined with Welford.Merge (Chan et al.)
// after the pool drains.
//
// Sharing model: the one structure all shards share is the campaign's
// env.World — its uniform-grid obstacle index is built by the first sensor
// query under sync.Once and is strictly read-only afterwards, so every
// parallel mission raycasts against a single index and World.Obstacles must
// not be mutated once a campaign has started. Everything mutable is
// per-mission: detectors are cloned per mission (detect.GAD.Clone,
// detect.AAD.Clone / nn.CloneForInference), and each mission owns its
// runner, octree, scratch buffers, and RNG streams. See
// docs/ARCHITECTURE.md ("Campaign concurrency invariants") for the full
// list these workers rely on.
package campaign

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mavfi/internal/qof"
	"mavfi/internal/stats"
)

// EnvWorkers is the environment variable that overrides the default worker
// count (a positive integer).
const EnvWorkers = "MAVFI_WORKERS"

// DefaultWorkers resolves the default pool size: MAVFI_WORKERS when set to a
// positive integer, otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Runner executes campaigns on a fixed-size worker pool. The zero value is
// not ready; use New.
type Runner struct {
	workers    int
	progress   func(done, total int)
	deadline   time.Duration
	resultHook func(i int, m qof.Metrics)
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers sets the pool size. Values below 1 keep the default
// (MAVFI_WORKERS, else GOMAXPROCS), so call sites can pass a zero
// "automatic" knob straight through.
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithProgress installs a progress hook invoked after every completed
// mission with the number of missions done so far and the campaign total.
// The hook may be called concurrently from multiple workers.
func WithProgress(fn func(done, total int)) Option {
	return func(r *Runner) { r.progress = fn }
}

// WithResultHook installs a hook invoked once per mission from Run, as soon
// as the mission's result is final — including the synthesized qof.Panicked
// and qof.DeadlineExceeded outcomes the hardened engine produces, which never
// reach the Mission function's own return path. Hooks fire in completion
// order (not mission order) and may be called concurrently from multiple
// workers; the final Outcome is still assembled in mission order. This is the
// streaming surface campaign services use to push per-mission results to
// subscribers while a job is still running.
func WithResultHook(fn func(i int, m qof.Metrics)) Option {
	return func(r *Runner) { r.resultHook = fn }
}

// WithMissionDeadline bounds each mission's wall-clock run time in Run: a
// mission still running when the deadline expires is abandoned and recorded
// as qof.DeadlineExceeded (its goroutine keeps running detached until it
// finishes — missions cannot be preempted — but the campaign no longer waits
// for it). Zero or negative disables the deadline.
//
// Deadlines are a robustness guard against runaway missions, not a
// determinism feature: whether a borderline mission beats its deadline
// depends on host load, so deadline-bearing campaigns are excluded from the
// byte-identity invariants (the CI matrix smoke runs without one).
func WithMissionDeadline(d time.Duration) Option {
	return func(r *Runner) {
		if d > 0 {
			r.deadline = d
		}
	}
}

// New builds a Runner with DefaultWorkers workers unless overridden.
func New(opts ...Option) *Runner {
	r := &Runner{workers: DefaultWorkers()}
	for _, o := range opts {
		o(r)
	}
	if r.workers < 1 {
		r.workers = 1
	}
	return r
}

// Workers returns the configured pool size.
func (r *Runner) Workers() int { return r.workers }

// MissionSeed derives a deterministic RNG seed for mission i of a campaign
// rooted at campaignSeed — a splitmix64-style avalanche of the pair, so
// per-mission streams are decorrelated from each other and from the campaign
// seed itself. The Runner does not impose a seeding scheme: call sites own
// seed derivation (the experiments use the paper's campaignSeed+i so run i
// stays paired across campaign cells); MissionSeed is the helper for new
// campaigns that want decorrelated streams instead.
func MissionSeed(campaignSeed int64, i int) int64 {
	z := uint64(campaignSeed) + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool. fn must
// be safe for concurrent invocation and should write outputs only to
// per-index (disjoint) storage; all writes are visible to the caller when
// ForEach returns. When ctx is cancelled, workers stop claiming new indices
// (missions already started run to completion) and ForEach returns ctx.Err.
func (r *Runner) ForEach(ctx context.Context, n int, fn func(i int)) error {
	return r.forEach(ctx, n, func(_, i int) { fn(i) })
}

// forEach is ForEach with the executing worker's id passed through, the
// primitive Run uses for worker-local accumulators.
func (r *Runner) forEach(ctx context.Context, n int, fn func(worker, i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
				if r.progress != nil {
					r.progress(int(done.Add(1)), n)
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// Mission computes mission i of a campaign. It must be safe for concurrent
// invocation and must depend only on i (and immutable captured state) so
// campaign results stay independent of scheduling.
type Mission func(i int) qof.Metrics

// MissionPanic records one isolated mission panic: which mission, what it
// panicked with, and the goroutine stack captured at the recover site.
type MissionPanic struct {
	// Index is the mission index within the campaign.
	Index int
	// Value is the panic value, rendered with %v.
	Value string
	// Stack is the panicking goroutine's stack (runtime/debug.Stack).
	Stack string
}

// Outcome is one campaign's aggregate: the mission-ordered qof.Campaign plus
// cheap online statistics over successful missions, accumulated per worker
// and combined with stats.Welford.Merge.
type Outcome struct {
	// Campaign holds mission results in mission-index order; Results[i] is
	// mission i. After a cancellation it is truncated to the longest
	// contiguous prefix of completed missions, preserving that invariant.
	Campaign *qof.Campaign
	// FlightTime and EnergyJ summarise the Campaign's successful missions'
	// flight seconds and energy joules (also after a cancellation, when
	// the Campaign is a prefix). Their merge order follows worker ids, so
	// they are equal across worker counts only up to floating-point
	// reassociation; the Campaign itself is bit-identical.
	FlightTime stats.Welford
	EnergyJ    stats.Welford
	// Panics lists the isolated mission panics in mission-index order; the
	// corresponding Campaign results carry qof.Panicked. A healthy campaign
	// has none.
	Panics []MissionPanic
}

// Run executes the n missions of one campaign across the pool and aggregates
// them. On cancellation it returns the partial Outcome together with
// ctx.Err(); the partial campaign covers the longest contiguous prefix of
// completed missions.
//
// Run degrades gracefully instead of tearing the campaign down: a panicking
// mission is isolated into a qof.Panicked result (stack in Outcome.Panics)
// and, when a WithMissionDeadline is set, an overrunning mission is
// abandoned as qof.DeadlineExceeded. Both outcomes flow through the ordinary
// aggregation, so one poisoned mission costs one cell entry, not the sweep.
func (r *Runner) Run(ctx context.Context, name string, n int, mission Mission) (*Outcome, error) {
	results := make([]qof.Metrics, n)
	ran := make([]bool, n)
	type shard struct {
		flight, energy stats.Welford
	}
	shards := make([]shard, r.workers)
	var panicMu sync.Mutex
	var panics []MissionPanic
	onPanic := func(p MissionPanic) {
		panicMu.Lock()
		panics = append(panics, p)
		panicMu.Unlock()
	}
	err := r.forEach(ctx, n, func(w, i int) {
		m := r.runGuarded(i, mission, onPanic)
		results[i], ran[i] = m, true
		if r.resultHook != nil {
			r.resultHook(i, m)
		}
		if m.Succeeded() {
			shards[w].flight.Add(m.FlightTimeS)
			shards[w].energy.Add(m.EnergyJ)
		}
	})
	out := &Outcome{Campaign: &qof.Campaign{Name: name}}
	panicMu.Lock()
	out.Panics = append(out.Panics, panics...)
	panicMu.Unlock()
	sort.Slice(out.Panics, func(a, b int) bool { return out.Panics[a].Index < out.Panics[b].Index })
	for i := range results {
		if !ran[i] {
			break
		}
		out.Campaign.Add(results[i])
	}
	if err != nil {
		// Cancelled: shards may hold missions past the truncated prefix,
		// so rebuild the online statistics from the campaign itself to
		// keep the two views consistent.
		for _, m := range out.Campaign.Results {
			if m.Succeeded() {
				out.FlightTime.Add(m.FlightTimeS)
				out.EnergyJ.Add(m.EnergyJ)
			}
		}
		return out, err
	}
	for w := range shards {
		out.FlightTime.Merge(&shards[w].flight)
		out.EnergyJ.Merge(&shards[w].energy)
	}
	return out, nil
}

// runGuarded executes mission(i) with panic isolation and the optional
// wall-clock deadline. Without a deadline the mission runs inline on the
// worker goroutine — no extra goroutine, no timer — so hardened execution is
// bit-identical (and allocation-identical) to the pre-hardening engine for
// well-behaved missions.
func (r *Runner) runGuarded(i int, mission Mission, onPanic func(MissionPanic)) qof.Metrics {
	if r.deadline <= 0 {
		return callIsolated(i, mission, onPanic)
	}
	done := make(chan qof.Metrics, 1)
	go func() { done <- callIsolated(i, mission, onPanic) }()
	timer := time.NewTimer(r.deadline)
	defer timer.Stop()
	select {
	case m := <-done:
		return m
	case <-timer.C:
		// The mission goroutine keeps running detached (missions cannot be
		// preempted) and parks its eventual result in the buffered channel;
		// the campaign stops waiting for it now.
		return qof.Metrics{Outcome: qof.DeadlineExceeded}
	}
}

// callIsolated invokes mission(i), converting a panic into a structured
// qof.Panicked result instead of tearing down the whole campaign.
func callIsolated(i int, mission Mission, onPanic func(MissionPanic)) (m qof.Metrics) {
	defer func() {
		if v := recover(); v != nil {
			onPanic(MissionPanic{Index: i, Value: fmt.Sprintf("%v", v), Stack: string(debug.Stack())})
			m = qof.Metrics{Outcome: qof.Panicked}
		}
	}()
	return mission(i)
}
