// Package perception implements the Collision Check kernel of the PPC
// pipeline. It produces the two inter-kernel states the paper monitors from
// the perception stage (Fig. 4): time_to_collision — seconds until the
// vehicle, continuing at its current velocity, would hit an occupied or
// map-boundary voxel — and future_collision_seq — the index of the first
// way-point on the active trajectory that is in collision with the current
// map (or -1 when the whole horizon is clear).
package perception

import (
	"math"

	"mavfi/internal/geom"
	"mavfi/internal/octomap"
)

// Report is the collision-check kernel output published to the planning
// stage.
type Report struct {
	T float64
	// TimeToCollision is in seconds; Horizon when no collision is sensed.
	TimeToCollision float64
	// FutureCollisionSeq is the trajectory way-point index of the first
	// predicted collision, or -1 when the horizon is clear.
	FutureCollisionSeq float64
}

// Checker is the collision-check kernel.
type Checker struct {
	// Horizon caps the look-ahead, in seconds.
	Horizon float64
	// Policy configures occupancy queries (radius, unknown-space handling).
	Policy octomap.QueryPolicy
}

// NewChecker returns the kernel with the experiment configuration: a 10 s
// horizon and optimistic unknown-space handling with the airframe radius.
func NewChecker(radius float64) *Checker {
	return &Checker{
		Horizon: 10,
		Policy:  octomap.QueryPolicy{UnknownIsFree: true, Radius: radius},
	}
}

// Check computes the collision report for the vehicle at pos moving with
// velocity vel, following trajectory points traj (may be nil before the
// first plan). The map is the current OctoMap.
//
// corrupt, when non-nil, is the fault-injection hook applied to the kernel's
// intermediate distance computation — the instruction-level injection site
// for this kernel.
func (c *Checker) Check(m *octomap.Tree, pos, vel geom.Vec3, traj []geom.Vec3, corrupt func(float64) float64) Report {
	r := Report{TimeToCollision: c.Horizon, FutureCollisionSeq: -1}

	speed := vel.Len()
	if speed > 0.05 {
		lookAhead := speed * c.Horizon
		end := pos.Add(vel.Normalize().Scale(lookAhead))
		// The obstacle distance is this kernel's central intermediate
		// value and passes through the injection site on every
		// invocation — a corrupted-low distance manifests as a false
		// collision alarm (emergency brake + replan), a corrupted-high
		// one masks a real obstacle, both failure modes the paper
		// attributes to this kernel.
		dist := lookAhead
		if frac, hit := m.FirstBlocked(pos, end, c.Policy); hit {
			dist = frac * lookAhead
		}
		if corrupt != nil {
			dist = corrupt(dist)
		}
		ttc := dist / speed
		if math.IsNaN(ttc) || ttc < 0 {
			ttc = 0
		}
		if ttc > c.Horizon {
			ttc = c.Horizon
		}
		r.TimeToCollision = ttc
	}

	for i, wp := range traj {
		if !m.PointFree(wp, c.Policy) {
			r.FutureCollisionSeq = float64(i)
			break
		}
	}
	if corrupt != nil {
		r.FutureCollisionSeq = corrupt(r.FutureCollisionSeq)
	}
	return r
}
