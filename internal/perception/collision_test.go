package perception

import (
	"math"
	"testing"

	"mavfi/internal/geom"
	"mavfi/internal/octomap"
)

// wallMap builds an octomap with a wall at x=16 and free space before it.
func wallMap() *octomap.Tree {
	tr := octomap.New(geom.Box(geom.V(0, 0, 0), geom.V(32, 32, 16)), 0.5, octomap.DefaultParams())
	for y := 0.0; y < 32; y += 0.5 {
		for z := 0.0; z < 16; z += 0.5 {
			tr.MarkOccupied(geom.V(16.25, y+0.25, z+0.25))
			tr.MarkOccupied(geom.V(16.75, y+0.25, z+0.25))
		}
	}
	for x := 2.0; x < 16; x += 0.5 {
		for y := 6.0; y < 10; y += 0.5 {
			tr.MarkFree(geom.V(x+0.25, y+0.25, 4.25))
		}
	}
	return tr
}

func TestTimeToCollision(t *testing.T) {
	tr := wallMap()
	ck := NewChecker(0.4)
	pos := geom.V(4, 8, 4)
	vel := geom.V(2, 0, 0) // 2 m/s toward the wall ~12 m away
	rep := ck.Check(tr, pos, vel, nil, nil)
	want := 12.0 / 2.0
	if math.Abs(rep.TimeToCollision-want) > 1.0 {
		t.Errorf("ttc = %v, want ≈%v", rep.TimeToCollision, want)
	}
	if rep.FutureCollisionSeq != -1 {
		t.Errorf("seq = %v with no trajectory", rep.FutureCollisionSeq)
	}
}

func TestTimeToCollisionClearPath(t *testing.T) {
	tr := wallMap()
	ck := NewChecker(0.4)
	// Flying away from the wall.
	rep := ck.Check(tr, geom.V(4, 8, 4), geom.V(-1, 0, 0), nil, nil)
	if rep.TimeToCollision > ck.Horizon {
		t.Errorf("ttc %v exceeds horizon", rep.TimeToCollision)
	}
	// Hovering: no meaningful TTC, reports horizon.
	rep = ck.Check(tr, geom.V(4, 8, 4), geom.Vec3{}, nil, nil)
	if rep.TimeToCollision != ck.Horizon {
		t.Errorf("hover ttc = %v, want horizon %v", rep.TimeToCollision, ck.Horizon)
	}
}

func TestFutureCollisionSeq(t *testing.T) {
	tr := wallMap()
	ck := NewChecker(0.4)
	traj := []geom.Vec3{
		{X: 5, Y: 8, Z: 4},
		{X: 10, Y: 8, Z: 4},
		{X: 16.25, Y: 8, Z: 4}, // inside the wall
		{X: 20, Y: 8, Z: 4},
	}
	rep := ck.Check(tr, geom.V(4, 8, 4), geom.Vec3{}, traj, nil)
	if rep.FutureCollisionSeq != 2 {
		t.Errorf("seq = %v, want 2", rep.FutureCollisionSeq)
	}
	// Clear trajectory.
	rep = ck.Check(tr, geom.V(4, 8, 4), geom.Vec3{}, traj[:2], nil)
	if rep.FutureCollisionSeq != -1 {
		t.Errorf("clear seq = %v", rep.FutureCollisionSeq)
	}
}

func TestCheckCorruptHook(t *testing.T) {
	tr := wallMap()
	ck := NewChecker(0.4)
	pos, vel := geom.V(4, 8, 4), geom.V(2, 0, 0)

	// Corruption producing a negative distance clamps TTC at 0.
	rep := ck.Check(tr, pos, vel, nil, func(x float64) float64 { return -x })
	if rep.TimeToCollision != 0 {
		t.Errorf("negative-corrupted ttc = %v", rep.TimeToCollision)
	}
	// NaN corruption clamps to 0 rather than propagating.
	rep = ck.Check(tr, pos, vel, nil, func(x float64) float64 { return math.NaN() })
	if math.IsNaN(rep.TimeToCollision) {
		t.Error("NaN ttc propagated")
	}
	// Huge corruption clamps to horizon.
	rep = ck.Check(tr, pos, vel, nil, func(x float64) float64 { return x * 1e12 })
	if rep.TimeToCollision > ck.Horizon {
		t.Errorf("over-horizon ttc = %v", rep.TimeToCollision)
	}
}

func TestCheckUnknownSpaceOptimism(t *testing.T) {
	tr := octomap.New(geom.Box(geom.V(0, 0, 0), geom.V(32, 32, 16)), 0.5, octomap.DefaultParams())
	ck := NewChecker(0.4)
	// Entirely unknown map: optimistic policy sees no collisions.
	rep := ck.Check(tr, geom.V(4, 8, 4), geom.V(2, 0, 0), []geom.Vec3{{X: 10, Y: 8, Z: 4}}, nil)
	if rep.TimeToCollision != ck.Horizon || rep.FutureCollisionSeq != -1 {
		t.Errorf("unknown space pessimistic: %+v", rep)
	}
}
