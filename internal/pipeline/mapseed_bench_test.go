package pipeline_test

import (
	"math/rand"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/pipeline"
)

// BenchmarkCampaignCell is the PR 9 headline: one campaign cell's worth of
// missions (six seeds on the sparse world) flown cold (every mission builds
// its octree from scratch) versus seeded (every mission forks the world's
// golden map) versus seeded with near-field ray subsampling. The golden map
// is built outside the timer — campaigns amortize it across a whole cell,
// so the fair comparison is mission cost alone. make bench-seed records the
// three rows in BENCH_PR9.json.
func BenchmarkCampaignCell(b *testing.B) {
	w := env.Sparse(rand.New(rand.NewSource(42)))
	missionSeeds := []int64{1, 2, 3, 9, 11, 17}
	cell := func(b *testing.B, seed *pipeline.MapSeed, stride int, memo bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range missionSeeds {
				pipeline.RunMission(pipeline.Config{World: w, Seed: s, MapSeed: seed, NearFieldStride: stride, MemoSkip: memo})
			}
		}
	}
	b.Run("cold", func(b *testing.B) { cell(b, nil, 0, false) })
	b.Run("seeded", func(b *testing.B) {
		seed := pipeline.BuildMapSeed(w)
		b.ResetTimer()
		cell(b, seed, 0, false)
	})
	b.Run("seeded-near2", func(b *testing.B) {
		seed := pipeline.BuildMapSeed(w)
		b.ResetTimer()
		cell(b, seed, 2, false)
	})
	b.Run("memo", func(b *testing.B) {
		seed := pipeline.BuildMapSeed(w)
		b.ResetTimer()
		cell(b, seed, 0, true)
	})
	b.Run("memo-near2", func(b *testing.B) {
		seed := pipeline.BuildMapSeed(w)
		b.ResetTimer()
		cell(b, seed, 2, true)
	})
}
