package pipeline_test

import (
	"encoding/binary"
	"flag"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
)

// printGolden regenerates the expected digest table instead of asserting, for
// use when a change is *intended* to alter mission dynamics:
//
//	go test ./internal/pipeline -run TestGoldenMissionDigest -golden.print
var printGolden = flag.Bool("golden.print", false, "print golden mission digests instead of asserting")

// goldenDigests pins the bit-exact closed-loop behaviour of the pipeline.
// Performance work is not allowed to move a single float unless it changes
// collision *semantics* deliberately — and then the change must be justified
// in writing and re-pinned here in the same commit.
//
// History: the values were recorded on the pre-PR2 per-ray/linear-scan
// implementation and survived the whole PR2 perf overhaul (batched octree
// insertion, world raycast acceleration, reusable frame buffers) bit-for-bit.
// PR3 replaced the half-resolution *sampled* SegmentFree/FirstBlocked probes
// with exact DDA voxel walks — a deliberate semantic refinement (the DDA
// visits voxels the sampler could step over, and reports the true boundary
// crossing rather than the first blocked sample; see
// docs/ARCHITECTURE.md#why-the-pr3-golden-digests-changed). Three digests
// moved (factory/seed1, factory/seed2, dense/seed1 — the obstacle-dense
// scenes where grazing voxels and time-to-collision fractions actually
// differ); the other five, including both fault-injection cases, were
// reproduced bit-for-bit, which is also the evidence that PR3's insertion
// collapse and per-voxel classification cache are pure (bit-identical)
// optimisations.
var goldenDigests = map[string]uint64{
	"factory/seed1":      0x02f815ecc9e79645,
	"factory/seed2":      0x6ac091f49e2c6697,
	"farm/seed1":         0xcbd2b17e0f664511,
	"sparse/seed1":       0x638ff8094c591611,
	"sparse/seed9":       0x3f738736f93af69f,
	"dense/seed1":        0x59f0405c653c488f,
	"sparse/kernelfault": 0xdd31d90a1ff9da17,
	"sparse/statefault":  0xe07395feff066db9,
}

// digestMission hashes every externally observable float and counter of a
// mission result. Any bit-level divergence anywhere in the closed loop
// (perception, mapping, planning, control, detection accounting) changes the
// flight dynamics and therefore this digest.
func digestMission(res pipeline.Result) uint64 {
	h := fnv.New64a()
	put := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	puti := func(i int) { put(float64(i)) }
	puti(int(res.Outcome))
	put(res.FlightTimeS)
	put(res.EnergyJ)
	put(res.DistanceM)
	put(res.ComputeS)
	put(res.DetectS)
	put(res.RecoverPerceptionS)
	put(res.RecoverPlanningS)
	put(res.RecoverControlS)
	puti(res.Alarms)
	puti(res.Recomputes)
	puti(res.Plans)
	puti(res.PlanFails)
	if res.Injected {
		put(res.InjectedAt)
	}
	return h.Sum64()
}

// goldenCases enumerates the pinned missions: every environment archetype,
// plus a kernel-fault and a state-fault mission so the injection paths are
// covered too.
func goldenCases() map[string]pipeline.Config {
	sparse := env.Sparse(rand.New(rand.NewSource(42)))
	dense := env.Dense(rand.New(rand.NewSource(43)))
	kf := &faultinject.Plan{Kernel: faultinject.KernelPlanner, Index: 200, Bit: 62}
	sf := &faultinject.StatePlan{State: faultinject.StateWpX, Time: 12, Bit: 61}
	return map[string]pipeline.Config{
		"factory/seed1":      {World: env.Factory(), Seed: 1},
		"factory/seed2":      {World: env.Factory(), Seed: 2},
		"farm/seed1":         {World: env.Farm(), Seed: 1},
		"sparse/seed1":       {World: sparse, Seed: 1},
		"sparse/seed9":       {World: sparse, Seed: 9},
		"dense/seed1":        {World: dense, Seed: 1},
		"sparse/kernelfault": {World: sparse, Seed: 5, KernelFault: kf},
		"sparse/statefault":  {World: sparse, Seed: 5, StateFault: sf},
	}
}

// TestGoldenMissionDigest is the bit-identity gate: fixed-seed missions must
// produce results identical to the pinned implementation (see goldenDigests
// for what is pinned and when re-pinning is legitimate).
func TestGoldenMissionDigest(t *testing.T) {
	for name, cfg := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got := digestMission(pipeline.RunMission(cfg))
			if *printGolden {
				t.Logf("%q: 0x%016x,", name, got)
				return
			}
			want, ok := goldenDigests[name]
			if !ok {
				t.Fatalf("no golden digest recorded for %q", name)
			}
			if got != want {
				t.Errorf("mission digest diverged from pre-PR2 behaviour: got 0x%016x, want 0x%016x", got, want)
			}
		})
	}
}
