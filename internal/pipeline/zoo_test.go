package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"mavfi/internal/faultinject"
	"mavfi/internal/geom"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
)

func TestZooFaultsFireAndReplayDeterministically(t *testing.T) {
	world := sparseWorld()
	nominal := NominalDuration(Config{World: world})
	rng := rand.New(rand.NewSource(3))
	for _, f := range []faultinject.Family{faultinject.FamilySensor, faultinject.FamilyActuator, faultinject.FamilyWind} {
		plan := faultinject.DrawFault(f, faultinject.NewDrawSpec(nominal, 1), nil, rng)
		cfg := Config{World: world, Seed: 5}
		cfg.SetFault(plan)
		res := RunMission(cfg)
		if !res.Injected {
			t.Errorf("%s: fault never fired (plan %s)", f, plan)
			continue
		}
		if res.InjectedAt <= 0 || res.Metrics.InjectedAtS != res.InjectedAt {
			t.Errorf("%s: InjectedAt %.2f not propagated to metrics (%.2f)", f, res.InjectedAt, res.Metrics.InjectedAtS)
		}
		again := RunMission(cfg)
		if !reflect.DeepEqual(res.Metrics, again.Metrics) {
			t.Errorf("%s: faulted mission not deterministic:\n%+v\n%+v", f, res.Metrics, again.Metrics)
		}
	}
}

func TestSensorFaultPerturbsFlight(t *testing.T) {
	world := sparseWorld()
	golden := RunMission(Config{World: world, Seed: 5})
	nominal := NominalDuration(Config{World: world})
	plan := faultinject.SensorPlan{
		Kind:      faultinject.SensorPosDrift,
		OnsetS:    0.3 * nominal,
		DurationS: nominal,
		Severity:  1,
		Dir:       geom.V(1, 0, 0),
		Seed:      99,
	}
	res := RunMission(Config{World: world, Seed: 5, SensorFault: &plan})
	if !res.Injected {
		t.Fatal("drift fault never fired")
	}
	if res.Metrics == golden.Metrics {
		t.Error("a full-severity position drift left the flight bit-identical to golden")
	}
}

func TestActuatorFaultForcesTimeoutAndWatchdogReplans(t *testing.T) {
	// A near-total thrust loss pins the vehicle below its trajectory: the
	// progress watchdog (stuckTimeoutS) must keep forcing fresh plans, and
	// the unwinnable mission must still end in a bounded Timeout rather
	// than an infinite loop.
	world := sparseWorld()
	nominal := NominalDuration(Config{World: world})
	plan := faultinject.ActuatorPlan{
		Kind:      faultinject.ActuatorThrustLoss,
		OnsetS:    0.2 * nominal,
		DurationS: 10 * nominal,
		Severity:  0.95,
	}
	budget := nominal * 2
	res := RunMission(Config{World: world, Seed: 5, MaxMissionS: budget, ActuatorFault: &plan})
	if res.Outcome != qof.Timeout {
		t.Fatalf("outcome %v (flight %.1fs), want timeout on a %.1fs budget", res.Outcome, res.FlightTimeS, budget)
	}
	if res.FlightTimeS > budget+1 {
		t.Errorf("mission ran past its budget: %.1fs > %.1fs", res.FlightTimeS, budget)
	}
	if res.Plans < 2 {
		t.Errorf("stalled tracking never replanned: %d plans", res.Plans)
	}
}

func TestDetectOnlyCountsAlarmsWithoutRecovery(t *testing.T) {
	// Same corrupted-waypoint mission with and without DetectOnly: both see
	// alarms, only the recovering one spends recomputation time.
	world := sparseWorld()
	gad := TrainGAD(CollectTrainingData(4, 400, platform.I9()), 4)
	nominal := NominalDuration(Config{World: world})
	mk := func(detectOnly bool) Result {
		rng := rand.New(rand.NewSource(8))
		plan := faultinject.NewStatePlan(faultinject.StateWpX, 0.2*nominal, 0.5*nominal, rng)
		plan.Bit = 62 // exponent bit: a gross, detectable corruption
		return RunMission(Config{
			World: world, Seed: 5, StateFault: &plan,
			Detector: gad.Clone(), DetectOnly: detectOnly,
		})
	}
	observe := mk(true)
	recover := mk(false)
	if observe.Alarms == 0 {
		t.Fatal("DetectOnly mission raised no alarms for an exponent waypoint corruption")
	}
	if observe.Recomputes != 0 {
		t.Errorf("DetectOnly mission recomputed %d states", observe.Recomputes)
	}
	if observe.FirstAlarmS <= 0 {
		t.Error("FirstAlarmS not latched on the first alarm")
	}
	if recover.Alarms == 0 || recover.Recomputes == 0 {
		t.Errorf("recovery mission: alarms=%d recomputes=%d, want both > 0", recover.Alarms, recover.Recomputes)
	}
}

func TestDetectionLatencyMetric(t *testing.T) {
	m := qof.Metrics{InjectedAtS: 10, FirstAlarmS: 12.5}
	if lat, ok := m.DetectionLatencyS(); !ok || lat != 2.5 {
		t.Errorf("latency = %.2f, %v; want 2.5, true", lat, ok)
	}
	for _, m := range []qof.Metrics{
		{InjectedAtS: 0, FirstAlarmS: 5},  // nothing fired
		{InjectedAtS: 10, FirstAlarmS: 0}, // never alarmed
		{InjectedAtS: 10, FirstAlarmS: 3}, // false positive before the fault
	} {
		if _, ok := m.DetectionLatencyS(); ok {
			t.Errorf("latency defined for %+v", m)
		}
	}
}
