// Package pipeline wires the full perception–planning–control (PPC) stack
// onto the ROS-like middleware and runs closed-loop missions against the MAV
// simulator: the reproduction of the paper's Fig. 2 system diagram.
//
// One RunMission call is one flight: sensors publish depth/IMU frames, the
// perception kernels build the OctoMap and collision reports, the planning
// kernels produce multi-DOF trajectories, the control kernel issues velocity
// flight commands, MAVFI optionally injects exactly one single-bit fault,
// and the optional anomaly-detection node watches the monitored inter-kernel
// states and triggers stage recomputation on alarms.
//
// Time is fully simulated: kernels charge platform-modelled compute
// latencies to the mission clock (planning stalls the vehicle in a hover
// while it computes), so flight time, energy, and overhead percentages are
// reproducible on any host.
package pipeline

import (
	"math"
	"math/rand"

	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
	"mavfi/internal/sim"
	"mavfi/internal/trace"
)

// PlannerKind selects the motion planner for the planning stage.
type PlannerKind int

const (
	// PlannerRRTStar is the pipeline default (as in MAVBench).
	PlannerRRTStar PlannerKind = iota
	// PlannerRRT is the baseline single-tree planner.
	PlannerRRT
	// PlannerRRTConnect is the bidirectional variant.
	PlannerRRTConnect
)

// String implements fmt.Stringer.
func (k PlannerKind) String() string {
	switch k {
	case PlannerRRT:
		return "RRT"
	case PlannerRRTConnect:
		return "RRTConnect"
	default:
		return "RRT*"
	}
}

// Config describes one mission.
type Config struct {
	// World is the environment to fly (required).
	World *env.World
	// Platform is the companion-computer model (default platform.I9()).
	Platform platform.Platform
	// Planner selects the motion planner.
	Planner PlannerKind
	// Seed drives every stochastic component of the mission.
	Seed int64

	// TickS is the control period (default 0.1 s).
	TickS float64
	// MaxMissionS is the mission time budget (default 180 s); exceeding
	// it is a Timeout failure.
	MaxMissionS float64
	// CruiseAlt is the navigation altitude (default 2.5 m).
	CruiseAlt float64

	// KernelFault, when non-nil, is the instruction-level injection plan
	// (Fig. 3 mode).
	KernelFault *faultinject.Plan
	// StateFault, when non-nil, is the message-level inter-kernel-state
	// injection plan (Fig. 4 mode).
	StateFault *faultinject.StatePlan
	// SensorFault, when non-nil, is the sensor-fault plan: position-estimate
	// bias/drift/stuck-at applied to the IMU fusion output, or depth-camera
	// ray dropout / noise bursts applied to the captured frame.
	SensorFault *faultinject.SensorPlan
	// ActuatorFault, when non-nil, is the actuator-degradation plan applied
	// to the tracker's command output (control.Tracker.Degrade).
	ActuatorFault *faultinject.ActuatorPlan
	// WindFault, when non-nil, adds a deterministic gust velocity offset to
	// the mission's ambient wind over the plan's window.
	WindFault *faultinject.WindPlan
	// Counter, when non-nil, switches the mission into calibration mode:
	// no faults fire, and every kernel's dynamic value count is recorded
	// into the counter for uniform Plan drawing.
	Counter *faultinject.Counter

	// Detector, when non-nil, enables the anomaly detection & recovery
	// node with the given (pre-trained) scheme.
	Detector detect.Detector
	// DetectOnly keeps the detector observing (alarms still count toward
	// Metrics.Alarms and FirstAlarmS) but suppresses recovery actions — the
	// campaign matrix's recovery-off axis, isolating detection coverage
	// from recovery efficacy.
	DetectOnly bool

	// MapSeed, when non-nil, starts the mission's octree from a fork of the
	// golden-map snapshot instead of an empty map (approximate mode: the
	// mission flies with prior knowledge of the world). nil is exact mode —
	// the map is built from scratch, bit-identical to every PR before this
	// machinery existed. Forking an EmptyMapSeed is also exact: the fork
	// path itself is transparent (pinned by the golden-digest seed tests).
	MapSeed *MapSeed
	// NearFieldStride, when > 1, keeps only every Nth near-field ray per
	// scan during octree insertion (rays whose endpoints land within
	// nearFieldFrac of the camera range from the scan origin). Approximate
	// mode: near-sensor voxels are revisited scan after scan, so dropping
	// redundant confirmations cuts insertion work with bounded fidelity
	// cost. 0 or 1 disables subsampling bit-identically.
	NearFieldStride int
	// MemoSkip, when true, skips integrating rays whose endpoint evidence
	// is already clamped in the direction the ray would push it (a hit into
	// a voxel at the upper log-odds clamp, a free endpoint at the lower
	// clamp) — cross-mission memoization: on a map forked from a converged
	// golden seed, re-confirming the prior campaign's evidence is a clamped
	// no-op at the endpoint, so the whole carve is replaced by one memoised
	// lookup. Novel observations (unknown endpoints, evidence disagreeing
	// with the clamp) never match the skip test and integrate in full.
	// Approximate mode; false disables the lever bit-identically.
	MemoSkip bool

	// Record enables trajectory recording into Result.Trace.
	Record bool
	// RecordStates enables per-tick recording of preprocessed monitored-
	// state deltas (training-data collection).
	RecordStates bool
	// Sink, when non-nil, additionally streams the recorded samples to a
	// trace.Sink as they are finalized (implies Record). The mission
	// serializes through the same reserved trace buffer Record uses, so a
	// sink does not change the tick loop's allocation behaviour — and it
	// never perturbs the flight: recording is passive, so a mission runs
	// bit-identically with or without a sink attached.
	Sink trace.Sink
}

// SetFault installs the unified fault plan into the matching Config field
// (a no-op for an empty plan). Existing plans of other families are left
// untouched; campaign layers pass one plan per mission.
func (c *Config) SetFault(p faultinject.FaultPlan) {
	switch {
	case p.Kernel != nil:
		c.KernelFault = p.Kernel
	case p.State != nil:
		c.StateFault = p.State
	case p.Sensor != nil:
		c.SensorFault = p.Sensor
	case p.Actuator != nil:
		c.ActuatorFault = p.Actuator
	case p.Wind != nil:
		c.WindFault = p.Wind
	}
}

// Fault returns the configured fault as a unified plan (empty when the
// mission is nominal). When several family fields are set, the first in
// kernel, state, sensor, actuator, wind order is reported.
func (c Config) Fault() faultinject.FaultPlan {
	return faultinject.FaultPlan{
		Kernel:   c.KernelFault,
		State:    c.StateFault,
		Sensor:   c.SensorFault,
		Actuator: c.ActuatorFault,
		Wind:     c.WindFault,
	}
}

// Normalized returns cfg with every defaulted field resolved to its
// effective value (platform, tick period, mission budget, cruise altitude).
// The mission recorder persists the normalized configuration so a replay
// reconstructs exactly the configuration the recorded mission flew.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Platform.Name == "" {
		c.Platform = platform.I9()
	}
	if c.TickS <= 0 {
		c.TickS = 0.1
	}
	if c.MaxMissionS <= 0 {
		c.MaxMissionS = 180
	}
	if c.CruiseAlt <= 0 {
		c.CruiseAlt = 2.5
	}
	return c
}

// Result is one mission's outcome.
type Result struct {
	qof.Metrics

	// Planner/mission event counts.
	Plans      int // motion-planner invocations
	PlanFails  int // planner invocations that found no path
	Injected   bool
	InjectedAt float64

	// Trace is the recorded trajectory (Record).
	Trace *trace.Trace
	// StateDeltas are the recorded preprocessed monitored-state deltas
	// (RecordStates).
	StateDeltas [][detect.NumStates]float64
}

// CruiseSpeed applies the visual performance model to the platform: the
// vehicle may fly no faster than it can react — a full pipeline response
// time plus a map-update period must fit inside its stopping envelope:
//
//	v·t_react + v²/(2a) ≤ d_effective
//
// Slower platforms (TX2) therefore cruise slower, which is the mechanism
// behind the paper's Fig. 9 platform comparison.
func CruiseSpeed(p platform.Platform, vehicle sim.Params, senseRange, mapPeriodS float64) float64 {
	tr := p.ResponseTimeS() + mapPeriodS
	d := senseRange * 0.6 // keep a safety share of the sensing range
	a := vehicle.MaxAccel
	v := a * (math.Sqrt(tr*tr+2*d/a) - tr)
	if v > vehicle.MaxSpeed {
		v = vehicle.MaxSpeed
	}
	if v < 0.5 {
		v = 0.5
	}
	return v
}

// MapPeriod returns the OctoMap integration period for a platform: the
// nominal 0.5 s cadence, stretched when the platform cannot integrate that
// fast.
func MapPeriod(p platform.Platform) float64 {
	return math.Max(0.5, p.OctoMapS)
}

// NominalDuration estimates the error-free mission duration for cfg, used by
// campaigns to draw injection times that fall inside the flight.
func NominalDuration(cfg Config) float64 {
	cfg = cfg.withDefaults()
	vp := sim.DefaultParams()
	cam := sim.DefaultDepthCamera()
	v := CruiseSpeed(cfg.Platform, vp, cam.MaxRange, MapPeriod(cfg.Platform))
	dist := cfg.World.Start.Dist(cfg.World.Goal)
	return cfg.CruiseAlt/1.2 + dist/v*1.6 // takeoff + path with detour slack
}

// missionRNGs derives independent deterministic streams for each stochastic
// component so that, e.g., enabling sensor noise recording does not perturb
// planner sampling.
func missionRNGs(seed int64) (sensor, planner *rand.Rand) {
	return rand.New(rand.NewSource(seed*2654435761 + 1)),
		rand.New(rand.NewSource(seed*40503 + 2))
}
