package pipeline_test

import (
	"math/rand"
	"sync"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/pipeline"
)

// TestEmptySeedReproducesGoldenDigests is the exact-mode gate for the fork
// machinery itself: every golden mission, re-run with MapSeed set to an
// *empty* golden map (a fork of octomap.New, repeatedly recycled through the
// seed's pool), must reproduce its pinned digest bit-for-bit. This proves
// Snapshot/Fork/ForkInto and the pool add nothing and lose nothing — the
// only thing a real seed changes is the map content it starts from.
func TestEmptySeedReproducesGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every golden mission twice-equivalent work")
	}
	seeds := map[string]*pipeline.MapSeed{} // one per world, shared across cases
	for name, cfg := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			s, ok := seeds[cfg.World.Name]
			if !ok {
				s = pipeline.EmptyMapSeed(cfg.World)
				seeds[cfg.World.Name] = s
			}
			cfg.MapSeed = s
			// Run twice so the second mission forks into the first's pooled
			// arena — the recycled-tree path is the one campaigns live on.
			digestMission(pipeline.RunMission(cfg))
			got := digestMission(pipeline.RunMission(cfg))
			if want := goldenDigests[name]; got != want {
				t.Errorf("empty-seed mission diverged from golden: got 0x%016x, want 0x%016x", got, want)
			}
		})
	}
}

// TestZeroStrideBitIdentical pins that NearFieldStride 0 and 1 are both
// exactly the off switch: digests match the unstrided mission bit-for-bit.
func TestZeroStrideBitIdentical(t *testing.T) {
	cfg := pipeline.Config{World: env.Sparse(rand.New(rand.NewSource(42))), Seed: 1}
	base := digestMission(pipeline.RunMission(cfg))
	for _, stride := range []int{0, 1} {
		c := cfg
		c.NearFieldStride = stride
		if got := digestMission(pipeline.RunMission(c)); got != base {
			t.Errorf("stride %d changed the mission: got 0x%016x, want 0x%016x", stride, got, base)
		}
	}
}

// TestSeededMissionDeterministic pins approximate-mode reproducibility: the
// same built seed (and the same stride) always yields the same mission,
// whether the tree comes from a fresh fork, a recycled pool arena, or a
// different MapSeed value built from the same world.
func TestSeededMissionDeterministic(t *testing.T) {
	w := env.Sparse(rand.New(rand.NewSource(42)))
	seedA, seedB := pipeline.BuildMapSeed(w), pipeline.BuildMapSeed(w)
	if seedA.Digest() != seedB.Digest() {
		t.Fatal("BuildMapSeed is not deterministic for a fixed world")
	}
	cfg := pipeline.Config{World: w, Seed: 3, MapSeed: seedA, NearFieldStride: 2}
	first := digestMission(pipeline.RunMission(cfg))
	second := digestMission(pipeline.RunMission(cfg)) // pooled arena
	cfg.MapSeed = seedB
	third := digestMission(pipeline.RunMission(cfg)) // independent seed value
	if first != second || first != third {
		t.Errorf("seeded mission not deterministic: %016x / %016x / %016x", first, second, third)
	}
}

// TestSeededMissionsParallelDeterministic pins worker-width independence at
// the pipeline level: many missions sharing one MapSeed concurrently (so
// pool arenas are handed out in racy orders) must each match their serial
// digest. This is the property the campaign CSV byte-identity gate rests on.
func TestSeededMissionsParallelDeterministic(t *testing.T) {
	w := env.Sparse(rand.New(rand.NewSource(42)))
	seed := pipeline.BuildMapSeed(w)
	missionSeeds := []int64{1, 2, 3, 9}
	serial := make([]uint64, len(missionSeeds))
	for i, ms := range missionSeeds {
		serial[i] = digestMission(pipeline.RunMission(pipeline.Config{World: w, Seed: ms, MapSeed: seed}))
	}
	parallel := make([]uint64, len(missionSeeds))
	var wg sync.WaitGroup
	for i, ms := range missionSeeds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parallel[i] = digestMission(pipeline.RunMission(pipeline.Config{World: w, Seed: ms, MapSeed: seed}))
		}()
	}
	wg.Wait()
	for i := range missionSeeds {
		if parallel[i] != serial[i] {
			t.Errorf("seed %d: parallel digest %016x != serial %016x", missionSeeds[i], parallel[i], serial[i])
		}
	}
}

// TestMapSeedRejectsWrongWorld pins the geometry guard on both construction
// and use.
func TestMapSeedRejectsWrongWorld(t *testing.T) {
	sparse := env.Sparse(rand.New(rand.NewSource(42)))
	if _, err := pipeline.NewMapSeed(env.Factory(), pipeline.BuildMapSeed(sparse).Snapshot()); err == nil {
		t.Error("NewMapSeed accepted a snapshot from a different world")
	}
	defer func() {
		if recover() == nil {
			t.Error("RunMission accepted a MapSeed built for a different world")
		}
	}()
	pipeline.RunMission(pipeline.Config{World: env.Factory(), Seed: 1, MapSeed: pipeline.BuildMapSeed(sparse)})
}
