package pipeline

import (
	"math/rand"

	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/platform"
)

// CollectTrainingData flies nEnvs error-free missions through randomised
// training environments (the paper's "hundred of error-free randomized
// environments") and returns the recorded preprocessed monitored-state
// deltas — the training corpus for both detectors.
func CollectTrainingData(nEnvs int, seed int64, p platform.Platform) [][detect.NumStates]float64 {
	rng := rand.New(rand.NewSource(seed))
	var data [][detect.NumStates]float64
	for i := 0; i < nEnvs; i++ {
		w := env.Training(i, rng)
		res := RunMission(Config{
			World:        w,
			Platform:     p,
			Seed:         seed + int64(i)*7919,
			RecordStates: true,
		})
		data = append(data, res.StateDeltas...)
	}
	return data
}

// TrainGAD fits a fresh Gaussian detector on the training corpus.
func TrainGAD(data [][detect.NumStates]float64, nSigma float64) *detect.GAD {
	g := detect.NewGAD(nSigma)
	for _, d := range data {
		g.Train(d)
	}
	return g
}

// TrainAAD fits a fresh autoencoder detector on the training corpus.
func TrainAAD(data [][detect.NumStates]float64, cfg detect.AADConfig, seed int64) *detect.AAD {
	rng := rand.New(rand.NewSource(seed))
	a := detect.NewAAD(cfg, rng)
	a.Train(data, cfg, rng)
	return a
}
