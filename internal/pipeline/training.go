package pipeline

import (
	"context"
	"math/rand"

	"mavfi/internal/campaign"
	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/platform"
)

// CollectTrainingData flies nEnvs error-free missions through randomised
// training environments (the paper's "hundred of error-free randomized
// environments") and returns the recorded preprocessed monitored-state
// deltas — the training corpus for both detectors. It runs on a default
// campaign pool; use CollectTrainingDataOn to share a caller's pool and
// cancellation context.
func CollectTrainingData(nEnvs int, seed int64, p platform.Platform) [][detect.NumStates]float64 {
	data, _ := CollectTrainingDataOn(context.Background(), campaign.New(), nEnvs, seed, p)
	return data
}

// CollectTrainingDataOn is CollectTrainingData on the caller's worker pool.
// The worlds are generated up front (they consume a shared RNG), then the
// missions fan out; per-environment recordings are concatenated in
// environment order, so the corpus is byte-identical to a sequential
// collection for any worker count. On cancellation it returns the partial
// corpus together with ctx's error — do not train detectors on a partial
// corpus.
func CollectTrainingDataOn(ctx context.Context, r *campaign.Runner, nEnvs int, seed int64, p platform.Platform) ([][detect.NumStates]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	worlds := make([]*env.World, nEnvs)
	for i := range worlds {
		worlds[i] = env.Training(i, rng)
	}
	chunks := make([][][detect.NumStates]float64, nEnvs)
	err := r.ForEach(ctx, nEnvs, func(i int) {
		res := RunMission(Config{
			World:        worlds[i],
			Platform:     p,
			Seed:         seed + int64(i)*7919,
			RecordStates: true,
		})
		chunks[i] = res.StateDeltas
	})
	var data [][detect.NumStates]float64
	for _, c := range chunks {
		data = append(data, c...)
	}
	return data, err
}

// TrainGAD fits a fresh Gaussian detector on the training corpus.
func TrainGAD(data [][detect.NumStates]float64, nSigma float64) *detect.GAD {
	g := detect.NewGAD(nSigma)
	for _, d := range data {
		g.Train(d)
	}
	return g
}

// TrainAAD fits a fresh autoencoder detector on the training corpus.
func TrainAAD(data [][detect.NumStates]float64, cfg detect.AADConfig, seed int64) *detect.AAD {
	rng := rand.New(rand.NewSource(seed))
	a := detect.NewAAD(cfg, rng)
	a.Train(data, cfg, rng)
	return a
}
