package pipeline

import (
	"fmt"
	"math/rand"
	"sync"

	"mavfi/internal/env"
	"mavfi/internal/octomap"
	"mavfi/internal/pointcloud"
	"mavfi/internal/sim"
)

// mapResolution is the octree voxel resolution every mission flies at; the
// seed machinery validates snapshots against it so a fork can never silently
// change the map geometry a mission sees.
const mapResolution = 0.5

// seedConfirm is how many times BuildMapSeed re-inserts each sweep scan.
// Five consistent observations drive a voxel from unknown to either clamp
// (5 misses = 5·logit(0.4) ≤ ClampMin, 5 hits = 5·logit(0.7) ≥ ClampMax),
// so the golden map is a full-confidence prior: everything the sweep saw is
// clamped, which is exactly what lets the MemoSkip lever elide re-carving
// it. Without the confirmation passes most seed voxels sit between the
// clamps and every mission re-pays their integration cost.
const seedConfirm = 5

// nearFieldFrac bounds the "near field" for NearFieldStride subsampling:
// rays whose endpoints land within this fraction of the camera's range of
// the scan origin revisit the same few voxels scan after scan, which is
// what makes dropping them cheap in fidelity terms.
const nearFieldFrac = 0.3

// MapSeed is an immutable golden-map snapshot for one world plus a pool of
// recycled octrees to fork it into. Campaigns build one seed per world and
// share it across every mission of a cell: mission start becomes a memcpy
// of the node slab instead of a from-scratch mapping pass.
//
// A MapSeed is safe for concurrent use by any number of missions. Identity
// holds at any worker width because ForkInto fully resets the recycled
// tree's semantic state — which arena a mission happens to draw from the
// pool is unobservable (pinned by the octomap fork equivalence suite).
type MapSeed struct {
	snap *octomap.Snapshot
	pool sync.Pool
}

// NewMapSeed wraps snap as the golden seed for world w, rejecting snapshots
// whose geometry does not match the octree a mission of w would build.
func NewMapSeed(w *env.World, snap *octomap.Snapshot) (*MapSeed, error) {
	if !snap.Matches(w.Bounds, mapResolution) {
		return nil, fmt.Errorf("pipeline: map seed geometry does not match world %q", w.Name)
	}
	return &MapSeed{snap: snap}, nil
}

// EmptyMapSeed returns a seed holding an empty map of w: forking it is
// semantically identical to octomap.New, which makes it the exact-mode
// reference point the golden-digest transparency tests pin.
func EmptyMapSeed(w *env.World) *MapSeed {
	s, err := NewMapSeed(w, octomap.New(w.Bounds, mapResolution, octomap.DefaultParams()).Snapshot())
	if err != nil {
		panic(err) // unreachable: the snapshot is built from w itself
	}
	return s
}

// Snapshot returns the seed's immutable snapshot (for persistence).
func (s *MapSeed) Snapshot() *octomap.Snapshot { return s.snap }

// Digest returns the seed map's content digest.
func (s *MapSeed) Digest() uint64 { return s.snap.Digest() }

// acquire forks the golden map into a pooled (or fresh) tree.
func (s *MapSeed) acquire() *octomap.Tree {
	if t, ok := s.pool.Get().(*octomap.Tree); ok {
		s.snap.ForkInto(t)
		return t
	}
	return s.snap.Fork()
}

// release returns a mission's tree to the pool for the next fork.
func (s *MapSeed) release(t *octomap.Tree) {
	if t != nil {
		s.pool.Put(t)
	}
}

// BuildMapSeed precomputes a golden map for w: one deterministic mapping
// pass — depth captures through the real perception kernels from a sweep of
// poses along the start→goal line at cruise altitude, four yaws per pose —
// snapshotted as the seed every mission of the world forks. The sweep is
// the same shape the planner bench uses and costs a few milliseconds, far
// cheaper than flying a mission; its RNG is fixed (sensor noise only), so
// the same world always yields the same seed digest.
func BuildMapSeed(w *env.World) *MapSeed {
	tree := octomap.New(w.Bounds, mapResolution, octomap.DefaultParams())
	cam := sim.DefaultDepthCamera()
	gen := pointcloud.NewGenerator()
	rng := rand.New(rand.NewSource(7))
	frame := &sim.DepthImage{}
	cloud := &pointcloud.Cloud{}
	var scan []octomap.RayPoint
	for i := 0; i < 12; i++ {
		f := float64(i) / 11
		pos := w.Start.Lerp(w.Goal, f)
		pos.Z = 2.5
		for _, yaw := range []float64{0, 1.6, 3.1, 4.7} {
			cam.CaptureInto(frame, w, pos, yaw, rng)
			gen.GenerateInto(cloud, frame, nil)
			scan = scan[:0]
			for _, p := range cloud.Points {
				scan = append(scan, octomap.RayPoint{End: p.P, Hit: p.Hit})
			}
			for rep := 0; rep < seedConfirm; rep++ {
				tree.InsertCloud(cloud.Origin, scan)
			}
		}
	}
	s, err := NewMapSeed(w, tree.Snapshot())
	if err != nil {
		panic(err) // unreachable: the tree is built from w itself
	}
	return s
}
