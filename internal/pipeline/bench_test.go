package pipeline

import (
	"math/rand"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/geom"
	"mavfi/internal/octomap"
	"mavfi/internal/planning"
	"mavfi/internal/pointcloud"
	"mavfi/internal/sim"
)

// benchPlannerSetup builds the exact planner-facing stack a mission uses —
// an OctoMap populated by real depth scans through the perception kernels,
// wrapped in the altitude-banded mapAdapter — so BenchmarkPlan measures the
// planner against the same map query path RunMission exercises.
func benchPlannerSetup(b *testing.B) (*planning.RRTStar, *mapAdapter, geom.Vec3, geom.Vec3) {
	b.Helper()
	w := env.Sparse(rand.New(rand.NewSource(42)))
	tree := octomap.New(w.Bounds, 0.5, octomap.DefaultParams())
	cam := sim.DefaultDepthCamera()
	gen := pointcloud.NewGenerator()
	rng := rand.New(rand.NewSource(7))
	frame := &sim.DepthImage{}
	cloud := &pointcloud.Cloud{}
	var scan []octomap.RayPoint
	// Map the world from a sweep of poses along the start→goal line, as the
	// mission's map cadence would.
	for i := 0; i < 12; i++ {
		f := float64(i) / 11
		pos := w.Start.Lerp(w.Goal, f)
		pos.Z = 2.5
		for _, yaw := range []float64{0, 1.6, 3.1, 4.7} {
			cam.CaptureInto(frame, w, pos, yaw, rng)
			gen.GenerateInto(cloud, frame, nil)
			scan = scan[:0]
			for _, p := range cloud.Points {
				scan = append(scan, octomap.RayPoint{End: p.P, Hit: p.Hit})
			}
			tree.InsertCloud(cloud.Origin, scan)
		}
	}
	adapter := &mapAdapter{
		tree:   tree,
		policy: octomap.QueryPolicy{UnknownIsFree: true, Radius: 0.5},
		zMin:   1.2,
		zMax:   w.Bounds.Max.Z - 1,
	}
	start := geom.V(w.Start.X, w.Start.Y, 2.5)
	goal := geom.V(w.Goal.X, w.Goal.Y, 2.5)
	return planning.NewRRTStar(planning.DefaultConfig(w.Bounds)), adapter, start, goal
}

// BenchmarkPlan measures one RRT* invocation over a scan-built map — the
// planning-stage unit cost the PR3 DDA queries and per-plan voxel cache
// target (compare BenchmarkMission for the mission-level effect).
func BenchmarkPlan(b *testing.B) {
	p, adapter, start, goal := benchPlannerSetup(b)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(start, goal, adapter, rng); err != nil {
			b.Fatal(err)
		}
	}
}
