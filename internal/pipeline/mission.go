package pipeline

import (
	"math"
	"math/rand"

	"mavfi/internal/control"
	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/geom"
	"mavfi/internal/octomap"
	"mavfi/internal/perception"
	"mavfi/internal/planning"
	"mavfi/internal/pointcloud"
	"mavfi/internal/qof"
	"mavfi/internal/ros"
	"mavfi/internal/sim"
	"mavfi/internal/trace"
)

// mapAdapter exposes the OctoMap to the motion planners through the
// planning.CollisionChecker interface, restricted to the planning altitude
// band. It also implements planning.PlanCacher: the first Plan invocation
// arms the tree's per-voxel classification cache, which then serves every
// collision probe — planner and perception alike — until the next scan
// integration invalidates it (the cache is keyed on the tree's mutation
// counter, so the "map cannot mutate mid-plan" invariant is enforced rather
// than assumed).
type mapAdapter struct {
	tree   *octomap.Tree
	policy octomap.QueryPolicy
	zMin   float64
	zMax   float64
}

// BeginPlan implements planning.PlanCacher.
func (a *mapAdapter) BeginPlan() {
	a.tree.EnableClassCache()
}

func (a *mapAdapter) PointFree(p geom.Vec3) bool {
	if p.Z < a.zMin || p.Z > a.zMax {
		return false
	}
	return a.tree.PointFree(p, a.policy)
}

func (a *mapAdapter) SegmentFree(p, q geom.Vec3) bool {
	if p.Z < a.zMin || p.Z > a.zMax || q.Z < a.zMin || q.Z > a.zMax {
		return false
	}
	return a.tree.SegmentFree(p, q, a.policy)
}

// runner holds the full closed-loop mission state: the ROS graph, kernels,
// simulator, injectors, and detector bookkeeping.
type runner struct {
	cfg   Config
	world *env.World

	// Simulator.
	mav     *sim.MAV
	camera  sim.DepthCamera
	imu     *sim.IMU
	power   sim.PowerModel
	battery *sim.Battery

	// Kernels.
	tree    *octomap.Tree
	adapter *mapAdapter
	pcgen   *pointcloud.Generator
	checker *perception.Checker
	motion  planning.Planner
	smooth  *planning.Smoother
	tracker *control.Tracker
	mission *planning.Mission

	// Middleware.
	graph   *ros.Graph
	depthT  *ros.Topic[*sim.DepthImage]
	imuT    *ros.Topic[sim.IMUReading]
	cloudT  *ros.Topic[*pointcloud.Cloud]
	reportT *ros.Topic[perception.Report]
	trajT   *ros.Topic[*planning.Trajectory]
	wpT     *ros.Topic[waypointMsg]
	cmdT    *ros.Topic[sim.VelocityCmd]

	// Fault injection. kInj/sInj are the paper's compute-fault injectors;
	// senInj/actInj/windInj are the zoo's physical-fault injectors (all
	// nil-safe opt-ins: a nominal mission takes bit-identical paths).
	kInj    *faultinject.Injector
	sInj    *faultinject.StateInjector
	senInj  *faultinject.SensorInjector
	actInj  *faultinject.ActuatorInjector
	windInj *faultinject.WindInjector

	// Detection.
	prep     detect.Preprocessor
	suppress int // ticks to skip detection after legitimate discontinuities

	// Mission state.
	t           float64
	tick        float64
	cruise      float64
	mapPeriod   float64
	nextMapT    float64
	busyUntil   float64 // compute stall: vehicle hovers while kernels run
	lastPlanT   float64
	forceReplan bool
	planPending bool // replan decided this tick, executes next tick unless
	// a detector recovery vetoes it (detection latency beats planner start)

	// Progress watchdog: a replan fires when trajectory progress stalls
	// (e.g. the tracker oscillates around a corrupted way-point).
	lastProgressT float64
	lastNearest   int

	curTraj    *planning.Trajectory
	trajGen    int // trajectory generation counter, guards stale restores
	lastReport perception.Report
	goodReport perception.Report
	goodTarget planning.Waypoint
	goodGen    int
	hasGood    bool
	curTarget  planning.Waypoint
	curTargetI int
	hasTarget  bool

	windBase geom.Vec3

	// nearRadius is the near-field radius for NearFieldStride ray
	// subsampling (0 when the stride is off; InsertCloudApprox ignores
	// it at stride <= 1).
	nearRadius float64

	// Per-mission scratch buffers for the perception hot path: the depth
	// frame, the generated cloud, the octree scan batch, and the remaining-
	// trajectory positions are reused every tick, keeping the steady-state
	// loop allocation-free. One set per mission (not shared) so PR 1's
	// parallel campaign workers never race on them.
	frame   *sim.DepthImage
	cloud   *pointcloud.Cloud
	scanBuf []octomap.RayPoint
	posBuf  []geom.Vec3

	rngs struct {
		sensor, planner *rand.Rand
	}

	acct qof.Metrics
	res  Result
	trc  *trace.Trace
	// sinkFlushed counts the trace samples already streamed to cfg.Sink.
	// Samples are streamed only once finalized (no later MarkEvent can
	// touch them): everything up to but excluding the newest sample before
	// the next Add, and the remainder at mission end. See trace.Sink.
	sinkFlushed int
	deltas      [][detect.NumStates]float64
}

// waypointMsg is the "Multidoftraj" stream message: the pursued way-point
// plus its trajectory index (so interceptors can write corruption back into
// the trajectory, where the inter-kernel state actually lives).
type waypointMsg struct {
	WP    planning.Waypoint
	Index int
}

// RunMission flies one complete mission under cfg and returns its QoF
// metrics and bookkeeping.
func RunMission(cfg Config) Result {
	r := newRunner(cfg)
	return r.run()
}

func newRunner(cfg Config) *runner {
	cfg = cfg.withDefaults()
	r := &runner{cfg: cfg, world: cfg.World, tick: cfg.TickS}
	r.rngs.sensor, r.rngs.planner = missionRNGs(cfg.Seed)

	vp := sim.DefaultParams()
	r.mav = sim.NewMAV(cfg.World, vp)
	r.camera = sim.DefaultDepthCamera()
	r.imu = sim.DefaultIMU()
	r.power = sim.DefaultPowerModel()
	r.power.ComputeW = cfg.Platform.PowerW
	r.battery = sim.NewBattery(0)

	r.mapPeriod = MapPeriod(cfg.Platform)
	r.cruise = CruiseSpeed(cfg.Platform, vp, r.camera.MaxRange, r.mapPeriod)

	if cfg.MapSeed != nil {
		// Approximate mode: start from a fork of the world's golden map
		// (a memcpy of the node slab) instead of an empty octree. The fork
		// is released back to the seed's pool in finish.
		r.tree = cfg.MapSeed.acquire()
		if !cfg.MapSeed.snap.Matches(cfg.World.Bounds, mapResolution) {
			panic("pipeline: MapSeed world geometry does not match cfg.World")
		}
	} else {
		r.tree = octomap.New(cfg.World.Bounds, mapResolution, octomap.DefaultParams())
	}
	if cfg.NearFieldStride > 1 {
		r.nearRadius = nearFieldFrac * r.camera.MaxRange
	}
	r.adapter = &mapAdapter{
		tree:   r.tree,
		policy: octomap.QueryPolicy{UnknownIsFree: true, Radius: vp.Radius + 0.2},
		zMin:   1.2,
		zMax:   math.Min(cfg.World.Bounds.Max.Z-1, cfg.CruiseAlt+2.5),
	}
	r.pcgen = pointcloud.NewGenerator()
	r.checker = perception.NewChecker(vp.Radius)
	r.frame = &sim.DepthImage{}
	r.cloud = &pointcloud.Cloud{}

	pcfg := planning.DefaultConfig(cfg.World.Bounds)
	switch cfg.Planner {
	case PlannerRRT:
		r.motion = planning.NewRRT(pcfg)
	case PlannerRRTConnect:
		r.motion = planning.NewRRTConnect(pcfg)
	default:
		r.motion = planning.NewRRTStar(pcfg)
	}
	r.smooth = planning.NewSmoother(r.cruise)
	// The command clamp is the platform's safe cruise speed (visual
	// performance model): a slower companion computer may not fly as fast
	// as the airframe allows, because it could no longer stop within its
	// sensing envelope.
	r.tracker = control.NewTracker(r.cruise)
	r.mission = planning.NewMission(cfg.World.Goal, cfg.CruiseAlt, cfg.World.GoalTolerance)

	if cfg.KernelFault != nil {
		r.kInj = faultinject.NewInjector(*cfg.KernelFault)
	} else {
		r.kInj = faultinject.NewInjector(faultinject.Plan{})
	}
	if cfg.StateFault != nil {
		r.sInj = faultinject.NewStateInjector(*cfg.StateFault)
	}
	if cfg.SensorFault != nil {
		r.senInj = faultinject.NewSensorInjector(*cfg.SensorFault)
	}
	if cfg.ActuatorFault != nil {
		r.actInj = faultinject.NewActuatorInjector(*cfg.ActuatorFault)
		// Install the degradation at the command-issue output: it models
		// the airframe's actuators, so it applies to tracker commands (the
		// only ones with authority to degrade; hover/brake commands are
		// zero-velocity).
		r.tracker.Degrade = r.actInj.Degrade
	}
	if cfg.WindFault != nil {
		r.windInj = faultinject.NewWindInjector(*cfg.WindFault)
	}
	// Recording buffers are reserved to the mission tick budget up front
	// (the loop terminates at MaxMissionS, so they can never grow past it):
	// the per-tick Add/append paths then stay allocation-free, extending the
	// zero-alloc steady-state property to recorded missions.
	if cfg.Record || cfg.Sink != nil {
		r.trc = &trace.Trace{}
		r.trc.Reserve(r.tickBudget())
	}
	if cfg.RecordStates {
		r.deltas = make([][detect.NumStates]float64, 0, r.tickBudget())
	}

	// Per-mission ambient wind: a constant horizontal component plus
	// per-tick gusts, the physical variability that spreads golden flight
	// times (seeded, so campaigns stay reproducible).
	dir := r.rngs.sensor.Float64() * 2 * math.Pi
	mag := r.rngs.sensor.Float64() * 0.7
	r.windBase = geom.V(math.Cos(dir)*mag, math.Sin(dir)*mag, 0)

	r.buildGraph()
	return r
}

// tickBudget returns the maximum number of ticks a mission can run (the
// loop exits once r.t reaches MaxMissionS), plus slack for the terminal
// tick: the exact capacity the per-tick recording buffers need.
func (r *runner) tickBudget() int {
	return int(r.cfg.MaxMissionS/r.tick) + 2
}

// hook returns the fault hook for kernel k: the counting hook in
// calibration mode, otherwise the injector's (possibly nil) corruption hook.
func (r *runner) hook(k faultinject.Kernel) func(float64) float64 {
	if r.cfg.Counter != nil {
		return r.cfg.Counter.Hook(k)
	}
	return r.kInj.Hook(k)
}

// buildGraph assembles the ROS node/topic graph of Fig. 2 and installs the
// MAVFI interceptors.
func (r *runner) buildGraph() {
	g := ros.NewGraph()
	r.graph = g

	sensorN := g.NewNode("airsim_interface")
	pcgenN := g.NewNode("point_cloud_generation")
	mapN := g.NewNode("octomap_generation")
	colN := g.NewNode("collision_check")
	planN := g.NewNode("motion_planner")
	ctrlN := g.NewNode("path_tracking")
	mavfiN := g.NewNode("mavfi")
	_ = sensorN
	_ = mavfiN

	r.depthT = ros.OpenTopic[*sim.DepthImage](g, "/airsim/depth")
	r.imuT = ros.OpenTopic[sim.IMUReading](g, "/airsim/imu")
	r.cloudT = ros.OpenTopic[*pointcloud.Cloud](g, "/perception/point_cloud")
	r.reportT = ros.OpenTopic[perception.Report](g, "/perception/collision")
	r.trajT = ros.OpenTopic[*planning.Trajectory](g, "/planning/multidoftraj")
	r.wpT = ros.OpenTopic[waypointMsg](g, "/planning/waypoint")
	r.cmdT = ros.OpenTopic[sim.VelocityCmd](g, "/control/flight_command")

	// Perception chain: depth → point cloud → OctoMap. Both kernels render
	// into per-mission scratch (r.cloud, r.scanBuf): delivery is synchronous
	// and no subscriber retains the message, so the buffers are free again
	// by the time the next frame arrives.
	r.depthT.Subscribe(pcgenN, func(img *sim.DepthImage) {
		r.pcgen.GenerateInto(r.cloud, img, r.hook(faultinject.KernelPCGen))
		r.cloud.T = r.t
		r.acct.ComputeS += r.cfg.Platform.PCGenS
		r.cloudT.Publish(r.cloud)
	})
	r.cloudT.Subscribe(mapN, func(c *pointcloud.Cloud) {
		hook := r.hook(faultinject.KernelOctoMap)
		r.scanBuf = r.scanBuf[:0]
		for _, p := range c.Points {
			pt := p.P
			if hook != nil {
				pt = geom.V(hook(pt.X), hook(pt.Y), hook(pt.Z))
			}
			r.scanBuf = append(r.scanBuf, octomap.RayPoint{End: pt, Hit: p.Hit})
		}
		// The approximate levers apply inside the insertion call, after
		// the fault hook has seen every point — an approximate mission's
		// kernel dynamic-value counts (and so its calibrated fault
		// indices) are identical to the exact mission's.
		r.tree.InsertCloudApprox(c.Origin, r.scanBuf, r.nearRadius, r.cfg.NearFieldStride, r.cfg.MemoSkip)
		r.acct.ComputeS += r.cfg.Platform.OctoMapS
	})

	// Collision reports flow to the planner node (stored state).
	r.reportT.Subscribe(planN, func(rep perception.Report) {
		r.lastReport = rep
	})
	_ = colN

	// Trajectories install into the tracker. No detection suppression is
	// needed here: the sign+exponent preprocessing makes legitimate replan
	// discontinuities nearly invisible (way-point magnitudes stay in the
	// same exponent range), while fault-induced jumps cross exponents.
	r.trajT.Subscribe(ctrlN, func(tr *planning.Trajectory) {
		r.curTraj = tr
		r.trajGen++
		r.tracker.SetTrajectory(tr)
		r.lastNearest = 0
		r.lastProgressT = r.t
	})

	// MAVFI message-level injection (Fig. 4 mode): interceptors corrupt
	// inter-kernel states in transit.
	if r.sInj != nil {
		r.reportT.Intercept(func(rep perception.Report) (perception.Report, bool) {
			rep.TimeToCollision = r.sInj.Corrupt(faultinject.StateTimeToCollision, rep.TimeToCollision)
			rep.FutureCollisionSeq = r.sInj.Corrupt(faultinject.StateFutureColSeq, rep.FutureCollisionSeq)
			return rep, false
		})
		r.wpT.Intercept(func(m waypointMsg) (waypointMsg, bool) {
			m.WP.Pos.X = r.sInj.Corrupt(faultinject.StateWpX, m.WP.Pos.X)
			m.WP.Pos.Y = r.sInj.Corrupt(faultinject.StateWpY, m.WP.Pos.Y)
			m.WP.Pos.Z = r.sInj.Corrupt(faultinject.StateWpZ, m.WP.Pos.Z)
			m.WP.Yaw = r.sInj.Corrupt(faultinject.StateWpYaw, m.WP.Yaw)
			m.WP.Vel.X = r.sInj.Corrupt(faultinject.StateVelX, m.WP.Vel.X)
			m.WP.Vel.Y = r.sInj.Corrupt(faultinject.StateVelY, m.WP.Vel.Y)
			m.WP.Vel.Z = r.sInj.Corrupt(faultinject.StateVelZ, m.WP.Vel.Z)
			return m, false
		})
	}

	// The way-point stream feeds back into the tracker: corruption in
	// transit persists in the trajectory until the way-point is passed or
	// replaced (write-back).
	r.wpT.Subscribe(ctrlN, func(m waypointMsg) {
		r.curTarget = m.WP
		r.curTargetI = m.Index
		r.hasTarget = true
		r.tracker.SetWaypoint(m.Index, m.WP)
	})
}

// run executes the mission loop to termination.
func (r *runner) run() Result {
	injectedSeen := false
	for {
		r.t += r.tick
		r.kInj.SetTime(r.t)
		if r.sInj != nil {
			r.sInj.SetTime(r.t)
		}
		if r.senInj != nil {
			r.senInj.SetTime(r.t)
		}
		if r.actInj != nil {
			r.actInj.SetTime(r.t)
		}
		if r.windInj != nil {
			r.windInj.SetTime(r.t)
		}

		gust := geom.V(r.rngs.sensor.NormFloat64()*0.15, r.rngs.sensor.NormFloat64()*0.15, 0)
		wind := r.windBase.Add(gust)
		if r.windInj != nil {
			// Environment disturbance: the deterministic gust offset rides
			// on top of the mission's ambient wind.
			wind = wind.Add(r.windInj.Offset(r.t))
		}
		r.mav.SetWind(wind)

		st := r.mav.State()
		reading := r.imu.Read(st, r.rngs.sensor)
		// est is the state the PPC stack navigates by: ground truth, except
		// under a position-sensor fault, where perception, planning, and
		// control all fly on the corrupted estimate while the physics step,
		// the camera pose, and the success/crash oracles stay ground-truth —
		// only the vehicle's belief lies.
		est := st
		if r.senInj != nil {
			reading.Pos = r.senInj.CorruptPos(reading.Pos)
			est.Pos = r.senInj.CorruptPos(st.Pos)
		}
		r.imuT.Publish(reading)

		// Execute a replan decided last tick (and not vetoed by the
		// detector's recovery in between).
		if r.planPending && r.t >= r.busyUntil {
			r.planPending = false
			r.runPlanner(est, false)
		}

		r.senseAndMap(st)
		phase := r.mission.Update(st.Pos)
		r.perceive(est, phase)
		r.maybePlan(est, phase)
		cmd := r.command(est, phase)
		r.cmdT.Publish(cmd)
		cmd = r.detectAndRecover(est, phase, reading, cmd)

		r.mav.Step(cmd, r.tick)
		watts := r.power.Power(r.mav.State().Vel)
		r.battery.Drain(watts, r.tick)
		r.acct.EnergyJ += watts * r.tick

		if r.trc != nil {
			// Every event tag this tick could attach to the previous
			// sample has fired by now, so everything before the new
			// sample is final and can stream to the sink.
			r.flushSink(len(r.trc.Samples))
			s := r.mav.State()
			r.trc.Add(trace.Sample{T: s.T, Pos: s.Pos, Vel: s.Vel, Yaw: s.Yaw})
			if !injectedSeen && r.faultFired() {
				injectedSeen = true
				r.trc.MarkEvent("inject")
			}
		}

		if done, outcome := r.terminal(); done {
			return r.finish(outcome)
		}
	}
}

// flushSink streams trace samples [sinkFlushed, upto) to the configured
// sink. Serialization reads straight out of the reserved trace buffer, so a
// recorded mission's tick loop stays allocation-free (the sink's own
// contract keeps its side of the call cheap; see trace.Sink).
func (r *runner) flushSink(upto int) {
	if r.cfg.Sink == nil {
		return
	}
	for ; r.sinkFlushed < upto; r.sinkFlushed++ {
		r.cfg.Sink.Append(r.trc.Samples[r.sinkFlushed])
	}
}

// senseAndMap captures a depth frame and integrates it on the map cadence.
func (r *runner) senseAndMap(st sim.State) {
	if r.t < r.nextMapT {
		return
	}
	r.nextMapT = r.t + r.mapPeriod
	r.camera.CaptureInto(r.frame, r.world, st.Pos, st.Yaw, r.rngs.sensor)
	if r.senInj != nil {
		// Sensor fault, depth channel: mutate the captured frame before it
		// enters the perception chain. The injector draws from its own plan
		// seed, so the mission RNG streams are unperturbed.
		r.senInj.CorruptDepths(r.frame.Depth, r.frame.MaxRange)
	}
	r.depthT.Publish(r.frame) // → point cloud → OctoMap, synchronously
}

// perceive runs the collision-check kernel each tick once airborne.
func (r *runner) perceive(st sim.State, phase planning.MissionPhase) {
	if phase == planning.PhaseTakeoff {
		return
	}
	var remaining []geom.Vec3
	if r.curTraj != nil {
		r.posBuf = r.curTraj.AppendPositions(r.posBuf[:0])
		i := r.tracker.NearestIndex()
		if i < len(r.posBuf) {
			remaining = r.posBuf[i:]
		}
	}
	rep := r.checker.Check(r.tree, st.Pos, st.Vel, remaining, r.hook(faultinject.KernelColCheck))
	rep.T = r.t
	r.acct.ComputeS += r.cfg.Platform.ColCheckS
	r.reportT.Publish(rep) // interceptor may corrupt; planner node stores it
}

// planning decision constants.
const (
	brakeTTCs       = 1.5 // emergency-stop threshold on time-to-collision
	replanMinGapS   = 1.0 // minimum spacing between replans
	collisionWindow = 25  // way-points ahead that trigger a replan when blocked
	stuckTimeoutS   = 8.0 // no trajectory progress for this long → replan
)

// maybePlan invokes the motion planner when the mission needs a (new)
// trajectory. Planning stalls the vehicle: the busyUntil window makes the
// command loop hover while the planner computes, charging the platform's
// planning latency to mission time.
func (r *runner) maybePlan(st sim.State, phase planning.MissionPhase) {
	if phase != planning.PhaseNavigate || r.t < r.busyUntil {
		return
	}
	need := r.forceReplan
	if r.curTraj == nil {
		need = true
	}
	rep := r.lastReport
	if rep.TimeToCollision < brakeTTCs {
		need = true
	}
	if seq := rep.FutureCollisionSeq; seq >= 0 && seq < collisionWindow {
		need = true
	}
	if r.curTraj != nil {
		if _, _, ok := r.tracker.SelectTarget(st.Pos); ok && r.tracker.Progress() > 0.99 && !r.mav.AtGoal() {
			need = true
		}
		// Progress watchdog: tracking that stalls (oscillation around a
		// corrupted way-point, unreachable target) forces a fresh plan.
		if n := r.tracker.NearestIndex(); n > r.lastNearest {
			r.lastNearest = n
			r.lastProgressT = r.t
		} else if r.t-r.lastProgressT > stuckTimeoutS {
			need = true
			r.lastProgressT = r.t
		}
	}
	if !need || (r.t-r.lastPlanT) < replanMinGapS {
		return
	}
	// Defer execution one tick: the anomaly-detection node sees the
	// triggering states this tick and its recovery can cancel a replan
	// requested by a corrupted report.
	r.planPending = true
}

// runPlanner executes one motion-planning + smoothening invocation.
// asRecovery charges the compute time to the planning-recovery account.
func (r *runner) runPlanner(st sim.State, asRecovery bool) {
	r.lastPlanT = r.t
	r.forceReplan = false
	r.res.Plans++

	cost := r.cfg.Platform.PlanS
	r.acct.ComputeS += cost
	if asRecovery {
		r.acct.RecoverPlanningS += cost
	}
	r.busyUntil = r.t + cost

	start := st.Pos
	if start.Z < r.adapter.zMin {
		start.Z = r.adapter.zMin + 0.1
	}
	path, err := r.motion.Plan(start, r.mission.NavGoal(), r.adapter, r.rngs.planner)
	if err != nil {
		r.res.PlanFails++
		r.curTraj = nil
		r.tracker.SetTrajectory(nil)
		return
	}
	tr := r.smooth.Smooth(path, r.adapter, r.rngs.planner)

	// Instruction-level injection site for the planner kernel: the
	// produced way-point fields pass through the corruption hook.
	if hook := r.hook(faultinject.KernelPlanner); hook != nil {
		for i := range tr.Points {
			p := &tr.Points[i]
			p.Pos.X = hook(p.Pos.X)
			p.Pos.Y = hook(p.Pos.Y)
			p.Pos.Z = hook(p.Pos.Z)
			p.Yaw = hook(p.Yaw)
			p.Vel.X = hook(p.Vel.X)
			p.Vel.Y = hook(p.Vel.Y)
			p.Vel.Z = hook(p.Vel.Z)
		}
	}
	r.trajT.Publish(tr)
	if r.trc != nil {
		r.trc.MarkEvent("replan")
	}
}

// command computes this tick's flight command.
func (r *runner) command(st sim.State, phase planning.MissionPhase) sim.VelocityCmd {
	switch phase {
	case planning.PhaseTakeoff:
		return sim.VelocityCmd{Vel: geom.V(0, 0, 1.2), Yaw: st.Yaw}
	case planning.PhaseDeliver, planning.PhaseDone:
		return sim.VelocityCmd{Vel: geom.Vec3{}, Yaw: st.Yaw}
	}
	if r.t < r.busyUntil || r.curTraj == nil {
		// Hover/brake while planning or without a trajectory.
		return sim.VelocityCmd{Vel: geom.Vec3{}, Yaw: st.Yaw}
	}
	if r.lastReport.TimeToCollision < brakeTTCs {
		// Emergency brake: stop before the obstacle; replan is queued.
		return sim.VelocityCmd{Vel: geom.Vec3{}, Yaw: st.Yaw}
	}

	target, idx, ok := r.tracker.SelectTarget(st.Pos)
	if !ok {
		return sim.VelocityCmd{Vel: geom.Vec3{}, Yaw: st.Yaw}
	}
	// Instruction-level injection site for the PID/command-issue kernel:
	// the kernel's working setpoint — the pursued way-point pose and
	// feed-forward velocity — passes through the corruption hook. The
	// corrupted setpoint persists in the kernel's state (via the
	// write-back below) until trajectory progress refreshes it, which is
	// how a one-shot SDC in the control kernel keeps affecting commands.
	if hook := r.hook(faultinject.KernelPID); hook != nil {
		target.Pos.X = hook(target.Pos.X)
		target.Pos.Y = hook(target.Pos.Y)
		target.Pos.Z = hook(target.Pos.Z)
		target.Vel.X = hook(target.Vel.X)
		target.Vel.Y = hook(target.Vel.Y)
		target.Vel.Z = hook(target.Vel.Z)
	}
	// Publish the pursued way-point on the Multidoftraj stream; MAVFI
	// interceptors may corrupt it in transit, and the subscriber writes it
	// (corrupted or not) back into the tracker state.
	r.wpT.Publish(waypointMsg{WP: target, Index: idx})
	if r.hasTarget {
		target = r.curTarget
	}

	vel, yaw, done := r.tracker.TrackTo(target, st.Pos, r.tick, nil)
	r.acct.ComputeS += r.cfg.Platform.ControlS
	if done && !r.mav.AtGoal() {
		r.forceReplan = true
	}
	return sim.VelocityCmd{Vel: vel, Yaw: yaw}
}

// detectAndRecover runs the anomaly-detection node: build the monitored
// state vector, preprocess, observe, and apply any recovery — possibly
// recomputing the command that will be actuated this tick.
func (r *runner) detectAndRecover(st sim.State, phase planning.MissionPhase, reading sim.IMUReading, cmd sim.VelocityCmd) sim.VelocityCmd {
	var vec detect.StateVector
	vec[faultinject.StateTimeToCollision] = r.lastReport.TimeToCollision
	vec[faultinject.StateFutureColSeq] = r.lastReport.FutureCollisionSeq
	vec[faultinject.StateWpX] = r.curTarget.Pos.X
	vec[faultinject.StateWpY] = r.curTarget.Pos.Y
	vec[faultinject.StateWpZ] = r.curTarget.Pos.Z
	vec[faultinject.StateWpYaw] = r.curTarget.Yaw
	vec[faultinject.StateVelX] = cmd.Vel.X
	vec[faultinject.StateVelY] = cmd.Vel.Y
	vec[faultinject.StateVelZ] = cmd.Vel.Z
	vec[faultinject.StatePosX] = reading.Pos.X
	vec[faultinject.StatePosY] = reading.Pos.Y
	vec[faultinject.StatePosZ] = reading.Pos.Z
	vec[faultinject.StateAccMag] = reading.Accel.Len()

	deltas, ready := r.prep.Process(vec)
	active := ready && phase == planning.PhaseNavigate && r.curTraj != nil && r.t >= r.busyUntil
	if r.suppress > 0 {
		r.suppress--
		active = false
	}
	if !active {
		r.rememberGood()
		return cmd
	}

	if r.cfg.RecordStates {
		r.deltas = append(r.deltas, deltas)
	}
	if r.cfg.Detector == nil {
		r.rememberGood()
		return cmd
	}

	if _, isGAD := r.cfg.Detector.(*detect.GAD); isGAD {
		r.acct.DetectS += r.cfg.Platform.GADObserveS
	} else {
		r.acct.DetectS += r.cfg.Platform.AADObserveS
	}
	recs := r.cfg.Detector.Observe(r.t, deltas)
	if len(recs) == 0 {
		r.rememberGood()
		return cmd
	}

	r.acct.Alarms += len(recs)
	if r.acct.FirstAlarmS == 0 {
		r.acct.FirstAlarmS = r.t
	}
	if r.trc != nil {
		r.trc.MarkEvent("alarm")
	}
	if r.cfg.DetectOnly {
		// Detection-only mode: alarms are counted and timestamped but no
		// recovery runs (and no suppression window follows — suppression
		// belongs to recovery-induced discontinuities).
		return cmd
	}
	for _, rec := range recs {
		cmd = r.recover(rec, st, cmd)
	}
	r.suppress = 2
	return cmd
}

// rememberGood snapshots the last known-clean inter-kernel states, the
// source of recovery values.
func (r *runner) rememberGood() {
	r.goodReport = r.lastReport
	if r.hasTarget {
		r.goodTarget = r.curTarget
		r.goodGen = r.trajGen
		r.hasGood = true
	}
}

// recover applies one stage recomputation (the paper's recovery feedback
// loop) and returns the possibly recomputed command.
func (r *runner) recover(rec detect.Recovery, st sim.State, cmd sim.VelocityCmd) sim.VelocityCmd {
	r.acct.Recomputes++
	p := r.cfg.Platform
	switch rec.Stage {
	case faultinject.StagePerception:
		// Recompute the perception stage: re-integrate the map and redo
		// the collision check from cached inputs; the corrupted report is
		// discarded in favour of the last good one until the recompute
		// lands next tick.
		r.acct.RecoverPerceptionS += p.OctoMapS
		r.acct.ComputeS += p.OctoMapS
		r.busyUntil = math.Max(r.busyUntil, r.t+p.OctoMapS)
		r.lastReport = r.goodReport
		// Cancel a replan the corrupted report may have requested.
		r.planPending = false

	case faultinject.StagePlanning:
		// Recompute the planning stage: discard the (corrupted)
		// trajectory and replan.
		r.curTraj = nil
		r.tracker.SetTrajectory(nil)
		r.runPlanner(st, true)
		cmd = sim.VelocityCmd{Vel: geom.Vec3{}, Yaw: st.Yaw}

	case faultinject.StageControl:
		// Recompute the control stage (the paper's AAD recovery point,
		// 0.46 ms): restore the last good monitored states — the
		// detection node re-publishes the clean report and way-point,
		// ceasing propagation of whichever state was corrupted — and
		// re-issue the command. The one-shot fault has already fired, so
		// the recomputation is clean.
		r.acct.RecoverControlS += p.ControlS
		r.acct.ComputeS += p.ControlS
		r.lastReport = r.goodReport
		r.planPending = false
		if r.hasGood && r.curTraj != nil && r.goodGen == r.trajGen {
			// Restore only when the last-good way-point belongs to the
			// currently tracked trajectory; after a replan the fresh
			// trajectory is already clean and a stale restore would
			// corrupt it.
			r.tracker.SetWaypoint(r.curTargetI, r.goodTarget)
			r.curTarget = r.goodTarget
			vel, yaw, _ := r.tracker.TrackTo(r.goodTarget, st.Pos, r.tick, nil)
			cmd = sim.VelocityCmd{Vel: vel, Yaw: yaw}
		} else {
			cmd = sim.VelocityCmd{Vel: geom.Vec3{}, Yaw: st.Yaw}
		}
	}
	return cmd
}

// terminal checks mission-ending conditions.
func (r *runner) terminal() (bool, qof.Outcome) {
	switch {
	case r.mav.Crashed():
		return true, qof.Crash
	case r.mission.Phase() == planning.PhaseDone:
		return true, qof.Success
	case r.battery.CapacityJ > 0 && r.battery.Remaining() <= 0:
		return true, qof.BatteryOut
	case r.t >= r.cfg.MaxMissionS:
		return true, qof.Timeout
	}
	return false, qof.Success
}

// faultFired reports whether any configured fault — compute or physical —
// has fired so far.
func (r *runner) faultFired() bool {
	return r.kInj.Injected() ||
		(r.sInj != nil && r.sInj.Injected()) ||
		(r.senInj != nil && r.senInj.Fired()) ||
		(r.actInj != nil && r.actInj.Fired()) ||
		(r.windInj != nil && r.windInj.Fired())
}

// finish assembles the Result.
func (r *runner) finish(outcome qof.Outcome) Result {
	r.res.Metrics = r.acct
	r.res.Outcome = outcome
	r.res.FlightTimeS = r.t
	r.res.DistanceM = r.mav.DistanceFlown()
	r.res.Injected = r.faultFired()
	if r.kInj.Injected() {
		r.res.InjectedAt = r.kInj.InjectedAt
	} else if r.sInj != nil && r.sInj.Injected() {
		r.res.InjectedAt = r.sInj.InjectedAt
	} else if r.senInj != nil && r.senInj.Fired() {
		r.res.InjectedAt = r.senInj.FiredAt()
	} else if r.actInj != nil && r.actInj.Fired() {
		r.res.InjectedAt = r.actInj.FiredAt()
	} else if r.windInj != nil && r.windInj.Fired() {
		r.res.InjectedAt = r.windInj.FiredAt()
	}
	r.res.Metrics.InjectedAtS = r.res.InjectedAt
	if r.trc != nil {
		if outcome == qof.Crash {
			r.trc.MarkEvent("crash")
		}
		// The mission is over: no further MarkEvent can fire, so the tail
		// of the trace (including the just-tagged final sample) is final.
		r.flushSink(len(r.trc.Samples))
		r.res.Trace = r.trc
	}
	r.res.StateDeltas = r.deltas
	if r.cfg.MapSeed != nil {
		// Recycle the arena for the cell's next mission. Safe: nothing
		// after finish touches the tree, and ForkInto fully resets it
		// before reuse. A panicked mission simply never returns its tree —
		// the pool refills from fresh forks.
		r.cfg.MapSeed.release(r.tree)
		r.tree = nil
	}
	return r.res
}
