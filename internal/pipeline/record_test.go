package pipeline

import (
	"math/rand"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/trace"
)

// TestRecordingBuffersPreallocated pins the recorded-mission zero-alloc
// property at the mission level: the trace and state-delta buffers are
// reserved to the tick budget before the loop starts, so a full mission
// must end with the buffers at exactly their reserved capacity — any
// mid-flight reallocation would show as a larger capacity. (The per-Add
// allocation behaviour itself is pinned by trace.TestTraceReserveAddAllocFree.)
func TestRecordingBuffersPreallocated(t *testing.T) {
	w := env.Sparse(rand.New(rand.NewSource(42)))
	r := newRunner(Config{World: w, Seed: 3, Record: true, RecordStates: true})
	budget := r.tickBudget()
	res := r.run()

	if res.Trace == nil {
		t.Fatal("Record did not produce a trace")
	}
	if n := len(res.Trace.Samples); n == 0 || n > budget {
		t.Fatalf("trace has %d samples, budget %d", n, budget)
	}
	if c := cap(res.Trace.Samples); c != budget {
		t.Fatalf("trace capacity %d, want the reserved budget %d (mid-flight reallocation?)", c, budget)
	}
	if n := len(res.StateDeltas); n == 0 || n > budget {
		t.Fatalf("%d state deltas, budget %d", n, budget)
	}
	if c := cap(res.StateDeltas); c != budget {
		t.Fatalf("state-delta capacity %d, want the reserved budget %d (mid-flight reallocation?)", c, budget)
	}
}

// collectSink copies every streamed sample (implements trace.Sink).
type collectSink struct{ samples []trace.Sample }

func (c *collectSink) Append(s trace.Sample) { c.samples = append(c.samples, s) }

// TestSinkStreamsFinalizedSamples pins the Config.Sink contract: every sample
// reaches the sink exactly once, in tick order, *after* its event tags are
// final. The tags are the subtle part — MarkEvent("replan"/"alarm") fires
// during the NEXT tick's body and "crash" at mission end, so the runner must
// lag the stream one tick behind the trace and flush the remainder at finish.
// A kernel-fault mission exercises inject, replan, and (via tag merging)
// multi-tag samples.
func TestSinkStreamsFinalizedSamples(t *testing.T) {
	w := env.Sparse(rand.New(rand.NewSource(42)))
	kf := &faultinject.Plan{Kernel: faultinject.KernelPlanner, Index: 200, Bit: 62}
	sink := &collectSink{}
	res := RunMission(Config{World: w, Seed: 5, KernelFault: kf, Sink: sink})

	if res.Trace == nil {
		t.Fatal("Sink did not imply Record")
	}
	if !res.Injected {
		t.Fatal("fault did not fire; test misconfigured")
	}
	if len(sink.samples) != len(res.Trace.Samples) {
		t.Fatalf("sink saw %d samples, trace has %d", len(sink.samples), len(res.Trace.Samples))
	}
	events := 0
	for i := range sink.samples {
		if sink.samples[i] != res.Trace.Samples[i] {
			t.Fatalf("sink sample %d = %+v, trace has %+v (event tag finalized after streaming?)",
				i, sink.samples[i], res.Trace.Samples[i])
		}
		if sink.samples[i].Event != "" {
			events++
		}
	}
	if events == 0 {
		t.Error("no tagged samples reached the sink (inject/replan missing)")
	}
}
