package pipeline

import (
	"math/rand"
	"testing"

	"mavfi/internal/env"
)

// TestRecordingBuffersPreallocated pins the recorded-mission zero-alloc
// property at the mission level: the trace and state-delta buffers are
// reserved to the tick budget before the loop starts, so a full mission
// must end with the buffers at exactly their reserved capacity — any
// mid-flight reallocation would show as a larger capacity. (The per-Add
// allocation behaviour itself is pinned by trace.TestTraceReserveAddAllocFree.)
func TestRecordingBuffersPreallocated(t *testing.T) {
	w := env.Sparse(rand.New(rand.NewSource(42)))
	r := newRunner(Config{World: w, Seed: 3, Record: true, RecordStates: true})
	budget := r.tickBudget()
	res := r.run()

	if res.Trace == nil {
		t.Fatal("Record did not produce a trace")
	}
	if n := len(res.Trace.Samples); n == 0 || n > budget {
		t.Fatalf("trace has %d samples, budget %d", n, budget)
	}
	if c := cap(res.Trace.Samples); c != budget {
		t.Fatalf("trace capacity %d, want the reserved budget %d (mid-flight reallocation?)", c, budget)
	}
	if n := len(res.StateDeltas); n == 0 || n > budget {
		t.Fatalf("%d state deltas, budget %d", n, budget)
	}
	if c := cap(res.StateDeltas); c != budget {
		t.Fatalf("state-delta capacity %d, want the reserved budget %d (mid-flight reallocation?)", c, budget)
	}
}
