package pipeline

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/geom"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
	"mavfi/internal/sim"
)

func sparseWorld() *env.World {
	return env.Sparse(rand.New(rand.NewSource(1)))
}

func TestGoldenMissionsAllEnvironments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	worlds := []*env.World{env.Factory(), env.Farm(), env.Sparse(rng), env.Dense(rng)}
	for _, w := range worlds {
		succ := 0
		const n = 6
		for seed := int64(0); seed < n; seed++ {
			res := RunMission(Config{World: w, Seed: seed})
			if res.Outcome == qof.Success {
				succ++
			}
		}
		// The paper's golden success rates are 85–100%; at this sample
		// size require a clear majority.
		if succ < n-2 {
			t.Errorf("%s: only %d/%d golden successes", w.Name, succ, n)
		}
	}
}

func TestMissionDeterminism(t *testing.T) {
	w := sparseWorld()
	plan := faultinject.Plan{Kernel: faultinject.KernelPlanner, Index: 100, Bit: 55}
	cfg := Config{World: w, Seed: 5, KernelFault: &plan}
	a := RunMission(cfg)
	b := RunMission(cfg)
	if a.FlightTimeS != b.FlightTimeS || a.EnergyJ != b.EnergyJ ||
		a.Outcome != b.Outcome || a.DistanceM != b.DistanceM ||
		a.Plans != b.Plans || a.Injected != b.Injected {
		t.Errorf("non-deterministic mission:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestSeedsProduceSpread(t *testing.T) {
	w := sparseWorld()
	times := map[float64]bool{}
	for seed := int64(0); seed < 6; seed++ {
		res := RunMission(Config{World: w, Seed: seed})
		times[math.Round(res.FlightTimeS*100)] = true
	}
	if len(times) < 3 {
		t.Errorf("flight times collapsed to %d distinct values", len(times))
	}
}

func TestTX2SlowerThanI9(t *testing.T) {
	w := sparseWorld()
	var i9Sum, tx2Sum float64
	for seed := int64(0); seed < 4; seed++ {
		i9Sum += RunMission(Config{World: w, Seed: seed, Platform: platform.I9()}).FlightTimeS
		tx2Sum += RunMission(Config{World: w, Seed: seed, Platform: platform.TX2()}).FlightTimeS
	}
	ratio := tx2Sum / i9Sum
	if ratio < 1.3 {
		t.Errorf("TX2/i9 flight-time ratio %.2f; expected a clear slowdown (paper: 2.8x)", ratio)
	}
}

func TestCalibrationCounterCountsAllKernels(t *testing.T) {
	ctr := faultinject.NewCounter()
	res := RunMission(Config{World: sparseWorld(), Seed: 9, Counter: ctr})
	if res.Outcome != qof.Success {
		t.Fatalf("calibration run failed: %v", res.Outcome)
	}
	if res.Injected {
		t.Error("calibration run injected")
	}
	for _, k := range []faultinject.Kernel{
		faultinject.KernelPCGen, faultinject.KernelOctoMap,
		faultinject.KernelColCheck, faultinject.KernelPlanner, faultinject.KernelPID,
	} {
		if ctr.Count(k) == 0 {
			t.Errorf("kernel %v never counted", k)
		}
	}
}

func TestKernelInjectionFires(t *testing.T) {
	w := sparseWorld()
	ctr := faultinject.NewCounter()
	RunMission(Config{World: w, Seed: 9, Counter: ctr})
	rng := rand.New(rand.NewSource(77))
	for _, k := range []faultinject.Kernel{
		faultinject.KernelPCGen, faultinject.KernelOctoMap,
		faultinject.KernelColCheck, faultinject.KernelPlanner, faultinject.KernelPID,
	} {
		fired := 0
		const n = 4
		for i := 0; i < n; i++ {
			plan := faultinject.NewPlan(k, ctr.Count(k), rng)
			res := RunMission(Config{World: w, Seed: int64(i), KernelFault: &plan})
			if res.Injected {
				fired++
			}
		}
		if fired < n-1 {
			t.Errorf("kernel %v: only %d/%d injections fired", k, fired, n)
		}
	}
}

func TestStateInjectionFires(t *testing.T) {
	w := sparseWorld()
	nominal := NominalDuration(Config{World: w})
	rng := rand.New(rand.NewSource(3))
	for s := faultinject.StateID(0); s < faultinject.NumInjectableStates; s++ {
		plan := faultinject.NewStatePlan(s, nominal*0.2, nominal*0.6, rng)
		res := RunMission(Config{World: w, Seed: 2, StateFault: &plan})
		if !res.Injected {
			t.Errorf("state %v injection never fired", s)
		}
	}
}

func TestExponentWaypointFaultCausesDetourWithoutProtection(t *testing.T) {
	// An exponent flip displaces the active way-point within the flight
	// volume (an in-bounds corruption the collision check cannot flag);
	// without protection the mission must detour visibly. (Out-of-bounds
	// corruptions like sign flips are self-healed by the pipeline's own
	// collision-check→replan loop, which the paper observes as natural
	// masking.)
	w := sparseWorld()
	golden := RunMission(Config{World: w, Seed: 4})
	if golden.Outcome != qof.Success {
		t.Skip("golden run failed; seed unsuitable")
	}
	plan := faultinject.StatePlan{State: faultinject.StateWpX, Time: golden.FlightTimeS * 0.5, Bit: 52}
	res := RunMission(Config{World: w, Seed: 4, StateFault: &plan})
	if !res.Injected {
		t.Fatal("fault did not fire")
	}
	degraded := res.Outcome != qof.Success || res.FlightTimeS > golden.FlightTimeS*1.2
	if !degraded {
		t.Errorf("displaced way-point had no effect: %v %.1fs (golden %.1fs)",
			res.Outcome, res.FlightTimeS, golden.FlightTimeS)
	}
}

// trainQuick builds small trained detectors for protection tests.
func trainQuick(t *testing.T) (*detect.GAD, *detect.AAD) {
	t.Helper()
	data := CollectTrainingData(10, 500, platform.I9())
	if len(data) < 200 {
		t.Fatalf("only %d training samples", len(data))
	}
	gad := TrainGAD(data, 4)
	cfg := detect.DefaultAADConfig()
	cfg.Epochs = 12
	aad := TrainAAD(data, cfg, 600)
	return gad, aad
}

func TestDetectorsRecoverWaypointFault(t *testing.T) {
	w := sparseWorld()
	gad, aad := trainQuick(t)
	golden := RunMission(Config{World: w, Seed: 4})
	plan := faultinject.StatePlan{State: faultinject.StateWpX, Time: golden.FlightTimeS * 0.5, Bit: 52}

	unprot := RunMission(Config{World: w, Seed: 4, StateFault: &plan})
	g := *gad
	withGAD := RunMission(Config{World: w, Seed: 4, StateFault: &plan, Detector: &g})
	withAAD := RunMission(Config{World: w, Seed: 4, StateFault: &plan, Detector: aad})

	for name, res := range map[string]Result{"GAD": withGAD, "AAD": withAAD} {
		if res.Outcome != qof.Success {
			t.Errorf("%s: protected run failed: %v", name, res.Outcome)
			continue
		}
		// Protection should not be slower than the unprotected fault run
		// (when that one survived) and should land near golden.
		if unprot.Outcome == qof.Success && res.FlightTimeS > unprot.FlightTimeS+1 {
			t.Errorf("%s: protected %.1fs worse than unprotected %.1fs", name, res.FlightTimeS, unprot.FlightTimeS)
		}
		if res.FlightTimeS > golden.FlightTimeS*1.5 {
			t.Errorf("%s: protected %.1fs far from golden %.1fs", name, res.FlightTimeS, golden.FlightTimeS)
		}
		if res.Alarms == 0 {
			t.Errorf("%s: no alarms raised on an injected mission", name)
		}
	}
}

func TestDetectorOverheadAccounting(t *testing.T) {
	w := sparseWorld()
	gad, aad := trainQuick(t)
	g := *gad
	resG := RunMission(Config{World: w, Seed: 3, Detector: &g})
	resA := RunMission(Config{World: w, Seed: 3, Detector: aad})
	if resG.DetectS <= 0 || resA.DetectS <= 0 {
		t.Error("no detection time charged")
	}
	// AAD inference costs more per tick than GAD's range checks.
	if resA.DetectS <= resG.DetectS {
		t.Errorf("AAD detect %.6f not above GAD %.6f", resA.DetectS, resG.DetectS)
	}
	// Both are tiny fractions of pipeline compute.
	if frac := resA.DetectS / resA.ComputeS; frac > 0.001 {
		t.Errorf("AAD detection overhead %.5f%% too large", frac*100)
	}
}

func TestTrainingDataCollection(t *testing.T) {
	data := CollectTrainingData(3, 123, platform.I9())
	if len(data) < 50 {
		t.Fatalf("only %d samples from 3 environments", len(data))
	}
	// Deltas must all be finite.
	for i, d := range data {
		for j, x := range d {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("sample %d dim %d non-finite: %v", i, j, x)
			}
		}
	}
	// Deterministic.
	again := CollectTrainingData(3, 123, platform.I9())
	if len(again) != len(data) {
		t.Error("training collection not deterministic")
	}
}

func TestRecordTrace(t *testing.T) {
	res := RunMission(Config{World: sparseWorld(), Seed: 1, Record: true})
	if res.Trace == nil || len(res.Trace.Samples) < 20 {
		t.Fatal("no trajectory recorded")
	}
	// Trace spans the mission duration.
	last := res.Trace.Samples[len(res.Trace.Samples)-1]
	if math.Abs(last.T-res.FlightTimeS) > 0.2 {
		t.Errorf("trace ends at %.1f, mission %.1f", last.T, res.FlightTimeS)
	}
	// Without Record, no trace is kept.
	if RunMission(Config{World: sparseWorld(), Seed: 1}).Trace != nil {
		t.Error("trace recorded without Record")
	}
}

func TestMissionTimeout(t *testing.T) {
	// An impossible mission (goal enclosed by walls tall beyond the
	// planner band) must end in a bounded Timeout, not an infinite loop.
	w := &env.World{
		Name:          "boxed",
		Bounds:        sparseWorld().Bounds,
		Start:         sparseWorld().Start,
		Goal:          sparseWorld().Goal,
		GoalTolerance: 1.5,
	}
	g := w.Goal
	for _, d := range [][4]float64{{-8, -8, -6, 8}, {6, -8, 8, 8}, {-6, -8, 6, -6}, {-6, 6, 6, 8}} {
		w.Obstacles = append(w.Obstacles, boxAround(g.X+d[0], g.Y+d[1], g.X+d[2], g.Y+d[3]))
	}
	res := RunMission(Config{World: w, Seed: 1, MaxMissionS: 40})
	if res.Outcome == qof.Success {
		t.Fatalf("completed an impossible mission in %.1fs", res.FlightTimeS)
	}
	if res.FlightTimeS > 41 {
		t.Errorf("mission ran past its budget: %.1fs", res.FlightTimeS)
	}
}

func boxAround(x0, y0, x1, y1 float64) geom.AABB {
	return geom.Box(geom.V(x0, y0, 0), geom.V(x1, y1, 18))
}

func TestCruiseSpeedModel(t *testing.T) {
	vp := sim.DefaultParams()
	i9 := CruiseSpeed(platform.I9(), vp, 20, MapPeriod(platform.I9()))
	tx2 := CruiseSpeed(platform.TX2(), vp, 20, MapPeriod(platform.TX2()))
	if i9 <= tx2 {
		t.Errorf("i9 cruise %.2f not faster than TX2 %.2f", i9, tx2)
	}
	if i9 > vp.MaxSpeed || tx2 < 0.5 {
		t.Errorf("cruise speeds out of range: %.2f %.2f", i9, tx2)
	}
}

func TestNominalDuration(t *testing.T) {
	w := sparseWorld()
	nominal := NominalDuration(Config{World: w})
	res := RunMission(Config{World: w, Seed: 1})
	if res.Outcome == qof.Success {
		if nominal < res.FlightTimeS*0.5 || nominal > res.FlightTimeS*4 {
			t.Errorf("nominal %.1fs vs actual %.1fs", nominal, res.FlightTimeS)
		}
	}
}

func TestPlannerKindsAllFly(t *testing.T) {
	w := sparseWorld()
	for _, pk := range []PlannerKind{PlannerRRT, PlannerRRTStar, PlannerRRTConnect} {
		res := RunMission(Config{World: w, Seed: 2, Planner: pk})
		if res.Outcome != qof.Success {
			t.Errorf("%v: %v", pk, res.Outcome)
		}
		if pk.String() == "" {
			t.Error("empty planner name")
		}
	}
}
