package pipeline

import (
	"math/rand"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/qof"
)

// TestGoldenMissionSparse flies one error-free mission end to end and checks
// it completes successfully with sane metrics.
func TestGoldenMissionSparse(t *testing.T) {
	w := env.Sparse(rand.New(rand.NewSource(1)))
	res := RunMission(Config{World: w, Seed: 42})
	if res.Outcome != qof.Success {
		t.Fatalf("golden mission outcome = %v (flight time %.1f s, plans %d, fails %d, dist %.1f m)",
			res.Outcome, res.FlightTimeS, res.Plans, res.PlanFails, res.DistanceM)
	}
	if res.FlightTimeS <= 0 || res.EnergyJ <= 0 || res.DistanceM <= 10 {
		t.Errorf("implausible metrics: time=%.1f energy=%.0f dist=%.1f",
			res.FlightTimeS, res.EnergyJ, res.DistanceM)
	}
	if res.Injected {
		t.Error("golden run reported an injection")
	}
	t.Logf("golden: time=%.1fs energy=%.1fkJ dist=%.1fm plans=%d compute=%.2fs",
		res.FlightTimeS, res.EnergyJ/1000, res.DistanceM, res.Plans, res.ComputeS)
}
