package planning

import "mavfi/internal/geom"

// searchTree is the tree storage shared by the RRT-family planners: a
// preallocated node arena plus the bucketed spatial index (gridIndex), both
// owned by the planner and reused across Plan invocations, replacing the
// per-Plan ad-hoc node slices the three planners used to grow independently.
//
// reset rewinds the arena and re-arms the index in O(1) (epoch bump), so a
// mission's thousands of replans reuse one allocation. The index path and
// the reference linear scans return bit-identical answers; Config.Index
// selects between them (IndexLinear exists for the equivalence and
// determinism tests, and as the fallback of record).
//
// A searchTree — and therefore a Planner that owns one — must not be used
// from concurrent Plan calls. The campaign engine already guarantees this:
// every mission constructs its own planner (see internal/pipeline).
type searchTree struct {
	nodes   []treeNode
	grid    gridIndex
	useGrid bool
}

// reset prepares the tree for one Plan invocation: rewinds the arena
// (growing it once to the iteration budget), arms the spatial index per the
// config policy, and seeds the root node.
func (t *searchTree) reset(cfg *Config, root treeNode) {
	if want := cfg.MaxIters + 2; cap(t.nodes) < want {
		t.nodes = make([]treeNode, 0, want)
	}
	t.nodes = t.nodes[:0]
	t.useGrid = cfg.Index != IndexLinear
	if t.useGrid {
		t.grid.configure(cfg.Bounds, 4*cfg.StepSize)
	}
	t.add(root)
}

// linearCutoff is the tree size below which queries use the linear scans
// even when the index is armed: for a handful of nodes the flat scan beats
// bucket bookkeeping, and since both paths are bit-identical the switch is
// invisible. Inserts always maintain the index so the crossover is free.
const linearCutoff = 48

// add appends a node to the arena (and its bucket) and returns its index.
func (t *searchTree) add(n treeNode) int {
	t.nodes = append(t.nodes, n)
	id := len(t.nodes) - 1
	if t.useGrid {
		t.grid.insert(int32(id), n.pos)
	}
	return id
}

// len returns the number of nodes in the tree.
func (t *searchTree) len() int { return len(t.nodes) }

// nearest returns the index of the tree node closest to p (first-min,
// lowest-index tie-break), via the index or the reference linear scan.
func (t *searchTree) nearest(p geom.Vec3) int {
	if t.useGrid && len(t.nodes) >= linearCutoff {
		return t.grid.nearest(p)
	}
	return nearest(t.nodes, p)
}

// near appends to out the indices of every node within radius of p
// (inclusive), ascending, via the index or the reference linear scan.
func (t *searchTree) near(p geom.Vec3, radius float64, out []int32) []int32 {
	if t.useGrid && len(t.nodes) >= linearCutoff {
		return t.grid.near(p, radius, out)
	}
	return nearLinear(t.nodes, p, radius*radius, out)
}
