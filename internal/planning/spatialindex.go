package planning

import (
	"math"
	"slices"

	"mavfi/internal/geom"
)

// maxGridCells bounds the bucket count of a gridIndex: when the planning
// volume is large relative to the step size, the cell edge doubles until the
// grid fits, trading lookup locality for bounded memory.
const maxGridCells = 1 << 15

// bucketEntry is one indexed tree node: its position is stored inline so
// bucket scans stay on one cache line run instead of chasing back into the
// node arena. The position is a bit-exact copy of the node's, so distances
// computed here equal the reference linear scan's to the last bit.
type bucketEntry struct {
	pos geom.Vec3
	id  int32
}

// gridIndex is the bucketed spatial index behind the planners' nearest-node
// and neighbourhood queries: uniform cubic buckets over the planning volume,
// each holding the tree nodes whose position falls inside it.
//
// The index is an exact accelerator, not an approximation — both queries
// return bit-identically what the reference linear scans over the node slice
// return (pinned by the randomized equivalence tests in
// spatialindex_test.go and the planner determinism tests):
//
//   - nearest reproduces the linear scan's first-min rule: the node with the
//     globally smallest squared distance, ties broken toward the lowest node
//     index. The expanding-shell search only terminates once every bucket
//     that could hold a strictly-better or equal-distance node has been
//     scanned.
//   - near returns every node within the radius in ascending node-index
//     order, exactly the order the linear scan appends them in, so RRT*'s
//     sequential choose-parent tie-breaking is preserved.
//
// Points outside the configured bounds (the mission start can sit slightly
// outside the sampling volume) are clamped into the boundary buckets; since
// clamping is monotone and 1-Lipschitz per axis, both the coverage and the
// shell-termination arguments survive, and the stored positions themselves
// are never clamped — distances are always computed on the true coordinates.
//
// Two structures keep queries cheap in the common planner workload (a tree
// that occupies a small, growing region of a large sampling volume):
//
//   - Buckets are epoch-stamped: resetting the index for a new Plan
//     invocation increments the epoch instead of clearing bucket slices, so
//     per-plan reuse costs O(1) and bucket storage amortises across a
//     planner's lifetime (mirroring the epoch-stamped scan grid and class
//     cache of internal/octomap).
//   - The index tracks the bounding box of occupied cells. Shell scans are
//     clipped to that box and start at the first shell that touches it, so a
//     sample drawn far from the tree costs the box's near face, not an
//     expansion through thousands of empty buckets.
type gridIndex struct {
	min     geom.Vec3 // bounds minimum corner
	cell    float64   // cubic cell edge length
	invCell float64   // 1/cell
	nx      int32     // cells per axis
	ny      int32
	nz      int32

	// Occupied-cell bounding box (inclusive); empty when loX > hiX.
	loX, hiX int32
	loY, hiY int32
	loZ, hiZ int32

	epoch   uint32
	stamps  []uint32 // per-bucket epoch of last write
	buckets [][]bucketEntry
	boxes   []geom.AABB // per-bucket AABB of the stored positions

	// near() merges per-bucket runs instead of sorting (see near). The
	// planners insert node ids in ascending order by construction, so each
	// bucket's entries are already ascending; unsorted records the (never
	// expected) violation of that invariant, arming the sort fallback of
	// record. runEnds and mergeBuf are per-query scratch, reused across a
	// planner's lifetime.
	unsorted bool
	runEnds  []int32
	mergeBuf []int32
}

// boundPad is the relative safety margin on bucket-pruning comparisons: a
// bucket is skipped only when its (floating-point) box distance exceeds the
// query threshold by more than this factor. The exact pruning inequality
// holds in real arithmetic; the pad absorbs the ≤ a-few-ulps rounding of the
// bound computation so pruning can never drop a node that ties the incumbent
// to the last bit.
const boundPad = 1 + 1e-9

// boxDistSq returns the squared distance from p to box (0 inside). The box
// bounds actual stored positions, so the bound needs no cell-assignment
// rounding analysis: any node in the bucket is inside the box by
// construction.
func boxDistSq(p geom.Vec3, box geom.AABB) float64 {
	var dx, dy, dz float64
	if p.X < box.Min.X {
		dx = box.Min.X - p.X
	} else if p.X > box.Max.X {
		dx = p.X - box.Max.X
	}
	if p.Y < box.Min.Y {
		dy = box.Min.Y - p.Y
	} else if p.Y > box.Max.Y {
		dy = p.Y - box.Max.Y
	}
	if p.Z < box.Min.Z {
		dz = box.Min.Z - p.Z
	} else if p.Z > box.Max.Z {
		dz = p.Z - box.Max.Z
	}
	return dx*dx + dy*dy + dz*dz
}

// dimCells returns how many cells of the given edge cover extent (≥ 1).
func dimCells(extent, cell float64) int32 {
	if extent <= 0 {
		return 1
	}
	n := int32(math.Ceil(extent / cell))
	if n < 1 {
		n = 1
	}
	return n
}

// configure resets the index for a new Plan invocation over the given
// sampling volume. cellHint (the planner step size — the typical edge
// length, hence the typical nearest-neighbour distance) sets the cell edge,
// doubled until the grid fits maxGridCells. Bucket storage is reused when
// the geometry is unchanged; otherwise it is reallocated.
func (g *gridIndex) configure(bounds geom.AABB, cellHint float64) {
	cell := cellHint
	if cell <= 0 {
		cell = 1
	}
	size := bounds.Size()
	var nx, ny, nz int32
	for {
		nx, ny, nz = dimCells(size.X, cell), dimCells(size.Y, cell), dimCells(size.Z, cell)
		if int64(nx)*int64(ny)*int64(nz) <= maxGridCells {
			break
		}
		cell *= 2
	}
	g.loX, g.hiX, g.loY, g.hiY, g.loZ, g.hiZ = 1, 0, 1, 0, 1, 0 // empty box
	g.unsorted = false
	n := int(nx) * int(ny) * int(nz)
	if g.min != bounds.Min || g.cell != cell || g.nx != nx || g.ny != ny || g.nz != nz {
		g.min, g.cell, g.invCell = bounds.Min, cell, 1/cell
		g.nx, g.ny, g.nz = nx, ny, nz
		g.stamps = make([]uint32, n)
		g.buckets = make([][]bucketEntry, n)
		g.boxes = make([]geom.AABB, n)
		g.epoch = 1
		return
	}
	g.epoch++
	if g.epoch == 0 { // uint32 wrap: stale stamps could alias, clear them
		clear(g.stamps)
		g.epoch = 1
	}
}

// axisCell maps one coordinate to its clamped cell index along an axis.
func (g *gridIndex) axisCell(v, min float64, n int32) int32 {
	c := int32((v - min) * g.invCell)
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// cellOf returns the clamped bucket coordinates of p.
func (g *gridIndex) cellOf(p geom.Vec3) (cx, cy, cz int32) {
	return g.axisCell(p.X, g.min.X, g.nx),
		g.axisCell(p.Y, g.min.Y, g.ny),
		g.axisCell(p.Z, g.min.Z, g.nz)
}

// bucketAt returns the flat bucket index for cell (cx, cy, cz).
func (g *gridIndex) bucketAt(cx, cy, cz int32) int32 {
	return (cz*g.ny+cy)*g.nx + cx
}

// insert adds node id at position pos to its bucket and grows the
// occupied-cell box.
func (g *gridIndex) insert(id int32, pos geom.Vec3) {
	cx, cy, cz := g.cellOf(pos)
	b := g.bucketAt(cx, cy, cz)
	if g.stamps[b] != g.epoch {
		g.stamps[b] = g.epoch
		g.buckets[b] = g.buckets[b][:0]
		g.boxes[b] = geom.AABB{Min: pos, Max: pos}
	} else {
		bx := &g.boxes[b]
		bx.Min = bx.Min.Min(pos)
		bx.Max = bx.Max.Max(pos)
		if g.buckets[b][len(g.buckets[b])-1].id >= id {
			// Out-of-order insert: cannot happen through the planners (ids
			// ascend by construction), but if it ever does, near() falls
			// back to sorting instead of silently misordering neighbours.
			g.unsorted = true
		}
	}
	g.buckets[b] = append(g.buckets[b], bucketEntry{pos: pos, id: id})
	if g.loX > g.hiX { // first node
		g.loX, g.hiX, g.loY, g.hiY, g.loZ, g.hiZ = cx, cx, cy, cy, cz, cz
		return
	}
	if cx < g.loX {
		g.loX = cx
	} else if cx > g.hiX {
		g.hiX = cx
	}
	if cy < g.loY {
		g.loY = cy
	} else if cy > g.hiY {
		g.hiY = cy
	}
	if cz < g.loZ {
		g.loZ = cz
	} else if cz > g.hiZ {
		g.hiZ = cz
	}
}

// scanBucket folds one bucket's nodes into the running (best, bestD)
// nearest-candidate under the first-min rule. Callers guarantee the cell is
// inside the grid.
func (g *gridIndex) scanBucket(p geom.Vec3, cx, cy, cz int32, best *int32, bestD *float64) {
	b := g.bucketAt(cx, cy, cz)
	if g.stamps[b] != g.epoch {
		return
	}
	if *best >= 0 && boxDistSq(p, g.boxes[b]) > *bestD*boundPad {
		return // every node here is strictly farther than the incumbent
	}
	for i := range g.buckets[b] {
		e := &g.buckets[b][i]
		d := e.pos.DistSq(p)
		if d < *bestD || (d == *bestD && e.id < *best) {
			*best, *bestD = e.id, d
		}
	}
}

// clip intersects [lo, hi] with [boxLo, boxHi] and reports whether the
// intersection is non-empty.
func clip(lo, hi, boxLo, boxHi int32) (int32, int32, bool) {
	if lo < boxLo {
		lo = boxLo
	}
	if hi > boxHi {
		hi = boxHi
	}
	return lo, hi, lo <= hi
}

// scanShell scans every occupied-box bucket at exactly Chebyshev distance r
// from the centre cell (each face enumerated once, no double visits).
func (g *gridIndex) scanShell(p geom.Vec3, cx, cy, cz, r int32, best *int32, bestD *float64) {
	if r == 0 {
		if cx >= g.loX && cx <= g.hiX && cy >= g.loY && cy <= g.hiY && cz >= g.loZ && cz <= g.hiZ {
			g.scanBucket(p, cx, cy, cz, best, bestD)
		}
		return
	}
	ly, hy, okY := clip(cy-r, cy+r, g.loY, g.hiY)
	lz, hz, okZ := clip(cz-r, cz+r, g.loZ, g.hiZ)
	if okY && okZ {
		for _, x := range [2]int32{cx - r, cx + r} { // two x faces, full extent
			if x < g.loX || x > g.hiX {
				continue
			}
			for y := ly; y <= hy; y++ {
				for z := lz; z <= hz; z++ {
					g.scanBucket(p, x, y, z, best, bestD)
				}
			}
		}
	}
	lx, hx, okX := clip(cx-r+1, cx+r-1, g.loX, g.hiX)
	if okX && okZ {
		for _, y := range [2]int32{cy - r, cy + r} { // two y faces, x interior
			if y < g.loY || y > g.hiY {
				continue
			}
			for x := lx; x <= hx; x++ {
				for z := lz; z <= hz; z++ {
					g.scanBucket(p, x, y, z, best, bestD)
				}
			}
		}
	}
	ly, hy, okY = clip(cy-r+1, cy+r-1, g.loY, g.hiY)
	if okX && okY {
		for _, z := range [2]int32{cz - r, cz + r} { // two z faces, x and y interior
			if z < g.loZ || z > g.hiZ {
				continue
			}
			for x := lx; x <= hx; x++ {
				for y := ly; y <= hy; y++ {
					g.scanBucket(p, x, y, z, best, bestD)
				}
			}
		}
	}
}

// nearest returns the index of the node closest to p under the linear scan's
// first-min rule, or -1 on an empty index. It expands Chebyshev shells
// around p's cell — clipped to the occupied box, starting at the first shell
// that touches it — and stops once no unscanned bucket can hold a node at a
// distance ≤ the incumbent: after shells 0..R are scanned, any unscanned
// node sits ≥ R·cell away (its cell differs by ≥ R+1 on some axis; shells
// skipped below the start radius and cells clipped away are empty by
// construction, hence vacuously scanned), so termination requires bestD
// strictly below (R·cell)² — an exact tie outside the scanned region can
// then no longer exist, preserving the lowest-index tie-break globally.
func (g *gridIndex) nearest(p geom.Vec3) int {
	if g.loX > g.hiX {
		return -1
	}
	cx, cy, cz := g.cellOf(p)
	// Chebyshev distance from the centre cell to the occupied box (first
	// shell that can contain a node) and to its farthest cell (last shell).
	r0, maxR := int32(0), int32(0)
	for _, d := range [6]int32{g.loX - cx, cx - g.hiX, g.loY - cy, cy - g.hiY, g.loZ - cz, cz - g.hiZ} {
		if d > r0 {
			r0 = d
		}
	}
	for _, d := range [6]int32{g.hiX - cx, cx - g.loX, g.hiY - cy, cy - g.loY, g.hiZ - cz, cz - g.loZ} {
		if d > maxR {
			maxR = d
		}
	}
	best, bestD := int32(-1), math.Inf(1)
	for r := r0; r <= maxR; r++ {
		if best >= 0 && r >= 2 {
			lb := float64(r-1) * g.cell
			if bestD < lb*lb {
				break
			}
		}
		g.scanShell(p, cx, cy, cz, r, &best, &bestD)
	}
	return int(best)
}

// near appends to out every node index whose position lies within radius of
// p (inclusive, on squared distances) and returns out sorted ascending —
// exactly the set and order the reference linear scan produces.
//
// Since PR 5 the ascending order comes from merging, not sorting: node ids
// are inserted in ascending order by construction (searchTree.add assigns
// arena indices monotonically and inserts immediately), so each bucket holds
// an ascending run and the per-bucket matches form sorted runs that a k-way
// merge combines in O(n·buckets) with no comparison sort. Ids are unique
// across runs, so merge order is total and the result is exactly what
// sorting produced before. The (never expected) out-of-order insert arms
// g.unsorted, which falls back to the sort of record.
func (g *gridIndex) near(p geom.Vec3, radius float64, out []int32) []int32 {
	r2 := radius * radius
	start := len(out) // order only what we append; a caller's prefix is untouched
	lox, loy, loz := g.cellOf(geom.V(p.X-radius, p.Y-radius, p.Z-radius))
	hix, hiy, hiz := g.cellOf(geom.V(p.X+radius, p.Y+radius, p.Z+radius))
	var ok bool
	if lox, hix, ok = clip(lox, hix, g.loX, g.hiX); !ok {
		return out
	}
	if loy, hiy, ok = clip(loy, hiy, g.loY, g.hiY); !ok {
		return out
	}
	if loz, hiz, ok = clip(loz, hiz, g.loZ, g.hiZ); !ok {
		return out
	}
	g.runEnds = g.runEnds[:0]
	for cz := loz; cz <= hiz; cz++ {
		for cy := loy; cy <= hiy; cy++ {
			for cx := lox; cx <= hix; cx++ {
				b := g.bucketAt(cx, cy, cz)
				if g.stamps[b] != g.epoch {
					continue
				}
				if boxDistSq(p, g.boxes[b]) > r2*boundPad {
					continue // no node here can be within the radius
				}
				for i := range g.buckets[b] {
					e := &g.buckets[b][i]
					if e.pos.DistSq(p) <= r2 {
						out = append(out, e.id)
					}
				}
				if end := int32(len(out)); end > int32(start) && (len(g.runEnds) == 0 || end > g.runEnds[len(g.runEnds)-1]) {
					g.runEnds = append(g.runEnds, end) // one run per contributing bucket
				}
			}
		}
	}
	if g.unsorted {
		slices.Sort(out[start:])
		return out
	}
	g.mergeRuns(out, start)
	return out
}

// mergeRuns merges the ascending runs out[start:runEnds[0]],
// out[runEnds[0]:runEnds[1]], … in place (via the reused merge buffer) into
// one ascending sequence. Runs hold disjoint id sets, so selection by
// smallest head is a total order.
func (g *gridIndex) mergeRuns(out []int32, start int) {
	if len(g.runEnds) <= 1 {
		return // zero or one run: already ascending
	}
	added := out[start:]
	buf := g.mergeBuf[:0]
	runStart := int32(start)
	// Reuse the tail of runEnds as cursors? No — cursors are per-run
	// positions; keep them in a fixed-size stack array when small, else
	// fall back to the (rare) sort. Shell scans cap the run count at the
	// clipped cell box, which the planners keep small; 64 covers every
	// configuration the cell sizing can produce for a radius ≈ cell query.
	var curArr [64]int32
	if len(g.runEnds) > len(curArr) {
		slices.Sort(added)
		return
	}
	cur := curArr[:len(g.runEnds)]
	for i := range cur {
		cur[i] = runStart
		runStart = g.runEnds[i]
	}
	for len(buf) < len(added) {
		best := -1
		var bestID int32
		for i := range cur {
			if cur[i] < g.runEnds[i] {
				if id := out[cur[i]]; best < 0 || id < bestID {
					best, bestID = i, id
				}
			}
		}
		buf = append(buf, bestID)
		cur[best]++
	}
	copy(added, buf)
	g.mergeBuf = buf
}
