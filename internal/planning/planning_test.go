package planning

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// boxChecker is a test CollisionChecker over explicit obstacle boxes.
type boxChecker struct {
	bounds    geom.AABB
	obstacles []geom.AABB
}

func (c *boxChecker) PointFree(p geom.Vec3) bool {
	if !c.bounds.Contains(p) {
		return false
	}
	for _, ob := range c.obstacles {
		if ob.Contains(p) {
			return false
		}
	}
	return true
}

func (c *boxChecker) SegmentFree(a, b geom.Vec3) bool {
	n := int(a.Dist(b)/0.2) + 1
	for i := 0; i <= n; i++ {
		if !c.PointFree(a.Lerp(b, float64(i)/float64(n))) {
			return false
		}
	}
	return true
}

// corridorWorld: two rooms joined by a gap, forcing non-trivial planning.
func corridorWorld() *boxChecker {
	return &boxChecker{
		bounds: geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10)),
		obstacles: []geom.AABB{
			geom.Box(geom.V(18, 0, 0), geom.V(22, 30, 10)), // wall, gap at y>30
		},
	}
}

func pathValid(t *testing.T, name string, path []geom.Vec3, cc CollisionChecker, start, goal geom.Vec3) {
	t.Helper()
	if len(path) < 2 {
		t.Fatalf("%s: degenerate path %v", name, path)
	}
	if path[0].Dist(start) > 1e-6 {
		t.Errorf("%s: path starts at %v, want %v", name, path[0], start)
	}
	if path[len(path)-1].Dist(goal) > 1e-6 {
		t.Errorf("%s: path ends at %v, want %v", name, path[len(path)-1], goal)
	}
	for i := 1; i < len(path); i++ {
		if !cc.SegmentFree(path[i-1], path[i]) {
			t.Errorf("%s: segment %d collides (%v→%v)", name, i, path[i-1], path[i])
		}
	}
}

func planners(bounds geom.AABB) []Planner {
	cfg := DefaultConfig(bounds)
	return []Planner{NewRRT(cfg), NewRRTStar(cfg), NewRRTConnect(cfg)}
}

func TestPlannersFindPathThroughGap(t *testing.T) {
	cc := corridorWorld()
	start, goal := geom.V(5, 5, 3), geom.V(35, 5, 3)
	for _, p := range planners(cc.bounds) {
		rng := rand.New(rand.NewSource(3))
		path, err := p.Plan(start, goal, cc, rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		pathValid(t, p.Name(), path, cc, start, goal)
	}
}

func TestPlannersTrivialStraightLine(t *testing.T) {
	cc := &boxChecker{bounds: geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10))}
	start, goal := geom.V(5, 5, 3), geom.V(35, 35, 3)
	for _, p := range planners(cc.bounds) {
		rng := rand.New(rand.NewSource(3))
		path, err := p.Plan(start, goal, cc, rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		pathValid(t, p.Name(), path, cc, start, goal)
	}
}

func TestPlannersBlockedGoal(t *testing.T) {
	cc := corridorWorld()
	// Goal inside the wall.
	start, goal := geom.V(5, 5, 3), geom.V(20, 10, 3)
	for _, p := range planners(cc.bounds) {
		rng := rand.New(rand.NewSource(3))
		if _, err := p.Plan(start, goal, cc, rng); err == nil {
			t.Errorf("%s: found path to blocked goal", p.Name())
		}
	}
}

func TestPlannersUnreachableGoal(t *testing.T) {
	cc := &boxChecker{
		bounds: geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10)),
		obstacles: []geom.AABB{
			geom.Box(geom.V(18, 0, 0), geom.V(22, 40, 10)), // full wall
		},
	}
	cfg := DefaultConfig(cc.bounds)
	cfg.MaxIters = 500 // keep the failure fast
	for _, p := range []Planner{NewRRT(cfg), NewRRTStar(cfg), NewRRTConnect(cfg)} {
		rng := rand.New(rand.NewSource(3))
		if _, err := p.Plan(geom.V(5, 5, 3), geom.V(35, 5, 3), cc, rng); err == nil {
			t.Errorf("%s: found path through a solid wall", p.Name())
		}
	}
}

func TestRRTStarShorterThanRRT(t *testing.T) {
	cc := corridorWorld()
	start, goal := geom.V(5, 5, 3), geom.V(35, 5, 3)
	cfg := DefaultConfig(cc.bounds)
	var rrtLen, starLen float64
	const trials = 5
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		p1, err1 := NewRRT(cfg).Plan(start, goal, cc, rng)
		rng2 := rand.New(rand.NewSource(int64(i)))
		p2, err2 := NewRRTStar(cfg).Plan(start, goal, cc, rng2)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v %v", i, err1, err2)
		}
		rrtLen += PathLength(p1)
		starLen += PathLength(p2)
	}
	// RRT* rewiring should on average produce paths no longer than RRT's
	// (allow a small tolerance for sampling variance).
	if starLen > rrtLen*1.10 {
		t.Errorf("RRT* mean length %.1f not better than RRT %.1f", starLen/trials, rrtLen/trials)
	}
}

func TestSmootherShortcut(t *testing.T) {
	cc := &boxChecker{bounds: geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10))}
	// A deliberately wiggly path in free space.
	path := []geom.Vec3{
		{X: 1, Y: 1, Z: 3}, {X: 5, Y: 20, Z: 3}, {X: 10, Y: 2, Z: 3},
		{X: 15, Y: 25, Z: 3}, {X: 20, Y: 1, Z: 3}, {X: 30, Y: 30, Z: 3},
	}
	s := NewSmoother(5)
	rng := rand.New(rand.NewSource(1))
	out := s.Shortcut(path, cc, rng)
	if PathLength(out) > PathLength(path) {
		t.Errorf("shortcut lengthened path: %.1f > %.1f", PathLength(out), PathLength(path))
	}
	if out[0] != path[0] || out[len(out)-1] != path[len(path)-1] {
		t.Error("shortcut moved endpoints")
	}
	for i := 1; i < len(out); i++ {
		if !cc.SegmentFree(out[i-1], out[i]) {
			t.Error("shortcut created colliding segment")
		}
	}
}

func TestSmootherShortcutRespectsObstacles(t *testing.T) {
	cc := corridorWorld()
	// Path through the gap; shortcutting must not cut through the wall.
	path := []geom.Vec3{
		{X: 5, Y: 5, Z: 3}, {X: 10, Y: 35, Z: 3}, {X: 20, Y: 35, Z: 3},
		{X: 30, Y: 35, Z: 3}, {X: 35, Y: 5, Z: 3},
	}
	s := NewSmoother(5)
	rng := rand.New(rand.NewSource(2))
	out := s.Shortcut(path, cc, rng)
	for i := 1; i < len(out); i++ {
		if !cc.SegmentFree(out[i-1], out[i]) {
			t.Fatal("shortcut cut through the wall")
		}
	}
}

func TestParameterize(t *testing.T) {
	s := NewSmoother(5)
	path := []geom.Vec3{{X: 0, Y: 0, Z: 2}, {X: 30, Y: 0, Z: 2}}
	tr := s.Parameterize(path)
	if len(tr.Points) < 10 {
		t.Fatalf("only %d way-points", len(tr.Points))
	}
	// Time strictly increasing, speeds bounded by cruise, yaw along +x.
	for i, wp := range tr.Points {
		if i > 0 && wp.T <= tr.Points[i-1].T {
			t.Fatalf("time not increasing at %d: %v then %v", i, tr.Points[i-1].T, wp.T)
		}
		if v := wp.Vel.Len(); v > s.CruiseSpeed+1e-6 {
			t.Fatalf("speed %v exceeds cruise %v", v, s.CruiseSpeed)
		}
		if i < len(tr.Points)-1 && math.Abs(wp.Yaw) > 1e-6 {
			t.Fatalf("yaw %v along +x path", wp.Yaw)
		}
	}
	// Terminal way-point stops.
	if tr.Points[len(tr.Points)-1].Vel.Len() != 0 {
		t.Error("terminal way-point not stopped")
	}
	// Duration is plausible: ≥ distance/cruise.
	if tr.Duration() < 30/5 {
		t.Errorf("duration %v too short", tr.Duration())
	}
	if math.Abs(tr.Length()-30) > 0.5 {
		t.Errorf("length %v, want ≈30", tr.Length())
	}
}

func TestParameterizeDegenerate(t *testing.T) {
	s := NewSmoother(5)
	if tr := s.Parameterize(nil); len(tr.Points) != 0 {
		t.Error("empty path produced points")
	}
	tr := s.Parameterize([]geom.Vec3{{X: 1, Y: 2, Z: 3}})
	if len(tr.Points) != 1 || tr.Duration() != 0 {
		t.Errorf("single-point path: %+v", tr)
	}
	if tr.Length() != 0 {
		t.Error("single-point length")
	}
}

func TestTrajectoryPositions(t *testing.T) {
	tr := &Trajectory{Points: []Waypoint{
		{Pos: geom.V(1, 0, 0)}, {Pos: geom.V(2, 0, 0)},
	}}
	ps := tr.Positions()
	if len(ps) != 2 || ps[1] != geom.V(2, 0, 0) {
		t.Errorf("Positions = %v", ps)
	}
}

func TestMissionStateMachine(t *testing.T) {
	m := NewMission(geom.V(50, 50, 2.5), 2.5, 1.5)
	if m.Phase() != PhaseTakeoff {
		t.Error("not starting in takeoff")
	}
	// On the ground, still takeoff.
	if got := m.Update(geom.V(0, 0, 0.1)); got != PhaseTakeoff {
		t.Errorf("phase = %v", got)
	}
	// Reached altitude → navigate.
	if got := m.Update(geom.V(0, 0, 2.4)); got != PhaseNavigate {
		t.Errorf("phase = %v", got)
	}
	// NavGoal at cruise altitude.
	if m.NavGoal() != geom.V(50, 50, 2.5) {
		t.Errorf("NavGoal = %v", m.NavGoal())
	}
	// Near the goal → deliver → done.
	if got := m.Update(geom.V(49.5, 49.5, 2.5)); got != PhaseDeliver {
		t.Errorf("phase = %v", got)
	}
	if got := m.Update(geom.V(49.8, 49.8, 2.5)); got != PhaseDone {
		t.Errorf("phase = %v", got)
	}
	// Phase strings.
	for p, want := range map[MissionPhase]string{
		PhaseTakeoff: "takeoff", PhaseNavigate: "navigate",
		PhaseDeliver: "deliver", PhaseDone: "done",
	} {
		if p.String() != want {
			t.Errorf("String(%d) = %s", p, p.String())
		}
	}
}

func TestPathLength(t *testing.T) {
	if PathLength(nil) != 0 {
		t.Error("nil path length")
	}
	p := []geom.Vec3{{X: 0}, {X: 3}, {X: 3, Y: 4}}
	if PathLength(p) != 7 {
		t.Errorf("PathLength = %v", PathLength(p))
	}
}
