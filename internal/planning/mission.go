package planning

import "mavfi/internal/geom"

// MissionPhase enumerates the package-delivery mission's state machine.
type MissionPhase int

const (
	// PhaseTakeoff climbs vertically to cruise altitude.
	PhaseTakeoff MissionPhase = iota
	// PhaseNavigate flies the planned trajectory toward the delivery point.
	PhaseNavigate
	// PhaseDeliver descends/holds at the goal to complete delivery.
	PhaseDeliver
	// PhaseDone means the mission completed successfully.
	PhaseDone
)

// String implements fmt.Stringer.
func (p MissionPhase) String() string {
	switch p {
	case PhaseTakeoff:
		return "takeoff"
	case PhaseNavigate:
		return "navigate"
	case PhaseDeliver:
		return "deliver"
	case PhaseDone:
		return "done"
	default:
		return "unknown"
	}
}

// Mission is the package-delivery mission planner kernel: a small state
// machine that decides the current navigation goal and when the motion
// planner must (re)plan. It is deliberately simple — the paper's mission
// planner node plays the same role.
type Mission struct {
	// Goal is the delivery point.
	Goal geom.Vec3
	// CruiseAlt is the navigation altitude in metres.
	CruiseAlt float64
	// GoalTol is the delivery arrival radius.
	GoalTol float64

	phase MissionPhase
}

// NewMission creates a delivery mission to goal at the given cruise
// altitude.
func NewMission(goal geom.Vec3, cruiseAlt, goalTol float64) *Mission {
	return &Mission{Goal: goal, CruiseAlt: cruiseAlt, GoalTol: goalTol}
}

// Phase returns the current mission phase.
func (m *Mission) Phase() MissionPhase { return m.phase }

// NavGoal returns the current navigation target for the motion planner: the
// delivery point at cruise altitude during navigation.
func (m *Mission) NavGoal() geom.Vec3 {
	return geom.V(m.Goal.X, m.Goal.Y, m.CruiseAlt)
}

// Update advances the state machine given the vehicle position and returns
// the phase after the update.
func (m *Mission) Update(pos geom.Vec3) MissionPhase {
	switch m.phase {
	case PhaseTakeoff:
		if pos.Z >= m.CruiseAlt-0.3 {
			m.phase = PhaseNavigate
		}
	case PhaseNavigate:
		if pos.Dist(m.NavGoal()) <= m.GoalTol {
			m.phase = PhaseDeliver
		}
	case PhaseDeliver:
		if pos.Dist(m.Goal) <= m.GoalTol {
			m.phase = PhaseDone
		}
	}
	return m.phase
}
