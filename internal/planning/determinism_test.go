package planning

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// plannersWithIndex builds the three RRT-family planners with the given
// index policy forced.
func plannersWithIndex(bounds geom.AABB, policy IndexPolicy) []Planner {
	cfg := DefaultConfig(bounds)
	cfg.Index = policy
	return []Planner{NewRRT(cfg), NewRRTStar(cfg), NewRRTConnect(cfg)}
}

// samePath asserts two planner outputs are byte-identical: same error, same
// length, and bit-equal way-point coordinates.
func samePath(t *testing.T, name string, seed int64, gridPath, linPath []geom.Vec3, gridErr, linErr error) {
	t.Helper()
	if (gridErr == nil) != (linErr == nil) {
		t.Fatalf("%s seed %d: grid err=%v, linear err=%v", name, seed, gridErr, linErr)
	}
	if len(gridPath) != len(linPath) {
		t.Fatalf("%s seed %d: grid path has %d points, linear %d", name, seed, len(gridPath), len(linPath))
	}
	for i := range gridPath {
		if gridPath[i] != linPath[i] { // exact float equality, all three axes
			t.Fatalf("%s seed %d: point %d diverged: grid %v, linear %v", name, seed, i, gridPath[i], linPath[i])
		}
	}
}

// TestPlannerIndexDeterminism is the planner-level bit-identity gate for the
// spatial index: the same seed and world must produce byte-identical paths
// with the index force-enabled (IndexGrid) and force-disabled (IndexLinear),
// for RRT, RRT*, and RRT-Connect, across worlds with and without obstacles.
// Combined with the golden mission digests this pins the index as a pure
// optimisation.
func TestPlannerIndexDeterminism(t *testing.T) {
	worlds := []struct {
		name        string
		cc          *boxChecker
		start, goal geom.Vec3
	}{
		{"corridor", corridorWorld(), geom.V(5, 5, 3), geom.V(35, 5, 3)},
		{"open", &boxChecker{bounds: geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10))}, geom.V(2, 2, 2), geom.V(38, 38, 8)},
		{"cluttered", &boxChecker{
			bounds: geom.Box(geom.V(0, 0, 0), geom.V(50, 50, 12)),
			obstacles: []geom.AABB{
				geom.Box(geom.V(10, 0, 0), geom.V(14, 35, 12)),
				geom.Box(geom.V(24, 15, 0), geom.V(28, 50, 12)),
				geom.Box(geom.V(36, 0, 0), geom.V(40, 30, 12)),
			},
		}, geom.V(3, 3, 3), geom.V(47, 47, 6)},
	}
	for _, w := range worlds {
		grid := plannersWithIndex(w.cc.bounds, IndexGrid)
		lin := plannersWithIndex(w.cc.bounds, IndexLinear)
		for pi := range grid {
			for seed := int64(0); seed < 6; seed++ {
				gp, gerr := grid[pi].Plan(w.start, w.goal, w.cc, rand.New(rand.NewSource(seed)))
				lp, lerr := lin[pi].Plan(w.start, w.goal, w.cc, rand.New(rand.NewSource(seed)))
				samePath(t, w.name+"/"+grid[pi].Name(), seed, gp, lp, gerr, lerr)
			}
		}
	}
}

// TestPlannerScratchReuseDeterminism verifies that reusing one planner
// instance across Plan invocations (the arena/index reuse the mission loop
// relies on) does not perturb results: a fresh planner and a heavily reused
// one produce byte-identical paths for the same seed.
func TestPlannerScratchReuseDeterminism(t *testing.T) {
	cc := corridorWorld()
	start, goal := geom.V(5, 5, 3), geom.V(35, 5, 3)
	cfg := DefaultConfig(cc.bounds)
	reused := []Planner{NewRRT(cfg), NewRRTStar(cfg), NewRRTConnect(cfg)}
	// Warm the reused planners' arenas and bucket storage.
	for _, p := range reused {
		for seed := int64(10); seed < 14; seed++ {
			_, _ = p.Plan(start, goal, cc, rand.New(rand.NewSource(seed)))
		}
	}
	fresh := []Planner{NewRRT(cfg), NewRRTStar(cfg), NewRRTConnect(cfg)}
	for pi := range reused {
		for seed := int64(0); seed < 4; seed++ {
			rp, rerr := reused[pi].Plan(start, goal, cc, rand.New(rand.NewSource(seed)))
			fp, ferr := fresh[pi].Plan(start, goal, cc, rand.New(rand.NewSource(seed)))
			samePath(t, reused[pi].Name(), seed, rp, fp, rerr, ferr)
		}
	}
}
