package planning

import (
	"math"
	"math/rand"

	"mavfi/internal/geom"
)

// Smoother is the path-smoothening kernel: randomised shortcutting followed
// by way-point densification and trapezoidal time parameterisation, turning
// a raw planner polyline into the multi-DOF trajectory ("Multidoftraj")
// published to the control stage.
type Smoother struct {
	// ShortcutIters is the number of random shortcut attempts.
	ShortcutIters int
	// Spacing is the way-point spacing of the output trajectory in metres.
	Spacing float64
	// CruiseSpeed is the nominal speed in m/s.
	CruiseSpeed float64
	// Accel is the acceleration used for the speed ramps, m/s².
	Accel float64
}

// NewSmoother returns the experiment configuration.
func NewSmoother(cruiseSpeed float64) *Smoother {
	return &Smoother{
		ShortcutIters: 60,
		Spacing:       1.0,
		CruiseSpeed:   cruiseSpeed,
		Accel:         3.0,
	}
}

// Shortcut performs randomised shortcutting on a polyline path: pick two
// non-adjacent way-points, and splice them together when the straight
// segment between them is collision-free.
func (s *Smoother) Shortcut(path []geom.Vec3, cc CollisionChecker, rng *rand.Rand) []geom.Vec3 {
	if len(path) < 3 {
		return path
	}
	out := append([]geom.Vec3(nil), path...)
	for iter := 0; iter < s.ShortcutIters && len(out) > 2; iter++ {
		i := rng.Intn(len(out) - 2)
		j := i + 2 + rng.Intn(len(out)-i-2)
		if cc.SegmentFree(out[i], out[j]) {
			out = append(out[:i+1], out[j:]...)
		}
	}
	return out
}

// Parameterize densifies the polyline at the configured spacing and assigns
// per-way-point velocity, yaw, and time using a trapezoidal speed profile
// (ramp up from rest, cruise, ramp down to rest at the goal).
func (s *Smoother) Parameterize(path []geom.Vec3) *Trajectory {
	if len(path) == 0 {
		return &Trajectory{}
	}
	if len(path) == 1 {
		return &Trajectory{Points: []Waypoint{{Pos: path[0]}}}
	}

	// Densify.
	var pts []geom.Vec3
	pts = append(pts, path[0])
	for i := 1; i < len(path); i++ {
		seg := path[i].Sub(path[i-1])
		segLen := seg.Len()
		n := int(math.Ceil(segLen / s.Spacing))
		for k := 1; k <= n; k++ {
			pts = append(pts, path[i-1].Add(seg.Scale(float64(k)/float64(n))))
		}
	}

	// Cumulative arc length.
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + pts[i].Dist(pts[i-1])
	}
	total := cum[len(cum)-1]

	// Trapezoidal speed profile over arc length.
	rampDist := s.CruiseSpeed * s.CruiseSpeed / (2 * s.Accel)
	speedAt := func(d float64) float64 {
		var v float64
		switch {
		case total <= 2*rampDist:
			// Triangle profile: never reaches cruise.
			half := total / 2
			if d <= half {
				v = math.Sqrt(2 * s.Accel * d)
			} else {
				v = math.Sqrt(2 * s.Accel * (total - d))
			}
		case d < rampDist:
			v = math.Sqrt(2 * s.Accel * d)
		case d > total-rampDist:
			v = math.Sqrt(2 * s.Accel * (total - d))
		default:
			v = s.CruiseSpeed
		}
		// Floor the feed-forward speed so way-point times stay finite.
		return math.Max(v, 0.3)
	}

	tr := &Trajectory{Points: make([]Waypoint, len(pts))}
	t := 0.0
	for i, p := range pts {
		var dir geom.Vec3
		if i+1 < len(pts) {
			dir = pts[i+1].Sub(p).Normalize()
		} else {
			dir = p.Sub(pts[i-1]).Normalize()
		}
		v := speedAt(cum[i])
		if i > 0 {
			segLen := cum[i] - cum[i-1]
			vPrev := speedAt(cum[i-1])
			t += segLen / math.Max((v+vPrev)/2, 0.15)
		}
		tr.Points[i] = Waypoint{
			Pos: p,
			Vel: dir.Scale(v),
			Yaw: dir.Yaw(),
			T:   t,
		}
	}
	// Terminal way-point: stop.
	last := &tr.Points[len(tr.Points)-1]
	last.Vel = geom.Vec3{}
	return tr
}

// Smooth runs the full kernel: shortcut then parameterise.
func (s *Smoother) Smooth(path []geom.Vec3, cc CollisionChecker, rng *rand.Rand) *Trajectory {
	return s.Parameterize(s.Shortcut(path, cc, rng))
}
