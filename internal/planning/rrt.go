package planning

import (
	"math/rand"

	"mavfi/internal/geom"
)

// RRT is the baseline rapidly-exploring random tree planner (LaValle 1998):
// grow a single tree from the start by steering toward uniform samples, and
// finish when a node can connect to the goal.
//
// An RRT instance owns its search-tree arena and spatial index (reused
// across Plan invocations) and must not serve concurrent Plan calls; the
// mission pipeline constructs one planner per mission.
type RRT struct {
	// Cfg is the sampling configuration.
	Cfg Config

	tree searchTree // per-planner scratch, reset by every Plan
}

// NewRRT returns an RRT planner with the given configuration.
func NewRRT(cfg Config) *RRT { return &RRT{Cfg: cfg} }

// Name implements Planner.
func (p *RRT) Name() string { return "RRT" }

// Plan implements Planner.
func (p *RRT) Plan(start, goal geom.Vec3, cc CollisionChecker, rng *rand.Rand) ([]geom.Vec3, error) {
	beginPlan(cc)
	if !cc.PointFree(start) || !cc.PointFree(goal) {
		return nil, ErrNoPath
	}
	if cc.SegmentFree(start, goal) {
		return []geom.Vec3{start, goal}, nil
	}
	t := &p.tree
	t.reset(&p.Cfg, treeNode{pos: start, parent: -1})
	for iter := 0; iter < p.Cfg.MaxIters; iter++ {
		target := p.Cfg.sample(goal, rng)
		ni := t.nearest(target)
		cand := p.Cfg.steer(t.nodes[ni].pos, target)
		if !cc.SegmentFree(t.nodes[ni].pos, cand) {
			continue
		}
		li := t.add(treeNode{pos: cand, parent: ni})
		if cand.Dist(goal) <= p.Cfg.GoalTol && cc.SegmentFree(cand, goal) {
			path := extractPath(t.nodes, li)
			if path[len(path)-1] != goal {
				path = append(path, goal)
			}
			return path, nil
		}
	}
	return nil, ErrNoPath
}
