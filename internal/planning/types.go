// Package planning implements the planning stage of the PPC pipeline: the
// sampling-based motion planners the paper evaluates (RRT, RRT*,
// RRT-Connect), the path-smoothening kernel, trajectory time
// parameterisation (the "Multidoftraj" inter-kernel state), and the
// package-delivery mission planner.
package planning

import (
	"errors"
	"math/rand"

	"mavfi/internal/geom"
)

// Waypoint is one multi-DOF trajectory sample: position, feed-forward
// velocity, heading, and time offset from trajectory start. Its fields are
// the planning-stage inter-kernel states the paper corrupts in Fig. 4
// (x, y, z, yaw) and monitors in the detectors.
type Waypoint struct {
	Pos geom.Vec3
	Vel geom.Vec3
	Yaw float64
	T   float64
}

// Trajectory is the time-parameterised multi-DOF trajectory the planning
// stage publishes to control.
type Trajectory struct {
	Points []Waypoint
}

// Duration returns the trajectory's total time span.
func (tr *Trajectory) Duration() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T
}

// Length returns the trajectory's path length in metres.
func (tr *Trajectory) Length() float64 {
	total := 0.0
	for i := 1; i < len(tr.Points); i++ {
		total += tr.Points[i].Pos.Dist(tr.Points[i-1].Pos)
	}
	return total
}

// Positions returns just the way-point positions, the form the collision
// checker consumes.
func (tr *Trajectory) Positions() []geom.Vec3 {
	return tr.AppendPositions(nil)
}

// AppendPositions appends the way-point positions to dst and returns the
// extended slice, letting per-tick callers reuse one scratch buffer instead
// of allocating a fresh slice every invocation.
func (tr *Trajectory) AppendPositions(dst []geom.Vec3) []geom.Vec3 {
	for _, w := range tr.Points {
		dst = append(dst, w.Pos)
	}
	return dst
}

// CollisionChecker abstracts the occupancy queries planners make against the
// perception stage's map.
type CollisionChecker interface {
	// PointFree reports whether the vehicle fits at p.
	PointFree(p geom.Vec3) bool
	// SegmentFree reports whether the straight motion a→b is collision-free.
	SegmentFree(a, b geom.Vec3) bool
}

// PlanCacher is an optional CollisionChecker extension. BeginPlan marks the
// start of one planner invocation, during which the underlying map is
// guaranteed not to mutate (the mission loop runs planning and scan
// integration strictly in turn), licensing the checker to memoise per-voxel
// collision answers across the thousands of PointFree/SegmentFree probes a
// single Plan issues. The octomap-backed checker arms its voxel-keyed
// classification cache here; checkers without caching simply don't implement
// the interface.
type PlanCacher interface {
	BeginPlan()
}

// beginPlan notifies cc that a planner invocation is starting, when it cares.
// Every Planner implementation calls this first thing in Plan.
func beginPlan(cc CollisionChecker) {
	if p, ok := cc.(PlanCacher); ok {
		p.BeginPlan()
	}
}

// Planner is a single-query motion planner producing a piecewise-linear path
// from start to goal.
type Planner interface {
	Name() string
	Plan(start, goal geom.Vec3, cc CollisionChecker, rng *rand.Rand) ([]geom.Vec3, error)
}

// ErrNoPath is returned when a planner exhausts its iteration budget without
// connecting start to goal.
var ErrNoPath = errors.New("planning: no path found")

// IndexPolicy selects how the RRT-family planners answer their nearest-node
// and neighbourhood tree queries. Both policies return bit-identical
// results — the bucketed index reproduces the linear scans' first-min,
// lowest-index tie-breaking exactly (pinned by the equivalence and
// determinism tests) — so the policy is a pure performance knob.
type IndexPolicy int

const (
	// IndexAuto (the zero value, and the default) uses the bucketed grid
	// index.
	IndexAuto IndexPolicy = iota
	// IndexGrid forces the epoch-stamped bucketed grid index.
	IndexGrid
	// IndexLinear forces the reference linear scans over the node arena.
	IndexLinear
)

// Config holds the sampling parameters shared by the RRT-family planners.
type Config struct {
	// Bounds is the sampling volume.
	Bounds geom.AABB
	// StepSize is the maximum edge extension length in metres.
	StepSize float64
	// MaxIters bounds the number of sampling iterations.
	MaxIters int
	// GoalBias is the probability of sampling the goal directly.
	GoalBias float64
	// GoalTol is the radius within which a node can connect to the goal.
	GoalTol float64
	// RewireRadius is the RRT* neighbourhood radius.
	RewireRadius float64
	// Index selects the spatial-index policy for tree queries
	// (bit-identical either way; see IndexPolicy).
	Index IndexPolicy
}

// DefaultConfig returns the experiment planner configuration for a flight
// volume.
func DefaultConfig(bounds geom.AABB) Config {
	return Config{
		Bounds:       bounds,
		StepSize:     3.0,
		MaxIters:     4000,
		GoalBias:     0.1,
		GoalTol:      2.0,
		RewireRadius: 6.0,
	}
}

// sample draws a point uniformly from the config bounds, goal-biased.
func (c Config) sample(goal geom.Vec3, rng *rand.Rand) geom.Vec3 {
	if rng.Float64() < c.GoalBias {
		return goal
	}
	size := c.Bounds.Size()
	return c.Bounds.Min.Add(geom.V(
		rng.Float64()*size.X,
		rng.Float64()*size.Y,
		rng.Float64()*size.Z,
	))
}

// steer moves from 'from' toward 'to' by at most StepSize.
func (c Config) steer(from, to geom.Vec3) geom.Vec3 {
	d := to.Sub(from)
	if d.Len() <= c.StepSize {
		return to
	}
	return from.Add(d.Normalize().Scale(c.StepSize))
}

// treeNode is one vertex of an RRT search tree.
type treeNode struct {
	pos    geom.Vec3
	parent int // index into the tree slice; -1 for the root
	cost   float64
}

// nearest returns the index of the tree node closest to p by linear scan:
// the reference implementation of the first-min rule (strictly smaller
// squared distance wins; ties keep the lowest index) that the bucketed
// gridIndex must reproduce bit-identically.
func nearest(tree []treeNode, p geom.Vec3) int {
	best, bestD := 0, tree[0].pos.DistSq(p)
	for i := 1; i < len(tree); i++ {
		if d := tree[i].pos.DistSq(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// nearLinear appends to out the index of every tree node within squared
// distance r2 of p (inclusive), in ascending index order: the reference
// neighbourhood query the gridIndex must reproduce bit-identically.
func nearLinear(tree []treeNode, p geom.Vec3, r2 float64, out []int32) []int32 {
	for i := range tree {
		if tree[i].pos.DistSq(p) <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

// extractPath walks parents from leaf to root and returns the path in
// start→goal order.
func extractPath(tree []treeNode, leaf int) []geom.Vec3 {
	var rev []geom.Vec3
	for i := leaf; i >= 0; i = tree[i].parent {
		rev = append(rev, tree[i].pos)
	}
	path := make([]geom.Vec3, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// PathLength returns the length of a piecewise-linear path.
func PathLength(path []geom.Vec3) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		total += path[i].Dist(path[i-1])
	}
	return total
}
