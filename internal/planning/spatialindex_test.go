package planning

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// randTree builds a searchTree with the grid armed over bounds, inserting n
// nodes drawn by gen. It returns the tree; the reference scans run over
// tree.nodes directly.
func randTree(bounds geom.AABB, n int, gen func(i int) geom.Vec3) *searchTree {
	cfg := Config{Bounds: bounds, StepSize: 3, MaxIters: n + 4}
	t := &searchTree{}
	t.reset(&cfg, treeNode{pos: gen(0), parent: -1})
	for i := 1; i < n; i++ {
		t.add(treeNode{pos: gen(i), parent: 0})
	}
	return t
}

// genUniform draws points uniformly inside bounds; a slice of the drawn
// points doubles as the tie-generation pool (every 7th point repeats an
// earlier one exactly, so equal-distance ties actually occur).
func genUniform(bounds geom.AABB, rng *rand.Rand) func(i int) geom.Vec3 {
	var drawn []geom.Vec3
	size := bounds.Size()
	return func(i int) geom.Vec3 {
		if i%7 == 3 && len(drawn) > 0 {
			p := drawn[rng.Intn(len(drawn))] // exact duplicate: forced tie
			drawn = append(drawn, p)
			return p
		}
		p := bounds.Min.Add(geom.V(
			rng.Float64()*size.X, rng.Float64()*size.Y, rng.Float64()*size.Z))
		if i%11 == 5 {
			// Out-of-bounds stragglers: the mission start can sit outside
			// the sampling volume, so the index must handle clamped cells.
			p = p.Add(geom.V((rng.Float64()-0.5)*3*size.X, (rng.Float64()-0.5)*3*size.Y, 0))
		}
		drawn = append(drawn, p)
		return p
	}
}

// TestGridIndexNearestMatchesLinear pins the index's nearest against the
// reference linear scan — exact index equality, including duplicate-position
// ties and out-of-bounds queries — across random trees and volumes.
func TestGridIndexNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := []geom.AABB{
		geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10)),
		geom.Box(geom.V(-25, -10, 0), geom.V(55, 70, 20)),
		geom.Box(geom.V(0, 0, 0), geom.V(3, 200, 3)), // degenerate corridor
	}
	for bi, b := range bounds {
		for _, n := range []int{1, 2, 17, 300, 1500} {
			tree := randTree(b, n, genUniform(b, rng))
			size := b.Size()
			for q := 0; q < 400; q++ {
				p := b.Min.Add(geom.V(rng.Float64()*size.X, rng.Float64()*size.Y, rng.Float64()*size.Z))
				if q%9 == 0 {
					p = p.Add(geom.V(size.X*2, -size.Y, 5)) // far outside
				}
				got := tree.grid.nearest(p)
				want := nearest(tree.nodes, p)
				if got != want {
					t.Fatalf("bounds %d n=%d query %v: grid nearest=%d (d=%v), linear=%d (d=%v)",
						bi, n, p, got, tree.nodes[got].pos.DistSq(p), want, tree.nodes[want].pos.DistSq(p))
				}
			}
		}
	}
}

// TestGridIndexNearMatchesLinear pins the index's radius query against the
// reference linear scan: identical index sets in identical (ascending)
// order, radii spanning sub-cell to whole-volume.
func TestGridIndexNearMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := geom.Box(geom.V(0, 0, 0), geom.V(60, 45, 12))
	size := b.Size()
	for _, n := range []int{1, 40, 800} {
		tree := randTree(b, n, genUniform(b, rng))
		for _, radius := range []float64{0.5, 3, 6, 14, 100} {
			for q := 0; q < 150; q++ {
				p := b.Min.Add(geom.V(rng.Float64()*size.X, rng.Float64()*size.Y, rng.Float64()*size.Z))
				got := tree.grid.near(p, radius, nil)
				want := nearLinear(tree.nodes, p, radius*radius, nil)
				if len(got) != len(want) {
					t.Fatalf("n=%d r=%v: grid returned %d ids, linear %d", n, radius, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d r=%v: id %d: grid=%d linear=%d", n, radius, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestGridIndexEpochReuse verifies per-plan reuse: resetting the same
// searchTree for a new invocation (same geometry → epoch bump, different
// geometry → fresh grid) must not leak nodes from the previous plan.
func TestGridIndexEpochReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10))
	cfg := Config{Bounds: b, StepSize: 3, MaxIters: 64}
	tree := &searchTree{}
	for plan := 0; plan < 50; plan++ {
		if plan == 25 {
			// Geometry change mid-life: the grid must rebuild.
			cfg.Bounds = geom.Box(geom.V(-10, -10, 0), geom.V(50, 50, 20))
			b = cfg.Bounds
		}
		gen := genUniform(b, rng)
		tree.reset(&cfg, treeNode{pos: gen(0), parent: -1})
		n := 1 + rng.Intn(60)
		for i := 1; i < n; i++ {
			tree.add(treeNode{pos: gen(i), parent: 0})
		}
		size := b.Size()
		for q := 0; q < 60; q++ {
			p := b.Min.Add(geom.V(rng.Float64()*size.X, rng.Float64()*size.Y, rng.Float64()*size.Z))
			if got, want := tree.grid.nearest(p), nearest(tree.nodes, p); got != want {
				t.Fatalf("plan %d query %d: grid nearest=%d linear=%d (stale bucket leak?)", plan, q, got, want)
			}
			got := tree.grid.near(p, 6, nil)
			want := nearLinear(tree.nodes, p, 36, nil)
			if len(got) != len(want) {
				t.Fatalf("plan %d: near sizes diverged: %d vs %d", plan, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("plan %d: near id %d: grid=%d linear=%d", plan, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGridIndexCellCap verifies the cell edge doubles until a huge volume
// fits the bucket cap, and queries stay exact there.
func TestGridIndexCellCap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := geom.Box(geom.V(0, 0, 0), geom.V(5000, 5000, 2000))
	tree := randTree(b, 500, genUniform(b, rng))
	if cells := int64(tree.grid.nx) * int64(tree.grid.ny) * int64(tree.grid.nz); cells > maxGridCells {
		t.Fatalf("grid has %d cells, cap is %d", cells, maxGridCells)
	}
	size := b.Size()
	for q := 0; q < 200; q++ {
		p := b.Min.Add(geom.V(rng.Float64()*size.X, rng.Float64()*size.Y, rng.Float64()*size.Z))
		if got, want := tree.grid.nearest(p), nearest(tree.nodes, p); got != want {
			t.Fatalf("query %v: grid nearest=%d linear=%d", p, got, want)
		}
	}
}

// TestGridIndexNearDuplicateDistanceTies pins the PR 5 merge-not-sort near()
// on the orders a comparison can no longer repair: duplicate positions
// (same distance, same bucket), distinct positions at exactly equal
// distances in different buckets, and interleaved insertion ids spanning
// many buckets. The result must be the linear scan's ascending-id order,
// exactly.
func TestGridIndexNearDuplicateDistanceTies(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10))
	cfg := Config{Bounds: b, StepSize: 3, MaxIters: 64}
	tree := &searchTree{}
	tree.reset(&cfg, treeNode{pos: geom.V(20, 20, 5), parent: -1})
	q := geom.V(20, 20, 5)
	// Exact duplicates of the root position (distance 0 ties, one bucket).
	for i := 0; i < 3; i++ {
		tree.add(treeNode{pos: geom.V(20, 20, 5), parent: 0})
	}
	// Mirror pairs at exactly equal distances, straddling bucket boundaries,
	// inserted in an id order that interleaves the buckets.
	for _, d := range []float64{2, 6, 11, 14} {
		tree.add(treeNode{pos: geom.V(20+d, 20, 5), parent: 0})
		tree.add(treeNode{pos: geom.V(20-d, 20, 5), parent: 0})
		tree.add(treeNode{pos: geom.V(20, 20+d, 5), parent: 0})
		tree.add(treeNode{pos: geom.V(20, 20-d, 5), parent: 0})
	}
	for _, radius := range []float64{0, 2, 6.0, 11, 30} {
		got := tree.grid.near(q, radius, nil)
		want := nearLinear(tree.nodes, q, radius*radius, nil)
		if len(got) != len(want) {
			t.Fatalf("radius %v: grid returned %d ids, linear %d", radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("radius %v id %d: grid=%d linear=%d", radius, i, got[i], want[i])
			}
		}
	}
}

// TestGridIndexNearUnsortedFallback pins the defensive sort fallback: ids
// inserted out of ascending order (impossible through the planners, but the
// merge's precondition) must still come back ascending.
func TestGridIndexNearUnsortedFallback(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 10))
	var g gridIndex
	g.configure(b, 12)
	// Same bucket, descending ids.
	g.insert(5, geom.V(20, 20, 5))
	g.insert(2, geom.V(20.5, 20, 5))
	g.insert(9, geom.V(19.5, 20, 5))
	if !g.unsorted {
		t.Fatal("descending same-bucket insert did not arm the sort fallback")
	}
	got := g.near(geom.V(20, 20, 5), 5, nil)
	want := []int32{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("near returned %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("near returned %v, want %v", got, want)
		}
	}
	// A fresh configure clears the flag.
	g.configure(b, 12)
	if g.unsorted {
		t.Fatal("configure did not clear the unsorted flag")
	}
}

// TestSearchTreeLinearPolicy verifies IndexLinear really bypasses the grid
// and serves the reference scans.
func TestSearchTreeLinearPolicy(t *testing.T) {
	cfg := Config{Bounds: geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)), StepSize: 3, MaxIters: 8, Index: IndexLinear}
	tree := &searchTree{}
	tree.reset(&cfg, treeNode{pos: geom.V(1, 1, 1), parent: -1})
	tree.add(treeNode{pos: geom.V(9, 9, 9), parent: 0})
	if tree.useGrid {
		t.Fatal("IndexLinear armed the grid")
	}
	if got := tree.nearest(geom.V(8, 8, 8)); got != 1 {
		t.Fatalf("nearest = %d", got)
	}
	if got := tree.near(geom.V(0, 0, 0), 100, nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("near = %v", got)
	}
}
