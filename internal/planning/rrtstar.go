package planning

import (
	"math/rand"

	"mavfi/internal/geom"
)

// RRTStar is the asymptotically optimal RRT* planner (Karaman & Frazzoli
// 2011): new nodes choose the lowest-cost parent in a neighbourhood and
// rewire neighbours through themselves when that shortens their cost-to-
// come. This is the default motion planner of the paper's PPC pipeline.
//
// An RRTStar instance owns its search-tree arena, spatial index, and
// neighbourhood scratch (reused across Plan invocations) and must not serve
// concurrent Plan calls; the mission pipeline constructs one planner per
// mission.
type RRTStar struct {
	// Cfg is the sampling configuration.
	Cfg Config

	tree searchTree // per-planner scratch, reset by every Plan
	hood []int32    // neighbourhood scratch for choose-parent/rewire
}

// NewRRTStar returns an RRT* planner with the given configuration.
func NewRRTStar(cfg Config) *RRTStar { return &RRTStar{Cfg: cfg} }

// Name implements Planner.
func (p *RRTStar) Name() string { return "RRT*" }

// Plan implements Planner. The collision checker's per-plan voxel cache (see
// PlanCacher) is armed first: RRT* is by far the heaviest query client —
// choose-parent and rewiring re-probe the same neighbourhood segments every
// iteration — and the map cannot mutate for the duration of the invocation.
func (p *RRTStar) Plan(start, goal geom.Vec3, cc CollisionChecker, rng *rand.Rand) ([]geom.Vec3, error) {
	beginPlan(cc)
	if !cc.PointFree(start) || !cc.PointFree(goal) {
		return nil, ErrNoPath
	}
	t := &p.tree
	t.reset(&p.Cfg, treeNode{pos: start, parent: -1, cost: 0})
	bestGoal := -1
	bestCost := 0.0

	for iter := 0; iter < p.Cfg.MaxIters; iter++ {
		target := p.Cfg.sample(goal, rng)
		ni := t.nearest(target)
		cand := p.Cfg.steer(t.nodes[ni].pos, target)
		if !cc.SegmentFree(t.nodes[ni].pos, cand) {
			continue
		}

		// Choose the cheapest collision-free parent in the neighbourhood.
		// The neighbourhood is gathered before the candidate is added, in
		// ascending node-index order, so tie-breaking matches the reference
		// linear scan exactly.
		parent := ni
		cost := t.nodes[ni].cost + t.nodes[ni].pos.Dist(cand)
		p.hood = t.near(cand, p.Cfg.RewireRadius, p.hood[:0])
		for _, i := range p.hood {
			n := &t.nodes[i]
			if c := n.cost + n.pos.Dist(cand); c < cost && cc.SegmentFree(n.pos, cand) {
				parent, cost = int(i), c
			}
		}
		li := t.add(treeNode{pos: cand, parent: parent, cost: cost})

		// Rewire neighbours through the new node when cheaper.
		for _, i := range p.hood {
			n := &t.nodes[i]
			if through := cost + cand.Dist(n.pos); through < n.cost && cc.SegmentFree(cand, n.pos) {
				n.parent = li
				n.cost = through
			}
		}

		if cand.Dist(goal) <= p.Cfg.GoalTol && cc.SegmentFree(cand, goal) {
			total := cost + cand.Dist(goal)
			if bestGoal < 0 || total < bestCost {
				bestGoal, bestCost = li, total
			}
			// Keep sampling a little longer to let rewiring improve the
			// path, but cap the extra effort at 25% of the budget.
			if iter > p.Cfg.MaxIters/4 {
				break
			}
		}
	}
	if bestGoal < 0 {
		return nil, ErrNoPath
	}
	path := extractPath(t.nodes, bestGoal)
	if path[len(path)-1] != goal {
		path = append(path, goal)
	}
	return path, nil
}
