package planning

import (
	"math/rand"

	"mavfi/internal/geom"
)

// RRTStar is the asymptotically optimal RRT* planner (Karaman & Frazzoli
// 2011): new nodes choose the lowest-cost parent in a neighbourhood and
// rewire neighbours through themselves when that shortens their cost-to-
// come. This is the default motion planner of the paper's PPC pipeline.
type RRTStar struct {
	Cfg Config
}

// NewRRTStar returns an RRT* planner with the given configuration.
func NewRRTStar(cfg Config) *RRTStar { return &RRTStar{Cfg: cfg} }

// Name implements Planner.
func (p *RRTStar) Name() string { return "RRT*" }

// Plan implements Planner. The collision checker's per-plan voxel cache (see
// PlanCacher) is armed first: RRT* is by far the heaviest query client —
// choose-parent and rewiring re-probe the same neighbourhood segments every
// iteration — and the map cannot mutate for the duration of the invocation.
func (p *RRTStar) Plan(start, goal geom.Vec3, cc CollisionChecker, rng *rand.Rand) ([]geom.Vec3, error) {
	beginPlan(cc)
	if !cc.PointFree(start) || !cc.PointFree(goal) {
		return nil, ErrNoPath
	}
	tree := []treeNode{{pos: start, parent: -1, cost: 0}}
	bestGoal := -1
	bestCost := 0.0

	for iter := 0; iter < p.Cfg.MaxIters; iter++ {
		target := p.Cfg.sample(goal, rng)
		ni := nearest(tree, target)
		cand := p.Cfg.steer(tree[ni].pos, target)
		if !cc.SegmentFree(tree[ni].pos, cand) {
			continue
		}

		// Choose the cheapest collision-free parent in the neighbourhood.
		parent := ni
		cost := tree[ni].cost + tree[ni].pos.Dist(cand)
		r2 := p.Cfg.RewireRadius * p.Cfg.RewireRadius
		var hood []int
		for i := range tree {
			if tree[i].pos.DistSq(cand) <= r2 {
				hood = append(hood, i)
			}
		}
		for _, i := range hood {
			c := tree[i].cost + tree[i].pos.Dist(cand)
			if c < cost && cc.SegmentFree(tree[i].pos, cand) {
				parent, cost = i, c
			}
		}
		tree = append(tree, treeNode{pos: cand, parent: parent, cost: cost})
		li := len(tree) - 1

		// Rewire neighbours through the new node when cheaper.
		for _, i := range hood {
			through := cost + cand.Dist(tree[i].pos)
			if through < tree[i].cost && cc.SegmentFree(cand, tree[i].pos) {
				tree[i].parent = li
				tree[i].cost = through
			}
		}

		if cand.Dist(goal) <= p.Cfg.GoalTol && cc.SegmentFree(cand, goal) {
			total := cost + cand.Dist(goal)
			if bestGoal < 0 || total < bestCost {
				bestGoal, bestCost = li, total
			}
			// Keep sampling a little longer to let rewiring improve the
			// path, but cap the extra effort at 25% of the budget.
			if iter > p.Cfg.MaxIters/4 {
				break
			}
		}
	}
	if bestGoal < 0 {
		return nil, ErrNoPath
	}
	path := extractPath(tree, bestGoal)
	if path[len(path)-1] != goal {
		path = append(path, goal)
	}
	return path, nil
}
