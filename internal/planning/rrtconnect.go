package planning

import (
	"math/rand"

	"mavfi/internal/geom"
)

// RRTConnect is the bidirectional RRT-Connect planner (Kuffner & LaValle
// 2000): two trees grow from the start and the goal, each alternately
// extending toward a sample and then greedily connecting toward the other
// tree's newest node.
//
// An RRTConnect instance owns the two search-tree arenas and their spatial
// indices (reused across Plan invocations) and must not serve concurrent
// Plan calls; the mission pipeline constructs one planner per mission.
type RRTConnect struct {
	// Cfg is the sampling configuration.
	Cfg Config

	ta searchTree // start-rooted tree, per-planner scratch
	tb searchTree // goal-rooted tree, per-planner scratch
}

// NewRRTConnect returns an RRT-Connect planner with the given configuration.
func NewRRTConnect(cfg Config) *RRTConnect { return &RRTConnect{Cfg: cfg} }

// Name implements Planner.
func (p *RRTConnect) Name() string { return "RRTConnect" }

type connectResult int

const (
	trapped connectResult = iota
	advanced
	reached
)

// extend grows tree by one step toward target.
func (p *RRTConnect) extend(tree *searchTree, target geom.Vec3, cc CollisionChecker) (connectResult, int) {
	ni := tree.nearest(target)
	cand := p.Cfg.steer(tree.nodes[ni].pos, target)
	if !cc.SegmentFree(tree.nodes[ni].pos, cand) {
		return trapped, -1
	}
	li := tree.add(treeNode{pos: cand, parent: ni})
	if cand.Dist(target) < 1e-9 {
		return reached, li
	}
	return advanced, li
}

// connect repeatedly extends tree toward target until blocked or reached.
func (p *RRTConnect) connect(tree *searchTree, target geom.Vec3, cc CollisionChecker) (connectResult, int) {
	for {
		res, li := p.extend(tree, target, cc)
		if res != advanced {
			return res, li
		}
		// Cap runaway connects against the iteration budget implicitly via
		// tree growth; a tree larger than MaxIters nodes aborts.
		if tree.len() > p.Cfg.MaxIters {
			return trapped, -1
		}
	}
}

// Plan implements Planner.
func (p *RRTConnect) Plan(start, goal geom.Vec3, cc CollisionChecker, rng *rand.Rand) ([]geom.Vec3, error) {
	beginPlan(cc)
	if !cc.PointFree(start) || !cc.PointFree(goal) {
		return nil, ErrNoPath
	}
	p.ta.reset(&p.Cfg, treeNode{pos: start, parent: -1}) // rooted at start
	p.tb.reset(&p.Cfg, treeNode{pos: goal, parent: -1})  // rooted at goal
	fromStart := true

	for iter := 0; iter < p.Cfg.MaxIters; iter++ {
		a, b := &p.ta, &p.tb
		if !fromStart {
			a, b = &p.tb, &p.ta
		}
		target := p.Cfg.sample(goal, rng)
		res, li := p.extend(a, target, cc)
		if res != trapped {
			newPos := a.nodes[li].pos
			cres, cli := p.connect(b, newPos, cc)
			if cres == reached {
				// Join: path through tree a to newPos, then back down tree b.
				var pa, pb []geom.Vec3
				if fromStart {
					pa = extractPath(p.ta.nodes, li)
					pb = extractPath(p.tb.nodes, cli)
				} else {
					pa = extractPath(p.ta.nodes, cli)
					pb = extractPath(p.tb.nodes, li)
				}
				// pa runs start→join, pb runs goal→join; reverse pb.
				path := append([]geom.Vec3{}, pa...)
				for i := len(pb) - 2; i >= 0; i-- { // -2 skips duplicate join point
					path = append(path, pb[i])
				}
				return path, nil
			}
		}
		fromStart = !fromStart
	}
	return nil, ErrNoPath
}
