// Package geom provides the small set of 3-D geometry primitives used by the
// MAV simulator, the occupancy map, and the motion planners: vectors,
// axis-aligned boxes, rays, and segment queries.
//
// All types are plain values; the zero value is meaningful (origin, empty
// box). Angles are radians. The coordinate convention follows the simulator:
// x/y span the ground plane and z is altitude.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector or point.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and o.
func (v Vec3) Mul(o Vec3) Vec3 { return Vec3{v.X * o.X, v.Y * o.Y, v.Z * o.Z} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Len returns the Euclidean norm of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// LenSq returns the squared Euclidean norm of v.
func (v Vec3) LenSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and o.
func (v Vec3) Dist(o Vec3) float64 { return v.Sub(o).Len() }

// DistSq returns the squared Euclidean distance between v and o.
func (v Vec3) DistSq(o Vec3) float64 { return v.Sub(o).LenSq() }

// Normalize returns the unit vector in the direction of v, or the zero vector
// if v has (near-)zero length.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l < 1e-12 {
		return Vec3{}
	}
	return v.Scale(1 / l)
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Lerp linearly interpolates from v to o by t in [0,1].
func (v Vec3) Lerp(o Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (o.X-v.X)*t,
		v.Y + (o.Y-v.Y)*t,
		v.Z + (o.Z-v.Z)*t,
	}
}

// Clamp returns v with each component clamped to [lo, hi] component-wise.
func (v Vec3) Clamp(lo, hi Vec3) Vec3 {
	return Vec3{
		clamp(v.X, lo.X, hi.X),
		clamp(v.Y, lo.Y, hi.Y),
		clamp(v.Z, lo.Z, hi.Z),
	}
}

// ClampLen returns v with its length clamped to at most max.
func (v Vec3) ClampLen(max float64) Vec3 {
	l := v.Len()
	if l <= max || l < 1e-12 {
		return v
	}
	return v.Scale(max / l)
}

// Yaw returns the heading angle of v projected onto the ground plane,
// measured from +x toward +y, in radians.
func (v Vec3) Yaw() float64 { return math.Atan2(v.Y, v.X) }

// IsFinite reports whether all components are finite (neither NaN nor ±Inf).
func (v Vec3) IsFinite() bool {
	return isFinite(v.X) && isFinite(v.Y) && isFinite(v.Z)
}

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// Max returns the component-wise maximum of v and o.
func (v Vec3) Max(o Vec3) Vec3 {
	return Vec3{math.Max(v.X, o.X), math.Max(v.Y, o.Y), math.Max(v.Z, o.Z)}
}

// Min returns the component-wise minimum of v and o.
func (v Vec3) Min(o Vec3) Vec3 {
	return Vec3{math.Min(v.X, o.X), math.Min(v.Y, o.Y), math.Min(v.Z, o.Z)}
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Clampf clamps x to [lo, hi].
func Clampf(x, lo, hi float64) float64 { return clamp(x, lo, hi) }

// WrapAngle wraps an angle in radians to (-π, π].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest difference a-b wrapped to (-π, π].
func AngleDiff(a, b float64) float64 { return WrapAngle(a - b) }
