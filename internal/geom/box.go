package geom

import "math"

// AABB is an axis-aligned bounding box described by its minimum and maximum
// corners. A box with any Max component less than the corresponding Min
// component is empty.
type AABB struct {
	Min, Max Vec3
}

// Box constructs an AABB from two opposite corners given in any order.
func Box(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// BoxAt constructs an AABB centred at c with the given full side lengths.
func BoxAt(c Vec3, sides Vec3) AABB {
	h := sides.Scale(0.5)
	return AABB{Min: c.Sub(h), Max: c.Add(h)}
}

// Center returns the centre of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the per-axis extents of the box.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// IsEmpty reports whether the box encloses no volume.
func (b AABB) IsEmpty() bool {
	return b.Max.X < b.Min.X || b.Max.Y < b.Min.Y || b.Max.Z < b.Min.Z
}

// Contains reports whether point p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Intersects reports whether b and o overlap (touching counts).
func (b AABB) Intersects(o AABB) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// Expand returns b grown by margin m on every face. A negative margin
// shrinks the box.
func (b AABB) Expand(m float64) AABB {
	d := Vec3{m, m, m}
	return AABB{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// ClosestPoint returns the point inside b closest to p.
func (b AABB) ClosestPoint(p Vec3) Vec3 {
	return p.Clamp(b.Min, b.Max)
}

// Dist returns the distance from p to the box surface (0 if p is inside).
func (b AABB) Dist(p Vec3) float64 {
	return b.ClosestPoint(p).Dist(p)
}

// SegmentIntersects reports whether the segment from p0 to p1 passes through
// the box, using the slab method.
func (b AABB) SegmentIntersects(p0, p1 Vec3) bool {
	hit, _, _ := b.SegmentIntersection(p0, p1)
	return hit
}

// SegmentIntersection computes the parametric entry/exit of segment p0→p1
// through b. It returns hit=false when the segment misses the box; otherwise
// tEnter and tExit are the clamped parameters in [0,1] where the segment is
// inside the box.
func (b AABB) SegmentIntersection(p0, p1 Vec3) (hit bool, tEnter, tExit float64) {
	d := p1.Sub(p0)
	tmin, tmax := 0.0, 1.0
	for axis := 0; axis < 3; axis++ {
		var o, dir, lo, hi float64
		switch axis {
		case 0:
			o, dir, lo, hi = p0.X, d.X, b.Min.X, b.Max.X
		case 1:
			o, dir, lo, hi = p0.Y, d.Y, b.Min.Y, b.Max.Y
		default:
			o, dir, lo, hi = p0.Z, d.Z, b.Min.Z, b.Max.Z
		}
		if math.Abs(dir) < 1e-15 {
			if o < lo || o > hi {
				return false, 0, 0
			}
			continue
		}
		t1 := (lo - o) / dir
		t2 := (hi - o) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return false, 0, 0
		}
	}
	return true, tmin, tmax
}

// RayIntersection computes the first intersection of the ray origin+t*dir
// (t >= 0) with the box. It returns hit=false when the ray misses.
func (b AABB) RayIntersection(origin, dir Vec3) (hit bool, t float64) {
	// Reuse the slab test with a long segment; maxRange bounds sensing
	// distances in this codebase by a wide margin.
	const maxRange = 1e6
	ok, tEnter, _ := b.SegmentIntersection(origin, origin.Add(dir.Normalize().Scale(maxRange)))
	if !ok {
		return false, 0
	}
	return true, tEnter * maxRange
}
