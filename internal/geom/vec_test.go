package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func vecAlmostEq(a, b Vec3) bool {
	return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) && almostEq(a.Z, b.Z)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(clampMag(ax), clampMag(ay), clampMag(az))
		b := V(clampMag(bx), clampMag(by), clampMag(bz))
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-6*(1+a.LenSq()*b.LenSq()) &&
			math.Abs(c.Dot(b)) < 1e-6*(1+a.LenSq()*b.LenSq())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampMag keeps quick-generated values in a numerically reasonable range.
func clampMag(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

func TestNormalize(t *testing.T) {
	if got := V(3, 4, 0).Normalize(); !vecAlmostEq(got, V(0.6, 0.8, 0)) {
		t.Errorf("Normalize = %v", got)
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(0) = %v, want zero", got)
	}
	f := func(x, y, z float64) bool {
		v := V(clampMag(x), clampMag(y), clampMag(z))
		n := v.Normalize()
		l := n.Len()
		return l == 0 || math.Abs(l-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 4)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !vecAlmostEq(got, V(5, -5, 2)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestClampLen(t *testing.T) {
	v := V(3, 4, 0) // length 5
	if got := v.ClampLen(10); got != v {
		t.Errorf("ClampLen above length changed vector: %v", got)
	}
	c := v.ClampLen(1)
	if !almostEq(c.Len(), 1) {
		t.Errorf("ClampLen(1).Len = %v", c.Len())
	}
	if !vecAlmostEq(c.Normalize(), v.Normalize()) {
		t.Error("ClampLen changed direction")
	}
	if got := (Vec3{}).ClampLen(1); got != (Vec3{}) {
		t.Errorf("ClampLen(zero) = %v", got)
	}
}

func TestClampComponentwise(t *testing.T) {
	v := V(-5, 0.5, 99)
	got := v.Clamp(V(0, 0, 0), V(1, 1, 1))
	if got != V(0, 0.5, 1) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestDistAndLen(t *testing.T) {
	if d := V(1, 1, 1).Dist(V(1, 1, 1)); d != 0 {
		t.Errorf("Dist same = %v", d)
	}
	if d := V(0, 0, 0).Dist(V(3, 4, 0)); !almostEq(d, 5) {
		t.Errorf("Dist = %v", d)
	}
	if d := V(0, 0, 0).DistSq(V(3, 4, 0)); !almostEq(d, 25) {
		t.Errorf("DistSq = %v", d)
	}
}

func TestYaw(t *testing.T) {
	if y := V(1, 0, 0).Yaw(); !almostEq(y, 0) {
		t.Errorf("Yaw(+x) = %v", y)
	}
	if y := V(0, 1, 0).Yaw(); !almostEq(y, math.Pi/2) {
		t.Errorf("Yaw(+y) = %v", y)
	}
	if y := V(-1, 0, 0).Yaw(); !almostEq(y, math.Pi) {
		t.Errorf("Yaw(-x) = %v", y)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, bad := range []Vec3{
		{X: math.NaN()}, {Y: math.Inf(1)}, {Z: math.Inf(-1)},
	} {
		if bad.IsFinite() {
			t.Errorf("%v reported finite", bad)
		}
	}
}

func TestMinMaxAbs(t *testing.T) {
	a, b := V(1, -2, 3), V(-1, 2, -3)
	if got := a.Max(b); got != V(1, 2, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(b); got != V(-1, -2, -3) {
		t.Errorf("Min = %v", got)
	}
	if got := b.Abs(); got != V(1, 2, 3) {
		t.Errorf("Abs = %v", got)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // wraps to (−π, π]
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !almostEq(got, c.want) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	f := func(a float64) bool {
		x := WrapAngle(clampMag(a))
		return x > -math.Pi-1e-9 && x <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if d := AngleDiff(0.1, -0.1); !almostEq(d, 0.2) {
		t.Errorf("AngleDiff = %v", d)
	}
	// Across the wrap boundary the short way.
	if d := AngleDiff(math.Pi-0.1, -math.Pi+0.1); !almostEq(d, -0.2) {
		t.Errorf("AngleDiff wrap = %v", d)
	}
}

func TestClampf(t *testing.T) {
	if Clampf(5, 0, 1) != 1 || Clampf(-5, 0, 1) != 0 || Clampf(0.5, 0, 1) != 0.5 {
		t.Error("Clampf misbehaves")
	}
}
