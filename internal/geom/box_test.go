package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxConstruction(t *testing.T) {
	b := Box(V(5, 0, 2), V(1, 3, -1)) // corners in arbitrary order
	if b.Min != V(1, 0, -1) || b.Max != V(5, 3, 2) {
		t.Errorf("Box = %+v", b)
	}
	c := BoxAt(V(0, 0, 0), V(2, 4, 6))
	if c.Min != V(-1, -2, -3) || c.Max != V(1, 2, 3) {
		t.Errorf("BoxAt = %+v", c)
	}
	if c.Center() != (Vec3{}) {
		t.Errorf("Center = %v", c.Center())
	}
	if c.Size() != V(2, 4, 6) {
		t.Errorf("Size = %v", c.Size())
	}
}

func TestBoxContains(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	if !b.Contains(V(0.5, 0.5, 0.5)) || !b.Contains(V(0, 0, 0)) || !b.Contains(V(1, 1, 1)) {
		t.Error("Contains misses interior/boundary points")
	}
	if b.Contains(V(1.01, 0.5, 0.5)) {
		t.Error("Contains accepts exterior point")
	}
}

func TestBoxIntersects(t *testing.T) {
	a := Box(V(0, 0, 0), V(2, 2, 2))
	if !a.Intersects(Box(V(1, 1, 1), V(3, 3, 3))) {
		t.Error("overlapping boxes not intersecting")
	}
	if !a.Intersects(Box(V(2, 0, 0), V(3, 1, 1))) {
		t.Error("touching boxes should intersect")
	}
	if a.Intersects(Box(V(2.1, 0, 0), V(3, 1, 1))) {
		t.Error("separated boxes intersect")
	}
}

func TestBoxExpandUnionEmpty(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1)).Expand(0.5)
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("Expand = %+v", b)
	}
	if !Box(V(0, 0, 0), V(1, 1, 1)).Expand(-0.6).IsEmpty() {
		t.Error("over-shrunk box not empty")
	}
	u := Box(V(0, 0, 0), V(1, 1, 1)).Union(Box(V(2, 2, 2), V(3, 3, 3)))
	if u.Min != V(0, 0, 0) || u.Max != V(3, 3, 3) {
		t.Errorf("Union = %+v", u)
	}
	var empty AABB
	empty.Max = V(-1, -1, -1)
	if got := empty.Union(Box(V(0, 0, 0), V(1, 1, 1))); got.Min != V(0, 0, 0) {
		t.Errorf("Union with empty = %+v", got)
	}
}

func TestClosestPointAndDist(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	if p := b.ClosestPoint(V(1, 1, 1)); p != V(1, 1, 1) {
		t.Errorf("ClosestPoint interior = %v", p)
	}
	if p := b.ClosestPoint(V(5, 1, 1)); p != V(2, 1, 1) {
		t.Errorf("ClosestPoint exterior = %v", p)
	}
	if d := b.Dist(V(5, 1, 1)); !almostEq(d, 3) {
		t.Errorf("Dist = %v", d)
	}
	if d := b.Dist(V(1, 1, 1)); d != 0 {
		t.Errorf("Dist interior = %v", d)
	}
}

func TestSegmentIntersection(t *testing.T) {
	b := Box(V(1, -1, -1), V(2, 1, 1))
	// Segment passing straight through.
	hit, t0, t1 := b.SegmentIntersection(V(0, 0, 0), V(3, 0, 0))
	if !hit {
		t.Fatal("through-segment missed")
	}
	if !almostEq(t0, 1.0/3) || !almostEq(t1, 2.0/3) {
		t.Errorf("t0=%v t1=%v", t0, t1)
	}
	// Segment stopping short.
	if b.SegmentIntersects(V(0, 0, 0), V(0.9, 0, 0)) {
		t.Error("short segment reported hit")
	}
	// Segment parallel outside a slab.
	if b.SegmentIntersects(V(0, 5, 0), V(3, 5, 0)) {
		t.Error("offset parallel segment reported hit")
	}
	// Degenerate (point) segment inside.
	if !b.SegmentIntersects(V(1.5, 0, 0), V(1.5, 0, 0)) {
		t.Error("point inside box reported miss")
	}
}

// TestSegmentIntersectionAgainstSampling cross-checks the slab method
// against dense point sampling on random segments and boxes.
func TestSegmentIntersectionAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		b := Box(
			V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10),
			V(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10),
		)
		p0 := V(rng.Float64()*12-1, rng.Float64()*12-1, rng.Float64()*12-1)
		p1 := V(rng.Float64()*12-1, rng.Float64()*12-1, rng.Float64()*12-1)

		sampled := false
		for i := 0; i <= 400; i++ {
			if b.Contains(p0.Lerp(p1, float64(i)/400)) {
				sampled = true
				break
			}
		}
		slab := b.SegmentIntersects(p0, p1)
		// Sampling can miss grazing hits; it must never find a hit the
		// slab method misses.
		if sampled && !slab {
			t.Fatalf("iter %d: sampling found hit, slab missed (box %+v seg %v→%v)", iter, b, p0, p1)
		}
	}
}

func TestRayIntersection(t *testing.T) {
	b := Box(V(5, -1, -1), V(6, 1, 1))
	hit, d := b.RayIntersection(V(0, 0, 0), V(1, 0, 0))
	if !hit || math.Abs(d-5) > 1e-6 {
		t.Errorf("hit=%v d=%v", hit, d)
	}
	if hit, _ := b.RayIntersection(V(0, 0, 0), V(-1, 0, 0)); hit {
		t.Error("backward ray reported hit")
	}
	if hit, _ := b.RayIntersection(V(0, 5, 0), V(1, 0, 0)); hit {
		t.Error("offset ray reported hit")
	}
	// Ray starting inside reports ~0 distance.
	hit, d = b.RayIntersection(V(5.5, 0, 0), V(1, 0, 0))
	if !hit || d > 1e-6 {
		t.Errorf("inside ray: hit=%v d=%v", hit, d)
	}
}
