// Package faultinject is the MAVFI core: the emulated instruction-level
// fault injector. It models silent data corruptions (SDCs) as one-time
// single-bit flips of live float64 values inside PPC compute kernels —
// consistent with the register-level fault models of Wei et al. (DSN'14) and
// Minotaur (ASPLOS'19) that the paper adopts — plus a message-level mode
// that corrupts named inter-kernel states in transit (the paper's Fig. 4
// experiment).
//
// Faults in memory/caches are out of scope (ECC-protected on the TX2/Xavier
// class hardware the paper targets), as are control-logic faults; this
// matches the paper's fault model section.
//
// Beyond the paper's compute faults, the package hosts the fault-model zoo
// (zoo.go): sensor faults, actuator degradation, and wind disturbance, all
// unified behind FaultPlan/DrawFault so campaigns sweep families through one
// abstraction.
//
// # Plan-drawing RNG contract
//
// Campaign layers draw the whole injection schedule up front from a single
// sequential plan RNG (cmd/mavfi seeds it with campaignSeed+42; the matrix
// runner with the cell seed), one plan per mission in mission order. The
// number and order of RNG draws per plan is therefore API: changing either
// reshuffles every later mission's fault under an unchanged seed and breaks
// recorded campaigns and golden fault digests. The contract:
//
//   - NewPlan: 2 draws — dynamic-value index (Int63n), bit (Intn 64).
//   - NewStatePlan: 2 draws — injection time (Float64), bit (Intn 64).
//   - NewSensorPlan: 6 draws — onset, duration, severity jitter, direction
//     azimuth, direction z (Float64 each), noise seed (Int63).
//   - NewActuatorPlan: 3 draws — onset, duration, severity jitter.
//   - NewWindPlan: 4 draws — onset, duration, severity jitter, azimuth.
//   - DrawFault: exactly 1 kind/target draw (Intn) before the family's
//     New*Plan draws — consumed even when DrawSpec fixes the kind, so
//     restricting a sweep to one mechanism never shifts the schedule.
//     FamilyWind has no kinds and adds no draw. Severity steers magnitudes
//     and the kernel bit field after drawing, never the draw count.
//
// New families must follow the same rules: draw counts independent of drawn
// values and of any spec restriction, appended to the end of their own
// New*Plan sequence only.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
)

// Kernel identifies an injectable PPC compute kernel, matching the kernels
// of the paper's Fig. 3.
type Kernel int

const (
	// KernelNone disables kernel injection.
	KernelNone Kernel = iota
	// KernelPCGen is Point Cloud Generation (perception).
	KernelPCGen
	// KernelOctoMap is OctoMap generation (perception).
	KernelOctoMap
	// KernelColCheck is Collision Check (perception).
	KernelColCheck
	// KernelPlanner is the motion planner, RRT/RRT*/RRT-Connect (planning).
	KernelPlanner
	// KernelPID is path tracking / command issue (control).
	KernelPID
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelNone:
		return "none"
	case KernelPCGen:
		return "P.C. Gen."
	case KernelOctoMap:
		return "OctoMap"
	case KernelColCheck:
		return "Col. Ck."
	case KernelPlanner:
		return "Planner"
	case KernelPID:
		return "PID"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// Stage is a PPC pipeline stage.
type Stage int

const (
	// StagePerception covers P.C. Gen., OctoMap, and Collision Check.
	StagePerception Stage = iota
	// StagePlanning covers the motion and mission planners.
	StagePlanning
	// StageControl covers path tracking / PID / command issue.
	StageControl
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StagePerception:
		return "perception"
	case StagePlanning:
		return "planning"
	case StageControl:
		return "control"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// KernelStage maps a kernel to its pipeline stage.
func KernelStage(k Kernel) Stage {
	switch k {
	case KernelPCGen, KernelOctoMap, KernelColCheck:
		return StagePerception
	case KernelPlanner:
		return StagePlanning
	default:
		return StageControl
	}
}

// BitField classifies which IEEE-754 double field a bit index falls in,
// used for the paper's data-field sensitivity analysis (§III-B).
type BitField int

const (
	// FieldMantissa is bits 0–51.
	FieldMantissa BitField = iota
	// FieldExponent is bits 52–62.
	FieldExponent
	// FieldSign is bit 63.
	FieldSign
)

// String implements fmt.Stringer.
func (f BitField) String() string {
	switch f {
	case FieldMantissa:
		return "mantissa"
	case FieldExponent:
		return "exponent"
	default:
		return "sign"
	}
}

// ClassifyBit returns the IEEE-754 field of bit index b (0 = LSB).
func ClassifyBit(b uint) BitField {
	switch {
	case b == 63:
		return FieldSign
	case b >= 52:
		return FieldExponent
	default:
		return FieldMantissa
	}
}

// FlipBit returns x with bit b (0 = LSB of the IEEE-754 representation)
// inverted.
func FlipBit(x float64, b uint) float64 {
	return math.Float64frombits(math.Float64bits(x) ^ (1 << (b & 63)))
}

// Plan is one mission's injection plan: a one-time single-bit flip of one
// dynamic value instance inside one kernel.
//
// The target instance is identified by its dynamic index: the Index-th
// float64 value that flows through the kernel's injection sites over the
// mission. Drawing Index uniformly over the kernel's dynamic value count
// (measured on a golden calibration run, see Counter) makes every live
// intermediate value equally likely — the emulation of a uniformly random
// instruction-level register fault.
type Plan struct {
	// Kernel is the injection target.
	Kernel Kernel
	// Index is the dynamic value-instance index to corrupt.
	Index int64
	// Bit is the flipped bit index (0–63).
	Bit uint
}

// NewPlan draws a uniformly random plan for the given kernel given the
// kernel's dynamic value count from a golden calibration run: uniform
// instance in [0, count), uniform bit in [0, 64).
func NewPlan(k Kernel, count int64, rng *rand.Rand) Plan {
	if count < 1 {
		count = 1
	}
	return Plan{
		Kernel: k,
		Index:  rng.Int63n(count),
		Bit:    uint(rng.Intn(64)),
	}
}

// Counter measures each kernel's dynamic value count on a golden run; the
// counts calibrate uniform Plan drawing.
type Counter struct {
	counts [kernelCount]int64
}

const kernelCount = int(KernelPID) + 1

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{} }

// Hook returns a counting pass-through hook for kernel k.
func (c *Counter) Hook(k Kernel) func(float64) float64 {
	return func(x float64) float64 {
		c.counts[k]++
		return x
	}
}

// Count returns the dynamic value count observed for kernel k.
func (c *Counter) Count(k Kernel) int64 { return c.counts[k] }

// Injector executes a Plan during one mission. The pipeline installs the
// injector's Hook into each kernel's corruption point; the hook flips one
// bit in exactly one value instance and records what it did.
type Injector struct {
	plan Plan
	now  float64

	seen     int64
	injected bool

	// Record of the performed injection.
	InjectedAt    float64
	OriginalValue float64
	CorruptValue  float64
}

// NewInjector creates an injector for plan. A nil-plan (Kernel ==
// KernelNone) injector is valid and never fires.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// SetTime advances the injector's view of mission time; the pipeline calls
// it once per tick (used only to timestamp the injection record).
func (in *Injector) SetTime(t float64) { in.now = t }

// Injected reports whether the single fault has fired.
func (in *Injector) Injected() bool { return in.injected }

// Hook returns the corruption hook for kernel k, or nil when k is not the
// plan's target (nil hooks let kernels skip corruption entirely).
func (in *Injector) Hook(k Kernel) func(float64) float64 {
	if in.plan.Kernel == KernelNone || in.plan.Kernel != k {
		return nil
	}
	return func(x float64) float64 {
		if in.injected {
			return x
		}
		if in.seen < in.plan.Index {
			in.seen++
			return x
		}
		in.injected = true
		in.InjectedAt = in.now
		in.OriginalValue = x
		in.CorruptValue = FlipBit(x, in.plan.Bit)
		return in.CorruptValue
	}
}
