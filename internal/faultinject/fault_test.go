package faultinject

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlipBitInvolution(t *testing.T) {
	f := func(x float64, b uint8) bool {
		bit := uint(b) % 64
		if math.IsNaN(x) {
			// NaN payloads survive double flips bitwise, but NaN != NaN;
			// compare bit patterns instead.
			once := FlipBit(x, bit)
			twice := FlipBit(once, bit)
			return math.Float64bits(twice) == math.Float64bits(x)
		}
		return math.Float64bits(FlipBit(FlipBit(x, bit), bit)) == math.Float64bits(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipBitKnownCases(t *testing.T) {
	// Sign flip.
	if got := FlipBit(1.0, 63); got != -1.0 {
		t.Errorf("sign flip of 1.0 = %v", got)
	}
	// Lowest exponent bit of 1.0 (exp 1023 → 1022): halves the value.
	if got := FlipBit(1.0, 52); got != 0.5 {
		t.Errorf("exp bit 52 flip of 1.0 = %v", got)
	}
	// Mantissa LSB: tiny change.
	got := FlipBit(1.0, 0)
	if math.Abs(got-1.0) > 1e-15 || got == 1.0 {
		t.Errorf("mantissa flip of 1.0 = %v", got)
	}
}

func TestClassifyBit(t *testing.T) {
	cases := map[uint]BitField{
		0: FieldMantissa, 51: FieldMantissa,
		52: FieldExponent, 62: FieldExponent,
		63: FieldSign,
	}
	for b, want := range cases {
		if got := ClassifyBit(b); got != want {
			t.Errorf("ClassifyBit(%d) = %v, want %v", b, got, want)
		}
	}
	for _, f := range []BitField{FieldSign, FieldExponent, FieldMantissa} {
		if f.String() == "" {
			t.Error("empty field name")
		}
	}
}

func TestKernelStageMapping(t *testing.T) {
	cases := map[Kernel]Stage{
		KernelPCGen:    StagePerception,
		KernelOctoMap:  StagePerception,
		KernelColCheck: StagePerception,
		KernelPlanner:  StagePlanning,
		KernelPID:      StageControl,
	}
	for k, want := range cases {
		if got := KernelStage(k); got != want {
			t.Errorf("KernelStage(%v) = %v, want %v", k, got, want)
		}
		if k.String() == "" {
			t.Error("empty kernel name")
		}
	}
	for _, s := range []Stage{StagePerception, StagePlanning, StageControl} {
		if s.String() == "" {
			t.Error("empty stage name")
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	h := c.Hook(KernelPID)
	for i := 0; i < 7; i++ {
		if got := h(float64(i)); got != float64(i) {
			t.Error("counting hook altered value")
		}
	}
	if c.Count(KernelPID) != 7 {
		t.Errorf("count = %d", c.Count(KernelPID))
	}
	if c.Count(KernelPCGen) != 0 {
		t.Error("unrelated kernel counted")
	}
}

func TestInjectorFiresExactlyOnceAtIndex(t *testing.T) {
	plan := Plan{Kernel: KernelPID, Index: 5, Bit: 63}
	in := NewInjector(plan)
	in.SetTime(3.5)
	hook := in.Hook(KernelPID)
	if hook == nil {
		t.Fatal("nil hook for target kernel")
	}
	if in.Hook(KernelPCGen) != nil {
		t.Error("hook for non-target kernel")
	}
	for i := 0; i < 20; i++ {
		got := hook(2.0)
		switch {
		case i == 5:
			if got != -2.0 {
				t.Errorf("instance %d: got %v, want sign-flipped -2", i, got)
			}
			if !in.Injected() {
				t.Error("not marked injected")
			}
		default:
			if got != 2.0 {
				t.Errorf("instance %d: got %v, want clean 2", i, got)
			}
		}
	}
	if in.OriginalValue != 2.0 || in.CorruptValue != -2.0 || in.InjectedAt != 3.5 {
		t.Errorf("record: %+v", in)
	}
}

func TestInjectorNonePlanNeverFires(t *testing.T) {
	in := NewInjector(Plan{})
	for _, k := range []Kernel{KernelPCGen, KernelOctoMap, KernelColCheck, KernelPlanner, KernelPID} {
		if in.Hook(k) != nil {
			t.Errorf("none-plan injector returned hook for %v", k)
		}
	}
}

func TestNewPlanUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 4000
	var bitCount [64]int
	maxIdx := int64(0)
	for i := 0; i < n; i++ {
		p := NewPlan(KernelPlanner, 1000, rng)
		if p.Index < 0 || p.Index >= 1000 {
			t.Fatalf("index %d out of range", p.Index)
		}
		if p.Index > maxIdx {
			maxIdx = p.Index
		}
		bitCount[p.Bit]++
	}
	// Every bit position gets drawn at a plausible rate (expected 62.5).
	for b, c := range bitCount {
		if c < 20 || c > 130 {
			t.Errorf("bit %d drawn %d times (expected ≈62)", b, c)
		}
	}
	if maxIdx < 900 {
		t.Errorf("max index %d suggests biased index draws", maxIdx)
	}
	// Degenerate count is sanitised.
	p := NewPlan(KernelPID, 0, rng)
	if p.Index != 0 {
		t.Errorf("zero-count plan index = %d", p.Index)
	}
}

func TestStateInjector(t *testing.T) {
	plan := StatePlan{State: StateVelX, Time: 2.0, Bit: 63}
	in := NewStateInjector(plan)

	in.SetTime(1.0)
	if got := in.Corrupt(StateVelX, 3.0); got != 3.0 {
		t.Errorf("fired before time: %v", got)
	}
	in.SetTime(2.5)
	if got := in.Corrupt(StateVelY, 3.0); got != 3.0 {
		t.Errorf("fired on wrong state: %v", got)
	}
	if got := in.Corrupt(StateVelX, 3.0); got != -3.0 {
		t.Errorf("corrupt = %v, want -3", got)
	}
	if got := in.Corrupt(StateVelX, 4.0); got != 4.0 {
		t.Errorf("fired twice: %v", got)
	}
	if !in.Injected() || in.InjectedAt != 2.5 {
		t.Errorf("record: %+v", in)
	}
	// Nil-safety for missions without state faults.
	var nilInj *StateInjector
	if got := nilInj.Corrupt(StateVelX, 1.5); got != 1.5 {
		t.Error("nil injector corrupted")
	}
}

func TestStateStageMapping(t *testing.T) {
	cases := map[StateID]Stage{
		StateTimeToCollision: StagePerception,
		StateFutureColSeq:    StagePerception,
		StateWpX:             StagePlanning,
		StateWpYaw:           StagePlanning,
		StateVelX:            StageControl,
		StateVelZ:            StageControl,
		StatePosX:            StagePerception,
		StateAccMag:          StagePerception,
	}
	for s, want := range cases {
		if got := StateStage(s); got != want {
			t.Errorf("StateStage(%v) = %v, want %v", s, got, want)
		}
	}
}

func TestStateEnumLayout(t *testing.T) {
	if int(NumInjectableStates) != 9 {
		t.Errorf("injectable states = %d, want 9", NumInjectableStates)
	}
	if int(NumMonitoredStates) != 13 {
		t.Errorf("monitored states = %d, want 13 (the paper's AE input size)", NumMonitoredStates)
	}
	// All state names distinct and non-empty.
	seen := map[string]bool{}
	for s := StateID(0); s < NumMonitoredStates; s++ {
		name := s.String()
		if name == "" || seen[name] {
			t.Errorf("state %d name %q duplicate or empty", s, name)
		}
		seen[name] = true
	}
}
