package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mavfi/internal/geom"
)

// Family names a fault-model family of the zoo. The first two are the
// paper's compute-fault models (instruction-level kernel SDCs and
// message-level state corruption); the remaining three extend the framework
// toward the related work's physical fault taxonomies: sensor faults
// (compromised-IMU class, Tu et al.), actuator degradation (ALFA
// control-surface class), and environment disturbance.
type Family int

const (
	// FamilyNone disables injection.
	FamilyNone Family = iota
	// FamilyKernel is instruction-level kernel injection (Plan).
	FamilyKernel
	// FamilyState is message-level inter-kernel-state corruption (StatePlan).
	FamilyState
	// FamilySensor is sensor-fault injection (SensorPlan): position-estimate
	// bias/drift/stuck-at and depth-camera ray dropout / noise bursts.
	FamilySensor
	// FamilyActuator is actuator degradation (ActuatorPlan): thrust loss and
	// command scaling applied at the tracker's command output.
	FamilyActuator
	// FamilyWind is environment disturbance (WindPlan): a deterministic
	// wind-gust velocity offset.
	FamilyWind

	numFamilies
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyNone:
		return "none"
	case FamilyKernel:
		return "kernel"
	case FamilyState:
		return "state"
	case FamilySensor:
		return "sensor"
	case FamilyActuator:
		return "actuator"
	case FamilyWind:
		return "wind"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// ParseFamily resolves a family name as printed by Family.String.
func ParseFamily(s string) (Family, bool) {
	for f := FamilyNone; f < numFamilies; f++ {
		if f.String() == s {
			return f, true
		}
	}
	return FamilyNone, false
}

// Families lists the injectable families in their canonical (matrix-axis)
// order.
func Families() []Family {
	return []Family{FamilyKernel, FamilyState, FamilySensor, FamilyActuator, FamilyWind}
}

// SensorFaultKind selects the sensor-fault mechanism of a SensorPlan.
type SensorFaultKind int

const (
	// SensorPosBias offsets the fused position estimate by a constant
	// vector while the fault window is active.
	SensorPosBias SensorFaultKind = iota
	// SensorPosDrift accumulates position-estimate error linearly in time
	// (gyro/accelerometer drift integrated by sensor fusion).
	SensorPosDrift
	// SensorPosStuck freezes the position estimate at its value on fault
	// onset (stuck-at sensor).
	SensorPosStuck
	// SensorRayDropout invalidates a random fraction of depth-camera rays
	// per frame (the pipeline discards them like too-close returns).
	SensorRayDropout
	// SensorNoiseBurst multiplies depth returns with heavy multiplicative
	// noise while the window is active.
	SensorNoiseBurst

	// NumSensorFaultKinds counts the kinds above (uniform drawing).
	NumSensorFaultKinds
)

// String implements fmt.Stringer.
func (k SensorFaultKind) String() string {
	switch k {
	case SensorPosBias:
		return "pos_bias"
	case SensorPosDrift:
		return "pos_drift"
	case SensorPosStuck:
		return "pos_stuck"
	case SensorRayDropout:
		return "ray_dropout"
	case SensorNoiseBurst:
		return "noise_burst"
	default:
		return fmt.Sprintf("sensor_kind(%d)", int(k))
	}
}

// ActuatorFaultKind selects the degradation mechanism of an ActuatorPlan.
type ActuatorFaultKind int

const (
	// ActuatorThrustLoss attenuates vertical authority and adds a downward
	// pull (partial rotor/thrust loss).
	ActuatorThrustLoss ActuatorFaultKind = iota
	// ActuatorCmdScale attenuates the whole commanded velocity vector
	// (degraded control effectiveness).
	ActuatorCmdScale

	// NumActuatorFaultKinds counts the kinds above (uniform drawing).
	NumActuatorFaultKinds
)

// String implements fmt.Stringer.
func (k ActuatorFaultKind) String() string {
	switch k {
	case ActuatorThrustLoss:
		return "thrust_loss"
	case ActuatorCmdScale:
		return "cmd_scale"
	default:
		return fmt.Sprintf("actuator_kind(%d)", int(k))
	}
}

// SensorPlan is one mission's sensor-fault plan: one mechanism active over
// one onset window at one severity. Plans are drawn once per mission (see
// NewSensorPlan) and fully determine the fault: the injector's own noise
// stream derives from Seed, never from the mission RNGs.
type SensorPlan struct {
	Kind      SensorFaultKind `json:"kind"`
	OnsetS    float64         `json:"onset_s"`
	DurationS float64         `json:"duration_s"`
	// Severity scales the fault magnitude; the nominal range is (0, 1.25]
	// (a base level times the drawn jitter).
	Severity float64 `json:"severity"`
	// Dir is the unit direction of directional mechanisms (bias, drift).
	Dir geom.Vec3 `json:"dir"`
	// Seed seeds the injector's private noise stream (dropout, bursts).
	Seed int64 `json:"seed"`
}

// NewSensorPlan draws a sensor-fault plan with onset uniform in [tMin, tMax]
// and magnitude severity×U[0.75, 1.25]. Draw order (see the package comment's
// RNG contract): onset, duration, severity jitter, direction azimuth,
// direction z, noise seed — six draws regardless of kind.
func NewSensorPlan(kind SensorFaultKind, tMin, tMax, severity float64, rng *rand.Rand) SensorPlan {
	p := SensorPlan{Kind: kind}
	p.OnsetS = tMin + rng.Float64()*(tMax-tMin)
	p.DurationS = 3 + rng.Float64()*9
	p.Severity = severity * (0.75 + rng.Float64()*0.5)
	az := rng.Float64() * 2 * math.Pi
	dz := rng.Float64()*0.5 - 0.25
	p.Dir = geom.V(math.Cos(az), math.Sin(az), dz).Normalize()
	p.Seed = rng.Int63()
	return p
}

// ActuatorPlan is one mission's actuator-degradation plan.
type ActuatorPlan struct {
	Kind      ActuatorFaultKind `json:"kind"`
	OnsetS    float64           `json:"onset_s"`
	DurationS float64           `json:"duration_s"`
	// Severity in [0, 0.95] is the degradation fraction (1 would be total
	// loss of authority; the cap keeps missions numerically live).
	Severity float64 `json:"severity"`
}

// NewActuatorPlan draws an actuator plan with onset uniform in [tMin, tMax].
// Draw order: onset, duration, severity jitter — three draws regardless of
// kind.
func NewActuatorPlan(kind ActuatorFaultKind, tMin, tMax, severity float64, rng *rand.Rand) ActuatorPlan {
	p := ActuatorPlan{Kind: kind}
	p.OnsetS = tMin + rng.Float64()*(tMax-tMin)
	p.DurationS = 4 + rng.Float64()*8
	p.Severity = math.Min(0.95, severity*(0.75+rng.Float64()*0.5))
	return p
}

// WindPlan is one mission's environment-disturbance plan: a gust that ramps
// in and out over a half-sine envelope.
type WindPlan struct {
	OnsetS    float64 `json:"onset_s"`
	DurationS float64 `json:"duration_s"`
	// Severity scales the peak gust speed (severity 1 ≈ 3.5 m/s peak —
	// comparable to the cruise speed, enough to push the vehicle off its
	// trajectory but recoverable).
	Severity float64 `json:"severity"`
	// Dir is the unit gust direction (horizontal-dominant).
	Dir geom.Vec3 `json:"dir"`
}

// NewWindPlan draws a wind plan with onset uniform in [tMin, tMax]. Draw
// order: onset, duration, severity jitter, direction azimuth — four draws.
func NewWindPlan(tMin, tMax, severity float64, rng *rand.Rand) WindPlan {
	p := WindPlan{}
	p.OnsetS = tMin + rng.Float64()*(tMax-tMin)
	p.DurationS = 3 + rng.Float64()*6
	p.Severity = severity * (0.75 + rng.Float64()*0.5)
	az := rng.Float64() * 2 * math.Pi
	p.Dir = geom.V(math.Cos(az), math.Sin(az), -0.1).Normalize()
	return p
}

// FaultPlan is the unified plan type of the zoo: exactly one pointer is
// non-nil (or none, for a nominal mission). It is the value campaign layers
// draw, serialize, and hand to pipeline.Config.SetFault.
type FaultPlan struct {
	Kernel   *Plan         `json:"kernel,omitempty"`
	State    *StatePlan    `json:"state,omitempty"`
	Sensor   *SensorPlan   `json:"sensor,omitempty"`
	Actuator *ActuatorPlan `json:"actuator,omitempty"`
	Wind     *WindPlan     `json:"wind,omitempty"`
}

// Family reports which family the plan selects (FamilyNone when empty).
func (p FaultPlan) Family() Family {
	switch {
	case p.Kernel != nil:
		return FamilyKernel
	case p.State != nil:
		return FamilyState
	case p.Sensor != nil:
		return FamilySensor
	case p.Actuator != nil:
		return FamilyActuator
	case p.Wind != nil:
		return FamilyWind
	default:
		return FamilyNone
	}
}

// String renders the plan compactly for logs and tables.
func (p FaultPlan) String() string {
	switch {
	case p.Kernel != nil:
		return fmt.Sprintf("kernel %s idx=%d bit=%d", p.Kernel.Kernel, p.Kernel.Index, p.Kernel.Bit)
	case p.State != nil:
		return fmt.Sprintf("state %s t=%.2f bit=%d", p.State.State, p.State.Time, p.State.Bit)
	case p.Sensor != nil:
		return fmt.Sprintf("sensor %s t=%.2f+%.2f sev=%.2f", p.Sensor.Kind, p.Sensor.OnsetS, p.Sensor.DurationS, p.Sensor.Severity)
	case p.Actuator != nil:
		return fmt.Sprintf("actuator %s t=%.2f+%.2f sev=%.2f", p.Actuator.Kind, p.Actuator.OnsetS, p.Actuator.DurationS, p.Actuator.Severity)
	case p.Wind != nil:
		return fmt.Sprintf("wind t=%.2f+%.2f sev=%.2f", p.Wind.OnsetS, p.Wind.DurationS, p.Wind.Severity)
	default:
		return "none"
	}
}

// DrawSpec parameterizes DrawFault. Use NewDrawSpec for the open (uniform
// over each family's kinds) spec; fix a field to restrict the draw.
type DrawSpec struct {
	// NominalS is the error-free mission duration; onsets are drawn inside
	// it so the fault lands mid-flight.
	NominalS float64
	// Severity scales window-fault magnitudes and biases kernel bit
	// positions (≥ 0.75 draws exponent/sign bits, < 0.4 mantissa-only);
	// zero means the default severity 1.
	Severity float64

	// Kernel fixes the kernel target (KernelNone = uniform over kernels).
	Kernel Kernel
	// State fixes the state target (negative = uniform over injectable
	// states).
	State StateID
	// SensorKind fixes the sensor mechanism (negative = uniform).
	SensorKind SensorFaultKind
	// ActuatorKind fixes the actuator mechanism (negative = uniform).
	ActuatorKind ActuatorFaultKind
}

// NewDrawSpec returns the open spec for a mission of the given nominal
// duration at the given severity: every family draws its kind uniformly.
func NewDrawSpec(nominalS, severity float64) DrawSpec {
	return DrawSpec{
		NominalS:     nominalS,
		Severity:     severity,
		Kernel:       KernelNone,
		State:        -1,
		SensorKind:   -1,
		ActuatorKind: -1,
	}
}

// DrawFault draws one mission's plan for family f. The draw sequence is part
// of the package's RNG contract (see the package comment): for every family
// the kind/target draw is consumed first — even when the spec fixes it — so
// restricting a sweep to one mechanism never reshuffles the remaining
// parameters of the schedule.
//
// counts supplies kernel dynamic-value counts for FamilyKernel (from a
// calibration run); a nil counts falls back to count 1, which only makes
// sense in tests.
func DrawFault(f Family, spec DrawSpec, counts *Counter, rng *rand.Rand) FaultPlan {
	if spec.Severity <= 0 {
		spec.Severity = 1
	}
	tMin, tMax := 0.15*spec.NominalS, 0.70*spec.NominalS
	switch f {
	case FamilyKernel:
		k := Kernel(1 + rng.Intn(kernelCount-1))
		if spec.Kernel != KernelNone {
			k = spec.Kernel
		}
		var count int64 = 1
		if counts != nil {
			count = counts.Count(k)
		}
		pl := NewPlan(k, count, rng)
		// Severity steers the bit field after the uniform draw (the draw
		// count stays fixed): high severity forces exponent/sign flips,
		// low severity mantissa flips.
		if spec.Severity >= 0.75 {
			pl.Bit = 52 + pl.Bit%12
		} else if spec.Severity < 0.4 {
			pl.Bit = pl.Bit % 52
		}
		return FaultPlan{Kernel: &pl}
	case FamilyState:
		s := StateID(rng.Intn(int(NumInjectableStates)))
		if spec.State >= 0 {
			s = spec.State
		}
		pl := NewStatePlan(s, 0.15*spec.NominalS, 0.85*spec.NominalS, rng)
		return FaultPlan{State: &pl}
	case FamilySensor:
		kind := SensorFaultKind(rng.Intn(int(NumSensorFaultKinds)))
		if spec.SensorKind >= 0 {
			kind = spec.SensorKind
		}
		pl := NewSensorPlan(kind, tMin, tMax, spec.Severity, rng)
		return FaultPlan{Sensor: &pl}
	case FamilyActuator:
		kind := ActuatorFaultKind(rng.Intn(int(NumActuatorFaultKinds)))
		if spec.ActuatorKind >= 0 {
			kind = spec.ActuatorKind
		}
		pl := NewActuatorPlan(kind, tMin, tMax, spec.Severity, rng)
		return FaultPlan{Actuator: &pl}
	case FamilyWind:
		pl := NewWindPlan(tMin, tMax, spec.Severity, rng)
		return FaultPlan{Wind: &pl}
	default:
		return FaultPlan{}
	}
}

// ParseTarget parses a fault-target string "family[:kind]" — e.g. "wind",
// "sensor:ray_dropout", "actuator:thrust_loss", "kernel:planner",
// "state:wp_x" — into the family and a DrawSpec with the kind restriction
// applied (NominalS and Severity are left for the caller to fill).
func ParseTarget(s string) (Family, DrawSpec, error) {
	spec := NewDrawSpec(0, 0)
	name, kind, hasKind := strings.Cut(s, ":")
	f, ok := ParseFamily(name)
	if !ok || f == FamilyNone {
		return FamilyNone, spec, fmt.Errorf("faultinject: unknown fault family %q", name)
	}
	if !hasKind {
		return f, spec, nil
	}
	switch f {
	case FamilyKernel:
		for k := KernelPCGen; k <= KernelPID; k++ {
			if kernelFlagName(k) == kind {
				spec.Kernel = k
				return f, spec, nil
			}
		}
	case FamilyState:
		for st := StateID(0); st < NumInjectableStates; st++ {
			if st.String() == kind {
				spec.State = st
				return f, spec, nil
			}
		}
	case FamilySensor:
		for k := SensorFaultKind(0); k < NumSensorFaultKinds; k++ {
			if k.String() == kind {
				spec.SensorKind = k
				return f, spec, nil
			}
		}
	case FamilyActuator:
		for k := ActuatorFaultKind(0); k < NumActuatorFaultKinds; k++ {
			if k.String() == kind {
				spec.ActuatorKind = k
				return f, spec, nil
			}
		}
	case FamilyWind:
		return FamilyNone, spec, fmt.Errorf("faultinject: family wind has no kinds (got %q)", kind)
	}
	return FamilyNone, spec, fmt.Errorf("faultinject: unknown %s kind %q", f, kind)
}

// kernelFlagName is the CLI spelling of a kernel target (the Stringer forms
// are display names like "P.C. Gen.").
func kernelFlagName(k Kernel) string {
	switch k {
	case KernelPCGen:
		return "pcgen"
	case KernelOctoMap:
		return "octomap"
	case KernelColCheck:
		return "colcheck"
	case KernelPlanner:
		return "planner"
	case KernelPID:
		return "pid"
	default:
		return "none"
	}
}

// windowInjector is the shared onset-window state machine of the three
// window-based injectors.
type windowInjector struct {
	onset, until float64
	now          float64
	fired        bool
	firedAt      float64
}

func (w *windowInjector) init(onset, duration float64) {
	w.onset, w.until = onset, onset+duration
}

// SetTime advances the injector's view of mission time; the pipeline calls
// it once per tick. Entering the window latches Fired/FiredAt.
func (w *windowInjector) SetTime(t float64) {
	w.now = t
	if !w.fired && t >= w.onset && t < w.until {
		w.fired = true
		w.firedAt = t
	}
}

// Active reports whether the fault window covers the current time.
func (w *windowInjector) Active() bool { return w.now >= w.onset && w.now < w.until }

// Fired reports whether the fault window has (ever) been entered.
func (w *windowInjector) Fired() bool { return w.fired }

// FiredAt returns the mission time of window entry (0 before Fired).
func (w *windowInjector) FiredAt() float64 { return w.firedAt }

// SensorInjector executes a SensorPlan during one mission. All of its
// randomness (dropout, noise) comes from the plan's private Seed, so sensor
// faults never perturb the mission RNG streams — a faulted mission replays
// bit-identically from its recorded plan.
type SensorInjector struct {
	windowInjector
	plan SensorPlan
	rng  *rand.Rand

	stuckSet bool
	stuckPos geom.Vec3
}

// NewSensorInjector creates an injector for plan.
func NewSensorInjector(plan SensorPlan) *SensorInjector {
	in := &SensorInjector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
	in.init(plan.OnsetS, plan.DurationS)
	return in
}

// Plan returns the injector's plan.
func (in *SensorInjector) Plan() SensorPlan { return in.plan }

// CorruptPos passes the fused position estimate through the fault: biased,
// drifting, or frozen while the window is active, clean outside it.
func (in *SensorInjector) CorruptPos(p geom.Vec3) geom.Vec3 {
	if !in.Active() {
		in.stuckSet = false
		return p
	}
	switch in.plan.Kind {
	case SensorPosBias:
		return p.Add(in.plan.Dir.Scale(1.5 * in.plan.Severity))
	case SensorPosDrift:
		return p.Add(in.plan.Dir.Scale(0.4 * in.plan.Severity * (in.now - in.plan.OnsetS)))
	case SensorPosStuck:
		if !in.stuckSet {
			in.stuckSet = true
			in.stuckPos = p
		}
		return in.stuckPos
	default:
		return p
	}
}

// CorruptDepths passes a captured depth frame through the fault in place.
// Dropped rays are set to 0, below any sane pointcloud.Generator.MinDepth,
// so downstream kernels discard them exactly like too-close returns; noise
// bursts perturb only actual returns (readings below maxRange), like the
// camera's own noise model.
func (in *SensorInjector) CorruptDepths(depth []float64, maxRange float64) {
	if !in.Active() {
		return
	}
	switch in.plan.Kind {
	case SensorRayDropout:
		p := math.Min(0.9, 0.6*in.plan.Severity)
		for i := range depth {
			if in.rng.Float64() < p {
				depth[i] = 0
			}
		}
	case SensorNoiseBurst:
		sigma := 0.25 * in.plan.Severity
		for i := range depth {
			if depth[i] < maxRange {
				d := depth[i] * (1 + in.rng.NormFloat64()*sigma)
				if d < 0 {
					d = 0
				} else if d > maxRange {
					d = maxRange
				}
				depth[i] = d
			}
		}
	}
}

// ActuatorInjector executes an ActuatorPlan: a pure function of the
// commanded velocity while the window is active, installed as
// control.Tracker.Degrade.
type ActuatorInjector struct {
	windowInjector
	plan ActuatorPlan
}

// NewActuatorInjector creates an injector for plan.
func NewActuatorInjector(plan ActuatorPlan) *ActuatorInjector {
	in := &ActuatorInjector{plan: plan}
	in.init(plan.OnsetS, plan.DurationS)
	return in
}

// Plan returns the injector's plan.
func (in *ActuatorInjector) Plan() ActuatorPlan { return in.plan }

// Degrade applies the degradation to one commanded velocity.
func (in *ActuatorInjector) Degrade(v geom.Vec3) geom.Vec3 {
	if !in.Active() {
		return v
	}
	s := in.plan.Severity
	switch in.plan.Kind {
	case ActuatorThrustLoss:
		v.Z = v.Z*(1-s) - 0.6*s
		return v
	case ActuatorCmdScale:
		return v.Scale(1 - 0.7*s)
	default:
		return v
	}
}

// WindInjector executes a WindPlan: a deterministic gust velocity offset
// added to the mission's ambient wind.
type WindInjector struct {
	windowInjector
	plan WindPlan
}

// NewWindInjector creates an injector for plan.
func NewWindInjector(plan WindPlan) *WindInjector {
	in := &WindInjector{plan: plan}
	in.init(plan.OnsetS, plan.DurationS)
	return in
}

// Plan returns the injector's plan.
func (in *WindInjector) Plan() WindPlan { return in.plan }

// Offset returns the gust velocity at mission time t: a half-sine envelope
// over the fault window, zero outside it.
func (in *WindInjector) Offset(t float64) geom.Vec3 {
	if t < in.plan.OnsetS || t >= in.plan.OnsetS+in.plan.DurationS || in.plan.DurationS <= 0 {
		return geom.Vec3{}
	}
	envelope := math.Sin(math.Pi * (t - in.plan.OnsetS) / in.plan.DurationS)
	return in.plan.Dir.Scale(3.5 * in.plan.Severity * envelope)
}
