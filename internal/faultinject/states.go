package faultinject

import (
	"fmt"
	"math/rand"
)

// StateID names the inter-kernel states of the PPC pipeline, the corruption
// targets of the paper's Fig. 4 experiment and the inputs to the anomaly
// detectors.
type StateID int

const (
	// StateTimeToCollision is the perception-stage time-to-collision
	// estimate in seconds.
	StateTimeToCollision StateID = iota
	// StateFutureColSeq is the perception-stage future-collision
	// way-point index.
	StateFutureColSeq
	// StateWpX..StateWpYaw are the planning-stage active way-point pose.
	StateWpX
	StateWpY
	StateWpZ
	StateWpYaw
	// StateVelX..StateVelZ are the control-stage commanded velocity.
	StateVelX
	StateVelY
	StateVelZ

	// NumInjectableStates counts the Fig. 4 corruption targets above.
	NumInjectableStates

	// The remaining monitored-only states complete the detector input
	// vector (kinematics echoed from sensor fusion, Fig. 5a).
	StatePosX StateID = iota - 1
	StatePosY
	StatePosZ
	StateAccMag

	// NumMonitoredStates is the detector input dimension (13, matching
	// the paper's autoencoder input layer).
	NumMonitoredStates
)

// String implements fmt.Stringer.
func (s StateID) String() string {
	switch s {
	case StateTimeToCollision:
		return "time_to_collision"
	case StateFutureColSeq:
		return "future_collision_seq"
	case StateWpX:
		return "wp_x"
	case StateWpY:
		return "wp_y"
	case StateWpZ:
		return "wp_z"
	case StateWpYaw:
		return "wp_yaw"
	case StateVelX:
		return "vx"
	case StateVelY:
		return "vy"
	case StateVelZ:
		return "vz"
	case StatePosX:
		return "pos_x"
	case StatePosY:
		return "pos_y"
	case StatePosZ:
		return "pos_z"
	case StateAccMag:
		return "acc_mag"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// StateStage maps an inter-kernel state to the stage that produces it.
func StateStage(s StateID) Stage {
	switch s {
	case StateTimeToCollision, StateFutureColSeq, StatePosX, StatePosY, StatePosZ, StateAccMag:
		return StagePerception
	case StateWpX, StateWpY, StateWpZ, StateWpYaw:
		return StagePlanning
	default:
		return StageControl
	}
}

// StatePlan is one mission's message-level injection plan: flip one bit of
// one named inter-kernel state the first time it is published after Time.
type StatePlan struct {
	State StateID
	Time  float64
	Bit   uint
}

// NewStatePlan draws a uniform message-level plan for state s.
func NewStatePlan(s StateID, tMin, tMax float64, rng *rand.Rand) StatePlan {
	return StatePlan{
		State: s,
		Time:  tMin + rng.Float64()*(tMax-tMin),
		Bit:   uint(rng.Intn(64)),
	}
}

// StateInjector executes a StatePlan: a one-time bit flip of a named
// inter-kernel state in transit. The pipeline consults Corrupt for every
// publication of every monitored state.
type StateInjector struct {
	plan     StatePlan
	now      float64
	injected bool

	InjectedAt    float64
	OriginalValue float64
	CorruptValue  float64
}

// NewStateInjector creates an injector for plan.
func NewStateInjector(plan StatePlan) *StateInjector {
	return &StateInjector{plan: plan}
}

// Plan returns the injector's plan.
func (in *StateInjector) Plan() StatePlan { return in.plan }

// SetTime advances the injector's view of mission time.
func (in *StateInjector) SetTime(t float64) { in.now = t }

// Injected reports whether the single fault has fired.
func (in *StateInjector) Injected() bool { return in.injected }

// Corrupt passes state s's published value through the injector, flipping
// one bit exactly once when the plan matches.
func (in *StateInjector) Corrupt(s StateID, x float64) float64 {
	if in == nil || in.injected || s != in.plan.State || in.now < in.plan.Time {
		return x
	}
	in.injected = true
	in.InjectedAt = in.now
	in.OriginalValue = x
	in.CorruptValue = FlipBit(x, in.plan.Bit)
	return in.CorruptValue
}
