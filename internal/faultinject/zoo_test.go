package faultinject

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mavfi/internal/geom"
)

func TestFamilyParseRoundTrip(t *testing.T) {
	for _, f := range Families() {
		got, ok := ParseFamily(f.String())
		if !ok || got != f {
			t.Errorf("ParseFamily(%q) = %v, %v", f.String(), got, ok)
		}
	}
	if _, ok := ParseFamily("bogus"); ok {
		t.Error("ParseFamily accepted a bogus family")
	}
	if len(Families()) != 5 {
		t.Errorf("Families() = %v, want the 5 injectable families", Families())
	}
}

func TestDrawFaultDeterministic(t *testing.T) {
	spec := NewDrawSpec(60, 1)
	for _, f := range Families() {
		a := DrawFault(f, spec, nil, rand.New(rand.NewSource(9)))
		b := DrawFault(f, spec, nil, rand.New(rand.NewSource(9)))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed drew different plans:\n%+v\n%+v", f, a, b)
		}
		if a.Family() != f {
			t.Errorf("DrawFault(%s).Family() = %s", f, a.Family())
		}
	}
}

// The RNG contract: severity (and a fixed kind) steer magnitudes but never
// the number of draws, so a restricted or rescaled sweep replays the same
// schedule. Verified by drawing with different specs from same-seeded RNGs
// and requiring the streams to stay aligned afterwards.
func TestDrawFaultConsumptionIndependentOfSpec(t *testing.T) {
	specs := []DrawSpec{
		NewDrawSpec(60, 0.2),
		NewDrawSpec(60, 1.0),
		{NominalS: 60, Severity: 1, Kernel: KernelPID, State: 0, SensorKind: SensorRayDropout, ActuatorKind: ActuatorCmdScale},
	}
	for _, f := range Families() {
		var next []int64
		for _, spec := range specs {
			rng := rand.New(rand.NewSource(31))
			DrawFault(f, spec, nil, rng)
			next = append(next, rng.Int63())
		}
		for i := 1; i < len(next); i++ {
			if next[i] != next[0] {
				t.Errorf("%s: spec %d consumed a different number of draws (next=%d, want %d)",
					f, i, next[i], next[0])
			}
		}
	}
}

func TestDrawFaultSeveritySteersKernelBits(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		hi := DrawFault(FamilyKernel, NewDrawSpec(60, 1), nil, rand.New(rand.NewSource(seed)))
		if hi.Kernel.Bit < 52 {
			t.Errorf("seed %d: severity 1 drew mantissa bit %d, want exponent/sign", seed, hi.Kernel.Bit)
		}
		lo := DrawFault(FamilyKernel, NewDrawSpec(60, 0.2), nil, rand.New(rand.NewSource(seed)))
		if lo.Kernel.Bit >= 52 {
			t.Errorf("seed %d: severity 0.2 drew bit %d, want mantissa", seed, lo.Kernel.Bit)
		}
	}
}

func TestDrawFaultRespectsKindRestrictions(t *testing.T) {
	spec := NewDrawSpec(60, 1)
	spec.SensorKind = SensorPosStuck
	spec.ActuatorKind = ActuatorThrustLoss
	spec.Kernel = KernelOctoMap
	spec.State = StateID(2)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if p := DrawFault(FamilySensor, spec, nil, rng); p.Sensor.Kind != SensorPosStuck {
			t.Fatalf("sensor kind %v, want pos_stuck", p.Sensor.Kind)
		}
		if p := DrawFault(FamilyActuator, spec, nil, rng); p.Actuator.Kind != ActuatorThrustLoss {
			t.Fatalf("actuator kind %v, want thrust_loss", p.Actuator.Kind)
		}
		if p := DrawFault(FamilyKernel, spec, nil, rng); p.Kernel.Kernel != KernelOctoMap {
			t.Fatalf("kernel %v, want octomap", p.Kernel.Kernel)
		}
		if p := DrawFault(FamilyState, spec, nil, rng); p.State.State != StateID(2) {
			t.Fatalf("state %v, want %v", p.State.State, StateID(2))
		}
	}
}

func TestDrawFaultOnsetInsideWindow(t *testing.T) {
	const nominal = 100.0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, f := range []Family{FamilySensor, FamilyActuator, FamilyWind} {
			p := DrawFault(f, NewDrawSpec(nominal, 1), nil, rng)
			var onset float64
			switch f {
			case FamilySensor:
				onset = p.Sensor.OnsetS
			case FamilyActuator:
				onset = p.Actuator.OnsetS
			case FamilyWind:
				onset = p.Wind.OnsetS
			}
			if onset < 0.15*nominal || onset > 0.70*nominal {
				t.Errorf("%s onset %.2f outside [%.0f, %.0f]", f, onset, 0.15*nominal, 0.70*nominal)
			}
		}
	}
}

func TestActuatorSeverityCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		p := NewActuatorPlan(ActuatorThrustLoss, 10, 20, 2.0, rng)
		if p.Severity > 0.95 {
			t.Fatalf("severity %.3f above the 0.95 authority cap", p.Severity)
		}
	}
}

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		fam  Family
		ok   bool
		want func(DrawSpec) bool
	}{
		{"wind", FamilyWind, true, nil},
		{"sensor", FamilySensor, true, func(s DrawSpec) bool { return s.SensorKind < 0 }},
		{"sensor:ray_dropout", FamilySensor, true, func(s DrawSpec) bool { return s.SensorKind == SensorRayDropout }},
		{"actuator:thrust_loss", FamilyActuator, true, func(s DrawSpec) bool { return s.ActuatorKind == ActuatorThrustLoss }},
		{"kernel:planner", FamilyKernel, true, func(s DrawSpec) bool { return s.Kernel == KernelPlanner }},
		{"state:" + StateID(0).String(), FamilyState, true, func(s DrawSpec) bool { return s.State == 0 }},
		{"wind:gust", FamilyNone, false, nil},
		{"sensor:bogus", FamilyNone, false, nil},
		{"bogus", FamilyNone, false, nil},
	}
	for _, c := range cases {
		fam, spec, err := ParseTarget(c.in)
		if (err == nil) != c.ok || fam != c.fam {
			t.Errorf("ParseTarget(%q) = %v, err %v; want family %v ok=%v", c.in, fam, err, c.fam, c.ok)
			continue
		}
		if c.ok && c.want != nil && !c.want(spec) {
			t.Errorf("ParseTarget(%q) spec restriction not applied: %+v", c.in, spec)
		}
	}
}

func TestWindowInjectorLatching(t *testing.T) {
	in := NewActuatorInjector(ActuatorPlan{Kind: ActuatorCmdScale, OnsetS: 10, DurationS: 5, Severity: 0.5})
	in.SetTime(9.9)
	if in.Active() || in.Fired() {
		t.Fatal("active/fired before onset")
	}
	in.SetTime(10.0)
	if !in.Active() || !in.Fired() || in.FiredAt() != 10.0 {
		t.Fatalf("window entry not latched: active=%v fired=%v at=%.1f", in.Active(), in.Fired(), in.FiredAt())
	}
	in.SetTime(15.0)
	if in.Active() {
		t.Fatal("active past the window end")
	}
	if !in.Fired() || in.FiredAt() != 10.0 {
		t.Fatalf("Fired/FiredAt must stay latched: fired=%v at=%.1f", in.Fired(), in.FiredAt())
	}
}

func TestSensorCorruptPosMechanisms(t *testing.T) {
	dir := geom.V(1, 0, 0)
	base := SensorPlan{OnsetS: 10, DurationS: 10, Severity: 1, Dir: dir, Seed: 1}

	bias := base
	bias.Kind = SensorPosBias
	in := NewSensorInjector(bias)
	in.SetTime(12)
	got := in.CorruptPos(geom.V(0, 0, 0))
	if math.Abs(got.X-1.5) > 1e-12 {
		t.Errorf("bias offset %.3f, want 1.5·severity along Dir", got.X)
	}

	drift := base
	drift.Kind = SensorPosDrift
	in = NewSensorInjector(drift)
	in.SetTime(15)
	got = in.CorruptPos(geom.V(0, 0, 0))
	if math.Abs(got.X-0.4*5) > 1e-12 {
		t.Errorf("drift offset %.3f at t=onset+5, want 2.0", got.X)
	}

	stuck := base
	stuck.Kind = SensorPosStuck
	in = NewSensorInjector(stuck)
	in.SetTime(11)
	first := in.CorruptPos(geom.V(3, 4, 5))
	later := in.CorruptPos(geom.V(9, 9, 9))
	if first != later {
		t.Errorf("stuck-at did not latch: %v then %v", first, later)
	}
	in.SetTime(25) // window over: estimates flow again and the latch resets
	if clean := in.CorruptPos(geom.V(7, 7, 7)); clean != geom.V(7, 7, 7) {
		t.Errorf("post-window position still corrupted: %v", clean)
	}
}

func TestSensorCorruptDepthsDeterministicFromPlanSeed(t *testing.T) {
	plan := SensorPlan{Kind: SensorRayDropout, OnsetS: 0, DurationS: 100, Severity: 1, Seed: 77}
	mk := func() []float64 {
		d := make([]float64, 256)
		for i := range d {
			d[i] = 5 + float64(i%7)
		}
		in := NewSensorInjector(plan)
		in.SetTime(1)
		in.CorruptDepths(d, 20)
		return d
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("dropout pattern not reproducible from the plan seed")
	}
	dropped := 0
	for _, v := range a {
		if v == 0 {
			dropped++
		}
	}
	if dropped < 100 || dropped == len(a) {
		t.Errorf("severity-1 dropout dropped %d/%d rays, want roughly 60%%", dropped, len(a))
	}
}

func TestActuatorDegradeMechanisms(t *testing.T) {
	cmd := geom.V(1, 0, 1)
	in := NewActuatorInjector(ActuatorPlan{Kind: ActuatorCmdScale, OnsetS: 0, DurationS: 10, Severity: 1})
	in.SetTime(5)
	if got := in.Degrade(cmd); math.Abs(got.X-0.3*cmd.X) > 1e-12 {
		t.Errorf("cmd_scale at severity 1 gave %.3f, want 0.3×", got.X)
	}
	in.SetTime(50)
	if got := in.Degrade(cmd); got != cmd {
		t.Errorf("degradation applied outside the window: %v", got)
	}

	in = NewActuatorInjector(ActuatorPlan{Kind: ActuatorThrustLoss, OnsetS: 0, DurationS: 10, Severity: 0.5})
	in.SetTime(5)
	got := in.Degrade(cmd)
	if got.X != cmd.X || got.Y != cmd.Y {
		t.Error("thrust loss must only affect the vertical channel")
	}
	if want := cmd.Z*0.5 - 0.3; math.Abs(got.Z-want) > 1e-12 {
		t.Errorf("thrust-loss Z = %.3f, want %.3f", got.Z, want)
	}
}

func TestWindOffsetEnvelope(t *testing.T) {
	plan := WindPlan{OnsetS: 10, DurationS: 8, Severity: 1, Dir: geom.V(0, 1, 0)}
	in := NewWindInjector(plan)
	if g := in.Offset(9.9); g != (geom.V(0, 0, 0)) {
		t.Errorf("gust before onset: %v", g)
	}
	if g := in.Offset(18.1); g != (geom.V(0, 0, 0)) {
		t.Errorf("gust after window: %v", g)
	}
	peak := in.Offset(14) // mid-window: sin(π/2) = 1
	if math.Abs(peak.Y-3.5) > 1e-9 {
		t.Errorf("peak gust %.3f m/s, want 3.5 at severity 1", peak.Y)
	}
	if edge := in.Offset(10.4); edge.Y <= 0 || edge.Y >= peak.Y {
		t.Errorf("gust must ramp: edge %.3f vs peak %.3f", edge.Y, peak.Y)
	}
}

func TestFaultPlanJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, f := range Families() {
		p := DrawFault(f, NewDrawSpec(60, 1), nil, rng)
		blob, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("%s: marshal: %v", f, err)
		}
		var back FaultPlan
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", f, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Errorf("%s: JSON round trip changed the plan:\n%+v\n%+v", f, p, back)
		}
		if p.String() == "" || p.String() == "none" {
			t.Errorf("%s: empty String()", f)
		}
	}
}
