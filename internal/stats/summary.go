package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number-plus distribution summary of a sample set, the
// textual equivalent of one box in the paper's box-and-whisker flight-time
// figures (Fig. 3a, Fig. 6).
type Summary struct {
	N      int
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
	Mean   float64
	Std    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var w Welford
	for _, x := range s {
		w.Add(x)
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		P25:    Percentile(s, 25),
		Median: Percentile(s, 50),
		P75:    Percentile(s, 75),
		P95:    Percentile(s, 95),
		Max:    s[len(s)-1],
		Mean:   w.Mean(),
		Std:    w.Std(),
	}
}

// Percentile returns the p-th percentile (0–100) of sorted sample s using
// linear interpolation between closest ranks. s must be sorted ascending.
func Percentile(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if len(s) == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// String renders the summary as a single row suitable for experiment output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f p25=%.2f med=%.2f p75=%.2f p95=%.2f max=%.2f mean=%.2f±%.2f",
		s.N, s.Min, s.P25, s.Median, s.P75, s.P95, s.Max, s.Mean, s.Std)
}

// Histogram is a fixed-bin histogram over [Lo, Hi); samples outside the range
// are clamped into the boundary bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records sample x.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Mode returns the centre of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(best)+0.5)*w
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
