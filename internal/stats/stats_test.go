package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naive two-pass mean/std for cross-checking Welford.
func naive(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	if len(xs) > 1 {
		std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	return mean, std
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			w.Add(xs[i])
		}
		m, s := naive(xs)
		if math.Abs(w.Mean()-m) > 1e-9*math.Abs(m)+1e-9 {
			t.Fatalf("mean %v != %v", w.Mean(), m)
		}
		if math.Abs(w.Std()-s) > 1e-9*s+1e-9 {
			t.Fatalf("std %v != %v", w.Std(), s)
		}
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("zero value not clean")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Errorf("single sample: mean=%v var=%v", w.Mean(), w.Var())
	}
	if !w.InRange(100, 1) {
		t.Error("warm-up detector should accept everything")
	}
	w.Add(5)
	if w.Std() != 0 {
		t.Errorf("two equal samples std=%v", w.Std())
	}
	// σ=0 and x != mean → infinite sigma.
	if !math.IsInf(w.Sigma(6), 1) {
		t.Errorf("Sigma at zero std = %v", w.Sigma(6))
	}
	if w.Sigma(5) != 0 {
		t.Errorf("Sigma at mean = %v", w.Sigma(5))
	}
	w.Reset()
	if w.N() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestWelfordInRange(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 10)) // mean 4.5, std ~2.88
	}
	if !w.InRange(4.5, 1) {
		t.Error("mean not in range")
	}
	if w.InRange(50, 3) {
		t.Error("far outlier in 3-sigma range")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 7
	}
	var all, a, b Welford
	for i, x := range xs {
		all.Add(x)
		if i < 120 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged n=%d want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Std()-all.Std()) > 1e-9 {
		t.Errorf("merge: mean %v/%v std %v/%v", a.Mean(), all.Mean(), a.Std(), all.Std())
	}
	// Merge into empty.
	var empty Welford
	empty.Merge(&all)
	if empty.N() != all.N() || empty.Mean() != all.Mean() {
		t.Error("merge into empty lost data")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single-element percentile")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		s := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s = append(s, x)
			}
		}
		if len(s) < 2 {
			return true
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(s, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	// Summarize must not mutate its input.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d = %d", i, c)
		}
	}
	h.Add(-5) // clamps into bin 0
	h.Add(99) // clamps into last bin
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamping: %v", h.Counts)
	}
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	h2 := NewHistogram(0, 10, 5)
	h2.Add(7)
	h2.Add(7.5)
	h2.Add(1)
	if m := h2.Mode(); math.Abs(m-7) > 1 {
		t.Errorf("Mode = %v", m)
	}
	// Degenerate constructors.
	if h3 := NewHistogram(5, 5, 0); len(h3.Counts) != 1 || h3.Hi <= h3.Lo {
		t.Errorf("degenerate histogram: %+v", h3)
	}
}

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Mean(xs) != 2.25 || Max(xs) != 7 || Min(xs) != -1 {
		t.Error("Mean/Max/Min wrong")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
}

// TestWelfordMergePartitionOrderIndependence is the property the parallel
// campaign engine rests on: folding any partition of a sample stream into
// per-shard accumulators and merging them — in any order — agrees with the
// sequential accumulation, up to floating-point reassociation.
func TestWelfordMergePartitionOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var seq Welford
	for _, x := range xs {
		seq.Add(x)
	}
	for trial := 0; trial < 25; trial++ {
		// Random partition into 1..8 shards.
		k := 1 + rng.Intn(8)
		shards := make([]Welford, k)
		for _, x := range xs {
			shards[rng.Intn(k)].Add(x)
		}
		var merged Welford
		for _, s := range rng.Perm(k) {
			merged.Merge(&shards[s])
		}
		if merged.N() != seq.N() {
			t.Fatalf("trial %d: n=%d want %d", trial, merged.N(), seq.N())
		}
		if math.Abs(merged.Mean()-seq.Mean()) > 1e-9 {
			t.Errorf("trial %d: mean %v want %v", trial, merged.Mean(), seq.Mean())
		}
		if math.Abs(merged.Var()-seq.Var()) > 1e-9 {
			t.Errorf("trial %d: var %v want %v", trial, merged.Var(), seq.Var())
		}
	}
}
