// Package stats provides the statistical machinery used throughout the MAVFI
// reproduction: the online Welford mean/variance recurrence the paper's
// Gaussian anomaly detector is built on (Eqs. 1–2, after Knuth TAOCP vol. 2),
// plus distribution summaries and histograms used to report the flight-time
// figures.
package stats

import "math"

// Welford maintains a running mean and variance of a stream of samples using
// the numerically stable recurrence from the paper:
//
//	M_k = M_{k-1} + (x_k − M_{k-1})/k        (Eq. 1)
//	S_k = S_{k-1} + (x_k − M_{k-1})(x_k − M_k) (Eq. 2)
//
// with M_1 = x_1, S_1 = 0 and σ = sqrt(S_k/(k−1)) for k ≥ 2.
//
// The zero value is ready to use.
type Welford struct {
	n int
	m float64
	s float64
}

// Add folds sample x into the running statistics.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.m = x
		w.s = 0
		return
	}
	prevM := w.m
	w.m += (x - prevM) / float64(w.n)
	w.s += (x - prevM) * (x - w.m)
}

// N returns the number of samples folded in so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean M_k, or 0 before any sample.
func (w *Welford) Mean() float64 { return w.m }

// Var returns the unbiased sample variance S_k/(k−1), or 0 for fewer than
// two samples.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.s / float64(w.n-1)
}

// Std returns the sample standard deviation σ.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Sigma returns how many standard deviations x lies from the running mean.
// It returns 0 when fewer than two samples have been seen, and +Inf when the
// distribution has collapsed to a point (σ = 0) and x differs from the mean.
func (w *Welford) Sigma(x float64) float64 {
	if w.n < 2 {
		return 0
	}
	sd := w.Std()
	d := math.Abs(x - w.m)
	if sd == 0 {
		if d == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d / sd
}

// InRange reports whether x lies within n sigma of the running mean. Before
// two samples have been seen every value is in range (the detector is still
// warming up).
func (w *Welford) InRange(x float64, n float64) bool {
	if w.n < 2 {
		return true
	}
	return w.Sigma(x) <= n
}

// Reset clears the accumulated statistics.
func (w *Welford) Reset() { *w = Welford{} }

// State exports the accumulator for serialisation.
func (w *Welford) State() (n int, mean, s float64) { return w.n, w.m, w.s }

// Restore reinstates a previously exported accumulator state.
func (w *Welford) Restore(n int, mean, s float64) { w.n, w.m, w.s = n, mean, s }

// Merge folds the statistics of o into w, as if all of o's samples had been
// Added to w (Chan et al. parallel combination).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	na, nb := float64(w.n), float64(o.n)
	delta := o.m - w.m
	n := na + nb
	w.m += delta * nb / n
	w.s += o.s + delta*delta*na*nb/n
	w.n += o.n
}
