// Package nn is the from-scratch neural-network substrate for the
// autoencoder-based anomaly detector: fully connected layers, tanh/ReLU/
// identity activations, mean-squared-error loss, and the Adam optimiser —
// the pieces the paper's AAD training procedure needs, with no external
// dependencies.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation int

const (
	// Identity is a linear layer.
	Identity Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
	// ReLU is the rectified linear unit.
	ReLU
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// derivFromOut returns dσ/dx given the activation output y (all three
// activations here admit that form, avoiding a stored pre-activation).
func (a Activation) derivFromOut(y float64) float64 {
	switch a {
	case Tanh:
		return 1 - y*y
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Dense is one fully connected layer with weights W (row-major, Out×In:
// W[i*In+j] connects input j to output i) and bias B. Weights, Adam
// moments, and gradients are single contiguous slices rather than
// slice-of-slice matrices: one cache-friendly block each, no per-row
// headers, and no pointer chase in the inner loops.
type Dense struct {
	In, Out int
	Act     Activation
	W       []float64 // row-major [Out*In]
	B       []float64

	// Adam moments, same layout as W / B.
	mW, vW []float64
	mB, vB []float64

	// Forward caches for backprop.
	input  []float64
	output []float64

	// Gradients accumulated by Backward, same layout as W / B.
	gW []float64
	gB []float64
}

// Row returns output neuron i's weight row, aliasing the layer storage.
func (d *Dense) Row(i int) []float64 { return d.W[i*d.In : (i+1)*d.In] }

// NewDense creates a layer with Xavier/Glorot-uniform initialisation drawn
// from rng.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	limit := math.Sqrt(6.0 / float64(in+out))
	d := &Dense{In: in, Out: out, Act: act}
	d.W = make([]float64, out*in)
	d.mW = make([]float64, out*in)
	d.vW = make([]float64, out*in)
	d.gW = make([]float64, out*in)
	d.B = make([]float64, out)
	d.mB = make([]float64, out)
	d.vB = make([]float64, out)
	d.gB = make([]float64, out)
	for i := 0; i < out; i++ {
		for j := 0; j < in; j++ {
			d.W[i*in+j] = (rng.Float64()*2 - 1) * limit
		}
	}
	return d
}

// Forward computes the layer output for x, caching what Backward needs.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: layer expects %d inputs, got %d", d.In, len(x)))
	}
	d.input = x
	if d.output == nil {
		d.output = make([]float64, d.Out)
	}
	for i := 0; i < d.Out; i++ {
		sum := d.B[i]
		w := d.Row(i)
		for j := 0; j < d.In; j++ {
			sum += w[j] * x[j]
		}
		d.output[i] = d.Act.apply(sum)
	}
	return d.output
}

// Backward consumes dL/dOut, accumulates weight gradients, and returns
// dL/dIn.
func (d *Dense) Backward(gradOut []float64) []float64 {
	gradIn := make([]float64, d.In)
	for i := 0; i < d.Out; i++ {
		g := gradOut[i] * d.Act.derivFromOut(d.output[i])
		d.gB[i] += g
		w := d.Row(i)
		gw := d.gW[i*d.In : (i+1)*d.In]
		for j := 0; j < d.In; j++ {
			gw[j] += g * d.input[j]
			gradIn[j] += g * w[j]
		}
	}
	return gradIn
}

// Network is a feed-forward stack of dense layers.
type Network struct {
	Layers []*Dense
	step   int // Adam time step
}

// NewNetwork builds a stack where sizes gives the neuron count per layer
// including the input, e.g. sizes=[13,6,3,13] with acts for each weight
// layer (len(sizes)-1 entries).
func NewNetwork(sizes []int, acts []Activation, rng *rand.Rand) *Network {
	if len(acts) != len(sizes)-1 {
		panic("nn: need one activation per weight layer")
	}
	n := &Network{}
	for i := 0; i < len(sizes)-1; i++ {
		n.Layers = append(n.Layers, NewDense(sizes[i], sizes[i+1], acts[i], rng))
	}
	return n
}

// CloneForInference returns a copy that shares the trained weight and bias
// storage but carries its own forward-pass scratch, so concurrent Forward
// calls on distinct clones do not race. Clones are inference-only: training
// one (Backward/Step) would both race on and corrupt the shared weights.
func (n *Network) CloneForInference() *Network {
	c := &Network{step: n.step}
	for _, l := range n.Layers {
		c.Layers = append(c.Layers, &Dense{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
	}
	return c
}

// Forward runs the network on x.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// MSE returns the mean squared error between prediction y and target t.
func MSE(y, t []float64) float64 {
	if len(y) != len(t) {
		panic("nn: MSE length mismatch")
	}
	sum := 0.0
	for i := range y {
		d := y[i] - t[i]
		sum += d * d
	}
	return sum / float64(len(y))
}

// BackwardMSE backpropagates the MSE loss for the last Forward call with
// target t, accumulating gradients in every layer. It returns the loss.
func (n *Network) BackwardMSE(t []float64) float64 {
	last := n.Layers[len(n.Layers)-1]
	y := last.output
	loss := MSE(y, t)
	grad := make([]float64, len(y))
	for i := range y {
		grad[i] = 2 * (y[i] - t[i]) / float64(len(y))
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return loss
}

// AdamConfig holds the optimiser hyper-parameters.
type AdamConfig struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
}

// DefaultAdam returns the standard Adam settings (lr=1e-3).
func DefaultAdam() AdamConfig {
	return AdamConfig{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// AdamStep applies one Adam update from the accumulated gradients (averaged
// over batchSize samples) and clears them.
func (n *Network) AdamStep(cfg AdamConfig, batchSize int) {
	n.step++
	t := float64(n.step)
	bc1 := 1 - math.Pow(cfg.Beta1, t)
	bc2 := 1 - math.Pow(cfg.Beta2, t)
	inv := 1.0
	if batchSize > 0 {
		inv = 1 / float64(batchSize)
	}
	for _, l := range n.Layers {
		for i := 0; i < l.Out; i++ {
			base := i * l.In
			for j := 0; j < l.In; j++ {
				k := base + j
				g := l.gW[k] * inv
				l.mW[k] = cfg.Beta1*l.mW[k] + (1-cfg.Beta1)*g
				l.vW[k] = cfg.Beta2*l.vW[k] + (1-cfg.Beta2)*g*g
				mHat := l.mW[k] / bc1
				vHat := l.vW[k] / bc2
				l.W[k] -= cfg.LR * mHat / (math.Sqrt(vHat) + cfg.Epsilon)
				l.gW[k] = 0
			}
			g := l.gB[i] * inv
			l.mB[i] = cfg.Beta1*l.mB[i] + (1-cfg.Beta1)*g
			l.vB[i] = cfg.Beta2*l.vB[i] + (1-cfg.Beta2)*g*g
			mHat := l.mB[i] / bc1
			vHat := l.vB[i] / bc2
			l.B[i] -= cfg.LR * mHat / (math.Sqrt(vHat) + cfg.Epsilon)
			l.gB[i] = 0
		}
	}
}

// Params counts trainable parameters, used for overhead accounting.
func (n *Network) Params() int {
	total := 0
	for _, l := range n.Layers {
		total += l.In*l.Out + l.Out
	}
	return total
}
