package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(4, 3, Identity, rng)
	out := d.Forward([]float64{1, 2, 3, 4})
	if len(out) != 3 {
		t.Fatalf("output size %d", len(out))
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong input size")
		}
	}()
	d.Forward([]float64{1, 2})
}

func TestActivations(t *testing.T) {
	if Tanh.apply(0) != 0 || math.Abs(Tanh.apply(100)-1) > 1e-9 {
		t.Error("tanh misbehaves")
	}
	if ReLU.apply(-3) != 0 || ReLU.apply(3) != 3 {
		t.Error("relu misbehaves")
	}
	if Identity.apply(2.5) != 2.5 {
		t.Error("identity misbehaves")
	}
	if ReLU.derivFromOut(0) != 0 || ReLU.derivFromOut(5) != 1 {
		t.Error("relu derivative")
	}
	if Identity.derivFromOut(42) != 1 {
		t.Error("identity derivative")
	}
	// tanh'(x) = 1 - tanh(x)^2 expressed from the output.
	y := Tanh.apply(0.7)
	if math.Abs(Tanh.derivFromOut(y)-(1-y*y)) > 1e-12 {
		t.Error("tanh derivative")
	}
}

// TestGradientNumerical verifies backprop gradients against central finite
// differences on a small random network.
func TestGradientNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork([]int{3, 4, 2}, []Activation{Tanh, Identity}, rng)
	x := []float64{0.3, -0.7, 1.1}
	target := []float64{0.5, -0.25}

	// Analytic gradients.
	net.Forward(x)
	net.BackwardMSE(target)

	const eps = 1e-6
	for li, layer := range net.Layers {
		for i := 0; i < layer.Out; i++ {
			for j := 0; j < layer.In; j++ {
				k := i*layer.In + j
				analytic := layer.gW[k]
				orig := layer.W[k]
				layer.W[k] = orig + eps
				lossPlus := MSE(net.Forward(x), target)
				layer.W[k] = orig - eps
				lossMinus := MSE(net.Forward(x), target)
				layer.W[k] = orig
				numeric := (lossPlus - lossMinus) / (2 * eps)
				if math.Abs(analytic-numeric) > 1e-5*(1+math.Abs(numeric)) {
					t.Fatalf("layer %d W[%d][%d]: analytic %v vs numeric %v", li, i, j, analytic, numeric)
				}
			}
			// Bias gradient.
			analytic := layer.gB[i]
			orig := layer.B[i]
			layer.B[i] = orig + eps
			lossPlus := MSE(net.Forward(x), target)
			layer.B[i] = orig - eps
			lossMinus := MSE(net.Forward(x), target)
			layer.B[i] = orig
			numeric := (lossPlus - lossMinus) / (2 * eps)
			if math.Abs(analytic-numeric) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d B[%d]: analytic %v vs numeric %v", li, i, analytic, numeric)
			}
		}
	}
}

func TestAdamReducesLossOnToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Learn a 2-D identity through a 2-3-2 network.
	net := NewNetwork([]int{2, 3, 2}, []Activation{Tanh, Identity}, rng)
	adam := DefaultAdam()
	adam.LR = 0.01
	data := make([][]float64, 64)
	for i := range data {
		data[i] = []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
	}
	lossAt := func() float64 {
		sum := 0.0
		for _, s := range data {
			sum += MSE(net.Forward(s), s)
		}
		return sum / float64(len(data))
	}
	before := lossAt()
	for epoch := 0; epoch < 200; epoch++ {
		for _, s := range data {
			net.Forward(s)
			net.BackwardMSE(s)
		}
		net.AdamStep(adam, len(data))
	}
	after := lossAt()
	if after > before*0.2 {
		t.Errorf("loss %v → %v: insufficient training progress", before, after)
	}
}

func TestBackwardMSEReturnsLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork([]int{2, 2}, []Activation{Identity}, rng)
	y := net.Forward([]float64{1, 1})
	target := []float64{y[0] + 1, y[1] - 1}
	loss := net.BackwardMSE(target)
	if math.Abs(loss-1.0) > 1e-12 { // MSE of (+1, −1) errors = 1
		t.Errorf("loss = %v", loss)
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestNetworkParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// The paper's autoencoder: 13-6-3-13.
	net := NewNetwork([]int{13, 6, 3, 13}, []Activation{Tanh, Tanh, Identity}, rng)
	want := 13*6 + 6 + 6*3 + 3 + 3*13 + 13
	if got := net.Params(); got != want {
		t.Errorf("Params = %d, want %d", got, want)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Error("no panic on activation count mismatch")
		}
	}()
	NewNetwork([]int{2, 3, 2}, []Activation{Tanh}, rng)
}

func TestXavierInitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(10, 10, Tanh, rng)
	limit := math.Sqrt(6.0 / 20)
	for _, w := range d.W {
		if math.Abs(w) > limit {
			t.Fatalf("weight %v exceeds Xavier limit %v", w, limit)
		}
	}
	for i := range d.B {
		if d.B[i] != 0 {
			t.Error("bias not zero-initialised")
		}
	}
}

func TestCloneForInferenceConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork([]int{13, 6, 3, 6, 13}, []Activation{Tanh, Tanh, Tanh, Identity}, rng)
	x := make([]float64, 13)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), net.Forward(x)...)

	// Clones share weights but not scratch: concurrent Forward calls must
	// neither race (checked under -race) nor perturb each other's outputs.
	const clones = 8
	outs := make([][]float64, clones)
	done := make(chan int, clones)
	for c := 0; c < clones; c++ {
		go func(c int) {
			cl := net.CloneForInference()
			var out []float64
			for iter := 0; iter < 200; iter++ {
				out = cl.Forward(x)
			}
			outs[c] = append([]float64(nil), out...)
			done <- c
		}(c)
	}
	for c := 0; c < clones; c++ {
		<-done
	}
	for c, out := range outs {
		for i := range want {
			if math.Abs(out[i]-want[i]) > 1e-15 {
				t.Fatalf("clone %d output[%d] = %v, want %v", c, i, out[i], want[i])
			}
		}
	}
}
