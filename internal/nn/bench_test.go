package nn

import (
	"math/rand"
	"testing"
)

// aadShape mirrors the paper's autoencoder: 13-6-3-6-13.
func aadShape(rng *rand.Rand) *Network {
	return NewNetwork([]int{13, 6, 3, 6, 13}, []Activation{Tanh, Tanh, Tanh, Identity}, rng)
}

// BenchmarkForward measures one AAD-shaped inference, the per-tick detector
// cost, over the flattened row-major weight layout.
func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net := aadShape(rng)
	x := make([]float64, 13)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

// BenchmarkTrainStep measures one forward+backward+Adam cycle, the AAD
// training inner loop.
func BenchmarkTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net := aadShape(rng)
	cfg := DefaultAdam()
	x := make([]float64, 13)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
		net.BackwardMSE(x)
		net.AdamStep(cfg, 1)
	}
}
