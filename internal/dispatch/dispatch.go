package dispatch

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mavfi/internal/campaign"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/qof"
)

// Config configures a Dispatcher. Zero values take the documented defaults.
type Config struct {
	// Shards are the initial worker addresses (host:port). More can join at
	// runtime via AddShard / the POST /workers endpoint.
	Shards []string
	// LeaseTTL bounds one cell assignment: a shard that has not returned the
	// cell within it loses the lease, and the cell is retried elsewhere
	// (default 2m). The lease is the dispatcher's runaway protection — and
	// unlike matrix.Spec.Deadline it never breaks byte-identity, because an
	// expired lease discards the whole attempt instead of fabricating a
	// degraded mission result.
	LeaseTTL time.Duration
	// HeartbeatEvery is the health-probe period (default 1s);
	// HeartbeatMisses is how many consecutive failed probes mark a shard
	// unhealthy (default 3). One success marks it healthy again.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// RetryBase and RetryCap shape the capped exponential backoff between
	// retries of one cell: base<<(attempt-1) capped at RetryCap (defaults
	// 200ms and 5s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// MaxRemoteAttempts is how many failed remote attempts a cell tolerates
	// before it falls back to local execution even while shards look healthy
	// (default 4). Ignored when DisableLocal is set.
	MaxRemoteAttempts int
	// DisableLocal forbids the local-execution fallback: with it set, cells
	// wait (with backoff) for a healthy shard forever. Chaos tests use this
	// to force the remote path; production leaves it off so a dispatcher
	// with zero healthy shards degrades to a slower single-process run
	// instead of stalling.
	DisableLocal bool
	// PerShard is the number of concurrent units one shard may hold
	// (default 1 — a cell already fans its missions across the shard's own
	// worker pool).
	PerShard int
	// StateDir, when set, persists campaign state crash-safely: a manifest
	// plus one atomically written JSON per completed cell. A dispatcher
	// restarted with the same StateDir and spec resumes, re-running only
	// missing cells.
	StateDir string
	// SeedURL, when set, is advertised to workers as the golden-map seed
	// endpoint (the dispatcher's own address serving GET /seeds/...). Only
	// meaningful for specs with MapSeed != "off".
	SeedURL string
	// Workers sizes the local-fallback campaign pool (0 = default).
	Workers int
	// Client is the shard transport (nil = NewHTTPShardClient(nil)). Tests
	// inject chaos here.
	Client ShardClient
	// Logf receives dispatch diagnostics (nil = silent).
	Logf func(format string, args ...any)
	// OnCellDone, when non-nil, is called (from the scheduling goroutine)
	// after each cell result is accepted and persisted — observability for
	// progress displays and the chaos harness.
	OnCellDone func(done, total int)
}

// withDefaults fills the documented defaults.
func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Second
	}
	if c.MaxRemoteAttempts <= 0 {
		c.MaxRemoteAttempts = 4
	}
	if c.PerShard <= 0 {
		c.PerShard = 1
	}
	return c
}

// backoffDelay is the capped exponential retry ladder: base<<(attempt-1),
// saturating at cap. attempt is 1-based (the first RETRY waits base).
func backoffDelay(base, cap time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap || d <= 0 { // <= 0 guards shift overflow
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// shard is one worker's dispatcher-side health and load record.
type shard struct {
	addr     string
	healthy  bool
	misses   int
	inflight int
}

// ShardStatus is one shard's externally visible state.
type ShardStatus struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Inflight int    `json:"inflight"`
	Misses   int    `json:"misses"`
}

// Status is a running (or finished) campaign's progress snapshot.
type Status struct {
	Campaign   string        `json:"campaign"`
	Total      int           `json:"total"`
	Done       int           `json:"done"`
	Inflight   int           `json:"inflight"`
	Retries    int64         `json:"retries"`
	Expired    int64         `json:"expired_leases"`
	StaleDrops int64         `json:"stale_drops"`
	LocalRuns  int64         `json:"local_runs"`
	Shards     []ShardStatus `json:"shards"`
}

// Dispatcher fans campaign-matrix cells out to worker shards. Create with
// New, register shards (Config.Shards, AddShard, or the POST /workers
// endpoint), then Run one campaign at a time.
type Dispatcher struct {
	cfg    Config
	client ShardClient
	assets *matrix.Assets
	local  *Worker

	mu     sync.Mutex
	shards map[string]*shard
	wake   chan struct{}

	campaignID atomic.Value // string
	total      atomic.Int64
	done       atomic.Int64
	inflight   atomic.Int64
	retries    atomic.Int64
	expired    atomic.Int64
	staleDrops atomic.Int64
	localRuns  atomic.Int64
	running    atomic.Bool
}

// New builds a Dispatcher.
func New(cfg Config) *Dispatcher {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = NewHTTPShardClient(nil)
	}
	assets := matrix.NewAssets()
	d := &Dispatcher{
		cfg:    cfg,
		client: client,
		assets: assets,
		local:  NewWorkerOn(WorkerConfig{Workers: cfg.Workers, Logf: cfg.Logf}, assets),
		shards: make(map[string]*shard),
		wake:   make(chan struct{}, 1),
	}
	for _, addr := range cfg.Shards {
		d.AddShard(addr)
	}
	return d
}

// logf forwards to the configured logger.
func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// AddShard registers a worker address (idempotent). New shards start
// healthy-optimistic: a first assignment probes them faster than a
// heartbeat round-trip would, and a failure just retries elsewhere.
func (d *Dispatcher) AddShard(addr string) {
	if addr == "" {
		return
	}
	d.mu.Lock()
	_, ok := d.shards[addr]
	if !ok {
		d.shards[addr] = &shard{addr: addr, healthy: true}
	}
	d.mu.Unlock()
	if !ok {
		d.logf("dispatch: shard %s registered", addr)
		d.wakeUp()
	}
}

// wakeUp nudges the scheduling loop without blocking.
func (d *Dispatcher) wakeUp() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Stat snapshots campaign progress and shard health.
func (d *Dispatcher) Stat() Status {
	st := Status{
		Total:      int(d.total.Load()),
		Done:       int(d.done.Load()),
		Inflight:   int(d.inflight.Load()),
		Retries:    d.retries.Load(),
		Expired:    d.expired.Load(),
		StaleDrops: d.staleDrops.Load(),
		LocalRuns:  d.localRuns.Load(),
	}
	if id, ok := d.campaignID.Load().(string); ok {
		st.Campaign = id
	}
	d.mu.Lock()
	for _, sh := range d.shards {
		st.Shards = append(st.Shards, ShardStatus{Addr: sh.addr, Healthy: sh.healthy, Inflight: sh.inflight, Misses: sh.misses})
	}
	d.mu.Unlock()
	sort.Slice(st.Shards, func(i, j int) bool { return st.Shards[i].Addr < st.Shards[j].Addr })
	return st
}

// campaignID derives the campaign's stable identity from every spec knob a
// cell result is a function of: the matrix seed, the enumerated cell names,
// and the knobs names don't encode (runs per cell, mission time budget,
// detector training size, map-seed mode, near-field stride). Two specs with
// the same ID produce byte-identical results, so a restarted dispatcher may
// reuse persisted cells verbatim — and one with a different ID must not.
func campaignID(spec matrix.Spec, cells []matrix.Cell) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d runs=%d maxmission=%v train=%d mapseed=%s stride=%d\n",
		spec.Seed, spec.Runs, spec.MaxMissionS, spec.TrainEnvs, spec.MapSeed, spec.NearFieldStride)
	for _, c := range cells {
		fmt.Fprintf(h, "%s\n", c.Name())
	}
	return fmt.Sprintf("mx-%016x", h.Sum64())
}

// pendingCell is one unassigned cell with its retry bookkeeping.
type pendingCell struct {
	idx      int
	attempts int       // failed attempts so far
	readyAt  time.Time // backoff gate; zero = immediately ready
}

// lease is one live assignment.
type lease struct {
	token    uint64
	sh       *shard    // nil = local execution
	deadline time.Time // zero = no deadline (local runs are in-process)
}

// attempt is one assignment's outcome, posted by its goroutine.
type attempt struct {
	idx   int
	token uint64
	sh    *shard
	res   *WorkResult
	err   error
}

// Run executes the matrix across the registered shards and reassembles a
// Result byte-identical to matrix.Run for the same spec: cells are pure
// functions of their identity seeds, so placement, retries, worker deaths,
// and local fallback are all unobservable in the output. Progress persists
// crash-safely under Config.StateDir; a canceled or killed dispatcher
// re-run with the same StateDir and spec resumes where it left off.
//
// Per-mission streaming hooks (Spec.Progress, Spec.OnMission) and
// Spec.RecordDir only apply to missions the dispatcher itself runs, so Run
// clears them; Spec.Deadline is likewise cleared — the lease TTL is the
// dispatch-layer runaway protection, and it never breaks byte-identity.
func (d *Dispatcher) Run(ctx context.Context, spec matrix.Spec) (*matrix.Result, error) {
	if !d.running.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("dispatch: a campaign is already running")
	}
	defer d.running.Store(false)

	nspec := spec.Normalized()
	nspec.Progress, nspec.OnMission = nil, nil
	nspec.RecordDir = ""
	nspec.Deadline = 0
	switch nspec.MapSeed {
	case "off", "seed", "memo":
	default:
		return nil, fmt.Errorf("dispatch: unknown map-seed mode %q", nspec.MapSeed)
	}

	cells := matrix.Cells(nspec)
	id := campaignID(nspec, cells)
	d.campaignID.Store(id)
	st := campaignState{dir: d.cfg.StateDir}
	doneCells, err := st.init(id, nspec.Runs, cells)
	if err != nil {
		return nil, err
	}
	if doneCells == nil {
		doneCells = make(map[int]*cellState)
	}
	if n := len(doneCells); n > 0 {
		d.logf("dispatch: resuming campaign %s: %d/%d cells already complete", id, n, len(cells))
	}

	d.total.Store(int64(len(cells)))
	d.done.Store(int64(len(doneCells)))
	d.inflight.Store(0)

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go d.probeLoop(pctx)

	var (
		pending  []*pendingCell
		attempts = make(map[int]int)
		leases   = make(map[int]*lease)
		results  = make(chan attempt, len(cells)+8)
		nextTok  uint64
		localBsy int
	)
	for i := range cells {
		if doneCells[i] == nil {
			pending = append(pending, &pendingCell{idx: i})
		}
	}

	launch := func(pc *pendingCell, sh *shard, now time.Time) {
		nextTok++
		tok := nextTok
		unit := WorkUnit{
			Campaign: id,
			Cell:     pc.idx,
			Name:     cells[pc.idx].Name(),
			Token:    tok,
			Spec:     cellSpec(nspec, cells[pc.idx]),
			SeedURL:  d.cfg.SeedURL,
		}
		l := &lease{token: tok, sh: sh}
		if sh != nil {
			l.deadline = now.Add(d.cfg.LeaseTTL)
			d.mu.Lock()
			sh.inflight++
			d.mu.Unlock()
		} else {
			localBsy++
			d.localRuns.Add(1)
		}
		leases[pc.idx] = l
		d.inflight.Add(1)
		go func() {
			if sh == nil {
				res, err := d.local.Exec(ctx, unit)
				results <- attempt{idx: pc.idx, token: tok, res: res, err: err}
				return
			}
			lctx, lcancel := context.WithTimeout(ctx, d.cfg.LeaseTTL)
			defer lcancel()
			res, err := d.client.Exec(lctx, sh.addr, unit)
			results <- attempt{idx: pc.idx, token: tok, sh: sh, res: res, err: err}
		}()
	}

	requeue := func(idx int, now time.Time) {
		attempts[idx]++
		d.retries.Add(1)
		pending = append(pending, &pendingCell{
			idx:      idx,
			attempts: attempts[idx],
			readyAt:  now.Add(backoffDelay(d.cfg.RetryBase, d.cfg.RetryCap, attempts[idx])),
		})
	}

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()

	for len(doneCells) < len(cells) {
		now := time.Now()

		// Expire overdue leases: the normal path is the lease context
		// cancelling the transport call, but a transport that ignores its
		// context must not wedge the campaign. Invalidating the lease here
		// fences the eventual late result out.
		for idx, l := range leases {
			if l.sh != nil && !l.deadline.IsZero() && now.After(l.deadline) {
				d.logf("dispatch: lease for cell %d (token %d) on %s expired; retrying elsewhere", idx, l.token, l.sh.addr)
				delete(leases, idx)
				d.expired.Add(1)
				d.inflight.Add(-1)
				requeue(idx, now)
			}
		}

		// Assign every ready pending cell we have capacity for.
		var defer_ []*pendingCell
		for _, pc := range pending {
			if pc.readyAt.After(now) {
				defer_ = append(defer_, pc)
				continue
			}
			sh := d.pickShard()
			switch {
			case !d.cfg.DisableLocal && pc.attempts >= d.cfg.MaxRemoteAttempts && localBsy == 0:
				// The cell keeps failing remotely; stop bouncing it.
				d.logf("dispatch: cell %d failed %d remote attempts; running locally", pc.idx, pc.attempts)
				launch(pc, nil, now)
			case sh != nil:
				launch(pc, sh, now)
			case !d.cfg.DisableLocal && !d.anyHealthy() && localBsy == 0:
				// Degradation ladder's last rung: no healthy shard at all.
				d.logf("dispatch: no healthy shards; running cell %d locally", pc.idx)
				launch(pc, nil, now)
			default:
				defer_ = append(defer_, pc)
			}
		}
		pending = defer_

		// Sleep until the next backoff gate or lease deadline, a result, a
		// health transition, or cancellation.
		wakeAt := now.Add(time.Hour)
		for _, pc := range pending {
			if !pc.readyAt.IsZero() && pc.readyAt.Before(wakeAt) {
				wakeAt = pc.readyAt
			}
		}
		for _, l := range leases {
			if !l.deadline.IsZero() && l.deadline.Before(wakeAt) {
				wakeAt = l.deadline
			}
		}
		if len(pending) > 0 && len(leases) == 0 {
			// Nothing in flight and nothing assignable: bounded poll so a
			// recovering shard is picked up even without a wake edge.
			if hb := now.Add(d.cfg.HeartbeatEvery); hb.Before(wakeAt) {
				wakeAt = hb
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Until(wakeAt))

		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-d.wake:
		case <-timer.C:
		case att := <-results:
			if att.sh != nil {
				d.mu.Lock()
				att.sh.inflight--
				d.mu.Unlock()
			} else {
				localBsy--
			}
			l, live := leases[att.idx]
			if !live || l.token != att.token {
				// Fenced: the lease expired (or the cell completed) while
				// this attempt was in flight. Whatever it carries — even a
				// valid result — must not be double-counted.
				d.staleDrops.Add(1)
				d.logf("dispatch: dropping stale result for cell %d (token %d)", att.idx, att.token)
				continue
			}
			delete(leases, att.idx)
			d.inflight.Add(-1)
			now := time.Now()
			if att.err != nil || att.res == nil ||
				att.res.Name != cells[att.idx].Name() || len(att.res.Results) != nspec.Runs {
				if att.err == nil {
					att.err = fmt.Errorf("malformed result (name %q, %d missions)", resName(att.res), resLen(att.res))
				}
				where := "local"
				if att.sh != nil {
					where = att.sh.addr
				}
				d.logf("dispatch: cell %d attempt on %s failed: %v", att.idx, where, att.err)
				requeue(att.idx, now)
				continue
			}
			cs := &cellState{
				Index:   att.idx,
				Name:    att.res.Name,
				Results: att.res.Results,
				Plans:   att.res.Plans,
				Panics:  att.res.Panics,
			}
			if err := st.save(cs); err != nil {
				d.logf("dispatch: persisting cell %d: %v (resume granularity degraded)", att.idx, err)
			}
			doneCells[att.idx] = cs
			d.done.Add(1)
			if d.cfg.OnCellDone != nil {
				d.cfg.OnCellDone(len(doneCells), len(cells))
			}
		}
	}

	return assemble(nspec, cells, doneCells), nil
}

// resName and resLen render a possibly-nil result for diagnostics.
func resName(r *WorkResult) string {
	if r == nil {
		return ""
	}
	return r.Name
}

func resLen(r *WorkResult) int {
	if r == nil {
		return 0
	}
	return len(r.Results)
}

// pickShard returns a healthy shard with free capacity (round-robin-ish by
// map order; fairness doesn't affect results, only load spread).
func (d *Dispatcher) pickShard() *shard {
	d.mu.Lock()
	defer d.mu.Unlock()
	var best *shard
	for _, sh := range d.shards {
		if !sh.healthy || sh.inflight >= d.cfg.PerShard {
			continue
		}
		if best == nil || sh.inflight < best.inflight || (sh.inflight == best.inflight && sh.addr < best.addr) {
			best = sh
		}
	}
	return best
}

// anyHealthy reports whether at least one registered shard is healthy.
func (d *Dispatcher) anyHealthy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, sh := range d.shards {
		if sh.healthy {
			return true
		}
	}
	return false
}

// probeLoop is the heartbeat: every HeartbeatEvery it probes each shard's
// health endpoint, marking a shard unhealthy after HeartbeatMisses
// consecutive failures and healthy again on the first success. Transitions
// wake the scheduling loop.
func (d *Dispatcher) probeLoop(ctx context.Context) {
	tick := time.NewTicker(d.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		d.mu.Lock()
		addrs := make([]string, 0, len(d.shards))
		for addr := range d.shards {
			addrs = append(addrs, addr)
		}
		d.mu.Unlock()
		changed := false
		for _, addr := range addrs {
			err := d.client.Health(ctx, addr)
			d.mu.Lock()
			sh := d.shards[addr]
			if sh != nil {
				if err == nil {
					if !sh.healthy {
						changed = true
						d.logf("dispatch: shard %s healthy again", addr)
					}
					sh.healthy, sh.misses = true, 0
				} else {
					sh.misses++
					if sh.healthy && sh.misses >= d.cfg.HeartbeatMisses {
						sh.healthy = false
						changed = true
						d.logf("dispatch: shard %s unhealthy after %d missed heartbeats: %v", addr, sh.misses, err)
					}
				}
			}
			d.mu.Unlock()
		}
		if changed {
			d.wakeUp()
		}
	}
}

// assemble rebuilds the full matrix.Result from per-cell states. Worker-
// local panic indices are remapped onto the matrix's flat mission indexing
// so the assembled Result matches matrix.Run's shape exactly.
func assemble(spec matrix.Spec, cells []matrix.Cell, done map[int]*cellState) *matrix.Result {
	res := &matrix.Result{Spec: spec}
	for i, c := range cells {
		cs := done[i]
		res.Cells = append(res.Cells, matrix.CellResult{
			Cell:     c,
			Campaign: &qof.Campaign{Name: c.Name(), Results: cs.Results},
			Plans:    cs.Plans,
		})
		for _, p := range cs.Panics {
			res.Panics = append(res.Panics, campaign.MissionPanic{
				Index: i*spec.Runs + p.Index,
				Value: p.Value,
				Stack: p.Stack,
			})
		}
	}
	sort.Slice(res.Panics, func(a, b int) bool { return res.Panics[a].Index < res.Panics[b].Index })
	return res
}
