package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ShardClient is the dispatcher's transport to worker shards. The chaos
// harness injects scripted implementations here (dead shards, responses
// delayed past their lease, partitions); production uses NewHTTPShardClient.
type ShardClient interface {
	// Exec runs one work unit on the shard at addr. The context carries the
	// lease deadline: implementations must return promptly once it is done.
	Exec(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error)
	// Health probes the shard's liveness (the heartbeat).
	Health(ctx context.Context, addr string) error
}

// maxResultBytes bounds a work-result body; a cell result is a few KB per
// mission, so this is generous without being unbounded.
const maxResultBytes = 1 << 26

// httpShardClient is the production ShardClient: plain HTTP against the
// worker Handler endpoints.
type httpShardClient struct {
	client *http.Client
}

// NewHTTPShardClient builds the production shard transport. Per-request
// deadlines come from the caller's context (the lease), so the underlying
// client itself has no global timeout.
func NewHTTPShardClient(transport http.RoundTripper) ShardClient {
	return &httpShardClient{client: &http.Client{Transport: transport}}
}

// Exec POSTs the unit to the shard's /exec endpoint.
func (c *httpShardClient) Exec(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error) {
	body, err := json.Marshal(unit)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/exec", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dispatch: shard %s: HTTP %d: %s", addr, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var res WorkResult
	dec := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes))
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("dispatch: shard %s: decoding result: %w", addr, err)
	}
	return &res, nil
}

// Health GETs the shard's /healthz with a short per-probe deadline on top
// of whatever the caller set.
func (c *httpShardClient) Health(ctx context.Context, addr string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dispatch: shard %s: health HTTP %d", addr, resp.StatusCode)
	}
	return nil
}
