package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Handler returns the dispatcher's HTTP API:
//
//	GET  /healthz              liveness
//	GET  /status               campaign progress + shard health (JSON)
//	POST /workers              register a worker shard: {"addr":"host:port"}
//	GET  /seeds/{world}.mapseed serialized golden-map snapshot for the world
//
// The seeds endpoint is how golden maps cross the process boundary: the
// dispatcher builds (or loads) each world's seed once, and every worker
// fetches the serialized snapshot instead of re-running the deterministic
// build. The bytes served are the same MAVFISEED format the on-disk cache
// uses, digest-framed so a truncated transfer is detected by the reader.
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("GET /status", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(d.Stat())
	})
	mux.HandleFunc("POST /workers", func(rw http.ResponseWriter, r *http.Request) {
		var req struct {
			Addr string `json:"addr"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(rw, fmt.Sprintf("decoding registration: %v", err), http.StatusBadRequest)
			return
		}
		if req.Addr == "" {
			http.Error(rw, "registration needs addr", http.StatusBadRequest)
			return
		}
		d.AddShard(req.Addr)
		rw.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /seeds/{file}", func(rw http.ResponseWriter, r *http.Request) {
		world, ok := strings.CutSuffix(r.PathValue("file"), ".mapseed")
		if !ok || world == "" {
			http.Error(rw, "want /seeds/{world}.mapseed", http.StatusNotFound)
			return
		}
		seed, err := d.assets.MapSeed(world)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		if _, err := seed.Snapshot().WriteTo(&buf); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
		rw.Write(buf.Bytes())
	})
	return mux
}
