package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mavfi/internal/atomicfile"
	"mavfi/internal/campaign"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
	"mavfi/internal/qof"
)

// campaignManifest is the persisted campaign.json: the campaign identity a
// resumed dispatcher validates its spec against. Cell names are the
// identity — results are pure functions of them — so a state directory
// whose names match the current enumeration holds results that are valid
// verbatim, and one that doesn't is a different campaign and is refused.
type campaignManifest struct {
	ID    string   `json:"id"`
	Cells []string `json:"cells"`
}

// cellState is one persisted completed cell (cells/cell-NNN.json), written
// atomically the moment the cell's lease result is accepted. A dispatcher
// killed mid-campaign and restarted with the same state directory loads
// these and re-runs only what is missing.
type cellState struct {
	Index   int                     `json:"index"`
	Name    string                  `json:"name"`
	Results []qof.Metrics           `json:"results"`
	Plans   []faultinject.FaultPlan `json:"plans"`
	Panics  []campaign.MissionPanic `json:"panics,omitempty"`
}

// campaignState manages a campaign's on-disk state directory.
type campaignState struct {
	dir string // "" = no persistence
}

// cellPath is the cell's state file.
func (st campaignState) cellPath(i int) string {
	return filepath.Join(st.dir, "cells", fmt.Sprintf("cell-%03d.json", i))
}

// init writes (or validates) the campaign manifest and returns any
// previously completed cells, keyed by index. A manifest naming different
// cells is a hard error — silently mixing two campaigns' results would
// break the byte-identity guarantee in the worst possible way.
func (st campaignState) init(id string, cells []matrix.Cell) (map[int]*cellState, error) {
	if st.dir == "" {
		return nil, nil
	}
	names := make([]string, len(cells))
	for i, c := range cells {
		names[i] = c.Name()
	}
	manPath := filepath.Join(st.dir, "campaign.json")
	if b, err := os.ReadFile(manPath); err == nil {
		var man campaignManifest
		if err := json.Unmarshal(b, &man); err != nil {
			return nil, fmt.Errorf("dispatch: corrupt campaign manifest %s: %w", manPath, err)
		}
		if len(man.Cells) != len(names) {
			return nil, fmt.Errorf("dispatch: state dir %s holds a %d-cell campaign, current spec has %d cells", st.dir, len(man.Cells), len(names))
		}
		for i, n := range man.Cells {
			if n != names[i] {
				return nil, fmt.Errorf("dispatch: state dir %s cell %d is %q, current spec enumerates %q", st.dir, i, n, names[i])
			}
		}
		return st.load(cells)
	}
	if err := os.MkdirAll(filepath.Join(st.dir, "cells"), 0o755); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(campaignManifest{ID: id, Cells: names}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicfile.WriteFile(manPath, append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	return map[int]*cellState{}, nil
}

// load reads every persisted cell result, skipping files that are missing,
// torn, or inconsistent with the enumeration — those cells simply re-run
// (re-execution is free of risk: it reproduces the same bytes).
func (st campaignState) load(cells []matrix.Cell) (map[int]*cellState, error) {
	done := make(map[int]*cellState)
	for i, c := range cells {
		b, err := os.ReadFile(st.cellPath(i))
		if err != nil {
			continue
		}
		var cs cellState
		if err := json.Unmarshal(b, &cs); err != nil {
			continue
		}
		if cs.Index != i || cs.Name != c.Name() || len(cs.Results) == 0 {
			continue
		}
		done[i] = &cs
	}
	return done, nil
}

// save persists one completed cell atomically. An error degrades resume
// granularity (the cell would re-run after a crash) but never the result.
func (st campaignState) save(cs *cellState) error {
	if st.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(cs, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(st.cellPath(cs.Index), append(b, '\n'), 0o644)
}
