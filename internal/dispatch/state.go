package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mavfi/internal/atomicfile"
	"mavfi/internal/campaign"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
	"mavfi/internal/qof"
)

// campaignManifest is the persisted campaign.json: the campaign identity a
// resumed dispatcher validates its spec against. The ID hashes every spec
// knob results are a function of — the seed, the cell enumeration, and the
// knobs cell names don't encode (runs, mission budget, training size,
// map-seed mode, near-field stride) — so a state directory whose ID matches
// the current spec holds results that are valid verbatim, and one that
// doesn't is a different campaign and is refused. Cell names are persisted
// alongside purely to make the refusal diagnosable.
type campaignManifest struct {
	ID    string   `json:"id"`
	Cells []string `json:"cells"`
}

// cellState is one persisted completed cell (cells/cell-NNN.json), written
// atomically the moment the cell's lease result is accepted. A dispatcher
// killed mid-campaign and restarted with the same state directory loads
// these and re-runs only what is missing.
type cellState struct {
	Index   int                     `json:"index"`
	Name    string                  `json:"name"`
	Results []qof.Metrics           `json:"results"`
	Plans   []faultinject.FaultPlan `json:"plans"`
	Panics  []campaign.MissionPanic `json:"panics,omitempty"`
}

// campaignState manages a campaign's on-disk state directory.
type campaignState struct {
	dir string // "" = no persistence
}

// cellPath is the cell's state file.
func (st campaignState) cellPath(i int) string {
	return filepath.Join(st.dir, "cells", fmt.Sprintf("cell-%03d.json", i))
}

// init writes (or validates) the campaign manifest and returns any
// previously completed cells, keyed by index. A manifest whose ID differs
// from the current spec's is a hard error — the names may still match
// (they don't encode the seed, runs, or mission budget), and silently
// mixing two campaigns' results would break the byte-identity guarantee
// in the worst possible way.
func (st campaignState) init(id string, runs int, cells []matrix.Cell) (map[int]*cellState, error) {
	if st.dir == "" {
		return nil, nil
	}
	names := make([]string, len(cells))
	for i, c := range cells {
		names[i] = c.Name()
	}
	manPath := filepath.Join(st.dir, "campaign.json")
	if b, err := os.ReadFile(manPath); err == nil {
		var man campaignManifest
		if err := json.Unmarshal(b, &man); err != nil {
			return nil, fmt.Errorf("dispatch: corrupt campaign manifest %s: %w", manPath, err)
		}
		if len(man.Cells) != len(names) {
			return nil, fmt.Errorf("dispatch: state dir %s holds a %d-cell campaign, current spec has %d cells", st.dir, len(man.Cells), len(names))
		}
		for i, n := range man.Cells {
			if n != names[i] {
				return nil, fmt.Errorf("dispatch: state dir %s cell %d is %q, current spec enumerates %q", st.dir, i, n, names[i])
			}
		}
		if man.ID != id {
			return nil, fmt.Errorf("dispatch: state dir %s holds campaign %s, current spec is %s (same cells, different seed/runs/budget/map-seed knobs); use a fresh -state-dir", st.dir, man.ID, id)
		}
		return st.load(runs, cells)
	}
	if err := os.MkdirAll(filepath.Join(st.dir, "cells"), 0o755); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(campaignManifest{ID: id, Cells: names}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicfile.WriteFile(manPath, append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	return map[int]*cellState{}, nil
}

// load reads every persisted cell result, skipping files that are missing,
// torn, or inconsistent with the enumeration — including cells whose
// mission count doesn't match the spec's Runs — those cells simply re-run
// (re-execution is free of risk: it reproduces the same bytes).
func (st campaignState) load(runs int, cells []matrix.Cell) (map[int]*cellState, error) {
	done := make(map[int]*cellState)
	for i, c := range cells {
		b, err := os.ReadFile(st.cellPath(i))
		if err != nil {
			continue
		}
		var cs cellState
		if err := json.Unmarshal(b, &cs); err != nil {
			continue
		}
		if cs.Index != i || cs.Name != c.Name() || len(cs.Results) != runs {
			continue
		}
		done[i] = &cs
	}
	return done, nil
}

// save persists one completed cell atomically. An error degrades resume
// granularity (the cell would re-run after a crash) but never the result.
func (st campaignState) save(cs *cellState) error {
	if st.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(cs, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(st.cellPath(cs.Index), append(b, '\n'), 0o644)
}
