package dispatch

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mavfi/internal/atomicfile"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
)

// The real-process chaos harness: TestMain re-execs this test binary as a
// worker shard or a dispatcher when MAVFI_DISPATCH_ROLE is set, so the
// chaos test can SIGKILL real OS processes — not goroutines — mid-sweep
// and assert the campaign still completes byte-identically.

func TestMain(m *testing.M) {
	switch os.Getenv("MAVFI_DISPATCH_ROLE") {
	case "":
		os.Exit(m.Run())
	case "worker":
		chaosWorkerMain()
	case "dispatch":
		chaosDispatchMain()
	default:
		fmt.Fprintln(os.Stderr, "unknown MAVFI_DISPATCH_ROLE")
		os.Exit(2)
	}
}

// chaosSpec is the sweep the chaos test shards: three calibration-free
// families × two severities, enough cells that a worker SIGKILL and a
// dispatcher restart both land mid-campaign.
func chaosSpec() matrix.Spec {
	return matrix.Spec{
		Worlds: []string{"sparse"},
		Families: []faultinject.Family{
			faultinject.FamilySensor, faultinject.FamilyWind, faultinject.FamilyActuator,
		},
		Severities: []matrix.Severity{{Name: "low", Scale: 0.35}, {Name: "high", Scale: 1.0}},
		Runs:       4,
		Seed:       7,
	}
}

// chaosWorkerMain runs a worker shard on an ephemeral loopback port,
// publishing the bound address atomically to MAVFI_DISPATCH_ADDRFILE so the
// parent never reads a torn file. It serves until killed.
func chaosWorkerMain() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	addr := ln.Addr().String()
	if err := atomicfile.WriteFile(os.Getenv("MAVFI_DISPATCH_ADDRFILE"), []byte(addr), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[worker %s] "+format+"\n", append([]any{addr}, args...)...)
	}
	w := NewWorker(WorkerConfig{Workers: 1, Logf: logf})
	err = (&http.Server{Handler: w.Handler()}).Serve(ln)
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// chaosDispatchMain runs one dispatcher campaign over the shard addresses
// in MAVFI_DISPATCH_SHARDS, persisting state to MAVFI_DISPATCH_STATE and
// writing final CSVs to MAVFI_DISPATCH_OUT. Exit 0 means the campaign
// completed and the CSVs are on disk.
func chaosDispatchMain() {
	d := New(Config{
		Shards:          strings.Split(os.Getenv("MAVFI_DISPATCH_SHARDS"), ","),
		DisableLocal:    true,
		StateDir:        os.Getenv("MAVFI_DISPATCH_STATE"),
		LeaseTTL:        10 * time.Second,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 3,
		RetryBase:       20 * time.Millisecond,
		RetryCap:        200 * time.Millisecond,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[dispatch] "+format+"\n", args...)
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := d.Run(ctx, chaosSpec())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := res.WriteCSV(os.Getenv("MAVFI_DISPATCH_OUT")); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startChaosChild re-execs the test binary in the given role.
func startChaosChild(t *testing.T, role string, env map[string]string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestMain")
	cmd.Env = append(os.Environ(), "MAVFI_DISPATCH_ROLE="+role)
	for k, v := range env {
		cmd.Env = append(cmd.Env, k+"="+v)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// waitForFile polls until the file exists and is non-empty, returning its
// contents.
func waitForFile(t *testing.T, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", path)
	return ""
}

// waitForCellFiles polls until at least n cell state files exist.
func waitForCellFiles(t *testing.T, stateDir string, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		m, _ := filepath.Glob(filepath.Join(stateDir, "cells", "cell-*.json"))
		if len(m) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d cell files in %s", n, stateDir)
}

func TestChaosKillWorkerAndRestartDispatcher(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions in real processes")
	}
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	outDir := filepath.Join(dir, "out")

	// Two real worker processes.
	var addrs []string
	var workers []*exec.Cmd
	for i := 0; i < 2; i++ {
		addrFile := filepath.Join(dir, fmt.Sprintf("worker-%d.addr", i))
		w := startChaosChild(t, "worker", map[string]string{"MAVFI_DISPATCH_ADDRFILE": addrFile})
		workers = append(workers, w)
		addrs = append(addrs, waitForFile(t, addrFile, 30*time.Second))
	}

	env := map[string]string{
		"MAVFI_DISPATCH_SHARDS": strings.Join(addrs, ","),
		"MAVFI_DISPATCH_STATE":  stateDir,
		"MAVFI_DISPATCH_OUT":    outDir,
	}
	disp := startChaosChild(t, "dispatch", env)

	// Let the campaign get properly underway, then murder one worker with
	// SIGKILL — no handler, no goodbye — and the dispatcher right after.
	waitForCellFiles(t, stateDir, 1, 2*time.Minute)
	if err := workers[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let some in-flight units fail
	if err := disp.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	disp.Wait()

	// Restart the dispatcher over the same state dir with the dead worker
	// still in its shard list. It must resume, mark the corpse unhealthy,
	// finish every remaining cell on the survivor, and exit 0.
	disp2 := startChaosChild(t, "dispatch", env)
	if err := disp2.Wait(); err != nil {
		t.Fatalf("restarted dispatcher failed: %v", err)
	}

	// Byte-identity vs the sequential single-process reference.
	ref, err := matrix.Run(context.Background(), chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(dir, "ref")
	if err := ref.WriteCSV(refDir); err != nil {
		t.Fatal(err)
	}
	refFiles, err := filepath.Glob(filepath.Join(refDir, "*.csv"))
	if err != nil || len(refFiles) == 0 {
		t.Fatalf("no reference CSVs: %v", err)
	}
	gotFiles, err := filepath.Glob(filepath.Join(outDir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFiles) != len(refFiles) {
		t.Fatalf("dispatched run wrote %d CSVs, reference wrote %d", len(gotFiles), len(refFiles))
	}
	for _, rf := range refFiles {
		want, err := os.ReadFile(rf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(outDir, filepath.Base(rf)))
		if err != nil {
			t.Fatalf("missing dispatched CSV: %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s differs between chaos-dispatched and single-process runs", filepath.Base(rf))
		}
	}
}
