// Package dispatch shards a campaign matrix across worker processes with
// the recovery discipline the paper demands of the vehicles themselves:
// detect the anomaly, retry deterministically, verify nothing changed.
//
// A dispatcher enumerates a matrix.Spec's cells and fans them out as
// per-cell work units to registered worker shards over HTTP. Each
// assignment holds a lease with a deadline and a monotonically increasing
// fencing token; lost, expired, errored, or panicked assignments are
// retried on surviving shards under capped exponential backoff, and when no
// shard is healthy the dispatcher degrades to local in-process execution.
// Because every cell is a pure function of its identity seed (the matrix
// determinism contract), a retry on a different shard — or locally — cannot
// change a single byte of the result, so the reassembled cell.csv and
// summary.csv are byte-identical to a single-process `mavfi matrix` run
// regardless of shard count, worker deaths, or retry history. That property
// is enforced by the package's chaos harness: an injectable shard transport
// for in-test fault injection plus a real-process test that SIGKILLs a
// worker mid-sweep and restarts the dispatcher mid-campaign.
package dispatch

import (
	"fmt"

	"mavfi/internal/campaign"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
	"mavfi/internal/qof"
)

// CellSpec is the wire form of one dispatched matrix cell: the cell's axis
// coordinates plus the campaign-wide knobs a worker needs to reproduce the
// cell exactly as the full matrix would have run it. Everything in here is
// part of the cell's identity or a deterministic input, so two shards given
// the same CellSpec return bit-identical results.
type CellSpec struct {
	// World is the environment name.
	World string `json:"world"`
	// Fault is the cell's fault target, "family[:kind]".
	Fault string `json:"fault"`
	// SeverityName and SeverityScale carry the severity coordinate verbatim
	// (names may be custom "name=scale" pairs, so both halves ship).
	SeverityName  string  `json:"severity_name"`
	SeverityScale float64 `json:"severity_scale"`
	// Detector and Recovery are the remaining axis coordinates.
	Detector string `json:"detector"`
	Recovery bool   `json:"recovery"`
	// Runs is missions per cell; Seed is the MATRIX seed (the cell seed
	// derives from it and the cell name on both sides identically).
	Runs int   `json:"runs"`
	Seed int64 `json:"seed"`
	// MaxMissionS, TrainEnvs, MapSeed, NearFieldStride are the campaign-wide
	// execution knobs that participate in determinism.
	MaxMissionS     float64 `json:"max_mission_s,omitempty"`
	TrainEnvs       int     `json:"train_envs"`
	MapSeed         string  `json:"map_seed,omitempty"`
	NearFieldStride int     `json:"near_field_stride,omitempty"`
}

// cellSpec projects one enumerated cell of a normalized spec onto the wire.
func cellSpec(spec matrix.Spec, c matrix.Cell) CellSpec {
	return CellSpec{
		World:           c.World,
		Fault:           c.Target().String(),
		SeverityName:    c.Severity.Name,
		SeverityScale:   c.Severity.Scale,
		Detector:        c.Detector,
		Recovery:        c.Recovery,
		Runs:            spec.Runs,
		Seed:            spec.Seed,
		MaxMissionS:     spec.MaxMissionS,
		TrainEnvs:       spec.TrainEnvs,
		MapSeed:         spec.MapSeed,
		NearFieldStride: spec.NearFieldStride,
	}
}

// matrixSpec rebuilds the single-cell matrix.Spec the worker executes — the
// same Spec shape the campaign server builds for a served job, so the
// dispatched path inherits the served-equals-CLI byte-identity contract.
func (cs CellSpec) matrixSpec() (matrix.Spec, error) {
	if cs.World == "" || cs.Fault == "" {
		return matrix.Spec{}, fmt.Errorf("dispatch: cell spec needs world and fault")
	}
	if _, err := matrix.World(cs.World); err != nil {
		return matrix.Spec{}, err
	}
	targets, err := matrix.ParseTargets(cs.Fault)
	if err != nil {
		return matrix.Spec{}, err
	}
	if len(targets) != 1 {
		return matrix.Spec{}, fmt.Errorf("dispatch: cell spec has %d fault targets, want 1", len(targets))
	}
	if cs.SeverityName == "" || !(cs.SeverityScale > 0) {
		return matrix.Spec{}, fmt.Errorf("dispatch: bad severity %q=%v", cs.SeverityName, cs.SeverityScale)
	}
	return matrix.Spec{
		Worlds:          []string{cs.World},
		Targets:         targets,
		Severities:      []matrix.Severity{{Name: cs.SeverityName, Scale: cs.SeverityScale}},
		Detectors:       []string{cs.Detector},
		Recoveries:      []bool{cs.Recovery},
		Runs:            cs.Runs,
		Seed:            cs.Seed,
		MaxMissionS:     cs.MaxMissionS,
		TrainEnvs:       cs.TrainEnvs,
		MapSeed:         cs.MapSeed,
		NearFieldStride: cs.NearFieldStride,
	}, nil
}

// WorkUnit is one leased cell assignment: what the dispatcher POSTs to a
// worker's /exec endpoint.
type WorkUnit struct {
	// Campaign identifies the dispatch campaign (stable across a dispatcher
	// restart with the same state directory).
	Campaign string `json:"campaign"`
	// Cell is the cell's index in the dispatcher's full enumeration, and
	// Name its canonical identity — echoed back for fencing and validation.
	Cell int    `json:"cell"`
	Name string `json:"name"`
	// Token is the lease fencing token: a dispatcher-wide monotonic counter
	// stamped on every assignment. A result carrying a token that is no
	// longer the cell's live lease is discarded, which is what makes a
	// zombie worker finishing after its lease expired harmless.
	Token uint64 `json:"token"`
	// Spec is the cell to execute.
	Spec CellSpec `json:"spec"`
	// SeedURL, when non-empty, is the dispatcher's golden-map endpoint
	// (GET {SeedURL}/{world}.mapseed): workers fetch each world's serialized
	// MAVFISEED snapshot once and cache it for every later unit, closing the
	// cross-process seed-sharing gap. Fetch failures degrade to a local
	// build, which is bit-identical by the seed determinism contract.
	SeedURL string `json:"seed_url,omitempty"`
}

// WorkResult is a worker's reply to one WorkUnit: the cell's mission
// metrics and fault plans (JSON float64s round-trip exactly, so reassembled
// CSVs are byte-identical to locally computed ones), plus any isolated
// mission panics with worker-local mission indices.
type WorkResult struct {
	Campaign string                  `json:"campaign"`
	Cell     int                     `json:"cell"`
	Name     string                  `json:"name"`
	Token    uint64                  `json:"token"`
	Results  []qof.Metrics           `json:"results"`
	Plans    []faultinject.FaultPlan `json:"plans"`
	Panics   []campaign.MissionPanic `json:"panics,omitempty"`
}
