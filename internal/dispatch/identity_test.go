package dispatch

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
)

// identitySpec is a small real-mission matrix: sensor and wind families
// skip kernel calibration, so the whole sweep is a few hundred ms.
func identitySpec() matrix.Spec {
	return matrix.Spec{
		Worlds:     []string{"sparse"},
		Families:   []faultinject.Family{faultinject.FamilySensor, faultinject.FamilyWind},
		Severities: []matrix.Severity{{Name: "high", Scale: 1.0}},
		Runs:       2,
		Seed:       1,
	}
}

// resultCSVs renders a result the way `mavfi matrix -csv-dir` writes it.
func resultCSVs(res *matrix.Result) (map[string]string, string) {
	cells := make(map[string]string, len(res.Cells))
	for i := range res.Cells {
		cr := &res.Cells[i]
		cells[cr.Cell.CSVName()] = cr.CSV()
	}
	return cells, res.SummaryCSV()
}

// startWorkers launches n real worker shards on loopback HTTP and returns
// their addresses.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1, Logf: t.Logf}).Handler())
		t.Cleanup(srv.Close)
		addrs[i] = strings.TrimPrefix(srv.URL, "http://")
	}
	return addrs
}

func TestDispatchByteIdentityAcrossShardCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	ref, err := matrix.Run(context.Background(), identitySpec())
	if err != nil {
		t.Fatal(err)
	}
	refCells, refSummary := resultCSVs(ref)

	for _, shards := range []int{1, 2} {
		d := New(Config{
			Shards:       startWorkers(t, shards),
			DisableLocal: true,
			Logf:         t.Logf,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		res, err := d.Run(ctx, identitySpec())
		cancel()
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		cells, summary := resultCSVs(res)
		if len(cells) != len(refCells) {
			t.Fatalf("%d shards: %d cells, want %d", shards, len(cells), len(refCells))
		}
		for name, csv := range refCells {
			if cells[name] != csv {
				t.Errorf("%d shards: cell %s CSV differs from single-process run", shards, name)
			}
		}
		if summary != refSummary {
			t.Errorf("%d shards: summary CSV differs from single-process run", shards)
		}
	}
}

func TestDispatchLocalFallbackByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	// No shards registered at all: the dispatcher must degrade to local
	// in-process execution and still produce identical bytes.
	ref, err := matrix.Run(context.Background(), identitySpec())
	if err != nil {
		t.Fatal(err)
	}
	refCells, refSummary := resultCSVs(ref)

	d := New(Config{Workers: 1, Logf: t.Logf})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := d.Run(ctx, identitySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stat(); st.LocalRuns == 0 {
		t.Error("no local runs recorded despite an empty fleet")
	}
	cells, summary := resultCSVs(res)
	for name, csv := range refCells {
		if cells[name] != csv {
			t.Errorf("local fallback: cell %s CSV differs from single-process run", name)
		}
	}
	if summary != refSummary {
		t.Error("local fallback: summary CSV differs from single-process run")
	}
}

func TestDispatchSeedSharingByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	// Memoized golden-map mode: workers fetch the dispatcher's serialized
	// MAVFISEED snapshot instead of rebuilding it. The fetch must actually
	// happen, and the resulting CSVs must match the single-process run.
	spec := identitySpec()
	spec.MapSeed = "memo"
	ref, err := matrix.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	refCells, refSummary := resultCSVs(ref)

	d := New(Config{
		Shards:       startWorkers(t, 2),
		DisableLocal: true,
		Logf:         t.Logf,
	})
	var seedFetches atomic.Int64
	handler := d.Handler()
	dsrv := httptest.NewServer(countSeedFetches(handler, &seedFetches))
	t.Cleanup(dsrv.Close)
	d.cfg.SeedURL = dsrv.URL + "/seeds"

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := d.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if seedFetches.Load() == 0 {
		t.Error("no worker ever fetched the golden-map seed")
	}
	cells, summary := resultCSVs(res)
	for name, csv := range refCells {
		if cells[name] != csv {
			t.Errorf("seed sharing: cell %s CSV differs from single-process run", name)
		}
	}
	if summary != refSummary {
		t.Error("seed sharing: summary CSV differs from single-process run")
	}
}

// countSeedFetches wraps the dispatcher handler, counting /seeds/ hits.
func countSeedFetches(h http.Handler, n *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/seeds/") {
			n.Add(1)
		}
		h.ServeHTTP(rw, r)
	})
}
