package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
	"mavfi/internal/qof"
)

// fakeSpec is a 4-cell matrix (sparse × {sensor, wind} × {low, high}) the
// fake-client tests dispatch without flying a single mission.
func fakeSpec() matrix.Spec {
	return matrix.Spec{
		Worlds:     []string{"sparse"},
		Families:   []faultinject.Family{faultinject.FamilySensor, faultinject.FamilyWind},
		Severities: []matrix.Severity{{Name: "low", Scale: 0.35}, {Name: "high", Scale: 1.0}},
		Runs:       2,
		Seed:       42,
	}
}

// fakeMetrics fabricates a deterministic per-cell result: a pure function
// of the cell name, like the real engine, so any shard "computes" the same
// answer and the tests can assert reassembly correctness.
func fakeMetrics(name string, runs int) []qof.Metrics {
	h := fnv.New64a()
	fmt.Fprint(h, name)
	base := float64(h.Sum64()%1000) / 10
	out := make([]qof.Metrics, runs)
	for i := range out {
		out[i] = qof.Metrics{FlightTimeS: base + float64(i)}
	}
	return out
}

// fakeResult is the canonical fabricated WorkResult for a unit.
func fakeResult(unit WorkUnit) *WorkResult {
	return &WorkResult{
		Campaign: unit.Campaign,
		Cell:     unit.Cell,
		Name:     unit.Name,
		Token:    unit.Token,
		Results:  fakeMetrics(unit.Name, unit.Spec.Runs),
	}
}

// fakeClient scripts shard behavior per address. The zero behavior answers
// every exec promptly with the canonical fabricated result.
type fakeClient struct {
	mu    sync.Mutex
	execs map[string]int // per-addr exec count
	// exec, when non-nil, overrides Exec for an address; return (nil, nil)
	// to fall through to the canonical result.
	exec func(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error, bool)
	// down marks addresses whose health probes fail.
	down map[string]bool
}

func newFakeClient() *fakeClient {
	return &fakeClient{execs: make(map[string]int), down: make(map[string]bool)}
}

func (f *fakeClient) Exec(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error) {
	f.mu.Lock()
	f.execs[addr]++
	f.mu.Unlock()
	if f.exec != nil {
		if res, err, handled := f.exec(ctx, addr, unit); handled {
			return res, err
		}
	}
	return fakeResult(unit), nil
}

func (f *fakeClient) Health(ctx context.Context, addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[addr] {
		return errors.New("fake: down")
	}
	return nil
}

func (f *fakeClient) execCount(addr string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.execs[addr]
}

func (f *fakeClient) totalExecs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.execs {
		n += c
	}
	return n
}

func (f *fakeClient) setDown(addr string, down bool) {
	f.mu.Lock()
	f.down[addr] = down
	f.mu.Unlock()
}

// checkResult asserts the reassembled result carries every enumerated cell
// exactly once with its canonical fabricated metrics.
func checkResult(t *testing.T, spec matrix.Spec, res *matrix.Result) {
	t.Helper()
	cells := matrix.Cells(spec)
	if len(res.Cells) != len(cells) {
		t.Fatalf("result has %d cells, want %d", len(res.Cells), len(cells))
	}
	for i, cr := range res.Cells {
		name := cells[i].Name()
		if cr.Cell.Name() != name {
			t.Fatalf("cell %d is %q, want %q", i, cr.Cell.Name(), name)
		}
		want := fakeMetrics(name, spec.Normalized().Runs)
		if len(cr.Campaign.Results) != len(want) {
			t.Fatalf("cell %q has %d results, want %d", name, len(cr.Campaign.Results), len(want))
		}
		for j, m := range cr.Campaign.Results {
			if m.FlightTimeS != want[j].FlightTimeS {
				t.Fatalf("cell %q mission %d: FlightTimeS %v, want %v (double count or cross-cell mixup)",
					name, j, m.FlightTimeS, want[j].FlightTimeS)
			}
		}
	}
}

func TestBackoffDelay(t *testing.T) {
	base, cap := 100*time.Millisecond, time.Second
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := backoffDelay(base, cap, i+1); got != w {
			t.Errorf("attempt %d: %v, want %v", i+1, got, w)
		}
	}
	// Huge attempt counts must saturate at cap, not overflow.
	if got := backoffDelay(base, cap, 500); got != cap {
		t.Errorf("attempt 500: %v, want %v", got, cap)
	}
}

func TestDispatchAllCellsOnce(t *testing.T) {
	fc := newFakeClient()
	d := New(Config{
		Shards:       []string{"a:1", "b:1"},
		Client:       fc,
		DisableLocal: true,
	})
	res, err := d.Run(context.Background(), fakeSpec())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, fakeSpec(), res)
	if got, want := fc.totalExecs(), len(matrix.Cells(fakeSpec())); got != want {
		t.Errorf("%d execs for %d cells (retries on a healthy fleet)", got, want)
	}
}

func TestRetryAfterShardDeath(t *testing.T) {
	// Shard a is dead on arrival (registered but crashed before its first
	// unit): every exec errors and its heartbeat fails. The dispatcher
	// starts healthy-optimistic, so a IS assigned work — which must all be
	// retried onto shard b, and the campaign must still finish.
	fc := newFakeClient()
	var aAsked atomic.Int64
	fc.exec = func(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error, bool) {
		if addr == "a:1" {
			aAsked.Add(1)
			fc.setDown("a:1", true)
			return nil, errors.New("fake: connection refused"), true
		}
		return nil, nil, false
	}
	d := New(Config{
		Shards:          []string{"a:1", "b:1"},
		Client:          fc,
		DisableLocal:    true,
		HeartbeatEvery:  10 * time.Millisecond,
		HeartbeatMisses: 2,
		RetryBase:       time.Millisecond,
		RetryCap:        10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := d.Run(ctx, fakeSpec())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, fakeSpec(), res)
	st := d.Stat()
	if aAsked.Load() == 0 {
		t.Error("dead shard a:1 was never even tried (optimistic start broken)")
	}
	if st.Retries == 0 {
		t.Error("no retries recorded despite a dead shard")
	}
	if !shardHealthy(st, "b:1") {
		t.Error("surviving shard b:1 marked unhealthy")
	}
}

func shardHealthy(st Status, addr string) bool {
	for _, sh := range st.Shards {
		if sh.Addr == addr {
			return sh.Healthy
		}
	}
	return false
}

func TestLeaseFencingNeverDoubleCounts(t *testing.T) {
	// Shard a hangs on to its first unit well past the lease TTL, ignoring
	// the context (a zombie), then returns a VALID result. By then the
	// dispatcher has re-leased the cell to shard b and accepted b's result.
	// The zombie's late result must be fenced out by its stale token —
	// accepting it would double-count the cell.
	fc := newFakeClient()
	zombieDone := make(chan struct{})
	var zombied atomic.Bool
	fc.exec = func(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error, bool) {
		if addr == "a:1" && zombied.CompareAndSwap(false, true) {
			<-ctx.Done()                      // lease expired...
			time.Sleep(50 * time.Millisecond) // ...zombie keeps going anyway
			defer close(zombieDone)
			return fakeResult(unit), nil, true // and delivers a valid result
		}
		return nil, nil, false
	}
	d := New(Config{
		Shards:       []string{"a:1", "b:1"},
		Client:       fc,
		DisableLocal: true,
		LeaseTTL:     50 * time.Millisecond,
		RetryBase:    time.Millisecond,
		RetryCap:     5 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := d.Run(ctx, fakeSpec())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, fakeSpec(), res)
	select {
	case <-zombieDone:
	case <-time.After(10 * time.Second):
		t.Fatal("zombie exec never finished")
	}
	st := d.Stat()
	if st.Expired == 0 {
		t.Error("no expired leases recorded despite a zombie shard")
	}
	if st.Done != st.Total {
		t.Errorf("done %d != total %d", st.Done, st.Total)
	}
}

func TestResumeSkipsCompletedCells(t *testing.T) {
	dir := t.TempDir()
	spec := fakeSpec()
	run := func(fc *fakeClient) *matrix.Result {
		d := New(Config{
			Shards:       []string{"a:1"},
			Client:       fc,
			DisableLocal: true,
			StateDir:     dir,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := d.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	checkResult(t, spec, run(newFakeClient()))

	// A re-run over the same state dir re-executes nothing.
	fc2 := newFakeClient()
	checkResult(t, spec, run(fc2))
	if n := fc2.totalExecs(); n != 0 {
		t.Errorf("resume re-executed %d cells, want 0", n)
	}

	// Deleting one persisted cell re-runs exactly that cell.
	if err := os.Remove(filepath.Join(dir, "cells", "cell-002.json")); err != nil {
		t.Fatal(err)
	}
	fc3 := newFakeClient()
	checkResult(t, spec, run(fc3))
	if n := fc3.totalExecs(); n != 1 {
		t.Errorf("resume after one lost cell re-executed %d cells, want 1", n)
	}

	// A torn (truncated) cell file is skipped, not trusted: that cell
	// re-runs too.
	path := filepath.Join(dir, "cells", "cell-001.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	fc4 := newFakeClient()
	checkResult(t, spec, run(fc4))
	if n := fc4.totalExecs(); n != 1 {
		t.Errorf("resume after one torn cell re-executed %d cells, want 1", n)
	}

	// A well-formed cell file with the wrong mission count (fewer results
	// than Spec.Runs) is rejected on load and re-runs: trusting it would
	// assemble a short cell.
	path = filepath.Join(dir, "cells", "cell-000.json")
	b, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var short cellState
	if err := json.Unmarshal(b, &short); err != nil {
		t.Fatal(err)
	}
	short.Results = short.Results[:1]
	b, err = json.Marshal(short)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	fc5 := newFakeClient()
	checkResult(t, spec, run(fc5))
	if n := fc5.totalExecs(); n != 1 {
		t.Errorf("resume after one short cell re-executed %d cells, want 1", n)
	}
}

func TestStateDirRefusesDifferentCampaign(t *testing.T) {
	dir := t.TempDir()
	run := func(spec matrix.Spec) error {
		d := New(Config{Shards: []string{"a:1"}, Client: newFakeClient(), DisableLocal: true, StateDir: dir})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := d.Run(ctx, spec)
		return err
	}
	if err := run(fakeSpec()); err != nil {
		t.Fatal(err)
	}

	// A different cell enumeration is refused on the persisted name list.
	other := fakeSpec()
	other.Severities = other.Severities[:1]
	if err := run(other); err == nil {
		t.Fatal("state dir from a different cell enumeration was accepted")
	}

	// Identical cell names but different determinism knobs must be refused
	// too: names don't encode any of these, the manifest ID does. Reusing
	// the stale results would silently mix two campaigns' bytes.
	knobs := map[string]func(*matrix.Spec){
		"seed":        func(s *matrix.Spec) { s.Seed = 43 },
		"runs":        func(s *matrix.Spec) { s.Runs = 3 },
		"max-mission": func(s *matrix.Spec) { s.MaxMissionS = 9 },
		"train":       func(s *matrix.Spec) { s.TrainEnvs = 5 },
		"map-seed":    func(s *matrix.Spec) { s.MapSeed = "memo" },
		"near-stride": func(s *matrix.Spec) { s.NearFieldStride = 4 },
	}
	for name, mutate := range knobs {
		spec := fakeSpec()
		mutate(&spec)
		if err := run(spec); err == nil {
			t.Errorf("state dir was reused for a spec with a different %s", name)
		}
	}

	// The unchanged spec still resumes cleanly after all those refusals.
	if err := run(fakeSpec()); err != nil {
		t.Fatalf("unchanged spec no longer resumes: %v", err)
	}
}

func TestWakesForLateShardRegistration(t *testing.T) {
	// A dispatcher with no shards at all (and local disabled) must pick up
	// a shard registered mid-run — the POST /workers path.
	fc := newFakeClient()
	d := New(Config{Client: fc, DisableLocal: true})
	go func() {
		time.Sleep(50 * time.Millisecond)
		d.AddShard("late:1")
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := d.Run(ctx, fakeSpec())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, fakeSpec(), res)
	if fc.execCount("late:1") == 0 {
		t.Error("late shard never used")
	}
}

func TestRunRejectsConcurrentCampaigns(t *testing.T) {
	fc := newFakeClient()
	started := make(chan struct{})
	release := make(chan struct{})
	fc.exec = func(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error, bool) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil, nil, false
	}
	d := New(Config{Shards: []string{"a:1"}, Client: fc, DisableLocal: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx, fakeSpec())
		done <- err
	}()
	<-started
	if _, err := d.Run(ctx, fakeSpec()); err == nil {
		t.Error("second concurrent Run accepted")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	fc := newFakeClient()
	fc.exec = func(ctx context.Context, addr string, unit WorkUnit) (*WorkResult, error, bool) {
		<-ctx.Done()
		return nil, ctx.Err(), true
	}
	d := New(Config{Shards: []string{"a:1"}, Client: fc, DisableLocal: true})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := d.Run(ctx, fakeSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
