package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mavfi/internal/campaign/matrix"
	"mavfi/internal/octomap"
)

// maxSeedFetchBytes bounds a golden-map fetch: far above any real snapshot
// (a few MB) but small enough that a misbehaving endpoint cannot make the
// worker buffer unbounded data (the PR 8 defensive-decode rule).
const maxSeedFetchBytes = 1 << 28

// WorkerConfig configures a worker shard.
type WorkerConfig struct {
	// Workers sizes the campaign pool each unit runs on (0 = default).
	// Worker width never changes result bytes, only wall-clock time.
	Workers int
	// Client fetches golden-map seeds from the dispatcher (nil = a default
	// client with a 30s timeout).
	Client *http.Client
	// Logf receives diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// Worker executes dispatched work units on a process-lifetime warm-asset
// cache, exactly as the campaign server executes jobs: a unit is a
// single-cell matrix.Spec run through matrix.RunOn, so a dispatched cell's
// results are byte-identical to the same cell inside a single-process
// matrix run. Safe for concurrent units — the asset cache serializes cold
// builds and every cached asset is immutable or cloned per mission.
type Worker struct {
	cfg    WorkerConfig
	assets *matrix.Assets
	client *http.Client
	busy   atomic.Int64

	seedMu sync.Mutex // serializes seed fetches per process
}

// NewWorker builds a worker shard with a fresh warm-asset cache.
func NewWorker(cfg WorkerConfig) *Worker {
	return NewWorkerOn(cfg, matrix.NewAssets())
}

// NewWorkerOn builds a worker shard over a caller-owned asset cache — how
// the dispatcher reuses its own warm assets for local-fallback execution.
func NewWorkerOn(cfg WorkerConfig, assets *matrix.Assets) *Worker {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{cfg: cfg, assets: assets, client: client}
}

// logf forwards to the configured logger.
func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Busy reports the number of units currently executing.
func (w *Worker) Busy() int64 { return w.busy.Load() }

// Exec runs one work unit to completion (or ctx cancellation — the lease
// deadline arrives here as the request context, so an expired lease stops
// burning worker CPU). The returned result echoes the unit's campaign,
// cell, name, and fencing token.
func (w *Worker) Exec(ctx context.Context, unit WorkUnit) (*WorkResult, error) {
	w.busy.Add(1)
	defer w.busy.Add(-1)

	spec, err := unit.Spec.matrixSpec()
	if err != nil {
		return nil, err
	}
	cells := matrix.Cells(spec)
	if len(cells) != 1 {
		return nil, fmt.Errorf("dispatch: unit %s expands to %d cells, want 1", unit.Name, len(cells))
	}
	if unit.Name != "" && cells[0].Name() != unit.Name {
		return nil, fmt.Errorf("dispatch: unit cell name %q does not match spec cell %q", unit.Name, cells[0].Name())
	}
	if spec.MapSeed != "off" && spec.MapSeed != "" && unit.SeedURL != "" {
		w.ensureSeed(ctx, unit.SeedURL, unit.Spec.World)
	}
	spec.Workers = w.cfg.Workers

	res, err := matrix.RunOn(ctx, spec, w.assets)
	if err != nil {
		return nil, err
	}
	if len(res.Cells) != 1 {
		return nil, fmt.Errorf("dispatch: unit %s produced %d cells, want 1", unit.Name, len(res.Cells))
	}
	cr := res.Cells[0]
	return &WorkResult{
		Campaign: unit.Campaign,
		Cell:     unit.Cell,
		Name:     cr.Cell.Name(),
		Token:    unit.Token,
		Results:  cr.Campaign.Results,
		Plans:    cr.Plans,
		Panics:   res.Panics,
	}, nil
}

// ensureSeed fetches the world's golden-map snapshot from the dispatcher
// once per process and installs it in the asset cache. Every failure mode —
// fetch error, truncated body, digest mismatch, stale geometry — degrades
// to a local build inside matrix.RunOn, which is bit-identical; sharing the
// seed only saves the build time.
func (w *Worker) ensureSeed(ctx context.Context, seedURL, world string) {
	w.seedMu.Lock()
	defer w.seedMu.Unlock()
	if w.assets.HasSeed(world) {
		return
	}
	url := fmt.Sprintf("%s/%s.mapseed", seedURL, world)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		w.logf("dispatch worker: seed request %s: %v", url, err)
		return
	}
	resp, err := w.client.Do(req)
	if err != nil {
		w.logf("dispatch worker: fetching seed %s: %v (building locally)", url, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.logf("dispatch worker: seed %s: HTTP %d (building locally)", url, resp.StatusCode)
		return
	}
	snap, err := octomap.ReadSnapshot(io.LimitReader(resp.Body, maxSeedFetchBytes))
	if err != nil {
		w.logf("dispatch worker: decoding seed %s: %v (building locally)", url, err)
		return
	}
	if err := w.assets.InstallSeedSnapshot(world, snap); err != nil {
		w.logf("dispatch worker: installing seed %s: %v (building locally)", url, err)
		return
	}
	w.logf("dispatch worker: installed golden map for %s from %s", world, seedURL)
}

// Handler returns the worker shard's HTTP API:
//
//	POST /exec     execute one WorkUnit, reply with its WorkResult
//	GET  /healthz  liveness (the dispatcher's heartbeat probe)
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(rw, "ok busy=%d\n", w.Busy())
	})
	mux.HandleFunc("POST /exec", func(rw http.ResponseWriter, r *http.Request) {
		var unit WorkUnit
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&unit); err != nil {
			http.Error(rw, fmt.Sprintf("decoding work unit: %v", err), http.StatusBadRequest)
			return
		}
		res, err := w.Exec(r.Context(), unit)
		if err != nil {
			// The lease context cancels mid-flight work; everything else is
			// a unit-level failure the dispatcher will retry elsewhere.
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(res)
	})
	return mux
}
