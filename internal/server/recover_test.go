package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mavfi/internal/record"
)

// TestRestartRecovery is the persistence contract end to end: a recorded job
// survives a server restart — same ID, same mission results, byte-identical
// CSV artifacts — rebuilt purely from the recordings (no re-simulation: the
// recording files are untouched by recovery), and new submissions resume the
// ID sequence past the recovered job.
func TestRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	dir := t.TempDir()
	spec := testSpec()
	spec.Record = true

	// First life: run and record the job.
	s1, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	before, code := postJob(t, ts1, spec, true)
	if code != http.StatusOK || before.State != JobDone {
		t.Fatalf("first life: status %d state %q (error: %s)", code, before.State, before.Error)
	}
	cellCSV, _ := getBody(t, ts1, "/jobs/"+before.ID+"/cell.csv")
	summaryCSV, _ := getBody(t, ts1, "/jobs/"+before.ID+"/summary.csv")
	ts1.Close()
	s1.Close()

	jobDir := filepath.Join(dir, before.ID)
	infos, err := record.ScanDir(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != spec.Runs {
		t.Fatalf("%d recordings on disk, want %d", len(infos), spec.Runs)
	}
	mtimes := recordingMTimes(t, jobDir)

	// Second life: recover from the same record dir.
	s2, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	after, code := getStatus(t, ts2, before.ID)
	if code != http.StatusOK {
		t.Fatalf("recovered job: status %d", code)
	}
	if after.State != JobDone || !after.Recovered {
		t.Fatalf("recovered job state %q recovered=%v, want done/true (error: %s)",
			after.State, after.Recovered, after.Error)
	}
	if after.Cell != before.Cell || after.CellSeed != before.CellSeed {
		t.Errorf("recovered cell %s/%d, want %s/%d", after.Cell, after.CellSeed, before.Cell, before.CellSeed)
	}
	if !reflect.DeepEqual(after.Missions, before.Missions) {
		t.Errorf("recovered missions differ:\nbefore: %+v\nafter:  %+v", before.Missions, after.Missions)
	}
	if got, _ := getBody(t, ts2, "/jobs/"+before.ID+"/cell.csv"); got != cellCSV {
		t.Errorf("recovered cell CSV differs:\nbefore:\n%s\nafter:\n%s", cellCSV, got)
	}
	if got, _ := getBody(t, ts2, "/jobs/"+before.ID+"/summary.csv"); got != summaryCSV {
		t.Errorf("recovered summary CSV differs:\nbefore:\n%s\nafter:\n%s", summaryCSV, got)
	}
	if got := recordingMTimes(t, jobDir); !reflect.DeepEqual(got, mtimes) {
		t.Error("recovery touched the recording files (re-simulation or rewrite)")
	}

	// New submissions continue past the recovered ordinal.
	fresh, code := postJob(t, ts2, testSpec(), true)
	if code != http.StatusOK {
		t.Fatalf("post-recovery submit: status %d", code)
	}
	if fresh.ID == before.ID {
		t.Errorf("new job reused recovered ID %s", fresh.ID)
	}
	if fresh.ID != "job-0002" {
		t.Errorf("new job ID %s, want job-0002", fresh.ID)
	}
}

// TestRestartRecoveryInterrupted marks a recorded job whose recordings are
// incomplete as interrupted, keeping the missions that did finish visible.
func TestRestartRecoveryInterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	dir := t.TempDir()
	spec := testSpec()
	spec.Record = true

	s1, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.finished
	s1.Close()
	if st := j.status(); st.State != JobDone {
		t.Fatalf("job state %q (error: %s)", st.State, st.Error)
	}

	// Simulate a crash mid-job: one mission's recording vanishes.
	if err := os.Remove(record.MissionPath(filepath.Join(dir, j.ID), 1)); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, ok := s2.Job(j.ID)
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	st := rec.status()
	if st.State != JobInterrupted {
		t.Fatalf("state %q, want interrupted (error: %s)", st.State, st.Error)
	}
	if st.Done != spec.Runs-1 {
		t.Errorf("%d recovered missions, want %d", st.Done, spec.Runs-1)
	}
	for _, ev := range st.Missions {
		if ev.Mission == 1 {
			t.Errorf("mission 1 recovered despite its recording being gone")
		}
	}
	// Interrupted jobs serve no CSV.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	if _, code := getBody(t, ts, "/jobs/"+j.ID+"/cell.csv"); code != http.StatusNotFound {
		t.Errorf("interrupted cell.csv: status %d, want 404", code)
	}
}

// recordingMTimes snapshots every recording's mtime (sorted by name).
func recordingMTimes(t *testing.T, dir string) map[string]time.Time {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]time.Time)
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = info.ModTime()
	}
	return out
}
