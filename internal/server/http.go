package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /jobs              submit a job (JobSpec JSON); 429 when the queue
//	                          is full; ?wait=1 blocks until the job finishes
//	GET    /jobs              every job's status, submission order
//	GET    /jobs/{id}         one job's status (mission results once terminal)
//	GET    /jobs/{id}/stream  SSE: replayed history, then live per-mission
//	                          results, then a terminal "done" event
//	GET    /jobs/{id}/cell.csv     per-mission CSV, `mavfi matrix` schema
//	GET    /jobs/{id}/summary.csv  per-cell summary CSV, same schema
//	DELETE /jobs/{id}         cancel a queued or running job
//	GET    /healthz           liveness
//	GET    /metrics           Prometheus text metrics
//	GET    /debug/pprof/      profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/cell.csv", s.handleCellCSV)
	mux.HandleFunc("GET /jobs/{id}/summary.csv", s.handleSummaryCSV)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.metrics.render())
	})
	// net/http/pprof registers on DefaultServeMux at import; wire its
	// handlers into this mux explicitly instead.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// handleSubmit accepts a JobSpec, enqueues it, and answers with the job
// status — 202 immediately, or, with ?wait=1, 200 with the terminal status
// once the job finishes (the shape the CI smoke job scripts against).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding job spec: %v", err))
		return
	}
	j, err := s.Submit(spec)
	if err == errQueueFull {
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	if err == errDraining {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	select {
	case <-j.finished:
		writeJSON(w, http.StatusOK, j.status())
	case <-r.Context().Done():
		// Client gave up waiting; the job keeps running.
	}
}

// handleList answers with every job's status.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

// jobFor resolves the {id} path value, answering 404 itself on a miss.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *Job {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return nil
	}
	return j
}

// handleStatus answers with one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleCancel requests job cancellation.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	if !s.Cancel(j.ID) {
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is already finished", j.ID))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// sseKeepAliveEvery is how often an idle SSE stream emits a comment frame.
// SSE comments (a ":"-prefixed line) are invisible to EventSource clients
// but keep NATs, proxies, and IdleTimeout-bearing servers from reaping a
// connection that is quietly waiting on a long mission. Variable so tests
// can shrink it.
var sseKeepAliveEvery = 15 * time.Second

// handleStream serves the job's per-mission results as Server-Sent Events:
// first the history already published (so late subscribers miss nothing),
// then live events as missions complete, and finally one "done" event
// carrying the terminal status. Event order is completion order — mission
// order is available afterwards from the status and CSV endpoints. Idle
// streams carry periodic keepalive comment frames.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		fl.Flush()
	}

	history, ch, unsub := j.subscribe()
	defer unsub()
	for _, ev := range history {
		send("mission", ev)
	}
	keepalive := time.NewTicker(sseKeepAliveEvery)
	defer keepalive.Stop()
	for {
		select {
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case ev := <-ch:
			send("mission", ev)
		case <-j.finished:
			// Drain events that raced with completion before closing out.
			for {
				select {
				case ev := <-ch:
					send("mission", ev)
					continue
				default:
				}
				break
			}
			send("done", j.status())
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleCellCSV serves the finished job's per-mission CSV — the same bytes
// `mavfi matrix` writes for this cell.
func (s *Server) handleCellCSV(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	if res == nil || len(res.Cells) != 1 {
		writeError(w, http.StatusNotFound, fmt.Sprintf("job %s has no results yet", j.ID))
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.Cell.CSVName()))
	fmt.Fprint(w, res.Cells[0].CSV())
}

// handleSummaryCSV serves the finished job's summary CSV — the same bytes
// `mavfi matrix` writes to summary.csv for this single-cell spec.
func (s *Server) handleSummaryCSV(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("job %s has no results yet", j.ID))
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	fmt.Fprint(w, res.SummaryCSV())
}
