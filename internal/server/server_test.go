package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mavfi/internal/campaign/matrix"
)

// testSpec is the small single-cell job every server test flies: sensor
// faults on the sparse world, three missions.
func testSpec() JobSpec {
	return JobSpec{World: "sparse", Fault: "sensor", Severity: "high", Runs: 3, Seed: 42}
}

// newTestServer starts a Server plus its httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJob submits spec and decodes the response status.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec, wait bool) (Status, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	url := ts.URL + "/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
	}
	return st, resp.StatusCode
}

// getStatus fetches a job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) (Status, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
	}
	return st, resp.StatusCode
}

// getBody fetches path and returns its body and status code.
func getBody(t *testing.T, ts *httptest.Server, path string) (string, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

// TestServedJobMatchesCLIByteIdentity is the service's core determinism
// contract: a job served at any worker width produces mission results and
// CSV artifacts byte-identical to the equivalent one-shot CLI invocation.
// The reference runs matrix.Run cold (fresh assets, a third worker width);
// the served jobs run warm at 1 and 4 workers through HTTP.
func TestServedJobMatchesCLIByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	spec := testSpec()
	mspec, err := spec.matrixSpec()
	if err != nil {
		t.Fatal(err)
	}
	mspec.Workers = 2
	ref, err := matrix.Run(context.Background(), mspec)
	if err != nil {
		t.Fatal(err)
	}
	refCell := ref.Cells[0].CSV()
	refSummary := ref.SummaryCSV()

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, ts := newTestServer(t, Config{Workers: workers})
			st, code := postJob(t, ts, spec, true)
			if code != http.StatusOK {
				t.Fatalf("submit: status %d", code)
			}
			if st.State != JobDone {
				t.Fatalf("job state %q, want done (error: %s)", st.State, st.Error)
			}
			if len(st.Missions) != spec.Runs {
				t.Fatalf("%d mission results, want %d", len(st.Missions), spec.Runs)
			}
			for i, ev := range st.Missions {
				if ev.Mission != i {
					t.Errorf("mission %d out of order (index %d)", ev.Mission, i)
				}
				if want := ref.Cells[0].Cell.MissionSeed(i); ev.Seed != want {
					t.Errorf("mission %d seed %d, want %d", i, ev.Seed, want)
				}
				if want := ref.Cells[0].Campaign.Results[i].Outcome.String(); ev.Outcome != want {
					t.Errorf("mission %d outcome %q, want %q", i, ev.Outcome, want)
				}
			}
			cell, code := getBody(t, ts, "/jobs/"+st.ID+"/cell.csv")
			if code != http.StatusOK {
				t.Fatalf("cell.csv: status %d", code)
			}
			if cell != refCell {
				t.Errorf("served cell CSV differs from CLI bytes:\nserved:\n%s\ncli:\n%s", cell, refCell)
			}
			summary, code := getBody(t, ts, "/jobs/"+st.ID+"/summary.csv")
			if code != http.StatusOK {
				t.Fatalf("summary.csv: status %d", code)
			}
			if summary != refSummary {
				t.Errorf("served summary CSV differs from CLI bytes:\nserved:\n%s\ncli:\n%s", summary, refSummary)
			}
		})
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses an SSE stream until EOF.
func readSSE(r io.Reader) []sseEvent {
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			evs = append(evs, cur)
			cur = sseEvent{}
		}
	}
	return evs
}

// TestStreamDeliversEveryMission subscribes to a job's SSE stream and checks
// it carries every mission exactly once (history plus live events) and ends
// with the terminal "done" status.
func TestStreamDeliversEveryMission(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := testSpec()
	st, code := postJob(t, ts, spec, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	evs := readSSE(resp.Body)
	if len(evs) == 0 {
		t.Fatal("no SSE events")
	}
	last := evs[len(evs)-1]
	if last.name != "done" {
		t.Fatalf("last event %q, want done", last.name)
	}
	var final Status
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("decoding done status: %v", err)
	}
	if final.State != JobDone {
		t.Fatalf("final state %q (error: %s)", final.State, final.Error)
	}
	seen := make(map[int]int)
	for _, ev := range evs[:len(evs)-1] {
		if ev.name != "mission" {
			t.Fatalf("unexpected event %q", ev.name)
		}
		var me MissionEvent
		if err := json.Unmarshal([]byte(ev.data), &me); err != nil {
			t.Fatalf("decoding mission event: %v", err)
		}
		seen[me.Mission]++
	}
	for i := 0; i < spec.Runs; i++ {
		if seen[i] != 1 {
			t.Errorf("mission %d streamed %d times, want 1", i, seen[i])
		}
	}
}

// TestSubmitValidation rejects malformed specs with 400s and keeps the good
// path at 202.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, bad := range []JobSpec{
		{},                                  // no fault target
		{Fault: "bogus"},                    // unknown family
		{Fault: "sensor,wind"},              // two targets = two cells
		{Fault: "sensor", World: "nowhere"}, // unknown world
		{Fault: "sensor", Severity: "low,high"},
		{Fault: "sensor", Detector: "magic"},
		{Fault: "wind:gust"},            // wind has no kinds
		{Fault: "sensor", Record: true}, // no -record-dir on the server
	} {
		body, _ := json.Marshal(bad)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// Unknown JSON fields are rejected too (catches CLI/API drift).
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"fault":"sensor","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestEndpointsSmoke covers the non-job endpoints: healthz, metrics, list,
// and 404s.
func TestEndpointsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	_, ts := newTestServer(t, Config{Workers: 2})
	if body, code := getBody(t, ts, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	if _, code := getBody(t, ts, "/jobs/job-9999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	spec := testSpec()
	st, _ := postJob(t, ts, spec, true)
	if st.State != JobDone {
		t.Fatalf("job state %q", st.State)
	}

	list, code := getBody(t, ts, "/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var jobs []Status
	if err := json.Unmarshal([]byte(list), &jobs); err != nil || len(jobs) != 1 {
		t.Errorf("list = %s (err %v), want 1 job", list, err)
	}

	mtx, code := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"mavfi_jobs_done_total 1",
		fmt.Sprintf("mavfi_missions_total %d", spec.Runs),
		`mavfi_mission_outcomes_total{outcome="success"}`,
		`mavfi_mission_outcomes_total{outcome="deadline-exceeded"} 0`,
		"mavfi_jobs_queued 0",
		"mavfi_jobs_running 0",
		"mavfi_missions_per_second",
	} {
		if !strings.Contains(mtx, want) {
			t.Errorf("metrics missing %q:\n%s", want, mtx)
		}
	}

	if body, code := getBody(t, ts, "/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline: %d", code)
	}
}
