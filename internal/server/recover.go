package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mavfi/internal/campaign/matrix"
	"mavfi/internal/faultinject"
	"mavfi/internal/qof"
	"mavfi/internal/record"
)

// recoverJobs rebuilds the server's view of recorded jobs from RecordDir.
// Each job directory carries a job.json manifest plus the mission recordings
// matrix.RunOn wrote through record.RecordedMission. A job whose every
// mission has a complete (footer-bearing) recording is restored as done —
// its results come straight from the recording footers, with no
// re-simulation, and its CSV endpoints serve the same bytes as before the
// restart (ResultRecord carries every CSV field and JSON float64s round-trip
// exactly). A job with missing or incomplete recordings is restored as
// interrupted: its completed missions are listed, and a client resubmits the
// same spec to re-run it (determinism makes the re-run reproduce the
// recorded missions bit-for-bit).
func (s *Server) recoverJobs() error {
	entries, err := os.ReadDir(s.cfg.RecordDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: scanning record dir: %w", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	for _, name := range dirs {
		dir := filepath.Join(s.cfg.RecordDir, name)
		j, err := s.recoverJob(dir)
		if err != nil {
			// One corrupt job directory (a manifest damaged on disk, an
			// unreadable recording) must not take the whole server down
			// with it: recovery exists to survive crashes, so it cannot
			// itself be brittle. Skip the directory and count it — the
			// healthy jobs still recover, and the metric surfaces the rot.
			s.metrics.jobsRecoverFailed.Add(1)
			fmt.Fprintf(os.Stderr, "server: skipping unrecoverable %s: %v\n", dir, err)
			continue
		}
		if j == nil {
			continue // not a job directory
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.metrics.jobsRecovered.Add(1)
		if n := idOrdinal(j.ID); n > s.next {
			s.next = n
		}
	}
	return nil
}

// idOrdinal parses the numeric suffix of a "job-%04d" ID (0 if malformed).
func idOrdinal(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// recoverJob rebuilds one job from its directory, or returns (nil, nil) for
// directories without a manifest.
func (s *Server) recoverJob(dir string) (*Job, error) {
	b, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("decoding job.json: %w", err)
	}
	mspec, err := man.Spec.matrixSpec()
	if err != nil {
		return nil, fmt.Errorf("manifest spec: %w", err)
	}
	cells := matrix.Cells(mspec)
	if len(cells) != 1 {
		return nil, fmt.Errorf("manifest spec expands to %d cells, want 1", len(cells))
	}
	cell := cells[0]

	infos, err := record.ScanDir(dir)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]record.Info, len(infos))
	for _, info := range infos {
		byPath[info.Path] = info
	}

	j := newJob(man.ID, man.Spec, cell, dir)
	j.recovered = true

	results := make([]qof.Metrics, man.Spec.Runs)
	plans := make([]faultinject.FaultPlan, man.Spec.Runs)
	complete := true
	for i := 0; i < man.Spec.Runs; i++ {
		info, ok := byPath[record.MissionPath(dir, i)]
		if !ok || !info.Complete {
			complete = false
			continue
		}
		results[i] = info.Footer.Result.Metrics()
		plans[i] = faultinject.FaultPlan{
			Kernel:   info.Header.KernelFault,
			State:    info.Header.StateFault,
			Sensor:   info.Header.SensorFault,
			Actuator: info.Header.ActuatorFault,
			Wind:     info.Header.WindFault,
		}
		j.events = append(j.events, newMissionEvent(cell, i, results[i]))
	}
	if !complete {
		j.finish(JobInterrupted,
			fmt.Sprintf("recovered with %d/%d recorded missions; resubmit to re-run", len(j.events), man.Spec.Runs), nil)
		return j, nil
	}
	res := &matrix.Result{
		Spec: mspec,
		Cells: []matrix.CellResult{{
			Cell:     cell,
			Campaign: &qof.Campaign{Name: cell.Name(), Results: results},
			Plans:    plans,
		}},
	}
	j.finish(JobDone, "", res)
	return j, nil
}
