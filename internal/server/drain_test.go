package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestDrainRejectsNewSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testSpec()); err != errDraining {
		t.Fatalf("Submit during drain: %v, want errDraining", err)
	}
	if _, code := postJob(t, ts, testSpec(), false); code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP submit during drain: status %d, want 503", code)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDrainFinishesRunningAndInterruptsQueued(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	s, ts := newTestServer(t, Config{Workers: 2})
	j1, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until j1 is actually executing so the later submissions are
	// guaranteed to still be queued when the drain begins.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := j1.status(); st.State == JobRunning || st.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if st := j1.status(); st.State != JobDone {
		t.Errorf("running job drained to %q, want done (error: %s)", st.State, st.Error)
	}
	for _, j := range []*Job{j2, j3} {
		if st := j.status(); st.State != JobInterrupted {
			t.Errorf("queued job %s drained to %q, want interrupted", j.ID, st.State)
		}
	}
	if n := s.metrics.jobsInterrupted.Load(); n != 2 {
		t.Errorf("jobsInterrupted = %d, want 2", n)
	}
	// The drained server still serves status and artifacts read-only.
	if _, code := getBody(t, ts, "/jobs/"+j1.ID+"/cell.csv"); code != http.StatusOK {
		t.Errorf("cell.csv after drain: status %d", code)
	}
}

func TestDrainNeverStrandsRacingSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	// Submissions racing a drain must either be rejected with errDraining
	// or reach a terminal state — never slip into the queue after Drain's
	// sweep and sit there forever with no consumer. Submit's authoritative
	// draining check and the sweep share s.mu, which is what this stresses
	// (especially under -race).
	spec := testSpec()
	spec.Runs = 1
	for iter := 0; iter < 4; iter++ {
		s, err := New(Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		var (
			mu       sync.Mutex
			accepted []*Job
			wg       sync.WaitGroup
		)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j, err := s.Submit(spec)
					switch err {
					case nil:
						mu.Lock()
						accepted = append(accepted, j)
						mu.Unlock()
					case errQueueFull:
						time.Sleep(100 * time.Microsecond)
					default: // errDraining: the drain won the race
						return
					}
				}
			}()
		}
		time.Sleep(2 * time.Millisecond) // let some submissions land first
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		derr := s.Drain(ctx)
		cancel()
		wg.Wait()
		if derr != nil {
			t.Fatal(derr)
		}
		deadline := time.After(60 * time.Second)
		for _, j := range accepted {
			select {
			case <-j.finished:
			case <-deadline:
				t.Fatalf("iter %d: job %s stranded in state %q after drain", iter, j.ID, j.status().State)
			}
		}
		s.Close()
	}
}

func TestRecoverySkipsCorruptJobDirs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	dir := t.TempDir()
	spec := testSpec()
	spec.Record = true

	s1, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := s1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-j.finished
		ids = append(ids, j.ID)
	}
	s1.Close()

	// Job 1's manifest is torn mid-write (a crash without atomic rename
	// would leave exactly this); job 2's is replaced with garbage bytes.
	man := filepath.Join(dir, ids[0], "job.json")
	b, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(man, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ids[1], "job.json"), []byte("\x00not json\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer's temp file is lying around too; recovery and
	// record.ScanDir must both ignore it.
	if err := os.WriteFile(filepath.Join(dir, ids[2], "job.json.atomic-12345"), []byte("{\"partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The server must come up anyway: corrupt directories are skipped and
	// counted, the healthy job recovers fully.
	s2, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatalf("recovery failed on corrupt job dirs: %v", err)
	}
	ts := httptest.NewServer(s2.Handler())
	defer func() { ts.Close(); s2.Close() }()

	for _, id := range ids[:2] {
		if _, ok := s2.Job(id); ok {
			t.Errorf("corrupt job %s was recovered", id)
		}
	}
	st, ok := s2.Job(ids[2])
	if !ok {
		t.Fatal("healthy job not recovered")
	}
	if got := st.status(); got.State != JobDone || !got.Recovered {
		t.Errorf("healthy job state %q recovered=%v, want done/true", got.State, got.Recovered)
	}
	if n := s2.metrics.jobsRecoverFailed.Load(); n != 2 {
		t.Errorf("jobsRecoverFailed = %d, want 2", n)
	}
	if n := s2.metrics.jobsRecovered.Load(); n != 1 {
		t.Errorf("jobsRecovered = %d, want 1", n)
	}
}

func TestRecoverySkipsCorruptRecording(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	dir := t.TempDir()
	spec := testSpec()
	spec.Record = true

	s1, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.finished
	s1.Close()

	// Garbage where a recording's magic should be: ScanDir reports a hard
	// decode error (not the tolerated clean-truncation case), which used
	// to abort server startup entirely.
	rec := filepath.Join(dir, j.ID, "mission-00000.rec")
	if err := os.WriteFile(rec, []byte("\x00\x00garbage\x00"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Workers: 2, RecordDir: dir})
	if err != nil {
		t.Fatalf("recovery failed on a corrupt recording: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Job(j.ID); ok {
		t.Error("job with corrupt recording was recovered")
	}
	if n := s2.metrics.jobsRecoverFailed.Load(); n != 1 {
		t.Errorf("jobsRecoverFailed = %d, want 1", n)
	}
}
