package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSubmittersShareWarmWorld hammers one server from several
// goroutines (run under -race in CI): every submitter uses the same world,
// so all jobs after the first hit the warm cache, and identical specs must
// produce identical mission results no matter how submissions interleave.
func TestConcurrentSubmittersShareWarmWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	const n = 6
	s, err := New(Config{Queue: n, Workers: 2, WarmWorlds: []string{"sparse"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(testSpec())
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			<-j.finished
			jobs[i] = j
		}(i)
	}
	wg.Wait()

	var ref []MissionEvent
	for i, j := range jobs {
		if j == nil {
			continue
		}
		st := j.status()
		if st.State != JobDone {
			t.Fatalf("job %d state %q (error: %s)", i, st.State, st.Error)
		}
		for k, ev := range st.Missions {
			if ev.Mission != k {
				t.Fatalf("job %d: mission %d at position %d", i, ev.Mission, k)
			}
		}
		if ref == nil {
			ref = st.Missions
			continue
		}
		if !reflect.DeepEqual(st.Missions, ref) {
			t.Errorf("job %d results differ from job 0 despite identical spec", i)
		}
	}
}

// TestQueueFullAndCancellation drives the backpressure and cancellation
// paths: a long job occupies the executor, the bounded queue fills, the next
// submission gets 429, and both queued and running jobs cancel cleanly.
func TestQueueFullAndCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	s, ts := newTestServer(t, Config{Queue: 1, Workers: 1})

	// A big job to hold the executor; its mission count only bounds how long
	// it *could* run — cancellation cuts it short.
	long := testSpec()
	long.Runs = 500
	running, code := postJob(t, ts, long, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit long job: status %d", code)
	}
	waitState(t, s, running.ID, JobRunning)

	queued, code := postJob(t, ts, testSpec(), false)
	if code != http.StatusAccepted {
		t.Fatalf("submit queued job: status %d", code)
	}
	if _, code := postJob(t, ts, testSpec(), false); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429", code)
	}

	// Cancel the queued job first (it has no context yet), then the running
	// one (its campaign context is canceled mid-flight).
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
		}
	}
	waitState(t, s, running.ID, JobCanceled)
	waitState(t, s, queued.ID, JobCanceled)

	// Canceling a finished job conflicts.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel: status %d, want 409", resp.StatusCode)
	}

	// The server stays serviceable afterwards.
	st, code := postJob(t, ts, testSpec(), true)
	if code != http.StatusOK || st.State != JobDone {
		t.Fatalf("post-cancel job: status %d state %q", code, st.State)
	}

	body, _ := getBody(t, ts, "/metrics")
	if !strings.Contains(body, "mavfi_jobs_rejected_total 1") ||
		!strings.Contains(body, "mavfi_jobs_canceled_total 2") {
		t.Errorf("metrics missing rejection/cancellation counts:\n%s", body)
	}
}

// waitState polls the job until it reaches state (or fails the test after a
// generous deadline — state transitions here are driven by millisecond-scale
// missions).
func waitState(t *testing.T, s *Server, id string, state JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		j.mu.Lock()
		cur := j.state
		j.mu.Unlock()
		if cur == state {
			return
		}
		if cur.terminal() && state != cur {
			t.Fatalf("job %s reached terminal state %q while waiting for %q", id, cur, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, state)
}

// TestStatusJSONRoundTrips pins the wire shape: a status marshals and
// unmarshals without losing fields (guards the CI smoke job's jq paths).
func TestStatusJSONRoundTrips(t *testing.T) {
	st := Status{ID: "job-0001", State: JobDone, Cell: "sparse-sensor-high-none", CellSeed: 7,
		Spec: testSpec().normalized(), Done: 3, Total: 3,
		Missions: []MissionEvent{{Mission: 0, Seed: 99, Outcome: "success", FlightTimeS: 1.5}}}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Status
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Errorf("status round-trip mismatch:\n%+v\n%+v", st, back)
	}
}
