package server

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"

	"mavfi/internal/campaign/matrix"
)

// TestStreamKeepalive pins the SSE idle-stream contract: a stream with no
// mission traffic carries periodic comment frames (invisible to EventSource
// clients, but enough byte flow to keep proxies and idle timeouts from
// reaping the connection), and still delivers the terminal done event.
func TestStreamKeepalive(t *testing.T) {
	old := sseKeepAliveEvery
	sseKeepAliveEvery = 20 * time.Millisecond
	defer func() { sseKeepAliveEvery = old }()

	s, ts := newTestServer(t, Config{})
	// Plant a queued job by hand so the stream stays idle forever: no
	// executor ever picks it up, so the only traffic is keepalives.
	spec := testSpec()
	mspec, err := spec.matrixSpec()
	if err != nil {
		t.Fatal(err)
	}
	j := newJob("job-9999", spec, matrix.Cells(mspec)[0], "")
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	resp, err := http.Get(ts.URL + "/jobs/job-9999/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	keepalives := 0
	for keepalives < 2 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d keepalives: %v", keepalives, err)
		}
		switch strings.TrimRight(line, "\n") {
		case ": keepalive":
			keepalives++
		case "":
		default:
			t.Fatalf("idle stream carried unexpected line %q", line)
		}
	}

	// Finishing the job must still close the stream out with a done event.
	j.finish(JobCanceled, "test over", nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended without a done event: %v", err)
		}
		if strings.TrimRight(line, "\n") == "event: done" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no done event after job finish")
		}
	}
}
