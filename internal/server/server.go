// Package server implements the mavfi campaign service: a long-running HTTP
// server that accepts campaign jobs, executes them on the campaign worker
// pool behind a bounded FIFO queue, streams per-mission results as they
// complete, and serves the finished cell in the exact CSV schema the
// `mavfi matrix` CLI emits.
//
// The service adds no simulation code of its own. A job is a single-cell
// matrix.Spec executed by matrix.RunOn against a process-lifetime warm-asset
// cache — literally the code path the CLI runs — so a served job's mission
// results and CSV artifacts are byte-identical to the equivalent CLI
// invocation at any worker width. That determinism contract is what the
// server's test harness (and the CI server-smoke job) enforce.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mavfi/internal/atomicfile"
	"mavfi/internal/campaign/matrix"
	"mavfi/internal/qof"
)

// Config configures a Server.
type Config struct {
	// Queue bounds the FIFO job queue; submissions beyond it are rejected
	// with 429 (default 16).
	Queue int
	// Workers sizes the campaign worker pool each job runs on
	// (0 = campaign.DefaultWorkers). Worker width never changes results —
	// the determinism-by-construction invariant — only wall-clock time.
	Workers int
	// RecordDir, when set, is where recorded jobs persist their mission
	// recordings and job manifest; on startup the server recovers finished
	// jobs found there without re-simulating them.
	RecordDir string
	// Deadline is the per-mission wall-clock budget applied to every job
	// (0 = none). Missions over budget are abandoned with the
	// DeadlineExceeded outcome, keeping one wedged mission from pinning the
	// queue.
	Deadline time.Duration
	// WarmWorlds lists environments to build at startup so the first job
	// doesn't pay world construction.
	WarmWorlds []string
}

// Server is the campaign service. Create with New, expose via Handler, stop
// with Close.
type Server struct {
	cfg    Config
	assets *matrix.Assets

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission/recovery order, for GET /jobs
	next  int      // next job ID ordinal

	queue chan *Job

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	draining atomic.Bool
	drainc   chan struct{}

	metrics metrics
}

// New builds a Server: recovers recorded jobs from cfg.RecordDir (if set),
// warms the requested worlds, and starts the single executor goroutine that
// drains the job queue in FIFO order.
func New(cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		assets: matrix.NewAssets(),
		jobs:   make(map[string]*Job),
		queue:  make(chan *Job, cfg.Queue),
		ctx:    ctx,
		cancel: cancel,
		drainc: make(chan struct{}),
	}
	for _, w := range cfg.WarmWorlds {
		if _, err := s.assets.World(w); err != nil {
			cancel()
			return nil, fmt.Errorf("server: warming world: %w", err)
		}
	}
	if cfg.RecordDir != "" {
		// Golden-map seeds persist next to the recordings: a restarted
		// server reloads digest-checked snapshot files instead of
		// rebuilding them (and instead of them dying with the process).
		s.assets.SetSeedDir(filepath.Join(cfg.RecordDir, "mapseeds"))
		if err := s.recoverJobs(); err != nil {
			cancel()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.executor()
	return s, nil
}

// Close stops the executor, cancels any running job, and waits for it to
// unwind. Queued-but-unstarted jobs are marked canceled.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			s.metrics.jobsQueued.Add(-1)
			s.metrics.jobsCanceled.Add(1)
			j.finish(JobCanceled, "server shut down", nil)
		default:
			return
		}
	}
}

// Drain is the graceful-shutdown path: it stops the executor from picking
// up new work, lets the currently running job finish (bounded by ctx), and
// finishes every still-queued job as interrupted — the same state restart
// recovery uses for half-done work, so clients handle both identically by
// resubmitting. New submissions are rejected for the rest of the process's
// life. Returns ctx.Err() if the running job outlived the drain budget.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.drainc)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// The executor has exited, so this sweep is the queue's only consumer.
	// It holds s.mu so it serializes against Submit's check-then-enqueue:
	// a submission either observes draining under the lock and is rejected,
	// or enqueued before the sweep and interrupted here — never enqueued
	// after it, where the job would sit unconsumed forever.
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		select {
		case j := <-s.queue:
			s.metrics.jobsQueued.Add(-1)
			s.metrics.jobsInterrupted.Add(1)
			j.finish(JobInterrupted, "interrupted by server drain; resubmit to re-run", nil)
		default:
			return nil
		}
	}
}

// Submit validates spec, assigns an ID, and enqueues the job. It returns
// errQueueFull (without consuming an ID) when the queue is at capacity,
// errDraining once a drain has begun, and a validation error for malformed
// specs.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	spec = spec.normalized()
	mspec, err := spec.matrixSpec()
	if err != nil {
		return nil, err
	}
	cells := matrix.Cells(mspec)
	if len(cells) != 1 {
		return nil, fmt.Errorf("server: job spec expands to %d cells, want 1", len(cells))
	}
	if spec.Record && s.cfg.RecordDir == "" {
		return nil, fmt.Errorf("server: job asks for recording but the server has no -record-dir")
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-checked under s.mu: the unlocked check above is a fast path, but
	// only this one is ordered against Drain's queue sweep (which also
	// holds s.mu), so a submission can never slip into the queue after the
	// sweep has run and be left with no consumer.
	if s.draining.Load() {
		return nil, errDraining
	}
	id := fmt.Sprintf("job-%04d", s.next+1)
	var recordDir string
	if spec.Record {
		recordDir = filepath.Join(s.cfg.RecordDir, id)
	}
	j := newJob(id, spec, cells[0], recordDir)
	select {
	case s.queue <- j:
	default:
		s.metrics.jobsRejected.Add(1)
		return nil, errQueueFull
	}
	s.next++
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.metrics.jobsQueued.Add(1)
	if recordDir != "" {
		if err := s.writeManifest(j); err != nil {
			// The job still runs; it just won't be recoverable.
			j.mu.Lock()
			j.recordDir = ""
			j.mu.Unlock()
		}
	}
	return j, nil
}

// errQueueFull rejects a submission when the FIFO queue is at capacity.
var errQueueFull = fmt.Errorf("server: job queue is full")

// errDraining rejects submissions once a graceful drain has begun.
var errDraining = fmt.Errorf("server: draining, not accepting jobs")

// Job returns the job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	return out
}

// Cancel requests cancellation: a queued job is finished as canceled on
// dequeue; a running job has its context canceled and finishes as canceled
// when the worker pool unwinds. Returns false for unknown or already
// terminal jobs.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() || j.cancelled {
		return false
	}
	j.cancelled = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// executor is the single queue-draining goroutine: strict FIFO, one job at a
// time, so a job owns the full worker pool while it runs.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		// Checked separately first so a drain beats a ready queue: once
		// Drain has been called, no new job may start.
		select {
		case <-s.drainc:
			return
		default:
		}
		select {
		case <-s.ctx.Done():
			return
		case <-s.drainc:
			return
		case j := <-s.queue:
			s.metrics.jobsQueued.Add(-1)
			s.runJob(j)
		}
	}
}

// runJob executes one dequeued job through matrix.RunOn on the shared warm
// assets and moves it to its terminal state.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.cancelled {
		j.mu.Unlock()
		s.metrics.jobsCanceled.Add(1)
		j.finish(JobCanceled, "canceled while queued", nil)
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	j.state = JobRunning
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.metrics.jobsRunning.Add(1)
	start := time.Now()
	defer func() {
		s.metrics.jobsRunning.Add(-1)
		s.metrics.busyMicros.Add(time.Since(start).Microseconds())
	}()

	spec, err := j.Spec.matrixSpec()
	if err != nil { // validated at submit; unreachable in practice
		s.metrics.jobsFailed.Add(1)
		j.finish(JobFailed, err.Error(), nil)
		return
	}
	spec.Workers = s.cfg.Workers
	spec.Deadline = s.cfg.Deadline
	spec.RecordDir = j.recordDir
	spec.OnMission = func(i int, m qof.Metrics) {
		s.metrics.countMission(m.Outcome)
		j.publish(newMissionEvent(j.Cell, i, m))
	}

	res, err := matrix.RunOn(ctx, spec, s.assets)
	switch {
	case err != nil && ctx.Err() != nil:
		s.metrics.jobsCanceled.Add(1)
		j.finish(JobCanceled, "canceled", nil)
	case err != nil:
		s.metrics.jobsFailed.Add(1)
		j.finish(JobFailed, err.Error(), nil)
	default:
		if res.RecordErr != nil {
			// Results are complete; only persistence is degraded. Surface
			// it in the status error field without failing the job.
			s.metrics.jobsDone.Add(1)
			j.finish(JobDone, fmt.Sprintf("recording incomplete: %v", res.RecordErr), res)
			return
		}
		s.metrics.jobsDone.Add(1)
		j.finish(JobDone, "", res)
	}
}

// manifest is the persisted job.json: enough to re-identify a recorded job
// after a restart.
type manifest struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
}

// writeManifest creates the job's recording directory and persists its
// manifest crash-safely: the atomic temp-file + rename protocol guarantees
// restart recovery sees either no job.json or a complete one, never a torn
// prefix — so a server killed mid-submit cannot poison its own recovery.
func (s *Server) writeManifest(j *Job) error {
	if err := os.MkdirAll(j.recordDir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(manifest{ID: j.ID, Spec: j.Spec}, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(filepath.Join(j.recordDir, "job.json"), append(b, '\n'), 0o644)
}
