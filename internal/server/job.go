package server

import (
	"fmt"
	"sync"

	"mavfi/internal/campaign/matrix"
	"mavfi/internal/qof"
)

// JobSpec is the wire form of one campaign job (the POST /jobs body): one
// campaign-matrix cell. Every field maps one-to-one onto a `mavfi matrix`
// flag, which is what makes the served-equals-CLI byte-identity invariant
// well-defined: a job's cell CSV and summary CSV are byte-identical to
//
//	mavfi matrix -worlds WORLD -families FAULT -severities SEVERITY \
//	             -detectors DETECTOR -recoveries on|off -runs RUNS -seed SEED
//
// at any worker width.
type JobSpec struct {
	// World is the environment name (factory, farm, sparse, dense; default
	// sparse).
	World string `json:"world,omitempty"`
	// Fault is the fault target, "family[:kind]" (required): kernel, state,
	// sensor, actuator, wind, optionally restricted to one mechanism
	// (e.g. "sensor:ray_dropout").
	Fault string `json:"fault"`
	// Severity is one severity level: "low", "med", "high", or
	// "name=scale" (default "high").
	Severity string `json:"severity,omitempty"`
	// Detector is "none", "gad", or "aad" (default "none").
	Detector string `json:"detector,omitempty"`
	// Recovery enables recovery actions for detector-bearing jobs
	// (ignored — collapsed off — when Detector is "none").
	Recovery bool `json:"recovery,omitempty"`
	// Runs is the number of missions (default 4).
	Runs int `json:"runs,omitempty"`
	// Seed is the campaign seed the cell and mission seeds derive from.
	Seed int64 `json:"seed,omitempty"`
	// MaxMissionS overrides the mission time budget (0 = pipeline default).
	MaxMissionS float64 `json:"max_mission_s,omitempty"`
	// TrainEnvs is the training-environment count for gad/aad (default 12).
	TrainEnvs int `json:"train_envs,omitempty"`
	// MapSeed selects the golden-map mode: "off" (default, exact), "seed"
	// (approximate mode: missions fork the world's golden map — built once
	// into the server's warm assets, persisted under <record-dir>/mapseeds
	// when recording is enabled), or "memo" ("seed" plus saturated-
	// evidence memoization).
	MapSeed string `json:"map_seed,omitempty"`
	// NearFieldStride, when > 1, enables near-field ray subsampling
	// (approximate mode).
	NearFieldStride int `json:"near_field_stride,omitempty"`
	// Record persists every mission as a replayable recording under the
	// server's -record-dir; recorded jobs survive server restarts.
	Record bool `json:"record,omitempty"`
}

// normalized fills the spec's defaults (mirroring the matrix CLI flag
// defaults) so the persisted job.json pins the effective configuration.
func (js JobSpec) normalized() JobSpec {
	if js.World == "" {
		js.World = "sparse"
	}
	if js.Severity == "" {
		js.Severity = "high"
	}
	if js.Detector == "" {
		js.Detector = "none"
	}
	if js.Runs <= 0 {
		js.Runs = 4
	}
	if js.TrainEnvs <= 0 {
		js.TrainEnvs = 12
	}
	if js.MapSeed == "" {
		js.MapSeed = "off"
	}
	return js
}

// matrixSpec converts the job into its single-cell matrix specification —
// the exact Spec the equivalent CLI invocation builds, which is the shared
// code path the byte-identity invariant rests on.
func (js JobSpec) matrixSpec() (matrix.Spec, error) {
	js = js.normalized()
	if _, err := matrix.World(js.World); err != nil {
		return matrix.Spec{}, err
	}
	if js.Fault == "" {
		return matrix.Spec{}, fmt.Errorf("server: job needs a fault target (family[:kind])")
	}
	targets, err := matrix.ParseTargets(js.Fault)
	if err != nil {
		return matrix.Spec{}, err
	}
	if len(targets) != 1 {
		return matrix.Spec{}, fmt.Errorf("server: a job is one cell; got %d fault targets", len(targets))
	}
	sevs, err := matrix.ParseSeverities(js.Severity)
	if err != nil {
		return matrix.Spec{}, err
	}
	if len(sevs) != 1 {
		return matrix.Spec{}, fmt.Errorf("server: a job is one cell; got %d severities", len(sevs))
	}
	switch js.Detector {
	case "none", "gad", "aad":
	default:
		return matrix.Spec{}, fmt.Errorf("server: unknown detector %q (have none, gad, aad)", js.Detector)
	}
	switch js.MapSeed {
	case "off", "seed", "memo":
	default:
		return matrix.Spec{}, fmt.Errorf("server: unknown map-seed mode %q (have off, seed, memo)", js.MapSeed)
	}
	if js.NearFieldStride < 0 {
		return matrix.Spec{}, fmt.Errorf("server: negative near-field stride %d", js.NearFieldStride)
	}
	return matrix.Spec{
		Worlds:          []string{js.World},
		Targets:         targets,
		Severities:      sevs,
		Detectors:       []string{js.Detector},
		Recoveries:      []bool{js.Recovery},
		Runs:            js.Runs,
		Seed:            js.Seed,
		MaxMissionS:     js.MaxMissionS,
		TrainEnvs:       js.TrainEnvs,
		MapSeed:         js.MapSeed,
		NearFieldStride: js.NearFieldStride,
	}, nil
}

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle states. Queued jobs wait in the FIFO queue; running jobs own
// the worker pool; done/failed/canceled are terminal; interrupted marks a
// recorded job recovered from a restart with missing missions (resubmit to
// re-run it).
const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed"
	JobCanceled    JobState = "canceled"
	JobInterrupted JobState = "interrupted"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCanceled, JobInterrupted:
		return true
	}
	return false
}

// MissionEvent is one streamed per-mission result: the JSON the SSE stream
// carries and the status endpoint's mission-ordered result list. Fields
// mirror the cell CSV columns.
type MissionEvent struct {
	// Mission is the mission index within the job.
	Mission int `json:"mission"`
	// Seed is the mission's standalone pipeline seed.
	Seed int64 `json:"seed"`
	// Outcome is the qof outcome name.
	Outcome string `json:"outcome"`
	// FlightTimeS, EnergyJ, DistanceM are the headline QoF metrics.
	FlightTimeS float64 `json:"flight_s"`
	EnergyJ     float64 `json:"energy_j"`
	DistanceM   float64 `json:"distance_m"`
	// Alarms and Recomputes count detector activity.
	Alarms     int `json:"alarms"`
	Recomputes int `json:"recomputes"`
	// InjectedAtS and FirstAlarmS are the fault-response timestamps
	// (0 = never).
	InjectedAtS float64 `json:"injected_at_s"`
	FirstAlarmS float64 `json:"first_alarm_s"`
}

// newMissionEvent flattens one mission result for streaming.
func newMissionEvent(cell matrix.Cell, j int, m qof.Metrics) MissionEvent {
	return MissionEvent{
		Mission:     j,
		Seed:        cell.MissionSeed(j),
		Outcome:     m.Outcome.String(),
		FlightTimeS: m.FlightTimeS,
		EnergyJ:     m.EnergyJ,
		DistanceM:   m.DistanceM,
		Alarms:      m.Alarms,
		Recomputes:  m.Recomputes,
		InjectedAtS: m.InjectedAtS,
		FirstAlarmS: m.FirstAlarmS,
	}
}

// Job is one accepted campaign job.
type Job struct {
	// ID is the server-assigned identifier ("job-0001").
	ID string
	// Spec is the normalized submission.
	Spec JobSpec
	// Cell is the job's matrix cell (identity, seed, CSV naming).
	Cell matrix.Cell

	// recordDir is the job's recording directory ("" = unrecorded).
	recordDir string

	mu        sync.Mutex
	state     JobState
	err       string
	events    []MissionEvent // completion order
	subs      map[chan MissionEvent]struct{}
	result    *matrix.Result // single-cell result, set on done
	recovered bool
	cancelled bool          // cancellation was requested
	cancel    func()        // cancels the running job's context
	finished  chan struct{} // closed when the state turns terminal
}

// newJob builds a queued job.
func newJob(id string, spec JobSpec, cell matrix.Cell, recordDir string) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		Cell:      cell,
		recordDir: recordDir,
		state:     JobQueued,
		subs:      make(map[chan MissionEvent]struct{}),
		finished:  make(chan struct{}),
	}
}

// publish appends one mission event and fans it out to subscribers. A
// subscriber's buffer is sized for the whole job, so the non-blocking send
// only drops events for a pathologically slow reader — which still receives
// the authoritative mission-ordered list with the terminal status.
func (j *Job) publish(ev MissionEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a live event channel and returns the events published
// so far; the snapshot and registration are atomic, so the subscriber sees
// every event exactly once (history first, then live).
func (j *Job) subscribe() (history []MissionEvent, ch chan MissionEvent, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append(history, j.events...)
	ch = make(chan MissionEvent, j.Spec.Runs+4)
	j.subs[ch] = struct{}{}
	unsub = func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
	return history, ch, unsub
}

// finish moves the job to a terminal state (once; later calls are ignored)
// and wakes every waiter.
func (j *Job) finish(state JobState, err string, result *matrix.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.err = err
	j.result = result
	close(j.finished)
}

// Status is the job's wire status (GET /jobs/{id} and the submit response).
type Status struct {
	// ID and State identify the job and its lifecycle position.
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Cell is the job's canonical matrix-cell name; CellSeed its derived
	// seed.
	Cell     string `json:"cell"`
	CellSeed int64  `json:"cell_seed"`
	// Spec is the normalized submission.
	Spec JobSpec `json:"spec"`
	// Done and Total count completed missions.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error is the failure reason for failed jobs.
	Error string `json:"error,omitempty"`
	// Recovered marks a job rebuilt from recordings after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Missions is the mission-ordered result list, present once terminal.
	Missions []MissionEvent `json:"missions,omitempty"`
}

// status snapshots the job.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Cell:      j.Cell.Name(),
		CellSeed:  j.Cell.Seed,
		Spec:      j.Spec,
		Done:      len(j.events),
		Total:     j.Spec.Runs,
		Error:     j.err,
		Recovered: j.recovered,
	}
	if j.state.terminal() {
		st.Missions = j.orderedEventsLocked()
	}
	return st
}

// orderedEventsLocked returns the mission-ordered event list: from the
// assembled campaign when a result exists (the authoritative order), else by
// sorting the completion-order stream by mission index.
func (j *Job) orderedEventsLocked() []MissionEvent {
	if j.result != nil && len(j.result.Cells) == 1 {
		cr := &j.result.Cells[0]
		out := make([]MissionEvent, 0, len(cr.Campaign.Results))
		for i, m := range cr.Campaign.Results {
			out = append(out, newMissionEvent(cr.Cell, i, m))
		}
		return out
	}
	out := append([]MissionEvent(nil), j.events...)
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Mission < out[k-1].Mission; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}
