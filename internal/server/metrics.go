package server

import (
	"fmt"
	"strings"
	"sync/atomic"

	"mavfi/internal/qof"
)

// metrics is the server's counter set, rendered in Prometheus text
// exposition format by GET /metrics. Hand-rolled on atomics — the repo's
// no-new-dependencies rule precludes a client library, and the text format
// is simple enough that one renderer suffices.
type metrics struct {
	jobsQueued  atomic.Int64 // gauge: jobs waiting in the FIFO queue
	jobsRunning atomic.Int64 // gauge: jobs currently executing (0 or 1)

	jobsDone          atomic.Int64 // counters: terminal-state totals
	jobsFailed        atomic.Int64
	jobsCanceled      atomic.Int64
	jobsInterrupted   atomic.Int64 // queued jobs finished by a graceful drain
	jobsRejected      atomic.Int64 // queue-full 429s
	jobsRecovered     atomic.Int64 // jobs rebuilt from recordings at startup
	jobsRecoverFailed atomic.Int64 // corrupt job dirs skipped at startup

	missions atomic.Int64                  // completed missions across all jobs
	outcomes [qof.NumOutcomes]atomic.Int64 // per-outcome mission counters

	busyMicros atomic.Int64 // cumulative job execution time, µs
}

// countMission records one finished mission.
func (m *metrics) countMission(out qof.Outcome) {
	m.missions.Add(1)
	if 0 <= int(out) && int(out) < len(m.outcomes) {
		m.outcomes[out].Add(1)
	}
}

// render emits the Prometheus text form. Every outcome label is emitted even
// at zero so scrapes see a stable series set from the first sample.
func (m *metrics) render() string {
	var b strings.Builder
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("mavfi_jobs_queued", "Jobs waiting in the FIFO queue.", m.jobsQueued.Load())
	gauge("mavfi_jobs_running", "Jobs currently executing.", m.jobsRunning.Load())
	counter("mavfi_jobs_done_total", "Jobs that completed successfully.", m.jobsDone.Load())
	counter("mavfi_jobs_failed_total", "Jobs that ended in an error.", m.jobsFailed.Load())
	counter("mavfi_jobs_canceled_total", "Jobs canceled by request.", m.jobsCanceled.Load())
	counter("mavfi_jobs_interrupted_total", "Queued jobs finished as interrupted by a graceful drain.", m.jobsInterrupted.Load())
	counter("mavfi_jobs_rejected_total", "Submissions rejected because the queue was full.", m.jobsRejected.Load())
	counter("mavfi_jobs_recovered_total", "Jobs rebuilt from recordings at startup.", m.jobsRecovered.Load())
	counter("mavfi_jobs_recover_failed_total", "Corrupt job directories skipped during startup recovery.", m.jobsRecoverFailed.Load())
	counter("mavfi_missions_total", "Missions completed across all jobs.", m.missions.Load())

	fmt.Fprintf(&b, "# HELP mavfi_mission_outcomes_total Missions by outcome.\n# TYPE mavfi_mission_outcomes_total counter\n")
	for out := qof.Outcome(0); int(out) < qof.NumOutcomes; out++ {
		fmt.Fprintf(&b, "mavfi_mission_outcomes_total{outcome=%q} %d\n", out.String(), m.outcomes[out].Load())
	}

	rate := 0.0
	if busy := float64(m.busyMicros.Load()) / 1e6; busy > 0 {
		rate = float64(m.missions.Load()) / busy
	}
	fmt.Fprintf(&b, "# HELP mavfi_missions_per_second Missions per second of job execution time.\n# TYPE mavfi_missions_per_second gauge\nmavfi_missions_per_second %g\n", rate)
	return b.String()
}
