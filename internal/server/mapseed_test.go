package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"mavfi/internal/campaign/matrix"
)

// TestSeededJobMatchesCLIAndPersistsSeed extends the served-equals-CLI gate
// to approximate mode: a map_seed=seed job served over HTTP must produce the
// CSV bytes the equivalent seeded CLI matrix run produces, and a recording
// server must persist the golden map under <record-dir>/mapseeds.
func TestSeededJobMatchesCLIAndPersistsSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real missions")
	}
	spec := testSpec()
	spec.MapSeed = "seed"
	spec.NearFieldStride = 2
	mspec, err := spec.matrixSpec()
	if err != nil {
		t.Fatal(err)
	}
	mspec.Workers = 2
	ref, err := matrix.Run(context.Background(), mspec)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, RecordDir: dir})
	st, code := postJob(t, ts, spec, true)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if st.State != JobDone {
		t.Fatalf("job state %q, want done (error: %s)", st.State, st.Error)
	}
	cell, code := getBody(t, ts, "/jobs/"+st.ID+"/cell.csv")
	if code != http.StatusOK {
		t.Fatalf("cell.csv: status %d", code)
	}
	if cell != ref.Cells[0].CSV() {
		t.Errorf("seeded served cell CSV differs from CLI bytes:\nserved:\n%s\ncli:\n%s", cell, ref.Cells[0].CSV())
	}
	if _, err := os.Stat(filepath.Join(dir, "mapseeds", "sparse.mapseed")); err != nil {
		t.Errorf("golden map not persisted under record dir: %v", err)
	}
}

// TestJobSpecRejectsBadMapSeed pins wire validation of the new fields.
func TestJobSpecRejectsBadMapSeed(t *testing.T) {
	bad := testSpec()
	bad.MapSeed = "warp"
	if _, err := bad.matrixSpec(); err == nil {
		t.Error("unknown map_seed accepted")
	}
	neg := testSpec()
	neg.NearFieldStride = -1
	if _, err := neg.matrixSpec(); err == nil {
		t.Error("negative near_field_stride accepted")
	}
	ok := testSpec()
	ok.MapSeed = "seed"
	ok.NearFieldStride = 4
	mspec, err := ok.matrixSpec()
	if err != nil {
		t.Fatalf("valid seeded spec rejected: %v", err)
	}
	if mspec.MapSeed != "seed" || mspec.NearFieldStride != 4 {
		t.Errorf("seeded fields not forwarded: %+v", mspec)
	}
	if def := (testSpec()).normalized(); def.MapSeed != "off" {
		t.Errorf("default map_seed = %q, want off", def.MapSeed)
	}
}
