package octomap

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// benchScan builds a depth-scan-shaped workload on a mission-sized volume.
func benchScan() (*Tree, geom.Vec3, []RayPoint) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(60, 60, 20))
	tr := New(bounds, 0.5, DefaultParams())
	rng := rand.New(rand.NewSource(5))
	origin := geom.V(30, 30, 3)
	return tr, origin, randomScan(rng, origin, 384) // depth-camera ray count
}

// BenchmarkInsertCloud measures the batched scan-integration path the
// mission loop uses.
func BenchmarkInsertCloud(b *testing.B) {
	tr, origin, pts := benchScan()
	tr.InsertCloud(origin, pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertCloud(origin, pts)
	}
	b.ReportMetric(float64(tr.LeafUpdates())/float64(b.N+1), "leafupdates/scan")
}

// BenchmarkInsertRayReference measures the per-ray reference path on the
// identical scan, the before-side of the PR2 batching speedup.
func BenchmarkInsertRayReference(b *testing.B) {
	tr, origin, pts := benchScan()
	for _, p := range pts {
		tr.InsertRay(origin, p.End, p.Hit)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pts {
			tr.InsertRay(origin, p.End, p.Hit)
		}
	}
}
