package octomap

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// benchScan builds a depth-scan-shaped workload on a mission-sized volume.
func benchScan() (*Tree, geom.Vec3, []RayPoint) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(60, 60, 20))
	tr := New(bounds, 0.5, DefaultParams())
	rng := rand.New(rand.NewSource(5))
	origin := geom.V(30, 30, 3)
	return tr, origin, randomScan(rng, origin, 384) // depth-camera ray count
}

// BenchmarkInsertCloud measures the batched scan-integration path the
// mission loop uses.
func BenchmarkInsertCloud(b *testing.B) {
	tr, origin, pts := benchScan()
	tr.InsertCloud(origin, pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertCloud(origin, pts)
	}
	b.ReportMetric(float64(tr.LeafUpdates())/float64(b.N+1), "leafupdates/scan")
}

// benchQueryTree builds a scan-saturated map plus a set of planner-like
// query segments over it.
func benchQueryTree() (*Tree, [][2]geom.Vec3) {
	tr, origin, pts := benchScan()
	tr.InsertCloud(origin, pts)
	rng := rand.New(rand.NewSource(17))
	segs := make([][2]geom.Vec3, 256)
	for i := range segs {
		a := geom.V(rng.Float64()*56+2, rng.Float64()*56+2, rng.Float64()*16+2)
		segs[i] = [2]geom.Vec3{a, a.Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()*0.3).Normalize().Scale(3))}
	}
	return tr, segs
}

// BenchmarkSegmentFree measures the DDA segment query on RRT*-edge-length
// segments, with the per-voxel classification cache armed (the planner
// configuration).
func BenchmarkSegmentFree(b *testing.B) {
	tr, segs := benchQueryTree()
	tr.EnableClassCache()
	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := segs[i%len(segs)]
		tr.SegmentFree(s[0], s[1], q)
	}
}

// BenchmarkFirstBlocked measures the perception-side time-to-collision query.
func BenchmarkFirstBlocked(b *testing.B) {
	tr, segs := benchQueryTree()
	tr.EnableClassCache()
	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := segs[i%len(segs)]
		tr.FirstBlocked(s[0], s[1], q)
	}
}

// BenchmarkInsertRayReference measures the per-ray reference path on the
// identical scan, the before-side of the PR2 batching speedup.
func BenchmarkInsertRayReference(b *testing.B) {
	tr, origin, pts := benchScan()
	for _, p := range pts {
		tr.InsertRay(origin, p.End, p.Hit)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pts {
			tr.InsertRay(origin, p.End, p.Hit)
		}
	}
}
