package octomap

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// collectLeaves flattens a tree into the log-odds value of every leaf voxel
// at full resolution, keyed by voxel coordinates, by expanding coarser
// leaves over the keys they cover.
func collectLeaves(t *Tree) map[[3]int]float64 {
	out := map[[3]int]float64{}
	var walk func(ni int32, level, x, y, z int)
	walk = func(ni int32, level, x, y, z int) {
		fc := t.nodes[ni].firstChild
		if fc == noChild {
			span := 1 << uint(level+1)
			for dx := 0; dx < span; dx++ {
				for dy := 0; dy < span; dy++ {
					for dz := 0; dz < span; dz++ {
						out[[3]int{x + dx, y + dy, z + dz}] = t.nodes[ni].logOdds
					}
				}
			}
			return
		}
		for i := 0; i < 8; i++ {
			cx := x | ((i >> 2 & 1) << uint(level))
			cy := y | ((i >> 1 & 1) << uint(level))
			cz := z | ((i & 1) << uint(level))
			walk(fc+int32(i), level-1, cx, cy, cz)
		}
	}
	walk(0, t.depth-1, 0, 0, 0)
	return out
}

// randomScan synthesises a depth-scan-like point set: rays fanning out from
// a shared origin, some hitting surfaces and some running to max range, with
// a few degenerate/out-of-volume endpoints thrown in.
func randomScan(rng *rand.Rand, origin geom.Vec3, n int) []RayPoint {
	pts := make([]RayPoint, 0, n)
	for i := 0; i < n; i++ {
		az := rng.Float64() * 2 * math.Pi
		el := (rng.Float64() - 0.5) * math.Pi / 2
		rang := rng.Float64() * 25 // sometimes beyond the volume
		dir := geom.V(math.Cos(el)*math.Cos(az), math.Cos(el)*math.Sin(az), math.Sin(el))
		pts = append(pts, RayPoint{
			End: origin.Add(dir.Scale(rang)),
			Hit: rng.Float64() < 0.7,
		})
	}
	return pts
}

// TestInsertCloudMatchesInsertRayBitExact is the PR2 batching equivalence
// gate: for randomized scans, the batched InsertCloud must leave every voxel
// in the tree with log-odds bit-identical to the per-ray InsertRay reference
// applied in the same point order, and must account the same number of leaf
// updates.
func TestInsertCloudMatchesInsertRayBitExact(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(16, 16, 16))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ref := New(bounds, 0.5, DefaultParams())
		bat := New(bounds, 0.5, DefaultParams())
		// Several scans from moving origins, as in a mission.
		for scan := 0; scan < 4; scan++ {
			origin := geom.V(rng.Float64()*16, rng.Float64()*16, rng.Float64()*16)
			pts := randomScan(rng, origin, 60)
			for _, p := range pts {
				ref.InsertRay(origin, p.End, p.Hit)
			}
			bat.InsertCloud(origin, pts)
		}
		if ref.LeafUpdates() != bat.LeafUpdates() {
			t.Fatalf("trial %d: leaf updates diverge: InsertRay %d, InsertCloud %d",
				trial, ref.LeafUpdates(), bat.LeafUpdates())
		}
		want, got := collectLeaves(ref), collectLeaves(bat)
		if len(want) != len(got) {
			t.Fatalf("trial %d: voxel coverage diverges: %d vs %d leaves", trial, len(want), len(got))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: voxel %v missing from batched tree", trial, k)
			}
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("trial %d: voxel %v log-odds not bit-identical: ref %v (0x%x), batch %v (0x%x)",
					trial, k, w, math.Float64bits(w), g, math.Float64bits(g))
			}
		}
	}
}

// TestInsertCloudRepeatedEvidenceClamps checks the per-voxel delta sequences
// survive batching under clamping: hammering the same endpoint voxel from
// the same origin must clamp identically on both paths.
func TestInsertCloudRepeatedEvidenceClamps(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(8, 8, 8))
	origin := geom.V(0.25, 0.25, 0.25)
	end := geom.V(6.25, 0.25, 0.25)
	pts := make([]RayPoint, 0, 40)
	for i := 0; i < 40; i++ {
		pts = append(pts, RayPoint{End: end, Hit: i%3 != 0})
	}
	ref := New(bounds, 0.5, DefaultParams())
	bat := New(bounds, 0.5, DefaultParams())
	for _, p := range pts {
		ref.InsertRay(origin, p.End, p.Hit)
	}
	bat.InsertCloud(origin, pts)
	for x := 0; x < 16; x++ {
		p := geom.V(float64(x)*0.5+0.25, 0.25, 0.25)
		wp, wk := ref.Prob(p)
		gp, gk := bat.Prob(p)
		if wk != gk || math.Float64bits(wp) != math.Float64bits(gp) {
			t.Fatalf("voxel x=%d diverges: ref (%v,%v) batch (%v,%v)", x, wp, wk, gp, gk)
		}
	}
}

// TestInsertCloudCorruptedEndpointBoundedAndBitExact pins the
// fault-injection case: the octomap kernel is an injection site, so a scan
// can legitimately contain an endpoint coordinate corrupted to a huge
// magnitude. The ray walker clips every ray to the root volume, so the
// corrupted ray integrates only its in-volume prefix and the result still
// matches the per-ray reference bit-for-bit.
func TestInsertCloudCorruptedEndpointBoundedAndBitExact(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 30))
	rng := rand.New(rand.NewSource(19))
	origin := geom.V(50, 50, 3)
	pts := randomScan(rng, origin, 120)
	pts[13].End = geom.V(7.3e301, pts[13].End.Y, pts[13].End.Z) // exponent-bit flip
	pts[77].End = geom.V(pts[77].End.X, -4.1e88, pts[77].End.Z)

	ref := New(bounds, 0.5, DefaultParams())
	bat := New(bounds, 0.5, DefaultParams())
	for _, p := range pts {
		ref.InsertRay(origin, p.End, p.Hit)
	}
	bat.InsertCloud(origin, pts)
	if ref.LeafUpdates() != bat.LeafUpdates() {
		t.Fatalf("leaf updates diverge: %d vs %d", ref.LeafUpdates(), bat.LeafUpdates())
	}
	compareTrees(t, ref, bat)
}

// compareTrees asserts two trees have identical structure and bit-identical
// log-odds everywhere, by parallel recursive walk (cheap even on large
// volumes, unlike expanding coarse leaves to full resolution).
func compareTrees(t *testing.T, a, b *Tree) {
	t.Helper()
	var walk func(ai, bi int32, path string)
	walk = func(ai, bi int32, path string) {
		an, bn := a.nodes[ai], b.nodes[bi]
		if math.Float64bits(an.logOdds) != math.Float64bits(bn.logOdds) {
			t.Fatalf("node %s log-odds not bit-identical: %v vs %v", path, an.logOdds, bn.logOdds)
		}
		if (an.firstChild == noChild) != (bn.firstChild == noChild) {
			t.Fatalf("node %s structure diverges: leaf=%v vs leaf=%v",
				path, an.firstChild == noChild, bn.firstChild == noChild)
		}
		if an.firstChild == noChild {
			return
		}
		for i := int32(0); i < 8; i++ {
			walk(an.firstChild+i, bn.firstChild+i, path+string(rune('0'+i)))
		}
	}
	walk(0, 0, "/")
}

// TestInsertCloudEmptyAndOutOfVolume exercises the degenerate inputs.
func TestInsertCloudEmptyAndOutOfVolume(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(8, 8, 8))
	tr := New(bounds, 0.5, DefaultParams())
	tr.InsertCloud(geom.V(1, 1, 1), nil)
	if tr.LeafUpdates() != 0 {
		t.Fatalf("empty cloud applied %d updates", tr.LeafUpdates())
	}
	// A scan whose rays all start and end outside the volume must be a
	// no-op, same as InsertRay.
	tr.InsertCloud(geom.V(-20, -20, -20), []RayPoint{{End: geom.V(-30, -30, -30), Hit: true}})
	if tr.LeafUpdates() != 0 {
		t.Fatalf("out-of-volume cloud applied %d updates", tr.LeafUpdates())
	}
}
