package octomap

import (
	"bytes"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// FuzzSnapshotRead throws mutated snapshot bytes at ReadSnapshot. The
// contract under test mirrors the record reader's: never panic, never
// allocate proportionally to a declared-but-absent node count (the PR 8
// readFrame allocation-bomb rule), and reject anything short of an intact
// snapshot with a typed error. Anything accepted must be internally
// consistent: it forks into a usable tree with valid child links, and it
// round-trips through WriteTo byte-for-byte.
func FuzzSnapshotRead(f *testing.F) {
	base := newTestTree()
	// One short scan keeps the seed entry small enough for fast mutation.
	base.InsertCloud(geom.V(8, 8, 4), randomScan(rand.New(rand.NewSource(42)), geom.V(8, 8, 4), 8))
	var buf bytes.Buffer
	if _, err := base.Snapshot().WriteTo(&buf); err != nil {
		f.Fatalf("seeding snapshot: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(SnapshotMagic)+1]) // magic+version only
	f.Add(valid[:len(valid)/2])         // mid-arena truncation
	f.Add(valid[:len(valid)-4])         // clipped digest footer
	badVer := append([]byte(nil), valid...)
	badVer[len(SnapshotMagic)] = 99
	f.Add(badVer)
	huge := append([]byte(nil), valid...)
	countOff := len(SnapshotMagic) + 1 + 5*8 + 4 + 5*8 + 3*4 + 8
	huge[countOff+3] = 0x07 // declares ~134M nodes with no payload behind them
	f.Add(huge)
	var empty bytes.Buffer
	if _, err := newTestTree().Snapshot().WriteTo(&empty); err != nil {
		f.Fatalf("seeding empty snapshot: %v", err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("NOTASEED!"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatal("non-nil snapshot alongside an error")
			}
			return
		}
		if s == nil {
			t.Fatal("nil snapshot with nil error")
		}
		// Accepted snapshots must be safe to fork and query: validated child
		// links mean this walk cannot index out of the arena.
		tr := s.Fork()
		tr.At(s.origin)
		d := tr.Digest()
		if d != s.Digest() {
			t.Fatal("fork digest disagrees with snapshot digest")
		}
		// And must re-serialize to the exact accepted bytes.
		var out bytes.Buffer
		if _, err := s.WriteTo(&out); err != nil {
			t.Fatalf("re-serializing accepted snapshot: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("accepted snapshot does not round-trip byte-identically")
		}
	})
}
