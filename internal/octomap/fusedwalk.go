package octomap

import "mavfi/internal/geom"

// This file implements the PR 5 fused 7-ray walker behind SegmentFree and
// FirstBlocked. A collision query probes the centre segment a→b plus six
// offset segments (a+o)→(b+o) with axis-aligned offsets o (see probeOffsets):
// all seven rays share one direction, and an axis-aligned offset perturbs
// exactly one coordinate of both endpoints. Every quantity the per-ray DDA
// setup derives — endpoint keys, in-volume checks, the nudged clip points,
// and the initAxis stepping state — is computed axis-by-axis from that one
// coordinate, so an offset ray shares two of its three axis states with the
// centre ray bit-for-bit and needs exactly one axis recomputed. The fused
// walker therefore initialises the direction once (three initAxis calls for
// the centre ray) and derives each offset ray by swapping in a single fresh
// axis (one more initAxis each): 9 axis initialisations replacing the 21 the
// per-ray walks performed, and one third of the endpoint keying.
//
// Bit-identity is structural, not approximate: for the two shared axes the
// sequential walk computes a.Y + 0 (adding the zero offset component), which
// IEEE-754 guarantees returns a.Y for every value except -0.0 — and for -0.0
// the +0.0 it returns is indistinguishable downstream (key comparison,
// truncation, and the DDA arithmetic never branch on the sign of zero). The
// recomputed axis runs the exact expression sequence of the sequential path
// (same nudges, same division order), and the walk loops below are verbatim
// copies of the per-ray loops. The rays are walked strictly in the sequential
// order — centre first, then offsets in probeOffsets order, early exit on the
// first blocked ray — so the classification-probe sequence, every result bit,
// and FirstBlocked's earliest-crossing fraction are identical to the retained
// per-ray reference (pinned by the fused-vs-sequential equivalence suite in
// fusedwalk_test.go, probe sequences included).
//
// On top of the fusion sits the occupancy-summary prescan (bundleAllFree,
// backed by occSummary): before walking anything, the query checks whether
// every 8³ block any of the seven walks could possibly classify holds zero
// Occupied leaves. When it does — the common case for a vehicle probing open
// space — the whole query answers without stepping a single voxel, because
// under a policy that blocks only on Occupied voxels no classification in
// those blocks can come back blocked. When the prescan fails, the walks run
// voxel-for-voxel identical to the per-ray reference with no summary
// overhead in the loop, so the result is bit-identical either way and every
// probe the prescan elides provably lies in a zero-count block.

// rayAxis is the single-axis slice of one probe ray's endpoint checks and
// DDA setup: everything rayFree/rayFirstBlocked derive from one coordinate
// of (a, b). Combining three of these reproduces the sequential per-ray
// setup bit-for-bit.
type rayAxis struct {
	ak         int  // start-endpoint key component (valid when aIn)
	aIn, bIn   bool // endpoint coordinates inside the root slab on this axis
	eq         bool // endpoint coordinates equal on this axis
	x, ex      int  // clipped-walk start/end key components (valid when *In)
	p0In, p1In bool // nudged clip points inside the root slab on this axis
	step       int
	tMax       float64
	tDelta     float64
}

// fillRayAxis computes into ax the axis state for endpoint coordinates
// (av, bv) on the axis whose root-cube origin coordinate is originv (filled
// in place: the struct is larger than the return registers and these run
// nine times per query). The arithmetic is the exact per-axis expression
// sequence of rayFree + seedWalk(0, 1): the same range checks key()
// performs, the same 1e-9 inward nudges, and the same initAxis call, so
// three combined axis states are bit-identical to the sequential setup.
func (t *Tree) fillRayAxis(ax *rayAxis, av, bv, originv float64) {
	relA := av - originv
	ax.aIn = relA >= 0 && relA < t.rootSize
	if ax.aIn {
		ax.ak = t.keyComp(relA)
	}
	relB := bv - originv
	ax.bIn = relB >= 0 && relB < t.rootSize
	ax.eq = av == bv
	t0, t1 := 0.0, 1.0 // typed values: IEEE semantics, exactly as seedWalk computes
	d := bv - av
	p0 := av + d*(t0+1e-9)
	p1 := av + d*(t1-1e-9)
	relP0 := p0 - originv
	ax.p0In = relP0 >= 0 && relP0 < t.rootSize
	if ax.p0In {
		ax.x = t.keyComp(relP0)
	}
	relP1 := p1 - originv
	ax.p1In = relP1 >= 0 && relP1 < t.rootSize
	if ax.p1In {
		ax.ex = t.keyComp(relP1)
	}
	ax.step, ax.tMax, ax.tDelta = initAxis(relP0, p1-p0, t.resolution)
}

// multiWalker holds the fused setup of one collision query: the centre ray's
// three axis states plus a scratch slot for the one axis each offset ray
// recomputes. Queries keep it on the stack; nothing escapes.
type multiWalker struct {
	x, y, z rayAxis // centre-ray axis states
	o       rayAxis // scratch: the recomputed axis of the current offset ray
}

// init computes the centre-ray axis states for the segment a→b.
func (m *multiWalker) init(t *Tree, a, b geom.Vec3) {
	t.fillRayAxis(&m.x, a.X, b.X, t.origin.X)
	t.fillRayAxis(&m.y, a.Y, b.Y, t.origin.Y)
	t.fillRayAxis(&m.z, a.Z, b.Z, t.origin.Z)
}

// summaryView returns the block counts the prescan may trust, or nil when
// the summary is unsound for the policy: a zero count proves a block free of
// Occupied voxels only, so only a policy that blocks on nothing but Occupied
// (UnknownIsFree; Free never blocks) may elide classification loads.
func (t *Tree) summaryView(q QueryPolicy) ([]uint16, int) {
	if !q.UnknownIsFree {
		return nil, 0
	}
	return t.sum.counts, t.sum.nb
}

// axisBundleKeys folds into (lo, hi) the inclusive key range, on one axis,
// of every voxel the seven probe walks of a radius-r query could classify
// along that axis. ok is false when an offset endpoint coordinate leaves the
// root slab on this axis (some probe ray then crosses out-of-volume space,
// or the bundle is otherwise not fast-path eligible).
//
// The range covers, per ray: the start-endpoint key (ak), the clipped-walk
// start and end keys (x, ex), and the walk's defensive overshoot. The offset
// rays' perturbed-axis keys are derived from the exact fl(coord±r) the
// sequential path computes; their nudged clip points can shift a key by at
// most one, and an exhausted walk can drift at most three defensive steps
// past its end key (maxSteps is the Manhattan distance plus 3), hence the
// fixed ±4 slack.
func (t *Tree) axisBundleKeys(ax *rayAxis, av, bv, r, originv float64) (lo, hi int, ok bool) {
	if !ax.aIn || !ax.bIn || !ax.p0In || !ax.p1In {
		return 0, 0, false
	}
	relAP := (av + r) - originv
	relAM := (av - r) - originv
	relBP := (bv + r) - originv
	relBM := (bv - r) - originv
	if relAM < 0 || relBM < 0 || relAP >= t.rootSize || relBP >= t.rootSize {
		return 0, 0, false
	}
	lo, hi = ax.ak, ax.ak
	for _, k := range [6]int{ax.x, ax.ex, t.keyComp(relAP), t.keyComp(relAM), t.keyComp(relBP), t.keyComp(relBM)} {
		if k < lo {
			lo = k
		} else if k > hi {
			hi = k
		}
	}
	lo -= 4
	hi += 4
	if lo < 0 {
		lo = 0
	}
	if hi >= t.maxKey {
		hi = t.maxKey - 1
	}
	return lo, hi, true
}

// bundleAllFree reports whether the whole 7-ray query bundle is provably
// free without walking: every endpoint of every probe ray keys inside the
// volume and every summary block overlapping the keys any walk could
// classify holds zero Occupied leaves. The key coverage argument lives on
// axisBundleKeys; given it, a true return is exact — the sequential walks
// would classify only voxels in zero-count blocks, under a policy where
// only Occupied voxels block, and would therefore return "free".
func (t *Tree) bundleAllFree(m *multiWalker, a, b geom.Vec3, q QueryPolicy) bool {
	counts, nb := t.summaryView(q)
	if counts == nil {
		return false
	}
	r := q.Radius
	loX, hiX, ok := t.axisBundleKeys(&m.x, a.X, b.X, r, t.origin.X)
	if !ok {
		return false
	}
	loY, hiY, ok := t.axisBundleKeys(&m.y, a.Y, b.Y, r, t.origin.Y)
	if !ok {
		return false
	}
	loZ, hiZ, ok := t.axisBundleKeys(&m.z, a.Z, b.Z, r, t.origin.Z)
	if !ok {
		return false
	}
	loX >>= summaryBlockShift
	hiX >>= summaryBlockShift
	loY >>= summaryBlockShift
	hiY >>= summaryBlockShift
	loZ >>= summaryBlockShift
	hiZ >>= summaryBlockShift
	for bz := loZ; bz <= hiZ; bz++ {
		for by := loY; by <= hiY; by++ {
			base := (bz*nb + by) * nb
			for bx := loX; bx <= hiX; bx++ {
				if counts[base+bx] != 0 {
					return false
				}
			}
		}
	}
	return true
}

// walkFree reports whether every voxel crossed by the single probe ray whose
// axis states are (ax, ay, az) is unblocked, with the whole segment inside
// the mapped volume — rayFree rebuilt on fused axis state, mirroring it
// statement for statement (it runs only when the bundle prescan could not
// prove the query free, so the loop carries no summary overhead).
func (t *Tree) walkFree(ax, ay, az *rayAxis, q QueryPolicy, cp *classProbe) bool {
	if !ax.aIn || !ay.aIn || !az.aIn {
		return false
	}
	if !ax.bIn || !ay.bIn || !az.bIn {
		// The volume is convex: an endpoint outside means part of the
		// segment crosses out-of-volume (Occupied) space.
		return false
	}
	if q.blocked(cp.classify(ax.ak, ay.ak, az.ak)) {
		return false
	}
	if ax.eq && ay.eq && az.eq {
		return true
	}
	if !ax.p0In || !ay.p0In || !az.p0In || !ax.p1In || !ay.p1In || !az.p1In {
		return true // nudged clip points key outside: the walk yields no voxels
	}
	// Hoist every per-step quantity into locals: the loop below runs one
	// iteration per crossed voxel across seven rays per query, and loads
	// through the axis pointers would re-run on every step.
	x, y, z := ax.x, ay.x, az.x
	ex, ey, ez := ax.ex, ay.ex, az.ex
	stepX, stepY, stepZ := ax.step, ay.step, az.step
	tMaxX, tMaxY, tMaxZ := ax.tMax, ay.tMax, az.tMax
	tDeltaX, tDeltaY, tDeltaZ := ax.tDelta, ay.tDelta, az.tDelta
	maxSteps := abs(ex-x) + abs(ey-y) + abs(ez-z) + 3
	maxKey := t.maxKey
	tNext := 0.0
	for steps := 0; steps < maxSteps; steps++ {
		tEntry := tNext
		if tEntry > 1+1e-9 || x < 0 || y < 0 || z < 0 || x >= maxKey || y >= maxKey || z >= maxKey {
			// Walker overshoot artifact, not a crossed voxel: a near-zero
			// axis delta below the DDA threshold (step 0) with endpoints
			// straddling that axis's voxel boundary makes the end key
			// unreachable, and the walk spends its defensive step budget
			// drifting past the segment end (a genuinely crossed voxel is
			// entered at parameter ≤ 1 and in-range, and the end voxel
			// terminates the walk before either guard can trip).
			return true
		}
		// Manually inlined classProbe.classify hit path: one predictable
		// branch and one byte load per crossed voxel on a warm cache.
		var o Occupancy
		if cp.grid != nil && x < cp.nx && y < cp.ny && z < cp.nz {
			if v := cp.grid[(z*cp.ny+y)*cp.nx+x]; v>>2 == cp.epoch {
				o = Occupancy(v & 3)
			} else {
				o = cp.classify(x, y, z)
			}
		} else {
			o = cp.classify(x, y, z)
		}
		if q.blocked(o) {
			return false
		}
		if x == ex && y == ey && z == ez {
			return true // end voxel reached, walk exhausted
		}
		switch {
		case tMaxX <= tMaxY && tMaxX <= tMaxZ:
			x += stepX
			tNext = tMaxX
			tMaxX += tDeltaX
		case tMaxY <= tMaxZ:
			y += stepY
			tNext = tMaxY
			tMaxY += tDeltaY
		default:
			z += stepZ
			tNext = tMaxZ
			tMaxZ += tDeltaZ
		}
	}
	return true
}

// walkFirstBlocked returns the parametric position along the single probe
// ray a→b (whose axis states are (ax, ay, az)) at which the ray first enters
// blocked space, and whether any such position exists — rayFirstBlocked
// rebuilt on fused axis state. A ray whose far endpoint keys outside the
// volume needs the slab clip; that rare case delegates to the retained
// sequential rayFirstBlocked, which is the same code the reference runs.
func (t *Tree) walkFirstBlocked(a, b geom.Vec3, ax, ay, az *rayAxis, q QueryPolicy, cp *classProbe) (float64, bool) {
	if !ax.aIn || !ay.aIn || !az.aIn {
		return 0, true // starts in out-of-volume (Occupied) space
	}
	if !ax.bIn || !ay.bIn || !az.bIn {
		return t.rayFirstBlocked(a, b, q, cp) // slab-clipped walk, rare
	}
	if q.blocked(cp.classify(ax.ak, ay.ak, az.ak)) {
		return 0, true // starts inside a blocked voxel
	}
	if ax.eq && ay.eq && az.eq {
		return 0, false
	}
	if !ax.p0In || !ay.p0In || !az.p0In || !ax.p1In || !ay.p1In || !az.p1In {
		return 0, false // walk yields no voxels; both endpoints key inside
	}
	t0, t1 := 0.0, 1.0
	clipLo := t0 + 1e-9
	clipSpan := (t1 - 1e-9) - clipLo
	x, y, z := ax.x, ay.x, az.x
	ex, ey, ez := ax.ex, ay.ex, az.ex
	stepX, stepY, stepZ := ax.step, ay.step, az.step
	tMaxX, tMaxY, tMaxZ := ax.tMax, ay.tMax, az.tMax
	tDeltaX, tDeltaY, tDeltaZ := ax.tDelta, ay.tDelta, az.tDelta
	maxSteps := abs(ex-x) + abs(ey-y) + abs(ez-z) + 3
	maxKey := t.maxKey
	tNext := 0.0
	for steps := 0; steps < maxSteps; steps++ {
		tEntry := tNext
		if tEntry > 1+1e-9 || x < 0 || y < 0 || z < 0 || x >= maxKey || y >= maxKey || z >= maxKey {
			break // walker overshoot artifact; see walkFree
		}
		if q.blocked(cp.classify(x, y, z)) {
			// segParam on the (0,1) seed: map the clipped-walk entry back to
			// the caller's a→b parameterisation, clamped to [0,1].
			f := clipLo + tEntry*clipSpan
			if f < 0 {
				f = 0
			} else if f > 1 {
				f = 1
			}
			return f, true
		}
		if x == ex && y == ey && z == ez {
			break // end voxel classified, walk exhausted
		}
		switch {
		case tMaxX <= tMaxY && tMaxX <= tMaxZ:
			x += stepX
			tNext = tMaxX
			tMaxX += tDeltaX
		case tMaxY <= tMaxZ:
			y += stepY
			tNext = tMaxY
			tMaxY += tDeltaY
		default:
			z += stepZ
			tNext = tMaxZ
			tMaxZ += tDeltaZ
		}
	}
	return 0, false // both endpoints key inside: a clean walk has no crossing
}
