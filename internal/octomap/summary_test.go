package octomap

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// recountSummary rebuilds the occupancy summary by brute force: classify
// every leaf key in the root cube and count the Occupied ones per block.
// This is the oracle the incrementally maintained counts must match after
// any interleaving of mutations.
func recountSummary(tr *Tree) []uint16 {
	counts := make([]uint16, len(tr.sum.counts))
	for z := 0; z < tr.maxKey; z++ {
		for y := 0; y < tr.maxKey; y++ {
			for x := 0; x < tr.maxKey; x++ {
				if tr.classifySlow(x, y, z) == Occupied {
					counts[tr.summaryIndex(x, y, z)]++
				}
			}
		}
	}
	return counts
}

func assertSummaryExact(t *testing.T, tr *Tree, when string) {
	t.Helper()
	want := recountSummary(tr)
	for i, w := range want {
		if got := tr.sum.counts[i]; got != w {
			t.Fatalf("%s: summary block %d has count %d, recount says %d", when, i, got, w)
		}
	}
}

// TestOccSummaryMatchesRecount pins the incremental summary maintenance
// against the brute-force recount oracle across interleaved scan insertion,
// direct occupied/free marking (including occupied→free→occupied flips of
// the same voxel), collision queries between mutations, and walker-overshoot
// insertions whose evidence lands through the key-masked descend aliasing.
func TestOccSummaryMatchesRecount(t *testing.T) {
	tr := newTestTree()
	if tr.sum.counts == nil {
		t.Fatal("test tree unexpectedly over the summary cap")
	}
	assertSummaryExact(t, tr, "fresh tree")
	rng := rand.New(rand.NewSource(8))
	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	for round := 0; round < 6; round++ {
		origin := randomInteriorPoint(rng)
		tr.InsertCloud(origin, randomScan(rng, origin, 60))
		// Flip a handful of voxels across the occupancy threshold both ways.
		for i := 0; i < 10; i++ {
			p := randomInteriorPoint(rng)
			for j := 0; j < 1+rng.Intn(4); j++ {
				tr.MarkOccupied(p)
			}
			for j := 0; j < rng.Intn(6); j++ {
				tr.MarkFree(p)
			}
		}
		// Queries between mutations must see exact summary state (and must
		// not disturb it).
		for i := 0; i < 25; i++ {
			a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
			tr.SegmentFree(a, b, q)
			tr.FirstBlocked(a, b, q)
		}
		assertSummaryExact(t, tr, "round")
	}

	// Degenerate-axis insertions: the ray walker's defensive overshoot can
	// hand descend keys outside [0, maxKey), whose evidence aliases onto the
	// masked key (see occSummary). The summary must follow the evidence.
	tr.InsertRay(geom.V(5.25, 6.0-4e-13, 1.2), geom.V(5.25, 6.0+4e-13, 0.1), true)
	tr.InsertRay(geom.V(0.25, 6.0-4e-13, 15.8), geom.V(0.25, 6.0+4e-13, 15.95), true)
	assertSummaryExact(t, tr, "degenerate-axis insertions")
}

// TestSummaryQueriesAcrossEpochWrap interleaves enough mutation/query rounds
// to wrap the classification cache's 6-bit epoch while the summary serves
// the same queries, checking fused queries against the sequential reference
// the whole way: the summary (no epochs) and the class cache (wrapping
// epochs) must stay coherent through every invalidation regime.
func TestSummaryQueriesAcrossEpochWrap(t *testing.T) {
	tr := queryTestTree(71)
	tr.EnableClassCache()
	rng := rand.New(rand.NewSource(72))
	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	for round := 0; round < 70; round++ { // > 63 epochs: forces a wrap
		p := randomInteriorPoint(rng)
		if round%2 == 0 {
			tr.MarkOccupied(p)
		} else {
			tr.MarkFree(p)
		}
		for i := 0; i < 6; i++ {
			a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
			if got, want := tr.SegmentFree(a, b, q), segmentFreeSeq(tr, a, b, q); got != want {
				t.Fatalf("round %d: SegmentFree fused=%v sequential=%v", round, got, want)
			}
		}
	}
	assertSummaryExact(t, tr, "after epoch wrap")
}

// TestSummaryCapDisables pins the footprint-cap degradation: a volume whose
// block count exceeds maxSummaryBlocks runs with the summary disabled (nil
// counts), and queries still answer exactly like the sequential reference.
func TestSummaryCapDisables(t *testing.T) {
	// 2050 m at 0.125 m resolution → rootSize 4096 m, maxKey 2^15, nb 2^12:
	// 2^36 blocks, far over the cap.
	big := New(geom.Box(geom.V(0, 0, 0), geom.V(2050, 2050, 2050)), 0.125, DefaultParams())
	if big.sum.counts != nil {
		t.Fatalf("summary armed over the cap: nb=%d", big.sum.nb)
	}
	big.MarkOccupied(geom.V(100.06, 100.06, 100.06))
	q := QueryPolicy{UnknownIsFree: true, Radius: 0.3}
	a, b := geom.V(98, 100.06, 100.06), geom.V(103, 100.06, 100.06)
	if big.SegmentFree(a, b, q) {
		t.Fatal("segment through the occupied voxel reported free")
	}
	if got, want := big.SegmentFree(a, b, q), segmentFreeSeq(big, a, b, q); got != want {
		t.Fatalf("uncapped-summary query: fused=%v sequential=%v", got, want)
	}
}
