package octomap

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

func newTestTree() *Tree {
	return New(geom.Box(geom.V(0, 0, 0), geom.V(32, 32, 16)), 0.5, DefaultParams())
}

func TestUnknownByDefault(t *testing.T) {
	tr := newTestTree()
	if got := tr.At(geom.V(5, 5, 5)); got != Unknown {
		t.Errorf("fresh voxel = %v", got)
	}
	if _, known := tr.Prob(geom.V(5, 5, 5)); known {
		t.Error("fresh voxel known")
	}
}

func TestOutOfVolumeIsOccupied(t *testing.T) {
	tr := newTestTree()
	if got := tr.At(geom.V(-1, 5, 5)); got != Occupied {
		t.Errorf("out-of-volume = %v", got)
	}
	if p, known := tr.Prob(geom.V(999, 0, 0)); !known || p != 1 {
		t.Errorf("out-of-volume prob = %v, %v", p, known)
	}
}

func TestMarkOccupiedAndFree(t *testing.T) {
	tr := newTestTree()
	p := geom.V(10.2, 10.2, 2.2)
	tr.MarkOccupied(p)
	if tr.At(p) != Occupied {
		t.Error("hit evidence did not mark occupied")
	}
	// Repeated misses flip it free.
	for i := 0; i < 5; i++ {
		tr.MarkFree(p)
	}
	if tr.At(p) != Free {
		t.Error("miss evidence did not free voxel")
	}
}

func TestLogOddsClamping(t *testing.T) {
	tr := newTestTree()
	p := geom.V(3, 3, 3)
	for i := 0; i < 100; i++ {
		tr.MarkOccupied(p)
	}
	prob, known := tr.Prob(p)
	if !known || prob > 0.98 {
		t.Errorf("clamped prob = %v (known=%v)", prob, known)
	}
	// Clamping keeps the voxel responsive: a handful of misses must be
	// able to flip it back.
	for i := 0; i < 12; i++ {
		tr.MarkFree(p)
	}
	if tr.At(p) != Free {
		t.Error("voxel stuck occupied after clamped updates")
	}
}

func TestInsertRayCarvesAndHits(t *testing.T) {
	tr := newTestTree()
	origin := geom.V(1, 1, 2)
	end := geom.V(12, 1, 2)
	tr.InsertRay(origin, end, true)
	if tr.At(end) != Occupied {
		t.Error("ray endpoint not occupied")
	}
	// Midpoints along the ray carved free.
	for _, f := range []float64{0.2, 0.5, 0.8} {
		p := origin.Lerp(end, f)
		if got := tr.At(p); got != Free {
			t.Errorf("ray interior at %v = %v, want Free", p, got)
		}
	}
	// A miss ray (max range) carves free without an endpoint hit.
	tr2 := newTestTree()
	tr2.InsertRay(origin, end, false)
	if tr2.At(end) == Occupied {
		t.Error("miss-ray endpoint occupied")
	}
}

func TestInsertRayPropertyEndpointOccupied(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := newTestTree()
	for i := 0; i < 200; i++ {
		o := geom.V(rng.Float64()*30+1, rng.Float64()*30+1, rng.Float64()*14+1)
		e := geom.V(rng.Float64()*30+1, rng.Float64()*30+1, rng.Float64()*14+1)
		if o.Dist(e) < 1 {
			continue
		}
		tr.InsertRay(o, e, true)
		if tr.At(e) == Free {
			// The endpoint voxel may be re-carved by later rays, but the
			// insertion itself must have applied hit evidence; rebuild a
			// fresh tree to verify determinism of this single ray.
			fresh := newTestTree()
			fresh.InsertRay(o, e, true)
			if fresh.At(e) != Occupied {
				t.Fatalf("ray %v→%v endpoint not occupied", o, e)
			}
		}
	}
}

func TestVoxelCenter(t *testing.T) {
	tr := newTestTree()
	c, ok := tr.VoxelCenter(geom.V(1.1, 1.1, 1.1))
	if !ok {
		t.Fatal("voxel centre not found")
	}
	if c.Dist(geom.V(1.25, 1.25, 1.25)) > 1e-9 {
		t.Errorf("centre = %v", c)
	}
	if _, ok := tr.VoxelCenter(geom.V(-5, 0, 0)); ok {
		t.Error("out-of-volume centre found")
	}
}

func TestLeafUpdateAccounting(t *testing.T) {
	tr := newTestTree()
	if tr.LeafUpdates() != 0 {
		t.Error("fresh tree has updates")
	}
	tr.InsertRay(geom.V(1, 1, 1), geom.V(9, 1, 1), true)
	if tr.LeafUpdates() < 16 { // 8 m at 0.5 m voxels
		t.Errorf("updates = %d, want ≥16", tr.LeafUpdates())
	}
	if tr.NumLeaves() < 2 {
		t.Errorf("leaves = %d", tr.NumLeaves())
	}
}

func TestQueryPolicy(t *testing.T) {
	tr := newTestTree()
	p := geom.V(8, 8, 4)
	optimistic := QueryPolicy{UnknownIsFree: true}
	pessimistic := QueryPolicy{UnknownIsFree: false}
	if !tr.PointFree(p, optimistic) {
		t.Error("unknown not free under optimism")
	}
	if tr.PointFree(p, pessimistic) {
		t.Error("unknown free under pessimism")
	}
	tr.MarkOccupied(p)
	if tr.PointFree(p, optimistic) {
		t.Error("occupied voxel free")
	}
}

func TestQueryPolicyRadius(t *testing.T) {
	tr := newTestTree()
	// A realistic multi-voxel obstacle block (surfaces integrate as many
	// voxels, which is what the probe approximation is designed for).
	for dx := 0.0; dx < 1.5; dx += 0.5 {
		for dy := 0.0; dy < 1.5; dy += 0.5 {
			for dz := 0.0; dz < 1.5; dz += 0.5 {
				tr.MarkOccupied(geom.V(8+dx+0.25, 8+dy+0.25, 4+dz+0.25))
			}
		}
	}
	// Free space to the -x side of the block.
	for dx := 1.0; dx <= 3; dx += 0.5 {
		tr.MarkFree(geom.V(8-dx+0.25, 8.75, 4.75))
	}
	near := geom.V(7.4, 8.75, 4.75) // 0.6 m from the block face at x=8
	noRadius := QueryPolicy{UnknownIsFree: true}
	withRadius := QueryPolicy{UnknownIsFree: true, Radius: 0.7}
	if !tr.PointFree(near, noRadius) {
		t.Error("free voxel near block blocked without radius")
	}
	if tr.PointFree(near, withRadius) {
		t.Error("radius probe missed adjacent obstacle block")
	}
}

func TestSegmentFreeAndFirstBlocked(t *testing.T) {
	tr := newTestTree()
	// Build a wall at x=16.
	for y := 0.0; y < 32; y += 0.5 {
		for z := 0.0; z < 16; z += 0.5 {
			tr.MarkOccupied(geom.V(16.25, y+0.25, z+0.25))
		}
	}
	pol := QueryPolicy{UnknownIsFree: true}
	a, b := geom.V(2, 8, 4), geom.V(30, 8, 4)
	if tr.SegmentFree(a, b, pol) {
		t.Error("segment through wall free")
	}
	frac, hit := tr.FirstBlocked(a, b, pol)
	if !hit {
		t.Fatal("FirstBlocked missed the wall")
	}
	x := a.Lerp(b, frac).X
	if x < 15 || x > 17.5 {
		t.Errorf("first blocked at x=%v, want ≈16", x)
	}
	if !tr.SegmentFree(geom.V(2, 8, 4), geom.V(10, 8, 4), pol) {
		t.Error("clear segment blocked")
	}
	if _, hit := tr.FirstBlocked(geom.V(2, 8, 4), geom.V(10, 8, 4), pol); hit {
		t.Error("FirstBlocked on clear segment")
	}
}

func TestRayWithinBoundsOnly(t *testing.T) {
	tr := newTestTree()
	// Ray from outside through the volume: must not panic, and should
	// carve the intersecting part.
	tr.InsertRay(geom.V(-10, 5, 5), geom.V(10, 5, 5), true)
	if tr.At(geom.V(10, 5, 5)) != Occupied {
		t.Error("clipped ray endpoint not occupied")
	}
	// Ray entirely outside: no-op, no panic.
	tr.InsertRay(geom.V(-10, -10, -10), geom.V(-5, -5, -5), true)
}

func TestResolutionDefault(t *testing.T) {
	tr := New(geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)), 0, DefaultParams())
	if tr.Resolution() != 0.5 {
		t.Errorf("default resolution = %v", tr.Resolution())
	}
}
