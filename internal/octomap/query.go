package octomap

import (
	"math"

	"mavfi/internal/geom"
)

// QueryPolicy controls how Unknown voxels are treated by navigation-level
// queries. The MAVBench planners are optimistic: unexplored space is assumed
// traversable until observed, otherwise no plan could ever leave the sensor
// frustum.
type QueryPolicy struct {
	// UnknownIsFree treats Unknown voxels as traversable when true.
	UnknownIsFree bool
	// Radius is the vehicle collision radius used to inflate queries.
	Radius float64
}

// blocked reports whether the single voxel classification counts as a
// collision under the policy.
func (q QueryPolicy) blocked(o Occupancy) bool {
	switch o {
	case Occupied:
		return true
	case Unknown:
		return !q.UnknownIsFree
	default:
		return false
	}
}

// probeOffsets returns the 6 face-adjacent probe offsets at radius r. The
// collision radius is applied by probing the centre plus these offsets — an
// O(7) approximation of the swept sphere. Mapped structures thinner than the
// voxel pitch can slip between probes; real obstacles integrate as
// multi-voxel surfaces, for which the probe set is reliable.
func probeOffsets(r float64) [6]geom.Vec3 {
	return [6]geom.Vec3{
		{X: r}, {X: -r}, {Y: r}, {Y: -r}, {Z: r}, {Z: -r},
	}
}

// PointFree reports whether a vehicle centred at p fits in the map under the
// policy (centre voxel plus the 6 probe voxels at the radius; see
// probeOffsets).
func (t *Tree) PointFree(p geom.Vec3, q QueryPolicy) bool {
	cp := t.classProbeView()
	if q.blocked(cp.at(p)) {
		return false
	}
	if q.Radius <= 0 {
		return true
	}
	for _, d := range probeOffsets(q.Radius) {
		if q.blocked(cp.at(p.Add(d))) {
			return false
		}
	}
	return true
}

// at is At on the hoisted cache view.
func (cp *classProbe) at(p geom.Vec3) Occupancy {
	x, y, z, ok := cp.t.key(p)
	if !ok {
		return Occupied
	}
	return cp.classify(x, y, z)
}

// SegmentFree reports whether the segment a→b is traversable under the
// policy: for the centre ray and each of the 6 probe-offset rays, every leaf
// voxel the ray crosses must be unblocked and the ray must stay inside the
// mapped volume (out-of-volume space is Occupied, as in At).
//
// Each offset ray is enumerated with the same 3-D DDA voxel walk the
// insertion path uses, visiting each crossed voxel exactly once. This is the
// continuous-collision refinement of the pre-PR3 implementation, which
// sampled PointFree at half-resolution spacing (~2 probes per crossed voxel)
// and could step over a voxel the segment only grazes.
//
// Since PR 5 the seven walks run fused: the shared direction is initialised
// once and each offset ray re-derives only its single perturbed axis (see
// fusedwalk.go), and the occupancy-summary prescan answers the whole query
// without walking when every block in reach holds no obstacle. When the
// walks do run, rays go centre first, then offsets in probeOffsets order
// with the same early exit, so results and the classification-probe
// sequence are bit-identical to the per-ray reference (segmentFreeSeq in
// the equivalence suite).
func (t *Tree) SegmentFree(a, b geom.Vec3, q QueryPolicy) bool {
	cp := t.classProbeView()
	var m multiWalker
	m.init(t, a, b)
	if q.Radius > 0 && t.bundleAllFree(&m, a, b, q) {
		return true // no walk can classify anything outside zero-count blocks
	}
	if !t.walkFree(&m.x, &m.y, &m.z, q, &cp) {
		return false
	}
	if q.Radius <= 0 {
		return true
	}
	offs := probeOffsets(q.Radius)
	for i := range offs {
		// probeOffsets perturbs exactly one axis per offset (axis i>>1):
		// recompute that axis, share the other two with the centre ray.
		var free bool
		switch i >> 1 {
		case 0:
			t.fillRayAxis(&m.o, a.X+offs[i].X, b.X+offs[i].X, t.origin.X)
			free = t.walkFree(&m.o, &m.y, &m.z, q, &cp)
		case 1:
			t.fillRayAxis(&m.o, a.Y+offs[i].Y, b.Y+offs[i].Y, t.origin.Y)
			free = t.walkFree(&m.x, &m.o, &m.z, q, &cp)
		default:
			t.fillRayAxis(&m.o, a.Z+offs[i].Z, b.Z+offs[i].Z, t.origin.Z)
			free = t.walkFree(&m.x, &m.y, &m.o, q, &cp)
		}
		if !free {
			return false
		}
	}
	return true
}

// rayFree reports whether every voxel crossed by the single segment a→b is
// unblocked, with the whole segment inside the mapped volume. cp is the
// caller's cache view, shared across a query's probe rays.
//
// Since PR 5 this is the retained per-ray reference: production queries run
// the fused walkFree (bit-identical, pinned by the equivalence suite), and
// this body exists so the reference cannot drift from what the fused walker
// must reproduce.
func (t *Tree) rayFree(a, b geom.Vec3, q QueryPolicy, cp *classProbe) bool {
	ax, ay, az, aIn := t.key(a)
	if !aIn {
		return false
	}
	if _, _, _, bIn := t.key(b); !bIn {
		// The volume is convex: an endpoint outside means part of the
		// segment crosses out-of-volume (Occupied) space.
		return false
	}
	if q.blocked(cp.classify(ax, ay, az)) {
		return false
	}
	if a == b {
		return true
	}
	var w rayWalker
	t.startWalkInside(&w, a, b) // both endpoints key inside, checked above
	if !w.valid {
		return true
	}
	// The DDA stepping below is rayWalker.next manually inlined on locals
	// (next is beyond the inliner's budget and this loop classifies one
	// voxel per step across up to seven rays per query): identical yield
	// order, identical guards, so the voxel sequence is bit-identical to
	// the walker's.
	x, y, z := w.x, w.y, w.z
	tMaxX, tMaxY, tMaxZ := w.tMaxX, w.tMaxY, w.tMaxZ
	tNext := 0.0
	for steps := 0; steps < w.maxSteps; steps++ {
		tEntry := tNext
		if tEntry > 1+1e-9 || x < 0 || y < 0 || z < 0 || x >= t.maxKey || y >= t.maxKey || z >= t.maxKey {
			// Walker overshoot artifact, not a crossed voxel: a near-zero
			// axis delta below the DDA threshold (step 0) with endpoints
			// straddling that axis's voxel boundary makes the end key
			// unreachable, and the walk spends its defensive step budget
			// drifting past the segment end (a genuinely crossed voxel is
			// entered at parameter ≤ 1 and in-range, and the end voxel
			// terminates the walk before either guard can trip).
			return true
		}
		// Manually inlined classProbe.classify hit path: one predictable
		// branch and one byte load per crossed voxel on a warm cache.
		var o Occupancy
		if cp.grid != nil && x < cp.nx && y < cp.ny && z < cp.nz {
			if v := cp.grid[(z*cp.ny+y)*cp.nx+x]; v>>2 == cp.epoch {
				o = Occupancy(v & 3)
			} else {
				o = cp.classify(x, y, z)
			}
		} else {
			o = cp.classify(x, y, z)
		}
		if q.blocked(o) {
			return false
		}
		if x == w.ex && y == w.ey && z == w.ez {
			return true // end voxel reached, walk exhausted
		}
		switch {
		case tMaxX <= tMaxY && tMaxX <= tMaxZ:
			x += w.stepX
			tNext = tMaxX
			tMaxX += w.tDeltaX
		case tMaxY <= tMaxZ:
			y += w.stepY
			tNext = tMaxY
			tMaxY += w.tDeltaY
		default:
			z += w.stepZ
			tNext = tMaxZ
			tMaxZ += w.tDeltaZ
		}
	}
	return true
}

// FirstBlocked walks from a toward b and returns the parametric position
// frac ∈ [0,1] at which the vehicle first collides — the exact boundary
// crossing into the earliest blocked voxel across the centre ray and the 6
// probe-offset rays — or ok=false when the whole segment is traversable.
// The perception stage uses this for time-to-collision.
//
// Like SegmentFree, each ray is a DDA voxel walk rather than the pre-PR3
// half-resolution sampling; frac is the true voxel-boundary crossing instead
// of the first blocked sample position (which lagged the boundary by up to
// half a sample spacing). The seven walks run fused since PR 5 (see
// SegmentFree and fusedwalk.go); a ray whose far endpoint leaves the volume
// still takes the sequential slab-clipped walk through rayFirstBlocked.
func (t *Tree) FirstBlocked(a, b geom.Vec3, q QueryPolicy) (frac float64, ok bool) {
	cp := t.classProbeView()
	var m multiWalker
	m.init(t, a, b)
	if q.Radius > 0 && t.bundleAllFree(&m, a, b, q) {
		return 0, false // no walk can classify anything outside zero-count blocks
	}
	first := math.Inf(1)
	if f, blocked := t.walkFirstBlocked(a, b, &m.x, &m.y, &m.z, q, &cp); blocked {
		first = f
	}
	if q.Radius > 0 {
		offs := probeOffsets(q.Radius)
		for i := range offs {
			ao, bo := a.Add(offs[i]), b.Add(offs[i])
			var f float64
			var blocked bool
			switch i >> 1 {
			case 0:
				t.fillRayAxis(&m.o, ao.X, bo.X, t.origin.X)
				f, blocked = t.walkFirstBlocked(ao, bo, &m.o, &m.y, &m.z, q, &cp)
			case 1:
				t.fillRayAxis(&m.o, ao.Y, bo.Y, t.origin.Y)
				f, blocked = t.walkFirstBlocked(ao, bo, &m.x, &m.o, &m.z, q, &cp)
			default:
				t.fillRayAxis(&m.o, ao.Z, bo.Z, t.origin.Z)
				f, blocked = t.walkFirstBlocked(ao, bo, &m.x, &m.y, &m.o, q, &cp)
			}
			if blocked && f < first {
				first = f
			}
		}
	}
	if math.IsInf(first, 1) {
		return 0, false
	}
	return first, true
}

// rayFirstBlocked returns the parametric position along the single segment
// a→b at which the ray first enters blocked (or out-of-volume) space, and
// whether any such position exists. cp is the caller's cache view, shared
// across a query's probe rays.
//
// Since PR 5 this body serves two callers: the fused walkFirstBlocked
// delegates rays whose far endpoint keys outside the volume here (the walk
// then needs the slab clip), and the sequential reference of the
// fused-vs-sequential equivalence suite (firstBlockedSeq) is built on it.
func (t *Tree) rayFirstBlocked(a, b geom.Vec3, q QueryPolicy, cp *classProbe) (float64, bool) {
	ax, ay, az, aIn := t.key(a)
	if !aIn {
		return 0, true // starts in out-of-volume (Occupied) space
	}
	if q.blocked(cp.classify(ax, ay, az)) {
		return 0, true // starts inside a blocked voxel
	}
	if a == b {
		return 0, false
	}
	var w rayWalker
	t.startWalk(&w, a, b)
	for {
		x, y, z, _, ok := w.next()
		if !ok {
			break
		}
		if w.tEntry > 1+1e-9 || x < 0 || y < 0 || z < 0 || x >= t.maxKey || y >= t.maxKey || z >= t.maxKey {
			break // walker overshoot artifact; see rayFree
		}
		if q.blocked(cp.classify(x, y, z)) {
			return w.segParam(w.tEntry), true
		}
	}
	if _, _, _, bIn := t.key(b); !bIn {
		// The walk ran clean to the volume boundary, but the segment exits
		// the volume there: the crossing into out-of-volume space is the
		// first collision.
		return w.segParam(1), true
	}
	return 0, false
}
