package octomap

import (
	"math"

	"mavfi/internal/geom"
)

// QueryPolicy controls how Unknown voxels are treated by navigation-level
// queries. The MAVBench planners are optimistic: unexplored space is assumed
// traversable until observed, otherwise no plan could ever leave the sensor
// frustum.
type QueryPolicy struct {
	// UnknownIsFree treats Unknown voxels as traversable when true.
	UnknownIsFree bool
	// Radius is the vehicle collision radius used to inflate queries.
	Radius float64
}

// blocked reports whether the single voxel classification counts as a
// collision under the policy.
func (q QueryPolicy) blocked(o Occupancy) bool {
	switch o {
	case Occupied:
		return true
	case Unknown:
		return !q.UnknownIsFree
	default:
		return false
	}
}

// PointFree reports whether a vehicle centred at p fits in the map under the
// policy. The collision radius is applied by probing the centre voxel plus
// the 6 face-adjacent probes at the radius — an O(7) approximation of the
// swept sphere. Mapped structures thinner than the voxel pitch can slip
// between probes; real obstacles integrate as multi-voxel surfaces, for
// which the probe set is reliable.
func (t *Tree) PointFree(p geom.Vec3, q QueryPolicy) bool {
	if q.blocked(t.At(p)) {
		return false
	}
	if q.Radius <= 0 {
		return true
	}
	r := q.Radius
	probes := [6]geom.Vec3{
		{X: r}, {X: -r}, {Y: r}, {Y: -r}, {Z: r}, {Z: -r},
	}
	for _, d := range probes {
		if q.blocked(t.At(p.Add(d))) {
			return false
		}
	}
	return true
}

// SegmentFree reports whether the segment a→b is traversable under the
// policy, sampling at half-resolution spacing.
func (t *Tree) SegmentFree(a, b geom.Vec3, q QueryPolicy) bool {
	dist := a.Dist(b)
	step := t.resolution / 2
	n := int(math.Ceil(dist/step)) + 1
	for i := 0; i <= n; i++ {
		if !t.PointFree(a.Lerp(b, float64(i)/float64(n)), q) {
			return false
		}
	}
	return true
}

// FirstBlocked walks from a toward b and returns the parametric position
// t ∈ [0,1] of the first blocked sample, or ok=false when the whole segment
// is traversable. The perception stage uses this for time-to-collision.
func (t *Tree) FirstBlocked(a, b geom.Vec3, q QueryPolicy) (frac float64, ok bool) {
	dist := a.Dist(b)
	step := t.resolution / 2
	n := int(math.Ceil(dist/step)) + 1
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		if !t.PointFree(a.Lerp(b, f), q) {
			return f, true
		}
	}
	return 0, false
}
