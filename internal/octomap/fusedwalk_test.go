package octomap

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// segmentFreeSeq is the pre-PR5 per-ray SegmentFree, retained verbatim as
// the sequential reference of the fused-vs-sequential equivalence gate: one
// independent rayFree walk per probe ray, centre first, then the offsets in
// probeOffsets order.
func segmentFreeSeq(t *Tree, a, b geom.Vec3, q QueryPolicy) bool {
	cp := t.classProbeView()
	if !t.rayFree(a, b, q, &cp) {
		return false
	}
	if q.Radius <= 0 {
		return true
	}
	for _, d := range probeOffsets(q.Radius) {
		if !t.rayFree(a.Add(d), b.Add(d), q, &cp) {
			return false
		}
	}
	return true
}

// firstBlockedSeq is the pre-PR5 per-ray FirstBlocked reference.
func firstBlockedSeq(t *Tree, a, b geom.Vec3, q QueryPolicy) (float64, bool) {
	cp := t.classProbeView()
	first := math.Inf(1)
	if f, blocked := t.rayFirstBlocked(a, b, q, &cp); blocked {
		first = f
	}
	if q.Radius > 0 {
		for _, d := range probeOffsets(q.Radius) {
			if f, blocked := t.rayFirstBlocked(a.Add(d), b.Add(d), q, &cp); blocked && f < first {
				first = f
			}
		}
	}
	if math.IsInf(first, 1) {
		return 0, false
	}
	return first, true
}

// fusedTestPolicies are the policies the equivalence suite sweeps: the
// pipeline's optimistic navigation policy, a pessimistic variant (unknown
// blocks, so the occupancy summary must stand aside), and a zero-radius
// probe (centre ray only).
var fusedTestPolicies = []QueryPolicy{
	{UnknownIsFree: true, Radius: 0.55},
	{UnknownIsFree: false, Radius: 0.55},
	{UnknownIsFree: true, Radius: 0},
}

// fusedTestSegments draws the segment mix the suite probes: interior
// segments like the planner's, plus near-boundary segments whose offset
// rays leave the volume (exercising the out-of-volume early exits and the
// slab-clip delegation) and degenerate zero-length probes.
func fusedTestSegments(rng *rand.Rand, n int) [][2]geom.Vec3 {
	segs := make([][2]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		var a, b geom.Vec3
		switch i % 5 {
		case 0, 1, 2: // interior, RRT*-edge-length
			a = randomInteriorPoint(rng)
			b = a.Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()*0.4).Normalize().Scale(rng.Float64()*4 + 0.5))
		case 3: // hugging the volume boundary: offset rays key outside
			a = geom.V(rng.Float64()*2+0.1, rng.Float64()*30+1, rng.Float64()*0.4+0.1)
			b = a.Add(geom.V(rng.Float64()*6-3, rng.Float64()*6-3, rng.Float64()*1.5))
		default: // crossing out of the volume, or zero length
			a = randomInteriorPoint(rng)
			if rng.Intn(2) == 0 {
				b = a
			} else {
				b = a.Add(geom.V(40, rng.Float64()*4-2, 0))
			}
		}
		segs = append(segs, [2]geom.Vec3{a, b})
	}
	return segs
}

// TestFusedMatchesSequentialRandomized is the PR 5 equivalence gate on
// results: across the query_test.go worlds, every policy, and a
// boundary-heavy segment mix, the fused SegmentFree/FirstBlocked (occupancy
// summary active) must reproduce the sequential per-ray reference
// bit-for-bit, fraction bits included.
func TestFusedMatchesSequentialRandomized(t *testing.T) {
	for _, seed := range []int64{21, 31, 41, 77} {
		tr := queryTestTree(seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		segs := fusedTestSegments(rng, 500)
		for _, q := range fusedTestPolicies {
			for si, s := range segs {
				gotFree := tr.SegmentFree(s[0], s[1], q)
				wantFree := segmentFreeSeq(tr, s[0], s[1], q)
				if gotFree != wantFree {
					t.Fatalf("seed %d seg %d policy %+v: fused SegmentFree=%v sequential=%v (%v→%v)",
						seed, si, q, gotFree, wantFree, s[0], s[1])
				}
				gotF, gotOK := tr.FirstBlocked(s[0], s[1], q)
				wantF, wantOK := firstBlockedSeq(tr, s[0], s[1], q)
				if gotOK != wantOK || math.Float64bits(gotF) != math.Float64bits(wantF) {
					t.Fatalf("seed %d seg %d policy %+v: fused FirstBlocked=(%v,%v) sequential=(%v,%v) (%v→%v)",
						seed, si, q, gotF, gotOK, wantF, wantOK, s[0], s[1])
				}
			}
		}
	}
}

// recordProbes runs fn with the classification-probe recorder armed and the
// classification cache guaranteed cold-free (the recorder hooks classifySlow,
// which every probe reaches only while the cache is unarmed), returning the
// exact probe sequence fn caused.
func recordProbes(tr *Tree, fn func()) [][3]int {
	var rec [][3]int
	tr.probeRec = func(x, y, z int) { rec = append(rec, [3]int{x, y, z}) }
	fn()
	tr.probeRec = nil
	return rec
}

// TestFusedProbeSequenceMatchesSequential pins the fused walker's traversal
// itself, not just its answers: with the occupancy summary disarmed (so
// nothing is elided) the fused queries must classify exactly the voxels the
// sequential reference classifies, in exactly the same order. The trees stay
// cache-unarmed so every classification funnels through the recorded
// classifySlow path.
func TestFusedProbeSequenceMatchesSequential(t *testing.T) {
	tr := queryTestTree(51)
	savedCounts := tr.sum.counts
	tr.sum.counts = nil // disarm the summary: fused must probe like sequential
	defer func() { tr.sum.counts = savedCounts }()
	rng := rand.New(rand.NewSource(52))
	segs := fusedTestSegments(rng, 300)
	for _, q := range fusedTestPolicies {
		for si, s := range segs {
			var gotFree, wantFree bool
			fused := recordProbes(tr, func() { gotFree = tr.SegmentFree(s[0], s[1], q) })
			seq := recordProbes(tr, func() { wantFree = segmentFreeSeq(tr, s[0], s[1], q) })
			if gotFree != wantFree {
				t.Fatalf("seg %d policy %+v: SegmentFree fused=%v sequential=%v", si, q, gotFree, wantFree)
			}
			assertSameProbes(t, "SegmentFree", si, q, fused, seq)

			var gotF, wantF float64
			var gotOK, wantOK bool
			fused = recordProbes(tr, func() { gotF, gotOK = tr.FirstBlocked(s[0], s[1], q) })
			seq = recordProbes(tr, func() { wantF, wantOK = firstBlockedSeq(tr, s[0], s[1], q) })
			if gotOK != wantOK || math.Float64bits(gotF) != math.Float64bits(wantF) {
				t.Fatalf("seg %d policy %+v: FirstBlocked fused=(%v,%v) sequential=(%v,%v)", si, q, gotF, gotOK, wantF, wantOK)
			}
			assertSameProbes(t, "FirstBlocked", si, q, fused, seq)
		}
	}
}

func assertSameProbes(t *testing.T, what string, si int, q QueryPolicy, fused, seq [][3]int) {
	t.Helper()
	if len(fused) != len(seq) {
		t.Fatalf("seg %d policy %+v: %s probe counts diverge: fused %d sequential %d",
			si, q, what, len(fused), len(seq))
	}
	for i := range fused {
		if fused[i] != seq[i] {
			t.Fatalf("seg %d policy %+v: %s probe %d diverges: fused %v sequential %v",
				si, q, what, i, fused[i], seq[i])
		}
	}
}

// TestSummaryElisionAlignment pins the prescan's elision invariant: with the
// summary armed, the probe sequence of a query must be exactly the unarmed
// sequence with zero or more probes elided, every elided probe must lie in a
// summary block with a zero occupied count, and the answers must stay
// bit-identical. (The prescan elides either nothing or a whole query, and
// only when every block in the bundle's reach is zero-count — this test
// verifies that claim probe by probe rather than trusting the range
// analysis.)
func TestSummaryElisionAlignment(t *testing.T) {
	tr := queryTestTree(61)
	if tr.sum.counts == nil {
		t.Fatal("test tree unexpectedly over the summary cap")
	}
	rng := rand.New(rand.NewSource(62))
	segs := fusedTestSegments(rng, 400)
	q := testPolicy // the optimistic policy is the only one the summary serves
	for si, s := range segs {
		savedCounts := tr.sum.counts

		var sumFree bool
		withSum := recordProbes(tr, func() { sumFree = tr.SegmentFree(s[0], s[1], q) })
		tr.sum.counts = nil
		var plainFree bool
		plain := recordProbes(tr, func() { plainFree = tr.SegmentFree(s[0], s[1], q) })
		tr.sum.counts = savedCounts

		if sumFree != plainFree {
			t.Fatalf("seg %d: SegmentFree with summary=%v without=%v", si, sumFree, plainFree)
		}
		assertElisionAligned(t, tr, "SegmentFree", si, withSum, plain)

		var sumF, plainF float64
		var sumOK, plainOK bool
		withSum = recordProbes(tr, func() { sumF, sumOK = tr.FirstBlocked(s[0], s[1], q) })
		tr.sum.counts = nil
		plain = recordProbes(tr, func() { plainF, plainOK = tr.FirstBlocked(s[0], s[1], q) })
		tr.sum.counts = savedCounts

		if sumOK != plainOK || math.Float64bits(sumF) != math.Float64bits(plainF) {
			t.Fatalf("seg %d: FirstBlocked with summary=(%v,%v) without=(%v,%v)", si, sumF, sumOK, plainF, plainOK)
		}
		assertElisionAligned(t, tr, "FirstBlocked", si, withSum, plain)
	}
}

// assertElisionAligned checks withSum is plain with elisions only, each
// elided probe falling in a zero-count summary block.
func assertElisionAligned(t *testing.T, tr *Tree, what string, si int, withSum, plain [][3]int) {
	t.Helper()
	j := 0
	for _, p := range plain {
		if j < len(withSum) && withSum[j] == p {
			j++
			continue
		}
		// Elided probe: must be provably unoccupied via the summary.
		if c := tr.sum.counts[tr.summaryIndex(p[0], p[1], p[2])]; c != 0 {
			t.Fatalf("seg %d: %s elided probe %v sits in a block with %d occupied leaves", si, what, p, c)
		}
	}
	if j != len(withSum) {
		t.Fatalf("seg %d: %s summarised sequence is not a subsequence: %d/%d probes matched",
			si, what, j, len(withSum))
	}
}
