package octomap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"mavfi/internal/atomicfile"
	"mavfi/internal/geom"
)

// Snapshot is an immutable copy of a Tree's semantic state: the node arena,
// the derived occupancy-summary counts, and the geometry that addresses them.
// It is the unit of cross-mission map memoization (the PR 9 golden-map seed):
// a campaign builds one mapping pass per world, snapshots it, and every
// mission of the cell starts from a Fork instead of an empty tree.
//
// A Snapshot is safe for concurrent use by any number of forking goroutines
// because nothing ever writes through it: Fork/ForkInto copy the slabs out,
// and the caches (path, query, classification) are per-Tree state that is
// reset — never shared — on fork. Snapshots also serialize (WriteTo /
// ReadSnapshot) so a long-running campaign server can persist its golden
// maps next to its recordings and reload them across restarts.
type Snapshot struct {
	params     Params
	resolution float64
	depth      int
	origin     geom.Vec3
	rootSize   float64

	clsNX, clsNY, clsNZ int // class-cache extents forks inherit

	nodes       []node   // immutable arena copy; index 0 is the root
	counts      []uint16 // immutable summary counts; nil when over the cap
	sumNB       int
	leafUpdates int
}

// Snapshot deep-copies the tree's semantic state. The copy is a memcpy of
// the node slab plus the summary counts — the arena is a contiguous
// index-linked slab, so no pointer graph needs walking — and none of the
// per-Tree caches travel with it (they are descent/classification memos, not
// map content).
func (t *Tree) Snapshot() *Snapshot {
	return &Snapshot{
		params:      t.params,
		resolution:  t.resolution,
		depth:       t.depth,
		origin:      t.origin,
		rootSize:    t.rootSize,
		clsNX:       t.cls.nx,
		clsNY:       t.cls.ny,
		clsNZ:       t.cls.nz,
		nodes:       append([]node(nil), t.nodes...),
		counts:      append([]uint16(nil), t.counts()...),
		sumNB:       t.sum.nb,
		leafUpdates: t.leafUpdates,
	}
}

// counts returns the summary slice (nil-preserving helper for Snapshot).
func (t *Tree) counts() []uint16 { return t.sum.counts }

// NumNodes returns the snapshot's arena size, a memory-footprint proxy.
func (s *Snapshot) NumNodes() int { return len(s.nodes) }

// Matches reports whether the snapshot was built over exactly the tree
// geometry New(bounds, resolution, ...) would produce — the guard campaign
// layers use before forking a cached (or disk-loaded) seed for a world.
func (s *Snapshot) Matches(bounds geom.AABB, resolution float64) bool {
	probe := New(bounds, resolution, s.params)
	return probe.resolution == s.resolution &&
		probe.depth == s.depth &&
		probe.origin == s.origin &&
		probe.rootSize == s.rootSize &&
		probe.cls.nx == s.clsNX && probe.cls.ny == s.clsNY && probe.cls.nz == s.clsNZ
}

// Fork returns a fresh tree holding an exact copy of the snapshot's map. The
// forked tree is fully independent: inserting into it never writes back into
// the snapshot or into any sibling fork.
func (s *Snapshot) Fork() *Tree {
	t := new(Tree)
	s.ForkInto(t)
	return t
}

// ForkInto resets t to an exact copy of the snapshot's map, reusing t's
// existing allocations (node arena capacity, summary slab, classification
// grid) where they fit — the cross-mission memoization path: a mission pool
// recycles finished trees through ForkInto so steady-state forks are two
// memcpys with no allocation.
//
// Everything semantic is copied from the snapshot; everything memoised is
// invalidated. The mutation counter restarts at zero on every fork, so the
// invalidation must be explicit rather than counter-based: a recycled tree's
// caches could otherwise carry entries whose stamped mutation count the new
// mission's counter will reach again, reviving classifications of a map that
// no longer exists. The path and query caches are dropped outright; the
// classification grid keeps its allocation but retires its epoch (with the
// same wrap handling classify uses, clearing the grid when the 6-bit epoch
// would overflow — the mid-epoch-wrap fork regression test pins this), so no
// entry stamped before the fork can ever be served after it. The summary
// counts are copied from the snapshot, which is what keeps the bundleAllFree
// prescan exact on forked trees.
func (s *Snapshot) ForkInto(t *Tree) {
	t.params = s.params
	t.resolution = s.resolution
	t.depth = s.depth
	t.origin = s.origin
	t.rootSize = s.rootSize
	t.maxKey = int(s.rootSize / s.resolution)
	t.keyMask = t.maxKey - 1
	t.invRes = 1 / s.resolution
	frac, _ := math.Frexp(s.resolution)
	t.mulKey = frac == 0.5

	if cap(t.nodes) < len(s.nodes) {
		// First fork into this tree (or a bigger world than last time):
		// size the arena like New does, with headroom for the mission's own
		// expansion on top of the seed.
		capacity := len(s.nodes) + len(s.nodes)/4
		if capacity < 1<<17 {
			capacity = 1 << 17
		}
		t.nodes = make([]node, 0, capacity)
	}
	t.nodes = append(t.nodes[:0], s.nodes...)

	t.sum.nb = s.sumNB
	switch {
	case s.counts == nil:
		t.sum.counts = nil
	case cap(t.sum.counts) >= len(s.counts):
		t.sum.counts = t.sum.counts[:len(s.counts)]
		copy(t.sum.counts, s.counts)
	default:
		t.sum.counts = append([]uint16(nil), s.counts...)
	}

	t.leafUpdates = s.leafUpdates
	t.mut = 0
	t.path = pathCache{}
	t.qry = queryCache{}
	t.probeRec = nil

	if t.cls.nx != s.clsNX || t.cls.ny != s.clsNY || t.cls.nz != s.clsNZ {
		// Different world: the grid's indexing no longer matches, so drop it
		// and let EnableClassCache re-arm lazily at the new extents.
		t.cls = classCache{nx: s.clsNX, ny: s.clsNY, nz: s.clsNZ}
		return
	}
	t.retireClassCache()
}

// retireClassCache invalidates every cached classification while keeping the
// grid allocation, exactly the way classify retires an epoch: bump it, and
// clear the grid when the 6-bit epoch space wraps. Called on fork, where the
// mutation counter restarts and counter-keyed invalidation alone would be
// unsound (see ForkInto).
func (t *Tree) retireClassCache() {
	c := &t.cls
	c.mut = t.mut
	if c.grid == nil {
		c.epoch = 0
		return
	}
	c.epoch++
	if c.epoch == 1<<6 {
		clear(c.grid)
		c.epoch = 1
	}
}

// rebuildSummary recomputes the occupancy summary from the node arena by
// full reclassification — the recount ReadSnapshot uses (counts are derived
// state, so they are rebuilt rather than trusted from the wire) and the
// oracle the fork equivalence tests compare incremental counts against.
func (t *Tree) rebuildSummary() {
	t.initSummary()
	if t.sum.counts == nil {
		return
	}
	t.recount(0, t.depth-1, 0, 0, 0)
}

// recount walks the subtree at arena index ni, whose children select with
// key bit `bit`, accumulating occupied unit leaves into the summary. Coarse
// leaves (bit >= 0) hold exactly-zero log-odds — evidence only lands at unit
// depth — so only bit < 0 leaves can contribute.
func (t *Tree) recount(ni int32, bit, x, y, z int) {
	fc := t.nodes[ni].firstChild
	if fc == noChild {
		if bit < 0 {
			if lo := t.nodes[ni].logOdds; lo != 0 && lo >= t.params.OccThresh {
				t.sum.counts[t.summaryIndex(x, y, z)]++
			}
		}
		return
	}
	for i := int32(0); i < 8; i++ {
		t.recount(fc+i, bit-1,
			x|int(i>>2&1)<<bit,
			y|int(i>>1&1)<<bit,
			z|int(i&1)<<bit)
	}
}

// Digest returns an FNV-64a hash of the tree's semantic state: geometry,
// sensor model, the full node arena, the summary counts, and the leaf-update
// total. Cache state and the mutation counter are deliberately excluded —
// they memoise work, they are not map content — so a forked tree and a tree
// rebuilt from the same insertions digest identically, which is the byte
// the fork equivalence suite pins.
func (t *Tree) Digest() uint64 {
	h := fnv.New64a()
	var b [8]byte
	putF := func(f float64) {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		h.Write(b[:])
	}
	putF(t.resolution)
	putF(t.origin.X)
	putF(t.origin.Y)
	putF(t.origin.Z)
	putF(t.rootSize)
	putF(float64(t.depth))
	putF(t.params.LogOddsHit)
	putF(t.params.LogOddsMiss)
	putF(t.params.ClampMin)
	putF(t.params.ClampMax)
	putF(t.params.OccThresh)
	putF(float64(t.leafUpdates))
	for i := range t.nodes {
		putF(t.nodes[i].logOdds)
		binary.LittleEndian.PutUint32(b[:4], uint32(t.nodes[i].firstChild))
		h.Write(b[:4])
	}
	for _, c := range t.sum.counts {
		binary.LittleEndian.PutUint16(b[:2], c)
		h.Write(b[:2])
	}
	return h.Sum64()
}

// Digest returns the digest a tree forked from this snapshot would report.
func (s *Snapshot) Digest() uint64 {
	t := s.Fork()
	return t.Digest()
}

// Snapshot serialization. The format follows the record package's framing
// discipline (magic, version byte, little-endian payload, FNV-64a digest
// footer) with the same reader-safety rules the PR 8 FuzzRecordRead fix
// established: nothing is ever preallocated from a length the wire declares,
// and every structural invariant the in-memory representation relies on is
// revalidated before a node is trusted.
//
// Layout (all little-endian):
//
//	"MAVFISEED" | version byte | header | nodes | digest
//	header: resolution, origin{X,Y,Z}, rootSize float64; depth uint32;
//	        params{Hit,Miss,ClampMin,ClampMax,OccThresh} float64;
//	        clsNX, clsNY, clsNZ uint32; leafUpdates uint64; nodeCount uint32
//	node:   logOdds float64 | firstChild int32   (12 bytes)
//	digest: FNV-64a over header+nodes
//
// The summary counts are derived state and are not serialized; ReadSnapshot
// rebuilds them by recount, so a corrupted file can never smuggle in counts
// inconsistent with its arena.
const (
	// SnapshotMagic prefixes every serialized golden-map seed.
	SnapshotMagic = "MAVFISEED"
	// SnapshotVersion is the current format version.
	SnapshotVersion = 1
)

// Typed snapshot-decode errors, in the record package's style: corrupt input
// fails loudly and specifically, and callers (the warm-asset cache, the fuzz
// target) can distinguish truncation from structural corruption.
var (
	// ErrSnapshotMagic marks input that is not a serialized snapshot.
	ErrSnapshotMagic = errors.New("octomap: bad snapshot magic (not a golden-map seed)")
	// ErrSnapshotVersion marks an unsupported format version.
	ErrSnapshotVersion = errors.New("octomap: unsupported snapshot version")
	// ErrSnapshotTruncated marks a snapshot cut off before its digest.
	ErrSnapshotTruncated = errors.New("octomap: truncated snapshot")
	// ErrSnapshotCorrupt marks a structurally invalid snapshot (bad geometry,
	// out-of-range child links, or a digest mismatch).
	ErrSnapshotCorrupt = errors.New("octomap: corrupt snapshot")
)

// maxSnapshotNodes bounds the node count a snapshot may declare: far above
// any real arena (the largest worlds build a few hundred thousand nodes) but
// small enough that the count can never size a pathological allocation.
const maxSnapshotNodes = 1 << 27

const snapshotNodeBytes = 12

// WriteTo serializes the snapshot. It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(SnapshotMagic)
	buf.WriteByte(SnapshotVersion)

	body := new(bytes.Buffer)
	putF := func(f float64) { binary.Write(body, binary.LittleEndian, math.Float64bits(f)) }
	putU32 := func(v uint32) { binary.Write(body, binary.LittleEndian, v) }
	putF(s.resolution)
	putF(s.origin.X)
	putF(s.origin.Y)
	putF(s.origin.Z)
	putF(s.rootSize)
	putU32(uint32(s.depth))
	putF(s.params.LogOddsHit)
	putF(s.params.LogOddsMiss)
	putF(s.params.ClampMin)
	putF(s.params.ClampMax)
	putF(s.params.OccThresh)
	putU32(uint32(s.clsNX))
	putU32(uint32(s.clsNY))
	putU32(uint32(s.clsNZ))
	binary.Write(body, binary.LittleEndian, uint64(s.leafUpdates))
	putU32(uint32(len(s.nodes)))
	for i := range s.nodes {
		binary.Write(body, binary.LittleEndian, math.Float64bits(s.nodes[i].logOdds))
		binary.Write(body, binary.LittleEndian, uint32(s.nodes[i].firstChild))
	}

	h := fnv.New64a()
	h.Write(body.Bytes())
	buf.Write(body.Bytes())
	binary.Write(&buf, binary.LittleEndian, h.Sum64())
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// WriteSnapshotFile serializes the snapshot to path atomically (temp file +
// rename via atomicfile). Readers digest-verify, so a torn plain write would
// merely be rejected and rebuilt — but a crash mid-write used to leave a
// corrupt file squatting on the cache path until the next rebuild overwrote
// it, and the campaign dispatcher now serves these files to worker shards,
// so the write path guarantees whole files outright.
func WriteSnapshotFile(path string, s *Snapshot) error {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadSnapshot decodes one serialized snapshot from r, validating the magic,
// version, geometry, every child link, and the digest footer before any of
// it is trusted. Truncated input returns ErrSnapshotTruncated; structurally
// invalid input returns an error wrapping ErrSnapshotCorrupt. The declared
// node count never sizes an allocation directly (the PR 8 readFrame rule):
// the node payload is grown through io.CopyN, so a corrupt count fails at
// the input's actual size instead of allocating what the header promises.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	magic := make([]byte, len(SnapshotMagic)+1)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotTruncated, err)
	}
	if string(magic[:len(SnapshotMagic)]) != SnapshotMagic {
		return nil, ErrSnapshotMagic
	}
	if magic[len(SnapshotMagic)] != SnapshotVersion {
		return nil, fmt.Errorf("%w: got %d, reader supports %d",
			ErrSnapshotVersion, magic[len(SnapshotMagic)], SnapshotVersion)
	}

	const headerBytes = 5*8 + 4 + 5*8 + 3*4 + 8 + 4
	header := make([]byte, headerBytes)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrSnapshotTruncated, err)
	}
	h := fnv.New64a()
	h.Write(header)

	off := 0
	getF := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(header[off:]))
		off += 8
		return v
	}
	getU32 := func() uint32 {
		v := binary.LittleEndian.Uint32(header[off:])
		off += 4
		return v
	}
	s := &Snapshot{}
	s.resolution = getF()
	s.origin = geom.V(getF(), getF(), getF())
	s.rootSize = getF()
	s.depth = int(getU32())
	s.params.LogOddsHit = getF()
	s.params.LogOddsMiss = getF()
	s.params.ClampMin = getF()
	s.params.ClampMax = getF()
	s.params.OccThresh = getF()
	s.clsNX = int(getU32())
	s.clsNY = int(getU32())
	s.clsNZ = int(getU32())
	s.leafUpdates = int(binary.LittleEndian.Uint64(header[off:]))
	off += 8
	nodeCount := getU32()

	// Geometry must reproduce exactly what New computes from it: the depth
	// and root size are redundant with the resolution, and the descent
	// machinery (32-entry path arrays, power-of-two key cube) relies on the
	// relationship holding.
	if !(s.resolution > 0) || math.IsInf(s.resolution, 0) ||
		s.depth < 0 || s.depth > 31 ||
		s.rootSize != s.resolution*float64(int(1)<<s.depth) ||
		!s.origin.IsFinite() ||
		s.clsNX < 1 || s.clsNY < 1 || s.clsNZ < 1 ||
		s.leafUpdates < 0 {
		return nil, fmt.Errorf("%w: invalid geometry", ErrSnapshotCorrupt)
	}
	if nodeCount < 1 || nodeCount > maxSnapshotNodes {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrSnapshotCorrupt, nodeCount)
	}

	var payload bytes.Buffer
	if got, err := io.CopyN(&payload, r, int64(nodeCount)*snapshotNodeBytes); err != nil {
		return nil, fmt.Errorf("%w: nodes: got %d of %d bytes",
			ErrSnapshotTruncated, got, int64(nodeCount)*snapshotNodeBytes)
	}
	h.Write(payload.Bytes())

	var footer [8]byte
	if _, err := io.ReadFull(r, footer[:]); err != nil {
		return nil, fmt.Errorf("%w: digest footer: %v", ErrSnapshotTruncated, err)
	}
	if binary.LittleEndian.Uint64(footer[:]) != h.Sum64() {
		return nil, fmt.Errorf("%w: digest mismatch", ErrSnapshotCorrupt)
	}

	raw := payload.Bytes()
	s.nodes = make([]node, nodeCount)
	for i := range s.nodes {
		b := raw[i*snapshotNodeBytes:]
		s.nodes[i].logOdds = math.Float64frombits(binary.LittleEndian.Uint64(b))
		s.nodes[i].firstChild = int32(binary.LittleEndian.Uint32(b[8:]))
	}
	// Child links must form the arena structure expand produces — root at
	// index 0, eight-child blocks appended behind it — before any descent
	// may trust them: fc is either noChild or the 8-aligned start of a block
	// that lies fully inside the arena.
	for i := range s.nodes {
		fc := s.nodes[i].firstChild
		if fc == noChild {
			continue
		}
		if fc < 1 || int(fc)+8 > len(s.nodes) || (fc-1)%8 != 0 {
			return nil, fmt.Errorf("%w: node %d has invalid child link %d", ErrSnapshotCorrupt, i, fc)
		}
	}

	// Rebuild the derived summary from the validated arena.
	t := s.Fork()
	t.rebuildSummary()
	s.counts = append([]uint16(nil), t.sum.counts...)
	s.sumNB = t.sum.nb
	return s, nil
}

// ReadSnapshotFile decodes the snapshot at path.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
