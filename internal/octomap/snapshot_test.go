package octomap

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mavfi/internal/geom"
)

// seedInsertions replays a deterministic insertion history onto tr: the
// "mapping pass" the fork equivalence tests share between the snapshot/fork
// path and the rebuild-from-scratch reference path.
func seedInsertions(tr *Tree, seed int64, rounds int) {
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < rounds; s++ {
		origin := randomInteriorPoint(rng)
		tr.InsertCloud(origin, randomScan(rng, origin, 70))
	}
}

// TestForkThenInsertMatchesRebuildBitExact is the core fork equivalence
// gate: a tree forked from a snapshot and then mutated must be byte-identical
// (node structure, log-odds bits, summary counts, leaf-update accounting,
// digest) to a fresh tree that received the seed insertions followed by the
// same mutations — the fork adds nothing and loses nothing.
func TestForkThenInsertMatchesRebuildBitExact(t *testing.T) {
	base := newTestTree()
	seedInsertions(base, 101, 5)
	snap := base.Snapshot()
	snapDigest := snap.Digest()

	fork := snap.Fork()
	rebuild := newTestTree()
	seedInsertions(rebuild, 101, 5)

	if fork.Digest() != rebuild.Digest() {
		t.Fatal("freshly forked tree digest differs from the rebuilt seed pass")
	}

	// Identical post-fork mutations on both.
	seedInsertions(fork, 202, 3)
	seedInsertions(rebuild, 202, 3)

	compareTrees(t, fork, rebuild)
	if fork.LeafUpdates() != rebuild.LeafUpdates() {
		t.Fatalf("leaf updates diverge: fork %d, rebuild %d", fork.LeafUpdates(), rebuild.LeafUpdates())
	}
	if got, want := fork.Digest(), rebuild.Digest(); got != want {
		t.Fatalf("digest diverges after identical mutations: fork %016x, rebuild %016x", got, want)
	}
	assertSummaryExact(t, fork, "forked tree after mutations")

	// The snapshot is immutable: mutating the fork never writes back.
	if snap.Digest() != snapDigest {
		t.Fatal("mutating a fork changed the snapshot")
	}
	if refork := snap.Fork(); refork.Digest() != snapDigest {
		t.Fatal("a later fork does not reproduce the snapshot")
	}
}

// TestForkIntoRecycledTreeBitExact pins the pooled path: ForkInto onto a
// dirty, structurally different tree (different map content, warm descent
// caches, armed classification cache) must produce exactly the state Fork
// produces into a fresh tree, and further identical mutations must keep the
// two bit-identical.
func TestForkIntoRecycledTreeBitExact(t *testing.T) {
	base := newTestTree()
	seedInsertions(base, 303, 4)
	snap := base.Snapshot()

	// A recycled tree with unrelated content and every cache warm.
	recycled := newTestTree()
	seedInsertions(recycled, 999, 6)
	recycled.EnableClassCache()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		recycled.At(randomInteriorPoint(rng))
	}

	snap.ForkInto(recycled)
	fresh := snap.Fork()
	compareTrees(t, recycled, fresh)
	if recycled.Digest() != fresh.Digest() {
		t.Fatal("ForkInto onto a recycled tree differs from a fresh Fork")
	}

	seedInsertions(recycled, 404, 2)
	seedInsertions(fresh, 404, 2)
	compareTrees(t, recycled, fresh)
	if recycled.Digest() != fresh.Digest() {
		t.Fatal("recycled and fresh forks diverge under identical mutations")
	}
	assertSummaryExact(t, recycled, "recycled fork after mutations")
}

// TestForkClassCacheTransparent pins the class-cache epoch behaviour after a
// fork: a recycled tree whose grid is full of pre-fork classifications must
// answer every post-fork query exactly as an uncached control does, through
// further mutations (which bump epochs from the restarted counter) and
// across both the classify and classProbe read paths.
func TestForkClassCacheTransparent(t *testing.T) {
	base := newTestTree()
	seedInsertions(base, 505, 4)
	snap := base.Snapshot()

	cached := newTestTree()
	seedInsertions(cached, 111, 5) // unrelated map the cache memoises
	cached.EnableClassCache()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		cached.At(randomInteriorPoint(rng))
	}

	snap.ForkInto(cached)
	control := snap.Fork() // never arms its cache

	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	for round := 0; round < 4; round++ {
		for i := 0; i < 150; i++ {
			p := randomInteriorPoint(rng)
			if got, want := cached.At(p), control.At(p); got != want {
				t.Fatalf("round %d: cached At(%v) = %v, uncached control = %v", round, p, got, want)
			}
			a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
			if got, want := cached.SegmentFree(a, b, q), control.SegmentFree(a, b, q); got != want {
				t.Fatalf("round %d: cached SegmentFree = %v, control = %v", round, got, want)
			}
		}
		// Mutate both identically; the fork's mutation counter runs from 0.
		seedInsertions(cached, int64(600+round), 1)
		seedInsertions(control, int64(600+round), 1)
	}
}

// TestForkMidEpochWrapRegression is the satellite-4 regression: fork into a
// recycled tree whose classification cache sits at the last epoch before the
// 6-bit wrap (63). Retiring that epoch on fork must clear the grid, because
// the post-wrap epoch restarts at 1 — the same stamp long-stale entries may
// still carry. Without the clear, a voxel classified under the old map would
// be served verbatim on the new one.
func TestForkMidEpochWrapRegression(t *testing.T) {
	// Old map: voxel v is Free (carved by a ray straight through it).
	v := geom.V(10.25, 10.25, 4.25)
	old := newTestTree()
	old.InsertRay(geom.V(2.25, 10.25, 4.25), geom.V(20.25, 10.25, 4.25), false)

	// New map: the same voxel is solidly Occupied.
	next := newTestTree()
	for i := 0; i < 4; i++ {
		next.MarkOccupied(v)
	}
	snap := next.Snapshot()

	old.EnableClassCache()
	if old.At(v) != Free {
		t.Fatal("setup: voxel not Free on the old map")
	}
	// The entry for v is now stamped with the current epoch. Rewind the
	// stamp to epoch 1 (a long-stale entry the intervening epochs never
	// overwrote), then advance the cache to the pre-wrap edge.
	x, y, z, ok := old.key(v)
	if !ok {
		t.Fatal("setup: voxel keys outside the volume")
	}
	c := &old.cls
	idx := (z*c.ny+y)*c.nx + x
	c.grid[idx] = 1<<2 | uint8(Free)
	c.epoch = 63
	c.mut = old.mut

	snap.ForkInto(old)
	if got := old.At(v); got != Occupied {
		t.Fatalf("post-fork classification served a stale pre-wrap cache entry: got %v, want Occupied", got)
	}
	// And the epoch actually wrapped the way classify's own wrap does.
	if old.cls.epoch != 1 {
		t.Fatalf("fork across the epoch wrap left epoch %d, want 1", old.cls.epoch)
	}
}

// TestForkPrescanExactUnderUnknownIsFree pins the bundleAllFree prescan on
// forked trees: under the optimistic policy the prescan consults the summary
// counts the fork copied, and its answers must match both an uncached
// control fork and the summary recount oracle while the forked tree keeps
// mutating.
func TestForkPrescanExactUnderUnknownIsFree(t *testing.T) {
	base := newTestTree()
	seedInsertions(base, 707, 5)
	snap := base.Snapshot()

	fork := snap.Fork()
	control := snap.Fork()
	control.EnableClassCache()

	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 4; round++ {
		assertSummaryExact(t, fork, "forked tree prescan round")
		for i := 0; i < 120; i++ {
			a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
			if got, want := fork.SegmentFree(a, b, q), control.SegmentFree(a, b, q); got != want {
				t.Fatalf("round %d: fork SegmentFree = %v, control = %v", round, got, want)
			}
			gd, gok := fork.FirstBlocked(a, b, q)
			wd, wok := control.FirstBlocked(a, b, q)
			if gok != wok || gd != wd {
				t.Fatalf("round %d: fork FirstBlocked = (%v,%v), control = (%v,%v)", round, gd, gok, wd, wok)
			}
		}
		seedInsertions(fork, int64(800+round), 1)
		seedInsertions(control, int64(800+round), 1)
	}
}

// TestForkRandomizedInterleavedProperty is the randomized property gate: a
// forked tree and its rebuilt reference are driven through interleaved
// insertions, markings, and queries — including re-snapshotting the fork
// mid-history and chaining a second fork — and must stay bit-identical in
// every observable at every step.
func TestForkRandomizedInterleavedProperty(t *testing.T) {
	rounds := 8
	if testing.Short() {
		rounds = 4
	}
	base := newTestTree()
	seedInsertions(base, 909, 3)
	snap := base.Snapshot()

	fork := snap.Fork()
	rebuild := newTestTree()
	seedInsertions(rebuild, 909, 3)

	rng := rand.New(rand.NewSource(13))
	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	qStrict := QueryPolicy{Radius: 0.55}
	for round := 0; round < rounds; round++ {
		switch round % 3 {
		case 0:
			origin := randomInteriorPoint(rng)
			scan := randomScan(rng, origin, 50)
			fork.InsertCloud(origin, scan)
			rebuild.InsertCloud(origin, scan)
		case 1:
			for i := 0; i < 12; i++ {
				p := randomInteriorPoint(rng)
				fork.MarkOccupied(p)
				rebuild.MarkOccupied(p)
				if rng.Intn(2) == 0 {
					fork.MarkFree(p)
					rebuild.MarkFree(p)
				}
			}
		case 2:
			// Chain: snapshot the fork mid-history and continue on a fresh
			// fork of it (the rebuild side continues unchanged — the chained
			// fork must be transparent).
			fork = fork.Snapshot().Fork()
		}
		for i := 0; i < 60; i++ {
			p := randomInteriorPoint(rng)
			if a, b := fork.At(p), rebuild.At(p); a != b {
				t.Fatalf("round %d: At(%v) = %v vs %v", round, p, a, b)
			}
			fp, fk := fork.Prob(p)
			rp, rk := rebuild.Prob(p)
			if fp != rp || fk != rk {
				t.Fatalf("round %d: Prob(%v) = (%v,%v) vs (%v,%v)", round, p, fp, fk, rp, rk)
			}
			a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
			if fa, ra := fork.SegmentFree(a, b, q), rebuild.SegmentFree(a, b, q); fa != ra {
				t.Fatalf("round %d: SegmentFree = %v vs %v", round, fa, ra)
			}
			if fa, ra := fork.SegmentFree(a, b, qStrict), rebuild.SegmentFree(a, b, qStrict); fa != ra {
				t.Fatalf("round %d: strict SegmentFree = %v vs %v", round, fa, ra)
			}
		}
		if fork.Digest() != rebuild.Digest() {
			t.Fatalf("round %d: digests diverge", round)
		}
		assertSummaryExact(t, fork, "property round")
	}
}

// TestSnapshotSerializationRoundTrip pins the wire format: a decoded
// snapshot must digest identically to its source, fork into a bit-identical
// tree (including the recounted summary), and survive the file helpers.
func TestSnapshotSerializationRoundTrip(t *testing.T) {
	base := newTestTree()
	seedInsertions(base, 1111, 5)
	snap := base.Snapshot()

	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.Digest() != snap.Digest() {
		t.Fatal("round-tripped snapshot digest differs")
	}
	a, b := snap.Fork(), got.Fork()
	compareTrees(t, a, b)
	if a.LeafUpdates() != b.LeafUpdates() {
		t.Fatalf("leaf updates diverge across serialization: %d vs %d", a.LeafUpdates(), b.LeafUpdates())
	}
	assertSummaryExact(t, b, "deserialized fork (recounted summary)")

	path := filepath.Join(t.TempDir(), "seed.snap")
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	fromFile, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if fromFile.Digest() != snap.Digest() {
		t.Fatal("file round trip digest differs")
	}
	if !fromFile.Matches(geom.Box(geom.V(0, 0, 0), geom.V(32, 32, 16)), 0.5) {
		t.Fatal("file round trip lost the world geometry")
	}
	if fromFile.Matches(geom.Box(geom.V(0, 0, 0), geom.V(64, 64, 16)), 0.5) {
		t.Fatal("Matches accepted a different world")
	}
}

// TestSnapshotReadRejectsCorrupt drives the decoder through the corruption
// taxonomy: wrong magic, unsupported version, truncation at every section
// boundary, bit flips under the digest, and structurally invalid child links
// with a forged (recomputed) digest. Every case must fail with the right
// typed error and none may panic or over-allocate.
func TestSnapshotReadRejectsCorrupt(t *testing.T) {
	base := newTestTree()
	seedInsertions(base, 1212, 2)
	snap := base.Snapshot()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	check := func(name string, data []byte, want error) {
		t.Helper()
		_, err := ReadSnapshot(bytes.NewReader(data))
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}

	check("empty", nil, ErrSnapshotTruncated)
	badMagic := append([]byte("NOTASEED!"), valid[len(SnapshotMagic):]...)
	check("bad magic", badMagic, ErrSnapshotMagic)
	badVer := append([]byte(nil), valid...)
	badVer[len(SnapshotMagic)] = 99
	check("bad version", badVer, ErrSnapshotVersion)
	check("truncated header", valid[:len(SnapshotMagic)+1+10], ErrSnapshotTruncated)
	check("truncated nodes", valid[:len(valid)/2], ErrSnapshotTruncated)
	check("missing footer", valid[:len(valid)-8], ErrSnapshotTruncated)

	flipped := append([]byte(nil), valid...)
	flipped[len(valid)/2] ^= 0x40
	check("bit flip under digest", flipped, ErrSnapshotCorrupt)

	// A declared node count far beyond the payload must fail as truncation
	// (the io.CopyN growth rule), never as a giant allocation.
	huge := append([]byte(nil), valid...)
	countOff := len(SnapshotMagic) + 1 + 5*8 + 4 + 5*8 + 3*4 + 8
	huge[countOff] = 0xff
	huge[countOff+1] = 0xff
	huge[countOff+2] = 0xff
	huge[countOff+3] = 0x07 // ~134M nodes declared, payload unchanged
	check("huge declared count", huge, ErrSnapshotTruncated)

	// Forged structural corruption: break a child link, then recompute the
	// digest so only the structural validation can catch it.
	reforge := func(mutate func(body []byte)) []byte {
		forged := append([]byte(nil), valid...)
		body := forged[len(SnapshotMagic)+1 : len(forged)-8]
		mutate(body)
		h := fnvSum64(body)
		putLE64(forged[len(forged)-8:], h)
		return forged
	}
	headerLen := 5*8 + 4 + 5*8 + 3*4 + 8 + 4
	check("out-of-range child link", reforge(func(body []byte) {
		// First node's firstChild → beyond the arena.
		putLE32(body[headerLen+8:], 1+8*1000000)
	}), ErrSnapshotCorrupt)
	check("misaligned child link", reforge(func(body []byte) {
		putLE32(body[headerLen+8:], 2)
	}), ErrSnapshotCorrupt)
	check("zero nodes", reforge(func(body []byte) {
		putLE32(body[headerLen-4:], 0)
	}), ErrSnapshotCorrupt)
	check("broken geometry", reforge(func(body []byte) {
		putLE64(body[4*8:], 0x7ff8000000000001) // NaN rootSize
	}), ErrSnapshotCorrupt)
}

// Tiny local codec helpers for the forgery cases.
func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putLE64(b []byte, v uint64) {
	putLE32(b, uint32(v))
	putLE32(b[4:], uint32(v>>32))
}

func fnvSum64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// TestSnapshotForkDifferentWorldsThroughOnePool exercises ForkInto across
// geometry changes (the pooled-tree worst case): alternating forks of two
// different worlds through one recycled tree must always land bit-identical
// to fresh forks.
func TestSnapshotForkDifferentWorldsThroughOnePool(t *testing.T) {
	small := newTestTree()
	seedInsertions(small, 21, 3)
	big := New(geom.Box(geom.V(0, 0, 0), geom.V(64, 64, 20)), 0.5, DefaultParams())
	rng := rand.New(rand.NewSource(22))
	for s := 0; s < 3; s++ {
		origin := geom.V(rng.Float64()*60+2, rng.Float64()*60+2, rng.Float64()*16+2)
		big.InsertCloud(origin, randomScan(rng, origin, 70))
	}
	snapSmall, snapBig := small.Snapshot(), big.Snapshot()

	pooled := new(Tree)
	for i := 0; i < 4; i++ {
		snapSmall.ForkInto(pooled)
		pooled.EnableClassCache()
		pooled.At(geom.V(5, 5, 5))
		if pooled.Digest() != snapSmall.Digest() {
			t.Fatalf("iteration %d: pooled fork of small world diverges", i)
		}
		snapBig.ForkInto(pooled)
		pooled.EnableClassCache()
		pooled.At(geom.V(50, 50, 10))
		if pooled.Digest() != snapBig.Digest() {
			t.Fatalf("iteration %d: pooled fork of big world diverges", i)
		}
	}
}

// TestSnapshotFileBadPath covers the file-helper error paths.
func TestSnapshotFileBadPath(t *testing.T) {
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "missing.snap")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
	if err := WriteSnapshotFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.snap"), newTestTree().Snapshot()); err == nil {
		t.Fatal("WriteSnapshotFile into a missing directory succeeded")
	}
}
