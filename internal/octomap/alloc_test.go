package octomap

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
	"mavfi/internal/testutil"
)

// TestInsertCloudSteadyStateAllocFree pins the PR2 contract on the mapping
// kernel: once the tree has observed a region (nodes expanded, scan scratch
// sized), re-integrating scans over it must allocate nothing — the node
// arena only grows when new space is observed, and then amortised across
// thousands of nodes.
func TestInsertCloudSteadyStateAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are meaningless under -race instrumentation")
	}
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(32, 32, 16))
	tr := New(bounds, 0.5, DefaultParams())
	rng := rand.New(rand.NewSource(3))
	origin := geom.V(16, 16, 8)
	pts := randomScan(rng, origin, 300)
	tr.InsertCloud(origin, pts) // warm: expand nodes, size scratch
	if allocs := testing.AllocsPerRun(20, func() {
		tr.InsertCloud(origin, pts)
	}); allocs != 0 {
		t.Fatalf("steady-state InsertCloud allocates %v objects per scan, want 0", allocs)
	}
}

// TestCollisionQueriesAllocFree pins the PR3 contract on the query side,
// extended in PR 5 over every fused-walker regime: the DDA segment queries
// and the armed classification cache allocate nothing per probe (the cache
// grid is a one-time EnableClassCache allocation), across the prescan fast
// path, walks the prescan declines, the slab-clip delegation for offset rays
// leaving the volume, zero-radius probes, and the pessimistic policy the
// summary stands aside for.
func TestCollisionQueriesAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are meaningless under -race instrumentation")
	}
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(32, 32, 16))
	tr := New(bounds, 0.5, DefaultParams())
	rng := rand.New(rand.NewSource(4))
	origin := geom.V(16, 16, 8)
	tr.InsertCloud(origin, randomScan(rng, origin, 300))
	tr.EnableClassCache()
	q := QueryPolicy{UnknownIsFree: true, Radius: 0.55}
	qPess := QueryPolicy{UnknownIsFree: false, Radius: 0.55}
	qThin := QueryPolicy{UnknownIsFree: true}
	a, b := geom.V(3, 3, 3), geom.V(29, 28, 9)
	edgeA, edgeB := geom.V(0.3, 5, 0.3), geom.V(2, 9, 0.4) // offset rays exit the volume
	free1, free2 := geom.V(3.2, 24.4, 12.1), geom.V(5.6, 26.0, 12.8)
	if allocs := testing.AllocsPerRun(50, func() {
		tr.SegmentFree(a, b, q)
		tr.FirstBlocked(a, b, q)
		tr.SegmentFree(free1, free2, q) // prescan fast path in unobserved space
		tr.FirstBlocked(free1, free2, q)
		tr.SegmentFree(edgeA, edgeB, q)
		tr.FirstBlocked(edgeA, edgeB, q) // slab-clip delegation
		tr.SegmentFree(a, b, qPess)
		tr.SegmentFree(a, b, qThin)
		tr.PointFree(a, q)
	}); allocs != 0 {
		t.Fatalf("steady-state collision queries allocate %v objects, want 0", allocs)
	}
}
