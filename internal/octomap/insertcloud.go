package octomap

import "mavfi/internal/geom"

// RayPoint is one depth-scan return fed to InsertCloud: the world-frame
// endpoint of a sensor ray and whether the ray actually hit a surface (a
// false Hit means the ray ran to max range and carves free space only).
type RayPoint struct {
	End geom.Vec3
	Hit bool
}

// InsertCloud integrates one whole depth scan sharing a single sensor
// origin. It produces bit-identical log-odds to calling InsertRay once per
// point in slice order, but instead of one tree descent per ray step it
// walks all rays once, groups the hit/miss evidence per unique voxel key —
// preserving each voxel's delta sequence in ray order, so the clamped
// log-odds accumulation is reproduced exactly — and then applies one descent
// per unique voxel. Scans from the same origin overlap heavily near the
// sensor, so unique voxels number a small fraction of ray steps.
//
// The grouping scratch is owned by the Tree and reused across scans;
// steady-state calls allocate nothing (beyond amortised node-arena growth
// when the scan observes new space).
func (t *Tree) InsertCloud(origin geom.Vec3, pts []RayPoint) {
	if len(pts) == 0 {
		return
	}
	t.scan.begin(t, origin, pts)
	for i := range pts {
		t.recordRay(origin, pts[i].End, pts[i].Hit)
	}
	t.scan.flush(t)
}

// recordRay replays the evidence schedule for one ray into the scan batch.
// The schedule itself lives in integrateRay, shared with InsertRay, so the
// two paths cannot drift apart.
func (t *Tree) recordRay(origin, end geom.Vec3, hit bool) {
	t.integrateRay(origin, end, hit, true)
}

// scanBatch groups one scan's evidence per unique voxel key. Voxels are
// looked up through a dense epoch-stamped grid spanning the scan's key-space
// bounding box (a depth scan is spatially compact — bounded by the sensor
// range — so the grid stays small and O(1) per lookup, where a hash map
// would dominate the batching win). Each voxel's deltas form a linked list
// through the events pool, preserving ray order.
type scanBatch struct {
	// Dense voxel→entry grid over the scan's key-space AABB. Each cell
	// packs an 8-bit epoch stamp with a 24-bit entry index, so the hot
	// record path touches exactly one cache line per ray step; the grid is
	// reset only when the epoch counter wraps (every 255 scans).
	grid             []uint32 // epoch<<24 | entry index
	epoch            uint32   // 1..255
	nx, ny, nz       int
	minX, minY, minZ int
	entries          []scanEntry
	events           []scanEvent
}

// scanEntry is one unique voxel touched by the scan, with its delta list.
type scanEntry struct {
	x, y, z    int32
	head, tail int32
}

// scanEvent is one evidence application in a voxel's per-scan sequence. An
// evidence delta is always one of the two sensor-model constants, so a hit
// flag replaces the float and halves the event traffic.
type scanEvent struct {
	next int32
	hit  bool
}

// maxScanAxisCells caps the scan grid's extent per axis. A legitimate depth
// scan is bounded by the sensor range (a 20 m camera spans ≤ 82 half-metre
// voxels per axis), but a fault-injected point — the octomap kernel is an
// injection site, so a corrupted endpoint coordinate of ~1e300 is a routine
// campaign input — would otherwise stretch the bounding box across the
// whole root volume and balloon the grid to hundreds of megabytes. Axes
// over the cap are re-centred on the scan origin; voxels outside the capped
// window take the out-of-grid immediate-apply fallback in record, which
// preserves per-voxel delta order.
const maxScanAxisCells = 96

// begin sizes the grid to the scan's key-space bounding box (clipped to the
// root volume and the per-axis cap, with a one-voxel safety margin) and
// starts a fresh epoch.
func (s *scanBatch) begin(t *Tree, origin geom.Vec3, pts []RayPoint) {
	lo, hi := origin, origin
	for i := range pts {
		lo = lo.Min(pts[i].End)
		hi = hi.Max(pts[i].End)
	}
	maxKey := int(t.rootSize/t.resolution) - 1
	clampKey := func(v float64) int {
		k := int(v / t.resolution)
		if k < 0 {
			return 0
		}
		if k > maxKey {
			return maxKey
		}
		return k
	}
	rel0, rel1 := lo.Sub(t.origin), hi.Sub(t.origin)
	s.minX, s.minY, s.minZ = clampKey(rel0.X)-1, clampKey(rel0.Y)-1, clampKey(rel0.Z)-1
	s.nx = clampKey(rel1.X) + 1 - s.minX + 1
	s.ny = clampKey(rel1.Y) + 1 - s.minY + 1
	s.nz = clampKey(rel1.Z) + 1 - s.minZ + 1

	relO := origin.Sub(t.origin)
	capAxis := func(min, n *int, originKey int) {
		if *n > maxScanAxisCells {
			*min = originKey - maxScanAxisCells/2
			*n = maxScanAxisCells
		}
	}
	capAxis(&s.minX, &s.nx, clampKey(relO.X))
	capAxis(&s.minY, &s.ny, clampKey(relO.Y))
	capAxis(&s.minZ, &s.nz, clampKey(relO.Z))

	if need := s.nx * s.ny * s.nz; need > len(s.grid) {
		s.grid = make([]uint32, need)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 1<<8 { // epoch wrapped: stamps are ambiguous, reset them
		clear(s.grid)
		s.epoch = 1
	}
	s.entries = s.entries[:0]
	s.events = s.events[:0]
}

// record appends one hit/miss application to voxel (x,y,z)'s per-scan
// sequence.
func (s *scanBatch) record(t *Tree, x, y, z int, hit bool) {
	gx, gy, gz := x-s.minX, y-s.minY, z-s.minZ
	if gx < 0 || gy < 0 || gz < 0 || gx >= s.nx || gy >= s.ny || gz >= s.nz {
		// Outside the grid (cannot happen for keys on a clipped walk, kept
		// as a safety net). Applying immediately preserves per-voxel delta
		// order: a voxel is either always in-grid or always out.
		if hit {
			t.updateKey(x, y, z, t.params.LogOddsHit)
		} else {
			t.updateKey(x, y, z, t.params.LogOddsMiss)
		}
		return
	}
	i := (gz*s.ny+gy)*s.nx + gx
	var e int32
	if v := s.grid[i]; v>>24 != s.epoch {
		e = int32(len(s.entries))
		s.entries = append(s.entries, scanEntry{x: int32(x), y: int32(y), z: int32(z), head: -1, tail: -1})
		s.grid[i] = s.epoch<<24 | uint32(e)
	} else {
		e = int32(v & 0xffffff)
	}
	ev := int32(len(s.events))
	s.events = append(s.events, scanEvent{next: -1, hit: hit})
	ent := &s.entries[e]
	if ent.tail >= 0 {
		s.events[ent.tail].next = ev
	} else {
		ent.head = ev
	}
	ent.tail = ev
}

// flush applies every voxel's delta sequence with a single descent per
// voxel. Entries are replayed in first-touch order, which follows the ray
// walk and keeps the descent path cache hot.
func (s *scanBatch) flush(t *Tree) {
	hitDelta, missDelta := t.params.LogOddsHit, t.params.LogOddsMiss
	for i := range s.entries {
		ent := &s.entries[i]
		n := t.descend(int(ent.x), int(ent.y), int(ent.z))
		for e := ent.head; e >= 0; e = s.events[e].next {
			if s.events[e].hit {
				t.applyDelta(n, hitDelta)
			} else {
				t.applyDelta(n, missDelta)
			}
		}
	}
	s.entries = s.entries[:0]
	s.events = s.events[:0]
}
