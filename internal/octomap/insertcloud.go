package octomap

import "mavfi/internal/geom"

// RayPoint is one depth-scan return fed to InsertCloud: the world-frame
// endpoint of a sensor ray and whether the ray actually hit a surface (a
// false Hit means the ray ran to max range and carves free space only).
type RayPoint struct {
	End geom.Vec3
	Hit bool
}

// InsertCloud integrates one whole depth scan sharing a single sensor
// origin. It is exactly equivalent to calling InsertRay once per point in
// slice order — the same integrateRay evidence schedule runs for every ray,
// so the two paths cannot drift apart — and the equivalence tests pin the
// resulting log-odds bit-for-bit.
//
// History: PR 2 implemented this call with a per-voxel grouping layer (walk
// all rays once, group hit/miss evidence per unique voxel, one descent per
// unique voxel). PR 2's memoised descent caches then made single descents so
// cheap that the grouping bookkeeping became pure overhead (~15% of mission
// time), so PR 3 collapsed it back to the straight per-ray loop — keeping
// this API as the mission-path batching boundary (and as the place a future
// grouping layer would slot back in, should descents ever get expensive
// again). Steady-state calls allocate nothing beyond amortised node-arena
// growth when the scan observes new space.
func (t *Tree) InsertCloud(origin geom.Vec3, pts []RayPoint) {
	for i := range pts {
		t.integrateRay(origin, pts[i].End, pts[i].Hit)
	}
}
