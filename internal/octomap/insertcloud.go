package octomap

import (
	"math"

	"mavfi/internal/geom"
)

// RayPoint is one depth-scan return fed to InsertCloud: the world-frame
// endpoint of a sensor ray and whether the ray actually hit a surface (a
// false Hit means the ray ran to max range and carves free space only).
type RayPoint struct {
	End geom.Vec3
	Hit bool
}

// InsertCloud integrates one whole depth scan sharing a single sensor
// origin. It is exactly equivalent to calling InsertRay once per point in
// slice order — the same integrateRay evidence schedule runs for every ray,
// so the two paths cannot drift apart — and the equivalence tests pin the
// resulting log-odds bit-for-bit.
//
// History: PR 2 implemented this call with a per-voxel grouping layer (walk
// all rays once, group hit/miss evidence per unique voxel, one descent per
// unique voxel). PR 2's memoised descent caches then made single descents so
// cheap that the grouping bookkeeping became pure overhead (~15% of mission
// time), so PR 3 collapsed it back to the straight per-ray loop — keeping
// this API as the mission-path batching boundary (and as the place a future
// grouping layer would slot back in, should descents ever get expensive
// again). Steady-state calls allocate nothing beyond amortised node-arena
// growth when the scan observes new space.
func (t *Tree) InsertCloud(origin geom.Vec3, pts []RayPoint) {
	for i := range pts {
		t.integrateRay(origin, pts[i].End, pts[i].Hit)
	}
}

// InsertCloudApprox is InsertCloud with the two opt-in approximate-mode
// levers, composable independently:
//
// Near-field subsampling (stride > 1): every ray still lands its endpoint
// evidence (hits are never dropped), but only every stride-th ray carves
// the free-space segment within nearRadius of the origin — the other rays
// start their carve at the near-field boundary, and rays that end inside
// it contribute endpoint evidence only. Rays within a scan share the
// near-origin cone, so the skipped carving is largely evidence the kept
// rays (and the next scans) re-deliver.
//
// Saturated-evidence memoization (memo): a ray whose endpoint voxel is
// already clamped in the direction of the ray's own evidence — a hit into
// a voxel at the upper log-odds clamp, a free endpoint at the lower clamp —
// is skipped entirely, one memoised lookup instead of a full carve. On a
// map forked from a converged golden seed nearly every ray into already-
// mapped space qualifies, which is what makes cross-mission memoization
// pay: the fork carries the prior campaign evidence, and re-confirming it
// would be clamped to a no-op at the endpoint anyway. A ray that sees
// anything new — an unknown endpoint, or evidence disagreeing with the
// clamp (an intruder appearing in known-free space, a mapped wall gone) —
// never satisfies the skip test and integrates in full, so novelty always
// lands. The cost is the same free-space staleness the stride lever trades
// on: intermediate voxels of a skipped ray are not re-carved. The fidelity
// study quantifies what each lever actually costs per setting.
//
// stride <= 1 with memo off is exactly InsertCloud (the same per-ray loop,
// bit-for-bit), which is what lets the pipeline call this unconditionally.
func (t *Tree) InsertCloudApprox(origin geom.Vec3, pts []RayPoint, nearRadius float64, stride int, memo bool) {
	if stride <= 1 && !memo {
		t.InsertCloud(origin, pts)
		return
	}
	nearSq := nearRadius * nearRadius
	for i := range pts {
		if memo && t.endpointSaturated(pts[i]) {
			continue
		}
		if stride <= 1 || i%stride == 0 {
			t.integrateRay(origin, pts[i].End, pts[i].Hit)
			continue
		}
		d := pts[i].End.Sub(origin)
		lsq := d.LenSq()
		if lsq <= nearSq {
			// The whole ray is near-field: endpoint evidence only.
			if ex, ey, ez, ok := t.key(pts[i].End); ok {
				if pts[i].Hit {
					t.updateKey(ex, ey, ez, t.params.LogOddsHit)
				} else {
					t.updateKey(ex, ey, ez, t.params.LogOddsMiss)
				}
			}
			continue
		}
		start := origin.Add(d.Scale(nearRadius / math.Sqrt(lsq)))
		t.integrateRay(start, pts[i].End, pts[i].Hit)
	}
}

// endpointSaturated reports whether p's evidence is already clamped in the
// direction the ray would push it, making the whole ray a candidate for
// memo skipping. Out-of-bounds and unknown endpoints are never saturated.
func (t *Tree) endpointSaturated(p RayPoint) bool {
	x, y, z, ok := t.key(p.End)
	if !ok {
		return false
	}
	lo, known := t.lookup(x, y, z)
	if !known {
		return false
	}
	if p.Hit {
		return lo >= t.params.ClampMax
	}
	return lo <= t.params.ClampMin
}
