// Package octomap implements the probabilistic occupancy octree the
// perception stage maintains, following the OctoMap design: leaf voxels hold
// clamped log-odds occupancy updated by hit/miss evidence from depth-sensor
// ray casts, and queries descend the tree from a cubic root volume.
//
// The map deliberately distinguishes three voxel states — occupied, free,
// and unknown — because the planners treat unknown space optimistically
// (traversable until observed), which is what lets the pipeline start
// planning before the map is complete. "Known" is encoded without a flag
// bit, by the markKnown epsilon convention: a voxel is known iff its
// log-odds is non-zero, and evidence whose clamped sum lands on exactly 0 is
// nudged to a 1e-9 epsilon (see applyDelta for the precise guard and why the
// case cannot arise under the default sensor model).
//
// Navigation queries (PointFree, SegmentFree, FirstBlocked) enumerate
// crossed voxels with the same DDA walk the insertion path uses, and both
// read and write descents are memoised; see classCache for the per-voxel
// classification cache the planners arm per plan invocation.
package octomap

import (
	"math"
	"math/bits"

	"mavfi/internal/geom"
)

// Occupancy classifies a queried voxel.
type Occupancy int

const (
	// Unknown voxels have never received evidence.
	Unknown Occupancy = iota
	// Free voxels have log-odds below the occupancy threshold.
	Free
	// Occupied voxels have log-odds at or above the threshold.
	Occupied
)

// Params are the sensor-model constants, defaulting to the standard OctoMap
// values.
type Params struct {
	LogOddsHit  float64 // evidence added on a ray endpoint hit
	LogOddsMiss float64 // evidence added on a ray pass-through
	ClampMin    float64 // lower log-odds clamp
	ClampMax    float64 // upper log-odds clamp
	OccThresh   float64 // log-odds at or above which a voxel is Occupied
}

// DefaultParams returns the standard OctoMap sensor model: P(hit)=0.7,
// P(miss)=0.4, clamps at P=0.12 and P=0.97, threshold P=0.5.
func DefaultParams() Params {
	return Params{
		LogOddsHit:  logit(0.7),
		LogOddsMiss: logit(0.4),
		ClampMin:    logit(0.12),
		ClampMax:    logit(0.97),
		OccThresh:   0,
	}
}

func logit(p float64) float64 { return math.Log(p / (1 - p)) }

// Tree is the occupancy octree over a cubic volume.
//
// Nodes live in one contiguous arena (t.nodes) and reference their children
// by index, not pointer: a node is 16 bytes instead of a heap object with
// eight child pointers, the eight children of a node are adjacent in memory,
// and the whole arena is pointer-free — the garbage collector never scans
// the map and the hot path emits no write barriers. Expansion always
// materialises all eight children at once (the original invariant), so a
// node is either a leaf (firstChild < 0) or fully interior.
type Tree struct {
	params     Params
	resolution float64
	depth      int       // tree depth; leaves are resolution-sized
	origin     geom.Vec3 // minimum corner of the root cube
	rootSize   float64   // side length of the root cube
	maxKey     int       // rootSize/resolution: exclusive per-axis key bound
	keyMask    int       // maxKey - 1; maxKey is always a power of two
	invRes     float64   // 1/resolution
	mulKey     bool      // resolution is a power of two: key() may multiply
	nodes      []node    // node arena; index 0 is the root

	path pathCache  // memoised write-path descent for coherent updates
	qry  queryCache // memoised read-path descent for coherent queries
	mut  uint64     // bumped on every tree mutation; invalidates qry and cls
	cls  classCache // memoised per-voxel classifications for collision queries
	sum  occSummary // per-8³-block occupied-leaf counts for the probe walkers

	leafUpdates int // total leaf evidence updates, for overhead accounting

	// probeRec, when non-nil, observes every uncached classification in probe
	// order. Test instrumentation only (the fused-vs-sequential equivalence
	// suite records probe sequences through it); always nil in production, and
	// the check sits on the classification miss path, never on the cached one.
	probeRec func(x, y, z int)
}

// node is one octree cell: a leaf when firstChild < 0, otherwise its eight
// children are nodes[firstChild .. firstChild+7] in Morton child order.
type node struct {
	logOdds    float64
	firstChild int32
}

const noChild = int32(-1)

// pathCache memoises the most recent root→leaf write descent. Consecutive
// evidence updates come from voxel-stepped rays and are therefore spatially
// coherent: the next key usually shares all but the lowest level(s) of its
// path with the previous one, so the descent restarts at the first differing
// level instead of at the root. Entries are arena indices, which stay valid
// across arena growth and in-place expansion.
type pathCache struct {
	valid   bool
	x, y, z int
	parents [32]int32 // parents[level] chose its child with bit `level`
	leaf    int32
}

// queryCache memoises the most recent lookup descent the same way. Reads
// stop early at coarse leaves, so the cache also records where the walk
// terminated; any tree mutation (t.mut) invalidates it, which keeps the
// planner's query bursts fast without ever serving stale structure.
type queryCache struct {
	mut      uint64
	valid    bool
	x, y, z  int
	parents  [32]int32
	endLevel int // level the walk stopped before consuming; -1 = full depth
	terminal int32
}

// classCache memoises per-voxel occupancy classifications for the collision
// query paths (At, PointFree, SegmentFree, FirstBlocked). A planner
// invocation probes the same voxels hundreds of times — RRT* re-checks
// overlapping segments from choose-parent, rewiring, and goal connection —
// and between two scan integrations the map cannot change, so a
// classification computed once is valid for every later probe of the same
// voxel. The cache is a dense epoch-stamped byte grid over the leaf keys of
// the world bounds: one array index replaces a root→leaf descent. Any tree
// mutation bumps t.mut, which retires the whole epoch in O(1); the stored
// classifications are exactly what lookup would return, so cached and
// uncached queries are bit-identical.
//
// The grid is allocated on demand by EnableClassCache (the planners arm it
// through planning.PlanCacher on their first Plan invocation), so trees used
// only for insertion — detector training, map-building tools — never pay the
// footprint.
type classCache struct {
	grid       []uint8 // epoch<<2 | occupancy; 0 = never written
	epoch      uint8   // current epoch, 1..63; 0 = not yet started
	mut        uint64  // tree mutation count the current epoch is valid for
	nx, ny, nz int     // leaf-key extents of the cached volume (the New bounds)
}

// maxClassCacheCells caps the classification grid footprint (bytes). The
// paper's largest world (Farm, 80×80×20 m at 0.5 m) needs ~1M cells; a world
// over the cap simply runs uncached.
const maxClassCacheCells = 4 << 20

// New creates a tree covering the axis-aligned cube that contains bounds,
// with the given leaf resolution in metres.
func New(bounds geom.AABB, resolution float64, params Params) *Tree {
	if resolution <= 0 {
		resolution = 0.5
	}
	size := bounds.Size()
	maxSide := math.Max(size.X, math.Max(size.Y, size.Z))
	depth := 0
	rootSize := resolution
	for rootSize < maxSide {
		rootSize *= 2
		depth++
	}
	t := &Tree{
		params:     params,
		resolution: resolution,
		depth:      depth,
		origin:     bounds.Min,
		rootSize:   rootSize,
		maxKey:     int(rootSize / resolution),
		invRes:     1 / resolution,
		// Pre-size the arena so typical missions never pay an arena copy;
		// 1<<17 16-byte nodes is 2 MiB against maps that grow to several
		// hundred thousand nodes.
		nodes: make([]node, 1, 1<<17),
	}
	// When the resolution is a power of two (the 0.5 m default), 1/resolution
	// is exact and x*invRes == x/resolution bit-for-bit for every float, so
	// key() may use the cheaper multiply.
	frac, _ := math.Frexp(resolution)
	t.mulKey = frac == 0.5
	t.nodes[0] = node{firstChild: noChild}
	keyExtent := func(side float64) int {
		n := int(math.Ceil(side / resolution))
		if n < 1 {
			n = 1
		}
		return n
	}
	t.cls.nx = keyExtent(size.X)
	t.cls.ny = keyExtent(size.Y)
	t.cls.nz = keyExtent(size.Z)
	t.keyMask = t.maxKey - 1
	t.initSummary()
	return t
}

// EnableClassCache arms the per-voxel classification cache (see classCache).
// Idempotent; a no-op when the world bounds exceed the footprint cap.
// Planning consumers arm it through planning.PlanCacher/BeginPlan.
func (t *Tree) EnableClassCache() {
	c := &t.cls
	if c.grid != nil {
		return
	}
	if cells := c.nx * c.ny * c.nz; cells <= maxClassCacheCells {
		c.grid = make([]uint8, cells)
	}
}

// classify returns the occupancy classification of leaf key (x,y,z),
// memoised in the classification cache when it is armed and covers the key.
func (t *Tree) classify(x, y, z int) Occupancy {
	c := &t.cls
	if c.grid == nil || x < 0 || y < 0 || z < 0 || x >= c.nx || y >= c.ny || z >= c.nz {
		return t.classifySlow(x, y, z)
	}
	if c.mut != t.mut || c.epoch == 0 {
		// The tree mutated since this epoch was stamped: retire every cached
		// entry at once by moving to a fresh epoch.
		c.mut = t.mut
		c.epoch++
		if c.epoch == 1<<6 {
			clear(c.grid)
			c.epoch = 1
		}
	}
	i := (z*c.ny+y)*c.nx + x
	if v := c.grid[i]; v>>2 == c.epoch {
		return Occupancy(v & 3)
	}
	o := t.classifySlow(x, y, z)
	c.grid[i] = c.epoch<<2 | uint8(o)
	return o
}

// classProbe is a per-query view of the classification cache with the
// epoch/mutation bookkeeping hoisted out of the per-voxel path. The
// collision queries classify one voxel per DDA step across up to seven rays
// per call; re-checking the mutation counter on every voxel is pure overhead
// because the tree cannot mutate mid-query (queries and insertion run
// strictly in turn on the mission loop). classProbeView refreshes the epoch
// exactly the way classify does, once, and the probe then serves the same
// cached bytes classify would — cached and uncached paths stay
// bit-identical.
type classProbe struct {
	t          *Tree
	grid       []uint8
	epoch      uint8
	nx, ny, nz int
}

// classProbeView returns a probe over the current cache epoch (refreshing it
// first, as classify would). With the cache unarmed the probe falls through
// to the uncached descents.
func (t *Tree) classProbeView() classProbe {
	c := &t.cls
	p := classProbe{t: t}
	if c.grid == nil {
		return p
	}
	if c.mut != t.mut || c.epoch == 0 {
		c.mut = t.mut
		c.epoch++
		if c.epoch == 1<<6 {
			clear(c.grid)
			c.epoch = 1
		}
	}
	p.grid, p.epoch, p.nx, p.ny, p.nz = c.grid, c.epoch, c.nx, c.ny, c.nz
	return p
}

// classify is classify on the hoisted view: one bounds check and one byte
// load on the hit path.
func (p *classProbe) classify(x, y, z int) Occupancy {
	if p.grid == nil || x < 0 || y < 0 || z < 0 || x >= p.nx || y >= p.ny || z >= p.nz {
		return p.t.classifySlow(x, y, z)
	}
	i := (z*p.ny+y)*p.nx + x
	if v := p.grid[i]; v>>2 == p.epoch {
		return Occupancy(v & 3)
	}
	o := p.t.classifySlow(x, y, z)
	p.grid[i] = p.epoch<<2 | uint8(o)
	return o
}

// classifySlow is the uncached classification: one (path-memoised) descent.
func (t *Tree) classifySlow(x, y, z int) Occupancy {
	if t.probeRec != nil {
		t.probeRec(x, y, z)
	}
	lo, known := t.lookup(x, y, z)
	if !known {
		return Unknown
	}
	if lo >= t.params.OccThresh {
		return Occupied
	}
	return Free
}

// Resolution returns the leaf voxel side length in metres.
func (t *Tree) Resolution() float64 { return t.resolution }

// LeafUpdates returns the total number of leaf evidence updates applied,
// used by the platform model to charge map-update compute time.
func (t *Tree) LeafUpdates() int { return t.leafUpdates }

// key converts a world point to integer voxel coordinates at leaf depth.
// ok is false outside the root volume. Power-of-two resolutions take the
// multiply path, which is bit-identical to the divide (see New).
func (t *Tree) key(p geom.Vec3) (x, y, z int, ok bool) {
	rel := p.Sub(t.origin)
	if rel.X < 0 || rel.Y < 0 || rel.Z < 0 ||
		rel.X >= t.rootSize || rel.Y >= t.rootSize || rel.Z >= t.rootSize {
		return 0, 0, 0, false
	}
	if t.mulKey {
		return int(rel.X * t.invRes), int(rel.Y * t.invRes), int(rel.Z * t.invRes), true
	}
	x = int(rel.X / t.resolution)
	y = int(rel.Y / t.resolution)
	z = int(rel.Z / t.resolution)
	return x, y, z, true
}

// keyComp converts one in-range axis offset rel = coordinate - origin to its
// integer key component, exactly as key() does (multiply path for power-of-
// two resolutions, bit-identical to the divide; see New). The fused walker
// uses it to key single recomputed axes.
func (t *Tree) keyComp(rel float64) int {
	if t.mulKey {
		return int(rel * t.invRes)
	}
	return int(rel / t.resolution)
}

// VoxelCenter returns the centre of the leaf voxel containing p; ok is false
// outside the volume.
func (t *Tree) VoxelCenter(p geom.Vec3) (geom.Vec3, bool) {
	x, y, z, ok := t.key(p)
	if !ok {
		return geom.Vec3{}, false
	}
	r := t.resolution
	return t.origin.Add(geom.V((float64(x)+0.5)*r, (float64(y)+0.5)*r, (float64(z)+0.5)*r)), true
}

// expand turns leaf ni into an interior node, pushing its value down into
// eight freshly appended children.
func (t *Tree) expand(ni int32) {
	base := int32(len(t.nodes))
	lo := t.nodes[ni].logOdds
	var block [8]node
	for i := range block {
		block[i] = node{logOdds: lo, firstChild: noChild}
	}
	t.nodes = append(t.nodes, block[:]...)
	t.nodes[ni].firstChild = base
	t.mut++
}

// descend returns the leaf node index for key (x,y,z), expanding interior
// nodes as needed. The path cache short-circuits the shared upper levels of
// coherent key sequences.
func (t *Tree) descend(x, y, z int) int32 {
	startLevel := t.depth - 1
	ni := int32(0)
	if t.path.valid {
		diff := (x ^ t.path.x) | (y ^ t.path.y) | (z ^ t.path.z)
		if diff == 0 {
			return t.path.leaf
		}
		if hb := bits.Len(uint(diff)) - 1; hb < startLevel {
			// All levels above hb select the same children as the cached
			// descent; resume from the first level whose child index can
			// differ.
			startLevel = hb
			ni = t.path.parents[hb]
		}
	}
	for level := startLevel; level >= 0; level-- {
		if t.nodes[ni].firstChild == noChild {
			// Expand: push current value down on demand.
			t.expand(ni)
		}
		idx := ((x>>level)&1)<<2 | ((y>>level)&1)<<1 | (z >> level & 1)
		t.path.parents[level] = ni
		ni = t.nodes[ni].firstChild + int32(idx)
	}
	t.path.valid = true
	t.path.x, t.path.y, t.path.z = x, y, z
	t.path.leaf = ni
	return ni
}

// updateKey applies delta log-odds evidence to the voxel at integer key
// (x,y,z), expanding interior nodes as needed.
func (t *Tree) updateKey(x, y, z int, delta float64) {
	t.applyDelta(t.descend(x, y, z), x, y, z, delta)
}

// applyDelta applies one evidence delta to the leaf at arena index ni, which
// descend resolved for key (x,y,z). This is where the markKnown epsilon
// convention is applied: a voxel is "known" iff its log-odds is non-zero, and
// instead of spending a flag bit per node, evidence that leaves the clamped
// log-odds at exactly 0 would be nudged to a 1e-9 epsilon. The nudge is
// guarded on logOdds != 0 (preserved bit-for-bit from the reference
// implementation), so evidence that cancels to exactly 0 reads as unknown
// again — with the default logit sensor model the hit/miss deltas are
// irrational multiples that never cancel exactly, so the case does not arise
// in practice.
//
// The occupancy summary is maintained here, on the occupied↔free/unknown
// classification transitions of the updated leaf: this is the only call that
// can change a unit leaf's classification (see occSummary for why expand
// cannot), so updating the block count in the same call keeps the summary
// exact after every mutation.
func (t *Tree) applyDelta(ni int32, x, y, z int, delta float64) {
	n := &t.nodes[ni]
	old := n.logOdds
	n.logOdds = geom.Clampf(old+delta, t.params.ClampMin, t.params.ClampMax)
	if n.logOdds != 0 {
		markKnown(n)
	}
	if t.sum.counts != nil {
		wasOcc := old != 0 && old >= t.params.OccThresh
		isOcc := n.logOdds != 0 && n.logOdds >= t.params.OccThresh
		if wasOcc != isOcc {
			bi := t.summaryIndex(x, y, z)
			if isOcc {
				t.sum.counts[bi]++
			} else {
				t.sum.counts[bi]--
			}
		}
	}
	t.leafUpdates++
	t.mut++
}

// markKnown nudges an exactly-zero log-odds to a tiny epsilon so the voxel
// reads as known (see applyDelta for the convention).
func markKnown(n *node) {
	if n.logOdds == 0 {
		n.logOdds = 1e-9
	}
}

// lookup returns the log-odds of the leaf (or coarser) node covering key
// (x,y,z) and whether the voxel has ever received evidence (the markKnown
// convention: known ⇔ non-zero log-odds). Planner queries arrive in
// spatially coherent bursts between map updates, so the descent resumes from
// the cached path whenever the tree has not mutated since.
func (t *Tree) lookup(x, y, z int) (logOdds float64, known bool) {
	startLevel := t.depth - 1
	ni := int32(0)
	q := &t.qry
	if q.valid && q.mut == t.mut {
		diff := (x ^ q.x) | (y ^ q.y) | (z ^ q.z)
		hb := bits.Len(uint(diff)) - 1 // -1 when diff == 0
		if hb <= q.endLevel {
			// The cached walk terminated above every differing bit: the
			// same (possibly coarse) node covers this key.
			lo := t.nodes[q.terminal].logOdds
			return lo, lo != 0
		}
		if hb < startLevel {
			startLevel = hb
			ni = q.parents[hb]
		}
	} else {
		q.valid = true
		q.mut = t.mut
	}
	level := startLevel
	for ; level >= 0; level-- {
		fc := t.nodes[ni].firstChild
		if fc == noChild {
			break
		}
		idx := ((x>>level)&1)<<2 | ((y>>level)&1)<<1 | (z >> level & 1)
		q.parents[level] = ni
		ni = fc + int32(idx)
	}
	q.x, q.y, q.z = x, y, z
	q.endLevel = level // -1 after a full descent
	q.terminal = ni
	lo := t.nodes[ni].logOdds
	return lo, lo != 0
}

// At classifies the voxel containing p. Points outside the mapped volume are
// Occupied (flying out of bounds is not allowed).
func (t *Tree) At(p geom.Vec3) Occupancy {
	x, y, z, ok := t.key(p)
	if !ok {
		return Occupied
	}
	return t.classify(x, y, z)
}

// Prob returns the occupancy probability of the voxel containing p, and
// whether the voxel is known.
func (t *Tree) Prob(p geom.Vec3) (float64, bool) {
	x, y, z, ok := t.key(p)
	if !ok {
		return 1, true
	}
	lo, known := t.lookup(x, y, z)
	return 1 / (1 + math.Exp(-lo)), known
}

// MarkOccupied applies hit evidence at p (exposed for tests and fault
// scenarios).
func (t *Tree) MarkOccupied(p geom.Vec3) {
	if x, y, z, ok := t.key(p); ok {
		t.updateKey(x, y, z, t.params.LogOddsHit)
	}
}

// MarkFree applies miss evidence at p.
func (t *Tree) MarkFree(p geom.Vec3) {
	if x, y, z, ok := t.key(p); ok {
		t.updateKey(x, y, z, t.params.LogOddsMiss)
	}
}

// InsertRay integrates one range measurement: miss evidence along the ray
// from origin to end, and, when hit is true, hit evidence at the endpoint
// voxel. Traversal uses the Amanatides–Woo voxel-stepping algorithm.
//
// The endpoint voxel is identified from the endpoint itself (not the
// clipped walk), so a surface point landing exactly on a voxel boundary
// attributes its hit evidence to the voxel containing the surface.
//
// InsertRay is the per-ray reference path; whole depth scans should go
// through InsertCloud, which applies the identical per-ray evidence schedule
// at the natural batching boundary of the mission loop.
func (t *Tree) InsertRay(origin, end geom.Vec3, hit bool) {
	t.integrateRay(origin, end, hit)
}

// integrateRay is the single evidence schedule both insertion paths share:
// miss evidence along the clipped walk (endpoint voxel excluded), then hit
// or miss evidence at the endpoint voxel. One body means InsertRay and
// InsertCloud cannot drift apart on the schedule their bit-identical
// equivalence depends on.
func (t *Tree) integrateRay(origin, end geom.Vec3, hit bool) {
	ex, ey, ez, endOK := t.key(end)
	var w rayWalker
	t.startWalk(&w, origin, end)
	for {
		x, y, z, _, ok := w.next()
		if !ok {
			break
		}
		if endOK && x == ex && y == ey && z == ez {
			continue // endpoint voxel handled below
		}
		t.updateKey(x, y, z, t.params.LogOddsMiss)
	}
	if endOK {
		if hit {
			t.updateKey(ex, ey, ez, t.params.LogOddsHit)
		} else {
			t.updateKey(ex, ey, ez, t.params.LogOddsMiss)
		}
	}
}

// rayWalker streams the leaf voxel keys a segment crosses, in order, without
// a per-ray closure allocation. The insertion paths (InsertRay, InsertCloud)
// and the DDA collision queries (SegmentFree, FirstBlocked) all traverse
// through it, so every segment↔voxel enumeration in the package visits
// bit-identical voxel sequences.
//
// tEntry is the parametric position (in the clipped p0→p1 space) at which
// the walk entered the voxel most recently yielded by next; segParam maps it
// back to the caller's original origin→end parameterisation. FirstBlocked
// uses this to report the exact boundary crossing into the first blocked
// voxel.
type rayWalker struct {
	x, y, z                   int
	ex, ey, ez                int
	stepX, stepY, stepZ       int
	tMaxX, tMaxY, tMaxZ       float64
	tDeltaX, tDeltaY, tDeltaZ float64
	steps, maxSteps           int
	valid                     bool
	tEntry                    float64 // clipped-space entry of the last yielded voxel
	tNext                     float64 // clipped-space entry of the upcoming voxel
	clipLo, clipSpan          float64 // map clipped space back to origin→end space
}

// startWalk initialises w for the segment origin→end clipped to the root
// volume; w is invalid (yields no voxels) when the segment misses it.
func (t *Tree) startWalk(w *rayWalker, origin, end geom.Vec3) {
	w.valid = false
	t0, t1 := 0.0, 1.0
	if _, _, _, okA := t.key(origin); !okA {
		t0 = -1 // force the slab clip below
	} else if _, _, _, okB := t.key(end); !okB {
		t0 = -1
	}
	if t0 < 0 {
		// Clip the segment to the root volume. When both endpoints key
		// inside the volume the slab method returns exactly (0, 1) — the
		// fast path above — because the root box is convex and key()
		// excludes its far faces.
		rootBox := geom.Box(t.origin, t.origin.Add(geom.V(t.rootSize, t.rootSize, t.rootSize)))
		var ok bool
		ok, t0, t1 = rootBox.SegmentIntersection(origin, end)
		if !ok {
			return
		}
	}
	t.seedWalk(w, origin, end, t0, t1)
}

// startWalkInside is startWalk for callers that have already established
// that both endpoints key inside the root volume (rayFree probes both before
// walking): it seeds the walk with exactly the fast path's (0, 1) clip —
// bit-identical voxel sequences — minus the two redundant endpoint probes
// and the slab-clip branch.
func (t *Tree) startWalkInside(w *rayWalker, origin, end geom.Vec3) {
	w.valid = false
	t.seedWalk(w, origin, end, 0, 1)
}

// seedWalk is the shared tail of the walk initialisers: nudge the clipped
// endpoints inward, key them, and set up the per-axis DDA state. Both
// entry points above go through this one body so the seeding arithmetic
// (the 1e-9 nudge, the Manhattan step bound) cannot drift between them.
func (t *Tree) seedWalk(w *rayWalker, origin, end geom.Vec3, t0, t1 float64) {
	d := end.Sub(origin)
	p0 := origin.Add(d.Scale(t0 + 1e-9))
	p1 := origin.Add(d.Scale(t1 - 1e-9))
	w.clipLo = t0 + 1e-9
	w.clipSpan = (t1 - 1e-9) - w.clipLo
	w.tEntry = 0
	w.tNext = 0

	x, y, z, ok := t.key(p0)
	if !ok {
		return
	}
	ex, ey, ez, ok := t.key(p1)
	if !ok {
		return
	}

	dir := p1.Sub(p0)
	w.stepX, w.tMaxX, w.tDeltaX = initAxis(p0.X-t.origin.X, dir.X, t.resolution)
	w.stepY, w.tMaxY, w.tDeltaY = initAxis(p0.Y-t.origin.Y, dir.Y, t.resolution)
	w.stepZ, w.tMaxZ, w.tDeltaZ = initAxis(p0.Z-t.origin.Z, dir.Z, t.resolution)

	w.x, w.y, w.z = x, y, z
	w.ex, w.ey, w.ez = ex, ey, ez
	// Bound iterations defensively: the ray cannot cross more voxels than
	// the Manhattan key distance plus slack.
	w.maxSteps = abs(ex-x) + abs(ey-y) + abs(ez-z) + 3
	w.steps = 0
	w.valid = true
}

// next yields the next voxel key on the walk; last flags the final voxel and
// ok is false once the walk is exhausted.
func (w *rayWalker) next() (x, y, z int, last, ok bool) {
	if !w.valid || w.steps >= w.maxSteps {
		return 0, 0, 0, false, false
	}
	w.steps++
	x, y, z = w.x, w.y, w.z
	w.tEntry = w.tNext
	if x == w.ex && y == w.ey && z == w.ez {
		w.valid = false
		return x, y, z, true, true
	}
	switch {
	case w.tMaxX <= w.tMaxY && w.tMaxX <= w.tMaxZ:
		w.x += w.stepX
		w.tNext = w.tMaxX
		w.tMaxX += w.tDeltaX
	case w.tMaxY <= w.tMaxZ:
		w.y += w.stepY
		w.tNext = w.tMaxY
		w.tMaxY += w.tDeltaY
	default:
		w.z += w.stepZ
		w.tNext = w.tMaxZ
		w.tMaxZ += w.tDeltaZ
	}
	return x, y, z, false, true
}

// segParam maps a clipped-walk parameter (0 at the clipped start, 1 at the
// clipped end) back to the caller's origin→end parameterisation, clamped to
// [0,1].
func (w *rayWalker) segParam(s float64) float64 {
	f := w.clipLo + s*w.clipSpan
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// walkRay visits every leaf voxel key from origin to end in order, flagging
// the final voxel (retained for tests; the insertion paths use rayWalker
// directly).
func (t *Tree) walkRay(origin, end geom.Vec3, visit func(x, y, z int, last bool)) {
	var w rayWalker
	t.startWalk(&w, origin, end)
	for {
		x, y, z, last, ok := w.next()
		if !ok {
			return
		}
		visit(x, y, z, last)
	}
}

// initAxis computes DDA stepping state for one axis: the step direction, the
// parametric distance to the first voxel boundary, and the parametric
// distance between boundaries.
func initAxis(pos, dir, res float64) (step int, tMax, tDelta float64) {
	cell := math.Floor(pos / res)
	switch {
	case dir > 1e-12:
		step = 1
		tMax = ((cell+1)*res - pos) / dir
		tDelta = res / dir
	case dir < -1e-12:
		step = -1
		tMax = (pos - cell*res) / -dir
		tDelta = res / -dir
	default:
		step = 0
		tMax = math.Inf(1)
		tDelta = math.Inf(1)
	}
	return step, tMax, tDelta
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// NumLeaves counts allocated leaf nodes, a memory-footprint proxy.
func (t *Tree) NumLeaves() int {
	var count func(ni int32) int
	count = func(ni int32) int {
		fc := t.nodes[ni].firstChild
		if fc == noChild {
			return 1
		}
		total := 0
		for i := int32(0); i < 8; i++ {
			total += count(fc + i)
		}
		return total
	}
	return count(0)
}
