// Package octomap implements the probabilistic occupancy octree the
// perception stage maintains, following the OctoMap design: leaf voxels hold
// clamped log-odds occupancy updated by hit/miss evidence from depth-sensor
// ray casts, and queries descend the tree from a cubic root volume.
//
// The map deliberately distinguishes three voxel states — occupied, free,
// and unknown — because the planners treat unknown space optimistically
// (traversable until observed), which is what lets the pipeline start
// planning before the map is complete.
package octomap

import (
	"math"

	"mavfi/internal/geom"
)

// Occupancy classifies a queried voxel.
type Occupancy int

const (
	// Unknown voxels have never received evidence.
	Unknown Occupancy = iota
	// Free voxels have log-odds below the occupancy threshold.
	Free
	// Occupied voxels have log-odds at or above the threshold.
	Occupied
)

// Params are the sensor-model constants, defaulting to the standard OctoMap
// values.
type Params struct {
	LogOddsHit  float64 // evidence added on a ray endpoint hit
	LogOddsMiss float64 // evidence added on a ray pass-through
	ClampMin    float64 // lower log-odds clamp
	ClampMax    float64 // upper log-odds clamp
	OccThresh   float64 // log-odds at or above which a voxel is Occupied
}

// DefaultParams returns the standard OctoMap sensor model: P(hit)=0.7,
// P(miss)=0.4, clamps at P=0.12 and P=0.97, threshold P=0.5.
func DefaultParams() Params {
	return Params{
		LogOddsHit:  logit(0.7),
		LogOddsMiss: logit(0.4),
		ClampMin:    logit(0.12),
		ClampMax:    logit(0.97),
		OccThresh:   0,
	}
}

func logit(p float64) float64 { return math.Log(p / (1 - p)) }

// Tree is the occupancy octree over a cubic volume.
type Tree struct {
	params     Params
	resolution float64
	depth      int       // tree depth; leaves are resolution-sized
	origin     geom.Vec3 // minimum corner of the root cube
	rootSize   float64   // side length of the root cube
	root       *node

	leafUpdates int // total leaf evidence updates, for overhead accounting
}

type node struct {
	children [8]*node
	logOdds  float64
	isLeaf   bool
}

// New creates a tree covering the axis-aligned cube that contains bounds,
// with the given leaf resolution in metres.
func New(bounds geom.AABB, resolution float64, params Params) *Tree {
	if resolution <= 0 {
		resolution = 0.5
	}
	size := bounds.Size()
	maxSide := math.Max(size.X, math.Max(size.Y, size.Z))
	depth := 0
	rootSize := resolution
	for rootSize < maxSide {
		rootSize *= 2
		depth++
	}
	return &Tree{
		params:     params,
		resolution: resolution,
		depth:      depth,
		origin:     bounds.Min,
		rootSize:   rootSize,
		root:       &node{isLeaf: true},
	}
}

// Resolution returns the leaf voxel side length in metres.
func (t *Tree) Resolution() float64 { return t.resolution }

// LeafUpdates returns the total number of leaf evidence updates applied,
// used by the platform model to charge map-update compute time.
func (t *Tree) LeafUpdates() int { return t.leafUpdates }

// key converts a world point to integer voxel coordinates at leaf depth.
// ok is false outside the root volume.
func (t *Tree) key(p geom.Vec3) (x, y, z int, ok bool) {
	rel := p.Sub(t.origin)
	if rel.X < 0 || rel.Y < 0 || rel.Z < 0 ||
		rel.X >= t.rootSize || rel.Y >= t.rootSize || rel.Z >= t.rootSize {
		return 0, 0, 0, false
	}
	x = int(rel.X / t.resolution)
	y = int(rel.Y / t.resolution)
	z = int(rel.Z / t.resolution)
	return x, y, z, true
}

// VoxelCenter returns the centre of the leaf voxel containing p; ok is false
// outside the volume.
func (t *Tree) VoxelCenter(p geom.Vec3) (geom.Vec3, bool) {
	x, y, z, ok := t.key(p)
	if !ok {
		return geom.Vec3{}, false
	}
	r := t.resolution
	return t.origin.Add(geom.V((float64(x)+0.5)*r, (float64(y)+0.5)*r, (float64(z)+0.5)*r)), true
}

// updateKey applies delta log-odds evidence to the voxel at integer key
// (x,y,z), expanding interior nodes as needed.
func (t *Tree) updateKey(x, y, z int, delta float64) {
	n := t.root
	for level := t.depth - 1; level >= 0; level-- {
		if n.isLeaf {
			// Expand: push current value down on demand.
			n.isLeaf = false
			for i := range n.children {
				n.children[i] = &node{isLeaf: true, logOdds: n.logOdds}
			}
		}
		idx := ((x>>level)&1)<<2 | ((y>>level)&1)<<1 | (z >> level & 1)
		if n.children[idx] == nil {
			n.children[idx] = &node{isLeaf: true}
		}
		n = n.children[idx]
	}
	n.logOdds = geom.Clampf(n.logOdds+delta, t.params.ClampMin, t.params.ClampMax)
	if n.logOdds != 0 {
		markKnown(n)
	}
	t.leafUpdates++
}

// knownMarker distinguishes "log-odds exactly 0 because untouched" from
// "touched". We store a tiny epsilon on first touch instead of a flag to
// keep the node small; any evidence application marks the voxel known.
func markKnown(n *node) {
	if n.logOdds == 0 {
		n.logOdds = 1e-9
	}
}

// lookup returns the leaf (or coarser) node covering key (x,y,z) and whether
// the voxel has ever received evidence.
func (t *Tree) lookup(x, y, z int) (logOdds float64, known bool) {
	n := t.root
	touched := false
	for level := t.depth - 1; level >= 0; level-- {
		if n.isLeaf {
			break
		}
		idx := ((x>>level)&1)<<2 | ((y>>level)&1)<<1 | (z >> level & 1)
		c := n.children[idx]
		if c == nil {
			return 0, false
		}
		n = c
		touched = true
	}
	if !touched && n == t.root && n.isLeaf {
		return n.logOdds, n.logOdds != 0
	}
	return n.logOdds, n.logOdds != 0
}

// At classifies the voxel containing p. Points outside the mapped volume are
// Occupied (flying out of bounds is not allowed).
func (t *Tree) At(p geom.Vec3) Occupancy {
	x, y, z, ok := t.key(p)
	if !ok {
		return Occupied
	}
	lo, known := t.lookup(x, y, z)
	if !known {
		return Unknown
	}
	if lo >= t.params.OccThresh {
		return Occupied
	}
	return Free
}

// Prob returns the occupancy probability of the voxel containing p, and
// whether the voxel is known.
func (t *Tree) Prob(p geom.Vec3) (float64, bool) {
	x, y, z, ok := t.key(p)
	if !ok {
		return 1, true
	}
	lo, known := t.lookup(x, y, z)
	return 1 / (1 + math.Exp(-lo)), known
}

// MarkOccupied applies hit evidence at p (exposed for tests and fault
// scenarios).
func (t *Tree) MarkOccupied(p geom.Vec3) {
	if x, y, z, ok := t.key(p); ok {
		t.updateKey(x, y, z, t.params.LogOddsHit)
	}
}

// MarkFree applies miss evidence at p.
func (t *Tree) MarkFree(p geom.Vec3) {
	if x, y, z, ok := t.key(p); ok {
		t.updateKey(x, y, z, t.params.LogOddsMiss)
	}
}

// InsertRay integrates one range measurement: miss evidence along the ray
// from origin to end, and, when hit is true, hit evidence at the endpoint
// voxel. Traversal uses the Amanatides–Woo voxel-stepping algorithm.
//
// The endpoint voxel is identified from the endpoint itself (not the
// clipped walk), so a surface point landing exactly on a voxel boundary
// attributes its hit evidence to the voxel containing the surface.
func (t *Tree) InsertRay(origin, end geom.Vec3, hit bool) {
	ex, ey, ez, endOK := t.key(end)
	t.walkRay(origin, end, func(x, y, z int, last bool) {
		if endOK && x == ex && y == ey && z == ez {
			return // endpoint voxel handled below
		}
		t.updateKey(x, y, z, t.params.LogOddsMiss)
	})
	if endOK {
		if hit {
			t.updateKey(ex, ey, ez, t.params.LogOddsHit)
		} else {
			t.updateKey(ex, ey, ez, t.params.LogOddsMiss)
		}
	}
}

// walkRay visits every leaf voxel key from origin to end in order, flagging
// the final voxel.
func (t *Tree) walkRay(origin, end geom.Vec3, visit func(x, y, z int, last bool)) {
	// Clip the segment to the root volume.
	rootBox := geom.Box(t.origin, t.origin.Add(geom.V(t.rootSize, t.rootSize, t.rootSize)))
	ok, t0, t1 := rootBox.SegmentIntersection(origin, end)
	if !ok {
		return
	}
	d := end.Sub(origin)
	p0 := origin.Add(d.Scale(t0 + 1e-9))
	p1 := origin.Add(d.Scale(t1 - 1e-9))

	x, y, z, ok := t.key(p0)
	if !ok {
		return
	}
	ex, ey, ez, ok := t.key(p1)
	if !ok {
		return
	}

	dir := p1.Sub(p0)
	stepX, tMaxX, tDeltaX := initAxis(p0.X-t.origin.X, dir.X, t.resolution)
	stepY, tMaxY, tDeltaY := initAxis(p0.Y-t.origin.Y, dir.Y, t.resolution)
	stepZ, tMaxZ, tDeltaZ := initAxis(p0.Z-t.origin.Z, dir.Z, t.resolution)

	// Bound iterations defensively: the ray cannot cross more voxels than
	// the Manhattan key distance plus slack.
	maxSteps := abs(ex-x) + abs(ey-y) + abs(ez-z) + 3
	for i := 0; i < maxSteps; i++ {
		last := x == ex && y == ey && z == ez
		visit(x, y, z, last)
		if last {
			return
		}
		switch {
		case tMaxX <= tMaxY && tMaxX <= tMaxZ:
			x += stepX
			tMaxX += tDeltaX
		case tMaxY <= tMaxZ:
			y += stepY
			tMaxY += tDeltaY
		default:
			z += stepZ
			tMaxZ += tDeltaZ
		}
	}
}

// initAxis computes DDA stepping state for one axis: the step direction, the
// parametric distance to the first voxel boundary, and the parametric
// distance between boundaries.
func initAxis(pos, dir, res float64) (step int, tMax, tDelta float64) {
	cell := math.Floor(pos / res)
	switch {
	case dir > 1e-12:
		step = 1
		tMax = ((cell+1)*res - pos) / dir
		tDelta = res / dir
	case dir < -1e-12:
		step = -1
		tMax = (pos - cell*res) / -dir
		tDelta = res / -dir
	default:
		step = 0
		tMax = math.Inf(1)
		tDelta = math.Inf(1)
	}
	return step, tMax, tDelta
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// NumLeaves counts allocated leaf nodes, a memory-footprint proxy.
func (t *Tree) NumLeaves() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.isLeaf {
			return 1
		}
		total := 0
		for _, c := range n.children {
			total += count(c)
		}
		return total
	}
	return count(t.root)
}
