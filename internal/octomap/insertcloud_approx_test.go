package octomap

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// saturate drives one voxel to its clamp through the public evidence path:
// repeated hits clamp to ClampMax, repeated misses to ClampMin.
func saturate(t *Tree, p geom.Vec3, occupied bool) {
	for i := 0; i < 12; i++ {
		if occupied {
			t.MarkOccupied(p)
		} else {
			t.MarkFree(p)
		}
	}
}

// TestInsertCloudApproxOffIsInsertCloud pins the exact-mode contract: with
// stride <= 1 and memo off, InsertCloudApprox IS InsertCloud bit-for-bit,
// for every (stride, memo) spelling of "off".
func TestInsertCloudApproxOffIsInsertCloud(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(16, 16, 16))
	for _, stride := range []int{-1, 0, 1} {
		rng := rand.New(rand.NewSource(21))
		ref := New(bounds, 0.5, DefaultParams())
		app := New(bounds, 0.5, DefaultParams())
		for scan := 0; scan < 4; scan++ {
			origin := geom.V(rng.Float64()*16, rng.Float64()*16, rng.Float64()*16)
			pts := randomScan(rng, origin, 60)
			ref.InsertCloud(origin, pts)
			app.InsertCloudApprox(origin, pts, 3, stride, false)
		}
		compareTrees(t, ref, app)
		if ref.Digest() != app.Digest() {
			t.Fatalf("stride %d: digest diverges in off mode", stride)
		}
	}
}

// TestMemoSkipsSaturatedConfirmations pins the memoization rule on both
// evidence polarities: a ray whose endpoint is already clamped in the
// direction of its own evidence is a complete no-op, while the same ray
// against an unsaturated endpoint integrates exactly like InsertCloud.
func TestMemoSkipsSaturatedConfirmations(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(16, 16, 16))
	origin := geom.V(1.25, 1.25, 1.25)
	wall := geom.V(9.25, 1.25, 1.25)
	air := geom.V(1.25, 9.25, 1.25)

	tr := New(bounds, 0.5, DefaultParams())
	saturate(tr, wall, true)
	saturate(tr, air, false)
	before := tr.Digest()
	upd := tr.LeafUpdates()

	// Confirming rays into both clamped endpoints: nothing may change —
	// not even the free-space carve along the way.
	tr.InsertCloudApprox(origin, []RayPoint{
		{End: wall, Hit: true},
		{End: air, Hit: false},
	}, 0, 0, true)
	if tr.Digest() != before {
		t.Fatal("memo integrated a fully-confirmed ray")
	}
	if tr.LeafUpdates() != upd {
		t.Fatalf("memo applied %d leaf updates for saturated rays", tr.LeafUpdates()-upd)
	}

	// The same scan against a fresh tree is novel everywhere and must match
	// exact insertion bit-for-bit.
	ref := New(bounds, 0.5, DefaultParams())
	app := New(bounds, 0.5, DefaultParams())
	scan := []RayPoint{{End: wall, Hit: true}, {End: air, Hit: false}}
	ref.InsertCloud(origin, scan)
	app.InsertCloudApprox(origin, scan, 0, 0, true)
	compareTrees(t, ref, app)
}

// TestMemoNeverSkipsNovelty pins the safety half of the lever: evidence
// that disagrees with the clamp — an intruder appearing in known-free
// space, or a mapped wall no longer echoing — always integrates.
func TestMemoNeverSkipsNovelty(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(16, 16, 16))
	origin := geom.V(1.25, 1.25, 1.25)
	spot := geom.V(9.25, 1.25, 1.25)

	// Intruder: the voxel is clamped free, the new ray HITS it.
	free := New(bounds, 0.5, DefaultParams())
	saturate(free, spot, false)
	before := free.Digest()
	free.InsertCloudApprox(origin, []RayPoint{{End: spot, Hit: true}}, 0, 0, true)
	if free.Digest() == before {
		t.Fatal("memo skipped a hit into clamped-free space")
	}

	// Vanished wall: the voxel is clamped occupied, the new ray passes
	// through to max range.
	occ := New(bounds, 0.5, DefaultParams())
	saturate(occ, spot, true)
	before = occ.Digest()
	occ.InsertCloudApprox(origin, []RayPoint{{End: spot, Hit: false}}, 0, 0, true)
	if occ.Digest() == before {
		t.Fatal("memo skipped a miss through clamped-occupied space")
	}

	// Out-of-bounds endpoints are never "saturated": the ray integrates
	// (clipped) exactly as InsertCloud would.
	ref := New(bounds, 0.5, DefaultParams())
	app := New(bounds, 0.5, DefaultParams())
	out := []RayPoint{{End: geom.V(40, 1.25, 1.25), Hit: false}}
	ref.InsertCloud(origin, out)
	app.InsertCloudApprox(origin, out, 0, 0, true)
	compareTrees(t, ref, app)
}

// TestMemoComposesWithStride runs both levers together over randomized
// scans against a lever-free control, checking the composition invariant
// that matters: every endpoint the approximate tree knows agrees in
// classification with the control wherever the control is also known, and
// no approximate insertion ever applies MORE leaf updates than exact mode.
func TestMemoComposesWithStride(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(16, 16, 16))
	rng := rand.New(rand.NewSource(33))
	ref := New(bounds, 0.5, DefaultParams())
	app := New(bounds, 0.5, DefaultParams())
	for scan := 0; scan < 12; scan++ {
		origin := geom.V(2+rng.Float64()*12, 2+rng.Float64()*12, 2+rng.Float64()*12)
		pts := randomScan(rng, origin, 80)
		ref.InsertCloud(origin, pts)
		app.InsertCloudApprox(origin, pts, 3, 2, true)
		for _, p := range pts {
			if !p.Hit {
				continue
			}
			// Hits are never dropped: the endpoint voxel must not read
			// Free in the approximate tree once exact mode has evidence.
			if ref.At(p.End) == Occupied && app.At(p.End) == Free {
				t.Fatalf("scan %d: approximate tree lost a hit at %v", scan, p.End)
			}
		}
	}
	if app.LeafUpdates() > ref.LeafUpdates() {
		t.Fatalf("approximate mode applied more updates than exact: %d > %d",
			app.LeafUpdates(), ref.LeafUpdates())
	}
}
