package octomap

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// testPolicy is the navigation policy the pipeline uses: optimistic unknown
// space, vehicle radius comparable to the airframe.
var testPolicy = QueryPolicy{UnknownIsFree: true, Radius: 0.55}

// queryTestTree builds a map with a realistic occupied/free/unknown mix by
// integrating random depth scans from a few origins.
func queryTestTree(seed int64) *Tree {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < 6; s++ {
		origin := geom.V(rng.Float64()*28+2, rng.Float64()*28+2, rng.Float64()*12+2)
		tr.InsertCloud(origin, randomScan(rng, origin, 80))
	}
	return tr
}

// refSegmentFree is the fine-sampled reference the DDA walk must refine:
// PointFree sampled at `step` spacing along a→b (the pre-PR3 implementation
// with a much smaller step).
func refSegmentFree(t *Tree, a, b geom.Vec3, q QueryPolicy, step float64) bool {
	n := int(math.Ceil(a.Dist(b)/step)) + 1
	for i := 0; i <= n; i++ {
		if !t.PointFree(a.Lerp(b, float64(i)/float64(n)), q) {
			return false
		}
	}
	return true
}

// refFirstBlocked is the fine-sampled FirstBlocked reference.
func refFirstBlocked(t *Tree, a, b geom.Vec3, q QueryPolicy, step float64) (float64, bool) {
	n := int(math.Ceil(a.Dist(b)/step)) + 1
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		if !t.PointFree(a.Lerp(b, f), q) {
			return f, true
		}
	}
	return 0, false
}

// crossedVoxels enumerates, by brute force over the segment's bounding key
// range, every leaf voxel whose AABB the segment a→b intersects — an
// independent (slab-method) oracle for the DDA walk — mapped to the
// parametric position at which the segment enters the voxel.
func crossedVoxels(t *Tree, a, b geom.Vec3) map[[3]int]float64 {
	out := map[[3]int]float64{}
	lo, hi := a.Min(b), a.Max(b)
	r := t.resolution
	kx0 := int(math.Floor((lo.X-t.origin.X)/r)) - 1
	ky0 := int(math.Floor((lo.Y-t.origin.Y)/r)) - 1
	kz0 := int(math.Floor((lo.Z-t.origin.Z)/r)) - 1
	kx1 := int(math.Floor((hi.X-t.origin.X)/r)) + 1
	ky1 := int(math.Floor((hi.Y-t.origin.Y)/r)) + 1
	kz1 := int(math.Floor((hi.Z-t.origin.Z)/r)) + 1
	maxKey := int(t.rootSize/r) - 1
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > maxKey {
			return maxKey
		}
		return v
	}
	kx0, ky0, kz0 = clamp(kx0), clamp(ky0), clamp(kz0)
	kx1, ky1, kz1 = clamp(kx1), clamp(ky1), clamp(kz1)
	for x := kx0; x <= kx1; x++ {
		for y := ky0; y <= ky1; y++ {
			for z := kz0; z <= kz1; z++ {
				vox := geom.Box(
					t.origin.Add(geom.V(float64(x)*r, float64(y)*r, float64(z)*r)),
					t.origin.Add(geom.V(float64(x+1)*r, float64(y+1)*r, float64(z+1)*r)),
				)
				if hit, t0, t1 := vox.SegmentIntersection(a, b); hit && t1-t0 > 1e-9 {
					out[[3]int{x, y, z}] = t0
				}
			}
		}
	}
	return out
}

func randomInteriorPoint(rng *rand.Rand) geom.Vec3 {
	return geom.V(rng.Float64()*30+1, rng.Float64()*30+1, rng.Float64()*14+1)
}

// TestWalkRayVisitsExactCrossedVoxels pins the DDA enumeration itself: for
// random in-volume segments, the walker must yield exactly the voxels whose
// AABBs the segment intersects, per the independent slab-method oracle.
func TestWalkRayVisitsExactCrossedVoxels(t *testing.T) {
	tr := newTestTree()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
		got := map[[3]int]bool{}
		tr.walkRay(a, b, func(x, y, z int, last bool) {
			got[[3]int{x, y, z}] = true
		})
		want := crossedVoxels(tr, a, b)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %v→%v walk visited %d voxels, oracle says %d", trial, a, b, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: %v→%v walk missed crossed voxel %v", trial, a, b, k)
			}
		}
	}
}

// TestSegmentFreeMatchesFineSampledReference is the PR3 equivalence gate:
// against a reference that samples PointFree at resolution/64 (32× finer
// than the pre-PR3 implementation), the DDA walk must agree — except that it
// may additionally catch a blocked voxel even that sampling steps over, and
// then the disagreement must be certified by the brute-force voxel oracle.
func TestSegmentFreeMatchesFineSampledReference(t *testing.T) {
	tr := queryTestTree(21)
	rng := rand.New(rand.NewSource(22))
	fine := tr.Resolution() / 64
	refined := 0
	for trial := 0; trial < 400; trial++ {
		a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
		got := tr.SegmentFree(a, b, testPolicy)
		want := refSegmentFree(tr, a, b, testPolicy, fine)
		if got == want {
			continue
		}
		if got && !want {
			t.Fatalf("trial %d: %v→%v DDA says free, fine-sampled reference found a collision", trial, a, b)
		}
		// DDA blocked where even fine sampling saw nothing: legitimate only
		// if some probe ray truly crosses a blocked voxel.
		if !segmentCrossesBlocked(tr, a, b, testPolicy) {
			t.Fatalf("trial %d: %v→%v DDA says blocked but no probe ray crosses a blocked voxel", trial, a, b)
		}
		refined++
	}
	t.Logf("DDA refined %d/400 sampled answers", refined)
}

// segmentCrossesBlocked reports whether any of the 7 probe rays of a→b
// crosses a blocked voxel or leaves the volume, per the brute-force oracle.
func segmentCrossesBlocked(tr *Tree, a, b geom.Vec3, q QueryPolicy) bool {
	rays := [][2]geom.Vec3{{a, b}}
	for _, d := range probeOffsets(q.Radius) {
		rays = append(rays, [2]geom.Vec3{a.Add(d), b.Add(d)})
	}
	for _, ray := range rays {
		if _, _, _, ok := tr.key(ray[0]); !ok {
			return true
		}
		if _, _, _, ok := tr.key(ray[1]); !ok {
			return true
		}
		for k := range crossedVoxels(tr, ray[0], ray[1]) {
			if q.blocked(tr.classify(k[0], k[1], k[2])) {
				return true
			}
		}
	}
	return false
}

// oracleFirstBlocked computes the exact first-collision fraction by brute
// force: the minimum, over the 7 probe rays, of the entry parameter of every
// blocked voxel the ray crosses (per the slab-method voxel oracle).
func oracleFirstBlocked(tr *Tree, a, b geom.Vec3, q QueryPolicy) (float64, bool) {
	first := math.Inf(1)
	rays := [][2]geom.Vec3{{a, b}}
	for _, d := range probeOffsets(q.Radius) {
		rays = append(rays, [2]geom.Vec3{a.Add(d), b.Add(d)})
	}
	for _, ray := range rays {
		if _, _, _, ok := tr.key(ray[0]); !ok {
			return 0, true
		}
		for k, entry := range crossedVoxels(tr, ray[0], ray[1]) {
			if q.blocked(tr.classify(k[0], k[1], k[2])) && entry < first {
				first = entry
			}
		}
	}
	if math.IsInf(first, 1) {
		return 0, false
	}
	return first, true
}

// TestFirstBlockedMatchesOracleAndReference checks the reported collision
// fraction two ways: the DDA must never miss a collision the fine-sampled
// reference finds (nor report one later than it), and when it reports a
// collision the fraction must match the exact brute-force voxel oracle.
func TestFirstBlockedMatchesOracleAndReference(t *testing.T) {
	tr := queryTestTree(31)
	rng := rand.New(rand.NewSource(32))
	fine := tr.Resolution() / 64
	for trial := 0; trial < 400; trial++ {
		a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
		gotF, got := tr.FirstBlocked(a, b, testPolicy)
		wantF, want := refFirstBlocked(tr, a, b, testPolicy, fine)
		if want && !got {
			t.Fatalf("trial %d: %v→%v reference found a collision at %v, DDA found none", trial, a, b, wantF)
		}
		if got && want && gotF > wantF+1e-9 {
			t.Fatalf("trial %d: %v→%v DDA frac %v lags the sampled frac %v", trial, a, b, gotF, wantF)
		}
		oracleF, oracleOK := oracleFirstBlocked(tr, a, b, testPolicy)
		if got != oracleOK {
			t.Fatalf("trial %d: %v→%v DDA collision=%v but oracle says %v", trial, a, b, got, oracleOK)
		}
		if got && math.Abs(gotF-oracleF) > 1e-6 {
			t.Fatalf("trial %d: %v→%v DDA frac %v != oracle frac %v", trial, a, b, gotF, oracleF)
		}
	}
}

// TestClassCacheTransparent: queries with the per-voxel classification cache
// armed must be indistinguishable from uncached queries, across interleaved
// map mutations (which must invalidate the cache).
func TestClassCacheTransparent(t *testing.T) {
	cached := queryTestTree(41)
	plain := queryTestTree(41)
	cached.EnableClassCache()
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			a, b := randomInteriorPoint(rng), randomInteriorPoint(rng)
			if ca, pa := cached.At(a), plain.At(a); ca != pa {
				t.Fatalf("round %d: At(%v) cached %v != plain %v", round, a, ca, pa)
			}
			if cs, ps := cached.SegmentFree(a, b, testPolicy), plain.SegmentFree(a, b, testPolicy); cs != ps {
				t.Fatalf("round %d: SegmentFree(%v,%v) cached %v != plain %v", round, a, b, cs, ps)
			}
			cf, cok := cached.FirstBlocked(a, b, testPolicy)
			pf, pok := plain.FirstBlocked(a, b, testPolicy)
			if cok != pok || math.Float64bits(cf) != math.Float64bits(pf) {
				t.Fatalf("round %d: FirstBlocked(%v,%v) cached (%v,%v) != plain (%v,%v)", round, a, b, cf, cok, pf, pok)
			}
		}
		// Mutate both maps identically; the cache must drop its epoch.
		origin := randomInteriorPoint(rng)
		pts := randomScan(rng, origin, 40)
		cached.InsertCloud(origin, pts)
		plain.InsertCloud(origin, pts)
	}
}

// TestClassCacheEpochWrap forces the 6-bit epoch counter to wrap and checks
// classifications stay correct across the wrap (the grid is cleared so stale
// stamps cannot alias).
func TestClassCacheEpochWrap(t *testing.T) {
	tr := newTestTree()
	tr.EnableClassCache()
	p := geom.V(5.25, 5.25, 5.25)
	for i := 0; i < 70; i++ {
		want := Free
		if i%2 == 1 {
			want = Occupied
		}
		// Flip the voxel's state; each mutation bumps the epoch on the next
		// query.
		for tr.At(p) != want {
			if want == Occupied {
				tr.MarkOccupied(p)
			} else {
				tr.MarkFree(p)
			}
		}
		if got := tr.At(p); got != want {
			t.Fatalf("iteration %d: At = %v, want %v", i, got, want)
		}
	}
}

// TestFirstBlockedStartsInsideOccupiedVoxel: a ray beginning inside a
// blocked voxel must report a collision at exactly frac 0 (the perception
// kernel turns this into time-to-collision 0, an immediate brake).
func TestFirstBlockedStartsInsideOccupiedVoxel(t *testing.T) {
	tr := newTestTree()
	a := geom.V(8.25, 8.25, 8.25)
	tr.MarkOccupied(a)
	q := QueryPolicy{UnknownIsFree: true}
	frac, ok := tr.FirstBlocked(a, geom.V(20, 8.25, 8.25), q)
	if !ok || frac != 0 {
		t.Fatalf("FirstBlocked from inside occupied voxel = (%v, %v), want (0, true)", frac, ok)
	}
	if tr.SegmentFree(a, geom.V(20, 8.25, 8.25), q) {
		t.Fatal("SegmentFree from inside occupied voxel = true")
	}
	// With the vehicle radius, starting adjacent to the occupied voxel also
	// collides at frac 0 via the probe offsets.
	frac, ok = tr.FirstBlocked(geom.V(8.25, 8.65, 8.25), geom.V(20, 8.65, 8.25), QueryPolicy{UnknownIsFree: true, Radius: 0.55})
	if !ok || frac != 0 {
		t.Fatalf("FirstBlocked with probe inside occupied voxel = (%v, %v), want (0, true)", frac, ok)
	}
}

// TestSegmentQueriesZeroLength: degenerate segments must behave exactly like
// point queries.
func TestSegmentQueriesZeroLength(t *testing.T) {
	tr := newTestTree()
	occ := geom.V(4.25, 4.25, 4.25)
	tr.MarkOccupied(occ)
	q := QueryPolicy{UnknownIsFree: true}
	if tr.SegmentFree(occ, occ, q) {
		t.Fatal("zero-length segment in occupied voxel reported free")
	}
	if frac, ok := tr.FirstBlocked(occ, occ, q); !ok || frac != 0 {
		t.Fatalf("zero-length FirstBlocked in occupied voxel = (%v, %v), want (0, true)", frac, ok)
	}
	free := geom.V(10.25, 10.25, 10.25)
	tr.MarkFree(free)
	if !tr.SegmentFree(free, free, q) {
		t.Fatal("zero-length segment in free voxel reported blocked")
	}
	if _, ok := tr.FirstBlocked(free, free, q); ok {
		t.Fatal("zero-length FirstBlocked in free voxel reported a collision")
	}
	// Pessimistic policy: a zero-length segment in unknown space is blocked.
	if tr.SegmentFree(geom.V(20.25, 20.25, 8.25), geom.V(20.25, 20.25, 8.25), QueryPolicy{}) {
		t.Fatal("zero-length segment in unknown voxel reported free under pessimistic policy")
	}
}

// TestSegmentQueriesAxisAlignedOnVoxelBoundary pins the floor convention for
// rays travelling exactly along a voxel boundary plane: a coordinate exactly
// on the boundary belongs to the upper voxel (key = floor(coord/res)), so
// occupancy in the lower voxel row must not block the ray and occupancy in
// the upper row must.
func TestSegmentQueriesAxisAlignedOnVoxelBoundary(t *testing.T) {
	q := QueryPolicy{UnknownIsFree: true}
	a := geom.V(2.0, 6.0, 4.25) // y=6.0 is a voxel boundary at res 0.5
	b := geom.V(14.0, 6.0, 4.25)

	lower := newTestTree()
	for x := 0.25; x < 16; x += 0.5 {
		lower.MarkOccupied(geom.V(x, 5.75, 4.25)) // row below the boundary
	}
	if !lower.SegmentFree(a, b, q) {
		t.Fatal("boundary ray blocked by the voxel row below the boundary")
	}

	upper := newTestTree()
	for x := 0.25; x < 16; x += 0.5 {
		upper.MarkOccupied(geom.V(x, 6.25, 4.25)) // row containing y=6.0
	}
	if upper.SegmentFree(a, b, q) {
		t.Fatal("boundary ray not blocked by the voxel row containing the boundary")
	}
	if frac, ok := upper.FirstBlocked(a, b, q); !ok || frac > 1e-6 {
		t.Fatalf("boundary ray FirstBlocked = (%v, %v), want a collision at ~0", frac, ok)
	}
}

// TestSegmentQueriesDegenerateAxisDelta pins the walker-overshoot guard: an
// axis delta below the DDA's 1e-12 threshold (step 0) whose endpoints still
// straddle a voxel boundary makes the end key unreachable, and the walker
// burns its defensive step budget drifting past the clipped key range —
// queries must treat those artifact keys as walk exhaustion, not crash the
// armed classification cache or misreport a collision.
func TestSegmentQueriesDegenerateAxisDelta(t *testing.T) {
	tr := newTestTree()
	tr.EnableClassCache()
	q := QueryPolicy{UnknownIsFree: true}
	a := geom.V(5.25, 6.0-4e-13, 1.2)
	b := geom.V(5.25, 6.0+4e-13, 0.1)
	if !tr.SegmentFree(a, b, q) {
		t.Fatal("degenerate-axis segment in unknown-free space reported blocked")
	}
	if _, ok := tr.FirstBlocked(a, b, q); ok {
		t.Fatal("degenerate-axis segment in unknown-free space reported a collision")
	}
	// The same geometry against a pessimistic policy is blocked by the very
	// first (unknown) voxel, before any overshoot.
	if tr.SegmentFree(a, b, QueryPolicy{}) {
		t.Fatal("degenerate-axis segment in unknown space reported free under pessimistic policy")
	}

	// Overshoot voxels can also stay in range: an occupied voxel past the
	// segment end, in line with the drifting walk, must not produce a
	// phantom collision.
	tr2 := newTestTree()
	tr2.EnableClassCache()
	a2 := geom.V(5.25, 6.0-4e-13, 4.25)
	b2 := geom.V(5.25, 6.0+4e-13, 3.25)
	tr2.MarkOccupied(geom.V(5.25, 5.75, 2.25)) // below b2, never crossed
	if !tr2.SegmentFree(a2, b2, q) {
		t.Fatal("occupied voxel beyond the segment end blocked a degenerate-axis segment")
	}
	if frac, ok := tr2.FirstBlocked(a2, b2, q); ok {
		t.Fatalf("occupied voxel beyond the segment end reported a phantom collision at %v", frac)
	}
}

// TestSegmentQueriesLeavingVolume: a segment exiting the mapped volume is in
// collision at the exit crossing (out-of-volume space is Occupied, as in At).
func TestSegmentQueriesLeavingVolume(t *testing.T) {
	tr := newTestTree() // volume spans x ∈ [0,32)... root cube; bounds x ≤ 32
	q := QueryPolicy{UnknownIsFree: true}
	a := geom.V(28, 8.25, 8.25)
	b := geom.V(40, 8.25, 8.25) // exits through the x=32 root face at frac 1/3
	if tr.SegmentFree(a, b, q) {
		t.Fatal("volume-exiting segment reported free")
	}
	frac, ok := tr.FirstBlocked(a, b, q)
	if !ok {
		t.Fatal("volume-exiting segment reported no collision")
	}
	if want := (32.0 - 28.0) / 12.0; math.Abs(frac-want) > 1e-3 {
		t.Fatalf("volume exit frac = %v, want ≈ %v", frac, want)
	}
	// Starting outside is an immediate collision.
	if frac, ok := tr.FirstBlocked(geom.V(-1, 8, 8), geom.V(5, 8, 8), q); !ok || frac != 0 {
		t.Fatalf("segment starting outside volume = (%v, %v), want (0, true)", frac, ok)
	}
}
