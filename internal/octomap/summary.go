package octomap

// occSummary is the hierarchical occupancy summary behind the PR 5 collision
// probes: one uint16 per 8³ block of leaf keys counting how many unit-depth
// leaves inside the block currently classify as Occupied. The collision
// queries consult it through the bundle prescan (bundleAllFree in
// fusedwalk.go): when every block the seven probe walks could classify in
// holds a zero count, the query is answered without walking — under a policy
// where only Occupied blocks the vehicle (UnknownIsFree, the pipeline's
// optimistic navigation policy), a zero count proves every voxel in the
// block unblocked, so the elided probes could not have changed the answer.
// When any block in range is occupied, the walks run with no summary
// overhead at all, so results are bit-identical to the per-ray reference in
// both regimes.
//
// Exactness, not invalidation: the counts are maintained incrementally by
// applyDelta on every occupied↔free/unknown leaf transition — the same call
// that bumps the tree mutation counter — so the summary is exact after every
// mutation and there is no epoch to invalidate. The other mutation source,
// descend's expand, copies a parent's log-odds into its eight children;
// evidence is only ever applied at unit depth (descend always descends to
// level 0), so an expanded node's log-odds is exactly 0 (unknown) and the
// expansion cannot change any block's occupied count. TestOccSummaryMatchesRecount
// pins the counts against a brute-force reclassification under interleaved
// insertion, marking, and querying.
//
// Aliasing: the defensive walker-overshoot budget (see rayFree) means the
// insertion path can, in a degenerate-axis case, hand descend a key one or
// two steps outside [0, maxKey). descend addresses nodes by the low depth
// bits only, so such an update lands on the leaf at key&(maxKey-1) per axis;
// summaryIndex masks the same way so the count moves with the leaf the
// evidence actually reached.
type occSummary struct {
	counts []uint16 // occupied unit leaves per block; nil when over the cap
	nb     int      // blocks per axis: (maxKey + 7) >> summaryBlockShift
}

// summaryBlockShift sets the summary block edge: 8 leaf voxels (4 m at the
// 0.5 m default resolution).
const summaryBlockShift = 3

// maxSummaryBlocks caps the summary footprint (2 bytes per block, 4 MiB at
// the cap). A volume over the cap runs without the summary, exactly as the
// classification cache degrades over its own cap.
const maxSummaryBlocks = 1 << 21

// initSummary sizes the summary for the tree's key cube. Called once by New.
func (t *Tree) initSummary() {
	nb := (t.maxKey + 7) >> summaryBlockShift
	if nb < 1 {
		nb = 1
	}
	t.sum.nb = nb
	if blocks := nb * nb * nb; blocks <= maxSummaryBlocks {
		t.sum.counts = make([]uint16, blocks)
	}
}

// summaryIndex returns the flat block index of leaf key (x, y, z), masking
// each axis to the key cube first (see the aliasing note on occSummary).
func (t *Tree) summaryIndex(x, y, z int) int {
	bx := (x & t.keyMask) >> summaryBlockShift
	by := (y & t.keyMask) >> summaryBlockShift
	bz := (z & t.keyMask) >> summaryBlockShift
	return (bz*t.sum.nb+by)*t.sum.nb + bx
}
