package platform

import (
	"testing"
)

func TestI9MatchesPaperLatencies(t *testing.T) {
	p := I9()
	// The paper's §VI-C reports these i9 kernel costs directly.
	if p.OctoMapS != 0.289 {
		t.Errorf("OctoMap latency = %v, want 0.289 (paper)", p.OctoMapS)
	}
	if p.PlanS != 0.083 {
		t.Errorf("plan latency = %v, want 0.083 (paper)", p.PlanS)
	}
	if p.ControlS != 0.00046 {
		t.Errorf("control latency = %v, want 0.00046 (paper)", p.ControlS)
	}
	if p.Cores != 14 || p.FreqGHz != 3.3 || p.PowerW != 165 {
		t.Errorf("i9 specs: %+v", p)
	}
}

func TestTX2SlowerEverywhere(t *testing.T) {
	i9, tx2 := I9(), TX2()
	if tx2.PCGenS <= i9.PCGenS || tx2.OctoMapS <= i9.OctoMapS ||
		tx2.ColCheckS <= i9.ColCheckS || tx2.PlanS <= i9.PlanS ||
		tx2.ControlS <= i9.ControlS {
		t.Error("TX2 not uniformly slower than i9")
	}
	if tx2.PowerW >= i9.PowerW {
		t.Error("TX2 should draw less power")
	}
	if tx2.Cores != 4 || tx2.FreqGHz != 2.0 {
		t.Errorf("TX2 specs: %+v", tx2)
	}
}

func TestResponseTime(t *testing.T) {
	p := I9()
	want := p.PCGenS + p.OctoMapS + p.ColCheckS + p.ControlS
	if got := p.ResponseTimeS(); got != want {
		t.Errorf("ResponseTimeS = %v, want %v", got, want)
	}
	if TX2().ResponseTimeS() <= I9().ResponseTimeS() {
		t.Error("TX2 response not slower")
	}
}

func TestRedundancyModules(t *testing.T) {
	if NoRedundancy.Modules() != 1 || DMR.Modules() != 2 || TMR.Modules() != 3 {
		t.Error("module counts wrong")
	}
	if NoRedundancy.String() != "D&R" || DMR.String() != "DMR" || TMR.String() != "TMR" {
		t.Error("redundancy names wrong")
	}
}

func TestPerfModelOrdering(t *testing.T) {
	cu := CortexA57Unit()
	tResp := TX2().ResponseTimeS()
	const mission = 400.0
	for _, af := range []Airframe{AirSimUAV(), DJISpark()} {
		dr := Evaluate(af, cu, NoRedundancy, tResp, mission)
		dmr := Evaluate(af, cu, DMR, tResp, mission)
		tmr := Evaluate(af, cu, TMR, tResp, mission)
		// Redundancy monotonically costs velocity, time, and energy.
		if !(dr.VelocityMS >= dmr.VelocityMS && dmr.VelocityMS >= tmr.VelocityMS) {
			t.Errorf("%s velocity ordering: %v %v %v", af.Name, dr.VelocityMS, dmr.VelocityMS, tmr.VelocityMS)
		}
		if !(dr.FlightTimeS <= dmr.FlightTimeS && dmr.FlightTimeS <= tmr.FlightTimeS) {
			t.Errorf("%s time ordering: %v %v %v", af.Name, dr.FlightTimeS, dmr.FlightTimeS, tmr.FlightTimeS)
		}
		if !(dr.EnergyJ <= dmr.EnergyJ && dmr.EnergyJ <= tmr.EnergyJ) {
			t.Errorf("%s energy ordering: %v %v %v", af.Name, dr.EnergyJ, dmr.EnergyJ, tmr.EnergyJ)
		}
		if dr.VelocityMS <= 0 || dr.FlightTimeS <= 0 || dr.EnergyJ <= 0 {
			t.Errorf("%s non-positive perf: %+v", af.Name, dr)
		}
	}
}

func TestPerfModelSparkSuffersMore(t *testing.T) {
	// The paper's Fig. 8 core finding: redundant compute hardware costs
	// the small DJI Spark far more than the larger AirSim UAV (1.91× vs
	// 1.06× flight time for TMR).
	cu := CortexA57Unit()
	tResp := TX2().ResponseTimeS()
	const mission = 400.0
	ratio := func(af Airframe) float64 {
		dr := Evaluate(af, cu, NoRedundancy, tResp, mission)
		tmr := Evaluate(af, cu, TMR, tResp, mission)
		return tmr.FlightTimeS / dr.FlightTimeS
	}
	airsim := ratio(AirSimUAV())
	spark := ratio(DJISpark())
	if spark <= airsim {
		t.Errorf("Spark TMR ratio %v not worse than AirSim %v", spark, airsim)
	}
	if airsim < 1.0 || airsim > 1.4 {
		t.Errorf("AirSim TMR ratio %v out of plausible band (paper: 1.06)", airsim)
	}
	if spark < 1.3 {
		t.Errorf("Spark TMR ratio %v too small (paper: 1.91)", spark)
	}
}

func TestPerfModelStructuralSpeedCap(t *testing.T) {
	// A huge sensing range cannot push velocity past the airframe's
	// structural top speed.
	af := AirSimUAV()
	af.SenseRangeM = 1e6
	p := Evaluate(af, CortexA57Unit(), NoRedundancy, 0.01, 400)
	if p.VelocityMS > af.VMaxMS+1e-9 {
		t.Errorf("velocity %v exceeds structural cap %v", p.VelocityMS, af.VMaxMS)
	}
}

func TestPerfModelBarelyFlyable(t *testing.T) {
	// Overloading a tiny airframe with compute still yields a positive,
	// finite result (the barely-flyable floor).
	af := DJISpark()
	heavy := ComputeUnit{Name: "brick", PowerW: 100, MassKg: 5}
	p := Evaluate(af, heavy, TMR, 1.0, 400)
	if p.VelocityMS <= 0 || p.FlightTimeS <= 0 {
		t.Errorf("overloaded airframe: %+v", p)
	}
}
