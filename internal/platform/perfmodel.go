package platform

import "math"

// This file implements the cyber-physical "visual performance model" of
// Krishnan et al., "The Sky Is Not the Limit" (IEEE CAL 2020) — reference
// [16] of the paper — which Fig. 8 uses to compare hardware redundancy
// (DMR/TMR) against the software anomaly-detection schemes on two airframes.
//
// The model's chain: compute latency bounds how fast the vehicle may fly
// before it can no longer stop within its sensing range; compute power and
// weight reduce the energy and thrust available for flight. Redundant
// compute (DMR/TMR) multiplies compute power and weight, lowering velocity
// and raising mission time and energy.

// Airframe describes one vehicle for the performance model.
type Airframe struct {
	Name string
	// MassKg is the base vehicle mass without the companion computer.
	MassKg float64
	// MaxThrustN is the total thrust capability.
	MaxThrustN float64
	// BatteryJ is usable battery energy.
	BatteryJ float64
	// SenseRangeM is the obstacle-sensing range.
	SenseRangeM float64
	// HoverBaseW is hover power at base mass.
	HoverBaseW float64
	// VMaxMS is the airframe's structural top speed.
	VMaxMS float64
}

// AirSimUAV returns the larger AirSim-style quadrotor used in the paper's
// Fig. 8b.
func AirSimUAV() Airframe {
	return Airframe{
		Name:        "AirSim UAV",
		MassKg:      3.0,
		MaxThrustN:  78,
		BatteryJ:    480e3,
		SenseRangeM: 20,
		HoverBaseW:  480,
		VMaxMS:      12,
	}
}

// DJISpark returns the small consumer drone of Fig. 8c; its tiny mass budget
// is what makes redundant compute hardware so costly on it.
func DJISpark() Airframe {
	return Airframe{
		Name:        "DJI Spark",
		MassKg:      0.30,
		MaxThrustN:  5.5,
		BatteryJ:    58e3,
		SenseRangeM: 10,
		HoverBaseW:  55,
		VMaxMS:      8,
	}
}

// Redundancy enumerates the hardware protection schemes compared in Fig. 8.
type Redundancy int

const (
	// NoRedundancy is the software anomaly-D&R configuration: a single
	// compute unit, negligible added weight or power.
	NoRedundancy Redundancy = iota
	// DMR is dual modular redundancy: two compute units (detection only).
	DMR
	// TMR is triple modular redundancy: three compute units with voting.
	TMR
)

// String implements fmt.Stringer.
func (r Redundancy) String() string {
	switch r {
	case DMR:
		return "DMR"
	case TMR:
		return "TMR"
	default:
		return "D&R"
	}
}

// Modules returns the compute-unit multiplier.
func (r Redundancy) Modules() float64 {
	switch r {
	case DMR:
		return 2
	case TMR:
		return 3
	default:
		return 1
	}
}

// ComputeUnit is the physical companion computer carried by the airframe.
type ComputeUnit struct {
	Name   string
	PowerW float64
	MassKg float64
}

// CortexA57Unit returns the Jetson-class module used in Fig. 8 (both
// configurations run on ARM Cortex-A57 per the paper).
func CortexA57Unit() ComputeUnit {
	return ComputeUnit{Name: "Cortex-A57", PowerW: 15, MassKg: 0.085}
}

// Perf is the performance-model output for one configuration.
type Perf struct {
	Airframe    string
	Scheme      string
	VelocityMS  float64
	FlightTimeS float64
	EnergyJ     float64
}

// Evaluate runs the visual performance model for one airframe carrying the
// compute unit under the given redundancy, for a mission of the given
// length in metres. responseTimeS is the pipeline sensor-to-command latency
// (redundancy adds a voting/synchronisation delay of 5% per extra module).
func Evaluate(af Airframe, cu ComputeUnit, r Redundancy, responseTimeS, missionM float64) Perf {
	modules := r.Modules()
	// Redundant modules ride along: more mass, more power, plus a voting
	// latency penalty.
	mass := af.MassKg + cu.MassKg*modules
	computeW := cu.PowerW * modules
	tResp := responseTimeS * (1 + 0.05*(modules-1))

	// Thrust-to-weight sets achievable acceleration (reserve 1 g to hover).
	const g = 9.81
	accel := af.MaxThrustN/mass - g
	if accel < 0.5 {
		accel = 0.5 // barely flyable
	}

	// Max safe velocity: the vehicle must stop within its sensing range
	// after a full pipeline reaction delay:
	//   v·t_resp + v²/(2a) ≤ d_sense
	// solved for v:
	v := accel * (math.Sqrt(tResp*tResp+2*af.SenseRangeM/accel) - tResp)
	if v > af.VMaxMS {
		v = af.VMaxMS
	}

	// Hover power scales with mass^1.5 (rotorcraft induced-power law).
	hoverW := af.HoverBaseW * math.Pow(mass/af.MassKg, 1.5)

	t := missionM / v
	e := (hoverW + computeW) * t
	return Perf{
		Airframe:    af.Name,
		Scheme:      r.String(),
		VelocityMS:  v,
		FlightTimeS: t,
		EnergyJ:     e,
	}
}
