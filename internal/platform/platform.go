// Package platform models the compute platforms, redundancy schemes, and
// the cyber-physical "visual performance model" the paper uses for its
// hardware comparisons (Fig. 8, Fig. 9).
//
// Compute time is simulated: every kernel invocation charges a
// platform-specific latency to the mission clock, so overhead percentages
// and platform comparisons are reproducible regardless of the host machine.
package platform

// Platform describes one companion-computer model with its per-kernel
// latencies in seconds. The i9 latencies for map update (289 ms), trajectory
// generation (83 ms), and control recomputation (0.46 ms) are taken directly
// from the paper's §VI-C; the rest are set to MAVBench-scale values.
type Platform struct {
	Name    string
	Cores   int
	FreqGHz float64
	PowerW  float64 // companion-computer draw
	// Kernel latencies, seconds per invocation.
	PCGenS    float64 // point cloud generation, per frame
	OctoMapS  float64 // occupancy map update, per integration
	ColCheckS float64 // collision check, per tick
	PlanS     float64 // motion planning + smoothening ("trajectory generation")
	ControlS  float64 // path tracking / command issue, per tick
	// Detector costs, seconds per observation tick.
	GADObserveS float64 // 13 range checks + Welford updates
	AADObserveS float64 // 13-6-3-13 autoencoder forward pass
}

// I9 returns the Intel i9-9940X companion-computer model (the paper's
// default platform: 14 cores, 3.3 GHz, 165 W).
func I9() Platform {
	return Platform{
		Name:    "i9-9940X",
		Cores:   14,
		FreqGHz: 3.3,
		PowerW:  165,

		PCGenS:    0.012,
		OctoMapS:  0.289, // paper: ~289 ms per occupancy map update
		ColCheckS: 0.010,
		PlanS:     0.083, // paper: ~83 ms per trajectory generation
		ControlS:  0.00046,

		GADObserveS: 6.0e-8, // 13 range checks + Welford updates
		AADObserveS: 2.5e-6, // 13-6-3-13 autoencoder forward pass
	}
}

// TX2 returns the NVIDIA Jetson TX2 / ARM Cortex-A57 companion-computer
// model (4 cores, 2 GHz, <15 W). Kernel latencies scale by the
// single-thread-performance gap to the i9 — the paper reports the worst
// flight time growing 2.8× on the TX2 because the edge platform responds
// more slowly to environmental changes.
func TX2() Platform {
	const slowdown = 7.0
	p := I9()
	p.Name = "Cortex-A57"
	p.Cores = 4
	p.FreqGHz = 2.0
	p.PowerW = 15
	p.PCGenS *= slowdown
	p.OctoMapS *= slowdown
	p.ColCheckS *= slowdown
	p.PlanS *= slowdown
	p.ControlS *= slowdown
	p.GADObserveS *= slowdown
	p.AADObserveS *= slowdown
	return p
}

// ResponseTimeS returns the sensor-to-command latency of one pipeline pass,
// the t_response input of the visual performance model: the perception and
// control path that must complete before a new command reflects a new
// obstacle.
func (p Platform) ResponseTimeS() float64 {
	return p.PCGenS + p.OctoMapS + p.ColCheckS + p.ControlS
}
