package detect

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"mavfi/internal/nn"
)

// This file implements detector model persistence: a campaign trains the
// detectors once on the ground station and the serialised models deploy to
// the vehicle. The format is plain JSON — inspectable, diffable, and
// dependency-free.

// gadModel is the serialised form of a GAD.
type gadModel struct {
	Version    int           `json:"version"`
	NSigma     float64       `json:"n_sigma"`
	MinSamples int           `json:"min_samples"`
	Online     bool          `json:"online"`
	SigmaFloor float64       `json:"sigma_floor,omitempty"`
	Floors     []float64     `json:"floors"`
	CGADs      []welfordJSON `json:"cgads"`
}

type welfordJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	S    float64 `json:"s"`
}

// SaveGAD serialises a trained Gaussian detector.
func SaveGAD(w io.Writer, g *GAD) error {
	m := gadModel{
		Version:    1,
		NSigma:     g.NSigma,
		MinSamples: g.MinSamples,
		Online:     g.Online,
		SigmaFloor: g.SigmaFloor,
		Floors:     g.floors[:],
	}
	for i := range g.cgads {
		n, mean, s := g.cgads[i].State()
		m.CGADs = append(m.CGADs, welfordJSON{N: n, Mean: mean, S: s})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// LoadGAD deserialises a Gaussian detector.
func LoadGAD(r io.Reader) (*GAD, error) {
	var m gadModel
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("detect: decoding GAD model: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("detect: unsupported GAD model version %d", m.Version)
	}
	if len(m.CGADs) != NumStates || len(m.Floors) != NumStates {
		return nil, fmt.Errorf("detect: GAD model has %d states, want %d", len(m.CGADs), NumStates)
	}
	g := &GAD{
		NSigma:     m.NSigma,
		MinSamples: m.MinSamples,
		Online:     m.Online,
		SigmaFloor: m.SigmaFloor,
	}
	copy(g.floors[:], m.Floors)
	for i, c := range m.CGADs {
		g.cgads[i].Restore(c.N, c.Mean, c.S)
	}
	return g, nil
}

// aadModel is the serialised form of an AAD.
type aadModel struct {
	Version   int         `json:"version"`
	Mean      []float64   `json:"mean"`
	Std       []float64   `json:"std"`
	Threshold float64     `json:"threshold"`
	Margin    float64     `json:"margin"`
	Layers    []layerJSON `json:"layers"`
}

type layerJSON struct {
	In  int         `json:"in"`
	Out int         `json:"out"`
	Act int         `json:"act"`
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
}

// SaveAAD serialises a trained autoencoder detector.
func SaveAAD(w io.Writer, a *AAD) error {
	if !a.trained {
		return fmt.Errorf("detect: refusing to save an untrained AAD")
	}
	m := aadModel{
		Version:   1,
		Mean:      a.mean[:],
		Std:       a.std[:],
		Threshold: a.Threshold,
		Margin:    a.Margin,
	}
	for _, l := range a.net.Layers {
		// The layer stores weights as one contiguous row-major block; the
		// model file keeps the original row-per-neuron JSON layout.
		rows := make([][]float64, l.Out)
		for i := range rows {
			rows[i] = append([]float64(nil), l.Row(i)...)
		}
		m.Layers = append(m.Layers, layerJSON{
			In: l.In, Out: l.Out, Act: int(l.Act), W: rows, B: l.B,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// LoadAAD deserialises an autoencoder detector.
func LoadAAD(r io.Reader) (*AAD, error) {
	var m aadModel
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("detect: decoding AAD model: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("detect: unsupported AAD model version %d", m.Version)
	}
	if len(m.Mean) != NumStates || len(m.Std) != NumStates {
		return nil, fmt.Errorf("detect: AAD model dimension %d, want %d", len(m.Mean), NumStates)
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("detect: AAD model has no layers")
	}
	if m.Layers[0].In != NumStates || m.Layers[len(m.Layers)-1].Out != NumStates {
		return nil, fmt.Errorf("detect: AAD model input/output width mismatch")
	}

	a := &AAD{Threshold: m.Threshold, Margin: m.Margin, trained: true}
	copy(a.mean[:], m.Mean)
	copy(a.std[:], m.Std)

	// Rebuild the network and install the weights.
	sizes := []int{m.Layers[0].In}
	acts := make([]nn.Activation, 0, len(m.Layers))
	for _, l := range m.Layers {
		sizes = append(sizes, l.Out)
		acts = append(acts, nn.Activation(l.Act))
	}
	a.net = nn.NewNetwork(sizes, acts, rand.New(rand.NewSource(0)))
	for li, l := range m.Layers {
		dst := a.net.Layers[li]
		if dst.In != l.In || dst.Out != l.Out || len(l.W) != l.Out || len(l.B) != l.Out {
			return nil, fmt.Errorf("detect: AAD layer %d shape mismatch", li)
		}
		for i := range l.W {
			if len(l.W[i]) != l.In {
				return nil, fmt.Errorf("detect: AAD layer %d row %d width mismatch", li, i)
			}
			copy(dst.Row(i), l.W[i])
		}
		copy(dst.B, l.B)
	}
	return a, nil
}
