package detect

import (
	"mavfi/internal/faultinject"
	"mavfi/internal/stats"
)

// GAD is the Gaussian-based anomaly detection scheme (§IV-C): one customised
// Gaussian detector (cGAD) per monitored inter-kernel state, grouped per PPC
// stage. Each cGAD maintains an online Gaussian model of its state's delta
// via the paper's Welford recurrences (Eqs. 1–2); a sample more than NSigma
// standard deviations from the mean raises the stage's alarm, triggering
// recomputation of that stage.
//
// GAD judges each state independently — it has no cross-state correlation
// information, the structural weakness the paper contrasts with AAD.
type GAD struct {
	// NSigma is the alarm threshold in standard deviations (the paper's
	// configurable n, default 3).
	NSigma float64
	// MinSamples gates alarming until each cGAD has seen this many
	// samples, avoiding warm-up false positives.
	MinSamples int
	// Online, when true, keeps updating the Gaussian models with
	// non-anomalous in-mission samples after pre-training.
	Online bool
	// SigmaFloor, when positive, overrides the per-state floors with one
	// uniform minimum σ (used by the preprocessing ablation).
	SigmaFloor float64
	// floors are the per-state minimum effective standard deviations, in
	// preprocessed-delta units. A near-constant state (e.g.
	// future_collision_seq sits at -1 for most of a flight) would
	// otherwise collapse to σ≈0 and alarm on arbitrarily small noise.
	// One delta unit is a ×2 value change: smooth magnitude states
	// (way-points, positions) keep a low 0.2 floor so single-exponent
	// displacement corruption stays detectable (n·0.2 < 1), while states
	// with coarse legitimate jumps (time-to-collision during braking,
	// collision sequence indices, acceleration under gusts) get a full
	// 1.0 unit of slack.
	floors [NumStates]float64

	cgads [NumStates]stats.Welford
}

// defaultFloors returns the per-state σ floors described above.
func defaultFloors() [NumStates]float64 {
	var f [NumStates]float64
	for i := range f {
		f[i] = 0.2
	}
	f[faultinject.StateTimeToCollision] = 1.0
	f[faultinject.StateFutureColSeq] = 1.0
	f[faultinject.StateAccMag] = 1.0
	f[faultinject.StateVelX] = 0.5
	f[faultinject.StateVelY] = 0.5
	f[faultinject.StateVelZ] = 0.5
	// Fused-position echoes are monitor-only states (not injection
	// targets); a wider floor suppresses alarms from legitimate
	// power-of-two magnitude crossings as the vehicle traverses the map.
	f[faultinject.StatePosX] = 0.5
	f[faultinject.StatePosY] = 0.5
	f[faultinject.StatePosZ] = 0.5
	return f
}

// NewGAD returns a GAD with the experiment defaults (online updates enabled,
// per-state σ floors).
func NewGAD(nSigma float64) *GAD {
	return &GAD{NSigma: nSigma, MinSamples: 25, Online: true, floors: defaultFloors()}
}

// Clone returns an independent copy of the detector. The Gaussian models
// live in value arrays, so the clone's online updates never touch the
// original — each parallel mission carries its own clone.
func (g *GAD) Clone() *GAD {
	c := *g
	return &c
}

// inRange applies the n-sigma test with the state's σ floor.
func (g *GAD) inRange(i int, cg *stats.Welford, x float64) bool {
	floor := g.floors[i]
	if g.SigmaFloor > 0 {
		floor = g.SigmaFloor
	}
	sd := cg.Std()
	if sd < floor {
		sd = floor
	}
	d := x - cg.Mean()
	if d < 0 {
		d = -d
	}
	// NaN deltas (possible under exponent-field corruption) must fail the
	// range test: NaN comparisons are false, so check the negation.
	return d <= g.NSigma*sd
}

// Name implements Detector.
func (g *GAD) Name() string { return "Gaussian" }

// Reset implements Detector. The trained Gaussian models persist across
// missions; only transient per-mission state would be cleared, and GAD has
// none.
func (g *GAD) Reset() {}

// Train folds one error-free preprocessed sample into the Gaussian models;
// the campaign calls this over recordings from the hundred randomised
// training environments.
func (g *GAD) Train(deltas [NumStates]float64) {
	for i, d := range deltas {
		g.cgads[i].Add(d)
	}
}

// TrainedSamples returns the per-state sample count of the first cGAD, a
// training-progress probe.
func (g *GAD) TrainedSamples() int { return g.cgads[0].N() }

// Sigma exposes cGAD i's current deviation for a value, for tests and the
// sigma-sweep ablation.
func (g *GAD) Sigma(i int, x float64) float64 { return g.cgads[i].Sigma(x) }

// Observe implements Detector: each cGAD range-checks its state's delta;
// out-of-range states raise their stage's alarm. Normal samples optionally
// continue updating the model online.
func (g *GAD) Observe(t float64, deltas [NumStates]float64) []Recovery {
	var alarmed [3]bool
	anyAlarm := false
	for i, d := range deltas {
		cg := &g.cgads[i]
		if cg.N() >= g.MinSamples && !g.inRange(i, cg, d) {
			st := faultinject.StateStage(faultinject.StateID(i))
			alarmed[st] = true
			anyAlarm = true
			continue // anomalous sample: do not fold into the model
		}
		if g.Online {
			cg.Add(d)
		}
	}
	if !anyAlarm {
		return nil
	}
	var out []Recovery
	for st, a := range alarmed {
		if a {
			out = append(out, Recovery{Stage: faultinject.Stage(st), T: t})
		}
	}
	return out
}
