package detect

import (
	"math"
	"math/rand"
	"sort"

	"mavfi/internal/faultinject"
	"mavfi/internal/nn"
	"mavfi/internal/stats"
)

// AAD is the autoencoder-based anomaly detection scheme (§IV-D): a single
// small fully connected autoencoder consumes the preprocessed deltas of all
// 13 monitored states at once, learning the correlations among inter-kernel
// states during unsupervised training on error-free flights. At inference, a
// reconstruction error (MSE) above the trained threshold raises the alarm,
// which triggers recomputation of the control stage only — the cheapest
// recovery point, since stopping the corrupted command from being issued is
// sufficient to cease error propagation.
type AAD struct {
	net *nn.Network

	// mean/std standardise each input dimension from training statistics.
	mean [NumStates]float64
	std  [NumStates]float64

	// Threshold is the alarm bound on reconstruction MSE: the upper bound
	// of the reconstruction error over the error-free training data,
	// scaled by Margin.
	Threshold float64
	// Margin scales the trained threshold (1.0 reproduces the paper).
	Margin float64

	trained bool
}

// AADConfig configures the autoencoder architecture and training.
type AADConfig struct {
	// Hidden and Bottleneck give the encoder sizes: input 13 → Hidden →
	// Bottleneck, mirrored by the decoder back to 13. The paper's
	// architecture is Hidden=6, Bottleneck=3.
	Hidden     int
	Bottleneck int
	// Epochs and BatchSize control Adam training.
	Epochs    int
	BatchSize int
	// LR overrides the Adam learning rate when non-zero.
	LR float64
	// ThresholdPercentile sets the alarm threshold at this percentile of
	// the error-free reconstruction errors (default 92.5). The paper uses
	// the upper bound; a percentile is the robust equivalent when the
	// error-free corpus contains rare legitimate transients (braking,
	// gusts). AAD false alarms are nearly free — a 0.46 ms control
	// recomputation from last-good states — so the threshold sits low
	// enough to catch single-exponent displacement corruption.
	ThresholdPercentile float64
}

// DefaultAADConfig returns the paper's architecture (13-6-3-13) and the
// training budget used in the experiments.
func DefaultAADConfig() AADConfig {
	return AADConfig{Hidden: 6, Bottleneck: 3, Epochs: 30, BatchSize: 32, ThresholdPercentile: 92.5}
}

// NewAAD builds an untrained autoencoder detector.
func NewAAD(cfg AADConfig, rng *rand.Rand) *AAD {
	sizes := []int{NumStates, cfg.Hidden, cfg.Bottleneck, NumStates}
	acts := []nn.Activation{nn.Tanh, nn.Tanh, nn.Identity}
	return &AAD{
		net:    nn.NewNetwork(sizes, acts, rng),
		Margin: 1.0,
	}
}

// Name implements Detector.
func (a *AAD) Name() string { return "Autoencoder" }

// Reset implements Detector (the trained model persists across missions).
func (a *AAD) Reset() {}

// Trained reports whether Train has completed.
func (a *AAD) Trained() bool { return a.trained }

// Train fits the autoencoder on error-free preprocessed samples with Adam +
// MSE (unsupervised: target = input), then sets the alarm threshold to the
// maximum reconstruction error observed on the training data.
func (a *AAD) Train(data [][NumStates]float64, cfg AADConfig, rng *rand.Rand) {
	if len(data) == 0 {
		return
	}
	// Standardisation statistics.
	for d := 0; d < NumStates; d++ {
		sum := 0.0
		for _, s := range data {
			sum += s[d]
		}
		a.mean[d] = sum / float64(len(data))
		varSum := 0.0
		for _, s := range data {
			diff := s[d] - a.mean[d]
			varSum += diff * diff
		}
		a.std[d] = math.Sqrt(varSum / float64(len(data)))
		if a.std[d] < 1e-3 {
			a.std[d] = 1e-3
		}
	}

	adam := nn.DefaultAdam()
	if cfg.LR > 0 {
		adam.LR = cfg.LR
	}
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 32
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	x := make([]float64, NumStates)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[start:end] {
				a.standardize(data[i], x)
				a.net.Forward(x)
				a.net.BackwardMSE(x)
			}
			a.net.AdamStep(adam, end-start)
		}
	}

	// Threshold: the (percentile-robust) upper bound of the reconstruction
	// error on error-free data (paper §IV-D).
	errs := make([]float64, 0, len(data))
	for _, s := range data {
		errs = append(errs, a.reconError(s))
	}
	sort.Float64s(errs)
	p := cfg.ThresholdPercentile
	if p <= 0 || p > 100 {
		p = 100
	}
	a.Threshold = stats.Percentile(errs, p) * a.Margin
	a.trained = true
}

// Clone returns an inference clone: it shares the trained weights and
// threshold but owns its forward-pass scratch, so parallel missions can each
// carry a clone and Observe concurrently. Clones must not be retrained.
func (a *AAD) Clone() *AAD {
	c := *a
	c.net = a.net.CloneForInference()
	return &c
}

func (a *AAD) standardize(s [NumStates]float64, out []float64) {
	for d := 0; d < NumStates; d++ {
		out[d] = (s[d] - a.mean[d]) / a.std[d]
	}
}

// reconError returns the reconstruction MSE for one sample.
func (a *AAD) reconError(s [NumStates]float64) float64 {
	x := make([]float64, NumStates)
	a.standardize(s, x)
	y := a.net.Forward(x)
	return nn.MSE(y, x)
}

// ReconError exposes the reconstruction error for tests and ablations.
func (a *AAD) ReconError(s [NumStates]float64) float64 { return a.reconError(s) }

// Observe implements Detector: alarm when the reconstruction error exceeds
// the trained threshold; recovery recomputes the control stage.
func (a *AAD) Observe(t float64, deltas [NumStates]float64) []Recovery {
	if !a.trained {
		return nil
	}
	e := a.reconError(deltas)
	// A NaN reconstruction error means non-finite inputs reached the
	// detector — unambiguously anomalous.
	if !math.IsNaN(e) && e <= a.Threshold {
		return nil
	}
	return []Recovery{{Stage: faultinject.StageControl, T: t}}
}

// Params returns the trainable parameter count (overhead accounting).
func (a *AAD) Params() int { return a.net.Params() }
