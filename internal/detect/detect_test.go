package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mavfi/internal/faultinject"
)

func TestSignExp(t *testing.T) {
	// 1.0 has biased exponent 1023, sign 0 → 1023.
	if got := SignExp(1.0); got != 1023 {
		t.Errorf("SignExp(1.0) = %d", got)
	}
	// -1.0 sets the sign bit: 0x800 | 1023 = 3071, as int16 that is
	// 3071 (fits), i.e. 2048+1023.
	if got := SignExp(-1.0); got != 3071 {
		t.Errorf("SignExp(-1.0) = %d", got)
	}
	if got := SignExp(0.0); got != 0 {
		t.Errorf("SignExp(0) = %d", got)
	}
}

func TestSignExpDeadband(t *testing.T) {
	// Values under the 0.25 noise floor map to 0 regardless of sign — the
	// hover-oscillation case.
	for _, x := range []float64{0, 0.1, -0.1, 0.24, -0.24, 1e-12, -1e-12} {
		if got := SignExpDeadband(x); got != 0 {
			t.Errorf("SignExpDeadband(%v) = %d, want 0", x, got)
		}
	}
	// Magnitude growth is monotone above the floor.
	prev := int16(0)
	for _, x := range []float64{0.5, 1, 2, 4, 8, 1e10} {
		got := SignExpDeadband(x)
		if got <= prev {
			t.Errorf("SignExpDeadband(%v) = %d not increasing", x, got)
		}
		prev = got
	}
	// Sign symmetry.
	if SignExpDeadband(-8) != -SignExpDeadband(8) {
		t.Error("deadband transform not sign-symmetric")
	}
	// Non-finite values saturate far beyond ordinary magnitudes.
	inf := SignExpDeadband(math.Inf(1))
	if inf <= SignExpDeadband(1e300) {
		t.Errorf("Inf transform %d not saturated", inf)
	}
	if SignExpDeadband(math.Inf(-1)) != -inf {
		t.Error("negative Inf not symmetric")
	}
}

func TestSignExpDeadbandQuick(t *testing.T) {
	f := func(x float64) bool {
		got := SignExpDeadband(x)
		if math.IsNaN(x) {
			return got != 0 // NaN must look extreme, not benign
		}
		if math.Abs(x) < 0.25 {
			return got == 0
		}
		return (x > 0) == (got > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPreprocessorDeltas(t *testing.T) {
	var p Preprocessor
	var v StateVector
	v[0] = 1.0
	_, ready := p.Process(v)
	if ready {
		t.Error("first sample marked ready")
	}
	// Same values → zero deltas.
	d, ready := p.Process(v)
	if !ready {
		t.Error("second sample not ready")
	}
	for i, x := range d {
		if x != 0 {
			t.Errorf("delta[%d] = %v on constant input", i, x)
		}
	}
	// Magnitude jump → positive delta on that dim only.
	v[0] = 256.0
	d, _ = p.Process(v)
	if d[0] <= 0 {
		t.Errorf("delta after jump = %v", d[0])
	}
	for i := 1; i < NumStates; i++ {
		if d[i] != 0 {
			t.Errorf("unrelated delta[%d] = %v", i, d[i])
		}
	}
	p.Reset()
	_, ready = p.Process(v)
	if ready {
		t.Error("ready after reset")
	}
}

func TestPreprocessorRawMode(t *testing.T) {
	p := Preprocessor{Raw: true}
	var v StateVector
	v[3] = 10
	p.Process(v)
	v[3] = 12.5
	d, _ := p.Process(v)
	if d[3] != 2.5 {
		t.Errorf("raw delta = %v", d[3])
	}
}

func trainedGAD(t *testing.T) *GAD {
	t.Helper()
	g := NewGAD(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		var d [NumStates]float64
		for j := range d {
			d[j] = rng.NormFloat64() * 0.5 // calm normal dynamics
		}
		g.Train(d)
	}
	return g
}

func TestGADDetectsOutlier(t *testing.T) {
	g := trainedGAD(t)
	var normal [NumStates]float64
	if recs := g.Observe(1.0, normal); len(recs) != 0 {
		t.Errorf("false alarm on zeros: %v", recs)
	}
	var anomalous [NumStates]float64
	anomalous[int(faultinject.StateWpX)] = 500 // huge planning-state delta
	recs := g.Observe(2.0, anomalous)
	if len(recs) != 1 {
		t.Fatalf("recoveries = %v", recs)
	}
	if recs[0].Stage != faultinject.StagePlanning {
		t.Errorf("stage = %v, want planning", recs[0].Stage)
	}
	if recs[0].T != 2.0 {
		t.Errorf("T = %v", recs[0].T)
	}
}

func TestGADStageAttribution(t *testing.T) {
	g := trainedGAD(t)
	var d [NumStates]float64
	d[int(faultinject.StateTimeToCollision)] = 500 // perception
	d[int(faultinject.StateVelZ)] = -500           // control
	recs := g.Observe(1, d)
	stages := map[faultinject.Stage]bool{}
	for _, r := range recs {
		stages[r.Stage] = true
	}
	if !stages[faultinject.StagePerception] || !stages[faultinject.StageControl] {
		t.Errorf("stages = %v", stages)
	}
	if stages[faultinject.StagePlanning] {
		t.Error("spurious planning recovery")
	}
}

func TestGADSigmaFloor(t *testing.T) {
	g := NewGAD(4)
	// Constant training data: σ collapses to zero.
	for i := 0; i < 200; i++ {
		var d [NumStates]float64
		g.Train(d)
	}
	// Smooth states (way-point coordinates, floor 0.2 → threshold 0.8):
	// sub-threshold noise tolerated, a full exponent step (×2 value
	// displacement) alarms — that is the corruption class the detectors
	// exist for.
	wpx := int(faultinject.StateWpX)
	var noise [NumStates]float64
	noise[wpx] = 0.5
	if recs := g.Observe(1, noise); len(recs) != 0 {
		t.Errorf("alarm on sub-threshold noise: %v", recs)
	}
	var step [NumStates]float64
	step[wpx] = 1
	if recs := g.Observe(1, step); len(recs) == 0 {
		t.Error("no alarm on exponent step with collapsed sigma")
	}
	// Coarse states (time-to-collision, floor 1.0 → threshold 4): a
	// single step is legitimate braking dynamics, a many-step jump alarms.
	ttc := int(faultinject.StateTimeToCollision)
	var brake [NumStates]float64
	brake[ttc] = 2
	if recs := g.Observe(1, brake); len(recs) != 0 {
		t.Errorf("alarm on braking-scale ttc change: %v", recs)
	}
	var corrupt [NumStates]float64
	corrupt[ttc] = 20
	if recs := g.Observe(1, corrupt); len(recs) == 0 {
		t.Error("no alarm on corrupted ttc jump")
	}
}

func TestGADNaNAlarms(t *testing.T) {
	g := trainedGAD(t)
	var d [NumStates]float64
	d[5] = math.NaN()
	if recs := g.Observe(1, d); len(recs) == 0 {
		t.Error("NaN delta did not alarm")
	}
}

func TestGADOnlineUpdateExcludesAnomalies(t *testing.T) {
	g := trainedGAD(t)
	before := g.TrainedSamples()
	var anomalous [NumStates]float64
	for i := range anomalous {
		anomalous[i] = 1000
	}
	g.Observe(1, anomalous)
	if g.TrainedSamples() != before {
		t.Error("anomalous sample folded into the model")
	}
	var normal [NumStates]float64
	g.Observe(2, normal)
	if g.TrainedSamples() != before+1 {
		t.Error("online update of normal sample missing")
	}
	g.Online = false
	g.Observe(3, normal)
	if g.TrainedSamples() != before+1 {
		t.Error("offline GAD still updating")
	}
}

func TestGADWarmupGate(t *testing.T) {
	g := NewGAD(4)
	for i := 0; i < 5; i++ { // below MinSamples
		var d [NumStates]float64
		g.Train(d)
	}
	var big [NumStates]float64
	big[0] = 1e6
	if recs := g.Observe(1, big); len(recs) != 0 {
		t.Error("alarm during warm-up")
	}
}

func trainAADOnCalm(t *testing.T, cfg AADConfig) *AAD {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	var data [][NumStates]float64
	for i := 0; i < 600; i++ {
		var d [NumStates]float64
		for j := range d {
			d[j] = rng.NormFloat64() * 0.4
		}
		// Inject correlation: vx delta follows wp_x delta.
		d[int(faultinject.StateVelX)] = d[int(faultinject.StateWpX)] + rng.NormFloat64()*0.05
		data = append(data, d)
	}
	a := NewAAD(cfg, rng)
	a.Train(data, cfg, rng)
	return a
}

func TestAADTrainsAndThresholds(t *testing.T) {
	cfg := DefaultAADConfig()
	cfg.Epochs = 15
	a := trainAADOnCalm(t, cfg)
	if !a.Trained() {
		t.Fatal("not trained")
	}
	if a.Threshold <= 0 {
		t.Fatalf("threshold = %v", a.Threshold)
	}
	if a.Params() != 13*6+6+6*3+3+3*13+13 {
		t.Errorf("params = %d", a.Params())
	}
}

func TestAADDetectsLargeAnomaly(t *testing.T) {
	cfg := DefaultAADConfig()
	cfg.Epochs = 15
	a := trainAADOnCalm(t, cfg)

	var normal [NumStates]float64
	if recs := a.Observe(1, normal); len(recs) != 0 {
		t.Errorf("false alarm on zeros: %v", recs)
	}
	var anomalous [NumStates]float64
	anomalous[int(faultinject.StateWpY)] = 900
	recs := a.Observe(2, anomalous)
	if len(recs) != 1 {
		t.Fatalf("recoveries = %v", recs)
	}
	// AAD recovery always targets the control stage (the paper's design).
	if recs[0].Stage != faultinject.StageControl {
		t.Errorf("stage = %v, want control", recs[0].Stage)
	}
}

func TestAADNaNAlarms(t *testing.T) {
	cfg := DefaultAADConfig()
	cfg.Epochs = 10
	a := trainAADOnCalm(t, cfg)
	var d [NumStates]float64
	d[0] = math.NaN()
	if recs := a.Observe(1, d); len(recs) == 0 {
		t.Error("NaN input did not alarm")
	}
}

func TestAADUntrainedSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAAD(DefaultAADConfig(), rng)
	var d [NumStates]float64
	d[0] = 1e9
	if recs := a.Observe(1, d); recs != nil {
		t.Error("untrained AAD alarmed")
	}
	// Training on empty data is a no-op.
	a.Train(nil, DefaultAADConfig(), rng)
	if a.Trained() {
		t.Error("trained on empty corpus")
	}
}

func TestAADCorrelationAdvantage(t *testing.T) {
	// The paper's argument: AAD exploits correlation among states. A
	// sample that breaks the learned vx≈wp_x correlation while keeping
	// each value individually in range must reconstruct worse than a
	// correlation-respecting sample.
	cfg := DefaultAADConfig()
	cfg.Epochs = 40
	a := trainAADOnCalm(t, cfg)

	var consistent, broken [NumStates]float64
	consistent[int(faultinject.StateWpX)] = 1.0
	consistent[int(faultinject.StateVelX)] = 1.0 // follows correlation
	broken[int(faultinject.StateWpX)] = 1.0
	broken[int(faultinject.StateVelX)] = -1.0 // breaks correlation

	if a.ReconError(broken) <= a.ReconError(consistent) {
		t.Errorf("correlation-breaking sample reconstructs better: %v <= %v",
			a.ReconError(broken), a.ReconError(consistent))
	}
}

func TestDetectorNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if NewGAD(3).Name() != "Gaussian" {
		t.Error("GAD name")
	}
	if NewAAD(DefaultAADConfig(), rng).Name() != "Autoencoder" {
		t.Error("AAD name")
	}
}

func TestAADCloneMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultAADConfig()
	cfg.Epochs = 5
	aad := NewAAD(cfg, rng)
	data := make([][NumStates]float64, 200)
	for i := range data {
		for d := 0; d < NumStates; d++ {
			data[i][d] = rng.NormFloat64() * 0.1
		}
	}
	aad.Train(data, cfg, rng)

	clone := aad.Clone()
	if !clone.Trained() || clone.Threshold != aad.Threshold {
		t.Fatal("clone lost trained state")
	}
	var probe [NumStates]float64
	for d := 0; d < NumStates; d++ {
		probe[d] = rng.NormFloat64()
	}
	if co, ao := clone.ReconError(probe), aad.ReconError(probe); co != ao {
		t.Errorf("clone recon error %v != original %v", co, ao)
	}
	// Clones observe concurrently without racing (checked under -race).
	done := make(chan bool, 4)
	for w := 0; w < 4; w++ {
		go func() {
			c := aad.Clone()
			for i := 0; i < 100; i++ {
				c.Observe(float64(i), probe)
			}
			done <- true
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
