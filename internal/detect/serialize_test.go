package detect

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestGADRoundTrip(t *testing.T) {
	g := trainedGAD(t)
	g.NSigma = 3.7
	var buf bytes.Buffer
	if err := SaveGAD(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGAD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NSigma != g.NSigma || loaded.MinSamples != g.MinSamples || loaded.Online != g.Online {
		t.Errorf("config mismatch: %+v vs %+v", loaded.NSigma, g.NSigma)
	}
	if loaded.TrainedSamples() != g.TrainedSamples() {
		t.Errorf("samples %d vs %d", loaded.TrainedSamples(), g.TrainedSamples())
	}
	// Behavioural equivalence: identical verdicts on normal and anomalous
	// samples.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		var d [NumStates]float64
		for j := range d {
			d[j] = rng.NormFloat64() * float64(1+i%40)
		}
		a := g.Observe(1, d)
		b := loaded.Observe(1, d)
		if len(a) != len(b) {
			t.Fatalf("verdict diverged on sample %d: %v vs %v", i, a, b)
		}
	}
}

func TestAADRoundTrip(t *testing.T) {
	cfg := DefaultAADConfig()
	cfg.Epochs = 10
	a := trainAADOnCalm(t, cfg)
	var buf bytes.Buffer
	if err := SaveAAD(&buf, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAAD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != a.Threshold {
		t.Errorf("threshold %v vs %v", loaded.Threshold, a.Threshold)
	}
	// Bit-identical reconstruction errors.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		var d [NumStates]float64
		for j := range d {
			d[j] = rng.NormFloat64() * 3
		}
		if got, want := loaded.ReconError(d), a.ReconError(d); got != want {
			t.Fatalf("recon error diverged: %v vs %v", got, want)
		}
	}
}

func TestSaveAADRejectsUntrained(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAAD(DefaultAADConfig(), rng)
	var buf bytes.Buffer
	if err := SaveAAD(&buf, a); err == nil {
		t.Error("saved an untrained AAD")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadGAD(strings.NewReader("{not json")); err == nil {
		t.Error("accepted malformed GAD JSON")
	}
	if _, err := LoadAAD(strings.NewReader("{not json")); err == nil {
		t.Error("accepted malformed AAD JSON")
	}
	if _, err := LoadGAD(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("accepted unknown GAD version")
	}
	if _, err := LoadAAD(strings.NewReader(`{"version":1,"mean":[1],"std":[1]}`)); err == nil {
		t.Error("accepted wrong AAD dimensions")
	}
}
