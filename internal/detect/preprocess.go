// Package detect implements the paper's two anomaly detection and recovery
// schemes: Gaussian-based (GAD, §IV-C) and autoencoder-based (AAD, §IV-D),
// plus the shared data-preprocessing front end (§IV-B).
//
// Both detectors watch the same 13 inter-kernel states each control tick
// and, on an alarm, emit the stage(s) whose recomputation stops the error
// from propagating further down the PPC pipeline.
package detect

import (
	"math"

	"mavfi/internal/faultinject"
)

// NumStates is the monitored-state vector width (13, the paper's
// autoencoder input size).
const NumStates = int(faultinject.NumMonitoredStates)

// StateVector is one tick's snapshot of the monitored inter-kernel states,
// indexed by faultinject.StateID.
type StateVector [NumStates]float64

// SignExp performs the paper's raw data-format transformation: the sign and
// exponent bits of a float64 are extracted into a 16-bit integer (bits
// 52–63, a 12-bit value). Mantissa corruption is insignificant for value
// magnitude, so monitoring only sign+exponent cuts detector cost while
// keeping sensitivity to the impactful bit flips (§III-B).
func SignExp(x float64) int16 {
	return int16(math.Float64bits(x) >> 52)
}

// deadbandExp is the IEEE-754 biased exponent of the noise floor 2⁻² =
// 0.25: state magnitudes below it are physically indistinguishable from
// hover noise.
const deadbandExp = 1021

// SignExpDeadband is the production variant of the transform: a signed
// exponent with a deadband at the noise floor. It maps x to
// sign(x)·max(exp(x) − floor, 0), so a velocity oscillating around zero
// transforms to a constant 0 instead of flapping its sign bit (a ±2048
// swing in the raw transform that would swamp the detectors), while
// magnitude-scale corruption still produces large deltas. Non-finite values
// map to the saturated extreme.
func SignExpDeadband(x float64) int16 {
	bits := math.Float64bits(x)
	exp := int((bits >> 52) & 0x7FF)
	mag := exp - deadbandExp
	if mag < 0 {
		mag = 0
	}
	if bits>>63 == 1 {
		return int16(-mag)
	}
	return int16(mag)
}

// Preprocessor implements the two-step preprocessing block: data-format
// transformation followed by per-state delta computation (the change of the
// transformed value between consecutive time points). Delta distributions
// are near-Gaussian and much narrower than the raw values, widening the
// normal/anomaly separation.
type Preprocessor struct {
	prev    [NumStates]int16
	hasPrev bool

	// Raw, when true, bypasses the sign+exponent transform and computes
	// deltas of the raw float64 values instead — the ablation arm of the
	// preprocessing design choice.
	Raw     bool
	prevRaw [NumStates]float64
}

// Reset clears history (start of a new mission).
func (p *Preprocessor) Reset() {
	*p = Preprocessor{Raw: p.Raw}
}

// Process converts the state snapshot into the detector input: per-state
// deltas of the transformed values. ready is false for the first sample of
// a mission, which has no predecessor.
func (p *Preprocessor) Process(v StateVector) (deltas [NumStates]float64, ready bool) {
	if p.Raw {
		for i, x := range v {
			deltas[i] = x - p.prevRaw[i]
			p.prevRaw[i] = x
		}
	} else {
		for i, x := range v {
			cur := SignExpDeadband(x)
			deltas[i] = float64(int(cur) - int(p.prev[i]))
			p.prev[i] = cur
		}
	}
	ready = p.hasPrev
	p.hasPrev = true
	return deltas, ready
}

// Recovery is one recovery request raised by a detector: recompute the
// given stage at mission time T.
type Recovery struct {
	Stage faultinject.Stage
	T     float64
}

// Detector is an anomaly detection scheme plugged into the pipeline's
// anomaly-detection ROS node.
type Detector interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Observe consumes one tick's preprocessed deltas and returns the
	// stages to recompute (empty when no anomaly).
	Observe(t float64, deltas [NumStates]float64) []Recovery
	// Reset clears per-mission state while keeping the trained model.
	Reset()
}
