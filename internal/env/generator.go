package env

import (
	"math/rand"

	"mavfi/internal/geom"
)

// GenConfig parameterises the random environment generator. The paper
// describes a configuration pair [obstacle density, side length of cuboid
// obstacles (meters)]: Sparse = [0.05, 6], Dense = [0.2, 10].
type GenConfig struct {
	// Density is the target fraction of the ground plane covered by
	// obstacle footprints.
	Density float64
	// Side is the side length of the square obstacle footprint in metres.
	Side float64
	// Height is the obstacle height; defaults to 12 m when zero, taller
	// than the cruise altitude so obstacles cannot be overflown.
	Height float64
	// Area is the side length of the square flight volume; defaults 60 m.
	Area float64
	// Ceiling is the volume height; defaults 20 m.
	Ceiling float64
	// SideJitter randomises each obstacle's side by ±SideJitter fraction
	// (0 = exact side everywhere).
	SideJitter float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Height == 0 {
		c.Height = 12
	}
	if c.Area == 0 {
		c.Area = 60
	}
	if c.Ceiling == 0 {
		c.Ceiling = 20
	}
	return c
}

// Generate builds a random world from cfg using rng. The start is placed in
// the south-west corner region and the goal in the north-east corner; a
// clearance region around each is kept obstacle-free so every generated
// mission is feasible.
func Generate(name string, cfg GenConfig, rng *rand.Rand) *World {
	cfg = cfg.withDefaults()
	w := &World{
		Name:          name,
		Bounds:        geom.Box(geom.V(0, 0, 0), geom.V(cfg.Area, cfg.Area, cfg.Ceiling)),
		Start:         geom.V(5, 5, 0),
		Goal:          geom.V(cfg.Area-5, cfg.Area-5, 2.5),
		GoalTolerance: 1.5,
	}
	targetCover := cfg.Density * cfg.Area * cfg.Area
	covered := 0.0
	const keepClear = 7.0 // metres around start and goal
	maxTries := 1000
	for covered < targetCover && maxTries > 0 {
		maxTries--
		side := cfg.Side
		if cfg.SideJitter > 0 {
			side *= 1 + (rng.Float64()*2-1)*cfg.SideJitter
		}
		cx := rng.Float64() * cfg.Area
		cy := rng.Float64() * cfg.Area
		ob := geom.BoxAt(geom.V(cx, cy, cfg.Height/2), geom.V(side, side, cfg.Height))
		if ob.Expand(keepClear).Contains(w.Start) || ob.Expand(keepClear).Contains(w.Goal) {
			continue
		}
		w.Obstacles = append(w.Obstacles, ob)
		covered += side * side
	}
	return w
}

// Sparse generates the paper's Sparse environment: [density 0.05, side 6 m].
func Sparse(rng *rand.Rand) *World {
	return Generate("Sparse", GenConfig{Density: 0.05, Side: 6}, rng)
}

// Dense generates the paper's Dense environment: [density 0.2, side 10 m].
func Dense(rng *rand.Rand) *World {
	return Generate("Dense", GenConfig{Density: 0.2, Side: 10}, rng)
}

// Training generates one of the "hundred of error-free randomized
// environments" used to train the detectors: density and obstacle size are
// themselves randomised between the Sparse and Dense extremes.
func Training(i int, rng *rand.Rand) *World {
	density := 0.02 + rng.Float64()*0.18 // 0.02 .. 0.20
	side := 4 + rng.Float64()*8          // 4 .. 12 m
	return Generate("Training", GenConfig{Density: density, Side: side, SideJitter: 0.2}, rng)
}
