package env

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// linearRaycast is the unaccelerated reference: the exact loop Raycast ran
// before the spatial index existed.
func linearRaycast(w *World, origin, dir geom.Vec3, maxRange float64) float64 {
	best := maxRange
	if dir.Z < -1e-12 {
		t := -origin.Z / dir.Z
		if t >= 0 && t < best {
			best = t
		}
	}
	for _, ob := range w.Obstacles {
		if hit, t := ob.RayIntersection(origin, dir); hit && t >= 0 && t < best {
			best = t
		}
	}
	return best
}

func linearAnyWithin(w *World, p geom.Vec3, radius float64) bool {
	for _, ob := range w.Obstacles {
		if ob.Dist(p) <= radius {
			return true
		}
	}
	return false
}

// denseTestWorld generates a world big enough to cross the indexing
// threshold.
func denseTestWorld(rng *rand.Rand) *World {
	w := Generate("accel-test", GenConfig{Density: 0.25, Side: 5, SideJitter: 0.4}, rng)
	if len(w.Obstacles) < accelMinObstacles {
		panic("test world too sparse to exercise the index")
	}
	return w
}

// TestIndexedRaycastBitIdentical fires randomized rays through an indexed
// world and demands bit-identical distances to the linear reference scan.
func TestIndexedRaycastBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := denseTestWorld(rng)
	if w.index() == nil {
		t.Fatalf("world with %d obstacles did not build an index", len(w.Obstacles))
	}
	for i := 0; i < 5000; i++ {
		origin := geom.V(rng.Float64()*60, rng.Float64()*60, rng.Float64()*20)
		az := rng.Float64() * 2 * math.Pi
		el := (rng.Float64() - 0.5) * math.Pi
		dir := geom.V(math.Cos(el)*math.Cos(az), math.Cos(el)*math.Sin(az), math.Sin(el))
		maxRange := 1 + rng.Float64()*40
		got := w.Raycast(origin, dir, maxRange)
		want := linearRaycast(w, origin, dir, maxRange)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ray %d from %v dir %v: indexed %v != linear %v", i, origin, dir, got, want)
		}
	}
}

// TestIndexedOccupiedBitIdentical checks the sphere queries agree with the
// linear scan on randomized probes, including points far outside the world.
func TestIndexedOccupiedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := denseTestWorld(rng)
	for i := 0; i < 20000; i++ {
		p := geom.V(rng.Float64()*90-15, rng.Float64()*90-15, rng.Float64()*30-5)
		radius := rng.Float64() * 2
		if got, want := w.anyObstacleWithin(p, radius), linearAnyWithin(w, p, radius); got != want {
			t.Fatalf("probe %d at %v r=%v: indexed %v != linear %v", i, p, radius, got, want)
		}
	}
}

// TestIndexedQueryOnExactBoxBoundary is the regression test for the
// cellRange clamp: a probe sitting exactly `radius` beyond a face of the
// obstacle-union box (so the interval's lower cell floors to n, and the
// distance early-reject does not fire) must not index past the grid.
func TestIndexedQueryOnExactBoxBoundary(t *testing.T) {
	w := &World{
		Name:   "boundary",
		Bounds: geom.Box(geom.V(0, 0, 0), geom.V(70, 70, 20)),
		Start:  geom.V(1, 1, 0), Goal: geom.V(69, 69, 2), GoalTolerance: 1,
	}
	// 12 integer-aligned obstacles so the union box has round extents and
	// the cell size divides them exactly.
	for i := 0; i < 12; i++ {
		x := float64(4 + 5*i)
		w.Obstacles = append(w.Obstacles, geom.Box(geom.V(x, 4, 0), geom.V(x+2, 64, 8)))
	}
	if w.index() == nil {
		t.Fatal("expected an index")
	}
	box := w.index().box
	const r = 0.5
	probes := []geom.Vec3{
		{X: box.Max.X + r, Y: box.Max.Y, Z: box.Max.Z},
		{X: box.Max.X, Y: box.Max.Y + r, Z: box.Max.Z},
		{X: box.Max.X, Y: box.Max.Y, Z: box.Max.Z + r},
		{X: box.Min.X - r, Y: box.Min.Y, Z: box.Min.Z},
		box.Max, box.Min,
	}
	for _, p := range probes {
		if got, want := w.anyObstacleWithin(p, r), linearAnyWithin(w, p, r); got != want {
			t.Errorf("probe %v: indexed %v != linear %v", p, got, want)
		}
	}
	for _, dir := range []geom.Vec3{{X: 1}, {Y: 1}, {Z: 1}, {X: -1}} {
		got := w.Raycast(box.Max, dir, 30)
		want := linearRaycast(w, box.Max, dir, 30)
		if got != want {
			t.Errorf("ray from box corner along %v: indexed %v != linear %v", dir, got, want)
		}
	}
}

// TestSmallWorldsSkipIndex pins the threshold behaviour: preset-sized
// obstacle sets stay on the linear path.
func TestSmallWorldsSkipIndex(t *testing.T) {
	if Factory().index() != nil {
		t.Error("Factory should not build an index")
	}
	if Farm().index() != nil {
		t.Error("Farm should not build an index")
	}
	w := denseTestWorld(rand.New(rand.NewSource(13)))
	if w.index() == nil {
		t.Error("dense generated world should build an index")
	}
}
