package env

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

// benchRays draws a fixed fan of rays over a dense generated world.
func benchRays() (*World, []geom.Vec3, geom.Vec3) {
	w := denseTestWorld(rand.New(rand.NewSource(31)))
	dirs := make([]geom.Vec3, 384)
	for i := range dirs {
		az := float64(i) / float64(len(dirs)) * 2 * math.Pi
		el := (float64(i%16)/15 - 0.5) * math.Pi / 3
		dirs[i] = geom.V(math.Cos(el)*math.Cos(az), math.Cos(el)*math.Sin(az), math.Sin(el))
	}
	return w, dirs, geom.V(30, 30, 3)
}

// BenchmarkRaycastIndexed measures one depth frame's worth of rays through
// the spatial index.
func BenchmarkRaycastIndexed(b *testing.B) {
	w, dirs, origin := benchRays()
	w.index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range dirs {
			w.Raycast(origin, d, 20)
		}
	}
}

// BenchmarkRaycastLinear measures the same rays through the pre-PR2 linear
// obstacle scan.
func BenchmarkRaycastLinear(b *testing.B) {
	w, dirs, origin := benchRays()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range dirs {
			linearRaycast(w, origin, d, 20)
		}
	}
}
