package env

import (
	"math"

	"mavfi/internal/geom"
)

// accelMinObstacles is the obstacle count below which spatial indexing is
// skipped: the preset scenes hold a handful of cuboids, where the linear
// scan is already faster than a grid traversal. Generated stress worlds
// (dense forests, city blocks) cross this threshold and get the index.
const accelMinObstacles = 12

// obstacleIndex is a uniform-grid spatial index over a World's obstacle set,
// built once per World and shared read-only by every concurrent mission.
// Cells store obstacle indices in CSR layout (cellStart/items) so queries
// allocate nothing. Queries return exactly the values the linear scans
// return: candidate obstacles are tested with the same geom predicates, and
// min-distance/any-hit reductions are order-independent, so accelerated
// worlds stay bit-identical to unindexed ones.
type obstacleIndex struct {
	box           geom.AABB // covers every obstacle
	nx, ny, nz    int
	csx, csy, csz float64 // cell sizes
	cellStart     []int32 // CSR offsets, len nx*ny*nz+1
	items         []int32 // obstacle indices
}

// buildIndex constructs the grid. Cell sizes target ~4 m — comparable to the
// obstacle footprints this workload generates — clamped to at most 64 cells
// per axis.
func buildIndex(obstacles []geom.AABB) *obstacleIndex {
	idx := &obstacleIndex{}
	box := geom.AABB{Min: geom.V(1, 1, 1), Max: geom.V(0, 0, 0)} // empty
	for _, ob := range obstacles {
		box = box.Union(ob)
	}
	idx.box = box
	size := box.Size()
	dim := func(s float64) int {
		n := int(math.Ceil(s / 4))
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = 64
		}
		return n
	}
	idx.nx, idx.ny, idx.nz = dim(size.X), dim(size.Y), dim(size.Z)
	idx.csx = size.X / float64(idx.nx)
	idx.csy = size.Y / float64(idx.ny)
	idx.csz = size.Z / float64(idx.nz)

	cells := idx.nx * idx.ny * idx.nz
	counts := make([]int32, cells+1)
	eachCell := func(ob geom.AABB, fn func(cell int)) {
		x0, x1 := idx.cellRange(ob.Min.X, ob.Max.X, idx.box.Min.X, idx.csx, idx.nx)
		y0, y1 := idx.cellRange(ob.Min.Y, ob.Max.Y, idx.box.Min.Y, idx.csy, idx.ny)
		z0, z1 := idx.cellRange(ob.Min.Z, ob.Max.Z, idx.box.Min.Z, idx.csz, idx.nz)
		for z := z0; z <= z1; z++ {
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					fn((z*idx.ny+y)*idx.nx + x)
				}
			}
		}
	}
	for i := range obstacles {
		eachCell(obstacles[i], func(cell int) { counts[cell+1]++ })
	}
	for c := 0; c < cells; c++ {
		counts[c+1] += counts[c]
	}
	idx.cellStart = counts
	idx.items = make([]int32, idx.cellStart[cells])
	cursor := make([]int32, cells)
	for i := range obstacles {
		eachCell(obstacles[i], func(cell int) {
			idx.items[idx.cellStart[cell]+cursor[cell]] = int32(i)
			cursor[cell]++
		})
	}
	return idx
}

// cellRange maps a world-coordinate interval to the covered (clamped)
// inclusive cell range on one axis. Both ends clamp into [0, n-1]: an
// interval starting exactly on the box's max face would otherwise floor to
// cell n and index past the grid.
func (idx *obstacleIndex) cellRange(lo, hi, origin, cs float64, n int) (int, int) {
	c0 := int(math.Floor((lo - origin) / cs))
	c1 := int(math.Floor((hi - origin) / cs))
	if c0 < 0 {
		c0 = 0
	}
	if c0 > n-1 {
		c0 = n - 1
	}
	if c1 < 0 {
		c1 = 0
	}
	if c1 > n-1 {
		c1 = n - 1
	}
	if c1 < c0 {
		c1 = c0
	}
	return c0, c1
}

// anyWithin reports whether any obstacle surface lies within radius of p —
// the accelerated core of Occupied/Collides. Obstacles may be tested more
// than once when they span several cells; the OR-reduction makes duplicates
// harmless (a per-query mailbox would need mutation and break read-only
// sharing across mission goroutines).
func (idx *obstacleIndex) anyWithin(obstacles []geom.AABB, p geom.Vec3, radius float64) bool {
	x0, x1 := idx.cellRange(p.X-radius, p.X+radius, idx.box.Min.X, idx.csx, idx.nx)
	y0, y1 := idx.cellRange(p.Y-radius, p.Y+radius, idx.box.Min.Y, idx.csy, idx.ny)
	z0, z1 := idx.cellRange(p.Z-radius, p.Z+radius, idx.box.Min.Z, idx.csz, idx.nz)
	// Points far outside the indexed box cannot be near any obstacle; the
	// clamped range would still scan boundary cells, so reject early.
	if idx.box.Dist(p) > radius {
		return false
	}
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				cell := (z*idx.ny+y)*idx.nx + x
				for _, oi := range idx.items[idx.cellStart[cell]:idx.cellStart[cell+1]] {
					if obstacles[oi].Dist(p) <= radius {
						return true
					}
				}
			}
		}
	}
	return false
}

// raycast returns min(best, first obstacle intersection along origin+t*dir),
// walking grid cells front-to-back with a 3-D DDA and stopping as soon as
// the running minimum precedes the next cell. Candidates go through the same
// geom.AABB.RayIntersection as the linear scan, so the returned distance is
// bit-identical to scanning every obstacle.
func (idx *obstacleIndex) raycast(obstacles []geom.AABB, origin, dir geom.Vec3, best float64) float64 {
	end := origin.Add(dir.Scale(best))
	ok, t0, t1 := idx.box.SegmentIntersection(origin, end)
	if !ok {
		return best
	}
	// Enter slightly inside the box so the starting cell is unambiguous.
	p0 := origin.Add(dir.Scale(best * (t0 + 1e-12)))
	enter, exit := best*t0, best*t1

	cellOf := func(v, o, cs float64, n int) int {
		c := int(math.Floor((v - o) / cs))
		if c < 0 {
			c = 0
		}
		if c > n-1 {
			c = n - 1
		}
		return c
	}
	x := cellOf(p0.X, idx.box.Min.X, idx.csx, idx.nx)
	y := cellOf(p0.Y, idx.box.Min.Y, idx.csy, idx.ny)
	z := cellOf(p0.Z, idx.box.Min.Z, idx.csz, idx.nz)

	stepX, tMaxX, tDeltaX := rayAxis(origin.X-idx.box.Min.X, dir.X, idx.csx, x)
	stepY, tMaxY, tDeltaY := rayAxis(origin.Y-idx.box.Min.Y, dir.Y, idx.csy, y)
	stepZ, tMaxZ, tDeltaZ := rayAxis(origin.Z-idx.box.Min.Z, dir.Z, idx.csz, z)

	tCell := enter
	for {
		cell := (z*idx.ny+y)*idx.nx + x
		for _, oi := range idx.items[idx.cellStart[cell]:idx.cellStart[cell+1]] {
			if hit, t := obstacles[oi].RayIntersection(origin, dir); hit && t >= 0 && t < best {
				best = t
			}
		}
		// Next cell boundary along the ray.
		next := tMaxX
		axis := 0
		if tMaxY < next {
			next, axis = tMaxY, 1
		}
		if tMaxZ < next {
			next, axis = tMaxZ, 2
		}
		// Every obstacle in a later cell intersects the ray at t >= tCell of
		// that cell (within DDA rounding); once the running minimum precedes
		// the next boundary by a safety margin, later cells cannot improve it.
		if next > exit || best <= tCell || best+1e-9 <= next {
			return best
		}
		tCell = next
		switch axis {
		case 0:
			x += stepX
			tMaxX += tDeltaX
			if x < 0 || x >= idx.nx {
				return best
			}
		case 1:
			y += stepY
			tMaxY += tDeltaY
			if y < 0 || y >= idx.ny {
				return best
			}
		default:
			z += stepZ
			tMaxZ += tDeltaZ
			if z < 0 || z >= idx.nz {
				return best
			}
		}
	}
}

// rayAxis computes DDA stepping state for one grid axis given the ray's
// origin offset within the grid, its direction component, the cell size, and
// the starting cell.
func rayAxis(pos, dir, cs float64, cell int) (step int, tMax, tDelta float64) {
	switch {
	case dir > 1e-12:
		step = 1
		tMax = (float64(cell+1)*cs - pos) / dir
		tDelta = cs / dir
	case dir < -1e-12:
		step = -1
		tMax = (pos - float64(cell)*cs) / -dir
		tDelta = cs / -dir
	default:
		step = 0
		tMax = math.Inf(1)
		tDelta = math.Inf(1)
	}
	return step, tMax, tDelta
}
