package env

import (
	"math/rand"
	"testing"

	"mavfi/internal/geom"
	"mavfi/internal/testutil"
)

// TestWorldQueriesAllocFree: the world queries the depth camera and the
// simulator hammer every tick must not allocate, with or without the
// spatial index.
func TestWorldQueriesAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are meaningless under -race instrumentation")
	}
	for _, w := range []*World{Factory(), denseTestWorld(rand.New(rand.NewSource(21)))} {
		w.index() // build outside the measured region
		origin := geom.V(10, 10, 3)
		dir := geom.V(1, 0, 0)
		if allocs := testing.AllocsPerRun(100, func() {
			w.Raycast(origin, dir, 30)
			w.Occupied(origin, 0.4)
			w.Collides(origin, 0.3)
		}); allocs != 0 {
			t.Fatalf("%s: world queries allocate %v objects, want 0", w.Name, allocs)
		}
	}
}
