package env

import "mavfi/internal/geom"

// Factory builds the Unreal-Engine-style "Factory" scene: an indoor-like
// navigation scenario with walls (with door gaps) and scattered block
// obstacles, matching the paper's description of "common navigation
// scenarios with blocks, walls, and hedges".
func Factory() *World {
	w := &World{
		Name:          "Factory",
		Bounds:        geom.Box(geom.V(0, 0, 0), geom.V(70, 50, 15)),
		Start:         geom.V(5, 25, 0),
		Goal:          geom.V(65, 25, 2.5),
		GoalTolerance: 1.5,
	}
	wall := func(x0, y0, x1, y1 float64) geom.AABB {
		return geom.Box(geom.V(x0, y0, 0), geom.V(x1, y1, 10))
	}
	// Two partial cross-walls with offset doorways force S-shaped routes.
	w.Obstacles = append(w.Obstacles,
		wall(22, 0, 24, 18),  // south wall segment, gap at y=18..30
		wall(22, 30, 24, 50), // north wall segment
		wall(44, 0, 46, 28),  // second wall, gap at y=28..40
		wall(44, 40, 46, 50),
		// Machinery blocks on the floor between the walls.
		geom.Box(geom.V(30, 8, 0), geom.V(36, 14, 6)),
		geom.Box(geom.V(32, 36, 0), geom.V(38, 42, 6)),
		geom.Box(geom.V(10, 38, 0), geom.V(16, 44, 6)),
		geom.Box(geom.V(54, 10, 0), geom.V(60, 16, 6)),
	)
	return w
}

// Farm builds the Unreal-Engine-style "Farm" scene. The paper notes "Farm is
// an obstacles-free environment": a wide open field with only low hedges
// along the boundary, so a detoured MAV always has feasible paths to the
// goal.
func Farm() *World {
	w := &World{
		Name:          "Farm",
		Bounds:        geom.Box(geom.V(0, 0, 0), geom.V(80, 80, 20)),
		Start:         geom.V(6, 6, 0),
		Goal:          geom.V(74, 74, 2.5),
		GoalTolerance: 1.5,
	}
	// Low boundary hedges (1.5 m) well below cruise altitude; the interior
	// is free space.
	hedge := func(x0, y0, x1, y1 float64) geom.AABB {
		return geom.Box(geom.V(x0, y0, 0), geom.V(x1, y1, 1.5))
	}
	w.Obstacles = append(w.Obstacles,
		hedge(0, 0, 80, 0.5),
		hedge(0, 79.5, 80, 80),
		hedge(0, 0, 0.5, 80),
		hedge(79.5, 0, 80, 80),
	)
	return w
}
