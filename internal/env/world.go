// Package env provides the simulated 3-D environments the MAV flies through:
// the two Unreal-Engine-style preset scenes used in the paper (Factory,
// Farm), the parameterised random environment generator of RoboRun [15] used
// to create the Sparse and Dense scenes, and the randomised training
// environments used to fit the anomaly detectors.
//
// A World is a set of axis-aligned cuboid obstacles inside a bounded flight
// volume, plus a mission start and goal. The PPC pipeline never reads the
// obstacle list directly — it senses the world only through the depth
// camera's ray casts, exactly as the real pipeline sees Unreal geometry only
// through rendered depth images.
package env

import (
	"fmt"
	"math"
	"sync"

	"mavfi/internal/geom"
)

// World is one navigation scenario.
type World struct {
	// Name identifies the scenario in experiment output.
	Name string
	// Bounds is the legal flight volume; leaving it counts as a failure.
	Bounds geom.AABB
	// Obstacles are solid cuboids. The ground plane z=0 is always solid.
	// The obstacle set must not change after the first query (Occupied,
	// Collides, Raycast, …): queries lazily build a spatial index over it,
	// shared by every concurrent mission flying this world.
	Obstacles []geom.AABB
	// Start is the take-off position, Goal the mission destination.
	Start, Goal geom.Vec3
	// GoalTolerance is the arrival radius around Goal.
	GoalTolerance float64

	accelOnce sync.Once
	accel     *obstacleIndex
}

// index returns the obstacle spatial index, building it on first use; nil
// for small obstacle sets, where the linear scan wins.
func (w *World) index() *obstacleIndex {
	w.accelOnce.Do(func() {
		if len(w.Obstacles) >= accelMinObstacles {
			w.accel = buildIndex(w.Obstacles)
		}
	})
	return w.accel
}

// anyObstacleWithin reports whether any obstacle surface lies within radius
// of p, through the index when one exists.
func (w *World) anyObstacleWithin(p geom.Vec3, radius float64) bool {
	if idx := w.index(); idx != nil {
		return idx.anyWithin(w.Obstacles, p, radius)
	}
	for i := range w.Obstacles {
		if w.Obstacles[i].Dist(p) <= radius {
			return true
		}
	}
	return false
}

// Occupied reports whether a sphere of the given radius centred at p
// intersects any obstacle, the ground, or the volume boundary.
func (w *World) Occupied(p geom.Vec3, radius float64) bool {
	if p.Z-radius < 0 {
		return true
	}
	if !w.Bounds.Expand(-radius).Contains(p) {
		return true
	}
	return w.anyObstacleWithin(p, radius)
}

// Collides reports whether the vehicle body physically collides at p: an
// obstacle within the body radius, flying underground, or leaving the flight
// volume. Unlike Occupied — the conservative query planners use — ground
// proximity above z=0 is legal, so take-off and landing are possible.
func (w *World) Collides(p geom.Vec3, radius float64) bool {
	if p.Z < -0.01 {
		return true
	}
	if !w.Bounds.Contains(p) {
		return true
	}
	return w.anyObstacleWithin(p, radius)
}

// SegmentFree reports whether the straight segment a→b, swept by a sphere of
// the given radius, stays collision-free. It conservatively samples the
// segment at radius/2 spacing, which cannot tunnel through obstacles larger
// than the probe radius.
func (w *World) SegmentFree(a, b geom.Vec3, radius float64) bool {
	dist := a.Dist(b)
	step := radius / 2
	if step <= 0 {
		step = 0.05
	}
	n := int(math.Ceil(dist/step)) + 1
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		if w.Occupied(a.Lerp(b, t), radius) {
			return false
		}
	}
	return true
}

// Raycast returns the distance along unit-direction dir from origin to the
// first obstacle or the ground, capped at maxRange. A clear ray returns
// maxRange. Large obstacle sets are traversed through the spatial index;
// the returned distance is bit-identical either way.
func (w *World) Raycast(origin, dir geom.Vec3, maxRange float64) float64 {
	best := maxRange
	// Ground plane z = 0.
	if dir.Z < -1e-12 {
		t := -origin.Z / dir.Z
		if t >= 0 && t < best {
			best = t
		}
	}
	if idx := w.index(); idx != nil {
		return idx.raycast(w.Obstacles, origin, dir, best)
	}
	for _, ob := range w.Obstacles {
		if hit, t := ob.RayIntersection(origin, dir); hit && t >= 0 && t < best {
			best = t
		}
	}
	return best
}

// ObstacleDensity returns the fraction of the ground-plane footprint covered
// by obstacles, the "obstacle density" knob of the environment generator.
func (w *World) ObstacleDensity() float64 {
	size := w.Bounds.Size()
	ground := size.X * size.Y
	if ground <= 0 {
		return 0
	}
	covered := 0.0
	for _, ob := range w.Obstacles {
		s := ob.Size()
		covered += s.X * s.Y
	}
	return covered / ground
}

// Validate checks basic well-formedness: start/goal inside bounds and not
// inside obstacles (with a 0.5 m clearance).
func (w *World) Validate() error {
	if w.Bounds.IsEmpty() {
		return fmt.Errorf("env %s: empty bounds", w.Name)
	}
	const clearance = 0.5
	// The start sits on the ground; check body collision there and
	// conservative occupancy just above it (where the take-off climbs).
	if w.Collides(w.Start, clearance) || w.Occupied(w.Start.Add(geom.V(0, 0, 1+clearance)), clearance) {
		return fmt.Errorf("env %s: start %v is occupied", w.Name, w.Start)
	}
	if w.Occupied(w.Goal, clearance) {
		return fmt.Errorf("env %s: goal %v is occupied", w.Name, w.Goal)
	}
	if w.GoalTolerance <= 0 {
		return fmt.Errorf("env %s: non-positive goal tolerance", w.Name)
	}
	return nil
}
