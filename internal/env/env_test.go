package env

import (
	"math"
	"math/rand"
	"testing"

	"mavfi/internal/geom"
)

func TestPresetsValid(t *testing.T) {
	for _, w := range []*World{Factory(), Farm()} {
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
	}
}

func TestGeneratedWorldsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		for _, w := range []*World{Sparse(rng), Dense(rng), Training(i, rng)} {
			if err := w.Validate(); err != nil {
				t.Errorf("generated %s #%d invalid: %v", w.Name, i, err)
			}
		}
	}
}

func TestGeneratorDensityTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		w := Generate("d", GenConfig{Density: 0.10, Side: 6}, rng)
		d := w.ObstacleDensity()
		// The keep-clear zones around start/goal cost some coverage; the
		// generator should land within a reasonable band of the target.
		if d < 0.05 || d > 0.15 {
			t.Errorf("density = %.3f, want ≈0.10", d)
		}
	}
}

func TestGeneratorKeepsStartGoalClear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		w := Dense(rng)
		if w.Collides(w.Start, 1.0) {
			t.Fatalf("start blocked in %s #%d", w.Name, i)
		}
		if w.Occupied(w.Goal, 1.0) {
			t.Fatalf("goal blocked in %s #%d", w.Name, i)
		}
	}
}

func TestFarmIsEffectivelyObstacleFree(t *testing.T) {
	w := Farm()
	// Paper: "Farm is an obstacles-free environment" — nothing blocks the
	// cruise altitude plane.
	for x := 2.0; x < 78; x += 4 {
		for y := 2.0; y < 78; y += 4 {
			if w.Occupied(geom.V(x, y, 2.5), 0.5) {
				t.Fatalf("Farm blocked at (%v,%v)", x, y)
			}
		}
	}
}

func TestOccupied(t *testing.T) {
	w := &World{
		Bounds:        geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)),
		Obstacles:     []geom.AABB{geom.Box(geom.V(4, 4, 0), geom.V(6, 6, 5))},
		Start:         geom.V(1, 1, 0),
		Goal:          geom.V(9, 9, 2),
		GoalTolerance: 1,
	}
	if !w.Occupied(geom.V(5, 5, 2), 0.3) {
		t.Error("inside obstacle not occupied")
	}
	if !w.Occupied(geom.V(6.2, 5, 2), 0.3) {
		t.Error("within radius of obstacle not occupied")
	}
	if w.Occupied(geom.V(8, 8, 2), 0.3) {
		t.Error("free space occupied")
	}
	if !w.Occupied(geom.V(5, 5, 0.1), 0.3) {
		t.Error("ground not occupied for conservative query")
	}
	if !w.Occupied(geom.V(-1, 5, 2), 0.3) {
		t.Error("out of bounds not occupied")
	}
}

func TestCollidesVsOccupied(t *testing.T) {
	w := &World{
		Bounds:    geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)),
		Obstacles: []geom.AABB{geom.Box(geom.V(4, 4, 0), geom.V(6, 6, 5))},
	}
	// On the ground: Occupied (conservative) but not Collides (physical).
	p := geom.V(1, 1, 0)
	if !w.Occupied(p, 0.4) {
		t.Error("ground point should be Occupied")
	}
	if w.Collides(p, 0.4) {
		t.Error("resting on ground should not Collide")
	}
	if !w.Collides(geom.V(1, 1, -0.5), 0.4) {
		t.Error("underground should Collide")
	}
	if !w.Collides(geom.V(11, 1, 1), 0.4) {
		t.Error("outside bounds should Collide")
	}
	if !w.Collides(geom.V(5, 5, 1), 0.4) {
		t.Error("inside obstacle should Collide")
	}
}

func TestSegmentFree(t *testing.T) {
	w := &World{
		Bounds:    geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)),
		Obstacles: []geom.AABB{geom.Box(geom.V(4, 0, 0), geom.V(6, 10, 10))},
	}
	if w.SegmentFree(geom.V(1, 5, 5), geom.V(9, 5, 5), 0.3) {
		t.Error("segment through wall reported free")
	}
	if !w.SegmentFree(geom.V(1, 5, 5), geom.V(3, 5, 5), 0.3) {
		t.Error("clear segment reported blocked")
	}
}

func TestRaycast(t *testing.T) {
	w := &World{
		Bounds:    geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 100)),
		Obstacles: []geom.AABB{geom.Box(geom.V(10, -5, 0), geom.V(12, 5, 20))},
	}
	d := w.Raycast(geom.V(0, 0, 5), geom.V(1, 0, 0), 50)
	if math.Abs(d-10) > 1e-6 {
		t.Errorf("raycast hit at %v, want 10", d)
	}
	// Clear ray returns max range.
	if d := w.Raycast(geom.V(0, 50, 5), geom.V(1, 0, 0), 50); d != 50 {
		t.Errorf("clear ray = %v", d)
	}
	// Downward ray hits the ground plane.
	d = w.Raycast(geom.V(50, 50, 8), geom.V(0, 0, -1), 50)
	if math.Abs(d-8) > 1e-6 {
		t.Errorf("ground ray = %v", d)
	}
	// Raycast agrees with Occupied along the ray.
	hit := geom.V(0, 0, 5).Add(geom.V(1, 0, 0).Scale(d + 0.01))
	_ = hit
}

// TestRaycastConsistentWithOccupied property: the point just before the
// raycast distance is free; just after (for hits) is inside an obstacle or
// the ground.
func TestRaycastConsistentWithOccupied(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := Sparse(rng)
	for i := 0; i < 200; i++ {
		origin := geom.V(rng.Float64()*50+5, rng.Float64()*50+5, rng.Float64()*5+1)
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()*0.3).Normalize()
		if dir.Len() == 0 {
			continue
		}
		const maxRange = 25.0
		d := w.Raycast(origin, dir, maxRange)
		if d < maxRange && d > 0.5 {
			before := origin.Add(dir.Scale(d - 0.3))
			if w.Occupied(before, 0.01) && before.Z > 0.05 && w.Bounds.Contains(before) {
				// The pre-hit point can only be occupied if the origin
				// itself started inside an obstacle.
				if !w.Occupied(origin, 0.01) {
					t.Fatalf("ray %v→%v: point before hit at %v occupied", origin, dir, before)
				}
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	w := &World{Name: "bad"}
	if err := w.Validate(); err == nil {
		t.Error("empty bounds accepted")
	}
	w = &World{
		Name:          "badstart",
		Bounds:        geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)),
		Obstacles:     []geom.AABB{geom.Box(geom.V(0, 0, 0), geom.V(3, 3, 5))},
		Start:         geom.V(1, 1, 0),
		Goal:          geom.V(9, 9, 2),
		GoalTolerance: 1,
	}
	if err := w.Validate(); err == nil {
		t.Error("blocked start accepted")
	}
	w.Obstacles = []geom.AABB{geom.Box(geom.V(8, 8, 0), geom.V(10, 10, 5))}
	if err := w.Validate(); err == nil {
		t.Error("blocked goal accepted")
	}
	w.Obstacles = nil
	w.GoalTolerance = 0
	if err := w.Validate(); err == nil {
		t.Error("zero goal tolerance accepted")
	}
}

func TestGenConfigDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Generate("defaults", GenConfig{Density: 0.05, Side: 5}, rng)
	size := w.Bounds.Size()
	if size.X != 60 || size.Z != 20 {
		t.Errorf("default bounds = %v", size)
	}
	for _, ob := range w.Obstacles {
		if ob.Size().Z != 12 {
			t.Errorf("default height = %v", ob.Size().Z)
		}
	}
}
