package record

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"

	"mavfi/internal/geom"
	"mavfi/internal/pipeline"
	"mavfi/internal/trace"
)

// Options tune a Writer. The zero value selects the defaults; every knob
// only affects framing and buffering, never the canonical tick stream, so
// recordings made with different options still byte-verify against each
// other's replays.
type Options struct {
	// ChunkSamples is the number of samples per compressed chunk frame
	// (default 256). Larger chunks compress better; smaller chunks bound
	// the data lost if a writer dies mid-mission.
	ChunkSamples int
	// SnapshotEvery is the snapshot-frame cadence in samples (default
	// 512).
	SnapshotEvery int
	// QueueDepth is the number of filled chunk buffers that may wait for
	// the compression goroutine (default 4). When the queue is full the
	// tick path blocks — bounded memory, applied as backpressure.
	QueueDepth int
	// GzipLevel is the chunk compression level (default gzip.BestSpeed —
	// the tick stream is small and the writer must keep up with the
	// mission loop). Go's gzip output is deterministic for a fixed level,
	// which is what makes whole recordings comparable byte-for-byte across
	// campaign worker widths.
	GzipLevel int
}

func (o Options) withDefaults() Options {
	if o.ChunkSamples <= 0 {
		o.ChunkSamples = 256
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 512
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
	if o.GzipLevel == 0 {
		o.GzipLevel = gzip.BestSpeed
	}
	return o
}

// job is one unit handed to the compression goroutine: a chunk to compress
// and frame, or a snapshot to frame as-is. The payload buffer is returned to
// the free list afterwards.
type job struct {
	kind    byte
	payload []byte
}

// Writer streams one mission's samples into a recording. It implements
// trace.Sink, so it plugs straight into pipeline.Config.Sink.
//
// Concurrency contract (the PR 4 zero-alloc recording contract, extended to
// persistence): Append runs on the mission tick path and performs no
// allocation and no compression — it serializes into a preallocated chunk
// buffer and, when the chunk fills, hands it to a single background
// goroutine over a bounded queue, taking a recycled buffer back from the
// free list. Compression and file writes happen only on that goroutine.
// Every buffer is preallocated in NewWriter, so a steady-state recorded
// tick allocates nothing on either goroutine. If the background writer
// falls behind, the tick path blocks on the free list once QueueDepth
// chunks are in flight (bounded queueing, never unbounded growth); if it
// fails (disk full), the writer latches the error, Append becomes a cheap
// no-op, and Close reports what happened.
//
// Append must be called from one goroutine at a time (the mission loop);
// Writer is not a concurrent sink for multiple missions — campaigns give
// each mission its own Writer and file.
type Writer struct {
	opts Options
	dst  io.Writer

	// Tick-path state (single goroutine).
	cur          []byte
	curSamples   int
	samples      int
	payloadBytes int
	lastT        float64
	lastPos      geom.Vec3
	lastYaw      float64
	pathLen      float64
	digest       hash.Hash64
	events       []Event

	// Handoff to the compression goroutine.
	work chan job
	free chan []byte
	wg   sync.WaitGroup

	// failed flips once on the first background error; the tick path polls
	// it cheaply and stops recording. The error itself is read after the
	// goroutine exits (Close), so it needs no lock of its own.
	failed atomic.Bool
	err    error

	result *ResultRecord
	closed bool
}

// NewWriter writes the magic and header frame to dst and starts the
// background compression goroutine. The caller must Close the writer to
// flush the final chunk and write the events and footer frames; dst is not
// closed (the caller owns the file).
func NewWriter(dst io.Writer, h Header, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	h.Version = Version
	h.SnapshotEvery = opts.SnapshotEvery

	if _, err := io.WriteString(dst, Magic); err != nil {
		return nil, fmt.Errorf("record: writing magic: %w", err)
	}
	if _, err := dst.Write([]byte{Version}); err != nil {
		return nil, fmt.Errorf("record: writing version: %w", err)
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("record: encoding header: %w", err)
	}
	if err := writeFrame(dst, frameHeader, hdr); err != nil {
		return nil, err
	}

	w := &Writer{
		opts:   opts,
		dst:    dst,
		digest: fnv.New64a(),
		work:   make(chan job, opts.QueueDepth),
		free:   make(chan []byte, opts.QueueDepth+1),
	}
	// One buffer per queue slot plus the current chunk: the tick path can
	// always take a fresh buffer without allocating, and total buffered
	// memory is bounded by (QueueDepth+2) chunks.
	bufCap := opts.ChunkSamples*sampleFixedBytes + maxSampleBytes
	if bufCap < snapshotBytes {
		bufCap = snapshotBytes
	}
	for i := 0; i < opts.QueueDepth+1; i++ {
		w.free <- make([]byte, 0, bufCap)
	}
	w.cur = make([]byte, 0, bufCap)

	w.wg.Add(1)
	go w.compressLoop()
	return w, nil
}

// writeFrame emits one [type][len][payload] frame.
func writeFrame(dst io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := dst.Write(hdr[:]); err != nil {
		return fmt.Errorf("record: writing frame header: %w", err)
	}
	if _, err := dst.Write(payload); err != nil {
		return fmt.Errorf("record: writing frame payload: %w", err)
	}
	return nil
}

// Append implements trace.Sink: serialize one finalized sample onto the
// current chunk, flushing to the background goroutine at chunk and snapshot
// boundaries. See the Writer doc comment for the concurrency contract.
func (w *Writer) Append(s trace.Sample) {
	if w.closed || w.failed.Load() {
		return
	}
	start := len(w.cur)
	w.cur = appendSample(w.cur, s)
	w.digest.Write(w.cur[start:])
	w.payloadBytes += len(w.cur) - start
	w.curSamples++
	if w.samples > 0 {
		w.pathLen += s.Pos.Dist(w.lastPos)
	}
	w.lastT, w.lastPos, w.lastYaw = s.T, s.Pos, s.Yaw
	w.samples++
	if s.Event != "" {
		// Event ticks are rare (a handful per mission); the index append
		// is the one recording path allowed to allocate.
		w.events = append(w.events, Event{Tick: w.samples - 1, T: s.T, Tags: s.Event})
	}
	if w.curSamples >= w.opts.ChunkSamples || cap(w.cur)-len(w.cur) < maxSampleBytes {
		w.flushChunk()
	}
	if w.samples%w.opts.SnapshotEvery == 0 {
		// Snapshot after flushing the chunk that contains its last sample,
		// so a snapshot frame always summarises fully-persisted data.
		w.flushChunk()
		w.enqueueSnapshot()
	}
}

// flushChunk hands the current chunk to the compression goroutine and takes
// a recycled buffer. No-op on an empty chunk.
func (w *Writer) flushChunk() {
	if w.curSamples == 0 {
		return
	}
	w.work <- job{kind: frameChunk, payload: w.cur}
	w.cur = <-w.free
	w.curSamples = 0
}

// enqueueSnapshot emits a snapshot frame through the same queue (ordering
// with chunk frames is preserved: one goroutine drains in FIFO order).
func (w *Writer) enqueueSnapshot() {
	buf := <-w.free
	buf = appendSnapshot(buf, w.snapshot())
	w.work <- job{kind: frameSnapshot, payload: buf}
}

// snapshot captures the current cumulative recording state.
func (w *Writer) snapshot() Snapshot {
	return Snapshot{
		Samples: w.samples,
		T:       w.lastT,
		Pos:     w.lastPos,
		Yaw:     w.lastYaw,
		PathLen: w.pathLen,
	}
}

// compressLoop is the background goroutine: compress chunks, frame
// snapshots, recycle buffers. On a write error it latches failure and keeps
// draining (recycling buffers) so the tick path can never deadlock.
func (w *Writer) compressLoop() {
	defer w.wg.Done()
	var buf bytes.Buffer
	zw, zerr := gzip.NewWriterLevel(&buf, w.opts.GzipLevel)
	if zerr != nil {
		w.fail(zerr)
	}
	for j := range w.work {
		if !w.failed.Load() {
			switch j.kind {
			case frameChunk:
				buf.Reset()
				zw.Reset(&buf)
				if _, err := zw.Write(j.payload); err != nil {
					w.fail(err)
				} else if err := zw.Close(); err != nil {
					w.fail(err)
				} else if err := writeFrame(w.dst, frameChunk, buf.Bytes()); err != nil {
					w.fail(err)
				}
			case frameSnapshot:
				if err := writeFrame(w.dst, frameSnapshot, j.payload); err != nil {
					w.fail(err)
				}
			}
		}
		w.free <- j.payload[:0]
	}
}

// fail latches the first background error.
func (w *Writer) fail(err error) {
	if !w.failed.Swap(true) {
		w.err = err
	}
}

// SetResult attaches the mission's outcome for the footer frame; call it
// after the mission returns and before Close.
func (w *Writer) SetResult(res pipeline.Result) {
	r := newResultRecord(res)
	w.result = &r
}

// Samples returns the number of samples appended so far.
func (w *Writer) Samples() int { return w.samples }

// Close flushes the final chunk, stops the compression goroutine, writes a
// final snapshot plus the events and footer frames, and returns the first
// error the recording hit (nil for a complete, verifiable recording). Close
// does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushChunk()
	if w.samples > 0 && w.samples%w.opts.SnapshotEvery != 0 {
		// Final snapshot so the last persisted state is always summarised.
		w.enqueueSnapshot()
	}
	close(w.work)
	w.wg.Wait()
	if w.failed.Load() {
		return w.err
	}

	if len(w.events) > 0 {
		ev, err := json.Marshal(w.events)
		if err != nil {
			return fmt.Errorf("record: encoding events: %w", err)
		}
		if err := writeFrame(w.dst, frameEvents, ev); err != nil {
			return err
		}
	}
	f := Footer{
		Samples:      w.samples,
		PayloadBytes: w.payloadBytes,
		Digest:       fmt.Sprintf("%016x", w.digest.Sum64()),
	}
	if w.result != nil {
		f.Result = *w.result
	}
	ft, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("record: encoding footer: %w", err)
	}
	return writeFrame(w.dst, frameFooter, ft)
}
