package record

import (
	"bytes"
	"fmt"
	"io"

	"mavfi/internal/detect"
	"mavfi/internal/pipeline"
	"mavfi/internal/trace"
)

// NewHeader captures cfg as a replayable mission header: defaults resolved,
// world geometry flattened, and any detector serialized in its *pre-mission*
// state (the header must be built before the mission runs, since online
// detectors mutate during flight). Calibration-mode configurations
// (cfg.Counter != nil) and detector implementations detect cannot persist
// are rejected — they could not be replayed faithfully.
func NewHeader(cfg pipeline.Config) (Header, error) {
	if cfg.Counter != nil {
		return Header{}, fmt.Errorf("record: calibration missions (Config.Counter) are not recordable")
	}
	if cfg.World == nil {
		return Header{}, fmt.Errorf("record: Config.World is required")
	}
	cfg = cfg.Normalized()
	h := Header{
		Version:       Version,
		Seed:          cfg.Seed,
		Planner:       int(cfg.Planner),
		PlannerName:   cfg.Planner.String(),
		TickS:         cfg.TickS,
		MaxMissionS:   cfg.MaxMissionS,
		CruiseAlt:     cfg.CruiseAlt,
		Platform:      cfg.Platform,
		World:         NewWorldSpec(cfg.World),
		KernelFault:   cfg.KernelFault,
		StateFault:    cfg.StateFault,
		SensorFault:   cfg.SensorFault,
		ActuatorFault: cfg.ActuatorFault,
		WindFault:     cfg.WindFault,
		DetectOnly:    cfg.DetectOnly,
	}
	if cfg.Detector != nil {
		spec, err := newDetectorSpec(cfg.Detector)
		if err != nil {
			return Header{}, err
		}
		h.Detector = &spec
	}
	return h, nil
}

// newDetectorSpec serializes a detector through the detect model-persistence
// formats.
func newDetectorSpec(d detect.Detector) (DetectorSpec, error) {
	var buf bytes.Buffer
	switch det := d.(type) {
	case *detect.GAD:
		if err := detect.SaveGAD(&buf, det); err != nil {
			return DetectorSpec{}, fmt.Errorf("record: serializing GAD: %w", err)
		}
		return DetectorSpec{Kind: "gad", Model: buf.Bytes()}, nil
	case *detect.AAD:
		if err := detect.SaveAAD(&buf, det); err != nil {
			return DetectorSpec{}, fmt.Errorf("record: serializing AAD: %w", err)
		}
		return DetectorSpec{Kind: "aad", Model: buf.Bytes()}, nil
	default:
		return DetectorSpec{}, fmt.Errorf("record: detector %T has no persistence format", d)
	}
}

// Load re-creates the detector from its serialized model.
func (ds DetectorSpec) Load() (detect.Detector, error) {
	switch ds.Kind {
	case "gad":
		return detect.LoadGAD(bytes.NewReader(ds.Model))
	case "aad":
		return detect.LoadAAD(bytes.NewReader(ds.Model))
	default:
		return nil, fmt.Errorf("record: unknown detector kind %q", ds.Kind)
	}
}

// Config rebuilds the exact pipeline configuration the recorded mission
// flew: fresh world from the stored geometry, fault plans, and the detector
// restored to its pre-mission state. The returned config has Record set so a
// replay produces a comparable trace.
func (m *Mission) Config() (pipeline.Config, error) {
	h := m.Header
	cfg := pipeline.Config{
		World:         h.World.World(),
		Platform:      h.Platform,
		Planner:       pipeline.PlannerKind(h.Planner),
		Seed:          h.Seed,
		TickS:         h.TickS,
		MaxMissionS:   h.MaxMissionS,
		CruiseAlt:     h.CruiseAlt,
		KernelFault:   h.KernelFault,
		StateFault:    h.StateFault,
		SensorFault:   h.SensorFault,
		ActuatorFault: h.ActuatorFault,
		WindFault:     h.WindFault,
		DetectOnly:    h.DetectOnly,
		Record:        true,
	}
	if h.Detector != nil {
		det, err := h.Detector.Load()
		if err != nil {
			return cfg, err
		}
		cfg.Detector = det
	}
	return cfg, nil
}

// RunRecorded flies one mission under cfg while streaming its tick log into
// dst as a version-1 recording. The mission itself is unaffected by the
// recording (and by recording failures — a failed writer drops samples, the
// flight completes, and the error surfaces here), so campaign aggregates
// stay usable even when a disk fills mid-campaign.
func RunRecorded(cfg pipeline.Config, dst io.Writer) (pipeline.Result, error) {
	return RunRecordedOptions(cfg, dst, Options{})
}

// RunRecordedOptions is RunRecorded with explicit writer options.
func RunRecordedOptions(cfg pipeline.Config, dst io.Writer, opts Options) (pipeline.Result, error) {
	h, err := NewHeader(cfg)
	if err != nil {
		return pipeline.Result{}, err
	}
	w, err := NewWriter(dst, h, opts)
	if err != nil {
		return pipeline.Result{}, err
	}
	cfg.Record = true
	cfg.Sink = w
	res := pipeline.RunMission(cfg)
	w.SetResult(res)
	if err := w.Close(); err != nil {
		return res, err
	}
	return res, nil
}

// Replay re-simulates the recorded mission from its header alone and
// returns the recomputed result.
func (m *Mission) Replay() (pipeline.Result, error) {
	cfg, err := m.Config()
	if err != nil {
		return pipeline.Result{}, err
	}
	return pipeline.RunMission(cfg), nil
}

// verifySink re-encodes the replayed samples through the canonical sample
// codec and compares them byte-for-byte against the recorded stream as the
// replay flies, remembering the first divergence.
type verifySink struct {
	want []byte
	off  int
	buf  []byte

	mismatchAt int // sample index of first divergence, -1 if none
	samples    int
}

func (v *verifySink) Append(s trace.Sample) {
	v.buf = appendSample(v.buf[:0], s)
	if v.mismatchAt < 0 {
		if v.off+len(v.buf) > len(v.want) || !bytes.Equal(v.buf, v.want[v.off:v.off+len(v.buf)]) {
			v.mismatchAt = v.samples
		}
	}
	v.off += len(v.buf)
	v.samples++
}

// Verify is the byte-equality gate: re-simulate the mission from the
// recorded header and require the recomputed tick stream to match the
// recorded one byte-for-byte — every float of every tick, every event tag —
// and the recomputed result to match the footer. Any divergence anywhere in
// the closed loop (a perturbed RNG stream, a reordered floating-point
// reduction, a changed collision semantic) fails here.
func (m *Mission) Verify() error {
	if !m.Complete {
		return ErrIncomplete
	}
	cfg, err := m.Config()
	if err != nil {
		return err
	}
	v := &verifySink{want: m.canonical, mismatchAt: -1}
	cfg.Sink = v
	res := pipeline.RunMission(cfg)

	if v.mismatchAt >= 0 {
		detail := ""
		if v.mismatchAt < len(m.Samples) {
			s := m.Samples[v.mismatchAt]
			detail = fmt.Sprintf(" (recorded t=%.2f pos=%v event=%q)", s.T, s.Pos, s.Event)
		}
		return fmt.Errorf("record: replay diverged at tick %d of %d%s", v.mismatchAt, m.Footer.Samples, detail)
	}
	if v.off != len(m.canonical) {
		return fmt.Errorf("record: replay produced %d canonical bytes, recording has %d (tick counts differ: %d vs %d)",
			v.off, len(m.canonical), v.samples, m.Footer.Samples)
	}
	got := newResultRecord(res)
	if m.Header.Version < 2 {
		// Version-1 footers predate first_alarm_s; a current re-simulation
		// fills it, so blank it before the exact comparison.
		got.FirstAlarmS = 0
	}
	if want := m.Footer.Result; got != want {
		return fmt.Errorf("record: replayed result diverged from footer:\n got %+v\nwant %+v", got, want)
	}
	return nil
}
