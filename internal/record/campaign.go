package record

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mavfi/internal/campaign"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

// MissionPath returns the recording path for mission i of a campaign cell
// rooted at dir: dir/mission-%05d.rec (zero-padded so lexical order is
// mission order).
func MissionPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("mission-%05d.rec", i))
}

// RunCampaign runs the n missions of one campaign cell across r's worker
// pool, recording every mission to its own file under dir (created if
// missing). Each worker writes only its mission's file, so recording is safe
// at any worker width — and because mission i's configuration and flight
// depend only on i, the files themselves are byte-identical regardless of
// how many workers produced them (the property `make replay-verify` checks
// with cmp across widths).
//
// Recording failures do not abort the campaign: the mission still flies and
// its metrics still aggregate; the first recording error is returned after
// the campaign completes (alongside any context error, which takes
// precedence as in campaign.Runner.Run).
func RunCampaign(ctx context.Context, r *campaign.Runner, dir, name string, n int, makeCfg func(i int) pipeline.Config) (*campaign.Outcome, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var firstErr error
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("record: mission %d: %w", i, err)
		}
		mu.Unlock()
	}
	out, err := r.Run(ctx, name, n, func(i int) qof.Metrics {
		cfg := makeCfg(i)
		f, ferr := os.Create(MissionPath(dir, i))
		if ferr != nil {
			// No file: fly unrecorded so the campaign aggregate survives.
			record(i, ferr)
			return pipeline.RunMission(cfg).Metrics
		}
		res, rerr := RunRecorded(cfg, f)
		if cerr := f.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			record(i, rerr)
		}
		return res.Metrics
	})
	if err != nil {
		return out, err
	}
	return out, firstErr
}
