package record

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mavfi/internal/campaign"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

// MissionPath returns the recording path for mission i of a campaign cell
// rooted at dir: dir/mission-%05d.rec (zero-padded so lexical order is
// mission order).
func MissionPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("mission-%05d.rec", i))
}

// RecordedMission flies cfg while persisting it to MissionPath(dir, i).
// Recording failures never fail the mission: when the file cannot be created
// or the writer errors, the mission still flies (or completes unrecorded) and
// the recording error is returned alongside the genuine result. This is the
// single per-mission persistence point RunCampaign and the campaign matrix's
// RecordDir mode share, so every recorded campaign produces the same
// dir/mission-%05d.rec layout record.ScanDir recovers.
func RecordedMission(dir string, i int, cfg pipeline.Config) (pipeline.Result, error) {
	f, err := os.Create(MissionPath(dir, i))
	if err != nil {
		// No file: fly unrecorded so the campaign aggregate survives.
		return pipeline.RunMission(cfg), err
	}
	res, err := RunRecorded(cfg, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return res, err
}

// RunCampaign runs the n missions of one campaign cell across r's worker
// pool, recording every mission to its own file under dir (created if
// missing). Each worker writes only its mission's file, so recording is safe
// at any worker width — and because mission i's configuration and flight
// depend only on i, the files themselves are byte-identical regardless of
// how many workers produced them (the property `make replay-verify` checks
// with cmp across widths).
//
// Recording failures do not abort the campaign: the mission still flies and
// its metrics still aggregate; the first recording error is returned after
// the campaign completes (alongside any context error, which takes
// precedence as in campaign.Runner.Run).
func RunCampaign(ctx context.Context, r *campaign.Runner, dir, name string, n int, makeCfg func(i int) pipeline.Config) (*campaign.Outcome, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var firstErr error
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("record: mission %d: %w", i, err)
		}
		mu.Unlock()
	}
	out, err := r.Run(ctx, name, n, func(i int) qof.Metrics {
		res, rerr := RecordedMission(dir, i, makeCfg(i))
		if rerr != nil {
			record(i, rerr)
		}
		return res.Metrics
	})
	if err != nil {
		return out, err
	}
	return out, firstErr
}
