package record

import (
	"bytes"
	"errors"
	"testing"

	"mavfi/internal/pipeline"
)

// FuzzRecordRead throws mutated recording bytes at the reader. The contract
// under test: Read never panics, and anything short of an intact recording
// comes back as an error (ErrIncomplete for a missing footer, a decode or
// digest error for corruption) — Complete is only ever set on a recording
// whose canonical tick stream matches its footer digest.
//
// The corpus seeds a real version-2 recording plus the edge shapes the
// reader special-cases: truncations at frame boundaries, a bad magic, an
// unsupported version byte, and an empty input.
func FuzzRecordRead(f *testing.F) {
	var buf bytes.Buffer
	if _, err := RunRecorded(pipeline.Config{World: testWorld(), Seed: 3, MaxMissionS: 20}, &buf); err != nil {
		f.Fatalf("seeding recording: %v", err)
	}
	rec := buf.Bytes()
	f.Add(rec)
	f.Add(rec[:len(Magic)+1]) // magic+version only
	f.Add(rec[:len(rec)/2])   // mid-stream truncation
	f.Add(rec[:len(rec)-1])   // clipped footer
	bad := append([]byte(nil), rec...)
	bad[len(Magic)] = 99 // unsupported version
	f.Add(bad)
	f.Add([]byte("NOTAMAGIC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Chunk frames are gzip-compressed; cap the input so a crafted bomb
		// can't balloon the smoke run (gzip tops out near 1032:1).
		if len(data) > 64<<10 {
			t.Skip("oversized input")
		}
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, ErrIncomplete) && m == nil {
				t.Fatal("ErrIncomplete without the partial mission")
			}
			return
		}
		if m == nil {
			t.Fatal("nil mission with nil error")
		}
		if !m.Complete {
			t.Fatal("Read returned nil error for an incomplete recording")
		}
		if v := m.Header.Version; v != 0 && (v < int(minVersion) || v > int(Version)) {
			t.Fatalf("accepted recording declares unsupported version %d", v)
		}
	})
}
