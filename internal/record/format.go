// Package record persists missions as versioned, compressed, append-only
// tick logs and replays them deterministically — the observability layer for
// fault-injection campaigns (when 1 mission in 100k misbehaves, its log is
// the audit trail) and the export path that turns campaigns into a per-tick
// dataset. Because every mission is a pure function of its recorded header
// (seed, world, platform, fault plan, detector state), a recording can be
// *byte-verified*: re-simulating the header must reproduce the recorded tick
// stream exactly, which is the CI determinism gate (`make replay-verify`).
//
// # On-disk format (versions 1–2)
//
// A recording is a magic string ("MAVFIREC"), one format-version byte, and a
// sequence of self-delimiting frames, each `[1-byte type][4-byte LE length]
// [payload]`:
//
//   - 'H' header (JSON, exactly one, first): seed, planner, normalized
//     mission parameters, platform model, full world geometry, fault plans,
//     and the serialized detector model — everything a replay needs.
//   - 'C' tick chunk (gzip): a run of consecutive binary-encoded samples.
//     The concatenated inflated chunk payloads form the mission's canonical
//     tick stream; chunk boundaries are a framing detail and never affect
//     byte equality.
//   - 'S' snapshot (binary, fixed size): periodic cumulative state — sample
//     count, mission clock, pose, path length — so a reader can recover a
//     consistent prefix of a truncated log (and a restarted campaign server
//     can size up partial missions) without inflating every chunk.
//   - 'E' events (JSON, at most one): the tagged ticks (inject, alarm,
//     replan, crash) extracted as an index over the sample stream.
//   - 'F' footer (JSON, exactly one, last): sample count, canonical-stream
//     byte count and FNV-1a digest, and the mission's result metrics. A
//     missing footer marks a recording that died mid-write (ErrIncomplete).
//
// Sample encoding: 8 little-endian IEEE-754 float64s (t, position xyz,
// velocity xyz, yaw) followed by a 1-byte event-tag length and the tag
// bytes. Tags longer than 255 bytes are truncated (real tags are ≤ ~30
// bytes); the truncation is deterministic, so byte-verification is
// unaffected.
//
// Version 2 extends version 1 additively: the header may carry the
// fault-model-zoo plans (sensor_fault, actuator_fault, wind_fault) and the
// detect_only flag, and the footer result gains first_alarm_s. The frame
// layout and sample encoding are unchanged, so the reader accepts both
// versions; Verify compensates for the one field version-1 footers predate.
package record

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/geom"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
	"mavfi/internal/trace"
)

// Magic identifies a mission recording; the byte after it is the format
// version.
const Magic = "MAVFIREC"

// Version is the current on-disk format version (what the writer emits).
const Version = 2

// minVersion is the oldest format version the reader still accepts.
const minVersion = 1

// Frame types.
const (
	frameHeader   = 'H'
	frameChunk    = 'C'
	frameSnapshot = 'S'
	frameEvents   = 'E'
	frameFooter   = 'F'
)

// sampleFixedBytes is the fixed-width prefix of an encoded sample: eight
// float64 fields plus the event-tag length byte.
const sampleFixedBytes = 8*8 + 1

// maxEventBytes caps the recorded event-tag length (the length field is one
// byte).
const maxEventBytes = 255

// maxSampleBytes bounds one encoded sample, the headroom the writer keeps
// free in its chunk buffer so an append can never overflow it.
const maxSampleBytes = sampleFixedBytes + maxEventBytes

// snapshotBytes is the fixed size of a snapshot frame payload: sample count
// (uint64) plus six float64s (t, position xyz, yaw, path length).
const snapshotBytes = 8 + 6*8

// appendSample encodes s onto dst in the canonical sample encoding. It is
// the single serialization point: the writer's tick path, the reader's
// decoder, and the replayer's re-encoder all agree through it.
func appendSample(dst []byte, s trace.Sample) []byte {
	var b [8]byte
	putF := func(f float64) {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		dst = append(dst, b[:]...)
	}
	putF(s.T)
	putF(s.Pos.X)
	putF(s.Pos.Y)
	putF(s.Pos.Z)
	putF(s.Vel.X)
	putF(s.Vel.Y)
	putF(s.Vel.Z)
	putF(s.Yaw)
	ev := s.Event
	if len(ev) > maxEventBytes {
		ev = ev[:maxEventBytes]
	}
	dst = append(dst, byte(len(ev)))
	dst = append(dst, ev...)
	return dst
}

// decodeSample decodes one sample from the front of b, returning the sample
// and the number of bytes consumed.
func decodeSample(b []byte) (trace.Sample, int, error) {
	var s trace.Sample
	if len(b) < sampleFixedBytes {
		return s, 0, fmt.Errorf("record: truncated sample (%d bytes)", len(b))
	}
	getF := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
	}
	s.T = getF(0)
	s.Pos = geom.V(getF(8), getF(16), getF(24))
	s.Vel = geom.V(getF(32), getF(40), getF(48))
	s.Yaw = getF(56)
	n := int(b[64])
	if len(b) < sampleFixedBytes+n {
		return s, 0, fmt.Errorf("record: truncated event tag (want %d bytes, have %d)", n, len(b)-sampleFixedBytes)
	}
	if n > 0 {
		s.Event = string(b[sampleFixedBytes : sampleFixedBytes+n])
	}
	return s, sampleFixedBytes + n, nil
}

// WorldSpec is the serialized form of an env.World: the full obstacle
// geometry, so a replay rebuilds the world without re-running whichever
// generator produced it.
type WorldSpec struct {
	Name          string      `json:"name"`
	Bounds        geom.AABB   `json:"bounds"`
	Obstacles     []geom.AABB `json:"obstacles"`
	Start         geom.Vec3   `json:"start"`
	Goal          geom.Vec3   `json:"goal"`
	GoalTolerance float64     `json:"goal_tolerance"`
}

// NewWorldSpec captures w's geometry.
func NewWorldSpec(w *env.World) WorldSpec {
	return WorldSpec{
		Name:          w.Name,
		Bounds:        w.Bounds,
		Obstacles:     append([]geom.AABB(nil), w.Obstacles...),
		Start:         w.Start,
		Goal:          w.Goal,
		GoalTolerance: w.GoalTolerance,
	}
}

// World rebuilds the environment. The returned world is fresh: its lazy
// obstacle index builds on first query, exactly as the original's did.
func (ws WorldSpec) World() *env.World {
	return &env.World{
		Name:          ws.Name,
		Bounds:        ws.Bounds,
		Obstacles:     append([]geom.AABB(nil), ws.Obstacles...),
		Start:         ws.Start,
		Goal:          ws.Goal,
		GoalTolerance: ws.GoalTolerance,
	}
}

// DetectorSpec embeds a serialized anomaly-detector model in the header, so
// a replayed mission re-creates the detector in its exact pre-mission state
// (including any online-learning state accumulated during training).
type DetectorSpec struct {
	// Kind is "gad" or "aad" (the two schemes detect knows how to persist).
	Kind string `json:"kind"`
	// Model is the detect.SaveGAD / detect.SaveAAD JSON document.
	Model json.RawMessage `json:"model"`
}

// Header is the mission header frame: everything a replay needs to re-run
// the mission, with all pipeline defaults already resolved
// (pipeline.Config.Normalized).
type Header struct {
	Version int   `json:"version"`
	Seed    int64 `json:"seed"`
	// Planner is the pipeline.PlannerKind ordinal; PlannerName mirrors it
	// for human readers of the JSON.
	Planner     int     `json:"planner"`
	PlannerName string  `json:"planner_name"`
	TickS       float64 `json:"tick_s"`
	MaxMissionS float64 `json:"max_mission_s"`
	CruiseAlt   float64 `json:"cruise_alt"`

	Platform platform.Platform `json:"platform"`
	World    WorldSpec         `json:"world"`

	KernelFault   *faultinject.Plan         `json:"kernel_fault,omitempty"`
	StateFault    *faultinject.StatePlan    `json:"state_fault,omitempty"`
	SensorFault   *faultinject.SensorPlan   `json:"sensor_fault,omitempty"`
	ActuatorFault *faultinject.ActuatorPlan `json:"actuator_fault,omitempty"`
	WindFault     *faultinject.WindPlan     `json:"wind_fault,omitempty"`
	Detector      *DetectorSpec             `json:"detector,omitempty"`
	DetectOnly    bool                      `json:"detect_only,omitempty"`

	// SnapshotEvery is the snapshot cadence the writer used, in samples.
	SnapshotEvery int `json:"snapshot_every"`
}

// Snapshot is the periodic cumulative state of the recording: after Samples
// samples, the mission clock stood at T with the vehicle at Pos/Yaw having
// flown PathLen metres.
type Snapshot struct {
	Samples int
	T       float64
	Pos     geom.Vec3
	Yaw     float64
	PathLen float64
}

func appendSnapshot(dst []byte, s Snapshot) []byte {
	var b [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(b[:], u)
		dst = append(dst, b[:]...)
	}
	put(uint64(s.Samples))
	put(math.Float64bits(s.T))
	put(math.Float64bits(s.Pos.X))
	put(math.Float64bits(s.Pos.Y))
	put(math.Float64bits(s.Pos.Z))
	put(math.Float64bits(s.Yaw))
	put(math.Float64bits(s.PathLen))
	return dst
}

func decodeSnapshot(b []byte) (Snapshot, error) {
	if len(b) != snapshotBytes {
		return Snapshot{}, fmt.Errorf("record: snapshot frame is %d bytes, want %d", len(b), snapshotBytes)
	}
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	getF := func(off int) float64 { return math.Float64frombits(get(off)) }
	return Snapshot{
		Samples: int(get(0)),
		T:       getF(8),
		Pos:     geom.V(getF(16), getF(24), getF(32)),
		Yaw:     getF(40),
		PathLen: getF(48),
	}, nil
}

// Event is one tagged tick, indexed into the sample stream.
type Event struct {
	// Tick is the sample index carrying the tag.
	Tick int `json:"tick"`
	// T is the mission clock at that sample.
	T float64 `json:"t"`
	// Tags is the sample's event tag ("inject", "alarm+replan", ...).
	Tags string `json:"tags"`
}

// ResultRecord is the footer's copy of the mission outcome — the part of
// pipeline.Result a campaign server needs to rebuild its aggregates from
// persisted missions after a restart, without re-simulating anything.
type ResultRecord struct {
	Outcome            int     `json:"outcome"`
	OutcomeName        string  `json:"outcome_name"`
	FlightTimeS        float64 `json:"flight_time_s"`
	EnergyJ            float64 `json:"energy_j"`
	DistanceM          float64 `json:"distance_m"`
	ComputeS           float64 `json:"compute_s"`
	DetectS            float64 `json:"detect_s"`
	RecoverPerceptionS float64 `json:"recover_perception_s"`
	RecoverPlanningS   float64 `json:"recover_planning_s"`
	RecoverControlS    float64 `json:"recover_control_s"`
	Alarms             int     `json:"alarms"`
	Recomputes         int     `json:"recomputes"`
	Plans              int     `json:"plans"`
	PlanFails          int     `json:"plan_fails"`
	Injected           bool    `json:"injected"`
	InjectedAt         float64 `json:"injected_at,omitempty"`
	// FirstAlarmS is the detector's first alarm time (0 = none); version-1
	// recordings predate it (see Mission.Verify).
	FirstAlarmS float64 `json:"first_alarm_s,omitempty"`
}

// newResultRecord flattens a pipeline.Result for the footer.
func newResultRecord(res pipeline.Result) ResultRecord {
	return ResultRecord{
		Outcome:            int(res.Outcome),
		OutcomeName:        res.Outcome.String(),
		FlightTimeS:        res.FlightTimeS,
		EnergyJ:            res.EnergyJ,
		DistanceM:          res.DistanceM,
		ComputeS:           res.ComputeS,
		DetectS:            res.DetectS,
		RecoverPerceptionS: res.RecoverPerceptionS,
		RecoverPlanningS:   res.RecoverPlanningS,
		RecoverControlS:    res.RecoverControlS,
		Alarms:             res.Alarms,
		Recomputes:         res.Recomputes,
		Plans:              res.Plans,
		PlanFails:          res.PlanFails,
		Injected:           res.Injected,
		InjectedAt:         res.InjectedAt,
		FirstAlarmS:        res.FirstAlarmS,
	}
}

// Metrics rebuilds the qof view of the recorded result.
func (r ResultRecord) Metrics() qof.Metrics {
	return qof.Metrics{
		Outcome:            qof.Outcome(r.Outcome),
		FlightTimeS:        r.FlightTimeS,
		EnergyJ:            r.EnergyJ,
		DistanceM:          r.DistanceM,
		ComputeS:           r.ComputeS,
		DetectS:            r.DetectS,
		RecoverPerceptionS: r.RecoverPerceptionS,
		RecoverPlanningS:   r.RecoverPlanningS,
		RecoverControlS:    r.RecoverControlS,
		Alarms:             r.Alarms,
		Recomputes:         r.Recomputes,
		FirstAlarmS:        r.FirstAlarmS,
		InjectedAtS:        r.InjectedAt,
	}
}

// Footer closes a recording: stream totals, an integrity digest, and the
// mission result. Its presence marks the recording complete.
type Footer struct {
	// Samples is the number of recorded ticks.
	Samples int `json:"samples"`
	// PayloadBytes is the canonical tick stream's length in bytes.
	PayloadBytes int `json:"payload_bytes"`
	// Digest is the FNV-1a (64-bit) hash of the canonical tick stream,
	// hex-encoded: a cheap integrity check that needs no re-simulation.
	Digest string `json:"digest"`
	// Result is the mission outcome.
	Result ResultRecord `json:"result"`
}
