package record

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mavfi/internal/trace"
)

// ErrIncomplete marks a recording with no footer frame: the writer died
// mid-mission (crash, kill, disk full). The frames read up to that point are
// still returned — the decoded prefix is valid — but the mission is not
// verifiable as a whole.
var ErrIncomplete = errors.New("record: recording has no footer (writer died mid-mission)")

// Mission is one decoded recording.
type Mission struct {
	Header    Header
	Samples   []trace.Sample
	Snapshots []Snapshot
	Events    []Event
	Footer    Footer
	// Complete reports whether the footer frame was present and the stream
	// totals checked out.
	Complete bool

	// canonical is the concatenated inflated chunk payloads: the byte
	// stream replays are verified against.
	canonical []byte
}

// Trace rebuilds the recorded trajectory as a trace.Trace, labelled
// world/seed — the bridge to the existing CSV outputs (trace.WriteCSV) with
// no re-simulation.
func (m *Mission) Trace() *trace.Trace {
	t := &trace.Trace{Label: fmt.Sprintf("%s/seed%d", m.Header.World.Name, m.Header.Seed)}
	t.Samples = append(t.Samples, m.Samples...)
	return t
}

// Canonical exposes the canonical tick stream (for tests and external
// integrity tooling). The returned slice is owned by the Mission.
func (m *Mission) Canonical() []byte { return m.canonical }

// Open reads and decodes the recording at path.
func Open(path string) (*Mission, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Read(f)
	if err != nil {
		return m, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Read decodes one recording from r. On ErrIncomplete the partially decoded
// Mission is returned alongside the error.
func Read(r io.Reader) (*Mission, error) {
	return readMission(r, false)
}

// readMission decodes a recording. With skipSamples, chunk frames are
// skipped without inflation — header/snapshot/footer metadata only, the
// cheap mode directory scans use.
func readMission(r io.Reader, skipSamples bool) (*Mission, error) {
	magic := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("record: reading magic: %w", err)
	}
	if string(magic[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("record: bad magic %q (not a mission recording)", magic[:len(Magic)])
	}
	if v := magic[len(Magic)]; v < minVersion || v > Version {
		return nil, fmt.Errorf("record: unsupported format version %d (reader supports %d–%d)", v, minVersion, Version)
	}

	m := &Mission{}
	var (
		sawHeader bool
		sawFooter bool
		zr        *gzip.Reader
	)
	for {
		kind, payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return m, err
		}
		switch kind {
		case frameHeader:
			if sawHeader {
				return m, errors.New("record: duplicate header frame")
			}
			if err := json.Unmarshal(payload, &m.Header); err != nil {
				return m, fmt.Errorf("record: decoding header: %w", err)
			}
			sawHeader = true
		case frameChunk:
			if !sawHeader {
				return m, errors.New("record: chunk frame before header")
			}
			if skipSamples {
				continue
			}
			if zr == nil {
				zr, err = gzip.NewReader(bytes.NewReader(payload))
			} else {
				err = zr.Reset(bytes.NewReader(payload))
			}
			if err != nil {
				return m, fmt.Errorf("record: opening chunk: %w", err)
			}
			raw, err := io.ReadAll(zr)
			if err != nil {
				return m, fmt.Errorf("record: inflating chunk: %w", err)
			}
			m.canonical = append(m.canonical, raw...)
		case frameSnapshot:
			s, err := decodeSnapshot(payload)
			if err != nil {
				return m, err
			}
			m.Snapshots = append(m.Snapshots, s)
		case frameEvents:
			if err := json.Unmarshal(payload, &m.Events); err != nil {
				return m, fmt.Errorf("record: decoding events: %w", err)
			}
		case frameFooter:
			if err := json.Unmarshal(payload, &m.Footer); err != nil {
				return m, fmt.Errorf("record: decoding footer: %w", err)
			}
			sawFooter = true
		default:
			// Unknown frame types are skipped, not rejected: a version-1
			// reader stays forward-compatible with additive frame types.
		}
	}
	if !sawHeader {
		return m, errors.New("record: no header frame")
	}

	if !skipSamples {
		for off := 0; off < len(m.canonical); {
			s, n, err := decodeSample(m.canonical[off:])
			if err != nil {
				return m, err
			}
			m.Samples = append(m.Samples, s)
			off += n
		}
	}

	if !sawFooter {
		return m, ErrIncomplete
	}
	if !skipSamples {
		if len(m.canonical) != m.Footer.PayloadBytes {
			return m, fmt.Errorf("record: canonical stream is %d bytes, footer says %d",
				len(m.canonical), m.Footer.PayloadBytes)
		}
		if len(m.Samples) != m.Footer.Samples {
			return m, fmt.Errorf("record: decoded %d samples, footer says %d",
				len(m.Samples), m.Footer.Samples)
		}
		h := fnv.New64a()
		h.Write(m.canonical)
		if got := fmt.Sprintf("%016x", h.Sum64()); got != m.Footer.Digest {
			return m, fmt.Errorf("record: tick-stream digest %s does not match footer %s (corrupt recording)",
				got, m.Footer.Digest)
		}
	}
	m.Complete = true
	return m, nil
}

// readFrame reads one frame; io.EOF at a frame boundary is a clean end.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("record: truncated frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	// Grow the payload as bytes actually arrive rather than trusting the
	// declared length: a corrupt header can claim up to 4 GiB, and a single
	// upfront make() of that size is an allocation bomb (found by
	// FuzzRecordRead). CopyN fails at the true end of input having only
	// buffered what was really there.
	var payload bytes.Buffer
	if got, err := io.CopyN(&payload, r, int64(n)); err != nil {
		return 0, nil, fmt.Errorf("record: truncated frame payload (%d of %d bytes): %w", got, n, err)
	}
	return hdr[0], payload.Bytes(), nil
}

// Info is a recording's metadata without its tick payload: what a campaign
// server scans on restart to rebuild its view of completed missions.
type Info struct {
	// Path is the recording file.
	Path string
	// Header is the mission header.
	Header Header
	// Footer is the footer; meaningful only when Complete.
	Footer Footer
	// Complete reports whether the recording has a footer.
	Complete bool
	// Snapshots holds the snapshot frames; for an incomplete recording the
	// last one bounds how far the mission got before the writer died.
	Snapshots []Snapshot
}

// ScanDir reads the metadata of every *.rec file directly under dir (sorted
// by name) without inflating tick chunks — the restart-persistence scan: a
// campaign server recovering from a crash learns which missions completed
// (footer present, result usable as-is) and which need re-running.
func ScanDir(dir string) ([]Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var infos []Info
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rec") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return infos, err
		}
		m, err := readMission(f, true)
		f.Close()
		if err != nil && !errors.Is(err, ErrIncomplete) {
			return infos, fmt.Errorf("%s: %w", path, err)
		}
		infos = append(infos, Info{
			Path:      path,
			Header:    m.Header,
			Footer:    m.Footer,
			Complete:  err == nil,
			Snapshots: m.Snapshots,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Path < infos[j].Path })
	return infos, nil
}
