package record

import (
	"bytes"
	"math"
	"testing"

	"mavfi/internal/geom"
	"mavfi/internal/pipeline"
	"mavfi/internal/testutil"
	"mavfi/internal/trace"
)

// TestAppendZeroAlloc pins the writer's tick-path contract: Append on an
// event-less sample allocates nothing. The chunk size is made larger than
// the run so no flush (and hence no background compression, which
// AllocsPerRun would also count — it measures all goroutines) happens during
// the measurement window.
func TestAppendZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	h, err := NewHeader(pipeline.Config{World: testWorld()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h, Options{ChunkSamples: 1 << 20, SnapshotEvery: math.MaxInt32})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		w.Append(trace.Sample{
			T:   float64(i) * 0.1,
			Pos: geom.Vec3{X: float64(i), Y: 1, Z: 2.5},
			Vel: geom.Vec3{X: 1},
			Yaw: 0.3,
		})
	})
	if allocs != 0 {
		t.Errorf("Append allocates %.1f times per sample on the tick path, want 0", allocs)
	}
}
