package record

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
)

// TestVerifyZooFaults is the PR-7 byte-identity gate for the fault-model
// zoo: a mission flown under every new plan family must replay from its
// recorded header byte-for-byte, including the plan itself.
func TestVerifyZooFaults(t *testing.T) {
	w := testWorld()
	nominal := pipeline.NominalDuration(pipeline.Config{World: w})
	rng := rand.New(rand.NewSource(21))
	for _, f := range []faultinject.Family{faultinject.FamilySensor, faultinject.FamilyActuator, faultinject.FamilyWind} {
		t.Run(f.String(), func(t *testing.T) {
			cfg := pipeline.Config{World: w, Seed: 5}
			cfg.SetFault(faultinject.DrawFault(f, faultinject.NewDrawSpec(nominal, 1), nil, rng))
			m, res, _ := recordMission(t, cfg)
			if !res.Injected {
				t.Fatal("fault did not fire; test misconfigured")
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			back, err := m.Config()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back.Fault(), cfg.Fault()) {
				t.Errorf("plan did not round-trip through the header:\n got %+v\nwant %+v", back.Fault(), cfg.Fault())
			}
			if m.Footer.Result.InjectedAt != res.InjectedAt {
				t.Errorf("footer injected_at %.2f, mission %.2f", m.Footer.Result.InjectedAt, res.InjectedAt)
			}
		})
	}
}

func TestHeaderCarriesDetectOnly(t *testing.T) {
	w := testWorld()
	cfg := pipeline.Config{World: w, Seed: 3, DetectOnly: true}
	m, _, _ := recordMission(t, cfg)
	if !m.Header.DetectOnly {
		t.Fatal("DetectOnly not serialized in the header")
	}
	back, err := m.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !back.DetectOnly {
		t.Fatal("DetectOnly not restored from the header")
	}
}

func TestVersion2RecordingsDeclareVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunRecorded(pipeline.Config{World: testWorld(), Seed: 3}, &buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[len(Magic)]; got != 2 {
		t.Fatalf("on-disk format version %d, want 2", got)
	}
	m, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Version != 2 {
		t.Fatalf("header version %d, want 2", m.Header.Version)
	}
}
