package record

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mavfi/internal/pipeline"
)

// TestScanDirSkipsTempAndForeignFiles pins the restart-scan contract against
// a directory mid-write: atomicfile temp files (base.atomic-NNN — never a
// ".rec" suffix), manifests, and stray files are not recordings and must be
// silently ignored, as must a directory whose name happens to end in ".rec".
func TestScanDirSkipsTempAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"mission-00000.rec.atomic-1234", "job.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("\x00garbage\x00"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "archive.rec"), 0o755); err != nil {
		t.Fatal(err)
	}
	infos, err := ScanDir(dir)
	if err != nil {
		t.Fatalf("ScanDir over temp and foreign files: %v", err)
	}
	if len(infos) != 0 {
		t.Fatalf("ScanDir found %d recordings in a directory holding none", len(infos))
	}
}

// TestScanDirToleratesWriterDeath pins the other half of the contract: a
// recording whose writer died at a frame boundary (no footer) is reported
// with Complete=false rather than failing the whole scan, alongside its
// healthy siblings, while a concurrent writer's temp file is skipped.
func TestScanDirToleratesWriterDeath(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunRecorded(pipeline.Config{World: testWorld(), Seed: 3}, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	dir := t.TempDir()
	if err := os.WriteFile(MissionPath(dir, 0), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(MissionPath(dir, 1), truncateFooter(t, raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(MissionPath(dir, 2)+".atomic-5555", raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := ScanDir(dir)
	if err != nil {
		t.Fatalf("ScanDir with an incomplete recording: %v", err)
	}
	if len(infos) != 2 {
		t.Fatalf("ScanDir returned %d recordings, want 2", len(infos))
	}
	if !infos[0].Complete {
		t.Error("complete recording scanned as incomplete")
	}
	if infos[1].Complete {
		t.Error("footer-less recording scanned as complete")
	}
	if infos[1].Header.Seed != 3 || infos[1].Header.World.Name != "Sparse" {
		t.Errorf("incomplete recording lost its header: %+v", infos[1].Header)
	}
}
