package record

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"

	"mavfi/internal/campaign"
	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/trace"
)

// testWorld returns a deterministic sparse world (shared across subtests;
// worlds are read-only once queried).
func testWorld() *env.World {
	return env.Sparse(rand.New(rand.NewSource(42)))
}

// recordMission records one mission into memory and decodes it back.
func recordMission(t *testing.T, cfg pipeline.Config) (*Mission, pipeline.Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	res, err := RunRecorded(cfg, &buf)
	if err != nil {
		t.Fatalf("RunRecorded: %v", err)
	}
	m, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return m, res, buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	cfg := pipeline.Config{World: testWorld(), Seed: 3}
	m, res, _ := recordMission(t, cfg)

	if !m.Complete {
		t.Fatal("recording not complete")
	}
	if m.Header.Seed != 3 || m.Header.World.Name != "Sparse" {
		t.Errorf("header = %+v", m.Header)
	}
	if m.Header.TickS != 0.1 || m.Header.MaxMissionS != 180 || m.Header.CruiseAlt != 2.5 {
		t.Errorf("header did not capture normalized defaults: %+v", m.Header)
	}
	if m.Header.Platform.Name != "i9-9940X" {
		t.Errorf("platform = %q", m.Header.Platform.Name)
	}
	if len(m.Header.World.Obstacles) != len(cfg.World.Obstacles) {
		t.Errorf("world spec has %d obstacles, want %d", len(m.Header.World.Obstacles), len(cfg.World.Obstacles))
	}

	// The decoded samples must equal the mission's own trace exactly.
	if res.Trace == nil {
		t.Fatal("RunRecorded did not set Record")
	}
	if len(m.Samples) != len(res.Trace.Samples) {
		t.Fatalf("decoded %d samples, trace has %d", len(m.Samples), len(res.Trace.Samples))
	}
	for i := range m.Samples {
		if m.Samples[i] != res.Trace.Samples[i] {
			t.Fatalf("sample %d: decoded %+v, trace %+v", i, m.Samples[i], res.Trace.Samples[i])
		}
	}
	if m.Footer.Result != newResultRecord(res) {
		t.Errorf("footer result %+v != mission result", m.Footer.Result)
	}

	// Events index matches the trace's tagged samples.
	tagged := res.Trace.Events()
	if len(m.Events) != len(tagged) {
		t.Fatalf("events index has %d entries, trace has %d tagged samples", len(m.Events), len(tagged))
	}
	for i, e := range m.Events {
		if e.Tags != tagged[i].Event || e.T != tagged[i].T {
			t.Errorf("event %d = %+v, want tag %q at t=%.2f", i, e, tagged[i].Event, tagged[i].T)
		}
		if s := m.Samples[e.Tick]; s.Event != e.Tags {
			t.Errorf("event %d points at tick %d with tag %q", i, e.Tick, s.Event)
		}
	}

	// Snapshots are consistent with the sample stream.
	if len(m.Snapshots) == 0 {
		t.Fatal("no snapshot frames")
	}
	last := m.Snapshots[len(m.Snapshots)-1]
	if last.Samples != len(m.Samples) {
		t.Errorf("final snapshot covers %d samples, want %d", last.Samples, len(m.Samples))
	}
	for _, s := range m.Snapshots {
		ref := m.Samples[s.Samples-1]
		if s.T != ref.T || s.Pos != ref.Pos || s.Yaw != ref.Yaw {
			t.Errorf("snapshot %+v disagrees with sample %d %+v", s, s.Samples-1, ref)
		}
	}
	if got, want := last.PathLen, m.Trace().PathLength(); got != want {
		t.Errorf("final snapshot path length %v, trace says %v", got, want)
	}
}

func TestVerifyNominalAndFaults(t *testing.T) {
	w := testWorld()
	kf := &faultinject.Plan{Kernel: faultinject.KernelPlanner, Index: 200, Bit: 62}
	sf := &faultinject.StatePlan{State: faultinject.StateWpX, Time: 12, Bit: 61}
	cases := map[string]pipeline.Config{
		"nominal":     {World: w, Seed: 3},
		"kernelfault": {World: w, Seed: 5, KernelFault: kf},
		"statefault":  {World: w, Seed: 5, StateFault: sf},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			m, res, _ := recordMission(t, cfg)
			if name != "nominal" && !res.Injected {
				t.Fatal("fault did not fire; test misconfigured")
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}
}

func TestVerifyWithDetector(t *testing.T) {
	// A minimally trained online GAD: enough to alarm deterministically and
	// to exercise the detector round-trip (serialized pre-mission state must
	// replay bit-identically, including online Welford updates in flight).
	gad := detect.NewGAD(4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		var d [detect.NumStates]float64
		for j := range d {
			d[j] = rng.NormFloat64() * 0.05
		}
		gad.Train(d)
	}
	sf := &faultinject.StatePlan{State: faultinject.StateWpY, Time: 15, Bit: 62}
	cfg := pipeline.Config{World: testWorld(), Seed: 6, StateFault: sf, Detector: gad}
	m, res, _ := recordMission(t, cfg)
	if m.Header.Detector == nil || m.Header.Detector.Kind != "gad" {
		t.Fatalf("detector not embedded in header: %+v", m.Header.Detector)
	}
	if res.Alarms == 0 {
		t.Log("note: no alarms fired (still a valid determinism check)")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify with detector: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	cfg := pipeline.Config{World: testWorld(), Seed: 3}
	var buf bytes.Buffer
	if _, err := RunRecorded(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	m, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the decoded canonical stream (as if the log were edited
	// after the digest was forged to match): Verify must catch it.
	m.canonical[len(m.canonical)/2] ^= 0x40
	if err := m.Verify(); err == nil {
		t.Fatal("Verify accepted a tampered tick stream")
	} else if !strings.Contains(err.Error(), "diverged at tick") {
		t.Fatalf("unexpected verify error: %v", err)
	}

	// A flipped byte on disk fails integrity already at Read.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[len(raw)/3] ^= 0x01
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("Read accepted a corrupted file")
	}
}

func TestReadTruncated(t *testing.T) {
	cfg := pipeline.Config{World: testWorld(), Seed: 3}
	var buf bytes.Buffer
	if _, err := RunRecorded(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Cut mid-file: either a clean frame boundary (no footer → ErrIncomplete)
	// or a torn frame (truncation error). Both must be flagged.
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		cut := int(float64(len(raw)) * frac)
		_, err := Read(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("Read accepted a file truncated at %d/%d bytes", cut, len(raw))
		}
	}

	// Truncating exactly at the last frame boundary (dropping only the
	// footer) must yield ErrIncomplete with the prefix decoded.
	m, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	// Find the footer frame: re-scan frames to locate its start.
	noFooter := truncateFooter(t, raw)
	pm, err := Read(bytes.NewReader(noFooter))
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("footer-less recording: err = %v, want ErrIncomplete", err)
	}
	if pm == nil || len(pm.Samples) == 0 {
		t.Fatal("footer-less recording did not return the decoded prefix")
	}
	if pm.Complete {
		t.Fatal("footer-less recording marked complete")
	}
	if err := pm.Verify(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Verify on incomplete recording: %v", err)
	}
}

// truncateFooter returns raw with its final (footer) frame removed.
func truncateFooter(t *testing.T, raw []byte) []byte {
	t.Helper()
	r := bytes.NewReader(raw)
	magic := make([]byte, len(Magic)+1)
	if _, err := r.Read(magic); err != nil {
		t.Fatal(err)
	}
	lastStart := len(raw)
	for {
		off := len(raw) - r.Len()
		kind, _, err := readFrame(r)
		if err != nil {
			break
		}
		if kind == frameFooter {
			lastStart = off
		}
	}
	return raw[:lastStart]
}

func TestCampaignRecordingWorkerWidthIdentical(t *testing.T) {
	w := testWorld()
	makeCfg := func(i int) pipeline.Config {
		return pipeline.Config{World: w, Seed: 100 + int64(i)}
	}
	const n = 3
	dirs := map[int]string{1: t.TempDir(), 3: t.TempDir()}
	outs := map[int]*campaign.Outcome{}
	for workers, dir := range dirs {
		r := campaign.New(campaign.WithWorkers(workers))
		out, err := RunCampaign(context.Background(), r, dir, "cell", n, makeCfg)
		if err != nil {
			t.Fatalf("RunCampaign(workers=%d): %v", workers, err)
		}
		outs[workers] = out
	}
	if got, want := outs[1].Campaign.Results, outs[3].Campaign.Results; len(got) != len(want) {
		t.Fatalf("campaign sizes differ: %d vs %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("mission %d metrics differ across worker widths", i)
			}
		}
	}
	for i := 0; i < n; i++ {
		a, err := os.ReadFile(MissionPath(dirs[1], i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(MissionPath(dirs[3], i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("mission %d recording differs between 1 and 3 workers", i)
		}
		m, err := Open(MissionPath(dirs[1], i))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("mission %d: %v", i, err)
		}
	}

	infos, err := ScanDir(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != n {
		t.Fatalf("ScanDir found %d recordings, want %d", len(infos), n)
	}
	for i, info := range infos {
		if !info.Complete {
			t.Errorf("recording %d scanned as incomplete", i)
		}
		if info.Footer.Samples == 0 || len(info.Snapshots) == 0 {
			t.Errorf("recording %d scan missing footer/snapshots: %+v", i, info)
		}
		if got := info.Footer.Result.Metrics(); got != outs[1].Campaign.Results[i] {
			t.Errorf("recording %d footer metrics diverge from campaign aggregate", i)
		}
	}
}

func TestChunkingDoesNotAffectCanonicalStream(t *testing.T) {
	cfg := pipeline.Config{World: testWorld(), Seed: 3}
	var a, b bytes.Buffer
	if _, err := RunRecordedOptions(cfg, &a, Options{ChunkSamples: 16, SnapshotEvery: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunRecordedOptions(cfg, &b, Options{ChunkSamples: 1024, SnapshotEvery: 4096}); err != nil {
		t.Fatal(err)
	}
	ma, err := Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Read(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ma.Canonical(), mb.Canonical()) {
		t.Fatal("canonical stream depends on chunking options")
	}
	if ma.Footer.Digest != mb.Footer.Digest {
		t.Fatal("digest depends on chunking options")
	}
}

func TestRecordingDoesNotPerturbMission(t *testing.T) {
	cfg := pipeline.Config{World: testWorld(), Seed: 3}
	plain := pipeline.RunMission(cfg)
	var buf bytes.Buffer
	rec, err := RunRecorded(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != rec.Metrics || plain.Plans != rec.Plans || plain.PlanFails != rec.PlanFails {
		t.Fatalf("recording perturbed the mission:\nplain %+v\nrec   %+v", plain.Metrics, rec.Metrics)
	}
}

func TestNewHeaderRejectsUnrecordable(t *testing.T) {
	if _, err := NewHeader(pipeline.Config{World: testWorld(), Counter: faultinject.NewCounter()}); err == nil {
		t.Error("NewHeader accepted a calibration config")
	}
	if _, err := NewHeader(pipeline.Config{}); err == nil {
		t.Error("NewHeader accepted a world-less config")
	}
	bad := fakeDetector{}
	if _, err := NewHeader(pipeline.Config{World: testWorld(), Detector: bad}); err == nil {
		t.Error("NewHeader accepted an unserializable detector")
	}
}

type fakeDetector struct{}

func (fakeDetector) Name() string { return "fake" }
func (fakeDetector) Reset()       {}
func (fakeDetector) Observe(t float64, deltas [detect.NumStates]float64) []detect.Recovery {
	return nil
}

func TestWriterFailureDoesNotAbortMission(t *testing.T) {
	cfg := pipeline.Config{World: testWorld(), Seed: 3}
	res, err := RunRecordedOptions(cfg, &failAfter{n: 8 << 10}, Options{ChunkSamples: 8})
	if err == nil {
		t.Fatal("RunRecorded did not surface the write error")
	}
	if res.FlightTimeS == 0 {
		t.Fatal("mission did not fly to completion despite writer failure")
	}
}

// failAfter is an io.Writer that fails once its byte budget is spent —
// a synthetic disk filling mid-mission (the budget outlasts the header but
// not the tick chunks).
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if len(p) > f.n {
		return 0, errors.New("synthetic disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestSampleCodecEventEdgeCases(t *testing.T) {
	long := strings.Repeat("x", 300)
	s := trace.Sample{T: 1.5, Event: long}
	enc := appendSample(nil, s)
	dec, n, err := decodeSample(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
	}
	if len(dec.Event) != maxEventBytes || dec.Event != long[:maxEventBytes] {
		t.Fatalf("long event round-tripped as %d bytes", len(dec.Event))
	}
	if _, _, err := decodeSample(enc[:10]); err == nil {
		t.Error("decodeSample accepted a truncated fixed prefix")
	}
	if _, _, err := decodeSample(enc[:sampleFixedBytes+3]); err == nil {
		t.Error("decodeSample accepted a truncated event tag")
	}
}
