package pointcloud

import (
	"math"
	"testing"

	"mavfi/internal/env"
	"mavfi/internal/geom"
	"mavfi/internal/sim"
)

func wallWorld() *env.World {
	return &env.World{
		Name:      "wall",
		Bounds:    geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 50)),
		Obstacles: []geom.AABB{geom.Box(geom.V(20, 0, 0), geom.V(22, 100, 30))},
	}
}

func captureFrame() *sim.DepthImage {
	cam := sim.DefaultDepthCamera()
	cam.NoiseStd = 0
	return cam.Capture(wallWorld(), geom.V(10, 50, 5), 0, nil)
}

func TestGenerateGeometry(t *testing.T) {
	img := captureFrame()
	cloud := NewGenerator().Generate(img, nil)
	if len(cloud.Points) == 0 {
		t.Fatal("empty cloud")
	}
	if cloud.Origin != img.Pos {
		t.Errorf("origin = %v", cloud.Origin)
	}
	hits := 0
	for _, p := range cloud.Points {
		if !p.Hit {
			continue
		}
		hits++
		// Every hit point lies on (or extremely near) the wall face or
		// the ground plane.
		onWall := math.Abs(p.P.X-20) < 0.2
		onGround := p.P.Z < 0.2
		if !onWall && !onGround {
			t.Fatalf("hit point %v not on any surface", p.P)
		}
	}
	if hits == 0 {
		t.Fatal("no hit points against a wall 10 m ahead")
	}
}

func TestGenerateStride(t *testing.T) {
	img := captureFrame()
	full := NewGenerator().Generate(img, nil)
	g := NewGenerator()
	g.Stride = 2
	quarter := g.Generate(img, nil)
	if len(quarter.Points) >= len(full.Points) {
		t.Errorf("stride 2 cloud (%d) not smaller than full (%d)", len(quarter.Points), len(full.Points))
	}
	// Negative stride is sanitised to 1.
	g.Stride = -3
	if got := g.Generate(img, nil); len(got.Points) != len(full.Points) {
		t.Error("negative stride not sanitised")
	}
}

func TestGenerateMinDepth(t *testing.T) {
	img := captureFrame()
	g := NewGenerator()
	g.MinDepth = 1e9 // discard everything
	cloud := g.Generate(img, nil)
	if len(cloud.Points) != 0 {
		t.Errorf("min-depth filter kept %d points", len(cloud.Points))
	}
}

func TestGenerateCorruptHook(t *testing.T) {
	img := captureFrame()
	calls := 0
	cloud := NewGenerator().Generate(img, func(d float64) float64 {
		calls++
		return d
	})
	if calls != img.Rows*img.Cols {
		t.Errorf("hook called %d times, want %d", calls, img.Rows*img.Cols)
	}
	// A hook that shortens one ray produces a point closer than the wall.
	fired := false
	cloud2 := NewGenerator().Generate(img, func(d float64) float64 {
		if !fired && d < img.MaxRange {
			fired = true
			return d / 2
		}
		return d
	})
	if len(cloud2.Points) != len(cloud.Points) {
		t.Errorf("corruption changed point count: %d vs %d", len(cloud2.Points), len(cloud.Points))
	}
}

func TestGenerateCorruptOverrange(t *testing.T) {
	img := captureFrame()
	// Corruption pushing a depth beyond max range must clamp to a
	// non-hit point at max range.
	fired := false
	cloud := NewGenerator().Generate(img, func(d float64) float64 {
		if !fired && d < img.MaxRange {
			fired = true
			return d * 1e10
		}
		return d
	})
	for _, p := range cloud.Points {
		if p.P.Dist(img.Pos) > img.MaxRange+1e-6 {
			t.Fatalf("point %v beyond max range", p.P)
		}
	}
}

func TestCentroid(t *testing.T) {
	img := captureFrame()
	cloud := NewGenerator().Generate(img, nil)
	c, ok := cloud.Centroid()
	if !ok {
		t.Fatal("no centroid for cloud with hits")
	}
	if c.X < 15 || c.X > 25 {
		t.Errorf("centroid %v not near wall", c)
	}
	empty := &Cloud{}
	if _, ok := empty.Centroid(); ok {
		t.Error("empty cloud has centroid")
	}
}
