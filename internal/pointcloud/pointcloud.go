// Package pointcloud implements the Point Cloud Generation kernel: the first
// perception-stage compute kernel, converting an RGB-D depth frame into a
// world-frame point cloud that feeds the OctoMap generation kernel.
//
// Buffer ownership (the PR 2 zero-alloc contract): Generator.GenerateInto
// writes into a caller-owned Cloud, reusing its Points slice across frames —
// the mirror of sim.DepthCamera.CaptureInto on the input side. The previous
// cloud's points are invalid after the next GenerateInto on the same Cloud;
// the pipeline reuses one Cloud per mission because topic delivery is
// synchronous and nothing retains the message after Publish returns.
package pointcloud

import (
	"mavfi/internal/geom"
	"mavfi/internal/sim"
)

// Point is one cloud point plus whether the originating ray actually hit a
// surface (false means the ray reached max range, which carves free space
// only).
type Point struct {
	P   geom.Vec3
	Hit bool
}

// Cloud is a world-frame point cloud tagged with the sensor pose it was
// captured from, which OctoMap needs as the ray origin.
type Cloud struct {
	T      float64
	Origin geom.Vec3
	Points []Point
}

// Generator is the point-cloud-generation kernel. Stride subsamples the
// depth image (1 = every pixel); MinDepth discards readings closer than the
// airframe.
type Generator struct {
	Stride   int
	MinDepth float64
}

// NewGenerator returns the kernel with the configuration used in the
// experiments.
func NewGenerator() *Generator {
	return &Generator{Stride: 1, MinDepth: 0.2}
}

// Generate converts a depth image to a point cloud. This is an injectable
// kernel: its per-point range computation is a fault-injection site in the
// campaign (see internal/faultinject).
func (g *Generator) Generate(img *sim.DepthImage, corrupt func(depth float64) float64) *Cloud {
	c := &Cloud{}
	g.GenerateInto(c, img, corrupt)
	return c
}

// GenerateInto converts a depth image to a point cloud in dst, reusing dst's
// point buffer. The steady-state mission loop holds one scratch Cloud per
// mission and regenerates it allocation-free each frame; results are
// identical to Generate. dst.T is reset to zero, matching a fresh Cloud.
func (g *Generator) GenerateInto(dst *Cloud, img *sim.DepthImage, corrupt func(depth float64) float64) {
	stride := g.Stride
	if stride < 1 {
		stride = 1
	}
	dst.T = 0
	dst.Origin = img.Pos
	dst.Points = dst.Points[:0]
	for r := 0; r < img.Rows; r += stride {
		for col := 0; col < img.Cols; col += stride {
			depth := img.At(r, col)
			if corrupt != nil {
				depth = corrupt(depth)
			}
			if depth < g.MinDepth {
				continue
			}
			hit := depth < img.MaxRange
			if depth > img.MaxRange {
				depth = img.MaxRange
				hit = false
			}
			dir := img.Ray(r, col)
			dst.Points = append(dst.Points, Point{P: img.Pos.Add(dir.Scale(depth)), Hit: hit})
		}
	}
}

// Centroid returns the mean of all hit points, a cheap summary used by
// tests; ok is false when the cloud has no hits.
func (c *Cloud) Centroid() (geom.Vec3, bool) {
	var sum geom.Vec3
	n := 0
	for _, p := range c.Points {
		if p.Hit {
			sum = sum.Add(p.P)
			n++
		}
	}
	if n == 0 {
		return geom.Vec3{}, false
	}
	return sum.Scale(1 / float64(n)), true
}
