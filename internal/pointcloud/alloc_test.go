package pointcloud

import (
	"testing"

	"mavfi/internal/testutil"
)

// TestGenerateIntoSteadyStateAllocFree pins the PR2 buffer-reuse contract:
// regenerating a cloud into a warmed scratch Cloud must allocate nothing.
func TestGenerateIntoSteadyStateAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts are meaningless under -race instrumentation")
	}
	img := captureFrame()
	g := NewGenerator()
	dst := &Cloud{}
	g.GenerateInto(dst, img, nil) // warm the point buffer
	if allocs := testing.AllocsPerRun(50, func() {
		g.GenerateInto(dst, img, nil)
	}); allocs != 0 {
		t.Fatalf("steady-state GenerateInto allocates %v objects per frame, want 0", allocs)
	}
}

// TestGenerateIntoMatchesGenerate checks buffer reuse changes nothing about
// the produced cloud, even when the scratch held a bigger previous cloud.
func TestGenerateIntoMatchesGenerate(t *testing.T) {
	img := captureFrame()
	g := NewGenerator()
	fresh := g.Generate(img, nil)

	reused := &Cloud{T: 99}
	g.GenerateInto(reused, img, nil)
	g.GenerateInto(reused, img, nil)
	if reused.T != 0 {
		t.Errorf("GenerateInto left stale T=%v, want 0", reused.T)
	}
	if reused.Origin != fresh.Origin {
		t.Errorf("origin mismatch: %v vs %v", reused.Origin, fresh.Origin)
	}
	if len(reused.Points) != len(fresh.Points) {
		t.Fatalf("point count mismatch: %d vs %d", len(reused.Points), len(fresh.Points))
	}
	for i := range fresh.Points {
		if fresh.Points[i] != reused.Points[i] {
			t.Fatalf("point %d mismatch: %v vs %v", i, fresh.Points[i], reused.Points[i])
		}
	}
}
