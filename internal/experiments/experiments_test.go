package experiments

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mavfi/internal/detect"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

// tinyOpts keeps the experiment integration tests fast: the assertions below
// check structure and direction, not statistical significance. Under -short
// (CI) the campaigns shrink further — still enough missions to exercise
// every code path, not enough for tight statistics.
func tinyOpts() Opts {
	o := QuickOpts()
	o.Runs = 6
	o.TrainEnvs = 8
	o.AAD.Epochs = 8
	if testing.Short() {
		o.Runs = 3
		o.TrainEnvs = 5
		o.AAD.Epochs = 6
	}
	return o
}

func TestContextWorlds(t *testing.T) {
	c := NewContext(tinyOpts())
	names := []string{"Factory", "Farm", "Sparse", "Dense"}
	if len(c.Worlds) != 4 {
		t.Fatalf("%d worlds", len(c.Worlds))
	}
	for i, w := range c.Worlds {
		if w.Name != names[i] {
			t.Errorf("world %d = %s, want %s", i, w.Name, names[i])
		}
		if err := w.Validate(); err != nil {
			t.Errorf("world %s invalid: %v", w.Name, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown world lookup did not panic")
		}
	}()
	c.World("Nowhere")
}

func TestContextTraining(t *testing.T) {
	c := NewContext(tinyOpts())
	gad := c.GADetector()
	if gad.TrainedSamples() < 100 {
		t.Errorf("GAD trained on only %d samples", gad.TrainedSamples())
	}
	// Clones are independent.
	g2 := c.GADetector()
	if g2 == gad {
		t.Error("GADetector returned shared instance")
	}
	aad := c.AADetector()
	if !aad.Trained() {
		t.Error("AAD not trained")
	}
	if len(c.TrainData()) < 100 {
		t.Error("training corpus too small")
	}
}

func TestFig3Structure(t *testing.T) {
	c := NewContext(tinyOpts())
	f := c.Fig3()
	if len(f.Cells) != 8 { // Golden + 7 kernels/planners
		t.Fatalf("%d cells", len(f.Cells))
	}
	wantNames := []string{"Golden", "P.C. Gen.", "OctoMap", "Col. Ck.", "RRT", "RRTConnect", "RRT*", "PID"}
	for i, cell := range f.Cells {
		if cell.Name != wantNames[i] {
			t.Errorf("cell %d = %s", i, cell.Name)
		}
		if cell.N() != c.Runs {
			t.Errorf("cell %s has %d runs", cell.Name, cell.N())
		}
	}
	if s := f.String(); !strings.Contains(s, "Golden") || !strings.Contains(s, "RRT*") {
		t.Error("rendering incomplete")
	}
	// The worst-case increase is non-negative by construction.
	if f.WorstCaseIncrease() < 0 {
		t.Errorf("worst-case increase %v", f.WorstCaseIncrease())
	}
	if f.SuccessDrop() < 0 || f.SuccessDrop() > 1 {
		t.Errorf("success drop %v", f.SuccessDrop())
	}
}

func TestFig4Structure(t *testing.T) {
	c := NewContext(tinyOpts())
	f := c.Fig4()
	if len(f.Cells) != int(faultinject.NumInjectableStates) {
		t.Fatalf("%d state cells", len(f.Cells))
	}
	if f.Cell(faultinject.StateWpX) == nil || f.Cell(faultinject.StateVelZ) == nil {
		t.Error("missing state cells")
	}
	total := 0
	for _, camp := range f.ByField {
		total += camp.N()
	}
	if total != len(f.Cells)*c.Runs {
		t.Errorf("bit-field totals %d, want %d", total, len(f.Cells)*c.Runs)
	}
	if s := f.String(); !strings.Contains(s, "time_to_collision") || !strings.Contains(s, "exponent") {
		t.Error("rendering incomplete")
	}
}

func TestTableIAndFig6(t *testing.T) {
	o := tinyOpts()
	c := NewContext(o)
	tab := c.TableI()
	if len(tab.Envs) != 4 {
		t.Fatalf("%d envs", len(tab.Envs))
	}
	for _, ec := range tab.Envs {
		if ec.Golden.N() != o.Runs || ec.Injected.N() != 3*o.Runs ||
			ec.GAD.N() != 3*o.Runs || ec.AAD.N() != 3*o.Runs {
			t.Errorf("%s campaign sizes: %d %d %d %d", ec.Env,
				ec.Golden.N(), ec.Injected.N(), ec.GAD.N(), ec.AAD.N())
		}
	}
	// Fig6 reuses the cached campaigns (no recomputation).
	f6 := c.Fig6()
	if f6.Envs[0] != tab.Envs[0] {
		t.Error("Fig6 did not reuse TableI campaigns")
	}
	if s := tab.String(); !strings.Contains(s, "Golden Run") || !strings.Contains(s, "Recovered") {
		t.Error("TableI rendering incomplete")
	}
	if s := f6.String(); !strings.Contains(s, "Factory") {
		t.Error("Fig6 rendering incomplete")
	}
}

func TestTableII(t *testing.T) {
	c := NewContext(tinyOpts())
	tab := c.TableII()
	if len(tab.Gaussian) != 4 || len(tab.Autoencoder) != 4 {
		t.Fatalf("row counts %d/%d", len(tab.Gaussian), len(tab.Autoencoder))
	}
	// The paper's headline: autoencoder overhead orders of magnitude below
	// Gaussian overhead.
	if MaxSum(tab.Autoencoder) >= MaxSum(tab.Gaussian) {
		t.Errorf("AAD overhead %.5f not below GAD %.5f",
			MaxSum(tab.Autoencoder), MaxSum(tab.Gaussian))
	}
	// AAD total overhead stays tiny (paper: ≤0.0062%; allow an order of
	// slack at test scale).
	if MaxSum(tab.Autoencoder) > 0.001 {
		t.Errorf("AAD overhead %.5f%% too large", MaxSum(tab.Autoencoder)*100)
	}
	if s := tab.String(); !strings.Contains(s, "Gaussian-based") {
		t.Error("rendering incomplete")
	}
}

func TestFig8(t *testing.T) {
	c := NewContext(tinyOpts())
	f := c.Fig8()
	if len(f.Rows) != 6 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	airsim, spark := f.Ratio("AirSim UAV"), f.Ratio("DJI Spark")
	if airsim < 1 || spark < 1 {
		t.Errorf("TMR ratios below 1: %v %v", airsim, spark)
	}
	// Paper: 1.06x AirSim, 1.91x Spark — the Spark must suffer much more.
	if spark <= airsim+0.2 {
		t.Errorf("Spark ratio %v not clearly worse than AirSim %v", spark, airsim)
	}
	if s := f.String(); !strings.Contains(s, "TMR") {
		t.Error("rendering incomplete")
	}
}

func TestFig9(t *testing.T) {
	o := tinyOpts()
	o.Runs = 4
	c := NewContext(o)
	f := c.Fig9()
	if len(f.Studies) != 2 {
		t.Fatalf("%d studies", len(f.Studies))
	}
	i9, tx2 := f.Studies[0], f.Studies[1]
	if i9.Platform.Name != "i9-9940X" || tx2.Platform.Name != "Cortex-A57" {
		t.Errorf("platforms: %s %s", i9.Platform.Name, tx2.Platform.Name)
	}
	mi9 := i9.Golden.FlightTimeSummary().Mean
	mtx2 := tx2.Golden.FlightTimeSummary().Mean
	if mtx2 <= mi9*1.3 {
		t.Errorf("TX2 mean %.1f not clearly slower than i9 %.1f (paper: 2.8x)", mtx2, mi9)
	}
	if s := f.String(); !strings.Contains(s, "Core number") {
		t.Error("rendering incomplete")
	}
}

func TestRecoveredFractionShape(t *testing.T) {
	// End-to-end direction check at tiny scale: protection must not make
	// success rates worse than unprotected injection by more than noise.
	c := NewContext(tinyOpts())
	ec := c.envCampaign("Sparse")
	inj := ec.Injected.SuccessRate()
	if ec.GAD.SuccessRate() < inj-0.15 {
		t.Errorf("GAD success %.2f well below unprotected %.2f", ec.GAD.SuccessRate(), inj)
	}
	if ec.AAD.SuccessRate() < inj-0.15 {
		t.Errorf("AAD success %.2f well below unprotected %.2f", ec.AAD.SuccessRate(), inj)
	}
}

// campaignForWorkers runs one golden cell plus one AAD-protected injection
// cell with the given worker count, from a fresh Context each time.
func campaignForWorkers(o Opts, workers int) (golden, protected *qof.Campaign) {
	o.Workers = workers
	c := NewContext(o)
	w := c.World("Sparse")
	golden = c.runCell("Golden", func(i int) pipeline.Config {
		return pipeline.Config{World: w, Platform: c.Platform, Seed: c.Seed + int64(i)}
	})
	ctr := c.calibrate(w, c.Platform)
	plans := make([]faultinject.Plan, c.Runs)
	// Deterministic schedule: reuse the calibration counter with a fixed
	// stream so every worker-count variant replays identical faults.
	rng := rand.New(rand.NewSource(c.Seed + 99))
	for i := range plans {
		plans[i] = faultinject.NewPlan(faultinject.KernelPlanner, ctr.Count(faultinject.KernelPlanner), rng)
	}
	protected = c.runInjected("Autoencoder", w, c.Platform, plans, func() detect.Detector {
		return c.AADetector()
	})
	return golden, protected
}

// TestCampaignWorkerDeterminism is the engine's core guarantee at the
// experiments layer: the same campaign seed yields an identical qof.Campaign
// — mission for mission — whether the pool runs 1, 2, or 8 workers.
func TestCampaignWorkerDeterminism(t *testing.T) {
	o := tinyOpts()
	o.Runs = 3
	o.TrainEnvs = 4
	o.AAD.Epochs = 4
	var refGolden, refProtected *qof.Campaign
	for _, workers := range []int{1, 2, 8} {
		golden, protected := campaignForWorkers(o, workers)
		if refGolden == nil {
			refGolden, refProtected = golden, protected
			continue
		}
		if !reflect.DeepEqual(refGolden.Results, golden.Results) {
			t.Errorf("workers=%d: golden campaign differs from 1-worker run", workers)
		}
		if !reflect.DeepEqual(refProtected.Results, protected.Results) {
			t.Errorf("workers=%d: protected campaign differs from 1-worker run", workers)
		}
	}
	if refGolden.N() != o.Runs || refProtected.N() != o.Runs {
		t.Fatalf("campaign sizes %d/%d", refGolden.N(), refProtected.N())
	}
}

func TestAblationStructures(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	o := tinyOpts()
	o.Runs = 3
	c := NewContext(o)

	sig := c.AblationSigma()
	if len(sig.Cells) != 5 {
		t.Errorf("sigma sweep cells = %d", len(sig.Cells))
	}
	// Higher n must not increase golden false positives.
	if sig.Cells[0].GoldenFPs < sig.Cells[len(sig.Cells)-1].GoldenFPs {
		t.Errorf("FPs not decreasing with n: first %v last %v",
			sig.Cells[0].GoldenFPs, sig.Cells[len(sig.Cells)-1].GoldenFPs)
	}

	pre := c.AblationPreprocess()
	if len(pre.Cells) != 2 {
		t.Errorf("preprocess cells = %d", len(pre.Cells))
	}
	bn := c.AblationBottleneck()
	if len(bn.Cells) != 4 {
		t.Errorf("bottleneck cells = %d", len(bn.Cells))
	}
	rec := c.AblationRecovery()
	if len(rec.Cells) != 3 {
		t.Errorf("recovery cells = %d", len(rec.Cells))
	}
	for _, a := range []*AblationResult{sig, pre, bn, rec} {
		if a.String() == "" {
			t.Error("empty ablation rendering")
		}
	}
}
