package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mavfi/internal/detect"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

// EnvCampaign is the full detection & recovery study for one environment:
// golden runs, unprotected injection runs, and injection runs protected by
// each scheme. Injections are spread evenly across the three PPC stages
// (the paper's "100 fault injections for each PPC stage").
type EnvCampaign struct {
	Env      string
	Golden   *qof.Campaign
	Injected *qof.Campaign
	GAD      *qof.Campaign
	AAD      *qof.Campaign
}

// TableIResult reproduces Tab. I (success rates in the four environments)
// and carries the campaigns Fig. 6 and Tab. II reuse.
type TableIResult struct {
	Envs []*EnvCampaign
}

// envCampaign runs (or returns the cached) study for one environment.
func (c *Context) envCampaign(name string) *EnvCampaign {
	if ec, ok := c.tableICache[name]; ok {
		return ec
	}
	w := c.World(name)
	ec := &EnvCampaign{Env: name}

	ec.Golden = c.runCell("Golden", func(i int) pipeline.Config {
		return pipeline.Config{World: w, Platform: c.Platform, Seed: c.Seed + int64(i)}
	})

	// One shared injection schedule: run i of every protected campaign
	// replays exactly the fault of unprotected run i, so the comparison is
	// paired (same faults, with and without protection).
	ctr := c.calibrate(w, c.Platform)
	planRNG := rand.New(rand.NewSource(c.Seed + int64(len(name))*997))
	plans := c.stagePlans(ctr, planRNG)

	ec.Injected = c.runInjected("Injection", w, c.Platform, plans, nil)
	ec.GAD = c.runInjected("Gaussian", w, c.Platform, plans, func() detect.Detector { return c.GADetector() })
	ec.AAD = c.runInjected("Autoencoder", w, c.Platform, plans, func() detect.Detector { return c.AADetector() })

	c.tableICache[name] = ec
	return ec
}

// TableI runs (or reuses) the four-environment study.
func (c *Context) TableI() *TableIResult {
	out := &TableIResult{}
	for _, w := range c.Worlds {
		out.Envs = append(out.Envs, c.envCampaign(w.Name))
	}
	return out
}

// String renders Tab. I: success rates per environment and setting.
func (t *TableIResult) String() string {
	var b strings.Builder
	b.WriteString(header("Tab. I: flight success rate in 4 evaluation environments"))
	fmt.Fprintf(&b, "%-18s", "Setting")
	for _, ec := range t.Envs {
		fmt.Fprintf(&b, "%10s", ec.Env)
	}
	b.WriteByte('\n')
	row := func(name string, pick func(*EnvCampaign) *qof.Campaign) {
		fmt.Fprintf(&b, "%-18s", name)
		for _, ec := range t.Envs {
			fmt.Fprintf(&b, "%9.1f%%", pick(ec).SuccessRate()*100)
		}
		b.WriteByte('\n')
	}
	row("Golden Run", func(e *EnvCampaign) *qof.Campaign { return e.Golden })
	row("Injection Run", func(e *EnvCampaign) *qof.Campaign { return e.Injected })
	row("Gaussian-based", func(e *EnvCampaign) *qof.Campaign { return e.GAD })
	row("Autoencoder-based", func(e *EnvCampaign) *qof.Campaign { return e.AAD })

	b.WriteString("\nRecovered failure cases (paper: GAD up to 89.6%, AAD up to 100%):\n")
	for _, ec := range t.Envs {
		g, inj := ec.Golden.SuccessRate(), ec.Injected.SuccessRate()
		fmt.Fprintf(&b, "  %-8s GAD %5.1f%%  AAD %5.1f%%\n", ec.Env,
			qof.RecoveredFraction(g, inj, ec.GAD.SuccessRate())*100,
			qof.RecoveredFraction(g, inj, ec.AAD.SuccessRate())*100)
	}
	return b.String()
}

// Fig6Result reproduces Fig. 6: flight-time distributions of successful
// missions for golden / FI / D&R(Gaussian) / D&R(Autoencoder) per
// environment.
type Fig6Result struct {
	Envs []*EnvCampaign
}

// Fig6 reuses the Tab. I campaigns.
func (c *Context) Fig6() *Fig6Result {
	return &Fig6Result{Envs: c.TableI().Envs}
}

// String renders one box-stat row per setting per environment, plus the
// paper's worst-case recovery percentages.
func (f *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 6: flight time distributions (successful runs)"))
	for _, ec := range f.Envs {
		fmt.Fprintf(&b, "[%s]\n", ec.Env)
		for _, camp := range []*qof.Campaign{ec.Golden, ec.Injected, ec.GAD, ec.AAD} {
			fmt.Fprintf(&b, "  %s\n", Row(camp))
		}
		gMax := ec.Golden.FlightTimeSummary().Max
		iMax := ec.Injected.FlightTimeSummary().Max
		if iMax > gMax && gMax > 0 {
			rec := func(camp *qof.Campaign) float64 {
				m := camp.FlightTimeSummary().Max
				return (iMax - m) / (iMax - gMax) * 100
			}
			fmt.Fprintf(&b, "  worst-case flight time: FI %+.1f%% vs golden; recovered GAD %.1f%%, AAD %.1f%%\n",
				(iMax/gMax-1)*100, rec(ec.GAD), rec(ec.AAD))
		}
	}
	return b.String()
}
