package experiments

import (
	"fmt"
	"strings"

	"mavfi/internal/platform"
)

// Fig8Result reproduces Fig. 8: the visual-performance-model comparison of
// hardware redundancy (DMR, TMR) against the software anomaly-D&R scheme on
// the AirSim UAV (8b) and DJI Spark (8c), both on ARM Cortex-A57.
type Fig8Result struct {
	// Rows are grouped per airframe in D&R, DMR, TMR order.
	Rows []platform.Perf
	// MissionM is the evaluated mission length.
	MissionM float64
}

// Fig8 evaluates the model. The anomaly-D&R configuration carries a single
// compute module (its software overhead is negligible per Tab. II); DMR and
// TMR carry two and three.
func (c *Context) Fig8() *Fig8Result {
	const missionM = 400
	cu := platform.CortexA57Unit()
	tResp := platform.TX2().ResponseTimeS()
	out := &Fig8Result{MissionM: missionM}
	for _, af := range []platform.Airframe{platform.AirSimUAV(), platform.DJISpark()} {
		for _, r := range []platform.Redundancy{platform.NoRedundancy, platform.DMR, platform.TMR} {
			out.Rows = append(out.Rows, platform.Evaluate(af, cu, r, tResp, missionM))
		}
	}
	return out
}

// Ratio returns TMR flight time divided by D&R flight time for the given
// airframe (the paper reports 1.06× for the AirSim UAV and 1.91× for the
// DJI Spark).
func (f *Fig8Result) Ratio(airframe string) float64 {
	var dr, tmr float64
	for _, r := range f.Rows {
		if r.Airframe != airframe {
			continue
		}
		switch r.Scheme {
		case "D&R":
			dr = r.FlightTimeS
		case "TMR":
			tmr = r.FlightTimeS
		}
	}
	if dr == 0 {
		return 0
	}
	return tmr / dr
}

// String renders the comparison.
func (f *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Fig. 8: DMR/TMR vs anomaly D&R on Cortex-A57 (%.0f m mission)", f.MissionM)))
	last := ""
	for _, r := range f.Rows {
		if r.Airframe != last {
			fmt.Fprintf(&b, "[%s]\n", r.Airframe)
			last = r.Airframe
		}
		fmt.Fprintf(&b, "  %-4s v=%5.2f m/s  flight time=%7.1f s  energy=%8.1f kJ\n",
			r.Scheme, r.VelocityMS, r.FlightTimeS, r.EnergyJ/1000)
	}
	fmt.Fprintf(&b, "TMR/D&R flight-time ratio: AirSim UAV %.2fx, DJI Spark %.2fx (paper: 1.06x, 1.91x)\n",
		f.Ratio("AirSim UAV"), f.Ratio("DJI Spark"))
	return b.String()
}
