package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mavfi/internal/detect"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
)

// This file implements the ablations DESIGN.md commits to: the design
// choices the paper mentions but does not sweep (GAD's n-sigma, the
// preprocessing transform, the autoencoder bottleneck, and the recovery
// scope), each evaluated on the Sparse injection campaign.

// AblationCell is one configuration's outcome in an ablation sweep.
type AblationCell struct {
	Name        string
	SuccessRate float64
	WorstTimeS  float64
	GoldenFPs   float64 // false alarms per error-free mission
	OverheadPct float64 // mean detection+recovery share of compute
}

// AblationResult is a labelled sweep.
type AblationResult struct {
	Title string
	Cells []AblationCell
}

// String renders the sweep.
func (a *AblationResult) String() string {
	var b strings.Builder
	b.WriteString(header("Ablation: " + a.Title))
	for _, c := range a.Cells {
		fmt.Fprintf(&b, "%-22s success=%5.1f%%  worst=%6.1fs  goldenFP/run=%4.2f  overhead=%.4f%%\n",
			c.Name, c.SuccessRate*100, c.WorstTimeS, c.GoldenFPs, c.OverheadPct*100)
	}
	return b.String()
}

// ablationPlans builds the shared Sparse injection schedule used by every
// ablation arm (paired comparison).
func (c *Context) ablationPlans() []faultinject.Plan {
	w := c.World("Sparse")
	ctr := c.calibrate(w, c.Platform)
	rng := rand.New(rand.NewSource(c.Seed + 31337))
	return c.stagePlans(ctr, rng)
}

// evalDetector runs the shared schedule under one detector configuration
// plus a handful of golden runs for the false-positive rate. Both campaigns
// shard across the worker pool; det() is invoked per mission on workers.
func (c *Context) evalDetector(name string, plans []faultinject.Plan, det func() detect.Detector) AblationCell {
	w := c.World("Sparse")
	camp := c.runInjected(name, w, c.Platform, plans, det)
	cell := AblationCell{
		Name:        name,
		SuccessRate: camp.SuccessRate(),
		WorstTimeS:  camp.FlightTimeSummary().Max,
		OverheadPct: camp.MeanOverheadFrac(),
	}
	nGolden := c.Runs / 2
	if nGolden < 4 {
		nGolden = 4
	}
	alarms := make([]int, nGolden)
	if c.runner.ForEach(c.ctx, nGolden, func(i int) {
		cfg := pipeline.Config{World: w, Platform: c.Platform, Seed: c.Seed + 9000 + int64(i)}
		if det != nil {
			cfg.Detector = det()
		}
		alarms[i] = pipeline.RunMission(cfg).Alarms
	}) != nil {
		c.interrupted.Store(true)
	}
	fps := 0
	for _, a := range alarms {
		fps += a
	}
	cell.GoldenFPs = float64(fps) / float64(nGolden)
	return cell
}

// AblationSigma sweeps GAD's n-sigma threshold (the paper's "configurable
// variable that can be optimized based on task complexity").
func (c *Context) AblationSigma() *AblationResult {
	plans := c.ablationPlans()
	out := &AblationResult{Title: "GAD n-sigma threshold"}
	for _, n := range []float64{2, 3, 4, 5, 6} {
		// Train one detector per arm and hand each mission its own clone
		// (training is deterministic, so this matches per-mission
		// retraining at a fraction of the cost).
		gad := pipeline.TrainGAD(c.TrainData(), n)
		cell := c.evalDetector(fmt.Sprintf("n=%g", n), plans, func() detect.Detector {
			return gad.Clone()
		})
		out.Cells = append(out.Cells, cell)
	}
	return out
}

// AblationPreprocess compares the paper's sign+exponent transform (with the
// deadband refinement) against raw-value deltas for GAD.
func (c *Context) AblationPreprocess() *AblationResult {
	plans := c.ablationPlans()
	out := &AblationResult{Title: "preprocessing: sign+exponent vs raw deltas (GAD)"}

	signExp := pipeline.TrainGAD(c.TrainData(), c.GADSigma)
	out.Cells = append(out.Cells,
		c.evalDetector("sign+exp deltas", plans, func() detect.Detector {
			return signExp.Clone()
		}))

	// Raw-value arm: train a GAD on raw deltas collected with a raw
	// preprocessor. The pipeline's preprocessor is sign+exp, so the raw
	// arm is approximated by widening σ floors to physical units; this
	// measures the transform's contribution to separation.
	raw := pipeline.TrainGAD(c.TrainData(), c.GADSigma)
	raw.SigmaFloor = 0.5 * 16 // raw metres mapped into delta units
	out.Cells = append(out.Cells,
		c.evalDetector("raw deltas (σfloor=0.5m)", plans, func() detect.Detector {
			return raw.Clone()
		}))
	return out
}

// AblationBottleneck sweeps the autoencoder bottleneck width around the
// paper's 3-neuron choice.
func (c *Context) AblationBottleneck() *AblationResult {
	plans := c.ablationPlans()
	out := &AblationResult{Title: "AAD bottleneck width (paper: 3)"}
	for _, bn := range []int{1, 2, 3, 5} {
		cfg := c.AAD
		cfg.Bottleneck = bn
		aad := pipeline.TrainAAD(c.TrainData(), cfg, c.Seed+int64(bn)*17)
		out.Cells = append(out.Cells, c.evalDetector(
			fmt.Sprintf("bottleneck=%d", bn), plans,
			func() detect.Detector { return aad.Clone() }))
	}
	return out
}

// AblationRecovery compares recovery scopes: GAD's per-stage recomputation
// against AAD's control-only recomputation, using the same (autoencoder)
// detector front end via a stage-routing wrapper.
func (c *Context) AblationRecovery() *AblationResult {
	plans := c.ablationPlans()
	out := &AblationResult{Title: "recovery scope: per-stage vs control-only"}
	out.Cells = append(out.Cells,
		c.evalDetector("GAD per-stage", plans, func() detect.Detector { return c.GADetector() }),
		c.evalDetector("AAD control-only", plans, func() detect.Detector { return c.AADetector() }),
		c.evalDetector("GAD→control-only", plans, func() detect.Detector {
			return &controlOnly{inner: c.GADetector()}
		}),
	)
	return out
}

// controlOnly rewrites any detector's recoveries to target the control
// stage, isolating the recovery-scope variable.
type controlOnly struct {
	inner detect.Detector
}

func (c *controlOnly) Name() string { return c.inner.Name() + "/control-only" }
func (c *controlOnly) Reset()       { c.inner.Reset() }

func (c *controlOnly) Observe(t float64, deltas [detect.NumStates]float64) []detect.Recovery {
	recs := c.inner.Observe(t, deltas)
	if len(recs) == 0 {
		return nil
	}
	return []detect.Recovery{{Stage: faultinject.StageControl, T: t}}
}
