package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
	"mavfi/internal/trace"
)

// Fig7Case is one trajectory-analysis scenario: the same seed flown golden,
// with a fault injected into one stage, and with the fault plus
// autoencoder-based detection & recovery — the three curves of Fig. 7.
type Fig7Case struct {
	Stage     faultinject.Stage
	Seed      int64
	Golden    *trace.Trace
	Faulty    *trace.Trace
	Recovered *trace.Trace
	// Flight times for the three runs.
	GoldenS, FaultyS, RecoveredS float64
	// Outcomes (the faulty run may crash).
	FaultyOutcome, RecoveredOutcome qof.Outcome
}

// Fig7Result reproduces Fig. 7: trajectories in the Dense environment for a
// perception-stage injection (7a) and a planning-stage injection (7b).
type Fig7Result struct {
	Cases []*Fig7Case
}

// Fig7 searches seeds for injections that visibly detour the flight (the
// paper's Fig. 7 shows hand-picked illustrative runs) and records the three
// trajectories of each case. Attempts run in parallel batches; within and
// across batches the lowest qualifying attempt wins, so the selected case is
// independent of worker count and batch size.
func (c *Context) Fig7() *Fig7Result {
	w := c.World("Dense")
	ctr := c.calibrate(w, c.Platform)
	out := &Fig7Result{}
	const attempts = 60

	for _, stage := range []faultinject.Stage{faultinject.StagePerception, faultinject.StagePlanning} {
		kernels := stageKernels[stage]
		// Draw every attempt's plan up front (sequential RNG consumption);
		// an attempt then depends only on its index.
		planRNG := rand.New(rand.NewSource(c.Seed + int64(stage)*37))
		plans := make([]faultinject.Plan, attempts)
		for a := range plans {
			k := kernels[a%len(kernels)]
			plans[a] = faultinject.NewPlan(k, ctr.Count(k), planRNG)
		}

		try := func(attempt int) *Fig7Case {
			seed := c.Seed + int64(attempt)
			base := pipeline.Config{World: w, Platform: c.Platform, Seed: seed, Record: true}
			golden := pipeline.RunMission(base)
			if golden.Outcome != qof.Success {
				return nil
			}
			fiCfg := base
			fiCfg.KernelFault = &plans[attempt]
			faulty := pipeline.RunMission(fiCfg)
			// Keep a case where the fault visibly stretched the flight
			// (detour) without necessarily crashing.
			if !faulty.Injected || faulty.FlightTimeS < golden.FlightTimeS*1.12 {
				return nil
			}
			recCfg := fiCfg
			recCfg.Detector = c.AADetector()
			rec := pipeline.RunMission(recCfg)

			return &Fig7Case{
				Stage:            stage,
				Seed:             seed,
				Golden:           label(golden.Trace, "golden"),
				Faulty:           label(faulty.Trace, "fault"),
				Recovered:        label(rec.Trace, "fault+D&R"),
				GoldenS:          golden.FlightTimeS,
				FaultyS:          faulty.FlightTimeS,
				RecoveredS:       rec.FlightTimeS,
				FaultyOutcome:    faulty.Outcome,
				RecoveredOutcome: rec.Outcome,
			}
		}

		// Batched search: each batch fans its attempts across the pool and
		// the search stops at the first batch containing a hit, bounding
		// wasted attempts to one batch past the sequential stopping point.
		batch := 4 * c.runner.Workers()
		var best *Fig7Case
		for start := 0; start < attempts && best == nil; start += batch {
			n := attempts - start
			if n > batch {
				n = batch
			}
			cases := make([]*Fig7Case, n)
			if c.runner.ForEach(c.ctx, n, func(i int) { cases[i] = try(start + i) }) != nil {
				c.interrupted.Store(true)
				break
			}
			for _, cs := range cases {
				if cs != nil {
					best = cs
					break
				}
			}
		}
		if best != nil {
			out.Cases = append(out.Cases, best)
		}
	}
	return out
}

func label(t *trace.Trace, l string) *trace.Trace {
	if t != nil {
		t.Label = l
	}
	return t
}

// String summarises the cases.
func (f *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 7: trajectory analysis (Dense)"))
	if len(f.Cases) == 0 {
		b.WriteString("no illustrative detour case found at this campaign scale\n")
		return b.String()
	}
	for _, cs := range f.Cases {
		fmt.Fprintf(&b, "injection in %-10s seed=%-4d golden=%6.1fs  fault=%6.1fs (%+.1f%%, %s)  fault+D&R=%6.1fs (%+.1f%%, %s)\n",
			cs.Stage, cs.Seed, cs.GoldenS,
			cs.FaultyS, (cs.FaultyS/cs.GoldenS-1)*100, cs.FaultyOutcome,
			cs.RecoveredS, (cs.RecoveredS/cs.GoldenS-1)*100, cs.RecoveredOutcome)
		fmt.Fprintf(&b, "  path lengths: golden=%.1fm fault=%.1fm (detour %+.1f%%) fault+D&R=%.1fm (detour %+.1f%%)\n",
			cs.Golden.PathLength(), cs.Faulty.PathLength(), cs.Faulty.Detour(cs.Golden)*100,
			cs.Recovered.PathLength(), cs.Recovered.Detour(cs.Golden)*100)
	}
	return b.String()
}

// WriteCSV dumps all trajectories of case i for plotting.
func (f *Fig7Result) WriteCSV(w io.Writer, i int) error {
	if i < 0 || i >= len(f.Cases) {
		return fmt.Errorf("fig7: no case %d", i)
	}
	cs := f.Cases[i]
	return trace.WriteAllCSV(w, cs.Golden, cs.Faulty, cs.Recovered)
}
