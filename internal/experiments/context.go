// Package experiments regenerates every table and figure of the paper's
// evaluation: per-kernel and per-state fault-injection campaigns (Fig. 3,
// Fig. 4), the four-environment detection & recovery study (Tab. I, Fig. 6),
// trajectory analysis (Fig. 7), overhead accounting (Tab. II), the hardware-
// redundancy comparison (Fig. 8), and the platform comparison (Fig. 9) —
// plus the ablations DESIGN.md calls out.
//
// Each experiment is a pure function of (Opts, seed): campaigns are fully
// deterministic and scale with Opts.Runs so the test suite can run reduced
// campaigns while the CLI and benchmarks run paper-scale ones.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"mavfi/internal/campaign"
	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
)

// Opts scales and seeds a campaign.
type Opts struct {
	// Runs is the number of missions per campaign cell (paper: 100).
	Runs int
	// Seed roots all randomness.
	Seed int64
	// Platform is the companion-computer model for the main experiments.
	Platform platform.Platform
	// TrainEnvs is the number of error-free randomised training
	// environments for the detectors (paper: ~100).
	TrainEnvs int
	// GADSigma is the Gaussian detector's n-sigma threshold.
	GADSigma float64
	// AAD is the autoencoder architecture/training configuration.
	AAD detect.AADConfig
	// Workers caps the campaign worker pool; 0 selects the automatic
	// default (MAVFI_WORKERS, else GOMAXPROCS). Campaign results are
	// bit-identical for any worker count.
	Workers int
}

// PaperOpts returns the paper-scale configuration: 100 runs per cell, 100
// training environments.
func PaperOpts() Opts {
	return Opts{
		Runs:      100,
		Seed:      1,
		Platform:  platform.I9(),
		TrainEnvs: 100,
		GADSigma:  4,
		AAD:       detect.DefaultAADConfig(),
	}
}

// QuickOpts returns a reduced configuration sized for the test suite.
func QuickOpts() Opts {
	o := PaperOpts()
	o.Runs = 12
	o.TrainEnvs = 12
	o.AAD.Epochs = 10
	return o
}

// Context carries shared campaign state: the four evaluation environments
// and the trained detectors (trained once, cloned per mission).
type Context struct {
	Opts

	Worlds []*env.World // Factory, Farm, Sparse, Dense (paper order)

	trainOnce sync.Once
	trainData [][detect.NumStates]float64
	gad       *detect.GAD
	aad       *detect.AAD

	runner *campaign.Runner
	ctx    context.Context
	// interrupted is atomic: lazy detector training can be triggered (and
	// cut short) from campaign worker goroutines.
	interrupted atomic.Bool

	tableICache map[string]*EnvCampaign
}

// NewContext builds the evaluation environments. Detector training is
// deferred until first use.
func NewContext(o Opts) *Context {
	rng := rand.New(rand.NewSource(o.Seed))
	return &Context{
		Opts: o,
		Worlds: []*env.World{
			env.Factory(),
			env.Farm(),
			env.Sparse(rng),
			env.Dense(rng),
		},
		runner:      campaign.New(campaign.WithWorkers(o.Workers)),
		ctx:         context.Background(),
		tableICache: make(map[string]*EnvCampaign),
	}
}

// SetContext installs a cancellation context: once it is cancelled, running
// campaigns stop scheduling new missions and return partial results, and
// Interrupted reports true.
func (c *Context) SetContext(ctx context.Context) {
	if ctx != nil {
		c.ctx = ctx
	}
}

// Interrupted reports whether any campaign (or the detector-training
// collection) was cut short by a cancelled context; interrupted experiment
// results cover only the missions that completed and should not be quoted as
// full campaigns.
func (c *Context) Interrupted() bool { return c.interrupted.Load() }

// World returns the evaluation environment with the given name.
func (c *Context) World(name string) *env.World {
	for _, w := range c.Worlds {
		if w.Name == name {
			return w
		}
	}
	panic(fmt.Sprintf("experiments: unknown world %q", name))
}

// ensureTrained runs the training campaign once: error-free flights through
// randomised environments, feeding both detectors. Guarded by a sync.Once so
// parallel campaign workers can trigger the lazy training safely.
func (c *Context) ensureTrained() {
	c.trainOnce.Do(func() {
		data, err := pipeline.CollectTrainingDataOn(c.ctx, c.runner, c.TrainEnvs, c.Seed+1000, c.Platform)
		if err != nil {
			// Cancelled mid-collection: the detectors below are fit on a
			// partial corpus, which Interrupted flags as unusable output.
			c.interrupted.Store(true)
		}
		c.trainData = data
		c.gad = pipeline.TrainGAD(c.trainData, c.GADSigma)
		c.aad = pipeline.TrainAAD(c.trainData, c.AAD, c.Seed+2000)
	})
}

// GADetector returns a fresh per-mission clone of the trained Gaussian
// detector (clones keep online updates independent across missions).
func (c *Context) GADetector() *detect.GAD {
	c.ensureTrained()
	return c.gad.Clone()
}

// AADetector returns a per-mission inference clone of the trained
// autoencoder detector (clones share the trained weights but own their
// forward scratch, so parallel missions do not race).
func (c *Context) AADetector() *detect.AAD {
	c.ensureTrained()
	return c.aad.Clone()
}

// TrainData exposes the training corpus for the ablation experiments.
func (c *Context) TrainData() [][detect.NumStates]float64 {
	c.ensureTrained()
	return c.trainData
}

// calibrate runs one golden calibration mission in w and returns the
// per-kernel dynamic value counts for uniform fault-plan drawing.
func (c *Context) calibrate(w *env.World, p platform.Platform) *faultinject.Counter {
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{
		World:    w,
		Platform: p,
		Seed:     c.Seed + 555,
		Counter:  ctr,
	})
	return ctr
}

// stageKernels lists the kernels of each PPC stage used when a campaign
// injects "per stage" (Tab. I: 100 injections per stage).
var stageKernels = map[faultinject.Stage][]faultinject.Kernel{
	faultinject.StagePerception: {
		faultinject.KernelPCGen,
		faultinject.KernelOctoMap,
		faultinject.KernelColCheck,
	},
	faultinject.StagePlanning: {faultinject.KernelPlanner},
	faultinject.StageControl:  {faultinject.KernelPID},
}

// runCell flies Runs missions of one campaign cell across the worker pool
// and aggregates them in mission order. makeCfg(i) must depend only on i
// (and immutable captured state): it is invoked concurrently, and results
// must stay bit-identical for any worker count.
func (c *Context) runCell(name string, makeCfg func(i int) pipeline.Config) *qof.Campaign {
	return c.runN(name, c.Runs, makeCfg)
}

// runN is runCell with an explicit mission count.
func (c *Context) runN(name string, n int, makeCfg func(i int) pipeline.Config) *qof.Campaign {
	out, err := c.runner.Run(c.ctx, name, n, func(i int) qof.Metrics {
		return pipeline.RunMission(makeCfg(i)).Metrics
	})
	if err != nil {
		c.interrupted.Store(true)
	}
	return out.Campaign
}

// stagePlans draws a shared injection schedule: Runs plans per PPC stage,
// spread across the stage's kernels. The plans are drawn sequentially from
// rng up front so the schedule does not depend on mission scheduling, and
// campaigns that replay the same schedule stay a paired comparison.
func (c *Context) stagePlans(ctr *faultinject.Counter, rng *rand.Rand) []faultinject.Plan {
	stages := []faultinject.Stage{
		faultinject.StagePerception,
		faultinject.StagePlanning,
		faultinject.StageControl,
	}
	plans := make([]faultinject.Plan, 3*c.Runs)
	for i := range plans {
		kernels := stageKernels[stages[i/c.Runs]]
		k := kernels[i%len(kernels)]
		plans[i] = faultinject.NewPlan(k, ctr.Count(k), rng)
	}
	return plans
}

// runInjected replays an injection schedule in w on p, mission i flying
// under plans[i] with the golden seed of run i%Runs (paired with the golden
// campaign). det, when non-nil, supplies a fresh detector per mission and is
// invoked from worker goroutines.
func (c *Context) runInjected(name string, w *env.World, p platform.Platform, plans []faultinject.Plan, det func() detect.Detector) *qof.Campaign {
	return c.runN(name, len(plans), func(i int) pipeline.Config {
		cfg := pipeline.Config{
			World:       w,
			Platform:    p,
			Seed:        c.Seed + int64(i%c.Runs),
			KernelFault: &plans[i],
		}
		if det != nil {
			cfg.Detector = det()
		}
		return cfg
	})
}

// Row formats a campaign as a one-line summary.
func Row(camp *qof.Campaign) string {
	s := camp.FlightTimeSummary()
	return fmt.Sprintf("%-16s n=%-4d success=%5.1f%%  flight time: med=%6.1fs p95=%6.1fs max=%6.1fs",
		camp.Name, camp.N(), camp.SuccessRate()*100, s.Median, s.P95, s.Max)
}

// header renders a section header for experiment output.
func header(title string) string {
	return fmt.Sprintf("\n=== %s ===\n%s\n", title, strings.Repeat("-", len(title)+8))
}
