// Package experiments regenerates every table and figure of the paper's
// evaluation: per-kernel and per-state fault-injection campaigns (Fig. 3,
// Fig. 4), the four-environment detection & recovery study (Tab. I, Fig. 6),
// trajectory analysis (Fig. 7), overhead accounting (Tab. II), the hardware-
// redundancy comparison (Fig. 8), and the platform comparison (Fig. 9) —
// plus the ablations DESIGN.md calls out.
//
// Each experiment is a pure function of (Opts, seed): campaigns are fully
// deterministic and scale with Opts.Runs so the test suite can run reduced
// campaigns while the CLI and benchmarks run paper-scale ones.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mavfi/internal/detect"
	"mavfi/internal/env"
	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
)

// Opts scales and seeds a campaign.
type Opts struct {
	// Runs is the number of missions per campaign cell (paper: 100).
	Runs int
	// Seed roots all randomness.
	Seed int64
	// Platform is the companion-computer model for the main experiments.
	Platform platform.Platform
	// TrainEnvs is the number of error-free randomised training
	// environments for the detectors (paper: ~100).
	TrainEnvs int
	// GADSigma is the Gaussian detector's n-sigma threshold.
	GADSigma float64
	// AAD is the autoencoder architecture/training configuration.
	AAD detect.AADConfig
}

// PaperOpts returns the paper-scale configuration: 100 runs per cell, 100
// training environments.
func PaperOpts() Opts {
	return Opts{
		Runs:      100,
		Seed:      1,
		Platform:  platform.I9(),
		TrainEnvs: 100,
		GADSigma:  4,
		AAD:       detect.DefaultAADConfig(),
	}
}

// QuickOpts returns a reduced configuration sized for the test suite.
func QuickOpts() Opts {
	o := PaperOpts()
	o.Runs = 12
	o.TrainEnvs = 12
	o.AAD.Epochs = 10
	return o
}

// Context carries shared campaign state: the four evaluation environments
// and the trained detectors (trained once, cloned per mission).
type Context struct {
	Opts

	Worlds []*env.World // Factory, Farm, Sparse, Dense (paper order)

	trainData [][detect.NumStates]float64
	gad       *detect.GAD
	aad       *detect.AAD

	tableICache map[string]*EnvCampaign
}

// NewContext builds the evaluation environments. Detector training is
// deferred until first use.
func NewContext(o Opts) *Context {
	rng := rand.New(rand.NewSource(o.Seed))
	return &Context{
		Opts: o,
		Worlds: []*env.World{
			env.Factory(),
			env.Farm(),
			env.Sparse(rng),
			env.Dense(rng),
		},
		tableICache: make(map[string]*EnvCampaign),
	}
}

// World returns the evaluation environment with the given name.
func (c *Context) World(name string) *env.World {
	for _, w := range c.Worlds {
		if w.Name == name {
			return w
		}
	}
	panic(fmt.Sprintf("experiments: unknown world %q", name))
}

// ensureTrained runs the training campaign once: error-free flights through
// randomised environments, feeding both detectors.
func (c *Context) ensureTrained() {
	if c.gad != nil {
		return
	}
	c.trainData = pipeline.CollectTrainingData(c.TrainEnvs, c.Seed+1000, c.Platform)
	c.gad = pipeline.TrainGAD(c.trainData, c.GADSigma)
	c.aad = pipeline.TrainAAD(c.trainData, c.AAD, c.Seed+2000)
}

// GADetector returns a fresh per-mission clone of the trained Gaussian
// detector (clones keep online updates independent across missions).
func (c *Context) GADetector() *detect.GAD {
	c.ensureTrained()
	clone := *c.gad
	return &clone
}

// AADetector returns the trained autoencoder detector (stateless at
// inference, safe to share).
func (c *Context) AADetector() *detect.AAD {
	c.ensureTrained()
	return c.aad
}

// TrainData exposes the training corpus for the ablation experiments.
func (c *Context) TrainData() [][detect.NumStates]float64 {
	c.ensureTrained()
	return c.trainData
}

// calibrate runs one golden calibration mission in w and returns the
// per-kernel dynamic value counts for uniform fault-plan drawing.
func (c *Context) calibrate(w *env.World, p platform.Platform) *faultinject.Counter {
	ctr := faultinject.NewCounter()
	pipeline.RunMission(pipeline.Config{
		World:    w,
		Platform: p,
		Seed:     c.Seed + 555,
		Counter:  ctr,
	})
	return ctr
}

// stageKernels lists the kernels of each PPC stage used when a campaign
// injects "per stage" (Tab. I: 100 injections per stage).
var stageKernels = map[faultinject.Stage][]faultinject.Kernel{
	faultinject.StagePerception: {
		faultinject.KernelPCGen,
		faultinject.KernelOctoMap,
		faultinject.KernelColCheck,
	},
	faultinject.StagePlanning: {faultinject.KernelPlanner},
	faultinject.StageControl:  {faultinject.KernelPID},
}

// runCell flies Runs missions of one campaign cell and aggregates them.
// makeCfg customises the mission for run i.
func (c *Context) runCell(name string, makeCfg func(i int) pipeline.Config) *qof.Campaign {
	camp := &qof.Campaign{Name: name}
	for i := 0; i < c.Runs; i++ {
		res := pipeline.RunMission(makeCfg(i))
		camp.Add(res.Metrics)
	}
	return camp
}

// Row formats a campaign as a one-line summary.
func Row(camp *qof.Campaign) string {
	s := camp.FlightTimeSummary()
	return fmt.Sprintf("%-16s n=%-4d success=%5.1f%%  flight time: med=%6.1fs p95=%6.1fs max=%6.1fs",
		camp.Name, camp.N(), camp.SuccessRate()*100, s.Median, s.P95, s.Max)
}

// header renders a section header for experiment output.
func header(title string) string {
	return fmt.Sprintf("\n=== %s ===\n%s\n", title, strings.Repeat("-", len(title)+8))
}
