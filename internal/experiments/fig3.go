package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
	"mavfi/internal/stats"
)

// Fig3Result reproduces Fig. 3: application-aware end-to-end fault-tolerance
// analysis with the instruction-level injector in the Sparse environment —
// flight-time distributions (3a) and success rates (3b) for the golden runs
// and per-kernel injections across the PPC pipeline.
type Fig3Result struct {
	// Cells holds, in paper order: Golden, P.C. Gen., OctoMap, Col. Ck.,
	// RRT, RRTConnect, RRT*, PID.
	Cells []*qof.Campaign
}

// fig3Kernels pairs each Fig. 3 column with its kernel and, for the planner
// columns, the planner variant exercised.
var fig3Kernels = []struct {
	name    string
	kernel  faultinject.Kernel
	planner pipeline.PlannerKind
}{
	{"P.C. Gen.", faultinject.KernelPCGen, pipeline.PlannerRRTStar},
	{"OctoMap", faultinject.KernelOctoMap, pipeline.PlannerRRTStar},
	{"Col. Ck.", faultinject.KernelColCheck, pipeline.PlannerRRTStar},
	{"RRT", faultinject.KernelPlanner, pipeline.PlannerRRT},
	{"RRTConnect", faultinject.KernelPlanner, pipeline.PlannerRRTConnect},
	{"RRT*", faultinject.KernelPlanner, pipeline.PlannerRRTStar},
	{"PID", faultinject.KernelPID, pipeline.PlannerRRTStar},
}

// Fig3 runs the per-kernel campaign: Runs golden missions plus Runs
// single-bit injections per kernel, all in Sparse.
func (c *Context) Fig3() *Fig3Result {
	w := c.World("Sparse")
	out := &Fig3Result{}

	out.Cells = append(out.Cells, c.runCell("Golden", func(i int) pipeline.Config {
		return pipeline.Config{World: w, Platform: c.Platform, Seed: c.Seed + int64(i)}
	}))

	for ki, k := range fig3Kernels {
		ctr := c.calibrate(w, c.Platform)
		// Draw the cell's Runs injection plans up front (sequentially, as
		// NewPlan consumes the RNG) so each mission is a pure function of
		// its index and the cell can shard across workers.
		planRNG := rand.New(rand.NewSource(c.Seed + int64(ki)*101 + 7))
		plans := make([]faultinject.Plan, c.Runs)
		for i := range plans {
			plans[i] = faultinject.NewPlan(k.kernel, ctr.Count(k.kernel), planRNG)
		}
		kcell := k
		out.Cells = append(out.Cells, c.runCell(k.name, func(i int) pipeline.Config {
			return pipeline.Config{
				World:       w,
				Platform:    c.Platform,
				Planner:     kcell.planner,
				Seed:        c.Seed + int64(i),
				KernelFault: &plans[i],
			}
		}))
	}
	return out
}

// String renders the figure as text: one row per column of the paper's
// Fig. 3a/3b.
func (f *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 3: per-kernel fault injection (Sparse)"))
	golden := f.Cells[0]
	gm := golden.FlightTimeSummary()
	for _, cell := range f.Cells {
		s := cell.FlightTimeSummary()
		fmt.Fprintf(&b, "%s", Row(cell))
		if cell != golden && gm.Median > 0 {
			fmt.Fprintf(&b, "  worst-case Δt=%+5.1f%%  Δsuccess=%+5.1f%%",
				(s.Max/gm.Max-1)*100, (cell.SuccessRate()-golden.SuccessRate())*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WorstCaseIncrease returns the largest relative flight-time increase of any
// injected kernel's worst case over the golden worst case (the paper reports
// up to +57.3%).
func (f *Fig3Result) WorstCaseIncrease() float64 {
	gm := f.Cells[0].FlightTimeSummary()
	worst := 0.0
	for _, cell := range f.Cells[1:] {
		s := cell.FlightTimeSummary()
		if gm.Max > 0 {
			if inc := s.Max/gm.Max - 1; inc > worst {
				worst = inc
			}
		}
	}
	return worst
}

// RangeWidth returns max-min of a cell's flight times, the "range" the paper
// compares across kernels (planning/control ranges are much wider than
// perception's).
func RangeWidth(c *qof.Campaign) float64 {
	s := c.FlightTimeSummary()
	return s.Max - s.Min
}

// SuccessDrop returns golden success minus the worst injected success (the
// paper reports up to 8% in Fig. 3b).
func (f *Fig3Result) SuccessDrop() float64 {
	g := f.Cells[0].SuccessRate()
	worst := 0.0
	for _, cell := range f.Cells[1:] {
		if d := g - cell.SuccessRate(); d > worst {
			worst = d
		}
	}
	return worst
}

// PerceptionVsPlanningRange compares the mean flight-time range of the
// perception kernels against planning+control kernels, quantifying the
// paper's central Fig. 3 finding.
func (f *Fig3Result) PerceptionVsPlanningRange() (perception, planningControl float64) {
	perc := []float64{RangeWidth(f.Cells[1]), RangeWidth(f.Cells[2]), RangeWidth(f.Cells[3])}
	pc := []float64{RangeWidth(f.Cells[4]), RangeWidth(f.Cells[5]), RangeWidth(f.Cells[6]), RangeWidth(f.Cells[7])}
	return stats.Mean(perc), stats.Mean(pc)
}
